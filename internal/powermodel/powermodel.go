// Package powermodel models the electrical behaviour of an enterprise
// storage unit: the three power modes of a disk enclosure (Active, Idle,
// Power off) plus the spin-up transition, the break-even time that governs
// when powering off pays for itself, and energy integration over the
// simulated timeline (the simulator's equivalent of the power meter
// attached to the storage unit in the paper's test bed).
package powermodel

import (
	"fmt"
	"time"
)

// State is the power mode of a disk enclosure.
type State uint8

const (
	// Off means the enclosure is powered off.
	Off State = iota
	// Idle means the enclosure is powered on with no I/O executing.
	Idle
	// Active means the enclosure is powered on and executing I/O.
	Active
	// SpinUp means the enclosure is transitioning from Off to Idle. I/Os
	// issued during spin-up wait until the transition completes.
	SpinUp
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case Off:
		return "off"
	case Idle:
		return "idle"
	case Active:
		return "active"
	case SpinUp:
		return "spinup"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Params holds the electrical parameters of one disk enclosure plus the
// storage controller. The defaults (see DefaultParams) are chosen so that
// the derived break-even time matches the paper's 52 s and a
// no-power-saving run lands near the paper's baseline watts.
type Params struct {
	// ActiveW is enclosure power draw while executing I/O.
	ActiveW float64
	// IdleW is enclosure power draw while spun up but idle.
	IdleW float64
	// OffW is enclosure power draw while powered off (fans, standby logic).
	OffW float64
	// SpinUpW is enclosure power draw during the spin-up transition.
	SpinUpW float64
	// SpinUpTime is the duration of the spin-up transition. I/Os arriving
	// while the enclosure is off wait this long before service.
	SpinUpTime time.Duration
	// ControllerW is the constant power draw of the RAID controller,
	// cache and fabric, independent of enclosure state.
	ControllerW float64
}

// DefaultParams returns parameters calibrated to the paper's test bed
// (Hitachi AMS 2500 class): BreakEven() == 52 s exactly.
func DefaultParams() Params {
	return Params{
		ActiveW:     250,
		IdleW:       220,
		OffW:        10,
		SpinUpW:     738,
		SpinUpTime:  15 * time.Second,
		ControllerW: 200,
	}
}

// Watts returns the draw of one enclosure in state s.
func (p Params) Watts(s State) float64 {
	switch s {
	case Off:
		return p.OffW
	case Idle:
		return p.IdleW
	case Active:
		return p.ActiveW
	case SpinUp:
		return p.SpinUpW
	default:
		panic("powermodel: unknown state")
	}
}

// BreakEven returns the break-even time derived from the parameters: the
// idle-interval length at which powering off (and paying the spin-up
// energy on the next I/O) consumes exactly as much energy as staying idle.
//
//	IdleW·T = OffW·(T − SpinUpTime) + SpinUpW·SpinUpTime
//	T = SpinUpTime · (SpinUpW − OffW) / (IdleW − OffW)
//
// An interval must be longer than this for power-off to save energy; the
// paper calls such intervals Long Intervals.
func (p Params) BreakEven() time.Duration {
	if p.IdleW <= p.OffW {
		// Powering off never pays; treat break-even as unbounded.
		return time.Duration(1<<63 - 1)
	}
	sec := p.SpinUpTime.Seconds() * (p.SpinUpW - p.OffW) / (p.IdleW - p.OffW)
	return time.Duration(sec * float64(time.Second))
}

// Validate reports whether the parameters are physically sensible.
func (p Params) Validate() error {
	switch {
	case p.OffW < 0:
		return fmt.Errorf("powermodel: OffW %v < 0", p.OffW)
	case p.IdleW < p.OffW:
		return fmt.Errorf("powermodel: IdleW %v < OffW %v", p.IdleW, p.OffW)
	case p.ActiveW < p.IdleW:
		return fmt.Errorf("powermodel: ActiveW %v < IdleW %v", p.ActiveW, p.IdleW)
	case p.SpinUpW < p.IdleW:
		return fmt.Errorf("powermodel: SpinUpW %v < IdleW %v", p.SpinUpW, p.IdleW)
	case p.SpinUpTime <= 0:
		return fmt.Errorf("powermodel: SpinUpTime %v <= 0", p.SpinUpTime)
	case p.ControllerW < 0:
		return fmt.Errorf("powermodel: ControllerW %v < 0", p.ControllerW)
	}
	return nil
}

// Accumulator integrates energy for one enclosure. The enclosure reports
// each (state, duration) segment of its timeline; the accumulator keeps
// total Joules and per-state residency so experiments can report both
// average watts and the state mix.
type Accumulator struct {
	params   Params
	energyJ  float64
	duration time.Duration
	byState  [4]time.Duration
	spinUps  int
}

// NewAccumulator returns an accumulator using params.
func NewAccumulator(params Params) *Accumulator {
	return &Accumulator{params: params}
}

// Add records that the enclosure spent d in state s.
func (a *Accumulator) Add(s State, d time.Duration) {
	if d < 0 {
		panic("powermodel: negative duration")
	}
	a.energyJ += a.params.Watts(s) * d.Seconds()
	a.duration += d
	a.byState[s] += d
}

// CountSpinUp records one Off→Idle transition (for the paper's §V-D
// pattern-change trigger, which counts cold-enclosure power-ons).
func (a *Accumulator) CountSpinUp() { a.spinUps++ }

// SpinUps returns the number of recorded spin-ups.
func (a *Accumulator) SpinUps() int { return a.spinUps }

// EnergyJ returns accumulated energy in Joules.
func (a *Accumulator) EnergyJ() float64 { return a.energyJ }

// Duration returns total integrated time.
func (a *Accumulator) Duration() time.Duration { return a.duration }

// InState returns the time spent in s.
func (a *Accumulator) InState(s State) time.Duration { return a.byState[s] }

// StateEnergyJ returns the Joules consumed in state s (its residency
// times its draw). The four states' energies sum to EnergyJ up to
// float rounding; attribution ledgers split these exact per-state
// totals so their shares add back to the accumulator reading.
func (a *Accumulator) StateEnergyJ(s State) float64 {
	return a.params.Watts(s) * a.byState[s].Seconds()
}

// AverageW returns the mean power over the integrated time, or 0 when no
// time has been integrated.
func (a *Accumulator) AverageW() float64 {
	if a.duration <= 0 {
		return 0
	}
	return a.energyJ / a.duration.Seconds()
}

// Meter aggregates the accumulators of all enclosures plus the controller
// into unit-level readings, standing in for the external power meter of
// the paper's test bed.
type Meter struct {
	params Params
	encls  []*Accumulator
}

// NewMeter returns a meter over n enclosure accumulators.
func NewMeter(params Params, n int) *Meter {
	m := &Meter{params: params, encls: make([]*Accumulator, n)}
	for i := range m.encls {
		m.encls[i] = NewAccumulator(params)
	}
	return m
}

// Enclosure returns the accumulator for enclosure i.
func (m *Meter) Enclosure(i int) *Accumulator { return m.encls[i] }

// EnclosureEnergyJ returns summed enclosure energy in Joules.
func (m *Meter) EnclosureEnergyJ() float64 {
	var e float64
	for _, a := range m.encls {
		e += a.EnergyJ()
	}
	return e
}

// TotalEnergyJ returns enclosure energy plus controller energy over span.
func (m *Meter) TotalEnergyJ(span time.Duration) float64 {
	return m.EnclosureEnergyJ() + m.params.ControllerW*span.Seconds()
}

// AverageEnclosureW returns the mean summed enclosure power over span.
func (m *Meter) AverageEnclosureW(span time.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return m.EnclosureEnergyJ() / span.Seconds()
}

// AverageTotalW returns the mean total (controller + enclosures) power.
func (m *Meter) AverageTotalW(span time.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return m.TotalEnergyJ(span) / span.Seconds()
}

// SpinUps returns total spin-ups across enclosures.
func (m *Meter) SpinUps() int {
	var n int
	for _, a := range m.encls {
		n += a.SpinUps()
	}
	return n
}

// SSDParams returns an electrical profile for an all-flash enclosure
// (§VIII-D: "power consumption of SSDs is much smaller than that of
// HDDs ... our proposed approach ... can be applied easily to SSD
// storage"). There are no platters to spin: the off→ready transition is
// milliseconds and nearly free, so the derived break-even time collapses
// from 52 s to well under a second and even naive idleness policies
// approach the optimum — the interesting question the media comparison
// harness answers is how much application-level knowledge still buys.
func SSDParams() Params {
	return Params{
		ActiveW:     34,
		IdleW:       12,
		OffW:        2,
		SpinUpW:     42,
		SpinUpTime:  200 * time.Millisecond,
		ControllerW: 200,
	}
}
