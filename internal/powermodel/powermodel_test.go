package powermodel

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultBreakEvenIs52s(t *testing.T) {
	be := DefaultParams().BreakEven()
	if d := be - 52*time.Second; d < -50*time.Millisecond || d > 50*time.Millisecond {
		t.Fatalf("break-even = %v, want 52s (Table II)", be)
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.OffW = -1 },
		func(p *Params) { p.IdleW = p.OffW - 1 },
		func(p *Params) { p.ActiveW = p.IdleW - 1 },
		func(p *Params) { p.SpinUpW = p.IdleW - 1 },
		func(p *Params) { p.SpinUpTime = 0 },
		func(p *Params) { p.ControllerW = -1 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestStateStringAndWatts(t *testing.T) {
	p := DefaultParams()
	if p.Watts(Off) >= p.Watts(Idle) || p.Watts(Idle) >= p.Watts(Active) {
		t.Fatal("power states not ordered off < idle < active")
	}
	for _, s := range []State{Off, Idle, Active, SpinUp} {
		if s.String() == "" {
			t.Fatalf("state %d has empty string", s)
		}
	}
}

// TestBreakEvenIsTrueBreakEven verifies the fundamental property: staying
// idle for exactly BreakEven() costs the same energy as powering off and
// spinning back up over the same span.
func TestBreakEvenIsTrueBreakEven(t *testing.T) {
	p := DefaultParams()
	be := p.BreakEven()
	idleJ := p.IdleW * be.Seconds()
	offJ := p.OffW*(be-p.SpinUpTime).Seconds() + p.SpinUpW*p.SpinUpTime.Seconds()
	if math.Abs(idleJ-offJ) > 1 {
		t.Fatalf("idle %v J vs off+spinup %v J at break-even", idleJ, offJ)
	}
}

// TestBreakEvenProperty: for any sensible parameters, intervals longer
// than break-even save energy by powering off; shorter ones don't.
func TestBreakEvenProperty(t *testing.T) {
	f := func(idleRaw, spinRaw uint16, upSecs uint8) bool {
		p := Params{
			OffW:        10,
			IdleW:       10 + float64(idleRaw%500) + 1,
			SpinUpTime:  time.Duration(int(upSecs%30)+1) * time.Second,
			ControllerW: 100,
		}
		p.ActiveW = p.IdleW + 30
		p.SpinUpW = p.IdleW + float64(spinRaw%2000)
		be := p.BreakEven()
		cost := func(span time.Duration, off bool) float64 {
			if !off {
				return p.IdleW * span.Seconds()
			}
			if span < p.SpinUpTime {
				span = p.SpinUpTime
			}
			return p.OffW*(span-p.SpinUpTime).Seconds() + p.SpinUpW*p.SpinUpTime.Seconds()
		}
		longer := be + be/4 + time.Second
		shorter := be - be/4
		if shorter <= p.SpinUpTime {
			return true // degenerate; skip
		}
		if cost(longer, true) >= cost(longer, false) {
			return false
		}
		if cost(shorter, true) <= cost(shorter, false) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakEvenUnboundedWhenOffDoesNotSave(t *testing.T) {
	p := DefaultParams()
	p.IdleW = p.OffW
	if p.BreakEven() < time.Hour*24*365 {
		t.Fatal("break-even should be effectively unbounded when idle == off")
	}
}

func TestAccumulator(t *testing.T) {
	p := DefaultParams()
	a := NewAccumulator(p)
	a.Add(Idle, 10*time.Second)
	a.Add(Active, 5*time.Second)
	a.Add(Off, 85*time.Second)
	wantJ := p.IdleW*10 + p.ActiveW*5 + p.OffW*85
	if math.Abs(a.EnergyJ()-wantJ) > 1e-6 {
		t.Fatalf("energy %v, want %v", a.EnergyJ(), wantJ)
	}
	if a.Duration() != 100*time.Second {
		t.Fatalf("duration %v", a.Duration())
	}
	if a.InState(Idle) != 10*time.Second || a.InState(Off) != 85*time.Second {
		t.Fatal("per-state residency wrong")
	}
	if avg := a.AverageW(); math.Abs(avg-wantJ/100) > 1e-6 {
		t.Fatalf("average %v", avg)
	}
	a.CountSpinUp()
	a.CountSpinUp()
	if a.SpinUps() != 2 {
		t.Fatalf("spinups %d", a.SpinUps())
	}
}

func TestAccumulatorPanicsOnNegative(t *testing.T) {
	a := NewAccumulator(DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative duration")
		}
	}()
	a.Add(Idle, -time.Second)
}

func TestAccumulatorEmptyAverage(t *testing.T) {
	a := NewAccumulator(DefaultParams())
	if a.AverageW() != 0 {
		t.Fatal("empty accumulator average should be 0")
	}
}

func TestMeter(t *testing.T) {
	p := DefaultParams()
	m := NewMeter(p, 3)
	for i := 0; i < 3; i++ {
		m.Enclosure(i).Add(Idle, time.Minute)
	}
	m.Enclosure(0).CountSpinUp()
	span := time.Minute
	wantEncl := 3 * p.IdleW * 60
	if math.Abs(m.EnclosureEnergyJ()-wantEncl) > 1e-6 {
		t.Fatalf("enclosure energy %v", m.EnclosureEnergyJ())
	}
	wantTotal := wantEncl + p.ControllerW*60
	if math.Abs(m.TotalEnergyJ(span)-wantTotal) > 1e-6 {
		t.Fatalf("total energy %v", m.TotalEnergyJ(span))
	}
	if math.Abs(m.AverageEnclosureW(span)-3*p.IdleW) > 1e-6 {
		t.Fatalf("avg enclosure W %v", m.AverageEnclosureW(span))
	}
	if math.Abs(m.AverageTotalW(span)-(3*p.IdleW+p.ControllerW)) > 1e-6 {
		t.Fatalf("avg total W %v", m.AverageTotalW(span))
	}
	if m.SpinUps() != 1 {
		t.Fatalf("spinups %d", m.SpinUps())
	}
	if m.AverageTotalW(0) != 0 || m.AverageEnclosureW(0) != 0 {
		t.Fatal("zero-span averages should be 0")
	}
}

func TestSSDParams(t *testing.T) {
	p := SSDParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if be := p.BreakEven(); be > 2*time.Second {
		t.Fatalf("SSD break-even %v, want sub-second-scale", be)
	}
	hdd := DefaultParams()
	if p.IdleW >= hdd.IdleW || p.ActiveW >= hdd.ActiveW {
		t.Fatal("SSD profile should draw far less than HDD")
	}
}
