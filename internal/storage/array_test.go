package storage

import (
	"testing"
	"time"

	"esm/internal/simclock"
	"esm/internal/trace"
)

// testArray builds an array with n enclosures and items of the given
// sizes, placed round-robin.
func testArray(t *testing.T, n int, sizes ...int64) (*Array, *simclock.Clock, *simclock.EventQueue, []trace.ItemID) {
	t.Helper()
	cat := trace.NewCatalog()
	ids := make([]trace.ItemID, len(sizes))
	for i, s := range sizes {
		ids[i] = cat.Add(itemName(i), s)
	}
	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := New(DefaultConfig(n), clk, evq, cat)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if err := arr.Place(id, i%n); err != nil {
			t.Fatal(err)
		}
	}
	return arr, clk, evq, ids
}

func itemName(i int) string {
	return "item" + string(rune('A'+i))
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(10).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig(0)
	if err := bad.Validate(); err == nil {
		t.Fatal("zero enclosures accepted")
	}
	c := DefaultConfig(2)
	c.PreloadCacheBytes = c.CacheBytes
	c.WriteDelayCacheBytes = c.CacheBytes
	if err := c.Validate(); err == nil {
		t.Fatal("oversized partitions accepted")
	}
	c = DefaultConfig(2)
	c.DirtyBlockRate = 1.5
	if err := c.Validate(); err == nil {
		t.Fatal("dirty rate > 1 accepted")
	}
}

func TestPlaceTwiceFails(t *testing.T) {
	arr, _, _, ids := testArray(t, 2, 1<<20)
	if err := arr.Place(ids[0], 1); err == nil {
		t.Fatal("double placement accepted")
	}
}

func TestPlaceOverCapacityFails(t *testing.T) {
	cat := trace.NewCatalog()
	big := cat.Add("big", 2_000_000_000_000)
	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := New(DefaultConfig(1), clk, evq, cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.Place(big, 0); err == nil {
		t.Fatal("over-capacity placement accepted")
	}
}

func TestSubmitReadMissAndHit(t *testing.T) {
	arr, _, _, ids := testArray(t, 1, 64<<20)
	rec := trace.LogicalRecord{Item: ids[0], Offset: 0, Size: 8 << 10, Op: trace.OpRead}
	r1, _ := arr.Submit(rec)
	if r1.CacheHit {
		t.Fatal("first read should miss")
	}
	if r1.Response <= 0 || r1.Enclosure != 0 {
		t.Fatalf("miss result %+v", r1)
	}
	r2, _ := arr.Submit(rec)
	if !r2.CacheHit {
		t.Fatal("repeat read should hit the general LRU")
	}
	if r2.Response != arr.Config().CacheHitTime {
		t.Fatalf("hit response %v", r2.Response)
	}
	if arr.Stats().CacheHits != 1 || arr.Stats().PhysicalReads != 1 {
		t.Fatalf("stats %+v", arr.Stats())
	}
}

func TestSubmitWriteIsPhysicalWhenNotDelayed(t *testing.T) {
	arr, _, _, ids := testArray(t, 1, 64<<20)
	r, _ := arr.Submit(trace.LogicalRecord{Item: ids[0], Size: 8 << 10, Op: trace.OpWrite})
	if r.CacheHit {
		t.Fatal("undelayed write should be physical")
	}
	if arr.Stats().PhysicalWrites != 1 {
		t.Fatalf("stats %+v", arr.Stats())
	}
}

func TestWriteDelayAbsorbsWrites(t *testing.T) {
	arr, _, _, ids := testArray(t, 1, 64<<20)
	arr.SetWriteDelay(ids)
	if !arr.WriteDelayed(ids[0]) {
		t.Fatal("item not write-delayed")
	}
	r, _ := arr.Submit(trace.LogicalRecord{Item: ids[0], Size: 8 << 10, Op: trace.OpWrite})
	if !r.CacheHit || r.Response != arr.Config().CacheAckTime {
		t.Fatalf("delayed write result %+v", r)
	}
	if arr.Stats().PhysicalWrites != 0 || arr.Stats().DelayedWrites != 1 {
		t.Fatalf("stats %+v", arr.Stats())
	}
	// A read of the freshly written page is served from cache.
	rr, _ := arr.Submit(trace.LogicalRecord{Item: ids[0], Size: 8 << 10, Op: trace.OpRead})
	if !rr.CacheHit {
		t.Fatal("read of dirty page should hit")
	}
}

func TestWriteDelayFlushOnDirtyRate(t *testing.T) {
	arr, _, _, ids := testArray(t, 1, 4<<30)
	arr.SetWriteDelay(ids)
	cfg := arr.Config()
	threshold := int64(cfg.DirtyBlockRate * float64(cfg.WriteDelayCacheBytes))
	var written int64
	for written <= threshold {
		arr.Submit(trace.LogicalRecord{Item: ids[0], Offset: written, Size: 1 << 20, Op: trace.OpWrite})
		written += 1 << 20
	}
	if arr.Stats().FlushedBytes < threshold {
		t.Fatalf("flushed %d bytes, want >= %d", arr.Stats().FlushedBytes, threshold)
	}
	if arr.Stats().PhysicalWrites == 0 {
		t.Fatal("flush issued no physical writes")
	}
}

func TestWriteDelayFlushOnDeselect(t *testing.T) {
	arr, _, _, ids := testArray(t, 1, 64<<20)
	arr.SetWriteDelay(ids)
	arr.Submit(trace.LogicalRecord{Item: ids[0], Size: 1 << 20, Op: trace.OpWrite})
	arr.SetWriteDelay(nil)
	if arr.Stats().FlushedBytes != 1<<20 {
		t.Fatalf("flushed %d bytes on deselect, want 1 MiB", arr.Stats().FlushedBytes)
	}
}

func TestFlushAll(t *testing.T) {
	arr, _, _, ids := testArray(t, 1, 64<<20)
	arr.SetWriteDelay(ids)
	arr.Submit(trace.LogicalRecord{Item: ids[0], Size: 2 << 20, Op: trace.OpWrite})
	arr.FlushAll()
	if arr.Stats().FlushedBytes != 2<<20 {
		t.Fatalf("flushed %d", arr.Stats().FlushedBytes)
	}
}

func TestPreloadServesReads(t *testing.T) {
	arr, clk, _, ids := testArray(t, 1, 8<<20)
	arr.SetPreload(ids)
	if !arr.Preloaded(ids[0]) {
		t.Fatal("item not pinned")
	}
	if arr.Stats().PreloadedBytes != 8<<20 {
		t.Fatalf("preloaded %d bytes", arr.Stats().PreloadedBytes)
	}
	// Before the load completes, reads still go to the enclosure.
	r, _ := arr.Submit(trace.LogicalRecord{Item: ids[0], Size: 8 << 10, Op: trace.OpRead})
	if r.CacheHit {
		t.Fatal("read before load completion should miss")
	}
	clk.Advance(time.Minute)
	r, _ = arr.Submit(trace.LogicalRecord{Time: time.Minute, Item: ids[0], Offset: 4 << 20, Size: 8 << 10, Op: trace.OpRead})
	if !r.CacheHit {
		t.Fatal("read after load completion should hit")
	}
}

func TestPreloadBudgetIsPriorityOrdered(t *testing.T) {
	cfg := DefaultConfig(1)
	sizes := []int64{cfg.PreloadCacheBytes - 1<<20, 4 << 20, 8 << 20}
	arr, _, _, ids := testArray(t, 1, sizes...)
	// Pin the big one first.
	arr.SetPreload([]trace.ItemID{ids[0]})
	if !arr.Preloaded(ids[0]) {
		t.Fatal("big item not pinned")
	}
	// A new selection putting the small items first evicts the big one.
	arr.SetPreload([]trace.ItemID{ids[1], ids[2], ids[0]})
	if !arr.Preloaded(ids[1]) || !arr.Preloaded(ids[2]) {
		t.Fatal("priority items not pinned")
	}
	if arr.Preloaded(ids[0]) {
		t.Fatal("stale low-priority item still pinned over budget")
	}
}

func TestPreloadKeepsLoadedItems(t *testing.T) {
	arr, _, _, ids := testArray(t, 1, 4<<20, 4<<20)
	arr.SetPreload([]trace.ItemID{ids[0]})
	before := arr.Stats().PreloadedBytes
	arr.SetPreload([]trace.ItemID{ids[0], ids[1]})
	// ids[0] must not be re-loaded.
	if got := arr.Stats().PreloadedBytes; got != before+4<<20 {
		t.Fatalf("preloaded bytes %d, want %d", got, before+4<<20)
	}
}

func TestMigrateItemMovesData(t *testing.T) {
	arr, clk, evq, ids := testArray(t, 2, 256<<20)
	if arr.ItemEnclosure(ids[0]) != 0 {
		t.Fatal("unexpected initial placement")
	}
	done := false
	if err := arr.MigrateItem(ids[0], 1, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	evq.RunUntil(clk, time.Hour)
	if !done {
		t.Fatal("migration did not complete")
	}
	if arr.ItemEnclosure(ids[0]) != 1 {
		t.Fatalf("item on enclosure %d after migration", arr.ItemEnclosure(ids[0]))
	}
	if arr.Stats().MigratedBytes != 256<<20 {
		t.Fatalf("migrated %d bytes", arr.Stats().MigratedBytes)
	}
	if arr.Used(0) != 0 || arr.Used(1) != 256<<20 {
		t.Fatalf("used after migration: %d / %d", arr.Used(0), arr.Used(1))
	}
}

func TestMigrationThrottleTiming(t *testing.T) {
	arr, clk, evq, ids := testArray(t, 2, 1<<30)
	cfg := arr.Config()
	start := clk.Now()
	var doneAt time.Duration
	if err := arr.MigrateItem(ids[0], 1, func() { doneAt = clk.Now() }); err != nil {
		t.Fatal(err)
	}
	evq.RunUntil(clk, time.Hour)
	wantMin := time.Duration(float64(1<<30) / cfg.MigrationBps * float64(time.Second) * 0.9)
	if doneAt-start < wantMin {
		t.Fatalf("1 GiB migration finished in %v, throttle is %v B/s", doneAt-start, cfg.MigrationBps)
	}
}

func TestMigrateToSameEnclosureIsNoop(t *testing.T) {
	arr, _, _, ids := testArray(t, 2, 1<<20)
	done := false
	if err := arr.MigrateItem(ids[0], 0, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	if !done || arr.Stats().MigratedBytes != 0 {
		t.Fatal("same-enclosure migration should complete immediately")
	}
}

func TestMigrationsRunOneAtATime(t *testing.T) {
	arr, clk, evq, ids := testArray(t, 3, 512<<20, 512<<20)
	var order []int
	arr.MigrateItem(ids[0], 2, func() { order = append(order, 0) })
	arr.MigrateItem(ids[1], 2, func() { order = append(order, 1) })
	evq.RunUntil(clk, time.Hour)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("migration completion order %v", order)
	}
}

func TestMigrationSkippedWhenDestinationFull(t *testing.T) {
	cfg := DefaultConfig(2)
	cat := trace.NewCatalog()
	big := cat.Add("big", cfg.EnclosureCapacity-1<<20)
	small := cat.Add("small", 4<<20)
	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := New(cfg, clk, evq, cat)
	if err != nil {
		t.Fatal(err)
	}
	arr.Place(big, 1)
	arr.Place(small, 0)
	if err := arr.MigrateItem(small, 1, nil); err != nil {
		t.Fatal(err)
	}
	evq.RunUntil(clk, time.Hour)
	if arr.Stats().MigrationsSkipped != 1 {
		t.Fatalf("skipped %d migrations, want 1", arr.Stats().MigrationsSkipped)
	}
	if arr.ItemEnclosure(small) != 0 {
		t.Fatal("item moved despite full destination")
	}
}

func TestDropQueuedMigrations(t *testing.T) {
	arr, clk, evq, ids := testArray(t, 3, 512<<20, 512<<20)
	arr.MigrateItem(ids[0], 2, nil)
	arr.MigrateItem(ids[1], 2, nil)
	arr.DropQueuedMigrations()
	evq.RunUntil(clk, time.Hour)
	// The first migration was already active and completes; the queued
	// one is dropped.
	if arr.ItemEnclosure(ids[0]) != 2 {
		t.Fatal("active migration should complete")
	}
	if arr.ItemEnclosure(ids[1]) != 1 {
		t.Fatal("queued migration should have been dropped")
	}
}

func TestMigrationFlushesDirtyWrites(t *testing.T) {
	arr, clk, evq, ids := testArray(t, 2, 64<<20)
	arr.SetWriteDelay(ids)
	arr.Submit(trace.LogicalRecord{Item: ids[0], Size: 1 << 20, Op: trace.OpWrite})
	arr.MigrateItem(ids[0], 1, nil)
	evq.RunUntil(clk, time.Hour)
	if arr.Stats().FlushedBytes != 1<<20 {
		t.Fatalf("flushed %d bytes before migration", arr.Stats().FlushedBytes)
	}
}

func TestMigrateExtentAndResolve(t *testing.T) {
	cfg := DefaultConfig(2)
	arr, _, _, ids := testArray(t, 2, 3*cfg.ExtentBytes)
	item := ids[0]
	ref, ok := arr.ResolveExtent(0, cfg.ExtentBytes+5)
	if !ok || ref.Item != item || ref.Extent != 1 {
		t.Fatalf("resolve = %+v,%v", ref, ok)
	}
	if err := arr.MigrateExtent(ref, 1); err != nil {
		t.Fatal(err)
	}
	// Subsequent I/O to extent 1 lands on enclosure 1.
	r, _ := arr.Submit(trace.LogicalRecord{Item: item, Offset: cfg.ExtentBytes + 1024, Size: 8 << 10, Op: trace.OpRead})
	if r.Enclosure != 1 {
		t.Fatalf("extent I/O served by enclosure %d", r.Enclosure)
	}
	// Extent 0 stays on the home enclosure.
	r, _ = arr.Submit(trace.LogicalRecord{Item: item, Offset: 0, Size: 8 << 10, Op: trace.OpRead})
	if r.Enclosure != 0 {
		t.Fatalf("home extent served by enclosure %d", r.Enclosure)
	}
	if arr.Stats().MigratedBytes != cfg.ExtentBytes {
		t.Fatalf("migrated %d bytes", arr.Stats().MigratedBytes)
	}
	// The remapped extent resolves at its new home.
	if got, ok := arr.ResolveExtent(1, arr.enc[1].allocCursor-1); !ok || got.Item != item {
		t.Fatalf("resolve at destination = %+v,%v", got, ok)
	}
}

func TestMigrateItemClearsExtentOverrides(t *testing.T) {
	cfg := DefaultConfig(3)
	arr, clk, evq, ids := testArray(t, 3, 2*cfg.ExtentBytes)
	ref := ExtentRef{Item: ids[0], Extent: 1}
	if err := arr.MigrateExtent(ref, 1); err != nil {
		t.Fatal(err)
	}
	if err := arr.MigrateItem(ids[0], 2, nil); err != nil {
		t.Fatal(err)
	}
	evq.RunUntil(clk, time.Hour)
	r, _ := arr.Submit(trace.LogicalRecord{Item: ids[0], Offset: cfg.ExtentBytes + 5, Size: 8 << 10, Op: trace.OpRead})
	if r.Enclosure != 2 {
		t.Fatalf("extent override survived item migration: enclosure %d", r.Enclosure)
	}
	if arr.Used(1) != 0 {
		t.Fatalf("override allocation not released: used(1) = %d", arr.Used(1))
	}
}

func TestPhysicalObserverSeesAllTraffic(t *testing.T) {
	arr, clk, evq, ids := testArray(t, 2, 64<<20)
	var count int
	arr.SetPhysicalObserver(func(rec trace.PhysicalRecord) { count++ })
	arr.Submit(trace.LogicalRecord{Item: ids[0], Size: 8 << 10, Op: trace.OpRead})
	arr.MigrateItem(ids[0], 1, nil)
	evq.RunUntil(clk, time.Hour)
	if count < 3 { // 1 app read + at least 1 migration read + 1 write
		t.Fatalf("observer saw %d records", count)
	}
}

func TestSpinDownControlAndMeter(t *testing.T) {
	arr, clk, evq, _ := testArray(t, 2, 1<<20)
	arr.SetSpinDownEnabled(0, true)
	if !arr.SpinDownEnabled(0) || arr.SpinDownEnabled(1) {
		t.Fatal("spin-down flags wrong")
	}
	evq.RunUntil(clk, 10*time.Minute)
	arr.Finish()
	if arr.EnclosureOn(0, clk.Now()) {
		t.Fatal("enclosure 0 should be off")
	}
	if !arr.EnclosureOn(1, clk.Now()) {
		t.Fatal("enclosure 1 should be on")
	}
	m := arr.Meter()
	if m.Enclosure(0).EnergyJ() >= m.Enclosure(1).EnergyJ() {
		t.Fatal("spun-down enclosure used at least as much energy")
	}
}

func TestSubmitToUnplacedItemErrors(t *testing.T) {
	cat := trace.NewCatalog()
	id := cat.Add("x", 1<<20)
	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, _ := New(DefaultConfig(1), clk, evq, cat)
	if _, err := arr.Submit(trace.LogicalRecord{Item: id, Size: 1, Op: trace.OpRead}); err == nil {
		t.Fatal("I/O to unplaced item accepted")
	}
	if arr.Stats().PhysicalReads != 0 {
		t.Fatal("failed submit issued a physical I/O")
	}
}
