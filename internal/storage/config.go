// Package storage simulates an enterprise storage unit of the class the
// paper evaluates on (Hitachi AMS 2500): a RAID controller with a battery
// backed cache in front of multiple disk enclosures, each enclosure a
// RAID group of HDDs that is the unit of power control.
//
// The simulator is event driven over virtual time. It models
//
//   - per-enclosure power states (Active / Idle / Off) with a spin-down
//     timeout and a spin-up transition that delays I/O and costs energy,
//   - a multi-server service queue per enclosure with distinct random and
//     sequential service rates, so IOPS ceilings and queueing delays are
//     reproduced,
//   - the block-virtualization layer mapping data items (and, for DDR,
//     64 MB extents) onto enclosures, with throttled online migration,
//   - the partitioned storage cache: a general read LRU, a preload
//     partition that pins whole data items, and a write-delay partition
//     that absorbs writes of selected items and destages them in bulk when
//     the dirty-block rate is exceeded.
package storage

import (
	"fmt"
	"time"

	"esm/internal/powermodel"
)

// Config describes the simulated storage unit. DefaultConfig matches the
// paper's test bed parameters (Table II).
type Config struct {
	// Enclosures is the number of disk enclosures.
	Enclosures int
	// EnclosureCapacity is the usable volume size per enclosure in bytes
	// (Table II: 1.7 TB).
	EnclosureCapacity int64
	// RandomIOPS is the sustained random-I/O ceiling of one enclosure
	// (Table II: 900).
	RandomIOPS float64
	// SeqIOPS is the sustained sequential-I/O ceiling of one enclosure
	// (Table II: 2800).
	SeqIOPS float64
	// ServersPerEnclosure is the effective service parallelism of one
	// enclosure (the paper's enclosures hold 15 HDDs in RAID-6).
	ServersPerEnclosure int
	// TransferBps is the per-server data transfer rate in bytes/second,
	// added on top of positioning time.
	TransferBps float64
	// CacheBytes is the total storage-cache size (Table II: 2 GB).
	CacheBytes int64
	// PreloadCacheBytes is the cache partition reserved for the preload
	// function (Table II: 500 MB).
	PreloadCacheBytes int64
	// WriteDelayCacheBytes is the cache partition reserved for the
	// write-delay function (Table II: 500 MB).
	WriteDelayCacheBytes int64
	// DirtyBlockRate is the fraction of the write-delay partition that may
	// be dirty before a bulk destage is forced (Table II: 0.5).
	DirtyBlockRate float64
	// CachePageBytes is the cache page granularity.
	CachePageBytes int64
	// CacheHitTime is the response time of a cache read hit.
	CacheHitTime time.Duration
	// CacheAckTime is the response time of a battery-backed write ack.
	CacheAckTime time.Duration
	// SpinDownTimeout is how long an enclosure must be idle before it is
	// powered off, when power-off is enabled for it (Table II: 52 s,
	// equal to the break-even time).
	SpinDownTimeout time.Duration
	// MigrationBps is the throttled data-migration rate, chosen "so as to
	// not influence the applications' performance" (§V-A).
	MigrationBps float64
	// MigrationChunkBytes is the copy granularity of online migration.
	MigrationChunkBytes int64
	// ExtentBytes is the extent granularity of the block-virtualization
	// layer, used by physical-block-level policies such as DDR.
	ExtentBytes int64
	// Power holds the electrical parameters.
	Power powermodel.Params
}

// DefaultConfig returns the test-bed configuration of the paper with n
// disk enclosures.
func DefaultConfig(n int) Config {
	return Config{
		Enclosures:           n,
		EnclosureCapacity:    1_700_000_000_000, // 1.7 TB volumes (Table II)
		RandomIOPS:           900,
		SeqIOPS:              2800,
		ServersPerEnclosure:  15,
		TransferBps:          2e9,
		CacheBytes:           2 << 30,
		PreloadCacheBytes:    500 << 20,
		WriteDelayCacheBytes: 500 << 20,
		DirtyBlockRate:       0.5,
		CachePageBytes:       64 << 10,
		CacheHitTime:         200 * time.Microsecond,
		CacheAckTime:         300 * time.Microsecond,
		SpinDownTimeout:      52 * time.Second,
		MigrationBps:         200 << 20, // 200 MB/s throttle
		MigrationChunkBytes:  64 << 20,
		ExtentBytes:          64 << 20,
		Power:                powermodel.DefaultParams(),
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Enclosures <= 0:
		return fmt.Errorf("storage: Enclosures %d <= 0", c.Enclosures)
	case c.EnclosureCapacity <= 0:
		return fmt.Errorf("storage: EnclosureCapacity %d <= 0", c.EnclosureCapacity)
	case c.RandomIOPS <= 0 || c.SeqIOPS <= 0:
		return fmt.Errorf("storage: IOPS ceilings must be positive")
	case c.ServersPerEnclosure <= 0:
		return fmt.Errorf("storage: ServersPerEnclosure %d <= 0", c.ServersPerEnclosure)
	case c.TransferBps <= 0:
		return fmt.Errorf("storage: TransferBps %v <= 0", c.TransferBps)
	case c.CacheBytes < c.PreloadCacheBytes+c.WriteDelayCacheBytes:
		return fmt.Errorf("storage: cache partitions exceed CacheBytes")
	case c.DirtyBlockRate <= 0 || c.DirtyBlockRate > 1:
		return fmt.Errorf("storage: DirtyBlockRate %v out of (0,1]", c.DirtyBlockRate)
	case c.CachePageBytes <= 0:
		return fmt.Errorf("storage: CachePageBytes %d <= 0", c.CachePageBytes)
	case c.SpinDownTimeout <= 0:
		return fmt.Errorf("storage: SpinDownTimeout %v <= 0", c.SpinDownTimeout)
	case c.MigrationBps <= 0 || c.MigrationChunkBytes <= 0:
		return fmt.Errorf("storage: migration parameters must be positive")
	case c.ExtentBytes <= 0:
		return fmt.Errorf("storage: ExtentBytes %d <= 0", c.ExtentBytes)
	}
	return c.Power.Validate()
}

// generalCacheBytes is the cache left for the unmanaged read LRU.
func (c Config) generalCacheBytes() int64 {
	return c.CacheBytes - c.PreloadCacheBytes - c.WriteDelayCacheBytes
}
