package storage

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"esm/internal/simclock"
	"esm/internal/trace"
)

// TestArrayRandomOperationInvariants drives the array with random
// interleavings of every operation it supports and checks the global
// invariants after each step:
//
//   - per-enclosure used bytes never negative, never above capacity
//     (plus at most one in-flight migration reservation),
//   - every response non-negative,
//   - the meter's energy is monotonically non-decreasing,
//   - every item remains resolvable to a placed enclosure.
func TestArrayRandomOperationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cat := trace.NewCatalog()
		n := 3 + rng.Intn(3)
		nItems := 4 + rng.Intn(8)
		ids := make([]trace.ItemID, nItems)
		for i := range ids {
			ids[i] = cat.Add("it"+string(rune('A'+i)), int64(rng.Intn(1<<28)+1<<20))
		}
		clk := &simclock.Clock{}
		evq := &simclock.EventQueue{}
		cfg := DefaultConfig(n)
		arr, err := New(cfg, clk, evq, cat)
		if err != nil {
			return false
		}
		for _, id := range ids {
			if err := arr.Place(id, rng.Intn(n)); err != nil {
				return false
			}
		}

		var lastEnergy float64
		now := time.Duration(0)
		check := func() bool {
			for e := 0; e < n; e++ {
				used := arr.Used(e)
				if used < 0 {
					return false
				}
				// One in-flight migration may hold a reservation on top of
				// the resident bytes.
				if used > cfg.EnclosureCapacity+int64(1<<28) {
					return false
				}
			}
			arr.Finish()
			if e := arr.Meter().EnclosureEnergyJ(); e < lastEnergy {
				return false
			} else {
				lastEnergy = e
			}
			return true
		}

		for step := 0; step < 300; step++ {
			now += time.Duration(rng.Int63n(int64(20 * time.Second)))
			evq.RunUntil(clk, now)
			id := ids[rng.Intn(nItems)]
			switch rng.Intn(10) {
			case 0:
				arr.SetSpinDownEnabled(rng.Intn(n), rng.Intn(2) == 0)
			case 1:
				arr.MigrateItem(id, rng.Intn(n), nil)
			case 2:
				var sel []trace.ItemID
				for _, x := range ids {
					if rng.Intn(2) == 0 {
						sel = append(sel, x)
					}
				}
				arr.SetWriteDelay(sel)
			case 3:
				var sel []trace.ItemID
				for _, x := range ids {
					if rng.Intn(3) == 0 {
						sel = append(sel, x)
					}
				}
				arr.SetPreload(sel)
			case 4:
				arr.FlushAll()
			case 5:
				arr.DropQueuedMigrations()
			default:
				size := int32(rng.Intn(1<<17) + 512)
				max := arr.ItemSize(id) - int64(size)
				if max <= 0 {
					continue
				}
				rec := trace.LogicalRecord{
					Time:   now,
					Item:   id,
					Offset: rng.Int63n(max),
					Size:   size,
					Op:     trace.Op(rng.Intn(2)),
				}
				if out, err := arr.Submit(rec); err != nil || out.Response < 0 {
					return false
				}
			}
			if !check() {
				return false
			}
		}
		// Drain outstanding migrations and re-check.
		evq.RunUntil(clk, now+2*time.Hour)
		if !check() {
			return false
		}
		for _, id := range ids {
			if e := arr.ItemEnclosure(id); e < 0 || e >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestEnclosureEnergyConservation: the accumulator's total integrated
// time equals the elapsed virtual time, whatever the op sequence.
func TestEnclosureEnergyConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig(1)
		e := newEnclosure(0, &cfg)
		now := time.Duration(0)
		for i := 0; i < 200; i++ {
			now += time.Duration(rng.Int63n(int64(30 * time.Second)))
			switch rng.Intn(3) {
			case 0:
				e.setSpinDown(now, rng.Intn(2) == 0)
			case 1:
				e.arrival(now, rng.Int63n(1<<35), int32(rng.Intn(1<<17)+512), rng.Intn(2) == 0, kindApp, nil)
			default:
				e.sync(now)
			}
		}
		e.sync(now + time.Hour)
		total := e.acc.Duration()
		elapsed := now + time.Hour
		// Spin-up residency is integrated eagerly and can run slightly
		// past the last sync point; allow that overshoot.
		return total >= elapsed && total <= elapsed+2*cfg.Power.SpinUpTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
