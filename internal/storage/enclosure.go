// Disk enclosure model: a multi-server service queue plus a lazily
// evaluated power state machine with energy integration.

package storage

import (
	"time"

	"esm/internal/faults"
	"esm/internal/obs"
	"esm/internal/powermodel"
)

// ioKind distinguishes why a physical I/O was issued. Application I/Os
// contribute to response-time metrics; the others only consume service
// capacity and energy. The kind also attributes a demand spin-up to
// its cause in the telemetry event stream.
type ioKind uint8

const (
	kindApp ioKind = iota
	kindMigration
	kindFlush
	kindPreload
)

// cause maps the I/O kind to the telemetry cause of a spin-up it
// provokes.
func (k ioKind) cause() obs.Cause {
	switch k {
	case kindMigration:
		return obs.CauseMigration
	case kindFlush:
		return obs.CauseFlush
	case kindPreload:
		return obs.CausePreload
	default:
		return obs.CauseDemand
	}
}

// fn maps the I/O kind to the management function its energy is
// attributed to.
func (k ioKind) fn() obs.EnergyFunc {
	switch k {
	case kindMigration:
		return obs.FnMigration
	case kindFlush:
		return obs.FnDestage
	case kindPreload:
		return obs.FnPreload
	default:
		return obs.FnServing
	}
}

// arrivalInfo captures the phase breakdown of one arrival for the span
// tracer. The pointer is nil when tracing is off, so the hot path pays
// nothing beyond the nil checks.
type arrivalInfo struct {
	// powerState is the enclosure state at arrival: "off", "idle" or
	// "active".
	powerState string
	// spinUpWait is the time from arrival to service readiness when the
	// enclosure was off (spin-up plus any fault-retry backoff); zero
	// when it was on.
	spinUpWait time.Duration
	// queueWait is the wait for a free server after readiness.
	queueWait time.Duration
	// service is the physical service duration.
	service time.Duration
	// spinUpAttempts counts the spin-up attempts the arrival provoked
	// (failed attempts burn spin-up energy too).
	spinUpAttempts int
}

// streamCursors is the number of concurrent sequential streams an
// enclosure's sequential detector tracks.
const streamCursors = 4

// seqWindow is how close (in bytes) an I/O must start to a stream cursor
// to be classified as sequential.
const seqWindow = 128 << 10

type enclosure struct {
	id  int
	cfg *Config
	acc *powermodel.Accumulator

	// Power state. on reports whether the enclosure is spun up; the split
	// between Active and Idle residency is derived from busyUntil.
	on              bool
	spindownEnabled bool

	// servers holds the per-server virtual free times; busyUntil is the
	// latest completion across servers.
	servers   []time.Duration
	busyUntil time.Duration

	// lastSync is the point up to which energy has been integrated.
	lastSync time.Duration

	// Sequential-stream detection state.
	streams [streamCursors]int64 // next expected block per cursor
	nextCur int

	// Space accounting for the block-virtualization layer.
	used        int64
	allocCursor int64

	// powerEvent, when non-nil, observes power-state transitions with
	// the cause that provoked them.
	powerEvent func(enc int, at time.Duration, on bool, cause obs.Cause)

	// inj injects spin-up and transient I/O faults; nil injects nothing.
	inj *faults.Injector
}

func newEnclosure(id int, cfg *Config) *enclosure {
	e := &enclosure{
		id:      id,
		cfg:     cfg,
		acc:     powermodel.NewAccumulator(cfg.Power),
		on:      true,
		servers: make([]time.Duration, cfg.ServersPerEnclosure),
	}
	for i := range e.streams {
		e.streams[i] = -1
	}
	return e
}

// sync integrates the enclosure's power timeline up to `to`, performing
// any pending spin-down transition on the way. It is called before every
// arrival and every control change.
func (e *enclosure) sync(to time.Duration) {
	if to <= e.lastSync {
		return
	}
	t := e.lastSync
	for t < to {
		if !e.on {
			e.acc.Add(powermodel.Off, to-t)
			t = to
			break
		}
		if t < e.busyUntil {
			end := e.busyUntil
			if end > to {
				end = to
			}
			e.acc.Add(powermodel.Active, end-t)
			t = end
			continue
		}
		// Idle since max(busyUntil, t).
		if e.spindownEnabled {
			offAt := e.busyUntil + e.cfg.SpinDownTimeout
			if offAt < t {
				// Spin-down was enabled while the idle timer had already
				// expired; power off immediately.
				offAt = t
			}
			if offAt <= to {
				e.acc.Add(powermodel.Idle, offAt-t)
				e.on = false
				if e.powerEvent != nil {
					e.powerEvent(e.id, offAt, false, obs.CauseIdleTimeout)
				}
				t = offAt
				continue
			}
		}
		e.acc.Add(powermodel.Idle, to-t)
		t = to
	}
	e.lastSync = to
}

// setSpinDown enables or disables power-off for the enclosure at time now.
// Disabling while the enclosure is off leaves it off until the next I/O
// spins it up.
func (e *enclosure) setSpinDown(now time.Duration, enabled bool) {
	e.sync(now)
	e.spindownEnabled = enabled
}

// isSequential classifies the I/O against the recent stream cursors and
// updates them. The detector tracks a handful of concurrent streams, which
// is how real array firmware recognises scans through interleaved traffic.
func (e *enclosure) isSequential(block int64, size int32) bool {
	for i := range e.streams {
		c := e.streams[i]
		if c >= 0 && block >= c && block-c <= seqWindow {
			e.streams[i] = block + int64(size)
			return true
		}
	}
	e.streams[e.nextCur] = block + int64(size)
	e.nextCur = (e.nextCur + 1) % streamCursors
	return false
}

// serviceTime returns the service duration of one I/O.
func (e *enclosure) serviceTime(size int32, sequential bool) time.Duration {
	var posSec float64
	if sequential {
		posSec = float64(e.cfg.ServersPerEnclosure) / e.cfg.SeqIOPS
	} else {
		posSec = float64(e.cfg.ServersPerEnclosure) / e.cfg.RandomIOPS
	}
	sec := posSec + float64(size)/e.cfg.TransferBps
	return time.Duration(sec * float64(time.Second))
}

// arrival submits one physical I/O at time now and returns its completion
// time. The completion includes any spin-up wait, retry backoff and
// queueing delay. kind attributes any spin-up the arrival provokes. A
// *FaultError is returned when an injected fault exhausts the spin-up
// retries; the enclosure then stays off and the I/O never runs. info,
// when non-nil, receives the arrival's phase breakdown.
func (e *enclosure) arrival(now time.Duration, block int64, size int32, sequential bool, kind ioKind, info *arrivalInfo) (time.Duration, error) {
	e.sync(now)
	if info != nil {
		switch {
		case !e.on:
			info.powerState = "off"
		case now < e.busyUntil:
			info.powerState = "active"
		default:
			info.powerState = "idle"
		}
	}
	start := now
	if !e.on {
		// Spin up, retrying failed attempts with exponential backoff on
		// the simulated clock. Each failed attempt still burns spin-up
		// energy (the motor turned); the backoff is spent powered off.
		attempt := 1
		for e.inj.SpinUpAttemptFails(start, e.id, attempt) {
			e.acc.Add(powermodel.SpinUp, e.cfg.Power.SpinUpTime)
			start += e.cfg.Power.SpinUpTime
			if info != nil {
				info.spinUpAttempts++
			}
			if attempt >= e.inj.MaxSpinUpAttempts() {
				e.lastSync = start
				e.inj.SpinUpExhausted(start, e.id)
				return 0, &FaultError{Enclosure: e.id, Op: "spin-up"}
			}
			backoff := e.inj.SpinUpBackoff(attempt)
			e.acc.Add(powermodel.Off, backoff)
			start += backoff
			attempt++
		}
		spinEnd := start + e.cfg.Power.SpinUpTime
		e.acc.Add(powermodel.SpinUp, e.cfg.Power.SpinUpTime)
		e.acc.CountSpinUp()
		e.on = true
		if e.powerEvent != nil {
			e.powerEvent(e.id, start, true, kind.cause())
		}
		for i := range e.servers {
			if e.servers[i] < spinEnd {
				e.servers[i] = spinEnd
			}
		}
		if e.busyUntil < spinEnd {
			// Spin-up residency is integrated eagerly; move the sync point
			// past it so it is not double counted as Active.
			e.busyUntil = spinEnd
		}
		e.lastSync = spinEnd
		start = spinEnd
		if info != nil {
			info.spinUpAttempts++
			info.spinUpWait = start - now
		}
	}
	svc := e.serviceTime(size, sequential)
	if e.inj.TransientIO(start, e.id) {
		// A transient error: the enclosure retries the I/O internally, so
		// it occupies its server twice plus the retry delay.
		svc = svc*2 + e.inj.TransientIODelay()
	}
	k := 0
	for i := 1; i < len(e.servers); i++ {
		if e.servers[i] < e.servers[k] {
			k = i
		}
	}
	begin := start
	if e.servers[k] > begin {
		begin = e.servers[k]
	}
	end := begin + svc
	e.servers[k] = end
	if end > e.busyUntil {
		e.busyUntil = end
	}
	if info != nil {
		info.queueWait = begin - start
		info.service = svc
	}
	return end, nil
}

// idleSince returns the start of the current idle period, or false when
// the enclosure is busy or off.
func (e *enclosure) idleSince(now time.Duration) (time.Duration, bool) {
	if !e.on || now < e.busyUntil {
		return 0, false
	}
	return e.busyUntil, true
}

// alloc reserves size bytes and returns the starting block address.
// Capacity enforcement is the caller's job; alloc only tracks addresses so
// sequential detection sees realistic layouts.
func (e *enclosure) alloc(size int64) int64 {
	base := e.allocCursor
	e.allocCursor += size
	e.used += size
	return base
}
