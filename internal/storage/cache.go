// The partitioned battery-backed storage cache: general read LRU,
// preload pinning, and write-delay dirty tracking.

package storage

import (
	"container/list"
	"time"

	"esm/internal/trace"
)

type pageKey struct {
	item trace.ItemID
	page int64
}

// lru is a fixed-capacity page cache with least-recently-used eviction.
type lru struct {
	capPages int
	ll       *list.List
	pages    map[pageKey]*list.Element
}

func newLRU(capBytes, pageBytes int64) *lru {
	capPages := int(capBytes / pageBytes)
	if capPages < 0 {
		capPages = 0
	}
	return &lru{
		capPages: capPages,
		ll:       list.New(),
		pages:    make(map[pageKey]*list.Element),
	}
}

// contains reports whether the page is cached, refreshing its recency.
func (c *lru) contains(k pageKey) bool {
	el, ok := c.pages[k]
	if ok {
		c.ll.MoveToFront(el)
	}
	return ok
}

// insert adds the page, evicting the least recently used page if full.
func (c *lru) insert(k pageKey) {
	if c.capPages == 0 {
		return
	}
	if el, ok := c.pages[k]; ok {
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capPages {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.pages, back.Value.(pageKey))
	}
	c.pages[k] = c.ll.PushFront(k)
}

// len returns the number of cached pages.
func (c *lru) len() int { return c.ll.Len() }

// preloadState tracks the preload cache partition: which data items are
// pinned and when their load completes. Reads of a pinned item hit the
// cache once the load has finished.
type preloadState struct {
	capBytes  int64
	usedBytes int64
	loadedAt  map[trace.ItemID]time.Duration
}

func newPreloadState(capBytes int64) *preloadState {
	return &preloadState{
		capBytes: capBytes,
		loadedAt: make(map[trace.ItemID]time.Duration),
	}
}

// hit reports whether a read of item at time now is served from the
// preload partition.
func (p *preloadState) hit(item trace.ItemID, now time.Duration) bool {
	at, ok := p.loadedAt[item]
	return ok && now >= at
}

// pinned reports whether item is currently selected for preload.
func (p *preloadState) pinned(item trace.ItemID) bool {
	_, ok := p.loadedAt[item]
	return ok
}

// evict unpins item, releasing size bytes of the partition budget. A
// no-op when the item is not pinned.
func (p *preloadState) evict(item trace.ItemID, size int64) {
	if _, ok := p.loadedAt[item]; !ok {
		return
	}
	delete(p.loadedAt, item)
	p.usedBytes -= size
	if p.usedBytes < 0 {
		p.usedBytes = 0
	}
}

// writeDelayState tracks the write-delay partition: selected items, dirty
// bytes per item, and the dirty page set (so reads of freshly written data
// hit the cache).
type writeDelayState struct {
	capBytes   int64
	rate       float64
	selected   map[trace.ItemID]bool
	dirtyBytes map[trace.ItemID]int64
	dirtyPages map[pageKey]bool
	totalDirty int64
}

func newWriteDelayState(capBytes int64, rate float64) *writeDelayState {
	return &writeDelayState{
		capBytes:   capBytes,
		rate:       rate,
		selected:   make(map[trace.ItemID]bool),
		dirtyBytes: make(map[trace.ItemID]int64),
		dirtyPages: make(map[pageKey]bool),
	}
}

// absorb records a delayed write and reports whether the dirty-block rate
// now forces a bulk destage.
func (w *writeDelayState) absorb(item trace.ItemID, firstPage, lastPage int64, size int32) bool {
	w.dirtyBytes[item] += int64(size)
	w.totalDirty += int64(size)
	for p := firstPage; p <= lastPage; p++ {
		w.dirtyPages[pageKey{item, p}] = true
	}
	return float64(w.totalDirty) >= w.rate*float64(w.capBytes)
}

// dirtyOf returns the dirty byte count of item.
func (w *writeDelayState) dirtyOf(item trace.ItemID) int64 { return w.dirtyBytes[item] }

// clearItem drops the dirty state of one item (after its destage) and
// returns how many bytes were destaged.
func (w *writeDelayState) clearItem(item trace.ItemID) int64 {
	n := w.dirtyBytes[item]
	if n == 0 {
		return 0
	}
	delete(w.dirtyBytes, item)
	w.totalDirty -= n
	for k := range w.dirtyPages {
		if k.item == item {
			delete(w.dirtyPages, k)
		}
	}
	return n
}
