package storage

import (
	"math/rand"
	"testing"
	"time"

	"esm/internal/trace"
)

func TestShardMapContiguousBalanced(t *testing.T) {
	m := NewShardMap(10, 4)
	if m.Shards() != 4 {
		t.Fatalf("shards = %d", m.Shards())
	}
	// Contiguous, non-decreasing, balanced to within one enclosure.
	counts := make([]int, 4)
	prev := 0
	for e := 0; e < 10; e++ {
		s := m.ShardOf(e)
		if s < prev {
			t.Fatalf("shard map not contiguous: enc %d on shard %d after shard %d", e, s, prev)
		}
		prev = s
		counts[s]++
	}
	for s, c := range counts {
		if c < 2 || c > 3 {
			t.Fatalf("shard %d owns %d enclosures, want 2 or 3", s, c)
		}
	}
}

func TestShardMapClamps(t *testing.T) {
	if got := NewShardMap(3, 8).Shards(); got != 3 {
		t.Fatalf("shards clamped to %d, want 3", got)
	}
	if got := NewShardMap(3, 0).Shards(); got != 1 {
		t.Fatalf("shards clamped to %d, want 1", got)
	}
	m := NewShardMap(1, 1)
	if m.ShardOf(0) != 0 {
		t.Fatal("single enclosure not on shard 0")
	}
}

// TestPlanExecAdmitMatchesSubmit drives two identical arrays through the
// same randomized workload — one via the serial Submit, one via the
// decomposed PlanSubmit / ExecPlanned / AdmitPlanned path the sharded
// engine uses — and requires identical per-op results, counters and
// integrated joules. Policy-style actions (write-delay and preload
// re-selection, item migration, destages) are interleaved so both cache
// phases and the physical path are exercised.
func TestPlanExecAdmitMatchesSubmit(t *testing.T) {
	const encls = 4
	sizes := []int64{64 << 20, 48 << 20, 32 << 20, 24 << 20, 16 << 20, 8 << 20, 96 << 20, 40 << 20}

	serial, sClk, _, sIDs := testArray(t, encls, sizes...)
	split, pClk, _, pIDs := testArray(t, encls, sizes...)

	rng := rand.New(rand.NewSource(42))
	now := time.Duration(0)
	for i := 0; i < 4000; i++ {
		now += time.Duration(rng.Intn(2000)) * time.Microsecond
		sClk.Advance(now)
		pClk.Advance(now)

		// Interleave policy-style actions at fixed points.
		switch {
		case i%997 == 500:
			k := rng.Intn(len(sIDs))
			dst := rng.Intn(encls)
			_ = serial.MigrateItem(sIDs[k], dst, nil)
			_ = split.MigrateItem(pIDs[k], dst, nil)
		case i%613 == 100:
			k := rng.Intn(len(sIDs))
			serial.SetWriteDelay(sIDs[k : k+1])
			split.SetWriteDelay(pIDs[k : k+1])
		case i%451 == 50:
			k := rng.Intn(len(sIDs))
			serial.SetPreload(sIDs[k : k+1])
			split.SetPreload(pIDs[k : k+1])
		}

		k := rng.Intn(len(sIDs))
		op := trace.OpRead
		if rng.Intn(3) == 0 {
			op = trace.OpWrite
		}
		off := int64(rng.Intn(1 << 20))
		size := int32(512 * (1 + rng.Intn(64)))
		sr := trace.LogicalRecord{Time: now, Item: sIDs[k], Offset: off, Size: size, Op: op}
		pr := trace.LogicalRecord{Time: now, Item: pIDs[k], Offset: off, Size: size, Op: op}

		wantRes, wantErr := serial.Submit(sr)

		plan, err := split.PlanSubmit(pr)
		var gotRes Result
		if err == nil {
			if plan.Served {
				gotRes = Result{Response: plan.Response, CacheHit: plan.CacheHit, Enclosure: -1}
				if plan.NeedFlush {
					split.FlushAll()
				}
			} else {
				op := DeferredOp{At: now, Enc: plan.Enc, Block: plan.Block, Size: size, Read: plan.Read, Item: plan.Item}
				resp, execErr := split.ExecPlanned(op, nil)
				if execErr != nil {
					t.Fatalf("op %d: ExecPlanned failed on fault-free run: %v", i, execErr)
				}
				gotRes = Result{Response: resp, Enclosure: plan.Enc}
				split.AdmitPlanned(plan)
			}
		}
		if (wantErr == nil) != (err == nil) {
			t.Fatalf("op %d: error mismatch: serial=%v split=%v", i, wantErr, err)
		}
		if wantErr == nil && gotRes != wantRes {
			t.Fatalf("op %d (%+v): result mismatch: serial=%+v split=%+v", i, sr, wantRes, gotRes)
		}
	}

	serial.Finish()
	split.Finish()

	if s, p := serial.Stats(), split.Stats(); s != p {
		t.Fatalf("stats diverged:\nserial %+v\nsplit  %+v", s, p)
	}
	if s, p := serial.Meter().EnclosureEnergyJ(), split.Meter().EnclosureEnergyJ(); s != p {
		t.Fatalf("joules diverged: serial=%v split=%v", s, p)
	}
	for e := 0; e < encls; e++ {
		if s, p := serial.EnclosureEnergy(e), split.EnclosureEnergy(e); s != p {
			t.Fatalf("enclosure %d energy diverged:\nserial %+v\nsplit  %+v", e, s, p)
		}
		if s, p := serial.Meter().Enclosure(e).SpinUps(), split.Meter().Enclosure(e).SpinUps(); s != p {
			t.Fatalf("enclosure %d spin-ups diverged: serial=%d split=%d", e, s, p)
		}
	}
}

// TestCanDefer pins the deferral-safety invariant's three conditions.
func TestCanDefer(t *testing.T) {
	arr, _, _, _ := testArray(t, 2, 8<<20)
	if !arr.CanDefer(0) {
		t.Fatal("fault-free, on, no-spin-down enclosure should be deferrable")
	}
	arr.SetSpinDownEnabled(0, true)
	if arr.CanDefer(0) {
		t.Fatal("spin-down-enabled enclosure must not be deferrable")
	}
	if !arr.CanDefer(1) {
		t.Fatal("enclosure 1 unaffected by enclosure 0's spin-down toggle")
	}
}

// TestSyncHookRunsOnEntryPoints verifies the conductor barrier hook fires
// on the public methods that touch shard-owned enclosure state.
func TestSyncHookRunsOnEntryPoints(t *testing.T) {
	arr, _, _, ids := testArray(t, 2, 8<<20)
	calls := 0
	arr.SetSyncHook(func() { calls++ })

	arr.Submit(trace.LogicalRecord{Item: ids[0], Size: 4096, Op: trace.OpRead})
	arr.MigrateItem(ids[0], 1, nil)
	arr.SetWriteDelay(ids)
	arr.SetPreload(nil)
	arr.SetSpinDownEnabled(0, true)
	arr.FlushAll()
	arr.EnclosureOn(0, 0)
	arr.Finish()
	if calls < 8 {
		t.Fatalf("sync hook ran %d times, want at least one per entry point (8)", calls)
	}
}
