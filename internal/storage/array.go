// Array is the simulated storage unit: the facade the replay engine and
// the power-saving policies talk to.

package storage

import (
	"fmt"
	"sort"
	"time"

	"esm/internal/faults"
	"esm/internal/obs"
	"esm/internal/powermodel"
	"esm/internal/simclock"
	"esm/internal/trace"
)

// FaultError reports an I/O or migration abandoned because an injected
// fault left its enclosure unavailable.
type FaultError struct {
	// Enclosure is the enclosure that could not be reached.
	Enclosure int
	// Op is the operation the fault interrupted ("spin-up").
	Op string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("storage: enclosure %d unavailable (%s failed)", e.Enclosure, e.Op)
}

// Result describes the outcome of one application I/O.
type Result struct {
	// Response is the application-observed response time, including
	// spin-up waits and queueing delay for physical I/Os.
	Response time.Duration
	// CacheHit reports whether the I/O was served entirely from cache.
	CacheHit bool
	// Enclosure is the enclosure that served a physical I/O, or -1.
	Enclosure int
}

// Stats aggregates array-level counters.
type Stats struct {
	PhysicalReads     int64
	PhysicalWrites    int64
	CacheHits         int64
	DelayedWrites     int64
	MigratedBytes     int64
	Migrations        int64
	MigrationsSkipped int64
	MigrationsFailed  int64
	FlushedBytes      int64
	PreloadedBytes    int64
}

// ExtentRef identifies one extent of a data item.
type ExtentRef struct {
	Item   trace.ItemID
	Extent int64
}

type extentLoc struct {
	enc  int
	base int64
}

type itemState struct {
	placed bool
	enc    int
	base   int64
	size   int64
}

// segment maps a block range of an enclosure back to the data item living
// there, for physical-to-logical resolution (used by DDR).
type segment struct {
	base   int64
	size   int64
	item   trace.ItemID
	extent int64 // -1 for a whole-item segment
}

type migration struct {
	item trace.ItemID
	dst  int
	// base is the destination block address, reserved when the copy
	// starts so interleaved allocations cannot shift it under the
	// in-flight chunks.
	base   int64
	offset int64
	// done, if non-nil, runs exactly once: when the copy completes, or
	// when the migration is skipped, dropped or abandoned on a fault.
	done func()
	// startedAt is when the copy began, for the tracer's migration span.
	startedAt time.Duration
}

// Array simulates the storage unit.
type Array struct {
	cfg  Config
	clk  *simclock.Clock
	evq  *simclock.EventQueue
	cat  *trace.Catalog
	mtr  *powermodel.Meter
	enc  []*enclosure
	segs [][]segment

	items   []itemState
	extents map[ExtentRef]extentLoc

	general *lru
	preload *preloadState
	wdelay  *writeDelayState

	stats Stats

	physObs  func(rec trace.PhysicalRecord)
	powerObs func(enc int, at time.Duration, on bool)
	// rec is the telemetry recorder; nil (the default) disables every
	// emission at the cost of one nil check per call site.
	rec *obs.Recorder
	// trc is the span tracer; nil (the default) disables span recording
	// and energy attribution at the cost of one nil check per call site.
	trc *obs.Tracer
	// prov is the decision-provenance ledger; nil (the default)
	// disables the context rows at the cost of one nil check per site.
	prov *obs.Provenance

	// inj injects faults; nil (the default) injects nothing. faultObs,
	// when non-nil, observes every injected fault (policies hook it to
	// react to fault load). batteryOK is false while the cache battery
	// is lost: the write-delay and preload functions are disabled.
	inj       *faults.Injector
	faultObs  func(ev faults.Event)
	batteryOK bool

	migQueue  []*migration
	migActive bool

	// syncHook, when non-nil, is the sharded engine's barrier: it runs
	// at the top of every public entry point that touches shard-owned
	// enclosure state, so deferred shard work settles before the call
	// proceeds (see shard.go and DESIGN.md §14). Nil under the serial
	// engine.
	syncHook func()
}

// New builds an array. The clock and event queue are shared with the
// replay engine so migrations and application I/O interleave on one
// virtual timeline.
func New(cfg Config, clk *simclock.Clock, evq *simclock.EventQueue, cat *trace.Catalog) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Array{
		cfg:       cfg,
		clk:       clk,
		evq:       evq,
		cat:       cat,
		mtr:       powermodel.NewMeter(cfg.Power, cfg.Enclosures),
		enc:       make([]*enclosure, cfg.Enclosures),
		segs:      make([][]segment, cfg.Enclosures),
		items:     make([]itemState, cat.Len()),
		extents:   make(map[ExtentRef]extentLoc),
		general:   newLRU(cfg.generalCacheBytes(), cfg.CachePageBytes),
		preload:   newPreloadState(cfg.PreloadCacheBytes),
		wdelay:    newWriteDelayState(cfg.WriteDelayCacheBytes, cfg.DirtyBlockRate),
		batteryOK: true,
	}
	for i := range a.enc {
		a.enc[i] = newEnclosure(i, &a.cfg)
		a.enc[i].acc = a.mtr.Enclosure(i)
		a.enc[i].powerEvent = a.onPowerEvent
	}
	return a, nil
}

func (a *Array) onPowerEvent(enc int, at time.Duration, on bool, cause obs.Cause) {
	if a.powerObs != nil {
		a.powerObs(enc, at, on)
	}
	if a.rec != nil {
		if on {
			// A power-on is a spin-up transition followed by service
			// readiness SpinUpTime later.
			a.rec.PowerTransition(at, enc, "spinup", cause)
			a.rec.PowerTransition(at+a.cfg.Power.SpinUpTime, enc, "on", cause)
		} else {
			a.rec.PowerTransition(at, enc, "off", cause)
		}
	}
	if a.prov != nil {
		if on {
			a.prov.PowerTransition(at, enc, "spinup", cause)
			a.prov.PowerTransition(at+a.cfg.Power.SpinUpTime, enc, "on", cause)
		} else {
			a.prov.PowerTransition(at, enc, "off", cause)
		}
	}
}

// SetPhysicalObserver installs a callback invoked for every physical I/O
// issued to an enclosure (application, migration, flush and preload
// traffic alike). It feeds the storage monitor.
func (a *Array) SetPhysicalObserver(fn func(rec trace.PhysicalRecord)) { a.physObs = fn }

// SetPowerObserver installs a callback invoked on every enclosure
// power-state transition.
func (a *Array) SetPowerObserver(fn func(enc int, at time.Duration, on bool)) { a.powerObs = fn }

// SetRecorder attaches the telemetry recorder. A nil recorder (the
// default) keeps the array's hot path free of telemetry work beyond a
// nil check.
func (a *Array) SetRecorder(rec *obs.Recorder) { a.rec = rec }

// Recorder returns the attached telemetry recorder (nil when off).
func (a *Array) Recorder() *obs.Recorder { return a.rec }

// SetTracer attaches the span tracer. A nil tracer (the default) keeps
// the physical I/O path free of tracing work beyond a nil check. Call
// it before replay starts so residency feeds see every placement.
func (a *Array) SetTracer(trc *obs.Tracer) { a.trc = trc }

// Tracer returns the attached span tracer (nil when off).
func (a *Array) Tracer() *obs.Tracer { return a.trc }

// SetProvenance attaches the decision-provenance recorder, which
// captures the triggering context of power transitions, migrations,
// preload loads and write-delay destages. Nil (the default) keeps the
// hot path at one pointer check.
func (a *Array) SetProvenance(p *obs.Provenance) { a.prov = p }

// Provenance returns the attached provenance recorder (nil when off).
func (a *Array) Provenance() *obs.Provenance { return a.prov }

// EnclosureEnergy reads enclosure e's integrated joules by power
// state, the attribution ledger's input. Call Finish (or otherwise
// sync the enclosures) first so the reading covers the full timeline.
func (a *Array) EnclosureEnergy(e int) obs.EnclosureEnergy {
	a.syncPoint()
	acc := a.mtr.Enclosure(e)
	return obs.EnclosureEnergy{
		ActiveJ: acc.StateEnergyJ(powermodel.Active),
		IdleJ:   acc.StateEnergyJ(powermodel.Idle),
		OffJ:    acc.StateEnergyJ(powermodel.Off),
		SpinUpJ: acc.StateEnergyJ(powermodel.SpinUp),
	}
}

// SetFaultInjector attaches a fault injector. A nil injector (the
// default) keeps every path fault-free. The array reports each injected
// fault to the telemetry recorder and the fault observer, and schedules
// the injector's cache-battery loss window on the event queue. Call it
// once, before replay starts.
func (a *Array) SetFaultInjector(inj *faults.Injector) {
	a.inj = inj
	for _, e := range a.enc {
		e.inj = inj
	}
	if inj == nil {
		return
	}
	inj.SetObserver(func(ev faults.Event) {
		a.rec.Fault(ev.T, obs.FaultEvent{
			Kind:      string(ev.Kind),
			Enclosure: ev.Enclosure,
			Attempt:   ev.Attempt,
		})
		a.prov.Fault(ev.T, ev.Enclosure, string(ev.Kind))
		if a.faultObs != nil {
			a.faultObs(ev)
		}
	})
	if fail, recover, ok := inj.BatteryWindow(); ok {
		a.evq.Schedule(fail, a.batteryFail)
		if recover > 0 {
			a.evq.Schedule(recover, a.batteryRecover)
		}
	}
}

// FaultInjector returns the attached injector (nil when off).
func (a *Array) FaultInjector() *faults.Injector { return a.inj }

// SetFaultObserver installs a callback invoked for every injected
// fault, in simulation order. Policies hook it to count fault load.
func (a *Array) SetFaultObserver(fn func(ev faults.Event)) { a.faultObs = fn }

// BatteryOK reports whether the cache battery is healthy. While it is
// not, the write-delay and preload functions are disabled.
func (a *Array) BatteryOK() bool { return a.batteryOK }

// batteryFail loses the cache battery: dirty delayed writes destage
// immediately, preloaded copies are dropped, and the cache functions
// stay disabled until batteryRecover.
func (a *Array) batteryFail(now time.Duration) {
	if !a.batteryOK {
		return
	}
	a.batteryOK = false
	a.inj.BatteryFailed(now)
	a.flushWriteDelay(now)
	if len(a.wdelay.selected) > 0 {
		if a.rec.Enabled() || a.prov.Enabled() {
			ids := make([]int64, 0, len(a.wdelay.selected))
			for it := range a.wdelay.selected {
				ids = append(ids, int64(it))
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			a.rec.CacheEvict(now, "write-delay", ids)
			a.prov.CacheOp(now, "write-delay", ids)
		}
		a.wdelay.selected = make(map[trace.ItemID]bool)
	}
	if len(a.preload.loadedAt) > 0 {
		ids := make([]int64, 0, len(a.preload.loadedAt))
		for it := range a.preload.loadedAt {
			ids = append(ids, int64(it))
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			a.preload.evict(trace.ItemID(id), a.items[id].size)
		}
		a.rec.CacheEvict(now, "preload", ids)
	}
}

// batteryRecover restores the cache battery. The cache functions come
// back at the policy's next determination, which re-selects items.
func (a *Array) batteryRecover(now time.Duration) {
	if a.batteryOK {
		return
	}
	a.batteryOK = true
	a.inj.BatteryRecovered(now)
}

// PowerTimeline returns enclosure e's recorded power-state segments
// (nil without a recorder).
func (a *Array) PowerTimeline(e int) []obs.Segment { return a.rec.Timeline(e) }

// CacheOccupancy is a point-in-time snapshot of the three cache
// partitions, for status reporting.
type CacheOccupancy struct {
	// GeneralPages and GeneralCapPages are the general read LRU's
	// occupancy and capacity in pages.
	GeneralPages    int `json:"general_pages"`
	GeneralCapPages int `json:"general_cap_pages"`
	// PreloadUsedBytes of PreloadCapBytes are pinned by preloaded items.
	PreloadUsedBytes int64 `json:"preload_used_bytes"`
	PreloadCapBytes  int64 `json:"preload_cap_bytes"`
	// WriteDelayDirtyBytes of WriteDelayCapBytes are dirty delayed
	// writes awaiting destage.
	WriteDelayDirtyBytes int64 `json:"write_delay_dirty_bytes"`
	WriteDelayCapBytes   int64 `json:"write_delay_cap_bytes"`
}

// CacheOccupancy returns the current cache partition usage.
func (a *Array) CacheOccupancy() CacheOccupancy {
	return CacheOccupancy{
		GeneralPages:         a.general.len(),
		GeneralCapPages:      a.general.capPages,
		PreloadUsedBytes:     a.preload.usedBytes,
		PreloadCapBytes:      a.preload.capBytes,
		WriteDelayDirtyBytes: a.wdelay.totalDirty,
		WriteDelayCapBytes:   a.wdelay.capBytes,
	}
}

// Config returns the array configuration.
func (a *Array) Config() Config { return a.cfg }

// Meter returns the power meter.
func (a *Array) Meter() *powermodel.Meter {
	a.syncPoint()
	return a.mtr
}

// Stats returns a snapshot of the array counters.
func (a *Array) Stats() Stats { return a.stats }

// Enclosures returns the enclosure count.
func (a *Array) Enclosures() int { return len(a.enc) }

// Capacity returns the per-enclosure capacity in bytes.
func (a *Array) Capacity() int64 { return a.cfg.EnclosureCapacity }

// Used returns the bytes allocated on enclosure e.
func (a *Array) Used(e int) int64 { return a.enc[e].used }

// EnclosureOn reports whether enclosure e is spun up at time now.
func (a *Array) EnclosureOn(e int, now time.Duration) bool {
	a.syncPoint()
	a.enc[e].sync(now)
	return a.enc[e].on
}

// IdleSince returns the start of enclosure e's current idle period; ok is
// false when the enclosure is busy or powered off.
func (a *Array) IdleSince(e int, now time.Duration) (time.Duration, bool) {
	a.syncPoint()
	a.enc[e].sync(now)
	return a.enc[e].idleSince(now)
}

// SpinDownEnabled reports whether power-off is enabled for enclosure e.
func (a *Array) SpinDownEnabled(e int) bool { return a.enc[e].spindownEnabled }

// SetSpinDownEnabled enables or disables the power-off function for one
// enclosure. Policies call this to mark cold enclosures.
func (a *Array) SetSpinDownEnabled(e int, enabled bool) {
	a.syncPoint()
	a.enc[e].setSpinDown(a.clk.Now(), enabled)
}

// Place assigns item its initial location on enclosure e. Every item must
// be placed exactly once, before replay starts.
func (a *Array) Place(item trace.ItemID, e int) error {
	st := &a.items[item]
	if st.placed {
		return fmt.Errorf("storage: item %q placed twice", a.cat.Name(item))
	}
	if e < 0 || e >= len(a.enc) {
		return fmt.Errorf("storage: enclosure %d out of range", e)
	}
	size := a.cat.Size(item)
	if a.enc[e].used+size > a.cfg.EnclosureCapacity {
		return fmt.Errorf("storage: enclosure %d over capacity placing %q", e, a.cat.Name(item))
	}
	base := a.enc[e].alloc(size)
	*st = itemState{placed: true, enc: e, base: base, size: size}
	a.segs[e] = append(a.segs[e], segment{base: base, size: size, item: item, extent: -1})
	a.trc.Residency(a.clk.Now(), e, int64(item), size)
	return nil
}

// ItemEnclosure returns the home enclosure of item.
func (a *Array) ItemEnclosure(item trace.ItemID) int { return a.items[item].enc }

// ItemSize returns the size of item in bytes.
func (a *Array) ItemSize(item trace.ItemID) int64 { return a.items[item].size }

// locate returns the physical location of a byte offset within item,
// honouring extent overrides.
func (a *Array) locate(item trace.ItemID, offset int64) (enc int, block int64) {
	st := &a.items[item]
	if len(a.extents) > 0 {
		ext := offset / a.cfg.ExtentBytes
		if loc, ok := a.extents[ExtentRef{item, ext}]; ok {
			return loc.enc, loc.base + offset%a.cfg.ExtentBytes
		}
	}
	return st.enc, st.base + offset
}

// ResolveExtent maps a physical (enclosure, block) back to the data-item
// extent living there. It lets physical-level policies (DDR) select
// migration units without application knowledge.
func (a *Array) ResolveExtent(e int, block int64) (ExtentRef, bool) {
	for i := range a.segs[e] {
		s := &a.segs[e][i]
		if block >= s.base && block < s.base+s.size {
			if s.extent >= 0 {
				return ExtentRef{s.item, s.extent}, true
			}
			return ExtentRef{s.item, (block - s.base) / a.cfg.ExtentBytes}, true
		}
	}
	return ExtentRef{}, false
}

// physical issues one physical I/O and returns its completion time.
// kind attributes any spin-up the I/O provokes; item is the data item
// the transfer belongs to (for energy attribution). info, when
// non-nil, receives the arrival's phase breakdown; when nil with a
// live tracer, a local one feeds the ledger. On a *FaultError the I/O
// never ran: nothing is counted or observed.
func (a *Array) physical(now time.Duration, e int, block int64, size int32, op trace.Op, forceSeq bool, kind ioKind, item trace.ItemID, info *arrivalInfo) (time.Duration, error) {
	encl := a.enc[e]
	seq := encl.isSequential(block, size) || forceSeq
	if info == nil && a.trc != nil {
		info = &arrivalInfo{}
	}
	end, err := encl.arrival(now, block, size, seq, kind, info)
	if err != nil {
		return 0, err
	}
	if a.trc != nil {
		fn := kind.fn()
		a.trc.Service(e, int64(item), fn, info.service)
		if info.spinUpAttempts > 0 {
			a.trc.SpinUps(e, int64(item), fn, info.spinUpAttempts)
		}
	}
	if op == trace.OpRead {
		a.stats.PhysicalReads++
	} else {
		a.stats.PhysicalWrites++
	}
	a.rec.PhysicalIO(op == trace.OpRead)
	if a.physObs != nil {
		a.physObs(trace.PhysicalRecord{
			Time:      now,
			Enclosure: int32(e),
			Block:     block,
			Size:      size,
			Op:        op,
		})
	}
	return end, nil
}

// Submit executes one application I/O at the current virtual time. An
// I/O to an unplaced item is an error; a *FaultError means an injected
// fault left the item's enclosure unavailable and the I/O failed (it
// consumed no service capacity and must not enter response metrics).
func (a *Array) Submit(rec trace.LogicalRecord) (Result, error) {
	a.syncPoint()
	now := a.clk.Now()
	item := rec.Item
	if int(item) < 0 || int(item) >= len(a.items) || !a.items[item].placed {
		return Result{Enclosure: -1}, fmt.Errorf("storage: I/O to unplaced item %d", item)
	}
	firstPage := rec.Offset / a.cfg.CachePageBytes
	lastPage := (rec.Offset + int64(rec.Size) - 1) / a.cfg.CachePageBytes
	if rec.Size <= 0 {
		lastPage = firstPage
	}

	if rec.Op == trace.OpRead {
		if a.preload.hit(item, now) {
			a.stats.CacheHits++
			a.rec.CacheHit()
			a.traceCacheHit(now, item, true, a.cfg.CacheHitTime)
			return Result{Response: a.cfg.CacheHitTime, CacheHit: true, Enclosure: -1}, nil
		}
		if a.readCached(item, firstPage, lastPage) {
			a.stats.CacheHits++
			a.rec.CacheHit()
			a.traceCacheHit(now, item, true, a.cfg.CacheHitTime)
			return Result{Response: a.cfg.CacheHitTime, CacheHit: true, Enclosure: -1}, nil
		}
		e, block := a.locate(item, rec.Offset)
		var info *arrivalInfo
		if a.trc != nil {
			info = &arrivalInfo{}
		}
		end, err := a.physical(now, e, block, rec.Size, trace.OpRead, false, kindApp, item, info)
		if err != nil {
			a.inj.CountFailedAppIO()
			return Result{Enclosure: e}, err
		}
		if a.trc != nil {
			a.tracePhysical(now, end, item, e, true, info)
		}
		if !a.preload.pinned(item) {
			for p := firstPage; p <= lastPage; p++ {
				a.general.insert(pageKey{item, p})
			}
		}
		return Result{Response: end - now, Enclosure: e}, nil
	}

	// Write path. A write invalidates any pinned preload copy first: the
	// fresh data lands on disk or in the write-delay partition, and the
	// stale pinned copy must not serve later reads.
	a.evictPreload(now, item)
	if a.batteryOK && a.wdelay.selected[item] {
		a.stats.DelayedWrites++
		a.rec.DelayedWrite()
		a.traceCacheHit(now, item, false, a.cfg.CacheAckTime)
		if a.wdelay.absorb(item, firstPage, lastPage, rec.Size) {
			a.flushWriteDelay(now)
		}
		return Result{Response: a.cfg.CacheAckTime, CacheHit: true, Enclosure: -1}, nil
	}
	e, block := a.locate(item, rec.Offset)
	var info *arrivalInfo
	if a.trc != nil {
		info = &arrivalInfo{}
	}
	end, err := a.physical(now, e, block, rec.Size, trace.OpWrite, false, kindApp, item, info)
	if err != nil {
		a.inj.CountFailedAppIO()
		return Result{Enclosure: e}, err
	}
	if a.trc != nil {
		a.tracePhysical(now, end, item, e, false, info)
	}
	for p := firstPage; p <= lastPage; p++ {
		if a.general.contains(pageKey{item, p}) {
			a.general.insert(pageKey{item, p})
		}
	}
	return Result{Response: end - now, Enclosure: e}, nil
}

// traceCacheHit records the span of a cache-resolved application I/O.
func (a *Array) traceCacheHit(now time.Duration, item trace.ItemID, read bool, resp time.Duration) {
	if a.trc == nil {
		return
	}
	a.trc.IO(obs.IOSpan{
		Start: now, Response: resp,
		Item: int64(item), Enclosure: -1, Read: read,
		Cause: obs.IOCacheHit,
	})
}

// tracePhysical records the span of a physically served application
// I/O from its captured arrival breakdown.
func (a *Array) tracePhysical(now, end time.Duration, item trace.ItemID, e int, read bool, info *arrivalInfo) {
	cause := obs.IODiskOn
	if info.spinUpWait > 0 {
		cause = obs.IOSpinUpBlocked
	}
	a.trc.IO(obs.IOSpan{
		Start: now, Response: end - now,
		Item: int64(item), Enclosure: e, Read: read,
		PowerState: info.powerState, Cause: cause,
		SpinUpWait: info.spinUpWait, QueueWait: info.queueWait, Service: info.service,
	})
}

// evictPreload drops item's pinned preload copy, if any, releasing its
// partition budget.
func (a *Array) evictPreload(now time.Duration, item trace.ItemID) {
	if !a.preload.pinned(item) {
		return
	}
	a.preload.evict(item, a.items[item].size)
	a.rec.CacheEvict(now, "preload", []int64{int64(item)})
}

// readCached reports whether every page of the read is available in the
// general LRU or among write-delay dirty pages.
func (a *Array) readCached(item trace.ItemID, firstPage, lastPage int64) bool {
	for p := firstPage; p <= lastPage; p++ {
		k := pageKey{item, p}
		if a.general.contains(k) {
			continue
		}
		if a.wdelay.dirtyPages[k] {
			continue
		}
		return false
	}
	return true
}

// chunked issues a bulk transfer as a series of physical I/Os of at most
// chunk bytes, all submitted at time now (they serialise in the enclosure
// queue). It returns the completion time of the last chunk. The transfer
// aborts on the first faulted chunk (in practice only the first can
// fault: once the enclosure is up, later chunks cannot hit a spin-up
// failure).
func (a *Array) chunked(now time.Duration, e int, base, size int64, chunk int64, op trace.Op, kind ioKind, item trace.ItemID) (time.Duration, error) {
	var end time.Duration
	for off := int64(0); off < size; off += chunk {
		n := chunk
		if size-off < n {
			n = size - off
		}
		var err error
		end, err = a.physical(now, e, base+off, int32(n), op, true, kind, item, nil)
		if err != nil {
			return 0, err
		}
	}
	return end, nil
}

// flushWriteDelay destages every dirty item in one go (the paper's bulk
// write when the dirty-block rate is reached).
func (a *Array) flushWriteDelay(now time.Duration) {
	items := make([]trace.ItemID, 0, len(a.wdelay.dirtyBytes))
	for it := range a.wdelay.dirtyBytes {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for _, it := range items {
		a.flushItem(now, it)
	}
}

// flushItem destages the dirty bytes of one item to its home enclosure.
// When the enclosure is unavailable the data stays dirty in the cache;
// a later destage retries it.
func (a *Array) flushItem(now time.Duration, item trace.ItemID) {
	n := a.wdelay.dirtyOf(item)
	if n == 0 {
		return
	}
	st := &a.items[item]
	end, err := a.chunked(now, st.enc, st.base, n, 256<<20, trace.OpWrite, kindFlush, item)
	if err != nil {
		a.inj.CountFailedFlush()
		return
	}
	if a.trc != nil {
		a.trc.Management(obs.ManagementSpan{
			Kind: "destage", Start: now, End: end,
			Item: int64(item), Enclosure: st.enc, Dst: -1, Bytes: n,
		})
	}
	a.wdelay.clearItem(item)
	a.stats.FlushedBytes += n
}

// SetWriteDelay replaces the set of write-delay-applied items. Items that
// leave the set have their dirty data destaged immediately (§V-B). While
// the cache battery is lost the selection is forced empty: delaying
// writes without battery backing would risk data loss.
func (a *Array) SetWriteDelay(items []trace.ItemID) {
	a.syncPoint()
	if !a.batteryOK {
		items = nil
	}
	now := a.clk.Now()
	next := make(map[trace.ItemID]bool, len(items))
	for _, it := range items {
		next[it] = true
	}
	observed := a.rec.Enabled() || a.prov.Enabled()
	var evicted, added []int64
	for it := range a.wdelay.selected {
		if !next[it] {
			a.flushItem(now, it)
			if observed {
				evicted = append(evicted, int64(it))
			}
		}
	}
	if observed {
		for it := range next {
			if !a.wdelay.selected[it] {
				added = append(added, int64(it))
			}
		}
		sort.Slice(evicted, func(i, j int) bool { return evicted[i] < evicted[j] })
		sort.Slice(added, func(i, j int) bool { return added[i] < added[j] })
		a.rec.CacheEvict(now, "write-delay", evicted)
		a.rec.CacheSelect(now, "write-delay", added)
		a.prov.CacheOp(now, "write-delay", evicted)
	}
	a.wdelay.selected = next
}

// WriteDelayed reports whether item is currently write-delay applied.
func (a *Array) WriteDelayed(item trace.ItemID) bool { return a.wdelay.selected[item] }

// SetPreload replaces the set of preloaded items (§V-C): items no longer
// selected are evicted, newly selected items are loaded from their
// enclosures with bulk sequential reads, and already-loaded items are
// kept. The list is priority-ordered: the partition budget is granted in
// list order, so a previously pinned item that no longer fits behind
// higher-priority selections is evicted rather than squatting on the
// budget forever. While the cache battery is lost the selection is
// forced empty.
func (a *Array) SetPreload(items []trace.ItemID) {
	a.syncPoint()
	if !a.batteryOK {
		items = nil
	}
	now := a.clk.Now()
	keep := make(map[trace.ItemID]bool, len(items))
	var used int64
	var toLoad []trace.ItemID
	for _, it := range items {
		if keep[it] {
			continue
		}
		size := a.items[it].size
		if used+size > a.preload.capBytes {
			continue
		}
		keep[it] = true
		used += size
		if !a.preload.pinned(it) {
			toLoad = append(toLoad, it)
		}
	}
	var evicted []int64
	for it := range a.preload.loadedAt {
		if !keep[it] {
			delete(a.preload.loadedAt, it)
			if a.rec.Enabled() {
				evicted = append(evicted, int64(it))
			}
		}
	}
	if a.rec.Enabled() {
		sort.Slice(evicted, func(i, j int) bool { return evicted[i] < evicted[j] })
		a.rec.CacheEvict(now, "preload", evicted)
	}
	a.preload.usedBytes = used
	var loaded []int64
	for _, it := range toLoad {
		st := &a.items[it]
		end, err := a.chunked(now, st.enc, st.base, st.size, 256<<20, trace.OpRead, kindPreload, it)
		if err != nil {
			// The bulk read could not run; the item is not pinned and its
			// budget is released.
			a.inj.CountFailedPreload()
			a.preload.usedBytes -= st.size
			continue
		}
		a.preload.loadedAt[it] = end
		a.stats.PreloadedBytes += st.size
		if a.trc != nil {
			a.trc.Management(obs.ManagementSpan{
				Kind: "preload", Start: now, End: end,
				Item: int64(it), Enclosure: st.enc, Dst: -1, Bytes: st.size,
			})
		}
		if a.rec.Enabled() || a.prov.Enabled() {
			loaded = append(loaded, int64(it))
		}
	}
	a.rec.CacheSelect(now, "preload", loaded)
	a.prov.CacheOp(now, "preload", loaded)
}

// Preloaded reports whether item is pinned in the preload partition.
func (a *Array) Preloaded(item trace.ItemID) bool { return a.preload.pinned(item) }

// PreloadCapacity returns the preload partition size in bytes.
func (a *Array) PreloadCapacity() int64 { return a.preload.capBytes }

// MigrateItem queues an online migration of item to enclosure dst.
// Migrations are throttled to MigrationBps and run one at a time, in
// submission order (§V-A): spills from hot enclosures run before the P3
// moves whose space they create. The destination capacity check therefore
// happens when the migration starts, not when it is queued; a migration
// whose destination is still full at start time is dropped and counted in
// Stats.MigrationsSkipped. done, if non-nil, runs when the copy finishes.
func (a *Array) MigrateItem(item trace.ItemID, dst int, done func()) error {
	a.syncPoint()
	st := &a.items[item]
	if !st.placed {
		return fmt.Errorf("storage: migrating unplaced item %d", item)
	}
	if dst < 0 || dst >= len(a.enc) {
		return fmt.Errorf("storage: enclosure %d out of range", dst)
	}
	if dst == st.enc {
		if done != nil {
			done()
		}
		return nil
	}
	a.migQueue = append(a.migQueue, &migration{item: item, dst: dst, done: done})
	a.kickMigration()
	return nil
}

func (a *Array) kickMigration() {
	for !a.migActive && len(a.migQueue) > 0 {
		m := a.migQueue[0]
		a.migQueue = a.migQueue[1:]
		st := &a.items[m.item]
		if m.dst == st.enc {
			if m.done != nil {
				m.done()
			}
			continue
		}
		if a.enc[m.dst].used+st.size > a.cfg.EnclosureCapacity {
			a.stats.MigrationsSkipped++
			a.rec.MigrationSkipped(a.clk.Now(), int64(m.item), m.dst)
			if m.done != nil {
				m.done()
			}
			continue
		}
		// Reserve the destination space and block range up front: the
		// chunks land at a fixed base that interleaved allocations on the
		// destination cannot shift.
		m.base = a.enc[m.dst].alloc(st.size)
		a.migActive = true
		// Destage any delayed writes so the copy is complete.
		a.flushItem(a.clk.Now(), m.item)
		m.startedAt = a.clk.Now()
		a.rec.MigrationStart(a.clk.Now(), int64(m.item), st.enc, m.dst, st.size)
		a.migrateChunk(a.clk.Now(), m)
	}
}

// migrateChunk copies the next chunk of m and schedules the following one
// at the throttled rate. A faulted copy abandons the migration.
func (a *Array) migrateChunk(now time.Duration, m *migration) {
	st := &a.items[m.item]
	size := st.size
	n := a.cfg.MigrationChunkBytes
	if size-m.offset < n {
		n = size - m.offset
	}
	if n > 0 {
		if err := a.readMigrationSpan(now, m.item, m.offset, n); err != nil {
			a.failMigration(now, m)
			return
		}
		if _, err := a.physical(now, m.dst, m.base+m.offset, int32(n), trace.OpWrite, true, kindMigration, m.item, nil); err != nil {
			a.failMigration(now, m)
			return
		}
		a.stats.MigratedBytes += n
		m.offset += n
	}
	if m.offset >= size {
		a.finishMigration(m)
		return
	}
	delay := time.Duration(float64(n) / a.cfg.MigrationBps * float64(time.Second))
	a.evq.Schedule(now+delay, func(t time.Duration) { a.migrateChunk(t, m) })
}

// readMigrationSpan reads n bytes of item starting at byte offset off
// for a migration copy, splitting the read at extent boundaries so a
// remapped extent is read from its override location rather than the
// item's original home.
func (a *Array) readMigrationSpan(now time.Duration, item trace.ItemID, off, n int64) error {
	if len(a.extents) == 0 {
		st := &a.items[item]
		_, err := a.physical(now, st.enc, st.base+off, int32(n), trace.OpRead, true, kindMigration, item, nil)
		return err
	}
	for n > 0 {
		span := a.cfg.ExtentBytes - off%a.cfg.ExtentBytes
		if span > n {
			span = n
		}
		e, block := a.locate(item, off)
		if _, err := a.physical(now, e, block, int32(span), trace.OpRead, true, kindMigration, item, nil); err != nil {
			return err
		}
		off += span
		n -= span
	}
	return nil
}

// failMigration abandons an in-flight migration on a fault: the item
// stays at its source, the destination's space reservation is released
// (the reserved block range is not reused — a harmless address-space
// hole), and the next queued migration starts.
func (a *Array) failMigration(now time.Duration, m *migration) {
	st := &a.items[m.item]
	a.enc[m.dst].used -= st.size
	a.stats.MigrationsFailed++
	a.inj.CountFailedMigration()
	a.rec.MigrationFailed(now, int64(m.item), st.enc, m.dst)
	if a.trc != nil {
		a.trc.Management(obs.ManagementSpan{
			Kind: "migration-failed", Start: m.startedAt, End: now,
			Item: int64(m.item), Enclosure: st.enc, Dst: m.dst, Bytes: m.offset,
		})
	}
	a.migActive = false
	if m.done != nil {
		m.done()
	}
	a.kickMigration()
}

func (a *Array) finishMigration(m *migration) {
	st := &a.items[m.item]
	src := st.enc
	// Drop source segments (whole-item and extent overrides alike), and
	// release each override's allocation on its own enclosure.
	a.removeItemSegments(src, m.item)
	var remapped int64
	for ref, loc := range a.extents {
		if ref.Item == m.item {
			a.removeExtentSegment(loc.enc, ref)
			n := a.extentSize(m.item, ref.Extent)
			a.enc[loc.enc].used -= n
			a.trc.Residency(a.clk.Now(), loc.enc, int64(m.item), -n)
			remapped += n
			delete(a.extents, ref)
		}
	}
	a.enc[src].used -= st.size
	// The block range was reserved when the copy started; it now becomes
	// the item's home.
	st.enc = m.dst
	st.base = m.base
	a.segs[m.dst] = append(a.segs[m.dst], segment{base: m.base, size: st.size, item: m.item, extent: -1})
	a.migActive = false
	a.stats.Migrations++
	a.rec.MigrationDone(a.clk.Now(), int64(m.item), src, m.dst, st.size)
	a.prov.MigrationDone(a.clk.Now(), int64(m.item), src, m.dst)
	if a.trc != nil {
		now := a.clk.Now()
		a.trc.Management(obs.ManagementSpan{
			Kind: "migration", Start: m.startedAt, End: now,
			Item: int64(m.item), Enclosure: src, Dst: m.dst, Bytes: st.size,
		})
		// The source held the item's bytes minus any extents that had
		// been remapped away (those were debited above, at their
		// override locations); the destination now holds it whole.
		a.trc.Residency(now, src, int64(m.item), -(st.size - remapped))
		a.trc.Residency(now, m.dst, int64(m.item), st.size)
	}
	if m.done != nil {
		m.done()
	}
	a.kickMigration()
}

func (a *Array) removeItemSegments(e int, item trace.ItemID) {
	segs := a.segs[e][:0]
	for _, s := range a.segs[e] {
		if s.item != item {
			segs = append(segs, s)
		}
	}
	a.segs[e] = segs
}

// extentSize returns the byte size of extent ext of item (the last extent
// may be short).
func (a *Array) extentSize(item trace.ItemID, ext int64) int64 {
	size := a.items[item].size
	start := ext * a.cfg.ExtentBytes
	if start >= size {
		return 0
	}
	n := a.cfg.ExtentBytes
	if size-start < n {
		n = size - start
	}
	return n
}

// MigrateExtent immediately relocates one extent of item to enclosure dst,
// copying it through the enclosure queues. This is the physical-block
// migration primitive used by DDR. It returns an error when dst lacks
// space or the extent is empty.
func (a *Array) MigrateExtent(ref ExtentRef, dst int) error {
	a.syncPoint()
	n := a.extentSize(ref.Item, ref.Extent)
	if n == 0 {
		return fmt.Errorf("storage: empty extent %v", ref)
	}
	now := a.clk.Now()
	srcEnc, srcBlock := a.locate(ref.Item, ref.Extent*a.cfg.ExtentBytes)
	if srcEnc == dst {
		return nil
	}
	if a.enc[dst].used+n > a.cfg.EnclosureCapacity {
		return fmt.Errorf("storage: enclosure %d lacks space for extent %v", dst, ref)
	}
	if _, err := a.physical(now, srcEnc, srcBlock, int32(n), trace.OpRead, true, kindMigration, ref.Item, nil); err != nil {
		a.stats.MigrationsFailed++
		a.inj.CountFailedMigration()
		return err
	}
	base := a.enc[dst].alloc(n)
	if _, err := a.physical(now, dst, base, int32(n), trace.OpWrite, true, kindMigration, ref.Item, nil); err != nil {
		// Release the reservation; the cursor hole is harmless.
		a.enc[dst].used -= n
		a.stats.MigrationsFailed++
		a.inj.CountFailedMigration()
		return err
	}
	if loc, ok := a.extents[ref]; ok {
		// The extent had already been remapped once; release its previous
		// override allocation.
		a.enc[loc.enc].used -= n
		a.removeExtentSegment(loc.enc, ref)
	}
	a.extents[ref] = extentLoc{enc: dst, base: base}
	a.segs[dst] = append(a.segs[dst], segment{base: base, size: n, item: ref.Item, extent: ref.Extent})
	a.stats.MigratedBytes += n
	a.stats.Migrations++
	if a.trc != nil {
		a.trc.Management(obs.ManagementSpan{
			Kind: "migration", Start: now, End: a.clk.Now(),
			Item: int64(ref.Item), Enclosure: srcEnc, Dst: dst, Bytes: n,
		})
		a.trc.Residency(now, srcEnc, int64(ref.Item), -n)
		a.trc.Residency(now, dst, int64(ref.Item), n)
	}
	return nil
}

func (a *Array) removeExtentSegment(e int, ref ExtentRef) {
	segs := a.segs[e][:0]
	for _, s := range a.segs[e] {
		if s.item == ref.Item && s.extent == ref.Extent {
			continue
		}
		segs = append(segs, s)
	}
	a.segs[e] = segs
}

// MigrationsPending reports whether migrations are queued or running.
func (a *Array) MigrationsPending() bool { return a.migActive || len(a.migQueue) > 0 }

// DropQueuedMigrations discards every migration that has not started yet.
// A policy calls this when a new placement plan supersedes the previous
// one; the in-flight copy, if any, still completes. Each dropped
// migration's done callback runs, so no caller waits forever on a copy
// that will never happen.
func (a *Array) DropQueuedMigrations() {
	a.syncPoint()
	q := a.migQueue
	a.migQueue = nil
	for _, m := range q {
		if m.done != nil {
			m.done()
		}
	}
}

// FlushAll destages every dirty write-delayed item, as at end of run.
func (a *Array) FlushAll() {
	a.syncPoint()
	a.flushWriteDelay(a.clk.Now())
}

// Finish integrates every enclosure's power timeline up to now. Call it
// once after the event queue drains, before reading the meter.
func (a *Array) Finish() {
	a.syncPoint()
	now := a.clk.Now()
	for _, e := range a.enc {
		e.sync(now)
	}
}
