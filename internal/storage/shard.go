// Shard partitioning of the array for the sharded replay engine.
//
// The engine splits the enclosures into contiguous groups ("shards") and
// runs each group's physical I/O on its own worker lane. The split is
// safe because almost all of an enclosure's hot-path state — power
// accumulator, server queue, sequential-stream cursors, busy horizon —
// is touched only by arrivals to that enclosure. Everything shared
// (cache partitions, item/extent maps, counters, the migration queue,
// telemetry) stays with the conductor, which prepares each I/O with
// PlanSubmit, hands the enclosure physics to the owning shard with
// ExecPlanned, and finishes the cache admission with AdmitPlanned.
//
// The conductor installs a sync hook (SetSyncHook) that the array calls
// at the top of every public method touching shard-owned state: any
// policy action — a migration, a cache re-selection, a spin-down toggle,
// a meter read — transparently forces a shard barrier first, so
// cross-shard interactions always observe fully settled enclosures. The
// hook is how the conservative barrier protocol stays invisible to
// policies: they call the same Array methods as under the serial engine.

package storage

import (
	"fmt"
	"time"

	"esm/internal/trace"
)

// ShardMap assigns each enclosure to one shard, in contiguous balanced
// groups so the assignment is deterministic and cache/migration locality
// within a group is preserved.
type ShardMap struct {
	shardOf []int
	shards  int
}

// NewShardMap splits n enclosures over at most shards groups. The shard
// count is clamped to [1, n].
func NewShardMap(n, shards int) ShardMap {
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	m := ShardMap{shardOf: make([]int, n), shards: shards}
	base := n / shards
	extra := n % shards
	e := 0
	for s := 0; s < shards; s++ {
		size := base
		if s < extra {
			size++
		}
		for i := 0; i < size; i++ {
			m.shardOf[e] = s
			e++
		}
	}
	return m
}

// Shards returns the effective shard count.
func (m ShardMap) Shards() int { return m.shards }

// ShardOf returns the shard owning enclosure e.
func (m ShardMap) ShardOf(e int) int { return m.shardOf[e] }

// SetSyncHook installs the conductor's barrier callback. When non-nil it
// runs at the top of every public array entry point that reads or
// mutates shard-owned enclosure state, so in-flight shard work settles
// before the call proceeds. The serial engine leaves it nil.
func (a *Array) SetSyncHook(fn func()) { a.syncHook = fn }

// syncPoint runs the conductor's barrier callback, if any.
func (a *Array) syncPoint() {
	if a.syncHook != nil {
		a.syncHook()
	}
}

// Plan is the cache-phase outcome of one application I/O, produced by
// PlanSubmit on the conductor. Either the I/O was served by the cache
// (Served) or it must run physically on enclosure Enc at block Block.
type Plan struct {
	// Served reports a cache-resolved I/O; Response and CacheHit then
	// mirror the Result of the serial Submit.
	Served   bool
	Response time.Duration
	CacheHit bool
	// NeedFlush reports that a delayed write pushed the dirty-block rate
	// over the threshold: the caller must run FlushAll next, exactly
	// where the serial Submit destages inline.
	NeedFlush bool
	// Enc and Block locate the physical I/O when not Served.
	Enc   int
	Block int64
	// Read distinguishes the physical read and write paths for
	// admission.
	Read bool
	// Item and the page span, for AdmitPlanned.
	Item                trace.ItemID
	FirstPage, LastPage int64
}

// PlanSubmit runs the cache phase of one application I/O on the
// conductor: preload/LRU/dirty-page hits, write-delay absorption, and
// the physical-target lookup. It performs exactly the conductor-state
// mutations and counter/recorder bookkeeping the serial Submit would,
// in the same order, but executes no enclosure arrival — that part is
// returned as a Plan for ExecPlanned. Only valid on fault-free runs
// (the fault path needs the arrival outcome before counting).
//
// The split is semantics-preserving because on a fault-free run a
// planned physical I/O cannot fail: the serial Submit's post-arrival
// bookkeeping (stats, the physical-I/O counters) is unconditional, so
// hoisting it to plan time changes nothing observable. Cache admission
// is NOT hoisted — the serial engine admits after the physical-observer
// callback (which may replan and re-select the caches), so AdmitPlanned
// replays it at that same point.
func (a *Array) PlanSubmit(rec trace.LogicalRecord) (Plan, error) {
	now := a.clk.Now()
	item := rec.Item
	if int(item) < 0 || int(item) >= len(a.items) || !a.items[item].placed {
		return Plan{}, fmt.Errorf("storage: I/O to unplaced item %d", item)
	}
	firstPage := rec.Offset / a.cfg.CachePageBytes
	lastPage := (rec.Offset + int64(rec.Size) - 1) / a.cfg.CachePageBytes
	if rec.Size <= 0 {
		lastPage = firstPage
	}
	p := Plan{Item: item, FirstPage: firstPage, LastPage: lastPage}

	if rec.Op == trace.OpRead {
		if a.preload.hit(item, now) || a.readCached(item, firstPage, lastPage) {
			a.stats.CacheHits++
			a.rec.CacheHit()
			p.Served, p.Response, p.CacheHit = true, a.cfg.CacheHitTime, true
			return p, nil
		}
		p.Enc, p.Block = a.locate(item, rec.Offset)
		p.Read = true
		a.stats.PhysicalReads++
		a.rec.PhysicalIO(true)
		return p, nil
	}

	// Write path, mirroring Submit: invalidate any pinned preload copy
	// first, then absorb into the write-delay partition when selected.
	a.evictPreload(now, item)
	if a.batteryOK && a.wdelay.selected[item] {
		a.stats.DelayedWrites++
		a.rec.DelayedWrite()
		p.Served, p.Response, p.CacheHit = true, a.cfg.CacheAckTime, true
		p.NeedFlush = a.wdelay.absorb(item, firstPage, lastPage, rec.Size)
		return p, nil
	}
	p.Enc, p.Block = a.locate(item, rec.Offset)
	a.stats.PhysicalWrites++
	a.rec.PhysicalIO(false)
	return p, nil
}

// AdmitPlanned finishes a planned physical I/O's cache admission, at the
// point the serial Submit performs it: after the physical observer has
// run. Reads admit their pages into the general LRU unless the item is
// preload-pinned; writes refresh pages already cached.
func (a *Array) AdmitPlanned(p Plan) {
	if p.Served {
		return
	}
	if p.Read {
		if !a.preload.pinned(p.Item) {
			for pg := p.FirstPage; pg <= p.LastPage; pg++ {
				a.general.insert(pageKey{p.Item, pg})
			}
		}
		return
	}
	for pg := p.FirstPage; pg <= p.LastPage; pg++ {
		if a.general.contains(pageKey{p.Item, pg}) {
			a.general.insert(pageKey{p.Item, pg})
		}
	}
}

// CanDefer reports whether a planned physical I/O to enclosure e may
// run on a shard worker instead of the conductor. The condition is the
// deferral-safety invariant of DESIGN.md §14: with no fault injector,
// and the enclosure powered on with spin-down disabled, an arrival can
// neither fail, nor change the power state, nor emit any event — it
// only advances the enclosure's private accumulators. Everything else
// (possible spin-up, power events, fault draws) must run on the
// conductor in global order.
func (a *Array) CanDefer(e int) bool {
	return a.inj == nil && a.enc[e].on && !a.enc[e].spindownEnabled
}

// DeferredOp is one planned physical application I/O, ready for
// ExecPlanned on the enclosure's owning shard.
type DeferredOp struct {
	At    time.Duration
	Enc   int
	Block int64
	Size  int32
	Read  bool
	Item  trace.ItemID
}

// ExecInfo is the exported arrival phase breakdown, for span
// construction by the engine. Pass nil when tracing is off.
type ExecInfo struct {
	PowerState     string
	SpinUpWait     time.Duration
	QueueWait      time.Duration
	Service        time.Duration
	SpinUpAttempts int
}

// ExecPlanned runs the enclosure physics of one planned I/O and returns
// the response time. It performs no counting, no admission and no
// telemetry — PlanSubmit and the engine own those — so for a deferrable
// op it touches exclusively the target enclosure's state and is safe to
// run on that shard's worker. For a non-deferrable op (possible
// spin-up) it must run on the conductor after a barrier on the owning
// shard; the spin-up's power events then fire in global order exactly
// as under the serial engine.
func (a *Array) ExecPlanned(op DeferredOp, info *ExecInfo) (time.Duration, error) {
	encl := a.enc[op.Enc]
	seq := encl.isSequential(op.Block, op.Size)
	var ai *arrivalInfo
	if info != nil {
		ai = &arrivalInfo{}
	}
	end, err := encl.arrival(op.At, op.Block, op.Size, seq, kindApp, ai)
	if err != nil {
		return 0, err
	}
	if info != nil {
		*info = ExecInfo{
			PowerState:     ai.powerState,
			SpinUpWait:     ai.spinUpWait,
			QueueWait:      ai.queueWait,
			Service:        ai.service,
			SpinUpAttempts: ai.spinUpAttempts,
		}
	}
	return end - op.At, nil
}
