package storage

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"esm/internal/faults"
	"esm/internal/simclock"
	"esm/internal/trace"
)

// spinDown powers enclosure e off by enabling spin-down and letting the
// idle timeout expire on the clock.
func spinDown(t *testing.T, arr *Array, clk *simclock.Clock, e int) {
	t.Helper()
	arr.SetSpinDownEnabled(e, true)
	clk.Advance(2 * arr.Config().SpinDownTimeout)
	if arr.EnclosureOn(e, clk.Now()) {
		t.Fatalf("enclosure %d still on after idle timeout", e)
	}
}

func TestSpinUpExhaustionFailsIO(t *testing.T) {
	arr, clk, _, ids := testArray(t, 1, 64<<20)
	inj, err := faults.NewInjector(faults.Config{
		Seed: 1, SpinUpFailProb: 1, SpinUpMaxRetries: 2, SpinUpBackoff: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	arr.SetFaultInjector(inj)
	var events []faults.Event
	arr.SetFaultObserver(func(ev faults.Event) { events = append(events, ev) })
	spinDown(t, arr, clk, 0)

	t0 := clk.Now()
	_, err = arr.Submit(trace.LogicalRecord{Time: t0, Item: ids[0], Size: 8 << 10, Op: trace.OpRead})
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FaultError, got %v", err)
	}
	if fe.Enclosure != 0 || fe.Op != "spin-up" {
		t.Fatalf("fault error %+v", fe)
	}
	if arr.Stats().PhysicalReads != 0 {
		t.Fatal("exhausted spin-up still issued a physical read")
	}
	c := inj.Counters()
	if c.SpinUpFailures != 3 || c.SpinUpExhausted != 1 || c.FailedAppIOs != 1 {
		t.Fatalf("counters %+v", c)
	}

	// Three failed attempts, then exhaustion; each retry waits the doubled
	// backoff on the simulated clock while the enclosure burns a spin-up.
	if len(events) != 4 {
		t.Fatalf("saw %d fault events, want 4", len(events))
	}
	su := arr.Config().Power.SpinUpTime
	want := []faults.Event{
		{T: t0, Kind: faults.KindSpinUpFail, Enclosure: 0, Attempt: 1},
		{T: t0 + su + time.Second, Kind: faults.KindSpinUpFail, Enclosure: 0, Attempt: 2},
		{T: t0 + 2*su + 3*time.Second, Kind: faults.KindSpinUpFail, Enclosure: 0, Attempt: 3},
		{T: t0 + 3*su + 3*time.Second, Kind: faults.KindSpinUpExhausted, Enclosure: 0},
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
	// The enclosure stays off and no successful spin-up was counted.
	if arr.EnclosureOn(0, clk.Now()) {
		t.Fatal("enclosure on after exhausted spin-up")
	}
	if arr.Meter().SpinUps() != 0 {
		t.Fatalf("counted %d spin-ups, want 0", arr.Meter().SpinUps())
	}
}

func TestSpinUpRetrySucceedsAfterBackoff(t *testing.T) {
	// Find a seed whose first draw at probability 0.5 fails and whose
	// second succeeds, so the spin-up retries exactly once.
	var seed int64
	for ; ; seed++ {
		rng := rand.New(rand.NewSource(seed))
		if rng.Float64() < 0.5 && rng.Float64() >= 0.5 {
			break
		}
	}
	arr, clk, _, ids := testArray(t, 1, 64<<20)
	inj, err := faults.NewInjector(faults.Config{
		Seed: seed, SpinUpFailProb: 0.5, SpinUpBackoff: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	arr.SetFaultInjector(inj)
	spinDown(t, arr, clk, 0)

	t0 := clk.Now()
	r, err := arr.Submit(trace.LogicalRecord{Time: t0, Item: ids[0], Size: 8 << 10, Op: trace.OpRead})
	if err != nil {
		t.Fatal(err)
	}
	su := arr.Config().Power.SpinUpTime
	// Response covers the failed attempt, the backoff and the successful
	// spin-up before any service time.
	if r.Response < 2*su+time.Second {
		t.Fatalf("response %v shorter than retry path %v", r.Response, 2*su+time.Second)
	}
	c := inj.Counters()
	if c.SpinUpFailures != 1 || c.SpinUpExhausted != 0 || c.FailedAppIOs != 0 {
		t.Fatalf("counters %+v", c)
	}
	if arr.Meter().SpinUps() != 1 {
		t.Fatalf("counted %d spin-ups, want 1", arr.Meter().SpinUps())
	}
	if !arr.EnclosureOn(0, clk.Now()) {
		t.Fatal("enclosure off after successful retry")
	}
}

func TestTransientIOInflatesService(t *testing.T) {
	clean, _, _, cids := testArray(t, 1, 64<<20)
	faulty, _, _, fids := testArray(t, 1, 64<<20)
	delay := 100 * time.Millisecond
	inj, err := faults.NewInjector(faults.Config{Seed: 5, TransientIOProb: 1, TransientIODelay: delay})
	if err != nil {
		t.Fatal(err)
	}
	faulty.SetFaultInjector(inj)

	rec := trace.LogicalRecord{Size: 8 << 10, Op: trace.OpRead}
	rec.Item = cids[0]
	rc, err := clean.Submit(rec)
	if err != nil {
		t.Fatal(err)
	}
	rec.Item = fids[0]
	rf, err := faulty.Submit(rec)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*rc.Response + delay; rf.Response != want {
		t.Fatalf("faulted response %v, want %v (clean %v)", rf.Response, want, rc.Response)
	}
	if c := inj.Counters(); c.TransientIOErrors != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestBatteryLossDisablesCacheFunctions(t *testing.T) {
	arr, _, evq, ids := testArray(t, 1, 64<<20, 8<<20)
	inj, err := faults.NewInjector(faults.Config{
		BatteryFailAt: 10 * time.Minute, BatteryRecoverAt: 20 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	arr.SetFaultInjector(inj)

	arr.SetWriteDelay(ids[:1])
	arr.Submit(trace.LogicalRecord{Item: ids[0], Size: 1 << 20, Op: trace.OpWrite})
	arr.SetPreload(ids[1:2])
	if !arr.WriteDelayed(ids[0]) || !arr.Preloaded(ids[1]) {
		t.Fatal("cache functions not active before battery loss")
	}

	clk := arr.clk
	evq.RunUntil(clk, 11*time.Minute)
	if arr.BatteryOK() {
		t.Fatal("battery still OK after scheduled failure")
	}
	// The dirty delayed write was destaged immediately and both
	// selections were dropped.
	if arr.Stats().FlushedBytes != 1<<20 {
		t.Fatalf("flushed %d bytes on battery loss", arr.Stats().FlushedBytes)
	}
	if arr.WriteDelayed(ids[0]) || arr.Preloaded(ids[1]) {
		t.Fatal("cache selections survived battery loss")
	}
	// Re-selecting while the battery is down is forced empty.
	arr.SetWriteDelay(ids)
	arr.SetPreload(ids[1:2])
	if arr.WriteDelayed(ids[0]) || arr.Preloaded(ids[1]) {
		t.Fatal("cache selections accepted while battery down")
	}
	// Writes go straight to disk.
	before := arr.Stats().PhysicalWrites
	arr.Submit(trace.LogicalRecord{Time: 11 * time.Minute, Item: ids[0], Size: 8 << 10, Op: trace.OpWrite})
	if arr.Stats().PhysicalWrites != before+1 {
		t.Fatal("write not physical while battery down")
	}

	evq.RunUntil(clk, 21*time.Minute)
	if !arr.BatteryOK() {
		t.Fatal("battery not recovered")
	}
	arr.SetPreload(ids[1:2])
	if !arr.Preloaded(ids[1]) {
		t.Fatal("preload rejected after battery recovery")
	}
	c := inj.Counters()
	if c.BatteryFailures != 1 || c.BatteryRecoveries != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestMigrationSkipRunsDoneCallback(t *testing.T) {
	cfg := DefaultConfig(2)
	cat := trace.NewCatalog()
	big := cat.Add("big", cfg.EnclosureCapacity-1<<20)
	small := cat.Add("small", 4<<20)
	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := New(cfg, clk, evq, cat)
	if err != nil {
		t.Fatal(err)
	}
	arr.Place(big, 1)
	arr.Place(small, 0)
	done := false
	if err := arr.MigrateItem(small, 1, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	evq.RunUntil(clk, time.Hour)
	if arr.Stats().MigrationsSkipped != 1 {
		t.Fatalf("skipped %d migrations, want 1", arr.Stats().MigrationsSkipped)
	}
	if !done {
		t.Fatal("skipped migration never ran its done callback")
	}
}

func TestDroppedMigrationRunsDoneCallback(t *testing.T) {
	arr, clk, evq, ids := testArray(t, 3, 512<<20, 512<<20)
	var first, second bool
	arr.MigrateItem(ids[0], 2, func() { first = true })
	arr.MigrateItem(ids[1], 2, func() { second = true })
	arr.DropQueuedMigrations()
	if !second {
		t.Fatal("dropped migration never ran its done callback")
	}
	evq.RunUntil(clk, time.Hour)
	if !first {
		t.Fatal("active migration never completed")
	}
}

func TestMigrationBaseStableUnderInterleavedAlloc(t *testing.T) {
	cfg := DefaultConfig(3)
	// ids[0] (256 MB, enclosure 0) migrates to enclosure 1; ids[2]
	// (2 extents, enclosure 2) has an extent relocated to enclosure 1
	// while the copy is in flight, allocating destination space under it.
	arr, clk, evq, ids := testArray(t, 3, 256<<20, 1<<20, 2*cfg.ExtentBytes)
	var writes []trace.PhysicalRecord
	arr.SetPhysicalObserver(func(rec trace.PhysicalRecord) {
		if rec.Op == trace.OpWrite && rec.Enclosure == 1 {
			writes = append(writes, rec)
		}
	})
	if err := arr.MigrateItem(ids[0], 1, nil); err != nil {
		t.Fatal(err)
	}
	// The first chunk has been copied; interleave an allocation on the
	// destination before the remaining chunks land.
	if err := arr.MigrateExtent(ExtentRef{Item: ids[2], Extent: 0}, 1); err != nil {
		t.Fatal(err)
	}
	evq.RunUntil(clk, time.Hour)
	if arr.ItemEnclosure(ids[0]) != 1 {
		t.Fatal("migration did not complete")
	}
	base := arr.items[ids[0]].base
	size := arr.items[ids[0]].size
	extLoc, ok := arr.extents[ExtentRef{Item: ids[2], Extent: 0}]
	if !ok || extLoc.enc != 1 {
		t.Fatalf("extent override %+v,%v", extLoc, ok)
	}
	// The relocated extent must not overlap the migrated item's range.
	if extLoc.base < base+size && base < extLoc.base+cfg.ExtentBytes {
		t.Fatalf("extent [%d,+%d) overlaps migrated item [%d,+%d)",
			extLoc.base, cfg.ExtentBytes, base, size)
	}
	// Every migration chunk landed inside the item's final range: the
	// destination base was reserved at start, not recomputed per chunk.
	var inRange int64
	for _, w := range writes {
		if w.Block >= base && w.Block+int64(w.Size) <= base+size {
			inRange += int64(w.Size)
		}
	}
	if inRange != size {
		t.Fatalf("%d of %d migrated bytes landed in the item's final range", inRange, size)
	}
}

func TestPreloadEvictedOnWrite(t *testing.T) {
	arr, clk, _, ids := testArray(t, 1, 8<<20)
	arr.SetPreload(ids)
	clk.Advance(time.Minute)
	r, err := arr.Submit(trace.LogicalRecord{Time: time.Minute, Item: ids[0], Offset: 4 << 20, Size: 8 << 10, Op: trace.OpRead})
	if err != nil || !r.CacheHit {
		t.Fatalf("preloaded read should hit (%+v, %v)", r, err)
	}
	// A write invalidates the pinned copy: the stale preload data must
	// not serve the read-after-write.
	if _, err := arr.Submit(trace.LogicalRecord{Time: time.Minute, Item: ids[0], Offset: 0, Size: 8 << 10, Op: trace.OpWrite}); err != nil {
		t.Fatal(err)
	}
	if arr.Preloaded(ids[0]) {
		t.Fatal("written item still pinned in preload")
	}
	r, err = arr.Submit(trace.LogicalRecord{Time: time.Minute, Item: ids[0], Offset: 4 << 20, Size: 8 << 10, Op: trace.OpRead})
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheHit {
		t.Fatal("read after write served from stale preload copy")
	}
	// The partition budget was released with the eviction.
	if arr.CacheOccupancy().PreloadUsedBytes != 0 {
		t.Fatalf("preload budget %d still held", arr.CacheOccupancy().PreloadUsedBytes)
	}
}

func TestMigrateItemCopiesOverriddenExtent(t *testing.T) {
	cfg := DefaultConfig(3)
	arr, clk, evq, ids := testArray(t, 3, 2*cfg.ExtentBytes)
	// Relocate extent 1 to enclosure 1 (DDR-style), then migrate the
	// whole item to enclosure 2.
	if err := arr.MigrateExtent(ExtentRef{Item: ids[0], Extent: 1}, 1); err != nil {
		t.Fatal(err)
	}
	reads := map[int]int64{}
	arr.SetPhysicalObserver(func(rec trace.PhysicalRecord) {
		if rec.Op == trace.OpRead {
			reads[int(rec.Enclosure)] += int64(rec.Size)
		}
	})
	if err := arr.MigrateItem(ids[0], 2, nil); err != nil {
		t.Fatal(err)
	}
	evq.RunUntil(clk, time.Hour)
	// The copy read extent 0 from the home enclosure and extent 1 from
	// its override location — not the stale blocks at the original home.
	if reads[0] != cfg.ExtentBytes {
		t.Fatalf("read %d bytes from home enclosure, want %d", reads[0], cfg.ExtentBytes)
	}
	if reads[1] != cfg.ExtentBytes {
		t.Fatalf("read %d bytes from override enclosure, want %d", reads[1], cfg.ExtentBytes)
	}
	if arr.ItemEnclosure(ids[0]) != 2 {
		t.Fatal("migration did not complete")
	}
	// The override is cleared, its allocation released, and its segment
	// no longer resolves on the old enclosure.
	if len(arr.extents) != 0 {
		t.Fatalf("extent overrides survived: %v", arr.extents)
	}
	if arr.Used(1) != 0 {
		t.Fatalf("override allocation not released: used(1) = %d", arr.Used(1))
	}
	if _, ok := arr.ResolveExtent(1, 0); ok {
		t.Fatal("stale override segment still resolves on enclosure 1")
	}
	r, _ := arr.Submit(trace.LogicalRecord{Item: ids[0], Offset: cfg.ExtentBytes + 5, Size: 8 << 10, Op: trace.OpRead})
	if r.Enclosure != 2 {
		t.Fatalf("post-migration extent I/O served by enclosure %d", r.Enclosure)
	}
}
