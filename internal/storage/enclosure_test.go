package storage

import (
	"math"
	"testing"
	"time"

	"esm/internal/obs"
	"esm/internal/powermodel"
)

func testEnclosure(t *testing.T) (*enclosure, *Config) {
	t.Helper()
	cfg := DefaultConfig(1)
	e := newEnclosure(0, &cfg)
	return e, &cfg
}

func TestEnclosureIdleEnergyWithoutSpindown(t *testing.T) {
	e, cfg := testEnclosure(t)
	e.sync(time.Hour)
	wantJ := cfg.Power.IdleW * 3600
	if math.Abs(e.acc.EnergyJ()-wantJ) > 1 {
		t.Fatalf("idle hour = %v J, want %v", e.acc.EnergyJ(), wantJ)
	}
	if !e.on {
		t.Fatal("enclosure should stay on without spin-down enabled")
	}
}

func TestEnclosureSpinsDownAfterTimeout(t *testing.T) {
	e, cfg := testEnclosure(t)
	e.setSpinDown(0, true)
	e.sync(time.Hour)
	if e.on {
		t.Fatal("enclosure should have powered off")
	}
	idle := cfg.SpinDownTimeout
	wantJ := cfg.Power.IdleW*idle.Seconds() + cfg.Power.OffW*(time.Hour-idle).Seconds()
	if math.Abs(e.acc.EnergyJ()-wantJ) > 1 {
		t.Fatalf("energy %v J, want %v", e.acc.EnergyJ(), wantJ)
	}
	if e.acc.InState(powermodel.Off) != time.Hour-idle {
		t.Fatalf("off residency %v", e.acc.InState(powermodel.Off))
	}
}

func TestEnclosureSpinDownTimerResetsOnIO(t *testing.T) {
	e, cfg := testEnclosure(t)
	e.setSpinDown(0, true)
	// I/O at 40s: the timer restarts from the completion.
	e.arrival(40*time.Second, 0, 8<<10, false, kindApp, nil)
	e.sync(60 * time.Second)
	if !e.on {
		t.Fatal("enclosure powered off before timeout elapsed after I/O")
	}
	e.sync(40*time.Second + cfg.SpinDownTimeout + 10*time.Second)
	if e.on {
		t.Fatal("enclosure should have powered off after post-I/O timeout")
	}
}

func TestEnclosureSpinUpDelaysService(t *testing.T) {
	e, cfg := testEnclosure(t)
	e.setSpinDown(0, true)
	e.sync(10 * time.Minute) // off by now
	if e.on {
		_ = e
	}
	start := 10 * time.Minute
	end, _ := e.arrival(start, 0, 8<<10, false, kindApp, nil)
	wait := end - start
	if wait < cfg.Power.SpinUpTime {
		t.Fatalf("response %v shorter than spin-up %v", wait, cfg.Power.SpinUpTime)
	}
	if !e.on {
		t.Fatal("arrival should spin the enclosure up")
	}
	if e.acc.SpinUps() != 1 {
		t.Fatalf("spinups %d", e.acc.SpinUps())
	}
	if e.acc.InState(powermodel.SpinUp) != cfg.Power.SpinUpTime {
		t.Fatalf("spin-up residency %v", e.acc.InState(powermodel.SpinUp))
	}
}

func TestEnclosurePowerEventCallback(t *testing.T) {
	e, cfg := testEnclosure(t)
	var events []bool
	var times []time.Duration
	e.powerEvent = func(enc int, at time.Duration, on bool, cause obs.Cause) {
		events = append(events, on)
		times = append(times, at)
	}
	e.setSpinDown(0, true)
	e.sync(5 * time.Minute)
	e.arrival(5*time.Minute, 0, 8<<10, false, kindApp, nil)
	if len(events) != 2 || events[0] != false || events[1] != true {
		t.Fatalf("power events %v", events)
	}
	if times[0] != cfg.SpinDownTimeout {
		t.Fatalf("power-off at %v, want %v", times[0], cfg.SpinDownTimeout)
	}
}

func TestEnclosureRandomServiceRateMatchesIOPSCeiling(t *testing.T) {
	e, cfg := testEnclosure(t)
	// Saturate with random I/O for a simulated minute and check the
	// completion throughput approaches RandomIOPS.
	n := 0
	for end := time.Duration(0); end < time.Minute; n++ {
		end, _ = e.arrival(0, int64(n)*1<<30, 8<<10, false, kindApp, nil)
	}
	got := float64(n) / 60
	if got < cfg.RandomIOPS*0.85 || got > cfg.RandomIOPS*1.15 {
		t.Fatalf("sustained random rate %.0f IOPS, ceiling %v", got, cfg.RandomIOPS)
	}
}

func TestEnclosureSequentialFasterThanRandom(t *testing.T) {
	e, _ := testEnclosure(t)
	if e.serviceTime(64<<10, true) >= e.serviceTime(64<<10, false) {
		t.Fatal("sequential service not faster than random")
	}
}

func TestSequentialDetection(t *testing.T) {
	e, _ := testEnclosure(t)
	if e.isSequential(0, 64<<10) {
		t.Fatal("first I/O misdetected as sequential")
	}
	if !e.isSequential(64<<10, 64<<10) {
		t.Fatal("contiguous I/O not detected as sequential")
	}
	// A second interleaved stream is still tracked.
	if e.isSequential(1<<40, 64<<10) {
		t.Fatal("new stream start misdetected")
	}
	if !e.isSequential(1<<40+64<<10, 64<<10) {
		t.Fatal("second stream not tracked")
	}
	if !e.isSequential(128<<10, 64<<10) {
		t.Fatal("first stream lost after interleaving")
	}
}

func TestEnclosureQueueing(t *testing.T) {
	e, cfg := testEnclosure(t)
	// Fill all servers at t=0, then one more I/O must wait.
	var firstEnd time.Duration
	for i := 0; i < cfg.ServersPerEnclosure; i++ {
		firstEnd, _ = e.arrival(0, int64(i)<<30, 8<<10, false, kindApp, nil)
	}
	end, _ := e.arrival(0, 1<<40, 8<<10, false, kindApp, nil)
	if end <= firstEnd {
		t.Fatalf("queued I/O finished at %v, not after %v", end, firstEnd)
	}
}

func TestEnclosureActiveResidencyTracksBusyTime(t *testing.T) {
	e, _ := testEnclosure(t)
	end, _ := e.arrival(0, 0, 8<<10, false, kindApp, nil)
	e.sync(time.Minute)
	if got := e.acc.InState(powermodel.Active); got != end {
		t.Fatalf("active residency %v, want %v", got, end)
	}
}

func TestIdleSince(t *testing.T) {
	e, _ := testEnclosure(t)
	end, _ := e.arrival(0, 0, 8<<10, false, kindApp, nil)
	if _, ok := e.idleSince(end / 2); ok {
		t.Fatal("busy enclosure reported idle")
	}
	since, ok := e.idleSince(end + time.Second)
	if !ok || since != end {
		t.Fatalf("idleSince = %v,%v, want %v,true", since, ok, end)
	}
	e.setSpinDown(end+time.Second, true)
	e.sync(end + 10*time.Minute)
	if _, ok := e.idleSince(end + 10*time.Minute); ok {
		t.Fatal("off enclosure reported idle")
	}
}

func TestSpinDownEnabledLateTurnsOffImmediately(t *testing.T) {
	e, cfg := testEnclosure(t)
	// Idle long past the timeout with spin-down disabled, then enable:
	// the enclosure should power off immediately, not wait a fresh timer.
	e.sync(10 * time.Minute)
	e.setSpinDown(10*time.Minute, true)
	e.sync(10*time.Minute + time.Second)
	if e.on {
		t.Fatal("enclosure should power off immediately when spin-down enabled past timeout")
	}
	_ = cfg
}
