package storage

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"esm/internal/trace"
)

func TestLRUBasics(t *testing.T) {
	c := newLRU(3*64<<10, 64<<10) // 3 pages
	k := func(p int64) pageKey { return pageKey{item: 1, page: p} }
	c.insert(k(1))
	c.insert(k(2))
	c.insert(k(3))
	if !c.contains(k(1)) {
		t.Fatal("page 1 evicted too early")
	}
	// Page 2 is now LRU; inserting page 4 evicts it.
	c.insert(k(4))
	if c.contains(k(2)) {
		t.Fatal("LRU page not evicted")
	}
	if !c.contains(k(1)) || !c.contains(k(3)) || !c.contains(k(4)) {
		t.Fatal("wrong pages evicted")
	}
	if c.len() != 3 {
		t.Fatalf("len %d", c.len())
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := newLRU(0, 64<<10)
	c.insert(pageKey{1, 1})
	if c.contains(pageKey{1, 1}) {
		t.Fatal("zero-capacity cache stored a page")
	}
}

func TestLRUReinsertRefreshes(t *testing.T) {
	c := newLRU(2*64<<10, 64<<10)
	c.insert(pageKey{1, 1})
	c.insert(pageKey{1, 2})
	c.insert(pageKey{1, 1}) // refresh
	c.insert(pageKey{1, 3}) // evicts 2, not 1
	if !c.contains(pageKey{1, 1}) || c.contains(pageKey{1, 2}) {
		t.Fatal("refresh on reinsert not honoured")
	}
}

// TestLRUNeverExceedsCapacity is the core accounting invariant.
func TestLRUNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capPages := 1 + rng.Intn(64)
		c := newLRU(int64(capPages)*4096, 4096)
		for i := 0; i < 1000; i++ {
			c.insert(pageKey{trace.ItemID(rng.Intn(4)), rng.Int63n(256)})
			if c.len() > capPages {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDelayStateAccounting(t *testing.T) {
	w := newWriteDelayState(1000, 0.5)
	if w.absorb(1, 0, 0, 200) {
		t.Fatal("200/1000 dirty should not trigger flush at rate 0.5")
	}
	if !w.absorb(1, 1, 1, 400) {
		t.Fatal("600/1000 dirty should trigger flush at rate 0.5")
	}
	if w.dirtyOf(1) != 600 {
		t.Fatalf("dirty bytes %d", w.dirtyOf(1))
	}
	if !w.dirtyPages[pageKey{1, 0}] || !w.dirtyPages[pageKey{1, 1}] {
		t.Fatal("dirty pages not tracked")
	}
	n := w.clearItem(1)
	if n != 600 || w.totalDirty != 0 || len(w.dirtyPages) != 0 {
		t.Fatalf("clear returned %d, state %+v", n, w)
	}
	if w.clearItem(1) != 0 {
		t.Fatal("double clear returned bytes")
	}
}

// TestWriteDelayDirtyInvariant: totalDirty always equals the sum of
// per-item dirty bytes.
func TestWriteDelayDirtyInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := newWriteDelayState(1<<20, 0.5)
		for i := 0; i < 500; i++ {
			item := trace.ItemID(rng.Intn(8))
			if rng.Float64() < 0.2 {
				w.clearItem(item)
			} else {
				p := rng.Int63n(64)
				w.absorb(item, p, p, int32(rng.Intn(4096)+1))
			}
			var sum int64
			for _, n := range w.dirtyBytes {
				sum += n
			}
			if sum != w.totalDirty {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPreloadStateHitTiming(t *testing.T) {
	p := newPreloadState(100)
	p.loadedAt[5] = 10 * time.Second
	if p.hit(5, 9*time.Second) {
		t.Fatal("hit before load completion")
	}
	if !p.hit(5, 10*time.Second) {
		t.Fatal("no hit at load completion")
	}
	if p.hit(6, time.Minute) {
		t.Fatal("hit for unpinned item")
	}
	if !p.pinned(5) || p.pinned(6) {
		t.Fatal("pinned flags wrong")
	}
}
