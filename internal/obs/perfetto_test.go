package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

// TestPerfettoRoundTrip: spans written through the sink come back out
// of the reader with layout, metadata and args intact.
func TestPerfettoRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewPerfettoSink(&buf, "rt")
	// Delivered out of start order: the sink must sort on Close.
	s.IOSpan(IOSpan{
		Item: 3, Enclosure: 1, Read: true, Start: 2 * time.Second,
		Response: 20 * time.Millisecond, Cause: IOSpinUpBlocked, PowerState: "off",
		SpinUpWait: 15 * time.Second, QueueWait: time.Millisecond, Service: 4 * time.Millisecond,
	})
	s.IOSpan(IOSpan{Item: 5, Enclosure: -1, Read: false, Start: time.Second,
		Response: 300 * time.Microsecond, Cause: IOCacheHit})
	s.ManagementSpan(ManagementSpan{
		Kind: "migration", Start: 3 * time.Second, End: 4 * time.Second,
		Item: 3, Enclosure: 1, Dst: 0, Bytes: 1 << 20,
	})
	s.ManagementSpan(ManagementSpan{
		Kind: "determination", Start: 5 * time.Second, End: 5 * time.Second,
		Item: -1, Enclosure: -1, Dst: -1, Cause: "period-end", N: 2,
	})
	s.SetSummary(&LatencySummary{Total: LatencyRow{Name: "total", Count: 2}}, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if err := ValidatePerfetto(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("emitted trace fails validation: %v", err)
	}
	pf, err := ReadPerfetto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if pf.OtherData.Label != "rt" {
		t.Fatalf("label %q", pf.OtherData.Label)
	}
	if pf.OtherData.Latency == nil || pf.OtherData.Latency.Total.Count != 2 {
		t.Fatalf("summary not embedded: %+v", pf.OtherData)
	}

	var spans []TraceEvent
	threadNames := map[[2]int]string{}
	for _, ev := range pf.TraceEvents {
		if ev.Ph == "M" {
			if ev.Name == "thread_name" {
				threadNames[[2]int{ev.Pid, ev.Tid}] = ev.Args["name"].(string)
			}
			continue
		}
		spans = append(spans, ev)
	}
	if len(spans) != 4 {
		t.Fatalf("%d spans, want 4", len(spans))
	}
	// Sorted by start: cache hit (1s), physical read (2s), migration
	// (3s), determination (5s).
	if spans[0].Name != "write" || spans[0].Tid != perfettoCacheTid {
		t.Fatalf("span 0: %+v", spans[0])
	}
	if spans[1].Name != "read" || spans[1].Pid != perfettoPidStorage || spans[1].Tid != 2 {
		t.Fatalf("span 1: %+v", spans[1])
	}
	if spans[1].Args["spinup_wait_ns"].(float64) != 15e9 || spans[1].Args["power_state"] != "off" {
		t.Fatalf("span 1 args: %+v", spans[1].Args)
	}
	if spans[2].Name != "migration" || spans[2].Pid != perfettoPidManagement {
		t.Fatalf("span 2: %+v", spans[2])
	}
	if spans[2].Args["dst"].(float64) != 0 {
		t.Fatalf("span 2 args: %+v", spans[2].Args)
	}
	if spans[3].Name != "determination" {
		t.Fatalf("span 3: %+v", spans[3])
	}
	// A non-migration span must not claim a destination.
	if _, ok := spans[3].Args["dst"]; ok {
		t.Fatalf("determination carries dst: %+v", spans[3].Args)
	}
	// Thread metadata names every thread that appeared.
	for k, want := range map[[2]int]string{
		{perfettoPidStorage, perfettoCacheTid}: "cache",
		{perfettoPidStorage, 2}:                "enclosure 1",
		{perfettoPidManagement, 1}:             "migrations",
		{perfettoPidManagement, 4}:             "determinations",
	} {
		if got := threadNames[k]; got != want {
			t.Errorf("thread %v named %q, want %q", k, got, want)
		}
	}
}

// TestValidatePerfettoRejects: the validator fails on each way a trace
// can be malformed.
func TestValidatePerfettoRejects(t *testing.T) {
	encode := func(f PerfettoFile) *bytes.Reader {
		b, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		return bytes.NewReader(b)
	}
	cases := []struct {
		name string
		in   *bytes.Reader
		want string
	}{
		{"bad json", bytes.NewReader([]byte("{not json")), "parse"},
		{"no spans", encode(PerfettoFile{TraceEvents: []TraceEvent{
			{Name: "process_name", Ph: "M"},
		}}), "no span events"},
		{"negative duration", encode(PerfettoFile{TraceEvents: []TraceEvent{
			{Name: "read", Ph: "X", Ts: 1, Dur: -5},
		}}), "negative duration"},
		{"non-monotonic", encode(PerfettoFile{TraceEvents: []TraceEvent{
			{Name: "read", Ph: "X", Ts: 10, Dur: 1},
			{Name: "read", Ph: "X", Ts: 5, Dur: 1},
		}}), "precedes"},
	}
	for _, c := range cases {
		err := ValidatePerfetto(c.in)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestTraceSmoke is the CI trace-validation hook: when ESM_TRACE_FILE
// names a Perfetto file written by esmbench -trace / esmd -trace, it is
// validated; otherwise a synthetic trace exercises the same contract
// in-process.
func TestTraceSmoke(t *testing.T) {
	if path := os.Getenv("ESM_TRACE_FILE"); path != "" {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := ValidatePerfetto(f); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return
	}
	var buf bytes.Buffer
	trc := NewTracer(TracerOptions{Sink: NewPerfettoSink(&buf, "smoke"), Enclosures: 1})
	for i := 0; i < 100; i++ {
		trc.IO(IOSpan{
			Item: int64(i % 4), Enclosure: 0, Read: i%3 != 0,
			Start: time.Duration(i) * time.Second, Response: 20 * time.Millisecond,
			Cause: IODiskOn, QueueWait: time.Millisecond, Service: 19 * time.Millisecond,
		})
	}
	trc.Management(ManagementSpan{Kind: "destage", Start: time.Minute, End: time.Minute + time.Second,
		Item: 2, Enclosure: 0, Dst: -1, Bytes: 8 << 20})
	if err := trc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
}
