package obs

import (
	"testing"
	"time"
)

// TestRateRuleAcrossCompaction pins the interaction between the
// flight recorder's resolution halving and rate() watchdog rules: a
// compacted series must keep its sample grid uniform (the surviving
// rows are every 2^k-th offer, phase-aligned with the doubled
// acceptance stride), so a constant-rate signal replayed from the
// compacted series never produces a spurious rate spike across the
// compaction boundary.
func TestRateRuleAcrossCompaction(t *testing.T) {
	const (
		interval     = 30 * time.Second
		joulesPerSec = 100.0
		offers       = 60 // with MaxSamples 8 this forces three compactions
	)
	f := NewFlightRecorder(FlightOptions{Interval: interval, MaxSamples: 8})
	for i := 0; i < offers; i++ {
		at := time.Duration(i) * interval
		f.Record(FlightSample{T: at, TotalEnergyJ: joulesPerSec * at.Seconds()})
	}
	s := f.Series()
	if s.Len() > 8 {
		t.Fatalf("series has %d rows, bound is 8", s.Len())
	}
	if s.Len() < 4 {
		t.Fatalf("series has only %d rows; fixture too small to cross a boundary", s.Len())
	}
	// The surviving grid must be uniform: any kink here is exactly the
	// spurious rate() spike the watchdog would alert on.
	step := s.TimesNS[1] - s.TimesNS[0]
	for i := 2; i < s.Len(); i++ {
		if d := s.TimesNS[i] - s.TimesNS[i-1]; d != step {
			t.Fatalf("sample grid not uniform after compaction: step %d at row %d, first step %d", d, i, step)
		}
	}
	if int64(interval) >= step {
		t.Fatalf("no compaction happened: step %v", time.Duration(step))
	}

	rules, err := ParseRules([]string{
		"over:rate(total_energy_j)>110", // above the true rate: must never fire
		"under:rate(total_energy_j)>90", // below the true rate: must fire (the fixture is live)
	})
	if err != nil {
		t.Fatal(err)
	}
	wd := NewWatchdog(WatchdogOptions{Rules: rules})
	col := s.Column("total_energy_j")
	for i := 0; i < s.Len(); i++ {
		wd.ObserveValues(time.Duration(s.TimesNS[i]), map[string]float64{"total_energy_j": col[i]})
	}
	for _, st := range wd.States() {
		switch st.Rule {
		case "over":
			if st.Fired != 0 {
				t.Errorf("rate rule above the true rate fired %d times across the compaction boundary (value %g)", st.Fired, st.Value)
			}
		case "under":
			if st.Fired == 0 {
				t.Errorf("rate rule below the true rate never fired; the fixture exercises nothing (value %g)", st.Value)
			}
		}
	}
}
