// The span tracer: per-I/O phase timing, management-function spans,
// the streaming latency breakdown and the energy-attribution ledger.
//
// Like the Recorder, a nil *Tracer is a valid, fully disabled tracer:
// every method nil-checks its receiver and returns immediately, so the
// instrumented physical I/O path pays exactly one pointer comparison
// per call site when tracing is off. Construct one with NewTracer only
// when spans are actually wanted.

package obs

import (
	"sync"
	"time"
)

// IOSpan is the record of one application I/O's life inside the
// storage unit: when it arrived, how it was resolved, and how its
// response time splits across phases (spin-up wait → queue → physical
// service; a cache-resolved I/O spends its whole response in the cache
// phase).
type IOSpan struct {
	// Start is the virtual arrival time; Response the
	// application-observed response time.
	Start    time.Duration `json:"start_ns"`
	Response time.Duration `json:"response_ns"`
	// Item is the data item; Enclosure the serving enclosure (-1 when
	// served from cache).
	Item      int64 `json:"item"`
	Enclosure int   `json:"enclosure"`
	Read      bool  `json:"read"`
	// Class is the item's logical I/O pattern class (0..3) as of the
	// last determination, ClassUnknown before the first. Stamped by the
	// tracer.
	Class uint8 `json:"class"`
	// PowerState is the serving enclosure's power state at arrival:
	// "off", "idle" or "active" ("" for cache hits).
	PowerState string `json:"power_state,omitempty"`
	// Cause classifies the serve: cache-hit, disk-on, or
	// spin-up-blocked.
	Cause IOCause `json:"cause"`
	// The phase durations. SpinUpWait includes fault-retry backoff.
	SpinUpWait time.Duration `json:"spinup_wait_ns,omitempty"`
	QueueWait  time.Duration `json:"queue_wait_ns,omitempty"`
	Service    time.Duration `json:"service_ns,omitempty"`
}

// ManagementSpan is the record of one management-function burst: a
// data-item migration, a preload bulk read, a write-delay destage, or
// a run of the power management function (a determination, which is
// instantaneous in virtual time).
type ManagementSpan struct {
	// Kind is "migration", "migration-failed", "preload", "destage" or
	// "determination".
	Kind  string        `json:"kind"`
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	// Item is the data item moved/loaded/destaged (-1 when n/a).
	Item int64 `json:"item,omitempty"`
	// Enclosure is the source/home enclosure; Dst the migration
	// destination (-1 when n/a).
	Enclosure int   `json:"enclosure"`
	Dst       int   `json:"dst,omitempty"`
	Bytes     int64 `json:"bytes,omitempty"`
	// Cause carries the determination cause.
	Cause string `json:"cause,omitempty"`
	// N is the determination number.
	N int64 `json:"n,omitempty"`
}

// SpanSink consumes completed spans. Implementations need not be
// concurrency-safe; the tracer serialises calls under its lock.
type SpanSink interface {
	IOSpan(sp IOSpan)
	ManagementSpan(sp ManagementSpan)
	Close() error
}

// CollectSpanSink buffers spans in memory, for tests.
type CollectSpanSink struct {
	IOs        []IOSpan
	Management []ManagementSpan
}

// IOSpan implements SpanSink.
func (s *CollectSpanSink) IOSpan(sp IOSpan) { s.IOs = append(s.IOs, sp) }

// ManagementSpan implements SpanSink.
func (s *CollectSpanSink) ManagementSpan(sp ManagementSpan) { s.Management = append(s.Management, sp) }

// Close implements SpanSink.
func (s *CollectSpanSink) Close() error { return nil }

// TracerOptions configures a Tracer. All fields are optional; a zero
// Options yields a tracer that only keeps the streaming breakdown and
// ledger.
type TracerOptions struct {
	// Sink receives every completed span. Nil discards spans (the
	// histograms and ledger still accumulate).
	Sink SpanSink
	// Registry, when non-nil, is populated with render-time latency
	// percentile and energy-attribution gauges.
	Registry *Registry
	// Instance, when non-empty, namespaces every registry gauge with an
	// array="<instance>" label (fleet arrays share one registry).
	Instance string
	// Enclosures pre-sizes the energy ledger (it grows on demand).
	Enclosures int
}

// Tracer records simulated-clock spans for application I/Os and
// management functions, and maintains the latency breakdown and the
// energy-attribution ledger on top of them. All methods are safe on a
// nil receiver (no-ops) and safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	sink    SpanSink
	classes []uint8
	lat     LatencyStats
	ledger  *EnergyLedger
	// attrib is the most recent Attribute result, served by the
	// registry gauges and /status between recomputations.
	attrib *Attribution
}

// NewTracer returns a live tracer.
func NewTracer(opts TracerOptions) *Tracer {
	t := &Tracer{sink: opts.Sink, ledger: NewEnergyLedger(opts.Enclosures)}
	if reg := opts.Registry; reg != nil {
		t.register(reg, opts.Instance)
	}
	return t
}

// Enabled reports whether the tracer is live. Call sites that must
// assemble a span guard on it; plain feed calls rely on the methods'
// own nil checks.
func (t *Tracer) Enabled() bool { return t != nil }

// SetClasses replaces the item → pattern-class table stamped onto
// subsequent I/O spans. Values above 3 are treated as unknown.
func (t *Tracer) SetClasses(classes []uint8) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.classes = append(t.classes[:0], classes...)
	t.mu.Unlock()
}

// ClassOf returns item's current pattern class, or ClassUnknown.
func (t *Tracer) ClassOf(item int64) uint8 {
	if t == nil {
		return ClassUnknown
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.classOfLocked(item)
}

func (t *Tracer) classOfLocked(item int64) uint8 {
	if item >= 0 && item < int64(len(t.classes)) && t.classes[item] <= 3 {
		return t.classes[item]
	}
	return ClassUnknown
}

// IO records one completed application I/O span: the pattern class is
// stamped, the latency breakdown updated, and the span handed to the
// sink.
func (t *Tracer) IO(sp IOSpan) {
	if t == nil {
		return
	}
	t.mu.Lock()
	sp.Class = t.classOfLocked(sp.Item)
	t.lat.addIO(&sp)
	if t.sink != nil {
		t.sink.IOSpan(sp)
	}
	t.mu.Unlock()
}

// Management records one completed management-function span.
func (t *Tracer) Management(sp ManagementSpan) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.sink != nil {
		t.sink.ManagementSpan(sp)
	}
	t.mu.Unlock()
}

// Service feeds svc seconds of physical service on enc, for item,
// driven by fn, into the energy ledger.
func (t *Tracer) Service(enc int, item int64, fn EnergyFunc, svc time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ledger.Service(enc, item, fn, svc)
	t.mu.Unlock()
}

// SpinUps feeds provoked spin-up attempts into the energy ledger.
func (t *Tracer) SpinUps(enc int, item int64, fn EnergyFunc, attempts int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ledger.SpinUps(enc, item, fn, attempts)
	t.mu.Unlock()
}

// Residency feeds a resident-footprint change into the energy ledger.
func (t *Tracer) Residency(at time.Duration, enc int, item int64, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ledger.Residency(at, enc, item, delta)
	t.mu.Unlock()
}

// LatencySummary snapshots the streaming latency breakdown (nil for a
// nil tracer).
func (t *Tracer) LatencySummary() *LatencySummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lat.summary()
}

// Attribute computes the energy attribution as of end (see
// EnergyLedger.Attribute), caches it for the registry gauges, and
// returns it. encEnergy reads each enclosure's powermodel joules; it
// is called under the tracer lock.
func (t *Tracer) Attribute(end time.Duration, encEnergy func(enc int) EnclosureEnergy) *Attribution {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.attrib = t.ledger.Attribute(end, encEnergy, t.classOfLocked)
	return t.attrib
}

// Attribution returns the most recent Attribute result (nil before the
// first call).
func (t *Tracer) Attribution() *Attribution {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attrib
}

// summarySink is implemented by sinks (PerfettoSink) that embed the
// end-of-run summary in their output.
type summarySink interface {
	SetSummary(lat *LatencySummary, attrib *Attribution)
}

// Close pushes the final latency summary and attribution into the
// sink, if it accepts one, and closes it.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sink == nil {
		return nil
	}
	if ss, ok := t.sink.(summarySink); ok {
		ss.SetSummary(t.lat.summary(), t.attrib)
	}
	err := t.sink.Close()
	t.sink = nil
	return err
}

// quantileOf returns h's quantile q under the tracer lock.
func (t *Tracer) quantileOf(h *Histogram, q float64) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if q >= 1 {
		return h.Max().Seconds()
	}
	return h.Percentile(q).Seconds()
}

// register installs the render-time latency and attribution gauges.
// instance, when non-empty, becomes an array="<instance>" label on
// every gauge name.
func (t *Tracer) register(reg *Registry, instance string) {
	scoped := func(n string) string {
		if instance == "" {
			return n
		}
		return WithLabel(n, "array", instance)
	}
	quants := []struct {
		label string
		q     float64
	}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}, {"1", 1}}
	for c := IOCause(0); c < IOCauseCount; c++ {
		h := &t.lat.ByCause[c]
		cname := c.String()
		reg.GaugeFunc(scoped("esm_io_latency_count{cause=\""+cname+"\"}"),
			"Application I/Os by serve cause.",
			func() float64 {
				t.mu.Lock()
				defer t.mu.Unlock()
				return float64(h.Count())
			})
		for _, qu := range quants {
			q := qu.q
			reg.GaugeFunc(scoped("esm_io_latency_seconds{cause=\""+cname+"\",quantile=\""+qu.label+"\"}"),
				"Application I/O response-time quantiles by serve cause.",
				func() float64 { return t.quantileOf(h, q) })
		}
	}
	for p := Phase(0); p < PhaseCount; p++ {
		h := &t.lat.ByPhase[p]
		pname := p.String()
		for _, qu := range quants {
			q := qu.q
			reg.GaugeFunc(scoped("esm_io_phase_seconds{phase=\""+pname+"\",quantile=\""+qu.label+"\"}"),
				"Application I/O phase-duration quantiles.",
				func() float64 { return t.quantileOf(h, q) })
		}
	}
	for i := 0; i < 5; i++ {
		idx := i
		reg.GaugeFunc(scoped("esm_energy_attributed_joules{class=\""+ClassName(i)+"\"}"),
			"Enclosure joules attributed per logical I/O pattern class.",
			func() float64 {
				t.mu.Lock()
				defer t.mu.Unlock()
				if t.attrib == nil {
					return 0
				}
				return t.attrib.ByClass[idx]
			})
	}
	for f := EnergyFunc(0); f < EnergyFuncCount; f++ {
		fn := f
		reg.GaugeFunc(scoped("esm_energy_function_joules{function=\""+fn.String()+"\"}"),
			"Enclosure joules attributed per management function.",
			func() float64 {
				t.mu.Lock()
				defer t.mu.Unlock()
				if t.attrib == nil {
					return 0
				}
				return t.attrib.ByFunc[fn]
			})
	}
}
