// The decision-provenance ledger: the fifth telemetry surface. The
// four earlier surfaces (events, spans, flight recorder, alerts) say
// what happened; the provenance recorder says why — it captures, at
// each determination on the simulated clock, the decision inputs the
// power management function computes and then discards (per-item
// interval estimates, read ratios, P0–P3 classes, candidate placement
// costs) together with the chosen action and its predicted
// joule/latency delta, plus the triggering context of every power
// transition, migration, preload and destage the array executes.
//
// Like the flight recorder it is nil-safe (a nil *Provenance is a
// valid disabled instance — one pointer check, no allocation, on every
// call) and bounded: records land in a columnar store that, when full,
// halves its resolution by keeping every other accepted row and
// doubling the acceptance stride. Everything is driven by the
// simulated clock from deterministic call sites, so the stream is
// byte-identical serial vs -shards N and across reruns.

package obs

import (
	"sync"
	"time"
)

// Record kinds of the provenance ledger, stored in the "kind" column.
const (
	// ProvDetermination is the per-determination summary row: det is
	// the determination number, cause its trigger, src the hot
	// enclosure count, dst the planned move count.
	ProvDetermination = 1
	// ProvMove is a planned migration decided by placement: item,
	// class, src/dst enclosures, features, candidate costs and
	// predicted deltas.
	ProvMove = 2
	// ProvReclass is an item whose I/O-pattern class changed between
	// consecutive determinations (prev_class -> class).
	ProvReclass = 3
	// ProvPreload is a preload decision (det >= 0, chosen by the
	// management function) or a runtime preload bulk read (det < 0).
	ProvPreload = 4
	// ProvDestage is a write-delay decision (det >= 0) or a runtime
	// destage of delayed writes to disk (det < 0).
	ProvDestage = 5
	// ProvPower is a power-state transition: src is the enclosure, dst
	// the state code (0 off, 1 on, 2 spin-up), cause the trigger.
	ProvPower = 6
	// ProvMigration is a completed migration executed by the array.
	ProvMigration = 7
	// ProvFault is an injected fault: src is the enclosure (-1 for
	// battery faults), cause the fault-kind code.
	ProvFault = 8
	// ProvAttrib is an end-of-run energy-attribution row joined from
	// the tracer's ledger: item, class, src enclosure, joules.
	ProvAttrib = 9
)

// ProvKindName names a kind code for reports.
func ProvKindName(kind int) string {
	switch kind {
	case ProvDetermination:
		return "determination"
	case ProvMove:
		return "move"
	case ProvReclass:
		return "reclass"
	case ProvPreload:
		return "preload"
	case ProvDestage:
		return "destage"
	case ProvPower:
		return "power"
	case ProvMigration:
		return "migration"
	case ProvFault:
		return "fault"
	case ProvAttrib:
		return "attrib"
	default:
		return "unknown"
	}
}

// provCols is the fixed column order of the provenance series. Every
// record is one row; fields that do not apply to a kind hold -1 (ids)
// or 0 (measures).
var provCols = []string{
	"kind",       // record kind code (Prov* constants)
	"det",        // determination number; -1 on runtime rows
	"cause",      // cause code (CauseCode); 0 none
	"item",       // item id; -1 when not item-scoped
	"class",      // P0-P3 class; -1 unknown
	"prev_class", // previous class on reclass rows; -1 otherwise
	"src",        // source enclosure (the enclosure on power/fault rows)
	"dst",        // destination enclosure, or power-state code on power rows
	"interval_s", // estimated mean long-interval length, seconds
	"read_ratio", // reads / accesses over the closed period
	"cost_src",   // planned IOPS load on the source enclosure
	"cost_dst",   // planned IOPS load on the destination enclosure
	"pred_dj",    // predicted joule delta of the action (sign: + costs energy)
	"pred_dus",   // predicted response-time delta, microseconds
	"joules",     // ledger-attributed joules (attrib rows)
}

// Column indexes into provCols, for decode.
const (
	provColKind = iota
	provColDet
	provColCause
	provColItem
	provColClass
	provColPrevClass
	provColSrc
	provColDst
	provColIntervalS
	provColReadRatio
	provColCostSrc
	provColCostDst
	provColPredDJ
	provColPredDUS
	provColJoules
	provNumCols
)

// provCauses is the stable cause-code table: code = index + 1, 0 means
// no cause. Fault kinds continue the table after the power causes so
// one column serves both vocabularies.
var provCauses = []string{
	string(CauseIdleTimeout),
	string(CauseDemand),
	string(CauseMigration),
	string(CauseFlush),
	string(CausePreload),
	string(CausePeriodEnd),
	string(CauseTriggerInterval),
	string(CauseTriggerSpinUps),
	"spinup-fail",
	"spinup-exhausted",
	"io-transient",
	"battery-fail",
	"battery-recover",
}

// CauseCode maps a cause (or fault-kind) string to its stable numeric
// code: 0 for empty, -1 for unknown.
func CauseCode(cause string) int {
	if cause == "" {
		return 0
	}
	for i, c := range provCauses {
		if c == cause {
			return i + 1
		}
	}
	return -1
}

// CauseName is the inverse of CauseCode ("" for 0, "?" for unknown).
func CauseName(code int) string {
	if code == 0 {
		return ""
	}
	if code < 1 || code > len(provCauses) {
		return "?"
	}
	return provCauses[code-1]
}

// PowerStateCode maps a power-transition state to its dst-column code.
func PowerStateCode(state string) int {
	switch state {
	case "off":
		return 0
	case "on":
		return 1
	case "spinup":
		return 2
	default:
		return -1
	}
}

// PowerStateName is the inverse of PowerStateCode.
func PowerStateName(code int) string {
	switch code {
	case 0:
		return "off"
	case 1:
		return "on"
	case 2:
		return "spinup"
	default:
		return "?"
	}
}

// ProvenanceOptions configures a Provenance recorder.
type ProvenanceOptions struct {
	// MaxRecords bounds the stored rows; on overflow the store keeps
	// every other accepted row and doubles its acceptance stride, like
	// the flight recorder. Default 8192, forced even, minimum 16.
	MaxRecords int
	// IdleW is the idle draw of one spinning enclosure, used for the
	// predicted joule delta of placement moves. Zero means the
	// power-model default (220 W); replay and fleet overwrite it from
	// the run's storage config via ConfigurePower.
	IdleW float64
	// SpinUpTime is the spin-up transition length, used for predicted
	// latency deltas. Zero means the power-model default (15 s).
	SpinUpTime time.Duration
}

// ProvDecision is one determination-time decision row emitted by the
// management function: a planned move, a reclassification, or a
// preload/write-delay pick, with the per-item features that led to it.
type ProvDecision struct {
	Kind      int // ProvMove, ProvReclass, ProvPreload or ProvDestage
	Det       int64
	Cause     Cause
	Item      int64
	Class     int // P0-P3 after this determination
	PrevClass int // class before; -1 when unchanged/unknown
	Src       int // current enclosure; -1 unknown
	Dst       int // destination enclosure (moves); -1 otherwise
	IntervalS float64
	ReadRatio float64
	CostSrc   float64 // planned IOPS load on Src after placement
	CostDst   float64 // planned IOPS load on Dst after placement
	// ToCold marks a move that packs the item onto a power-managed
	// cold enclosure (predicted to save idle joules at the price of
	// spin-up exposure); false predicts the inverse trade.
	ToCold bool
}

// ProvenanceSummary is the manifest/status roll-up of one recorder.
type ProvenanceSummary struct {
	// Records is the number of rows currently stored (after any
	// resolution halving); Offered counts every row ever offered.
	Records int   `json:"records"`
	Offered int64 `json:"offered"`
	// Stride is the current acceptance stride (1 = lossless so far).
	Stride         int   `json:"stride"`
	Determinations int64 `json:"determinations"`
	Decisions      int64 `json:"decisions"`
	Transitions    int64 `json:"transitions"`
	Migrations     int64 `json:"migrations"`
	Faults         int64 `json:"faults"`
}

// Provenance is the decision-provenance recorder. A nil *Provenance is
// a valid disabled instance: every method nil-checks its receiver, so
// the untraced hot path pays one pointer comparison and allocates
// nothing.
type Provenance struct {
	mu      sync.Mutex
	max     int
	stride  int64
	offered int64
	idleW   float64
	spinUpS float64
	times   []int64
	vals    [][]float64

	determinations int64
	decisions      int64
	transitions    int64
	migrations     int64
	faults         int64
}

// NewProvenance builds an enabled recorder.
func NewProvenance(o ProvenanceOptions) *Provenance {
	max := o.MaxRecords
	if max <= 0 {
		max = 8192
	}
	if max < 16 {
		max = 16
	}
	if max%2 != 0 {
		max++
	}
	idleW := o.IdleW
	if idleW <= 0 {
		idleW = 220
	}
	spinUp := o.SpinUpTime
	if spinUp <= 0 {
		spinUp = 15 * time.Second
	}
	p := &Provenance{max: max, stride: 1, idleW: idleW, spinUpS: spinUp.Seconds()}
	p.vals = make([][]float64, provNumCols)
	return p
}

// Enabled reports whether the recorder captures anything; callers use
// it to skip feature computation entirely when provenance is off.
func (p *Provenance) Enabled() bool { return p != nil }

// ConfigurePower overwrites the electrical constants the predicted
// deltas are computed with; replay and fleet call it with the run's
// actual storage config before the clock starts.
func (p *Provenance) ConfigurePower(idleW float64, spinUp time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if idleW > 0 {
		p.idleW = idleW
	}
	if spinUp > 0 {
		p.spinUpS = spinUp.Seconds()
	}
}

// record offers one row to the store under the flight-recorder
// acceptance discipline: every stride-th offered row is kept; when the
// store is full it halves (even-indexed rows survive, the first row
// always does) and the stride doubles.
func (p *Provenance) record(t time.Duration, row *[provNumCols]float64) {
	p.offered++
	if (p.offered-1)%p.stride != 0 {
		return
	}
	if len(p.times) >= p.max {
		p.compactLocked()
	}
	p.times = append(p.times, int64(t))
	for c := 0; c < provNumCols; c++ {
		p.vals[c] = append(p.vals[c], row[c])
	}
}

// compactLocked drops every other stored row (keeping row 0) and
// doubles the acceptance stride.
func (p *Provenance) compactLocked() {
	keep := (len(p.times) + 1) / 2
	for i := 0; i < keep; i++ {
		p.times[i] = p.times[2*i]
		for c := range p.vals {
			p.vals[c][i] = p.vals[c][2*i]
		}
	}
	p.times = p.times[:keep]
	for c := range p.vals {
		p.vals[c] = p.vals[c][:keep]
	}
	p.stride *= 2
}

// Determination records the per-determination summary row.
func (p *Provenance) Determination(t time.Duration, det int64, cause Cause, nHot, moves int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.determinations++
	row := emptyProvRow()
	row[provColKind] = ProvDetermination
	row[provColDet] = float64(det)
	row[provColCause] = float64(CauseCode(string(cause)))
	row[provColSrc] = float64(nHot)
	row[provColDst] = float64(moves)
	p.record(t, &row)
}

// Decision records one determination-time decision row. Predicted
// deltas for moves are first-order estimates from the recorder's
// electrical constants: packing an item's long-idle seconds onto a
// cold enclosure is predicted to save idleW x interval joules while
// exposing reads to one spin-up stall; promoting it to a hot enclosure
// predicts the inverse trade.
func (p *Provenance) Decision(t time.Duration, d ProvDecision) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.decisions++
	row := emptyProvRow()
	row[provColKind] = float64(d.Kind)
	row[provColDet] = float64(d.Det)
	row[provColCause] = float64(CauseCode(string(d.Cause)))
	row[provColItem] = float64(d.Item)
	row[provColClass] = float64(d.Class)
	row[provColPrevClass] = float64(d.PrevClass)
	row[provColSrc] = float64(d.Src)
	row[provColDst] = float64(d.Dst)
	row[provColIntervalS] = d.IntervalS
	row[provColReadRatio] = d.ReadRatio
	row[provColCostSrc] = d.CostSrc
	row[provColCostDst] = d.CostDst
	if d.Kind == ProvMove {
		dj := p.idleW * d.IntervalS
		dus := p.spinUpS * 1e6 * d.ReadRatio
		if d.ToCold {
			row[provColPredDJ] = -dj
			row[provColPredDUS] = dus
		} else {
			row[provColPredDJ] = dj
			row[provColPredDUS] = -dus
		}
	}
	p.record(t, &row)
}

// PowerTransition records one enclosure power transition with its
// triggering cause; state is "off", "on" or "spinup".
func (p *Provenance) PowerTransition(t time.Duration, enc int, state string, cause Cause) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.transitions++
	row := emptyProvRow()
	row[provColKind] = ProvPower
	row[provColDet] = -1
	row[provColCause] = float64(CauseCode(string(cause)))
	row[provColSrc] = float64(enc)
	row[provColDst] = float64(PowerStateCode(state))
	p.record(t, &row)
}

// MigrationDone records one completed migration executed by the array.
func (p *Provenance) MigrationDone(t time.Duration, item int64, src, dst int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.migrations++
	row := emptyProvRow()
	row[provColKind] = ProvMigration
	row[provColDet] = -1
	row[provColItem] = float64(item)
	row[provColSrc] = float64(src)
	row[provColDst] = float64(dst)
	p.record(t, &row)
}

// CacheOp records runtime preload bulk reads (function "preload") and
// write-delay destages (function "write-delay"), one row per item,
// with det = -1 marking them as executions rather than decisions.
func (p *Provenance) CacheOp(t time.Duration, function string, items []int64) {
	if p == nil || len(items) == 0 {
		return
	}
	kind := ProvPreload
	cause := CausePreload
	if function == "write-delay" {
		kind = ProvDestage
		cause = CauseFlush
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, it := range items {
		row := emptyProvRow()
		row[provColKind] = float64(kind)
		row[provColDet] = -1
		row[provColCause] = float64(CauseCode(string(cause)))
		row[provColItem] = float64(it)
		p.record(t, &row)
	}
}

// Fault records one injected fault (enclosure -1 for battery faults).
func (p *Provenance) Fault(t time.Duration, enc int, kind string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults++
	row := emptyProvRow()
	row[provColKind] = ProvFault
	row[provColDet] = -1
	row[provColCause] = float64(CauseCode(kind))
	row[provColSrc] = float64(enc)
	p.record(t, &row)
}

// RecordAttribution joins the energy ledger into the stream at end of
// run: for each enclosure, up to topPerEnc items by attributed joules
// become ProvAttrib rows. Zero topPerEnc means 16.
func (p *Provenance) RecordAttribution(t time.Duration, a *Attribution, topPerEnc int) {
	if p == nil || a == nil {
		return
	}
	if topPerEnc <= 0 {
		topPerEnc = 16
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, enc := range a.Enclosures {
		n := len(enc.ByItem)
		if n > topPerEnc {
			n = topPerEnc
		}
		for _, ie := range enc.ByItem[:n] {
			row := emptyProvRow()
			row[provColKind] = ProvAttrib
			row[provColDet] = -1
			row[provColItem] = float64(ie.Item)
			row[provColClass] = float64(ie.Class)
			row[provColSrc] = float64(enc.Enclosure)
			row[provColJoules] = ie.Joules
			p.record(t, &row)
		}
	}
}

func emptyProvRow() [provNumCols]float64 {
	var row [provNumCols]float64
	row[provColItem] = -1
	row[provColClass] = -1
	row[provColPrevClass] = -1
	row[provColSrc] = -1
	row[provColDst] = -1
	return row
}

// Series snapshots the stored rows as an immutable columnar series —
// the same shape the flight recorder exports, so CSV/JSON writers and
// the HTTP endpoint are shared.
func (p *Provenance) Series() *Series {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := &Series{
		Cols:    append([]string(nil), provCols...),
		TimesNS: append([]int64(nil), p.times...),
		Values:  make([][]float64, len(p.vals)),
	}
	for c := range p.vals {
		s.Values[c] = append([]float64(nil), p.vals[c]...)
	}
	return s
}

// Summary returns the roll-up counters (monotone; compaction does not
// rewind them).
func (p *Provenance) Summary() *ProvenanceSummary {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return &ProvenanceSummary{
		Records:        len(p.times),
		Offered:        p.offered,
		Stride:         int(p.stride),
		Determinations: p.determinations,
		Decisions:      p.decisions,
		Transitions:    p.transitions,
		Migrations:     p.migrations,
		Faults:         p.faults,
	}
}

// ProvRecord is one decoded provenance row, the working form of the
// esmstat explain pipeline.
type ProvRecord struct {
	T         time.Duration
	Kind      int
	Det       int64
	Cause     string
	Item      int64
	Class     int
	PrevClass int
	Src       int
	Dst       int
	IntervalS float64
	ReadRatio float64
	CostSrc   float64
	CostDst   float64
	PredDJ    float64
	PredDUS   float64
	Joules    float64
}

// DecodeProvenance converts a provenance series (fresh from Series or
// read back from CSV) into typed records. It tolerates column reorder
// but requires every provenance column to be present.
func DecodeProvenance(s *Series) ([]ProvRecord, bool) {
	if s == nil {
		return nil, false
	}
	cols := make([][]float64, provNumCols)
	for c, name := range provCols {
		col := s.Column(name)
		if col == nil {
			return nil, false
		}
		cols[c] = col
	}
	out := make([]ProvRecord, len(s.TimesNS))
	for i := range s.TimesNS {
		out[i] = ProvRecord{
			T:         time.Duration(s.TimesNS[i]),
			Kind:      int(cols[provColKind][i]),
			Det:       int64(cols[provColDet][i]),
			Cause:     CauseName(int(cols[provColCause][i])),
			Item:      int64(cols[provColItem][i]),
			Class:     int(cols[provColClass][i]),
			PrevClass: int(cols[provColPrevClass][i]),
			Src:       int(cols[provColSrc][i]),
			Dst:       int(cols[provColDst][i]),
			IntervalS: cols[provColIntervalS][i],
			ReadRatio: cols[provColReadRatio][i],
			CostSrc:   cols[provColCostSrc][i],
			CostDst:   cols[provColCostDst][i],
			PredDJ:    cols[provColPredDJ][i],
			PredDUS:   cols[provColPredDUS][i],
			Joules:    cols[provColJoules][i],
		}
	}
	return out, true
}
