package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestReadEventsLongLines: a cache-select event naming tens of
// thousands of items produces a JSONL line far beyond bufio.Scanner's
// 64 KiB default; the reader must round-trip it intact.
func TestReadEventsLongLines(t *testing.T) {
	items := make([]int64, 40000)
	for i := range items {
		items[i] = int64(i)
	}
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.Emit(Event{Seq: 1, T: 1e9, Type: EvCacheSelect, Cache: &CacheEvent{Function: "preload", Items: items}})
	sink.Emit(Event{Seq: 2, T: 2e9, Type: EvPowerOff, Power: &PowerEvent{Enclosure: 3, State: "off", Cause: "policy"}})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if lineLen := bytes.IndexByte(buf.Bytes(), '\n'); lineLen < 128*1024 {
		t.Fatalf("fixture line only %d bytes; grow the item list", lineLen)
	}

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("%d events, want 2", len(events))
	}
	if got := events[0].Cache; got == nil || len(got.Items) != len(items) ||
		got.Items[0] != 0 || got.Items[len(items)-1] != int64(len(items)-1) {
		t.Fatalf("long event mangled: %d items", len(events[0].Cache.Items))
	}
	if events[1].Power == nil || events[1].Power.Enclosure != 3 {
		t.Fatalf("event after long line mangled: %+v", events[1])
	}
}

// TestReadEventsLineNumbers: errors keep pointing at the right file
// line, counting blank lines and a trailing unterminated line.
func TestReadEventsLineNumbers(t *testing.T) {
	in := `{"seq":1,"t_ns":1,"type":"power_off","power":{"enclosure":0,"state":"off"}}

not json`
	_, err := ReadEvents(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %v, want line 3", err)
	}

	// A valid log with a trailing newline-free line still parses fully.
	ok := strings.TrimSuffix(in, "not json") + `{"seq":2,"t_ns":2,"type":"power_on","power":{"enclosure":1,"state":"spinup"}}`
	events, err := ReadEvents(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Power.Enclosure != 1 {
		t.Fatalf("events %+v", events)
	}
}
