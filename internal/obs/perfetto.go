// Chrome trace-event (Perfetto) export: a SpanSink that renders a
// run's spans into the JSON object format understood by
// ui.perfetto.dev and chrome://tracing, plus the reader and validator
// used by esmstat and the CI trace smoke test.
//
// Layout: process 1 is storage I/O (one thread per enclosure, plus a
// cache thread), process 2 is storage management (one thread per
// management kind). Timestamps are the simulated clock expressed in
// microseconds; the exact nanosecond phase breakdown of every I/O
// rides in the event args. The end-of-run latency summary and energy
// attribution are embedded in otherData so `esmstat latency`/`attrib`
// can render them from the trace file alone.

package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// TraceEvent is one Chrome trace-event JSON entry.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// PerfettoOtherData is the run summary embedded next to the events.
type PerfettoOtherData struct {
	Label       string          `json:"label,omitempty"`
	Latency     *LatencySummary `json:"latency,omitempty"`
	Attribution *Attribution    `json:"attribution,omitempty"`
}

// PerfettoFile is the object-format trace file.
type PerfettoFile struct {
	TraceEvents []TraceEvent       `json:"traceEvents"`
	OtherData   *PerfettoOtherData `json:"otherData,omitempty"`
}

// The process ids of the two span families.
const (
	perfettoPidStorage    = 1
	perfettoPidManagement = 2
)

// perfettoCacheTid is the storage-process thread carrying cache hits.
// Enclosure e maps to thread e+1.
const perfettoCacheTid = 0

func managementTid(kind string) int {
	switch kind {
	case "migration", "migration-failed":
		return 1
	case "preload":
		return 2
	case "destage":
		return 3
	case "determination":
		return 4
	default:
		return 9
	}
}

func managementTidName(tid int) string {
	switch tid {
	case 1:
		return "migrations"
	case 2:
		return "preloads"
	case 3:
		return "destages"
	case 4:
		return "determinations"
	default:
		return "other"
	}
}

// PerfettoSink buffers spans and writes the trace file on Close. Spans
// arrive in completion order but start earlier (an I/O's span begins at
// its arrival), so the sink sorts by start timestamp before writing to
// keep the emitted stream monotonic.
type PerfettoSink struct {
	w      io.Writer
	label  string
	events []TraceEvent
	// seen tracks (pid, tid) pairs needing thread metadata.
	seen map[[2]int]bool
	// summary is installed by the owning Tracer at Close time.
	latency *LatencySummary
	attrib  *Attribution
}

// NewPerfettoSink returns a sink writing the trace to w when closed.
// label names the run (e.g. "workload/policy") in otherData.
func NewPerfettoSink(w io.Writer, label string) *PerfettoSink {
	return &PerfettoSink{w: w, label: label, seen: map[[2]int]bool{}}
}

// SetSummary attaches the end-of-run latency and attribution summary;
// the owning Tracer calls it right before Close.
func (s *PerfettoSink) SetSummary(lat *LatencySummary, attrib *Attribution) {
	s.latency = lat
	s.attrib = attrib
}

// IOSpan implements SpanSink.
func (s *PerfettoSink) IOSpan(sp IOSpan) {
	name := "read"
	if !sp.Read {
		name = "write"
	}
	tid := perfettoCacheTid
	if sp.Cause != IOCacheHit {
		tid = sp.Enclosure + 1
	}
	args := map[string]any{
		"item":        sp.Item,
		"class":       ClassName(ClassIndex(sp.Class)),
		"cause":       sp.Cause.String(),
		"response_ns": int64(sp.Response),
	}
	if sp.Cause != IOCacheHit {
		args["power_state"] = sp.PowerState
		args["queue_wait_ns"] = int64(sp.QueueWait)
		args["service_ns"] = int64(sp.Service)
		if sp.SpinUpWait > 0 {
			args["spinup_wait_ns"] = int64(sp.SpinUpWait)
		}
	}
	s.add(TraceEvent{
		Name: name, Ph: "X",
		Ts:  float64(sp.Start) / 1e3,
		Dur: float64(sp.Response) / 1e3,
		Pid: perfettoPidStorage, Tid: tid,
		Args: args,
	})
}

// ManagementSpan implements SpanSink.
func (s *PerfettoSink) ManagementSpan(sp ManagementSpan) {
	args := map[string]any{"enclosure": sp.Enclosure}
	if sp.Item >= 0 {
		args["item"] = sp.Item
	}
	if sp.Dst >= 0 {
		args["dst"] = sp.Dst
	}
	if sp.Bytes > 0 {
		args["bytes"] = sp.Bytes
	}
	if sp.Cause != "" {
		args["cause"] = sp.Cause
	}
	if sp.N > 0 {
		args["n"] = sp.N
	}
	s.add(TraceEvent{
		Name: sp.Kind, Ph: "X",
		Ts:  float64(sp.Start) / 1e3,
		Dur: float64(sp.End-sp.Start) / 1e3,
		Pid: perfettoPidManagement, Tid: managementTid(sp.Kind),
		Args: args,
	})
}

func (s *PerfettoSink) add(ev TraceEvent) {
	s.seen[[2]int{ev.Pid, ev.Tid}] = true
	s.events = append(s.events, ev)
}

// Close sorts the buffered events by timestamp, prepends the process
// and thread metadata, and writes the trace file.
func (s *PerfettoSink) Close() error {
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].Ts < s.events[j].Ts })
	meta := []TraceEvent{
		metaEvent("process_name", perfettoPidStorage, 0, "storage i/o"),
		metaEvent("process_name", perfettoPidManagement, 0, "storage management"),
	}
	tids := make([][2]int, 0, len(s.seen))
	for k := range s.seen {
		tids = append(tids, k)
	}
	sort.Slice(tids, func(i, j int) bool {
		if tids[i][0] != tids[j][0] {
			return tids[i][0] < tids[j][0]
		}
		return tids[i][1] < tids[j][1]
	})
	for _, k := range tids {
		name := ""
		if k[0] == perfettoPidStorage {
			if k[1] == perfettoCacheTid {
				name = "cache"
			} else {
				name = fmt.Sprintf("enclosure %d", k[1]-1)
			}
		} else {
			name = managementTidName(k[1])
		}
		meta = append(meta, metaEvent("thread_name", k[0], k[1], name))
	}
	file := PerfettoFile{
		TraceEvents: append(meta, s.events...),
		OtherData: &PerfettoOtherData{
			Label:       s.label,
			Latency:     s.latency,
			Attribution: s.attrib,
		},
	}
	enc := json.NewEncoder(s.w)
	if err := enc.Encode(&file); err != nil {
		return err
	}
	if c, ok := s.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

func metaEvent(name string, pid, tid int, value string) TraceEvent {
	return TraceEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": value}}
}

// ReadPerfetto parses a trace-event file written by PerfettoSink.
func ReadPerfetto(r io.Reader) (*PerfettoFile, error) {
	var f PerfettoFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("parse perfetto trace: %w", err)
	}
	return &f, nil
}

// ValidatePerfetto checks that r holds a well-formed trace: it parses,
// contains at least one non-metadata event, every duration is
// non-negative, and the non-metadata timestamps are monotonically
// non-decreasing. This is the CI smoke-test contract.
func ValidatePerfetto(r io.Reader) error {
	f, err := ReadPerfetto(r)
	if err != nil {
		return err
	}
	spans := 0
	last := -1.0
	for i, ev := range f.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		spans++
		if ev.Dur < 0 {
			return fmt.Errorf("event %d (%q): negative duration %v", i, ev.Name, ev.Dur)
		}
		if ev.Ts < last {
			return fmt.Errorf("event %d (%q): timestamp %v precedes %v", i, ev.Name, ev.Ts, last)
		}
		last = ev.Ts
	}
	if spans == 0 {
		return errors.New("trace holds no span events")
	}
	return nil
}
