// Streaming log-bucketed latency histograms: the per-phase and
// per-cause response-time breakdown built on top of the tracer's I/O
// spans. The bucket scheme is identical to metrics.ResponseStats
// (bucket 0 covers [0, 200µs), bucket i ≥ 1 covers
// [200µs·2^(i-1), 200µs·2^i)), so percentiles computed here agree with
// the replay aggregates on the same samples.

package obs

import (
	"math"
	"time"
)

// HistBuckets is the number of logarithmic histogram buckets.
const HistBuckets = 32

// HistBucketBase is the upper bound of the first bucket.
const HistBucketBase = 200 * time.Microsecond

// Histogram is a streaming log-bucketed duration histogram. Percentile
// returns the bucket upper bound (clamped to the observed maximum), the
// same estimator metrics.ResponseStats uses, so cross-checks against a
// sorted-sample computation are exact at bucket granularity.
type Histogram struct {
	count   int64
	sum     time.Duration
	max     time.Duration
	buckets [HistBuckets]int64
}

// Add records one duration.
func (h *Histogram) Add(d time.Duration) {
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	b := 0
	for limit := HistBucketBase; d >= limit && b < HistBuckets-1; limit *= 2 {
		b++
	}
	h.buckets[b]++
}

// Count returns the number of recorded durations.
func (h *Histogram) Count() int64 { return h.count }

// Max returns the largest recorded duration.
func (h *Histogram) Max() time.Duration { return h.max }

// Mean returns the mean duration, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Percentile returns an upper bound of the p-quantile (0 < p ≤ 1): the
// upper edge of the bucket holding the p-th sample, clamped to the
// observed maximum.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(p * float64(h.count)))
	var seen int64
	limit := HistBucketBase
	for b := 0; b < HistBuckets; b++ {
		seen += h.buckets[b]
		if seen >= target {
			if limit > h.max {
				return h.max
			}
			return limit
		}
		limit *= 2
	}
	return h.max
}

// Merge adds o's samples into h. The merged percentiles are exact at
// bucket granularity (bucket counts add; max is the larger max).
func (h *Histogram) Merge(o *Histogram) {
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	for b := range h.buckets {
		h.buckets[b] += o.buckets[b]
	}
}

// Phase names one stage of an application I/O's life inside the
// storage unit.
type Phase uint8

// The I/O phases, in lifecycle order: an I/O arrives, the cache lookup
// either resolves it (cache phase) or it proceeds to its enclosure,
// where it may wait for a spin-up, then for a free server (queue), and
// finally receives physical service.
const (
	PhaseCache Phase = iota
	PhaseSpinUp
	PhaseQueue
	PhaseService
	PhaseCount
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseCache:
		return "cache"
	case PhaseSpinUp:
		return "spinup-wait"
	case PhaseQueue:
		return "queue"
	case PhaseService:
		return "service"
	default:
		return "unknown"
	}
}

// IOCause classifies how an application I/O was served: entirely from
// cache, by a spun-up enclosure, or delayed behind an on-demand
// spin-up. This is the axis the paper's energy/response trade-off turns
// on — spin-up-blocked I/Os are the ones paying for the energy saving.
type IOCause uint8

// The serve causes.
const (
	IOCacheHit IOCause = iota
	IODiskOn
	IOSpinUpBlocked
	IOCauseCount
)

// String returns the cause name.
func (c IOCause) String() string {
	switch c {
	case IOCacheHit:
		return "cache-hit"
	case IODiskOn:
		return "disk-on"
	case IOSpinUpBlocked:
		return "spin-up-blocked"
	default:
		return "unknown"
	}
}

// LatencyStats is the streaming latency breakdown: total response
// times, response times split by serve cause, and per-phase durations.
// The spin-up histogram covers only I/Os that actually waited for a
// spin-up; the queue and service histograms cover every physical I/O;
// the cache histogram covers every cache-resolved I/O.
type LatencyStats struct {
	Total   Histogram
	ByCause [IOCauseCount]Histogram
	ByPhase [PhaseCount]Histogram
}

// addIO folds one completed I/O span into the breakdown.
func (l *LatencyStats) addIO(sp *IOSpan) {
	l.Total.Add(sp.Response)
	l.ByCause[sp.Cause].Add(sp.Response)
	if sp.Cause == IOCacheHit {
		l.ByPhase[PhaseCache].Add(sp.Response)
		return
	}
	if sp.SpinUpWait > 0 {
		l.ByPhase[PhaseSpinUp].Add(sp.SpinUpWait)
	}
	l.ByPhase[PhaseQueue].Add(sp.QueueWait)
	l.ByPhase[PhaseService].Add(sp.Service)
}

// LatencyRow is one row of a latency summary: the distribution of one
// phase or one cause.
type LatencyRow struct {
	Name  string        `json:"name"`
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

func summaryRow(name string, h *Histogram) LatencyRow {
	return LatencyRow{
		Name:  name,
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(0.50),
		P95:   h.Percentile(0.95),
		P99:   h.Percentile(0.99),
		Max:   h.Max(),
	}
}

// LatencySummary is a point-in-time snapshot of the latency breakdown,
// as served by esmd /status and rendered by esmstat latency.
type LatencySummary struct {
	Total   LatencyRow   `json:"total"`
	ByCause []LatencyRow `json:"by_cause"`
	ByPhase []LatencyRow `json:"by_phase"`
}

// summary snapshots the breakdown. Empty causes and phases are kept so
// consumers always see the full axis.
func (l *LatencyStats) summary() *LatencySummary {
	s := &LatencySummary{Total: summaryRow("total", &l.Total)}
	for c := IOCause(0); c < IOCauseCount; c++ {
		s.ByCause = append(s.ByCause, summaryRow(c.String(), &l.ByCause[c]))
	}
	for p := Phase(0); p < PhaseCount; p++ {
		s.ByPhase = append(s.ByPhase, summaryRow(p.String(), &l.ByPhase[p]))
	}
	return s
}
