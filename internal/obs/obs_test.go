package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestNilRecorderIsNoOp: every method must be callable on a nil
// recorder — the disabled fast path the hot I/O loop relies on.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.PhysicalIO(true)
	r.CacheHit()
	r.DelayedWrite()
	r.PowerTransition(time.Second, 0, "off", CauseIdleTimeout)
	r.MigrationStart(0, 1, 0, 1, 100)
	r.MigrationDone(0, 1, 0, 1, 100)
	r.MigrationSkipped(0, 1, 1)
	r.CacheSelect(0, "preload", []int64{1})
	r.CacheEvict(0, "preload", []int64{1})
	r.DeterminationStart(0, 1, CausePeriodEnd)
	r.Determination(0, DeterminationEvent{N: 1})
	r.ReplanTrigger(0, ReplanEvent{Trigger: CauseTriggerInterval})
	r.PeriodAdapt(0, time.Second, 2*time.Second)
	if r.Timeline(0) != nil || r.Timelines() != nil || r.Registry() != nil {
		t.Fatal("nil recorder returned non-nil state")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEventStreamJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := New(Options{Sink: NewJSONLSink(&buf), Label: "esm"})
	rec.DeterminationStart(520*time.Second, 1, CausePeriodEnd)
	rec.Determination(520*time.Second, DeterminationEvent{
		N: 1, Cause: CausePeriodEnd,
		PatternCounts: [4]int{3, 2, 1, 4},
		Hot:           []bool{true, false, true},
		NHot:          2, Moves: 5, WriteDelay: 2, Preload: 1,
		NextPeriodNS: int64(624 * time.Second),
	})
	rec.PowerTransition(600*time.Second, 1, "off", CauseIdleTimeout)
	rec.PowerTransition(700*time.Second, 1, "spinup", CauseDemand)
	rec.PowerTransition(715*time.Second, 1, "on", CauseDemand)
	rec.MigrationStart(520*time.Second, 7, 2, 0, 1<<20)
	rec.MigrationDone(530*time.Second, 7, 2, 0, 1<<20)
	rec.CacheSelect(520*time.Second, "preload", []int64{3, 4})
	rec.ReplanTrigger(800*time.Second, ReplanEvent{Trigger: CauseTriggerSpinUps, Enclosure: 1, SpinUps: 5, Threshold: 4.2})
	rec.PeriodAdapt(800*time.Second, 520*time.Second, 624*time.Second)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The "on" power segment extends the timeline without an event.
	want := []EventType{
		EvDeterminationStart, EvDetermination, EvPowerOff, EvPowerOn,
		EvMigrationStart, EvMigrationDone, EvCacheSelect,
		EvReplanTrigger, EvPeriodAdapt,
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d", len(events), len(want))
	}
	for i, ev := range events {
		if ev.Type != want[i] {
			t.Errorf("event %d: type %q, want %q", i, ev.Type, want[i])
		}
		if ev.Seq != int64(i+1) {
			t.Errorf("event %d: seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Run != "esm" {
			t.Errorf("event %d: run %q, want esm", i, ev.Run)
		}
	}
	det := events[1].Determination
	if det == nil || det.PatternCounts != [4]int{3, 2, 1, 4} || det.NHot != 2 {
		t.Fatalf("determination payload corrupted: %+v", det)
	}
	if p := events[3].Power; p == nil || p.State != "spinup" || p.Cause != CauseDemand {
		t.Fatalf("power payload corrupted: %+v", events[3].Power)
	}
}

func TestTimelineAndOffTime(t *testing.T) {
	rec := New(Options{})
	rec.PowerTransition(10*time.Second, 0, "off", CauseIdleTimeout)
	rec.PowerTransition(30*time.Second, 0, "spinup", CauseDemand)
	rec.PowerTransition(45*time.Second, 0, "on", CauseDemand)
	rec.PowerTransition(100*time.Second, 0, "off", CauseIdleTimeout)

	segs := rec.Timeline(0)
	if len(segs) != 4 {
		t.Fatalf("got %d segments, want 4", len(segs))
	}
	if segs[0].State != "off" || segs[0].Cause != CauseIdleTimeout || segs[0].T != 10*time.Second {
		t.Fatalf("segment 0 wrong: %+v", segs[0])
	}
	// Off 10s..30s (20s) plus 100s..120s (20s).
	if got := OffTime(segs, 120*time.Second); got != 40*time.Second {
		t.Fatalf("OffTime = %v, want 40s", got)
	}
	if rec.Timeline(5) != nil {
		t.Fatal("unknown enclosure should have nil timeline")
	}
	if all := rec.Timelines(); len(all) != 1 || len(all[0]) != 4 {
		t.Fatalf("Timelines() wrong shape: %v", all)
	}
}

func TestCollectSink(t *testing.T) {
	var sink CollectSink
	rec := New(Options{Sink: &sink})
	rec.DeterminationStart(time.Second, 1, CausePeriodEnd)
	rec.DeterminationStart(2*time.Second, 2, CauseTriggerInterval)
	got := sink.Events()
	if len(got) != 2 || got[0].Determination.Cause != CausePeriodEnd || got[1].Determination.Cause != CauseTriggerInterval {
		t.Fatalf("collect sink contents wrong: %+v", got)
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	_, err := ReadEvents(strings.NewReader("{\"seq\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}
