// The flight recorder: whole-system snapshots on the simulated clock,
// kept in a compact columnar store with bounded-memory downsampling.
// Like Recorder and Tracer, a nil *FlightRecorder is a valid disabled
// instance — every method nil-checks its receiver, so wiring costs the
// hot path one pointer comparison when sampling is off.

package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// FlightSample is one whole-system snapshot at simulated time T. The
// energy, spin-up, migration and I/O columns are cumulative since the
// start of the run; the cache and enclosure columns are instantaneous.
type FlightSample struct {
	T time.Duration

	// Cumulative energy of the enclosures alone and of the whole unit
	// (enclosures + controller), and the enclosure power-on count.
	EnclosureEnergyJ float64
	TotalEnergyJ     float64
	SpinUps          int

	// Instantaneous cache occupancy.
	CacheGeneralPages int
	CachePreloadBytes int64
	CacheDirtyBytes   int64

	// ClassCounts is the P0–P3 item distribution of the most recent
	// placement determination. The recorder stamps it into every sample
	// (see SetClassCounts), like the tracer stamps span classes.
	ClassCounts [4]int

	// Cumulative policy and array counters.
	Determinations int64
	Migrations     int64
	MigratedBytes  int64
	PhysicalReads  int64
	PhysicalWrites int64
	CacheHits      int64

	// Running application-response aggregates.
	RespCount int64
	RespMean  time.Duration
	RespP95   time.Duration
	RespP99   time.Duration

	// Cumulative injected-fault count and the policy's current
	// degraded-mode flag.
	Faults   int64
	Degraded bool

	// Enclosures is the per-enclosure state; its length fixes the
	// column layout at the first recorded sample.
	Enclosures []EnclosureSample
}

// Enclosure power states as stored in the enc<i>_state column.
const (
	EnclosureOff    = 0
	EnclosureIdle   = 1
	EnclosureActive = 2
)

// EnclosureSample is one enclosure's state within a FlightSample.
type EnclosureSample struct {
	// State is EnclosureOff, EnclosureIdle or EnclosureActive (spin-up
	// counts as active: the disks draw power and I/O is pending).
	State uint8
	// UsedBytes is the allocated capacity.
	UsedBytes int64
	// IdleFor is how long the enclosure has been idle (zero unless
	// State is EnclosureIdle).
	IdleFor time.Duration
}

// FlightOptions configures a FlightRecorder.
type FlightOptions struct {
	// Interval is the sampling interval on the simulated clock. Zero
	// lets the driver pick its default grid (replay uses span/120).
	Interval time.Duration
	// MaxSamples bounds the stored samples. When the store fills, every
	// other sample is dropped and the acceptance stride doubles, so
	// memory stays bounded while the whole run remains covered at
	// halved resolution. Defaults to 512; forced even and >= 4.
	MaxSamples int
}

// DefaultFlightMaxSamples is the MaxSamples default.
const DefaultFlightMaxSamples = 512

// FlightRecorder collects FlightSamples into a columnar Series. A nil
// *FlightRecorder is a valid disabled recorder.
type FlightRecorder struct {
	mu       sync.Mutex
	interval time.Duration
	max      int

	cols  []string
	times []int64
	vals  [][]float64 // vals[c][row], aligned with cols

	encs    int // enclosure count, fixed at the first sample
	stride  int // accept every stride-th offered sample
	offered int

	classCounts [4]int
}

// NewFlightRecorder returns a live flight recorder.
func NewFlightRecorder(opts FlightOptions) *FlightRecorder {
	max := opts.MaxSamples
	if max <= 0 {
		max = DefaultFlightMaxSamples
	}
	if max < 4 {
		max = 4
	}
	if max%2 != 0 {
		max++
	}
	return &FlightRecorder{interval: opts.Interval, max: max, stride: 1, encs: -1}
}

// Enabled reports whether the recorder is live.
func (f *FlightRecorder) Enabled() bool { return f != nil }

// Interval returns the configured sampling interval (zero for a nil or
// interval-less recorder, letting the driver pick its default).
func (f *FlightRecorder) Interval() time.Duration {
	if f == nil {
		return 0
	}
	return f.interval
}

// Stats reports the recorder's liveness: how many samples are stored
// and the simulated time of the most recent one (zero when empty).
// Status endpoints surface both so a stalled ingest is visible at a
// glance. Nil-safe.
func (f *FlightRecorder) Stats() (samples int, last time.Duration) {
	if f == nil {
		return 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if n := len(f.times); n > 0 {
		return n, time.Duration(f.times[n-1])
	}
	return 0, 0
}

// SetClassCounts installs the P0–P3 item distribution of the latest
// placement determination; subsequent samples carry it. The policy
// calls this once per determination.
func (f *FlightRecorder) SetClassCounts(counts [4]int) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.classCounts = counts
	f.mu.Unlock()
}

// scalarCols is the fixed scalar column order; per-enclosure columns
// follow it in the layout.
var scalarCols = []string{
	"enclosure_energy_j", "total_energy_j", "spin_ups",
	"cache_general_pages", "cache_preload_b", "cache_dirty_b",
	"class_p0", "class_p1", "class_p2", "class_p3",
	"determinations", "migrations", "migrated_b",
	"physical_reads", "physical_writes", "cache_hits",
	"resp_count", "resp_mean_us", "resp_p95_us", "resp_p99_us",
	"faults", "degraded",
}

// layout fixes the column set from the first sample's enclosure count.
// Caller holds f.mu.
func (f *FlightRecorder) layout(encs int) {
	f.encs = encs
	f.cols = append([]string(nil), scalarCols...)
	for e := 0; e < encs; e++ {
		f.cols = append(f.cols,
			fmt.Sprintf("enc%d_state", e),
			fmt.Sprintf("enc%d_used_b", e),
			fmt.Sprintf("enc%d_idle_s", e))
	}
	f.vals = make([][]float64, len(f.cols))
}

// row flattens s into column order. Caller holds f.mu.
func (f *FlightRecorder) row(s FlightSample) []float64 {
	deg := 0.0
	if s.Degraded {
		deg = 1
	}
	out := make([]float64, 0, len(f.cols))
	out = append(out,
		s.EnclosureEnergyJ, s.TotalEnergyJ, float64(s.SpinUps),
		float64(s.CacheGeneralPages), float64(s.CachePreloadBytes), float64(s.CacheDirtyBytes),
		float64(f.classCounts[0]), float64(f.classCounts[1]), float64(f.classCounts[2]), float64(f.classCounts[3]),
		float64(s.Determinations), float64(s.Migrations), float64(s.MigratedBytes),
		float64(s.PhysicalReads), float64(s.PhysicalWrites), float64(s.CacheHits),
		float64(s.RespCount),
		float64(s.RespMean)/float64(time.Microsecond),
		float64(s.RespP95)/float64(time.Microsecond),
		float64(s.RespP99)/float64(time.Microsecond),
		float64(s.Faults), deg)
	for e := 0; e < f.encs; e++ {
		var es EnclosureSample
		if e < len(s.Enclosures) {
			es = s.Enclosures[e]
		}
		out = append(out, float64(es.State), float64(es.UsedBytes), es.IdleFor.Seconds())
	}
	return out
}

// Record offers one sample. The recorder accepts every stride-th offer
// (stride starts at 1 and doubles on each compaction), so after any
// number of offers memory holds at most MaxSamples rows: the first
// sample is always retained, and cumulative columns stay monotone
// because compaction only drops rows, never merges them.
func (f *FlightRecorder) Record(s FlightSample) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	accept := f.offered%f.stride == 0
	f.offered++
	if !accept {
		return
	}
	f.append(s)
}

// Final force-appends the run's closing sample, bypassing the
// acceptance stride so the last row always reflects the end-of-run
// totals. A sample at the same instant as the latest row replaces it.
func (f *FlightRecorder) Final(s FlightSample) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if n := len(f.times); n > 0 && f.times[n-1] == int64(s.T) {
		row := f.row(s)
		for c := range f.vals {
			f.vals[c][n-1] = row[c]
		}
		return
	}
	f.append(s)
}

// append stores one accepted sample, compacting first when full.
// Caller holds f.mu.
func (f *FlightRecorder) append(s FlightSample) {
	if f.encs < 0 {
		f.layout(len(s.Enclosures))
	}
	if len(f.times) >= f.max {
		f.compact()
	}
	f.times = append(f.times, int64(s.T))
	row := f.row(s)
	for c := range f.vals {
		f.vals[c] = append(f.vals[c], row[c])
	}
}

// compact halves the resolution: even-indexed rows survive (so row 0,
// the start of the run, always does) and the acceptance stride doubles.
// Caller holds f.mu.
func (f *FlightRecorder) compact() {
	keep := (len(f.times) + 1) / 2
	for i := 0; i < keep; i++ {
		f.times[i] = f.times[2*i]
	}
	f.times = f.times[:keep]
	for c := range f.vals {
		col := f.vals[c]
		for i := 0; i < keep; i++ {
			col[i] = col[2*i]
		}
		f.vals[c] = col[:keep]
	}
	f.stride *= 2
}

// Series returns a snapshot of the recorded time series (nil for a nil
// or empty recorder). The snapshot is independent of later recording.
func (f *FlightRecorder) Series() *Series {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.times) == 0 {
		return nil
	}
	s := &Series{
		Cols:       append([]string(nil), f.cols...),
		TimesNS:    append([]int64(nil), f.times...),
		Values:     make([][]float64, len(f.vals)),
		IntervalNS: int64(f.interval) * int64(f.stride),
	}
	for c := range f.vals {
		s.Values[c] = append([]float64(nil), f.vals[c]...)
	}
	return s
}

// Series is an immutable columnar time series: Values[c][i] is column
// Cols[c] at simulated time TimesNS[i]. IntervalNS is the effective
// sampling interval after downsampling (0 when unknown).
type Series struct {
	Cols       []string    `json:"cols"`
	TimesNS    []int64     `json:"times_ns"`
	Values     [][]float64 `json:"values"`
	IntervalNS int64       `json:"interval_ns"`
}

// Len returns the number of samples.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.TimesNS)
}

// Column returns the values of the named column, or nil.
func (s *Series) Column(name string) []float64 {
	if s == nil {
		return nil
	}
	for c, n := range s.Cols {
		if n == name {
			return s.Values[c]
		}
	}
	return nil
}

// Window returns the sub-series with since <= t <= until (until <= 0
// means no upper bound). The returned series shares backing arrays.
func (s *Series) Window(since, until time.Duration) *Series {
	if s == nil {
		return nil
	}
	lo, hi := 0, len(s.TimesNS)
	for lo < hi && time.Duration(s.TimesNS[lo]) < since {
		lo++
	}
	if until > 0 {
		for hi > lo && time.Duration(s.TimesNS[hi-1]) > until {
			hi--
		}
	}
	out := &Series{Cols: s.Cols, TimesNS: s.TimesNS[lo:hi], IntervalNS: s.IntervalNS}
	out.Values = make([][]float64, len(s.Values))
	for c := range s.Values {
		out.Values[c] = s.Values[c][lo:hi]
	}
	return out
}

// WriteCSV writes the series as one header row ("t_ns" then the column
// names) plus one row per sample.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"t_ns"}, s.Cols...)); err != nil {
		return err
	}
	row := make([]string, 1+len(s.Cols))
	for i := range s.TimesNS {
		row[0] = strconv.FormatInt(s.TimesNS[i], 10)
		for c := range s.Cols {
			row[1+c] = strconv.FormatFloat(s.Values[c][i], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the series as one indented JSON object.
func (s *Series) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// ReadSeriesCSV parses a series written by WriteCSV.
func ReadSeriesCSV(r io.Reader) (*Series, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 || len(rows[0]) < 2 || rows[0][0] != "t_ns" {
		return nil, fmt.Errorf("obs: not a series CSV (want a t_ns header)")
	}
	s := &Series{Cols: append([]string(nil), rows[0][1:]...)}
	s.Values = make([][]float64, len(s.Cols))
	for ln, row := range rows[1:] {
		if len(row) != 1+len(s.Cols) {
			return nil, fmt.Errorf("obs: series row %d has %d fields, want %d", ln+2, len(row), 1+len(s.Cols))
		}
		t, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: series row %d: %w", ln+2, err)
		}
		s.TimesNS = append(s.TimesNS, t)
		for c := range s.Cols {
			v, err := strconv.ParseFloat(row[1+c], 64)
			if err != nil {
				return nil, fmt.Errorf("obs: series row %d col %s: %w", ln+2, s.Cols[c], err)
			}
			s.Values[c] = append(s.Values[c], v)
		}
	}
	if s.Len() >= 2 {
		s.IntervalNS = s.TimesNS[1] - s.TimesNS[0]
	}
	return s, nil
}
