// Build identity: one helper answering "what binary is this" for the
// -version flag on every command and as an esm_build_info gauge, so a
// scraped fleet can be audited for version skew.

package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildVersion returns the module version baked into the binary by the
// go toolchain ("(devel)" for in-tree builds, "unknown" when no build
// info is embedded) and the Go runtime version.
func BuildVersion() (version, goVersion string) {
	version = "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	return version, runtime.Version()
}

// VersionString renders the one-line output of a command's -version
// flag.
func VersionString(tool string) string {
	v, gv := BuildVersion()
	return fmt.Sprintf("%s %s (%s)", tool, v, gv)
}

// RegisterBuildInfo adds the esm_build_info{version,go} gauge (constant
// 1) to reg. Nil-safe on a nil registry.
func RegisterBuildInfo(reg *Registry) {
	if reg == nil {
		return
	}
	v, gv := BuildVersion()
	name := WithLabel(WithLabel("esm_build_info", "version", v), "go", gv)
	reg.Gauge(name, "Build identity of the serving binary; constant 1.").Set(1)
}
