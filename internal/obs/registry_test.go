package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRegistryPrometheusRendering(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("esm_spin_ups_total", "Enclosure power-on transitions.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	g := reg.Gauge("esm_monitoring_period_seconds", "Current monitoring-period length.")
	g.Set(624)
	reg.GaugeFunc("esm_cache_occupancy_bytes{partition=\"preload\"}", "Bytes pinned in the preload partition.", func() float64 { return 1024 })

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP esm_spin_ups_total Enclosure power-on transitions.",
		"# TYPE esm_spin_ups_total counter",
		"esm_spin_ups_total 3",
		"# TYPE esm_monitoring_period_seconds gauge",
		"esm_monitoring_period_seconds 624",
		"# TYPE esm_cache_occupancy_bytes gauge",
		"esm_cache_occupancy_bytes{partition=\"preload\"} 1024",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: the cache gauge precedes the period gauge.
	if strings.Index(out, "esm_cache_occupancy_bytes{") > strings.Index(out, "esm_monitoring_period_seconds ") {
		t.Error("output not sorted by metric name")
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "first")
	b := reg.Counter("x_total", "second")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	if reg.Gauge("g", "") != reg.Gauge("g", "") {
		t.Fatal("same name must return the same gauge")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hits_total", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				reg.Gauge("g", "").Set(float64(j))
			}
		}()
	}
	var renderErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				renderErr = err
				return
			}
		}
	}()
	wg.Wait()
	if renderErr != nil {
		t.Fatal(renderErr)
	}
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestWithLabel(t *testing.T) {
	cases := []struct {
		name, key, value, want string
	}{
		{"esm_spin_ups_total", "array", "a", `esm_spin_ups_total{array="a"}`},
		// Merged labels stay sorted by key regardless of insertion order.
		{`esm_io_latency_seconds{cause="demand",quantile="0.5"}`, "array", "b",
			`esm_io_latency_seconds{array="b",cause="demand",quantile="0.5"}`},
		{`m{zz="1"}`, "aa", "2", `m{aa="2",zz="1"}`},
		// Same key replaces.
		{`m{array="old"}`, "array", "new", `m{array="new"}`},
		// Values are escaped.
		{"m", "array", `a"b\c`, `m{array="a\"b\\c"}`},
	}
	for _, c := range cases {
		if got := WithLabel(c.name, c.key, c.value); got != c.want {
			t.Errorf("WithLabel(%q, %q, %q) = %q, want %q", c.name, c.key, c.value, got, c.want)
		}
	}
}

// TestWritePrometheusFamilyGrouping: a family whose name prefixes
// another ("esm_io" vs "esm_io_phase") must still render contiguously,
// with HELP/TYPE exactly once per family — raw byte order would split
// it because '_' sorts before '{'.
func TestWritePrometheusFamilyGrouping(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge(`esm_io{array="b"}`, "io help").Set(1)
	reg.Gauge(`esm_io_phase{phase="queue"}`, "phase help").Set(2)
	reg.Gauge(`esm_io{array="a"}`, "io help").Set(3)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "# TYPE esm_io gauge"); n != 1 {
		t.Errorf("TYPE esm_io emitted %d times, want 1:\n%s", n, out)
	}
	if n := strings.Count(out, "# TYPE esm_io_phase gauge"); n != 1 {
		t.Errorf("TYPE esm_io_phase emitted %d times, want 1:\n%s", n, out)
	}
	// Both esm_io variants precede the esm_io_phase family.
	if strings.Index(out, `esm_io{array="b"}`) > strings.Index(out, "esm_io_phase{") {
		t.Errorf("family esm_io split across esm_io_phase:\n%s", out)
	}
	// Label sets are sorted within the family.
	if strings.Index(out, `esm_io{array="a"}`) > strings.Index(out, `esm_io{array="b"}`) {
		t.Errorf("labeled variants not sorted:\n%s", out)
	}
}

// TestWritePrometheusDeterministic pins byte-identical consecutive
// scrapes of a registry holding labeled families registered in
// scrambled order — the /metrics contract for diffing and scraping.
func TestWritePrometheusDeterministic(t *testing.T) {
	build := func(names []string) *Registry {
		reg := NewRegistry()
		for i, n := range names {
			if i%2 == 0 {
				reg.Counter(n, "help for "+n).Add(int64(i))
			} else {
				reg.Gauge(n, "help for "+n).Set(float64(i))
			}
		}
		reg.GaugeFunc(`esm_fn{array="z"}`, "fn", func() float64 { return 7 })
		reg.GaugeFunc(`esm_fn{array="a"}`, "fn", func() float64 { return 8 })
		return reg
	}
	names := []string{
		`esm_x_total{array="b"}`, `esm_x_total{array="a"}`,
		`esm_y{array="b",cause="demand"}`, `esm_y{array="a",cause="flush"}`,
		"esm_x_totals", "esm_yy",
	}
	reg := build(names)
	var first bytes.Buffer
	if err := reg.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var again bytes.Buffer
		if err := reg.WritePrometheus(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("scrape %d differs:\n%s\nvs\n%s", i+2, first.String(), again.String())
		}
	}
	// A registry built with the same instruments in reverse order
	// renders the same bytes: exposition depends only on content.
	rev := make([]string, len(names))
	for i, n := range names {
		rev[len(names)-1-i] = n
	}
	// Counter/gauge kinds must match per name across both builds.
	reg2 := NewRegistry()
	for i, n := range names {
		if i%2 == 0 {
			reg2.Counter(n, "help for "+n).Add(int64(i))
		} else {
			reg2.Gauge(n, "help for "+n).Set(float64(i))
		}
	}
	_ = rev
	reg2.GaugeFunc(`esm_fn{array="a"}`, "fn", func() float64 { return 8 })
	reg2.GaugeFunc(`esm_fn{array="z"}`, "fn", func() float64 { return 7 })
	var other bytes.Buffer
	if err := reg2.WritePrometheus(&other); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), other.Bytes()) {
		t.Fatalf("registration order leaked into exposition:\n%s\nvs\n%s", first.String(), other.String())
	}
}
