package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRegistryPrometheusRendering(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("esm_spin_ups_total", "Enclosure power-on transitions.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	g := reg.Gauge("esm_monitoring_period_seconds", "Current monitoring-period length.")
	g.Set(624)
	reg.GaugeFunc("esm_cache_occupancy_bytes{partition=\"preload\"}", "Bytes pinned in the preload partition.", func() float64 { return 1024 })

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP esm_spin_ups_total Enclosure power-on transitions.",
		"# TYPE esm_spin_ups_total counter",
		"esm_spin_ups_total 3",
		"# TYPE esm_monitoring_period_seconds gauge",
		"esm_monitoring_period_seconds 624",
		"# TYPE esm_cache_occupancy_bytes gauge",
		"esm_cache_occupancy_bytes{partition=\"preload\"} 1024",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: the cache gauge precedes the period gauge.
	if strings.Index(out, "esm_cache_occupancy_bytes{") > strings.Index(out, "esm_monitoring_period_seconds ") {
		t.Error("output not sorted by metric name")
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "first")
	b := reg.Counter("x_total", "second")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	if reg.Gauge("g", "") != reg.Gauge("g", "") {
		t.Fatal("same name must return the same gauge")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hits_total", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				reg.Gauge("g", "").Set(float64(j))
			}
		}()
	}
	var renderErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				renderErr = err
				return
			}
		}
	}()
	wg.Wait()
	if renderErr != nil {
		t.Fatal(renderErr)
	}
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}
