package obs

import (
	"math"
	"testing"
	"time"
)

// near reports a within tiny float rounding of b.
func near(a, b float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= 1e-9*scale
}

// checkConservation asserts the ledger's core contract: every axis of
// the attribution — per-enclosure items, per-enclosure functions,
// classes, functions — sums back to the powermodel totals exactly (up
// to float rounding).
func checkConservation(t *testing.T, a *Attribution, encEnergy func(int) EnclosureEnergy) {
	t.Helper()
	var total float64
	for _, ea := range a.Enclosures {
		want := encEnergy(ea.Enclosure).Total()
		if !near(ea.TotalJ, want) {
			t.Errorf("enclosure %d TotalJ %v, powermodel %v", ea.Enclosure, ea.TotalJ, want)
		}
		var items, funcs float64
		for _, it := range ea.ByItem {
			items += it.Joules
		}
		for _, j := range ea.ByFunc {
			funcs += j
		}
		if !near(items, want) {
			t.Errorf("enclosure %d item sum %v, powermodel %v", ea.Enclosure, items, want)
		}
		if !near(funcs, want) {
			t.Errorf("enclosure %d func sum %v, powermodel %v", ea.Enclosure, funcs, want)
		}
		total += want
	}
	if !near(a.TotalJ, total) {
		t.Errorf("TotalJ %v, powermodel sum %v", a.TotalJ, total)
	}
	var classes, funcs float64
	for _, j := range a.ByClass {
		classes += j
	}
	for _, j := range a.ByFunc {
		funcs += j
	}
	if !near(classes, total) {
		t.Errorf("class sum %v, powermodel sum %v", classes, total)
	}
	if !near(funcs, total) {
		t.Errorf("func sum %v, powermodel sum %v", funcs, total)
	}
}

// TestAttributionSumsExact hand-feeds a two-enclosure ledger and checks
// conservation plus the proportional splits.
func TestAttributionSumsExact(t *testing.T) {
	l := NewEnergyLedger(2)
	// Enclosure 0: items 1 and 2 resident the whole hour, item 1 served
	// 3× the service time of item 2 and twice its bytes; one migration
	// read and one preload burst; item 2 provoked both spin-up attempts.
	l.Residency(0, 0, 1, 2<<20)
	l.Residency(0, 0, 2, 1<<20)
	l.Service(0, 1, FnServing, 30*time.Second)
	l.Service(0, 2, FnServing, 10*time.Second)
	l.Service(0, 1, FnMigration, 5*time.Second)
	l.Service(0, 2, FnPreload, 5*time.Second)
	l.SpinUps(0, 2, FnServing, 2)
	// Enclosure 1: one resident item, no service at all.
	l.Residency(0, 1, 7, 4<<20)

	energies := []EnclosureEnergy{
		{ActiveJ: 1000, IdleJ: 600, OffJ: 200, SpinUpJ: 50},
		{ActiveJ: 0, IdleJ: 300, OffJ: 100, SpinUpJ: 0},
	}
	encEnergy := func(e int) EnclosureEnergy { return energies[e] }
	classOf := func(item int64) uint8 {
		switch item {
		case 1:
			return 0 // P0
		case 2:
			return 3 // P3
		}
		return ClassUnknown
	}
	end := time.Hour
	a := l.Attribute(end, encEnergy, classOf)
	checkConservation(t, a, encEnergy)

	e0 := a.Enclosures[0]
	// Active joules split by service seconds: item 1 has 35 of 50
	// seconds, item 2 has 15.
	wantActive1 := 1000 * 35.0 / 50
	wantActive2 := 1000 * 15.0 / 50
	// Spin-up joules all to item 2; idle+off by byte-seconds 2:1.
	wantBG1 := 800 * 2.0 / 3
	wantBG2 := 800 * 1.0 / 3
	got := map[int64]float64{}
	for _, it := range e0.ByItem {
		got[it.Item] = it.Joules
	}
	if !near(got[1], wantActive1+wantBG1) {
		t.Errorf("item 1 joules %v, want %v", got[1], wantActive1+wantBG1)
	}
	if !near(got[2], wantActive2+50+wantBG2) {
		t.Errorf("item 2 joules %v, want %v", got[2], wantActive2+50+wantBG2)
	}
	// Function axis: migration is item 1's 5s share of active, preload
	// item 2's 5s share.
	if !near(e0.ByFunc[FnMigration], 1000*5.0/50) {
		t.Errorf("migration %v", e0.ByFunc[FnMigration])
	}
	if !near(e0.ByFunc[FnPreload], 1000*5.0/50) {
		t.Errorf("preload %v", e0.ByFunc[FnPreload])
	}
	if !near(e0.ByFunc[FnBackground], 800) {
		t.Errorf("background %v", e0.ByFunc[FnBackground])
	}
	// Class axis: item 7 (unknown) carries all of enclosure 1.
	if !near(a.ByClass[4], 400) {
		t.Errorf("unknown class %v, want 400", a.ByClass[4])
	}
	if a.UnattributedJ != 0 {
		t.Errorf("unattributed %v, want 0", a.UnattributedJ)
	}
	// ByItem is sorted by descending joules.
	for i := 1; i < len(e0.ByItem); i++ {
		if e0.ByItem[i].Joules > e0.ByItem[i-1].Joules {
			t.Errorf("ByItem not sorted: %v", e0.ByItem)
		}
	}
}

// TestAttributionFallbacks: energy with no weights to carry it lands on
// UnattributedItem instead of vanishing.
func TestAttributionFallbacks(t *testing.T) {
	l := NewEnergyLedger(1)
	// No residency, no service, but the enclosure burned energy in
	// every state.
	energy := EnclosureEnergy{ActiveJ: 10, IdleJ: 20, OffJ: 5, SpinUpJ: 3}
	encEnergy := func(int) EnclosureEnergy { return energy }
	a := l.Attribute(time.Hour, encEnergy, func(int64) uint8 { return 0 })
	checkConservation(t, a, encEnergy)
	if !near(a.UnattributedJ, energy.Total()) {
		t.Fatalf("unattributed %v, want %v", a.UnattributedJ, energy.Total())
	}
	// Unattributed energy is always unknown-class, even when classOf
	// would classify real items.
	if !near(a.ByClass[4], energy.Total()) {
		t.Fatalf("unknown class %v, want %v", a.ByClass[4], energy.Total())
	}
	// Active and spin-up joules with no service fall back to serving;
	// idle/off to background.
	if !near(a.ByFunc[FnServing], 13) {
		t.Fatalf("serving %v, want 13", a.ByFunc[FnServing])
	}
	if !near(a.ByFunc[FnBackground], 25) {
		t.Fatalf("background %v, want 25", a.ByFunc[FnBackground])
	}
}

// TestAttributionResidencyWindow: byte-seconds weight idle energy by
// how long each item was resident, not just by final size.
func TestAttributionResidencyWindow(t *testing.T) {
	l := NewEnergyLedger(1)
	// Item 1 resident [0, 1h) at 1 MiB; item 2 arrives at 30m with the
	// same size — item 1 holds twice the byte-seconds.
	l.Residency(0, 0, 1, 1<<20)
	l.Residency(30*time.Minute, 0, 2, 1<<20)
	energy := EnclosureEnergy{IdleJ: 300}
	a := l.Attribute(time.Hour, func(int) EnclosureEnergy { return energy }, func(int64) uint8 { return ClassUnknown })
	got := map[int64]float64{}
	for _, it := range a.Enclosures[0].ByItem {
		got[it.Item] = it.Joules
	}
	if !near(got[1], 200) || !near(got[2], 100) {
		t.Fatalf("residency split %v, want item1=200 item2=100", got)
	}
	// An item that departs stops accumulating: remove item 2 at 1h,
	// attribute again at 2h — item 2 gains nothing more.
	l.Residency(time.Hour, 0, 2, -(1 << 20))
	energy.IdleJ = 600
	a = l.Attribute(2*time.Hour, func(int) EnclosureEnergy { return energy }, func(int64) uint8 { return ClassUnknown })
	got = map[int64]float64{}
	for _, it := range a.Enclosures[0].ByItem {
		got[it.Item] = it.Joules
	}
	// Byte-seconds: item 1 has 2h, item 2 has 30m → 4:1 of 600 J.
	if !near(got[1], 480) || !near(got[2], 120) {
		t.Fatalf("post-departure split %v, want item1=480 item2=120", got)
	}
}

// TestAttributionRepeatable: attributing twice with a non-decreasing
// end (the esmd live-snapshot pattern) yields consistent, conserved
// results both times.
func TestAttributionRepeatable(t *testing.T) {
	l := NewEnergyLedger(1)
	l.Residency(0, 0, 1, 1<<20)
	l.Service(0, 1, FnServing, 10*time.Second)
	energy := EnclosureEnergy{ActiveJ: 100, IdleJ: 50}
	encEnergy := func(int) EnclosureEnergy { return energy }
	classOf := func(int64) uint8 { return 1 }
	a1 := l.Attribute(30*time.Minute, encEnergy, classOf)
	checkConservation(t, a1, encEnergy)
	// More energy accrues; the second snapshot covers it all.
	energy = EnclosureEnergy{ActiveJ: 150, IdleJ: 80}
	a2 := l.Attribute(time.Hour, encEnergy, classOf)
	checkConservation(t, a2, encEnergy)
	if a2.TotalJ <= a1.TotalJ {
		t.Fatalf("second snapshot %v not larger than first %v", a2.TotalJ, a1.TotalJ)
	}
}
