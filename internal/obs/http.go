// The HTTP surface: /metrics in Prometheus text exposition format,
// /status as a JSON snapshot, and the standard net/http/pprof
// endpoints under /debug/pprof/.

package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler returns the telemetry mux. status is invoked per /status
// request and its result marshalled as JSON; it must be safe to call
// from the serving goroutine (snapshot under the caller's lock). A nil
// status serves an empty object; a nil registry serves empty metrics.
func Handler(reg *Registry, status func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v any = struct{}{}
		if status != nil {
			v = status()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
