// The HTTP surface: /metrics in Prometheus text exposition format,
// /status as a JSON snapshot, /series as the flight recorder's live
// time series, and the standard net/http/pprof endpoints under
// /debug/pprof/.

package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the telemetry mux. status is invoked per /status
// request and its result marshalled as JSON; it must be safe to call
// from the serving goroutine (snapshot under the caller's lock). A nil
// status serves an empty object; a nil registry serves empty metrics.
// series, when non-nil, serves the flight recorder's live time series
// on /series as JSON (CSV with ?format=csv); ?since= and ?until= Go
// durations window it on simulated time.
func Handler(reg *Registry, status func() any, series func() *Series) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		var s *Series
		if series != nil {
			s = series()
		}
		ServeSeries(w, r, s)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v any = struct{}{}
		if status != nil {
			v = status()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
	RegisterPprof(mux)
	return mux
}

// ServeSeries writes one flight-recorder series as an HTTP response:
// JSON by default, CSV with ?format=csv, windowed on simulated time by
// ?since= and ?until= Go durations. A nil series answers 404 — the
// shared vocabulary of the single-daemon /series endpoint and the fleet
// control plane's /arrays/<name>/series.
func ServeSeries(w http.ResponseWriter, r *http.Request, s *Series) {
	if s == nil {
		http.Error(w, "no flight recorder attached (run with -series)", http.StatusNotFound)
		return
	}
	window := func(key string) (time.Duration, bool) {
		v := r.URL.Query().Get(key)
		if v == "" {
			return 0, true
		}
		d, err := time.ParseDuration(v)
		if err != nil {
			http.Error(w, key+": "+err.Error(), http.StatusBadRequest)
			return 0, false
		}
		return d, true
	}
	since, ok := window("since")
	if !ok {
		return
	}
	until, ok := window("until")
	if !ok {
		return
	}
	s = s.Window(since, until)
	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		_ = s.WriteCSV(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.WriteJSON(w)
}

// RegisterPprof mounts the standard net/http/pprof endpoints on mux.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
