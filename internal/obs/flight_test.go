package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// sampleAt builds a deterministic sample whose cumulative columns grow
// linearly with i, so downsampling invariants are easy to check.
func sampleAt(i int, encs int) FlightSample {
	s := FlightSample{
		T:                time.Duration(i) * time.Second,
		EnclosureEnergyJ: float64(i) * 10,
		TotalEnergyJ:     float64(i) * 12,
		SpinUps:          i / 7,
		CacheDirtyBytes:  int64(i%5) * 1024,
		Determinations:   int64(i / 10),
		Migrations:       int64(i / 3),
		MigratedBytes:    int64(i) * 1 << 20,
		PhysicalReads:    int64(i) * 4,
		PhysicalWrites:   int64(i) * 2,
		CacheHits:        int64(i),
		RespCount:        int64(i) * 8,
		RespMean:         time.Duration(i) * time.Millisecond,
		Faults:           int64(i / 20),
		Degraded:         i%13 == 0 && i > 0,
	}
	for e := 0; e < encs; e++ {
		s.Enclosures = append(s.Enclosures, EnclosureSample{
			State:     uint8((i + e) % 3),
			UsedBytes: int64(e+1) * 1 << 30,
			IdleFor:   time.Duration(e) * time.Second,
		})
	}
	return s
}

func TestFlightNilSafe(t *testing.T) {
	var f *FlightRecorder
	if f.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if f.Interval() != 0 {
		t.Fatal("nil recorder has an interval")
	}
	f.SetClassCounts([4]int{1, 2, 3, 4})
	f.Record(sampleAt(1, 2))
	f.Final(sampleAt(2, 2))
	if s := f.Series(); s != nil {
		t.Fatalf("nil recorder produced a series: %v", s)
	}
	if n := f.Series().Len(); n != 0 {
		t.Fatalf("nil series Len = %d", n)
	}
}

func TestFlightDownsamplingPreservesEnds(t *testing.T) {
	const max = 8
	f := NewFlightRecorder(FlightOptions{Interval: time.Second, MaxSamples: max})
	const offers = 100
	for i := 0; i < offers; i++ {
		f.Record(sampleAt(i, 1))
	}
	f.Final(sampleAt(offers, 1))
	s := f.Series()
	if s.Len() < 2 || s.Len() > max+1 {
		t.Fatalf("series has %d samples, want 2..%d", s.Len(), max+1)
	}
	if s.TimesNS[0] != 0 {
		t.Fatalf("first sample at %d ns, want 0 (first sample must survive compaction)", s.TimesNS[0])
	}
	if last := s.TimesNS[s.Len()-1]; last != int64(offers)*int64(time.Second) {
		t.Fatalf("last sample at %d ns, want %d (Final must always land)", last, int64(offers)*int64(time.Second))
	}
	// The effective interval grew with every compaction.
	if s.IntervalNS <= int64(time.Second) {
		t.Fatalf("effective interval %d ns did not grow past the base interval", s.IntervalNS)
	}
	// Cumulative columns stay monotone non-decreasing: compaction drops
	// rows, never merges them.
	for _, col := range []string{"enclosure_energy_j", "total_energy_j", "spin_ups", "migrated_b", "cache_hits", "faults", "determinations"} {
		vals := s.Column(col)
		if vals == nil {
			t.Fatalf("column %s missing", col)
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1] {
				t.Fatalf("column %s not monotone at %d: %v < %v", col, i, vals[i], vals[i-1])
			}
		}
	}
	// Every surviving row holds the exact values offered at its time:
	// energy grew 10 J/s in the fixture.
	energy := s.Column("enclosure_energy_j")
	for i, ns := range s.TimesNS {
		want := float64(ns/int64(time.Second)) * 10
		if energy[i] != want {
			t.Fatalf("row %d (t=%dns): energy %v, want %v", i, ns, energy[i], want)
		}
	}
}

func TestFlightFinalReplacesSameInstant(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{Interval: time.Second})
	f.Record(sampleAt(0, 1))
	f.Record(sampleAt(1, 1))
	fin := sampleAt(1, 1)
	fin.EnclosureEnergyJ = 999
	f.Final(fin)
	s := f.Series()
	if s.Len() != 2 {
		t.Fatalf("series has %d samples, want 2 (same-instant Final replaces)", s.Len())
	}
	if e := s.Column("enclosure_energy_j")[1]; e != 999 {
		t.Fatalf("final row energy %v, want 999", e)
	}
}

func TestFlightClassCountsStamped(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{})
	f.Record(sampleAt(0, 1))
	f.SetClassCounts([4]int{7, 5, 3, 1})
	f.Record(sampleAt(1, 1))
	s := f.Series()
	for i, want := range []float64{7, 5, 3, 1} {
		col := s.Column("class_p" + string(rune('0'+i)))
		if col[0] != 0 || col[1] != want {
			t.Fatalf("class_p%d = %v, want [0 %v]", i, col, want)
		}
	}
}

func TestSeriesCSVRoundTrip(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{Interval: 2 * time.Second})
	for i := 0; i < 5; i++ {
		f.Record(sampleAt(2*i, 3))
	}
	s := f.Series()
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeriesCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() || len(got.Cols) != len(s.Cols) {
		t.Fatalf("round trip: %dx%d, want %dx%d", got.Len(), len(got.Cols), s.Len(), len(s.Cols))
	}
	for c := range s.Cols {
		if got.Cols[c] != s.Cols[c] {
			t.Fatalf("col %d: %q != %q", c, got.Cols[c], s.Cols[c])
		}
		for i := range s.TimesNS {
			if got.Values[c][i] != s.Values[c][i] {
				t.Fatalf("col %s row %d: %v != %v", s.Cols[c], i, got.Values[c][i], s.Values[c][i])
			}
		}
	}
	// The per-enclosure layout made it through.
	if got.Column("enc2_used_b") == nil {
		t.Fatal("per-enclosure column missing after round trip")
	}
}

func TestSeriesJSONHasColumns(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{Interval: time.Second})
	f.Record(sampleAt(0, 1))
	f.Record(sampleAt(1, 1))
	var buf bytes.Buffer
	if err := f.Series().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"cols"`, `"times_ns"`, `"values"`, `"interval_ns"`, "enclosure_energy_j"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("JSON export lacks %s:\n%s", want, buf.String())
		}
	}
}

func TestSeriesWindow(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{Interval: time.Second})
	for i := 0; i <= 10; i++ {
		f.Record(sampleAt(i, 1))
	}
	s := f.Series()
	w := s.Window(3*time.Second, 7*time.Second)
	if w.Len() != 5 {
		t.Fatalf("window has %d samples, want 5", w.Len())
	}
	if w.TimesNS[0] != int64(3*time.Second) || w.TimesNS[4] != int64(7*time.Second) {
		t.Fatalf("window spans [%d, %d]", w.TimesNS[0], w.TimesNS[4])
	}
	if w := s.Window(0, 0); w.Len() != s.Len() {
		t.Fatalf("unbounded window dropped samples: %d of %d", w.Len(), s.Len())
	}
	if got := s.Window(3*time.Second, 7*time.Second).Column("enclosure_energy_j")[0]; math.Abs(got-30) > 0 {
		t.Fatalf("windowed column misaligned: %v", got)
	}
}
