package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHandlerMetricsStatusPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esm_spin_ups_total", "spin-ups").Add(7)
	type status struct {
		Determinations int64  `json:"determinations"`
		Period         string `json:"period"`
	}
	fr := NewFlightRecorder(FlightOptions{Interval: time.Second})
	for i := 0; i <= 10; i++ {
		fr.Record(FlightSample{T: time.Duration(i) * time.Second, EnclosureEnergyJ: float64(i) * 10})
	}
	srv := httptest.NewServer(Handler(reg, func() any {
		return status{Determinations: 3, Period: "8m40s"}
	}, fr.Series))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != 200 || !strings.Contains(body, "esm_spin_ups_total 7") {
		t.Fatalf("/metrics: code %d body %q", code, body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type %q", ctype)
	}

	code, body, ctype = get("/status")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/status: code %d content type %q", code, ctype)
	}
	var st status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if st.Determinations != 3 || st.Period != "8m40s" {
		t.Fatalf("/status payload wrong: %+v", st)
	}

	code, body, _ = get("/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code %d", code)
	}

	code, body, ctype = get("/series")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/series: code %d content type %q", code, ctype)
	}
	var s Series
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("/series not JSON: %v\n%s", err, body)
	}
	if s.Len() != 11 || s.Column("enclosure_energy_j")[10] != 100 {
		t.Fatalf("/series payload wrong: %d samples", s.Len())
	}

	code, body, ctype = get("/series?since=3s&until=7s&format=csv")
	if code != 200 || !strings.HasPrefix(ctype, "text/csv") {
		t.Fatalf("/series csv: code %d content type %q", code, ctype)
	}
	if lines := strings.Count(strings.TrimSpace(body), "\n"); lines != 5 { // header + 5 rows
		t.Fatalf("windowed csv has %d newlines:\n%s", lines, body)
	}

	if code, body, _ = get("/series?since=bogus"); code != 400 {
		t.Fatalf("bad window accepted: code %d body %q", code, body)
	}
}

func TestHandlerNilStatusAndRegistry(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/status"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: code %d", path, resp.StatusCode)
		}
	}
	resp, err := srv.Client().Get(srv.URL + "/series")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("/series without a recorder: code %d, want 404", resp.StatusCode)
	}
}
