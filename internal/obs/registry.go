// The counter/gauge registry: atomic instruments with no external
// dependencies, rendered in the Prometheus text exposition format.

package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (which must be non-negative; negative deltas are
// ignored to keep the counter monotonic).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The value is stored as
// float64 bits so Set/Value are single atomic operations.
type Gauge struct {
	name string
	help string
	v    atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// gaugeFunc is a gauge evaluated at render time.
type gaugeFunc struct {
	name string
	help string
	fn   func() float64
}

// Registry holds named instruments. Registration is idempotent by
// name; rendering is sorted by name so output is deterministic.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]*gaugeFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]*gaugeFunc),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Help is kept from the first registration.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at render
// time. fn must be safe to call from the scrape goroutine; callers
// whose state is mutated elsewhere lock inside fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = &gaugeFunc{name: name, help: help, fn: fn}
}

// metricName reports whether name is a valid Prometheus metric name
// (with an optional single {label="value"} suffix, which the registry
// treats as part of the name).
func metricName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// parseLabels decodes a {k="v",...} suffix (as produced by WithLabel and
// the instrument constructors in this package) into key/value pairs.
// Escaped quotes and backslashes inside values are handled.
func parseLabels(s string) [][2]string {
	s = strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
	var out [][2]string
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			// Not our format; keep the remainder as an opaque key.
			out = append(out, [2]string{s, ""})
			return out
		}
		key := s[:eq]
		rest := s[eq+2:]
		var val strings.Builder
		i := 0
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		out = append(out, [2]string{key, val.String()})
		s = rest[i:]
		s = strings.TrimPrefix(s, `"`)
		s = strings.TrimPrefix(s, ",")
	}
	return out
}

// WithLabel merges the label key="value" into name's {…} suffix,
// keeping the label set sorted by key so one logical label combination
// always yields one instrument name. An existing label with the same
// key is replaced. The fleet control plane uses this to namespace every
// per-array instrument with an array="name" label.
func WithLabel(name, key, value string) string {
	base := metricName(name)
	labels := parseLabels(name[len(base):])
	replaced := false
	for i := range labels {
		if labels[i][0] == key {
			labels[i][1] = value
			replaced = true
		}
	}
	if !replaced {
		labels = append(labels, [2]string{key, value})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i][0] < labels[j][0] })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every instrument in the text exposition
// format, sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type row struct {
		name, help, typ string
		value           float64
		integer         bool
		intValue        int64
	}
	rows := make([]row, 0, len(r.counters)+len(r.gauges)+len(r.funcs))
	for _, c := range r.counters {
		rows = append(rows, row{name: c.name, help: c.help, typ: "counter", integer: true, intValue: c.Value()})
	}
	for _, g := range r.gauges {
		rows = append(rows, row{name: g.name, help: g.help, typ: "gauge", value: g.Value()})
	}
	funcs := make([]*gaugeFunc, 0, len(r.funcs))
	for _, f := range r.funcs {
		funcs = append(funcs, f)
	}
	r.mu.Unlock()
	// Evaluate callback gauges outside the registry lock: a callback
	// that touches the registry again must not deadlock.
	for _, f := range funcs {
		rows = append(rows, row{name: f.name, help: f.help, typ: "gauge", value: f.fn()})
	}

	// Sort by family first, then by the full labeled name. Sorting on
	// the raw name alone would split a family whose name prefixes
	// another ("esm_io" vs "esm_io_phase": '_' < '{'), re-emitting
	// HELP/TYPE mid-scrape — invalid exposition and nondeterministic
	// grouping. With the family as the primary key every labeled
	// variant stays contiguous and consecutive scrapes of the same
	// instruments render byte-identically.
	sort.SliceStable(rows, func(i, j int) bool {
		fi, fj := metricName(rows[i].name), metricName(rows[j].name)
		if fi != fj {
			return fi < fj
		}
		return rows[i].name < rows[j].name
	})
	// Labeled variants of one family sort adjacently; HELP/TYPE are
	// emitted once per family, as the exposition format requires.
	lastFamily := ""
	for _, row := range rows {
		base := metricName(row.name)
		if base != lastFamily {
			lastFamily = base
			if row.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, row.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, row.typ); err != nil {
				return err
			}
		}
		var err error
		if row.integer {
			_, err = fmt.Fprintf(w, "%s %d\n", row.name, row.intValue)
		} else {
			_, err = fmt.Fprintf(w, "%s %v\n", row.name, row.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
