// The counter/gauge registry: atomic instruments with no external
// dependencies, rendered in the Prometheus text exposition format.

package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (which must be non-negative; negative deltas are
// ignored to keep the counter monotonic).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The value is stored as
// float64 bits so Set/Value are single atomic operations.
type Gauge struct {
	name string
	help string
	v    atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// gaugeFunc is a gauge evaluated at render time.
type gaugeFunc struct {
	name string
	help string
	fn   func() float64
}

// Registry holds named instruments. Registration is idempotent by
// name; rendering is sorted by name so output is deterministic.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]*gaugeFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]*gaugeFunc),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Help is kept from the first registration.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at render
// time. fn must be safe to call from the scrape goroutine; callers
// whose state is mutated elsewhere lock inside fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = &gaugeFunc{name: name, help: help, fn: fn}
}

// metricName reports whether name is a valid Prometheus metric name
// (with an optional single {label="value"} suffix, which the registry
// treats as part of the name).
func metricName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus renders every instrument in the text exposition
// format, sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type row struct {
		name, help, typ string
		value           float64
		integer         bool
		intValue        int64
	}
	rows := make([]row, 0, len(r.counters)+len(r.gauges)+len(r.funcs))
	for _, c := range r.counters {
		rows = append(rows, row{name: c.name, help: c.help, typ: "counter", integer: true, intValue: c.Value()})
	}
	for _, g := range r.gauges {
		rows = append(rows, row{name: g.name, help: g.help, typ: "gauge", value: g.Value()})
	}
	funcs := make([]*gaugeFunc, 0, len(r.funcs))
	for _, f := range r.funcs {
		funcs = append(funcs, f)
	}
	r.mu.Unlock()
	// Evaluate callback gauges outside the registry lock: a callback
	// that touches the registry again must not deadlock.
	for _, f := range funcs {
		rows = append(rows, row{name: f.name, help: f.help, typ: "gauge", value: f.fn()})
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	// Labeled variants of one family sort adjacently; HELP/TYPE are
	// emitted once per family, as the exposition format requires.
	lastFamily := ""
	for _, row := range rows {
		base := metricName(row.name)
		if base != lastFamily {
			lastFamily = base
			if row.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, row.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, row.typ); err != nil {
				return err
			}
		}
		var err error
		if row.integer {
			_, err = fmt.Fprintf(w, "%s %d\n", row.name, row.intValue)
		} else {
			_, err = fmt.Fprintf(w, "%s %v\n", row.name, row.value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
