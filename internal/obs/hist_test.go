package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"esm/internal/metrics"
	"esm/internal/trace"
)

// naivePercentile computes the histogram's percentile contract from the
// raw samples: the upper bucket edge of the sample at rank ceil(p·n),
// clamped to the observed maximum. The histogram must agree exactly.
func naivePercentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	d := sorted[rank]
	limit := HistBucketBase
	for b := 0; d >= limit && b < HistBuckets-1; limit *= 2 {
		b++
	}
	max := sorted[len(sorted)-1]
	if limit > max {
		return max
	}
	return limit
}

var percentiles = []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999, 1}

// TestHistogramPercentileVsNaive cross-checks the streaming histogram
// against a sort-based computation on randomized inputs.
func TestHistogramPercentileVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 50; round++ {
		n := 1 + rng.Intn(2000)
		var h Histogram
		samples := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			// Log-uniform over ~9 decades, the histogram's full range.
			d := time.Duration(math.Exp(rng.Float64()*20)) * time.Nanosecond
			samples = append(samples, d)
			h.Add(d)
		}
		for _, p := range percentiles {
			want := naivePercentile(samples, p)
			if got := h.Percentile(p); got != want {
				t.Fatalf("round %d n=%d p%.3f: histogram %v, naive %v", round, n, p, got, want)
			}
		}
	}
}

// TestHistogramVsResponseStats feeds identical samples — including
// exact bucket-boundary values — to the tracer histogram and to
// metrics.ResponseStats; every percentile must agree, since replay's
// reported aggregates and the tracer's breakdown describe the same
// I/Os.
func TestHistogramVsResponseStats(t *testing.T) {
	samples := []time.Duration{
		0, 1, 199 * time.Microsecond,
		200 * time.Microsecond, // first bucket boundary
		399 * time.Microsecond,
		400 * time.Microsecond, // second boundary
		800 * time.Microsecond, 1600 * time.Microsecond,
		25 * time.Millisecond, 15 * time.Second,
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		samples = append(samples, time.Duration(rng.Int63n(int64(30*time.Second))))
	}
	// Boundary values of every bucket edge.
	for limit := HistBucketBase; limit < 30*time.Second; limit *= 2 {
		samples = append(samples, limit-1, limit, limit+1)
	}
	var h Histogram
	var rs metrics.ResponseStats
	for _, d := range samples {
		h.Add(d)
		rs.Add(trace.OpRead, d)
	}
	if h.Count() != rs.Count() {
		t.Fatalf("count %d vs %d", h.Count(), rs.Count())
	}
	if h.Max() != rs.Max() {
		t.Fatalf("max %v vs %v", h.Max(), rs.Max())
	}
	if h.Mean() != rs.Mean() {
		t.Fatalf("mean %v vs %v", h.Mean(), rs.Mean())
	}
	for _, p := range percentiles {
		if got, want := h.Percentile(p), rs.Percentile(p); got != want {
			t.Fatalf("p%.3f: histogram %v, ResponseStats %v", p, got, want)
		}
		if got, want := h.Percentile(p), naivePercentile(samples, p); got != want {
			t.Fatalf("p%.3f: histogram %v, naive %v", p, got, want)
		}
	}
}

// TestHistogramMerge: merged histograms answer exactly like one
// histogram fed both sample sets.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var a, b, both Histogram
	var samples []time.Duration
	for i := 0; i < 300; i++ {
		d := time.Duration(rng.Int63n(int64(time.Minute)))
		samples = append(samples, d)
		both.Add(d)
		if i%2 == 0 {
			a.Add(d)
		} else {
			b.Add(d)
		}
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Max() != both.Max() || a.Mean() != both.Mean() {
		t.Fatal("merged aggregates disagree")
	}
	for _, p := range percentiles {
		if a.Percentile(p) != both.Percentile(p) {
			t.Fatalf("p%.3f: merged %v, direct %v", p, a.Percentile(p), both.Percentile(p))
		}
		if a.Percentile(p) != naivePercentile(samples, p) {
			t.Fatalf("p%.3f: merged %v, naive %v", p, a.Percentile(p), naivePercentile(samples, p))
		}
	}
}

// TestLatencyStatsRouting: cache hits land in the cache phase only;
// physical I/Os contribute queue and service always and spin-up wait
// only when they actually waited.
func TestLatencyStatsRouting(t *testing.T) {
	var l LatencyStats
	l.addIO(&IOSpan{Response: 300 * time.Microsecond, Cause: IOCacheHit})
	l.addIO(&IOSpan{
		Response: 20 * time.Millisecond, Cause: IODiskOn,
		QueueWait: 3 * time.Millisecond, Service: 17 * time.Millisecond,
	})
	l.addIO(&IOSpan{
		Response: 15020 * time.Millisecond, Cause: IOSpinUpBlocked,
		SpinUpWait: 15 * time.Second, QueueWait: 3 * time.Millisecond, Service: 17 * time.Millisecond,
	})
	if l.Total.Count() != 3 {
		t.Fatalf("total count %d", l.Total.Count())
	}
	wantCounts := map[Phase]int64{PhaseCache: 1, PhaseSpinUp: 1, PhaseQueue: 2, PhaseService: 2}
	for ph, want := range wantCounts {
		if got := l.ByPhase[ph].Count(); got != want {
			t.Errorf("phase %v count %d, want %d", ph, got, want)
		}
	}
	for c, want := range map[IOCause]int64{IOCacheHit: 1, IODiskOn: 1, IOSpinUpBlocked: 1} {
		if got := l.ByCause[c].Count(); got != want {
			t.Errorf("cause %v count %d, want %d", c, got, want)
		}
	}
	sum := l.summary()
	if sum.Total.Count != 3 || len(sum.ByCause) != int(IOCauseCount) || len(sum.ByPhase) != int(PhaseCount) {
		t.Fatalf("summary shape: %+v", sum)
	}
}
