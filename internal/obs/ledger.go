// The energy-attribution ledger: splits each enclosure's integrated
// powermodel joules across the data items resident on it and the
// management functions that drove it, so a run's "energy saved" (or
// spent) is explainable per item, per logical I/O pattern class and
// per function instead of being one opaque total.
//
// Attribution is proportional and conservative: active joules are
// split by each item's share of physical service time, spin-up joules
// by each item's share of provoked spin-up attempts, and idle/off
// joules by each item's share of resident byte-seconds. Every split
// distributes the enclosure's exact accumulator total, so the
// attributed joules of one enclosure always sum back to its powermodel
// reading (up to float rounding).

package obs

import (
	"sort"
	"time"
)

// EnergyFunc names the management function an energy share is
// attributed to.
type EnergyFunc uint8

// The attribution functions: application serving, data-item migration,
// preload bulk reads, write-delay destaging, and the background bucket
// (idle/off residency, attributable to no single function).
const (
	FnServing EnergyFunc = iota
	FnMigration
	FnPreload
	FnDestage
	FnBackground
	EnergyFuncCount
)

// String returns the function name.
func (f EnergyFunc) String() string {
	switch f {
	case FnServing:
		return "serving"
	case FnMigration:
		return "migration"
	case FnPreload:
		return "preload"
	case FnDestage:
		return "destage"
	case FnBackground:
		return "background"
	default:
		return "unknown"
	}
}

// UnattributedItem is the pseudo item id charged with energy no real
// item can carry (an enclosure that burned idle watts while holding no
// tracked resident bytes, or active residency with no tracked service).
const UnattributedItem int64 = -1

// ClassUnknown marks an item whose logical I/O pattern class has not
// been determined (yet).
const ClassUnknown uint8 = 255

type itemFn struct {
	item int64
	fn   EnergyFunc
}

// encLedger is the streaming per-enclosure attribution state.
type encLedger struct {
	// svcSec is physical service seconds per item and function.
	svcSec map[itemFn]float64
	// spinUps counts provoked spin-up attempts per item and function.
	spinUps map[itemFn]float64
	// bytes is the currently resident byte count per item; byteSec the
	// accumulated byte-seconds; lastAt the per-item integration point.
	bytes   map[int64]int64
	byteSec map[int64]float64
	lastAt  map[int64]time.Duration
}

func newEncLedger() *encLedger {
	return &encLedger{
		svcSec:  map[itemFn]float64{},
		spinUps: map[itemFn]float64{},
		bytes:   map[int64]int64{},
		byteSec: map[int64]float64{},
		lastAt:  map[int64]time.Duration{},
	}
}

func (e *encLedger) integrate(item int64, to time.Duration) {
	if last, ok := e.lastAt[item]; ok && to > last {
		e.byteSec[item] += float64(e.bytes[item]) * (to - last).Seconds()
	}
	e.lastAt[item] = to
}

// EnergyLedger accumulates the attribution inputs. It is not
// concurrency-safe on its own; the owning Tracer serialises access.
type EnergyLedger struct {
	enc []*encLedger
}

// NewEnergyLedger returns a ledger over n enclosures.
func NewEnergyLedger(n int) *EnergyLedger {
	l := &EnergyLedger{enc: make([]*encLedger, n)}
	for i := range l.enc {
		l.enc[i] = newEncLedger()
	}
	return l
}

func (l *EnergyLedger) of(enc int) *encLedger {
	for enc >= len(l.enc) {
		l.enc = append(l.enc, newEncLedger())
	}
	return l.enc[enc]
}

// Service records svc seconds of physical service on enc for item,
// driven by fn.
func (l *EnergyLedger) Service(enc int, item int64, fn EnergyFunc, svc time.Duration) {
	l.of(enc).svcSec[itemFn{item, fn}] += svc.Seconds()
}

// SpinUps records attempts spin-up attempts on enc provoked by item
// through fn (failed attempts burn spin-up energy too).
func (l *EnergyLedger) SpinUps(enc int, item int64, fn EnergyFunc, attempts int) {
	if attempts > 0 {
		l.of(enc).spinUps[itemFn{item, fn}] += float64(attempts)
	}
}

// Residency records that item's resident footprint on enc changed by
// delta bytes at time at (positive on placement or migration arrival,
// negative on departure).
func (l *EnergyLedger) Residency(at time.Duration, enc int, item int64, delta int64) {
	e := l.of(enc)
	e.integrate(item, at)
	e.bytes[item] += delta
}

// EnclosureEnergy is one enclosure's integrated joules by power state,
// as read from its powermodel accumulator.
type EnclosureEnergy struct {
	ActiveJ float64 `json:"active_j"`
	IdleJ   float64 `json:"idle_j"`
	OffJ    float64 `json:"off_j"`
	SpinUpJ float64 `json:"spinup_j"`
}

// Total returns the summed joules.
func (e EnclosureEnergy) Total() float64 { return e.ActiveJ + e.IdleJ + e.OffJ + e.SpinUpJ }

// ItemEnergy is one item's attributed share.
type ItemEnergy struct {
	Item   int64   `json:"item"`
	Class  uint8   `json:"class"`
	Joules float64 `json:"joules"`
}

// EnclosureAttribution is the per-enclosure split.
type EnclosureAttribution struct {
	Enclosure int     `json:"enclosure"`
	TotalJ    float64 `json:"total_j"`
	// ByItem is sorted by descending joules.
	ByItem []ItemEnergy `json:"by_item"`
	// ByFunc is indexed by EnergyFunc.
	ByFunc [EnergyFuncCount]float64 `json:"by_func"`
}

// Attribution is the full energy split of a run: per enclosure, rolled
// up per item, per pattern class (P0–P3 plus unknown) and per
// management function. Every axis sums to TotalJ.
type Attribution struct {
	TotalJ     float64                  `json:"total_j"`
	Enclosures []EnclosureAttribution   `json:"enclosures"`
	ByClass    [5]float64               `json:"by_class"` // P0..P3, [4] = unknown
	ByFunc     [EnergyFuncCount]float64 `json:"by_func"`
	// UnattributedJ is the share charged to no real item (already
	// included in TotalJ and ByClass's unknown bucket).
	UnattributedJ float64 `json:"unattributed_j"`
}

// ClassIndex maps a pattern class byte to its ByClass index.
func ClassIndex(class uint8) int {
	if class > 3 {
		return 4
	}
	return int(class)
}

// ClassName returns "P0".."P3" or "unknown" for a ByClass index.
func ClassName(i int) string {
	if i >= 0 && i < 4 {
		return string([]byte{'P', byte('0' + i)})
	}
	return "unknown"
}

// sortedKeys returns w's keys in (item, fn) order. Attribution sums
// floats while walking these maps; a fixed iteration order makes the
// computed shares bit-for-bit reproducible across runs (and across the
// serial and sharded replay engines), where raw map order would perturb
// the last ULP from run to run.
func sortedKeys(w map[itemFn]float64) []itemFn {
	keys := make([]itemFn, 0, len(w))
	for k := range w {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].item != keys[j].item {
			return keys[i].item < keys[j].item
		}
		return keys[i].fn < keys[j].fn
	})
	return keys
}

// split distributes total proportionally to the weights in w, charging
// the remainder (all of it, when w is empty or sums to zero) to
// UnattributedItem under fallbackFn.
func split(total float64, w map[itemFn]float64, into map[itemFn]float64, fallbackFn EnergyFunc) {
	if total == 0 {
		return
	}
	keys := sortedKeys(w)
	var sum float64
	for _, k := range keys {
		sum += w[k]
	}
	if sum <= 0 {
		into[itemFn{UnattributedItem, fallbackFn}] += total
		return
	}
	for _, k := range keys {
		into[k] += total * w[k] / sum
	}
}

// Attribute integrates residency up to end and computes the full
// split. encEnergy returns the powermodel joules of each enclosure;
// classOf maps an item to its pattern class (return ClassUnknown when
// unknown). The ledger can be attributed repeatedly with a
// non-decreasing end (esmd snapshots it live).
func (l *EnergyLedger) Attribute(end time.Duration, encEnergy func(enc int) EnclosureEnergy, classOf func(item int64) uint8) *Attribution {
	a := &Attribution{}
	for encID, e := range l.enc {
		for item := range e.bytes {
			e.integrate(item, end)
		}
		energy := encEnergy(encID)
		shares := map[itemFn]float64{}
		split(energy.ActiveJ, e.svcSec, shares, FnServing)
		split(energy.SpinUpJ, e.spinUps, shares, FnServing)
		// Idle and off residency belong to the resident data as a
		// whole, under the background function.
		bg := map[itemFn]float64{}
		for item, bs := range e.byteSec {
			if bs > 0 {
				bg[itemFn{item, FnBackground}] = bs
			}
		}
		split(energy.IdleJ+energy.OffJ, bg, shares, FnBackground)

		ea := EnclosureAttribution{Enclosure: encID, TotalJ: energy.Total()}
		perItem := map[int64]float64{}
		var items []int64
		for _, k := range sortedKeys(shares) {
			j := shares[k]
			ea.ByFunc[k.fn] += j
			a.ByFunc[k.fn] += j
			if _, seen := perItem[k.item]; !seen {
				items = append(items, k.item)
			}
			perItem[k.item] += j
			if k.item == UnattributedItem {
				a.UnattributedJ += j
			}
		}
		for _, item := range items {
			j := perItem[item]
			class := ClassUnknown
			if item != UnattributedItem {
				class = classOf(item)
			}
			ea.ByItem = append(ea.ByItem, ItemEnergy{Item: item, Class: class, Joules: j})
			a.ByClass[ClassIndex(class)] += j
		}
		sort.Slice(ea.ByItem, func(i, j int) bool {
			if ea.ByItem[i].Joules != ea.ByItem[j].Joules {
				return ea.ByItem[i].Joules > ea.ByItem[j].Joules
			}
			return ea.ByItem[i].Item < ea.ByItem[j].Item
		})
		a.Enclosures = append(a.Enclosures, ea)
		a.TotalJ += ea.TotalJ
	}
	return a
}
