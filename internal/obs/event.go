// The typed event stream: one envelope per consequential transition,
// serialised as one JSON object per line (JSONL) so a saved log can be
// replayed, diffed, or fed to external tooling.

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EventType names the kind of transition an Event describes.
type EventType string

// The event vocabulary.
const (
	EvDeterminationStart EventType = "determination_start"
	EvDetermination      EventType = "determination"
	EvMigrationStart     EventType = "migration_start"
	EvMigrationDone      EventType = "migration_done"
	EvMigrationSkip      EventType = "migration_skip"
	EvCacheSelect        EventType = "cache_select"
	EvCacheEvict         EventType = "cache_evict"
	EvPowerOn            EventType = "power_on"
	EvPowerOff           EventType = "power_off"
	EvReplanTrigger      EventType = "replan_trigger"
	EvPeriodAdapt        EventType = "period_adapt"
	EvFault              EventType = "fault"
	EvDegrade            EventType = "degrade"
	EvMigrationFail      EventType = "migration_fail"
	EvAlert              EventType = "alert"
)

// Event is the envelope every transition is reported in. Exactly one
// payload pointer is set, matching Type.
type Event struct {
	// Seq is the 1-based emission order within one recorder.
	Seq int64 `json:"seq"`
	// T is the virtual time of the transition in nanoseconds.
	T int64 `json:"t_ns"`
	// Type selects the payload.
	Type EventType `json:"type"`
	// Run labels the replay the event belongs to (esmbench writes the
	// policy name here); empty for single-run tools.
	Run string `json:"run,omitempty"`

	Determination *DeterminationEvent `json:"determination,omitempty"`
	Migration     *MigrationEvent     `json:"migration,omitempty"`
	Cache         *CacheEvent         `json:"cache,omitempty"`
	Power         *PowerEvent         `json:"power,omitempty"`
	Replan        *ReplanEvent        `json:"replan,omitempty"`
	Period        *PeriodEvent        `json:"period,omitempty"`
	Fault         *FaultEvent         `json:"fault,omitempty"`
	Degrade       *DegradeEvent       `json:"degrade,omitempty"`
	Alert         *AlertEvent         `json:"alert,omitempty"`
}

// DeterminationEvent describes one run of the power management
// function. A determination_start event carries only N and Cause; the
// determination (end) event carries the full decision.
type DeterminationEvent struct {
	// N is the 1-based determination number.
	N int64 `json:"n"`
	// Cause is what provoked the run: period-end, trigger-interval or
	// trigger-spinups.
	Cause Cause `json:"cause,omitempty"`
	// PatternCounts is the number of items classified P0..P3.
	PatternCounts [4]int `json:"patterns,omitempty"`
	// Hot is the per-enclosure hot flag; NHot the hot count.
	Hot  []bool `json:"hot,omitempty"`
	NHot int    `json:"n_hot,omitempty"`
	// Moves is the number of planned migrations; WriteDelay and
	// Preload the sizes of the cache-function selections.
	Moves      int `json:"moves,omitempty"`
	WriteDelay int `json:"write_delay,omitempty"`
	Preload    int `json:"preload,omitempty"`
	// NextPeriodNS is the monitoring period chosen for the next cycle.
	NextPeriodNS int64 `json:"next_period_ns,omitempty"`
}

// MigrationEvent describes one data-item migration. Src is -1 when the
// source is unknown (a skipped migration never started its copy).
type MigrationEvent struct {
	Item  int64 `json:"item"`
	Src   int   `json:"src"`
	Dst   int   `json:"dst"`
	Bytes int64 `json:"bytes,omitempty"`
}

// CacheEvent describes a cache-function selection change. Function is
// "preload" or "write-delay".
type CacheEvent struct {
	Function string  `json:"function"`
	Items    []int64 `json:"items"`
}

// PowerEvent describes one enclosure power transition. State is
// "spinup" (power-on begins) or "off".
type PowerEvent struct {
	Enclosure int    `json:"enclosure"`
	State     string `json:"state"`
	Cause     Cause  `json:"cause"`
}

// ReplanEvent describes a §V-D pattern-change trigger firing, with the
// measurement that crossed the threshold.
type ReplanEvent struct {
	// Trigger is trigger-interval (i) or trigger-spinups (ii).
	Trigger Cause `json:"trigger"`
	// Enclosure is the hot enclosure whose interval fired trigger i),
	// or the cold enclosure whose spin-up fired trigger ii).
	Enclosure int `json:"enclosure"`
	// IntervalNS is the measured I/O interval for trigger i).
	IntervalNS int64 `json:"interval_ns,omitempty"`
	// SpinUps and Threshold are the cold spin-up count and the m it
	// exceeded for trigger ii).
	SpinUps   int     `json:"spin_ups,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
}

// PeriodEvent describes a monitoring-period adaptation.
type PeriodEvent struct {
	OldNS int64 `json:"old_ns"`
	NewNS int64 `json:"new_ns"`
}

// FaultEvent describes one injected fault (see internal/faults for the
// kind vocabulary). Enclosure is -1 for battery faults; Attempt is the
// 1-based spin-up attempt for spin-up faults.
type FaultEvent struct {
	Kind      string `json:"kind"`
	Enclosure int    `json:"enclosure"`
	Attempt   int    `json:"attempt,omitempty"`
}

// DegradeEvent describes the ESM policy entering or leaving degraded
// mode (all enclosures treated hot, no spin-down, no migration).
type DegradeEvent struct {
	// Entered is true on the transition into degraded mode.
	Entered bool `json:"entered"`
	// Faults is the fault count inside the sliding window that crossed
	// the threshold (entry) or remained at recovery (exit).
	Faults int `json:"faults"`
	// WindowNS is the sliding-window span the count was taken over.
	WindowNS int64 `json:"window_ns,omitempty"`
}

// AlertEvent describes one alert-rule state transition (see Watchdog).
type AlertEvent struct {
	// Rule is the rule's name; State the state entered and Prev the one
	// left.
	Rule  string `json:"rule"`
	State string `json:"state"`
	Prev  string `json:"prev"`
	// Signal, Value and Threshold restate the condition at transition
	// time: the evaluated signal (per-second rate for rate() rules) and
	// the threshold it was compared against.
	Signal    string  `json:"signal"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// SinceNS is the simulated time the current condition-true streak
	// began (set while the condition holds, zero otherwise).
	SinceNS int64 `json:"since_ns,omitempty"`
}

// Sink consumes events. Implementations must be safe for concurrent
// Emit calls.
type Sink interface {
	Emit(Event)
	Close() error
}

// JSONLSink writes one JSON object per line. Emissions are buffered;
// Close flushes. Safe for concurrent use and for sharing between
// recorders (esmbench funnels every policy's recorder into one file).
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error
}

// NewJSONLSink returns a sink writing to w. When w is also an
// io.Closer, Close closes it after flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink. The first encoding or write error is kept and
// returned by Close; later events are dropped.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		s.err = err
	}
}

// Close implements Sink.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); s.err == nil {
		s.err = err
	}
	if s.c != nil {
		if err := s.c.Close(); s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// CollectSink buffers events in memory, for tests and esmstat.
type CollectSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (s *CollectSink) Emit(ev Event) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Close implements Sink.
func (s *CollectSink) Close() error { return nil }

// Events returns a copy of the collected events.
func (s *CollectSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// AllEventTypes returns every event kind a Recorder can emit, in
// declaration order. Renderer tests iterate it so a newly added kind
// cannot silently fall through to raw-JSON output.
func AllEventTypes() []EventType {
	return []EventType{
		EvDeterminationStart, EvDetermination,
		EvMigrationStart, EvMigrationDone, EvMigrationSkip,
		EvCacheSelect, EvCacheEvict,
		EvPowerOn, EvPowerOff,
		EvReplanTrigger, EvPeriodAdapt,
		EvFault, EvDegrade, EvMigrationFail,
		EvAlert,
	}
}

// ReadEvents decodes a JSONL event log. Blank lines are skipped; a
// malformed line fails with its line number. Lines can be arbitrarily
// long (a cache-select event listing many thousand items easily
// exceeds bufio.Scanner's default limit, which this reader does not
// share).
func ReadEvents(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var out []Event
	line := 0
	for {
		b, err := br.ReadBytes('\n')
		line++
		if len(b) > 0 && b[len(b)-1] == '\n' {
			b = b[:len(b)-1]
		}
		if len(b) > 0 && b[len(b)-1] == '\r' {
			b = b[:len(b)-1]
		}
		if len(b) > 0 {
			var ev Event
			if uerr := json.Unmarshal(b, &ev); uerr != nil {
				return nil, fmt.Errorf("obs: event log line %d: %w", line, uerr)
			}
			out = append(out, ev)
		}
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
