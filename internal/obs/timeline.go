// Per-enclosure power-state timelines: the ordered {t, state, cause}
// segments behind the §III-B power status records, kept queryable so a
// bad energy result can be walked transition by transition.

package obs

import "time"

// Segment is one power-state change: the enclosure entered State at
// time T because of Cause. States are "on", "off" and "spinup"; a
// spin-up segment is followed by an "on" segment when service begins.
type Segment struct {
	T     time.Duration `json:"t_ns"`
	State string        `json:"state"`
	Cause Cause         `json:"cause"`
}

// Timeline is the ordered segment list of one enclosure.
type Timeline struct {
	segs []Segment
}

// append adds a segment. Out-of-order appends are tolerated (lazily
// synced enclosures can report a power-off dated before a concurrent
// observer's read); segments keep emission order.
func (tl *Timeline) append(s Segment) { tl.segs = append(tl.segs, s) }

// Segments returns a copy of the segment list.
func (tl *Timeline) Segments() []Segment {
	return append([]Segment(nil), tl.segs...)
}

// OffTime sums the time spent powered off up to end, assuming the
// enclosure starts on at t=0.
func OffTime(segs []Segment, end time.Duration) time.Duration {
	var total time.Duration
	var offAt time.Duration
	off := false
	for _, s := range segs {
		switch s.State {
		case "off":
			if !off {
				off = true
				offAt = s.T
			}
		case "spinup", "on":
			if off {
				total += s.T - offAt
				off = false
			}
		}
	}
	if off && end > offAt {
		total += end - offAt
	}
	return total
}
