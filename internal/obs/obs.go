// Package obs is the telemetry layer: a typed event stream (JSONL), a
// dependency-free counter/gauge registry rendered in Prometheus text
// exposition format, and per-enclosure power-state timelines.
//
// The entry point is the Recorder. A nil *Recorder is a valid, fully
// disabled recorder: every method nil-checks its receiver and returns
// immediately, so instrumented hot paths (storage.Array.Submit, the
// physical I/O path) pay exactly one pointer comparison when telemetry
// is off. Construct one with New only when an event sink, a registry,
// or timelines are actually wanted.
package obs

import (
	"sync"
	"time"
)

// Cause attributes a power-state transition or a management-function
// run to what provoked it.
type Cause string

// Power-transition and determination causes.
const (
	// CauseIdleTimeout: the enclosure's idle timer expired and the
	// power-off function spun it down.
	CauseIdleTimeout Cause = "idle-timeout"
	// CauseDemand: an application I/O arrived at a powered-off
	// enclosure and forced a spin-up.
	CauseDemand Cause = "demand"
	// CauseMigration: migration traffic forced a spin-up.
	CauseMigration Cause = "migration"
	// CauseFlush: a write-delay destage forced a spin-up.
	CauseFlush Cause = "flush"
	// CausePreload: a preload bulk read forced a spin-up.
	CausePreload Cause = "preload"
	// CausePeriodEnd: the monitoring period ended (Algorithm 1's
	// regular cadence).
	CausePeriodEnd Cause = "period-end"
	// CauseTriggerInterval: pattern-change trigger i) — a hot enclosure
	// saw an I/O interval longer than the break-even time.
	CauseTriggerInterval Cause = "trigger-interval"
	// CauseTriggerSpinUps: pattern-change trigger ii) — cold enclosures
	// spun up more than m times since the last determination.
	CauseTriggerSpinUps Cause = "trigger-spinups"
)

// Recorder fans consequential transitions out to an event sink, a
// metric registry and per-enclosure power timelines. All methods are
// safe on a nil receiver (no-ops) and safe for concurrent use.
type Recorder struct {
	mu        sync.Mutex
	sink      Sink
	reg       *Registry
	label     string
	seq       int64
	timelines []*Timeline

	// Registry instruments, pre-resolved so the hot path does not pay
	// a map lookup. All nil when no registry is attached.
	cPhysReads      *Counter
	cPhysWrites     *Counter
	cCacheHits      *Counter
	cDelayedWrites  *Counter
	cMigratedBytes  *Counter
	cMigrations     *Counter
	cSpinUps        *Counter
	cPowerOffs      *Counter
	cDeterminations *Counter
	cReplanTriggers *Counter
	cFaults         *Counter
	cDegradations   *Counter
	gPeriodSeconds  *Gauge
	gHotEnclosures  *Gauge
	gDegraded       *Gauge
}

// Options configures a Recorder. All fields are optional; a zero
// Options yields a recorder that only keeps timelines.
type Options struct {
	// Sink receives every event. Nil discards events.
	Sink Sink
	// Registry, when non-nil, is populated with the esm_* counters and
	// gauges the recorder maintains.
	Registry *Registry
	// Label is stamped into every event's "run" field; esmbench uses it
	// to tell the interleaved per-policy streams of one file apart.
	Label string
	// Instance, when non-empty, namespaces every registry instrument
	// with an array="<instance>" label, so the recorders of a fleet of
	// arrays can share one registry without colliding.
	Instance string
}

// New returns a live recorder.
func New(opts Options) *Recorder {
	r := &Recorder{sink: opts.Sink, reg: opts.Registry, label: opts.Label}
	if reg := opts.Registry; reg != nil {
		name := func(n string) string {
			if opts.Instance == "" {
				return n
			}
			return WithLabel(n, "array", opts.Instance)
		}
		r.cPhysReads = reg.Counter(name("esm_physical_reads_total"), "Physical read I/Os issued to enclosures.")
		r.cPhysWrites = reg.Counter(name("esm_physical_writes_total"), "Physical write I/Os issued to enclosures.")
		r.cCacheHits = reg.Counter(name("esm_cache_hits_total"), "Application I/Os served entirely from cache.")
		r.cDelayedWrites = reg.Counter(name("esm_delayed_writes_total"), "Application writes absorbed by the write-delay partition.")
		r.cMigratedBytes = reg.Counter(name("esm_migrated_bytes_total"), "Bytes copied by data-item and extent migrations.")
		r.cMigrations = reg.Counter(name("esm_migrations_total"), "Completed data-item migrations.")
		r.cSpinUps = reg.Counter(name("esm_spin_ups_total"), "Enclosure power-on transitions.")
		r.cPowerOffs = reg.Counter(name("esm_power_offs_total"), "Enclosure power-off transitions.")
		r.cDeterminations = reg.Counter(name("esm_determinations_total"), "Runs of the power management function.")
		r.cReplanTriggers = reg.Counter(name("esm_replan_triggers_total"), "Pattern-change triggers that forced an immediate replan.")
		r.cFaults = reg.Counter(name("esm_faults_total"), "Injected storage faults (spin-up failures, transient I/O errors, battery transitions).")
		r.cDegradations = reg.Counter(name("esm_degradations_total"), "Transitions of the policy into degraded mode.")
		r.gPeriodSeconds = reg.Gauge(name("esm_monitoring_period_seconds"), "Current monitoring-period length.")
		r.gHotEnclosures = reg.Gauge(name("esm_hot_enclosures"), "Enclosures classified hot by the last determination.")
		r.gDegraded = reg.Gauge(name("esm_degraded"), "1 while the policy is in degraded mode, else 0.")
	}
	return r
}

// Enabled reports whether the recorder is live. Call sites that must
// assemble a non-trivial payload guard on it; plain emit calls rely on
// the methods' own nil checks instead.
func (r *Recorder) Enabled() bool { return r != nil }

// Registry returns the attached registry, or nil.
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// emit stamps sequence, label and time onto ev and hands it to the
// sink. Callers hold no lock.
func (r *Recorder) emit(t time.Duration, ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sink == nil {
		return
	}
	r.seq++
	ev.Seq = r.seq
	ev.T = int64(t)
	ev.Run = r.label
	r.sink.Emit(ev)
}

// Close flushes and closes the sink, if any.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sink == nil {
		return nil
	}
	return r.sink.Close()
}

// PhysicalIO counts one physical I/O on the registry. It sits on the
// simulator's hottest path; keep it to the nil check and two atomic
// increments.
func (r *Recorder) PhysicalIO(read bool) {
	if r == nil || r.reg == nil {
		return
	}
	if read {
		r.cPhysReads.Inc()
	} else {
		r.cPhysWrites.Inc()
	}
}

// CacheHit counts one application I/O served from cache.
func (r *Recorder) CacheHit() {
	if r == nil || r.reg == nil {
		return
	}
	r.cCacheHits.Inc()
}

// DelayedWrite counts one write absorbed by the write-delay partition.
func (r *Recorder) DelayedWrite() {
	if r == nil || r.reg == nil {
		return
	}
	r.cDelayedWrites.Inc()
}

// PowerTransition records one enclosure power-state segment: an event,
// a timeline segment, and the spin-up/power-off counters. state is one
// of "on", "off", "spinup".
func (r *Recorder) PowerTransition(t time.Duration, enc int, state string, cause Cause) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for len(r.timelines) <= enc {
		r.timelines = append(r.timelines, &Timeline{})
	}
	r.timelines[enc].append(Segment{T: t, State: state, Cause: cause})
	r.mu.Unlock()
	if r.reg != nil {
		switch state {
		case "spinup":
			r.cSpinUps.Inc()
		case "off":
			r.cPowerOffs.Inc()
		}
	}
	typ := EvPowerOn
	if state == "off" {
		typ = EvPowerOff
	} else if state == "on" {
		// The spin-up event already reported the transition; the
		// "on" segment only extends the timeline.
		return
	}
	r.emit(t, Event{Type: typ, Power: &PowerEvent{Enclosure: enc, State: state, Cause: cause}})
}

// Timeline returns a copy of enclosure enc's power-state segments (nil
// for an unknown enclosure or a nil recorder).
func (r *Recorder) Timeline(enc int) []Segment {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if enc < 0 || enc >= len(r.timelines) {
		return nil
	}
	return r.timelines[enc].Segments()
}

// Timelines returns copies of every enclosure timeline recorded so far.
func (r *Recorder) Timelines() [][]Segment {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]Segment, len(r.timelines))
	for i, tl := range r.timelines {
		out[i] = tl.Segments()
	}
	return out
}

// MigrationStart records the start of one data-item migration copy.
func (r *Recorder) MigrationStart(t time.Duration, item int64, src, dst int, bytes int64) {
	if r == nil {
		return
	}
	r.emit(t, Event{Type: EvMigrationStart, Migration: &MigrationEvent{Item: item, Src: src, Dst: dst, Bytes: bytes}})
}

// MigrationDone records a finished migration and its copied volume.
func (r *Recorder) MigrationDone(t time.Duration, item int64, src, dst int, bytes int64) {
	if r == nil {
		return
	}
	if r.reg != nil {
		r.cMigrations.Inc()
		r.cMigratedBytes.Add(bytes)
	}
	r.emit(t, Event{Type: EvMigrationDone, Migration: &MigrationEvent{Item: item, Src: src, Dst: dst, Bytes: bytes}})
}

// MigrationSkipped records a migration dropped because its destination
// was full when it reached the head of the queue.
func (r *Recorder) MigrationSkipped(t time.Duration, item int64, dst int) {
	if r == nil {
		return
	}
	r.emit(t, Event{Type: EvMigrationSkip, Migration: &MigrationEvent{Item: item, Src: -1, Dst: dst}})
}

// CacheSelect records items newly selected for a cache function
// ("preload" or "write-delay").
func (r *Recorder) CacheSelect(t time.Duration, function string, items []int64) {
	if r == nil || len(items) == 0 {
		return
	}
	r.emit(t, Event{Type: EvCacheSelect, Cache: &CacheEvent{Function: function, Items: items}})
}

// CacheEvict records items dropped from a cache function.
func (r *Recorder) CacheEvict(t time.Duration, function string, items []int64) {
	if r == nil || len(items) == 0 {
		return
	}
	r.emit(t, Event{Type: EvCacheEvict, Cache: &CacheEvent{Function: function, Items: items}})
}

// DeterminationStart records the power management function beginning a
// run, with the cause that provoked it.
func (r *Recorder) DeterminationStart(t time.Duration, n int64, cause Cause) {
	if r == nil {
		return
	}
	r.emit(t, Event{Type: EvDeterminationStart, Determination: &DeterminationEvent{N: n, Cause: cause}})
}

// Determination records a completed run of the power management
// function: the per-item pattern counts, the hot/cold assignment and
// the decisions taken.
func (r *Recorder) Determination(t time.Duration, d DeterminationEvent) {
	if r == nil {
		return
	}
	if r.reg != nil {
		r.cDeterminations.Inc()
		r.gPeriodSeconds.Set(time.Duration(d.NextPeriodNS).Seconds())
		hot := 0
		for _, h := range d.Hot {
			if h {
				hot++
			}
		}
		r.gHotEnclosures.Set(float64(hot))
	}
	r.emit(t, Event{Type: EvDetermination, Determination: &d})
}

// ReplanTrigger records a §V-D pattern-change trigger that actually
// forced a replan, with the measurement that fired it.
func (r *Recorder) ReplanTrigger(t time.Duration, ev ReplanEvent) {
	if r == nil {
		return
	}
	if r.reg != nil {
		r.cReplanTriggers.Inc()
	}
	r.emit(t, Event{Type: EvReplanTrigger, Replan: &ev})
}

// Fault records one injected storage fault.
func (r *Recorder) Fault(t time.Duration, ev FaultEvent) {
	if r == nil {
		return
	}
	if r.reg != nil {
		r.cFaults.Inc()
	}
	r.emit(t, Event{Type: EvFault, Fault: &ev})
}

// Degradation records the policy entering or leaving degraded mode.
func (r *Recorder) Degradation(t time.Duration, ev DegradeEvent) {
	if r == nil {
		return
	}
	if r.reg != nil {
		if ev.Entered {
			r.cDegradations.Inc()
			r.gDegraded.Set(1)
		} else {
			r.gDegraded.Set(0)
		}
	}
	r.emit(t, Event{Type: EvDegrade, Degrade: &ev})
}

// Alert records one alert-rule state transition. The Watchdog calls it
// so alert events share the run's sequence counter with every other
// event kind.
func (r *Recorder) Alert(t time.Duration, ev AlertEvent) {
	if r == nil {
		return
	}
	r.emit(t, Event{Type: EvAlert, Alert: &ev})
}

// MigrationFailed records a migration abandoned because its source or
// destination enclosure was unavailable.
func (r *Recorder) MigrationFailed(t time.Duration, item int64, src, dst int) {
	if r == nil {
		return
	}
	r.emit(t, Event{Type: EvMigrationFail, Migration: &MigrationEvent{Item: item, Src: src, Dst: dst}})
}

// PeriodAdapt records a monitoring-period change (§IV-H).
func (r *Recorder) PeriodAdapt(t time.Duration, old, next time.Duration) {
	if r == nil || old == next {
		return
	}
	r.emit(t, Event{Type: EvPeriodAdapt, Period: &PeriodEvent{OldNS: int64(old), NewNS: int64(next)}})
}
