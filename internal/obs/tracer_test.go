package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestNilTracerIsNoOp: every method must be callable on a nil tracer —
// the disabled fast path the physical I/O loop relies on.
func TestNilTracerIsNoOp(t *testing.T) {
	var trc *Tracer
	if trc.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	trc.SetClasses([]uint8{1, 2})
	if c := trc.ClassOf(0); c != ClassUnknown {
		t.Fatalf("nil tracer class %d", c)
	}
	trc.IO(IOSpan{Item: 1, Response: time.Millisecond})
	trc.Management(ManagementSpan{Kind: "migration"})
	trc.Service(0, 1, FnServing, time.Second)
	trc.SpinUps(0, 1, FnServing, 1)
	trc.Residency(0, 0, 1, 1<<20)
	if s := trc.LatencySummary(); s != nil {
		t.Fatalf("nil tracer summary %+v", s)
	}
	if a := trc.Attribute(time.Hour, nil); a != nil {
		t.Fatalf("nil tracer attribution %+v", a)
	}
	if a := trc.Attribution(); a != nil {
		t.Fatalf("nil tracer cached attribution %+v", a)
	}
	if err := trc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTracerStampsClasses: I/O spans carry the class table installed by
// the last determination, and unknown items stay unknown.
func TestTracerStampsClasses(t *testing.T) {
	sink := &CollectSpanSink{}
	trc := NewTracer(TracerOptions{Sink: sink})
	trc.IO(IOSpan{Item: 0, Response: time.Millisecond, Cause: IODiskOn})
	trc.SetClasses([]uint8{2, 1})
	trc.IO(IOSpan{Item: 0, Response: time.Millisecond, Cause: IODiskOn})
	trc.IO(IOSpan{Item: 1, Response: time.Millisecond, Cause: IODiskOn})
	trc.IO(IOSpan{Item: 9, Response: time.Millisecond, Cause: IODiskOn})
	want := []uint8{ClassUnknown, 2, 1, ClassUnknown}
	if len(sink.IOs) != len(want) {
		t.Fatalf("%d spans, want %d", len(sink.IOs), len(want))
	}
	for i, sp := range sink.IOs {
		if sp.Class != want[i] {
			t.Errorf("span %d class %d, want %d", i, sp.Class, want[i])
		}
	}
}

// TestTracerSummaryAndSpans: the streaming breakdown matches the spans
// delivered to the sink, and Close embeds the summary in a summarySink.
func TestTracerSummaryAndSpans(t *testing.T) {
	var buf bytes.Buffer
	trc := NewTracer(TracerOptions{Sink: NewPerfettoSink(&buf, "unit"), Enclosures: 2})
	trc.Residency(0, 0, 4, 1<<20)
	trc.IO(IOSpan{Item: 4, Enclosure: -1, Read: true, Response: 300 * time.Microsecond, Cause: IOCacheHit})
	trc.IO(IOSpan{
		Item: 4, Enclosure: 0, Read: true, Start: time.Second,
		Response: 20 * time.Millisecond, Cause: IODiskOn,
		QueueWait: 3 * time.Millisecond, Service: 17 * time.Millisecond,
	})
	trc.Service(0, 4, FnServing, 17*time.Millisecond)
	trc.Management(ManagementSpan{Kind: "migration", Start: 2 * time.Second, End: 3 * time.Second, Item: 4, Enclosure: 0, Dst: 1, Bytes: 1 << 20})

	sum := trc.LatencySummary()
	if sum.Total.Count != 2 {
		t.Fatalf("total count %d", sum.Total.Count)
	}
	trc.Attribute(time.Hour, func(int) EnclosureEnergy { return EnclosureEnergy{ActiveJ: 10, IdleJ: 5} })
	if err := trc.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing twice is safe (run() defers Close after an explicit one).
	if err := trc.Close(); err != nil {
		t.Fatal(err)
	}

	pf, err := ReadPerfetto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if pf.OtherData == nil || pf.OtherData.Latency == nil || pf.OtherData.Attribution == nil {
		t.Fatal("otherData summary missing")
	}
	if pf.OtherData.Latency.Total.Count != 2 {
		t.Fatalf("embedded latency count %d", pf.OtherData.Latency.Total.Count)
	}
	if pf.OtherData.Attribution.TotalJ != 30 {
		t.Fatalf("embedded attribution total %v", pf.OtherData.Attribution.TotalJ)
	}
}

// TestTracerRegistryGauges: the registry serves the latency quantiles
// and attribution rolled up by the tracer.
func TestTracerRegistryGauges(t *testing.T) {
	reg := NewRegistry()
	trc := NewTracer(TracerOptions{Registry: reg, Enclosures: 1})
	for i := 0; i < 100; i++ {
		trc.IO(IOSpan{Item: 0, Response: 25 * time.Millisecond, Cause: IODiskOn,
			QueueWait: time.Millisecond, Service: 24 * time.Millisecond})
	}
	trc.SetClasses([]uint8{3})
	trc.Service(0, 0, FnServing, 2400*time.Millisecond)
	trc.Attribute(time.Hour, func(int) EnclosureEnergy { return EnclosureEnergy{ActiveJ: 42} })

	var out bytes.Buffer
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		`esm_io_latency_count{cause="disk-on"} 100`,
		`esm_io_latency_seconds{cause="disk-on",quantile="0.99"} 0.025`,
		`esm_io_phase_seconds{phase="service",quantile="0.5"} 0.024`,
		`esm_energy_attributed_joules{class="P3"} 42`,
		`esm_energy_function_joules{function="serving"} 42`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("registry output missing %q:\n%s", want, text)
		}
	}
	// One HELP/TYPE header per metric family, not per labeled variant.
	if n := strings.Count(text, "# TYPE esm_io_latency_seconds "); n != 1 {
		t.Errorf("esm_io_latency_seconds has %d TYPE headers, want 1", n)
	}
}
