package obs

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// TestNilProvenanceSafe pins the nil-receiver contract: a nil
// *Provenance accepts every call, returns empty views, and allocates
// nothing on the record paths.
func TestNilProvenanceSafe(t *testing.T) {
	var p *Provenance
	if p.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	p.ConfigurePower(300, 10*time.Second)
	p.Determination(time.Second, 1, CausePeriodEnd, 2, 3)
	p.Decision(time.Second, ProvDecision{Kind: ProvMove, Item: 7})
	p.PowerTransition(time.Second, 0, "spinup", CauseDemand)
	p.MigrationDone(time.Second, 7, 0, 1)
	p.CacheOp(time.Second, "preload", []int64{1, 2})
	p.Fault(time.Second, 0, "spinup-fail")
	p.RecordAttribution(time.Second, &Attribution{}, 0)
	if s := p.Series(); s != nil {
		t.Fatalf("nil recorder Series = %v", s)
	}
	if sum := p.Summary(); sum != nil {
		t.Fatalf("nil recorder Summary = %v", sum)
	}

	allocs := testing.AllocsPerRun(1000, func() {
		p.Determination(time.Second, 1, CausePeriodEnd, 2, 3)
		p.Decision(time.Second, ProvDecision{Kind: ProvMove, Item: 7, IntervalS: 60})
		p.PowerTransition(time.Second, 0, "spinup", CauseDemand)
		p.MigrationDone(time.Second, 7, 0, 1)
		p.Fault(time.Second, 0, "spinup-fail")
	})
	if allocs != 0 {
		t.Fatalf("nil record path allocates: %v allocs/run", allocs)
	}
}

// TestProvenanceCompaction drives the store past its bound and checks
// the flight-recorder discipline: row count stays within MaxRecords,
// the stride doubles, the first row survives, and times stay strictly
// increasing.
func TestProvenanceCompaction(t *testing.T) {
	p := NewProvenance(ProvenanceOptions{MaxRecords: 16})
	const offers = 100
	for i := 0; i < offers; i++ {
		p.Determination(time.Duration(i)*time.Second, int64(i+1), CausePeriodEnd, 1, 0)
	}
	sum := p.Summary()
	if sum.Offered != offers {
		t.Fatalf("offered %d, want %d", sum.Offered, offers)
	}
	if sum.Records > 16 {
		t.Fatalf("stored %d rows, bound is 16", sum.Records)
	}
	if sum.Stride < 2 {
		t.Fatalf("stride %d after overflow, want >= 2", sum.Stride)
	}
	if sum.Determinations != offers {
		t.Fatalf("determination counter %d, want %d (compaction must not rewind counters)", sum.Determinations, offers)
	}
	s := p.Series()
	if s.Len() != sum.Records {
		t.Fatalf("series has %d rows, summary says %d", s.Len(), sum.Records)
	}
	if s.TimesNS[0] != 0 {
		t.Fatalf("first row dropped: t[0] = %d", s.TimesNS[0])
	}
	for i := 1; i < s.Len(); i++ {
		if s.TimesNS[i] <= s.TimesNS[i-1] {
			t.Fatalf("times not strictly increasing at row %d: %d then %d", i, s.TimesNS[i-1], s.TimesNS[i])
		}
	}
}

// TestProvenanceRoundTrip records one row of every kind and checks the
// CSV round trip reproduces the decoded records exactly.
func TestProvenanceRoundTrip(t *testing.T) {
	p := NewProvenance(ProvenanceOptions{})
	p.Determination(10*time.Second, 1, CausePeriodEnd, 2, 1)
	p.Decision(10*time.Second, ProvDecision{
		Kind: ProvMove, Det: 1, Cause: CausePeriodEnd, Item: 7, Class: 3,
		PrevClass: -1, Src: 0, Dst: 2, IntervalS: 120, ReadRatio: 0.75,
		CostSrc: 5.5, CostDst: 0.25, ToCold: true,
	})
	p.Decision(10*time.Second, ProvDecision{
		Kind: ProvReclass, Det: 1, Cause: CausePeriodEnd, Item: 8, Class: 1, PrevClass: 3, Src: 1,
		Dst: -1,
	})
	p.PowerTransition(11*time.Second, 2, "spinup", CauseMigration)
	p.PowerTransition(26*time.Second, 2, "on", CauseMigration)
	p.MigrationDone(30*time.Second, 7, 0, 2)
	p.CacheOp(31*time.Second, "preload", []int64{8})
	p.CacheOp(32*time.Second, "write-delay", []int64{9, 10})
	p.Fault(40*time.Second, 3, "spinup-fail")
	p.RecordAttribution(60*time.Second, &Attribution{
		Enclosures: []EnclosureAttribution{{
			Enclosure: 2,
			ByItem:    []ItemEnergy{{Item: 7, Class: 3, Joules: 123.5}},
		}},
	}, 4)

	direct, ok := DecodeProvenance(p.Series())
	if !ok {
		t.Fatal("fresh series failed to decode")
	}
	var buf bytes.Buffer
	if err := p.Series().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	read, err := ReadSeriesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	decoded, ok := DecodeProvenance(read)
	if !ok {
		t.Fatal("CSV series failed to decode")
	}
	if !reflect.DeepEqual(direct, decoded) {
		t.Fatalf("round trip diverged:\ndirect  %+v\ndecoded %+v", direct, decoded)
	}

	// Spot-check the semantics survived: the move row carries its
	// predicted deltas with to-cold signs (saves joules, costs latency).
	var move *ProvRecord
	for i := range decoded {
		if decoded[i].Kind == ProvMove {
			move = &decoded[i]
		}
	}
	if move == nil {
		t.Fatal("no move row decoded")
	}
	if move.PredDJ >= 0 || move.PredDUS <= 0 {
		t.Fatalf("to-cold move predicts dj=%g dus=%g; want dj<0, dus>0", move.PredDJ, move.PredDUS)
	}
	if move.Cause != string(CausePeriodEnd) || move.Item != 7 || move.Src != 0 || move.Dst != 2 {
		t.Fatalf("move row corrupted: %+v", move)
	}
	sum := p.Summary()
	if sum.Decisions != 2 || sum.Transitions != 2 || sum.Migrations != 1 || sum.Faults != 1 {
		t.Fatalf("summary counters wrong: %+v", sum)
	}
}

// TestProvenancePredictedDeltas pins the first-order move economics
// and that ConfigurePower overrides the electrical constants.
func TestProvenancePredictedDeltas(t *testing.T) {
	p := NewProvenance(ProvenanceOptions{})
	p.ConfigurePower(100, 10*time.Second)
	p.Decision(time.Second, ProvDecision{Kind: ProvMove, Det: 1, Item: 1, IntervalS: 60, ReadRatio: 0.5, ToCold: true})
	p.Decision(time.Second, ProvDecision{Kind: ProvMove, Det: 1, Item: 2, IntervalS: 60, ReadRatio: 0.5, ToCold: false})
	recs, ok := DecodeProvenance(p.Series())
	if !ok || len(recs) != 2 {
		t.Fatalf("decode failed: ok=%v n=%d", ok, len(recs))
	}
	// To cold: saves idleW x interval = 100 x 60 J, costs spin-up
	// exposure = 10s x 0.5 read ratio = 5e6 us.
	if recs[0].PredDJ != -6000 || recs[0].PredDUS != 5e6 {
		t.Fatalf("to-cold deltas: dj=%g dus=%g, want -6000, 5e6", recs[0].PredDJ, recs[0].PredDUS)
	}
	if recs[1].PredDJ != 6000 || recs[1].PredDUS != -5e6 {
		t.Fatalf("to-hot deltas: dj=%g dus=%g, want 6000, -5e6", recs[1].PredDJ, recs[1].PredDUS)
	}
}

// TestCauseCodes pins the stable cause table: every name round-trips,
// empty maps to 0 and unknown strings to -1.
func TestCauseCodes(t *testing.T) {
	if CauseCode("") != 0 || CauseName(0) != "" {
		t.Fatal("empty cause must map to code 0")
	}
	if CauseCode("no-such-cause") != -1 {
		t.Fatal("unknown cause must map to -1")
	}
	for code := 1; code <= len(provCauses); code++ {
		name := CauseName(code)
		if name == "" || name == "?" {
			t.Fatalf("code %d has no name", code)
		}
		if CauseCode(name) != code {
			t.Fatalf("cause %q: code %d round-trips to %d", name, code, CauseCode(name))
		}
	}
	for _, state := range []string{"off", "on", "spinup"} {
		if PowerStateName(PowerStateCode(state)) != state {
			t.Fatalf("power state %q does not round-trip", state)
		}
	}
	if PowerStateCode("bogus") != -1 || PowerStateName(-1) != "?" {
		t.Fatal("unknown power state must map to -1 / ?")
	}
}
