package obs

import (
	"strings"
	"testing"
	"time"
)

func TestParseRule(t *testing.T) {
	r, err := ParseRule("budget:total_energy_j>1.5e6:for=30s")
	if err != nil {
		t.Fatal(err)
	}
	want := Rule{Name: "budget", Signal: "total_energy_j", Op: ">", Threshold: 1.5e6, For: 30 * time.Second}
	if r != want {
		t.Fatalf("got %+v, want %+v", r, want)
	}
	if got := r.String(); got != "budget:total_energy_j>1.5e+06:for=30s" {
		t.Fatalf("String() = %q", got)
	}
	if rt, err := ParseRule(r.String()); err != nil || rt != r {
		t.Fatalf("String() round-trip: %v, %+v", err, rt)
	}

	r, err = ParseRule("hot:rate(spin_ups)>=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rate || r.Signal != "spin_ups" || r.Op != ">=" || r.Threshold != 0.25 || r.For != 0 {
		t.Fatalf("rate rule parsed as %+v", r)
	}

	r, err = ParseRule("carbon:fleet_total_kgco2>100")
	if err != nil {
		t.Fatal(err)
	}
	if !r.FleetSignal() {
		t.Fatalf("fleet_total_kgco2 not recognised as a fleet signal")
	}

	if _, err := ParseRule("enc-idle:enc3_idle_s>=120"); err != nil {
		t.Fatalf("enclosure-column rule rejected: %v", err)
	}

	for _, bad := range []string{
		"",
		"noname",
		":total_energy_j>1",
		"x:nosuchsignal>1",
		"x:total_energy_j!1",
		"x:total_energy_j>abc",
		"x:total_energy_j>1:for=xyz",
		"x:total_energy_j>1:for=-3s",
		"x:total_energy_j>1:hold=3s",
		"x:rate(total_energy_j>1",
		"bad name:total_energy_j>1",
	} {
		if _, err := ParseRule(bad); err == nil {
			t.Errorf("ParseRule(%q) accepted", bad)
		}
	}

	if _, err := ParseRules([]string{"a:faults>0", "a:spin_ups>1"}); err == nil {
		t.Error("duplicate rule names accepted")
	}
	rules, err := ParseRuleList(" a:faults>0 , b:spin_ups>1 ")
	if err != nil || len(rules) != 2 {
		t.Fatalf("ParseRuleList: %v, %d rules", err, len(rules))
	}
	if rules, err := ParseRuleList(""); err != nil || rules != nil {
		t.Fatalf("empty list: %v, %v", err, rules)
	}
}

func TestWatchdogLifecycle(t *testing.T) {
	sink := &CollectSink{}
	rec := New(Options{Sink: sink})
	reg := NewRegistry()
	w := NewWatchdog(WatchdogOptions{
		Rules: []Rule{
			{Name: "energy", Signal: "total_energy_j", Op: ">", Threshold: 100, For: 20 * time.Second},
			{Name: "spin", Signal: "spin_ups", Rate: true, Op: ">", Threshold: 0.5},
		},
		Recorder: rec,
		Registry: reg,
	})

	at := func(sec int, energy float64, spins int) {
		w.Observe(FlightSample{T: time.Duration(sec) * time.Second, TotalEnergyJ: energy, SpinUps: spins})
	}
	at(0, 0, 0)    // both inactive; rate has no derivative yet
	at(10, 50, 1)  // energy below; rate 0.1/s
	at(20, 150, 9) // energy pending; rate 0.8/s -> spin pending+firing (For=0)
	at(30, 160, 9) // energy still pending (held 10s); spin resolves (rate 0)
	at(40, 170, 9) // energy fires (held 20s)
	at(50, 90, 9)  // impossible for cumulative energy, but exercises resolve

	st := w.States()
	if len(st) != 2 {
		t.Fatalf("States() returned %d rules", len(st))
	}
	if st[0].State != AlertResolved || st[1].State != AlertResolved {
		t.Fatalf("end states = %s, %s; want resolved, resolved", st[0].State, st[1].State)
	}
	if st[0].Fired != 1 || st[1].Fired != 1 {
		t.Fatalf("fired counts = %d, %d; want 1, 1", st[0].Fired, st[1].Fired)
	}

	sum := w.Summary()
	if sum.Rules != 2 || sum.Firing != 0 || sum.Fired != 2 {
		t.Fatalf("summary = %+v", sum)
	}

	// The transition sequence must be the full lifecycle, in order,
	// for each rule.
	var got []string
	for _, ev := range sink.Events() {
		if ev.Type != EvAlert {
			t.Fatalf("unexpected event type %s", ev.Type)
		}
		got = append(got, ev.Alert.Rule+":"+ev.Alert.Prev+">"+ev.Alert.State)
	}
	want := []string{
		"energy:inactive>pending",
		"spin:inactive>pending", "spin:pending>firing",
		"spin:firing>resolved",
		"energy:pending>firing",
		"energy:firing>resolved",
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("transitions:\n got %v\nwant %v", got, want)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		`esm_alerts{rule="energy",state="resolved"} 1`,
		`esm_alerts{rule="energy",state="firing"} 0`,
		`esm_alert_transitions_total{rule="spin"} 3`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("registry output missing %q", line)
		}
	}
}

func TestWatchdogForWindowNeverHeld(t *testing.T) {
	w := NewWatchdog(WatchdogOptions{Rules: []Rule{
		{Name: "flap", Signal: "faults", Op: ">", Threshold: 0, For: time.Minute},
	}})
	w.Observe(FlightSample{T: 0, Faults: 1})
	w.Observe(FlightSample{T: 30 * time.Second, Faults: 0})
	w.Observe(FlightSample{T: 60 * time.Second, Faults: 1})
	w.Observe(FlightSample{T: 90 * time.Second, Faults: 0})
	st := w.States()[0]
	if st.State != AlertInactive || st.Fired != 0 {
		t.Fatalf("flapping rule ended %s with %d fires; want inactive, 0", st.State, st.Fired)
	}
	if st.Transitions != 4 {
		t.Fatalf("transitions = %d, want 4 (two pending, two back to inactive)", st.Transitions)
	}
}

func TestWatchdogObserveSignal(t *testing.T) {
	w := NewWatchdog(WatchdogOptions{Rules: []Rule{
		{Name: "deg", Signal: "degraded", Op: ">=", Threshold: 1},
		{Name: "other", Signal: "faults", Op: ">", Threshold: 0},
	}})
	w.ObserveSignal(5*time.Second, "degraded", 1)
	st := w.States()
	if st[0].State != AlertFiring {
		t.Fatalf("degraded rule = %s, want firing", st[0].State)
	}
	if st[1].State != AlertInactive {
		t.Fatalf("unrelated rule moved to %s", st[1].State)
	}
	w.ObserveSignal(9*time.Second, "degraded", 0)
	if st := w.States(); st[0].State != AlertResolved {
		t.Fatalf("degraded rule = %s, want resolved", st[0].State)
	}
}

func TestWatchdogObserveValues(t *testing.T) {
	w := NewWatchdog(WatchdogOptions{Rules: []Rule{
		{Name: "cost", Signal: "fleet_cost_usd", Op: ">", Threshold: 10},
	}})
	w.ObserveValues(time.Second, map[string]float64{"fleet_cost_usd": 5})
	if st := w.States()[0]; st.State != AlertInactive {
		t.Fatalf("below budget fired: %s", st.State)
	}
	w.ObserveValues(2*time.Second, map[string]float64{"fleet_cost_usd": 15})
	if st := w.States()[0]; st.State != AlertFiring {
		t.Fatalf("over budget = %s, want firing", st.State)
	}
}

// TestNilWatchdogAllocationFree pins the off path: a nil watchdog's
// Observe must not allocate (the acceptance-criteria twin of the
// BenchmarkTelemetryOverhead watchdog-off variant).
func TestNilWatchdogAllocationFree(t *testing.T) {
	var w *Watchdog
	s := FlightSample{T: time.Second, TotalEnergyJ: 42}
	if n := testing.AllocsPerRun(100, func() {
		w.Observe(s)
		w.ObserveSignal(s.T, "degraded", 1)
		w.Final(s)
	}); n != 0 {
		t.Fatalf("nil watchdog allocated %.1f/op", n)
	}
	if w.States() != nil || w.Rules() != nil {
		t.Fatal("nil watchdog returned non-nil state")
	}
	if w.Summary() != (AlertSummary{}) {
		t.Fatal("nil watchdog summary not zero")
	}
	if NewWatchdog(WatchdogOptions{}) != nil {
		t.Fatal("NewWatchdog with no rules should return nil")
	}
}

func TestVersionString(t *testing.T) {
	if s := VersionString("esmstat"); !strings.HasPrefix(s, "esmstat ") || !strings.Contains(s, "go1") {
		t.Fatalf("VersionString = %q", s)
	}
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "esm_build_info{") {
		t.Fatalf("registry output missing esm_build_info: %s", buf.String())
	}
	RegisterBuildInfo(nil) // must not panic
}
