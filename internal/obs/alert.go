// The alert engine: a Watchdog evaluating declarative threshold rules
// against flight-recorder samples on the simulated clock. Like the
// Recorder, Tracer and FlightRecorder, a nil *Watchdog is a valid
// disabled instance — every method nil-checks its receiver, so the hot
// path pays one pointer comparison when alerting is off.
//
// Rules are evaluated only at deterministic simulated-time points (the
// flight-sampling grid plus explicit policy bridges like the degrade
// transition), and alert events are emitted through the run's Recorder
// so they share its sequence counter. That makes the alert stream
// byte-identical between serial and sharded replays, like every other
// output of the simulator.

package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// AlertState is one phase of a rule's lifecycle. A rule starts
// inactive; when its condition first holds it turns pending; when the
// condition has held for the rule's for-duration it fires; when the
// condition stops holding, a firing rule resolves (and a pending one
// falls back to inactive). A resolved rule re-enters pending if the
// condition returns.
type AlertState string

// The alert lifecycle.
const (
	AlertInactive AlertState = "inactive"
	AlertPending  AlertState = "pending"
	AlertFiring   AlertState = "firing"
	AlertResolved AlertState = "resolved"
)

// alertStates lists every lifecycle state in a fixed order, so per-rule
// gauge updates never depend on map iteration.
var alertStates = [...]AlertState{AlertInactive, AlertPending, AlertFiring, AlertResolved}

// Rule is one declarative alert condition over a named signal. The
// signal vocabulary is the flight recorder's column set (scalarCols
// plus the enc<i>_* columns) for per-array rules, and the fleet_*
// roll-up totals for fleet-wide budget rules.
type Rule struct {
	// Name identifies the rule in events, metrics and reports.
	Name string `json:"name"`
	// Signal names the observed series column.
	Signal string `json:"signal"`
	// Rate, when true, compares the per-second derivative between
	// consecutive observations instead of the raw value.
	Rate bool `json:"rate,omitempty"`
	// Op is ">", ">=", "<" or "<=".
	Op string `json:"op"`
	// Threshold is the right-hand side of the comparison.
	Threshold float64 `json:"threshold"`
	// For is how long the condition must hold before the rule fires.
	// Zero fires on the first true evaluation.
	For time.Duration `json:"for_ns,omitempty"`
}

// String renders the rule in the spec grammar ParseRule accepts.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Name)
	b.WriteByte(':')
	if r.Rate {
		fmt.Fprintf(&b, "rate(%s)", r.Signal)
	} else {
		b.WriteString(r.Signal)
	}
	b.WriteString(r.Op)
	b.WriteString(strconv.FormatFloat(r.Threshold, 'g', -1, 64))
	if r.For > 0 {
		fmt.Fprintf(&b, ":for=%s", r.For)
	}
	return b.String()
}

// holds reports whether value v satisfies the rule's comparison.
func (r Rule) holds(v float64) bool {
	switch r.Op {
	case ">":
		return v > r.Threshold
	case ">=":
		return v >= r.Threshold
	case "<":
		return v < r.Threshold
	case "<=":
		return v <= r.Threshold
	}
	return false
}

// fleetSignals is the fleet-wide budget vocabulary: the /fleet roll-up
// totals, observed by the fleet's own watchdog via ObserveValues.
var fleetSignals = []string{
	"fleet_metered_j", "fleet_facility_j", "fleet_facility_kwh",
	"fleet_cost_usd", "fleet_operational_kgco2", "fleet_embodied_kgco2",
	"fleet_total_kgco2", "fleet_stored_tb", "fleet_records", "fleet_spin_ups",
}

// KnownSignal reports whether name is in the rule vocabulary: a flight
// recorder scalar column, a per-enclosure enc<i>_{state,used_b,idle_s}
// column, or a fleet_* roll-up total.
func KnownSignal(name string) bool {
	for _, c := range scalarCols {
		if name == c {
			return true
		}
	}
	for _, c := range fleetSignals {
		if name == c {
			return true
		}
	}
	if rest, ok := strings.CutPrefix(name, "enc"); ok {
		if i := strings.IndexByte(rest, '_'); i > 0 {
			if _, err := strconv.Atoi(rest[:i]); err == nil {
				switch rest[i+1:] {
				case "state", "used_b", "idle_s":
					return true
				}
			}
		}
	}
	return false
}

// FleetSignal reports whether the rule reads a fleet_* roll-up total
// (and therefore belongs on the fleet-wide watchdog, not an array's).
func (r Rule) FleetSignal() bool { return strings.HasPrefix(r.Signal, "fleet_") }

// ParseRule parses one rule spec. The grammar is
//
//	name:condition[:for=DURATION]
//
// where condition is "signal OP threshold" without spaces — e.g.
// "budget:total_energy_j>1.5e6:for=30s" or "hot:rate(spin_ups)>=0.2".
// OP is >, >=, < or <=; rate(signal) compares the per-second
// derivative between consecutive samples instead of the raw value.
func ParseRule(spec string) (Rule, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return Rule{}, fmt.Errorf("obs: alert spec %q: want name:condition[:for=DURATION]", spec)
	}
	var r Rule
	r.Name = strings.TrimSpace(parts[0])
	if r.Name == "" {
		return Rule{}, fmt.Errorf("obs: alert spec %q: empty rule name", spec)
	}
	if strings.ContainsAny(r.Name, " \t\"{}=,") {
		return Rule{}, fmt.Errorf("obs: alert spec %q: rule name %q has reserved characters", spec, r.Name)
	}
	cond := strings.TrimSpace(parts[1])
	opAt := strings.IndexAny(cond, "<>")
	if opAt < 0 {
		return Rule{}, fmt.Errorf("obs: alert spec %q: condition %q has no comparison operator", spec, cond)
	}
	r.Op = cond[opAt : opAt+1]
	rhs := cond[opAt+1:]
	if strings.HasPrefix(rhs, "=") {
		r.Op += "="
		rhs = rhs[1:]
	}
	lhs := strings.TrimSpace(cond[:opAt])
	if inner, ok := strings.CutPrefix(lhs, "rate("); ok {
		if !strings.HasSuffix(inner, ")") {
			return Rule{}, fmt.Errorf("obs: alert spec %q: unclosed rate(...)", spec)
		}
		r.Rate = true
		lhs = strings.TrimSpace(strings.TrimSuffix(inner, ")"))
	}
	if lhs == "" {
		return Rule{}, fmt.Errorf("obs: alert spec %q: empty signal", spec)
	}
	if !KnownSignal(lhs) {
		return Rule{}, fmt.Errorf("obs: alert spec %q: unknown signal %q", spec, lhs)
	}
	r.Signal = lhs
	thr, err := strconv.ParseFloat(strings.TrimSpace(rhs), 64)
	if err != nil {
		return Rule{}, fmt.Errorf("obs: alert spec %q: threshold %q: %v", spec, rhs, err)
	}
	r.Threshold = thr
	if len(parts) == 3 {
		f := strings.TrimSpace(parts[2])
		v, ok := strings.CutPrefix(f, "for=")
		if !ok {
			return Rule{}, fmt.Errorf("obs: alert spec %q: want for=DURATION, got %q", spec, f)
		}
		d, err := time.ParseDuration(v)
		if err != nil {
			return Rule{}, fmt.Errorf("obs: alert spec %q: %v", spec, err)
		}
		if d < 0 {
			return Rule{}, fmt.Errorf("obs: alert spec %q: negative for-duration", spec)
		}
		r.For = d
	}
	return r, nil
}

// ParseRules parses a slice of rule specs, rejecting duplicate names.
func ParseRules(specs []string) ([]Rule, error) {
	var out []Rule
	seen := make(map[string]bool, len(specs))
	for _, spec := range specs {
		r, err := ParseRule(spec)
		if err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("obs: duplicate alert rule name %q", r.Name)
		}
		seen[r.Name] = true
		out = append(out, r)
	}
	return out, nil
}

// ParseRuleList parses a comma-separated spec list (the -alerts flag
// form). An empty string yields no rules.
func ParseRuleList(s string) ([]Rule, error) {
	var specs []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			specs = append(specs, f)
		}
	}
	return ParseRules(specs)
}

// WatchdogOptions configures a Watchdog. Rules is required; everything
// else is optional.
type WatchdogOptions struct {
	// Rules is the evaluated rule set, in evaluation order.
	Rules []Rule
	// Recorder, when non-nil, receives one typed alert event per state
	// transition, sharing the run's sequence counter.
	Recorder *Recorder
	// Registry, when non-nil, is populated with per-rule
	// esm_alerts{rule,state} gauges and esm_alert_transitions_total
	// counters.
	Registry *Registry
	// Instance, when non-empty, namespaces the registry instruments
	// with an array="<instance>" label (fleet use).
	Instance string
}

// ruleState is one rule's live evaluation state.
type ruleState struct {
	rule  Rule
	state AlertState
	// sinceNS is when the current state was entered; condSince when the
	// current condition-true streak began.
	sinceNS   int64
	condSince time.Duration
	// value is the last evaluated value (the derivative for rate rules).
	value float64
	// rate-derivative bookkeeping.
	haveLast bool
	lastT    time.Duration
	lastV    float64

	transitions int64
	fired       int64

	gauges      [len(alertStates)]*Gauge
	cTransition *Counter
}

// Watchdog evaluates alert rules at deterministic simulated-time
// points. All methods are safe on a nil receiver (no-ops) and safe for
// concurrent use.
type Watchdog struct {
	mu    sync.Mutex
	rules []*ruleState
	rec   *Recorder

	transitions int64
	fired       int64
}

// NewWatchdog returns a live watchdog. Returns nil when opts.Rules is
// empty, so callers can wire the result unconditionally.
func NewWatchdog(opts WatchdogOptions) *Watchdog {
	if len(opts.Rules) == 0 {
		return nil
	}
	w := &Watchdog{rec: opts.Recorder}
	for _, r := range opts.Rules {
		rs := &ruleState{rule: r, state: AlertInactive}
		if reg := opts.Registry; reg != nil {
			name := func(n string) string {
				n = WithLabel(n, "rule", r.Name)
				if opts.Instance != "" {
					n = WithLabel(n, "array", opts.Instance)
				}
				return n
			}
			for i, st := range alertStates {
				g := reg.Gauge(WithLabel(name("esm_alerts"), "state", string(st)),
					"1 while the alert rule is in this lifecycle state, else 0.")
				if st == AlertInactive {
					g.Set(1)
				}
				rs.gauges[i] = g
			}
			rs.cTransition = reg.Counter(name("esm_alert_transitions_total"),
				"Alert-rule lifecycle transitions.")
		}
		w.rules = append(w.rules, rs)
	}
	return w
}

// Enabled reports whether the watchdog is live.
func (w *Watchdog) Enabled() bool { return w != nil }

// Rules returns the evaluated rule set in evaluation order (nil for a
// nil watchdog).
func (w *Watchdog) Rules() []Rule {
	if w == nil {
		return nil
	}
	out := make([]Rule, len(w.rules))
	for i, rs := range w.rules {
		out[i] = rs.rule
	}
	return out
}

// sampleValue extracts the named signal from a flight sample.
func sampleValue(s FlightSample, signal string) (float64, bool) {
	switch signal {
	case "enclosure_energy_j":
		return s.EnclosureEnergyJ, true
	case "total_energy_j":
		return s.TotalEnergyJ, true
	case "spin_ups":
		return float64(s.SpinUps), true
	case "cache_general_pages":
		return float64(s.CacheGeneralPages), true
	case "cache_preload_b":
		return float64(s.CachePreloadBytes), true
	case "cache_dirty_b":
		return float64(s.CacheDirtyBytes), true
	case "class_p0":
		return float64(s.ClassCounts[0]), true
	case "class_p1":
		return float64(s.ClassCounts[1]), true
	case "class_p2":
		return float64(s.ClassCounts[2]), true
	case "class_p3":
		return float64(s.ClassCounts[3]), true
	case "determinations":
		return float64(s.Determinations), true
	case "migrations":
		return float64(s.Migrations), true
	case "migrated_b":
		return float64(s.MigratedBytes), true
	case "physical_reads":
		return float64(s.PhysicalReads), true
	case "physical_writes":
		return float64(s.PhysicalWrites), true
	case "cache_hits":
		return float64(s.CacheHits), true
	case "resp_count":
		return float64(s.RespCount), true
	case "resp_mean_us":
		return float64(s.RespMean) / float64(time.Microsecond), true
	case "resp_p95_us":
		return float64(s.RespP95) / float64(time.Microsecond), true
	case "resp_p99_us":
		return float64(s.RespP99) / float64(time.Microsecond), true
	case "faults":
		return float64(s.Faults), true
	case "degraded":
		if s.Degraded {
			return 1, true
		}
		return 0, true
	}
	if rest, ok := strings.CutPrefix(signal, "enc"); ok {
		if i := strings.IndexByte(rest, '_'); i > 0 {
			if e, err := strconv.Atoi(rest[:i]); err == nil && e >= 0 && e < len(s.Enclosures) {
				es := s.Enclosures[e]
				switch rest[i+1:] {
				case "state":
					return float64(es.State), true
				case "used_b":
					return float64(es.UsedBytes), true
				case "idle_s":
					return es.IdleFor.Seconds(), true
				}
			}
		}
	}
	return 0, false
}

// Observe evaluates every rule against one flight sample at its
// simulated time. Rules whose signal the sample cannot provide (fleet
// signals, out-of-range enclosures) are skipped.
func (w *Watchdog) Observe(s FlightSample) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, rs := range w.rules {
		if v, ok := sampleValue(s, rs.rule.Signal); ok {
			w.evalLocked(rs, s.T, v)
		}
	}
}

// Final evaluates the run's closing sample. It is Observe under a name
// that marks the call site: drivers pair it with FlightRecorder.Final.
func (w *Watchdog) Final(s FlightSample) { w.Observe(s) }

// ObserveSignal evaluates only the rules reading the named signal —
// the policy bridge for instantaneous transitions (the ESM degrade
// flag) that should alert without waiting for the next sample.
func (w *Watchdog) ObserveSignal(t time.Duration, signal string, v float64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, rs := range w.rules {
		if rs.rule.Signal == signal {
			w.evalLocked(rs, t, v)
		}
	}
}

// ObserveValues evaluates rules against a named-value map — the fleet
// roll-up path, where signals are not flight-sample columns. Rules
// whose signal is absent from the map are skipped.
func (w *Watchdog) ObserveValues(t time.Duration, vals map[string]float64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, rs := range w.rules {
		if v, ok := vals[rs.rule.Signal]; ok {
			w.evalLocked(rs, t, v)
		}
	}
}

// evalLocked evaluates one rule at time t with raw signal value raw,
// advancing the lifecycle. Caller holds w.mu.
func (w *Watchdog) evalLocked(rs *ruleState, t time.Duration, raw float64) {
	v := raw
	if rs.rule.Rate {
		if !rs.haveLast {
			rs.haveLast, rs.lastT, rs.lastV = true, t, raw
			return // no derivative yet
		}
		if t == rs.lastT {
			return // same instant: derivative undefined, state unchanged
		}
		v = (raw - rs.lastV) / (t - rs.lastT).Seconds()
		rs.lastT, rs.lastV = t, raw
	}
	rs.value = v
	if rs.rule.holds(v) {
		if rs.state != AlertPending && rs.state != AlertFiring {
			rs.condSince = t
			w.transitionLocked(rs, t, AlertPending)
		}
		if rs.state == AlertPending && t-rs.condSince >= rs.rule.For {
			w.transitionLocked(rs, t, AlertFiring)
		}
	} else {
		switch rs.state {
		case AlertPending:
			w.transitionLocked(rs, t, AlertInactive)
		case AlertFiring:
			w.transitionLocked(rs, t, AlertResolved)
		}
	}
}

// transitionLocked moves one rule into next, updating metrics and
// emitting the typed event. Caller holds w.mu.
func (w *Watchdog) transitionLocked(rs *ruleState, t time.Duration, next AlertState) {
	prev := rs.state
	rs.state = next
	rs.sinceNS = int64(t)
	rs.transitions++
	w.transitions++
	if next == AlertFiring {
		rs.fired++
		w.fired++
	}
	if rs.cTransition != nil {
		rs.cTransition.Inc()
	}
	for i, st := range alertStates {
		if g := rs.gauges[i]; g != nil {
			if st == next {
				g.Set(1)
			} else {
				g.Set(0)
			}
		}
	}
	if w.rec != nil {
		ev := AlertEvent{
			Rule: rs.rule.Name, State: string(next), Prev: string(prev),
			Signal: rs.rule.Signal, Value: rs.value, Threshold: rs.rule.Threshold,
		}
		if next == AlertPending || next == AlertFiring {
			ev.SinceNS = int64(rs.condSince)
		}
		w.rec.Alert(t, ev)
	}
}

// AlertStatus is one rule's externally visible state.
type AlertStatus struct {
	Rule        string     `json:"rule"`
	Spec        string     `json:"spec"`
	Signal      string     `json:"signal"`
	State       AlertState `json:"state"`
	Value       float64    `json:"value"`
	Threshold   float64    `json:"threshold"`
	SinceNS     int64      `json:"since_ns"`
	Fired       int64      `json:"fired"`
	Transitions int64      `json:"transitions"`
}

// States returns every rule's current status in evaluation order (nil
// for a nil watchdog).
func (w *Watchdog) States() []AlertStatus {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]AlertStatus, len(w.rules))
	for i, rs := range w.rules {
		out[i] = AlertStatus{
			Rule: rs.rule.Name, Spec: rs.rule.String(), Signal: rs.rule.Signal,
			State: rs.state, Value: rs.value, Threshold: rs.rule.Threshold,
			SinceNS: rs.sinceNS, Fired: rs.fired, Transitions: rs.transitions,
		}
	}
	return out
}

// AlertSummary aggregates a watchdog's lifetime for results, manifests
// and reports. Firing and Pending count rules currently in that state;
// Fired counts lifetime entries into firing across all rules.
type AlertSummary struct {
	Rules       int   `json:"rules"`
	Firing      int   `json:"firing"`
	Pending     int   `json:"pending"`
	Fired       int64 `json:"fired"`
	Transitions int64 `json:"transitions"`
}

// Summary returns the aggregate state (zero for a nil watchdog).
func (w *Watchdog) Summary() AlertSummary {
	if w == nil {
		return AlertSummary{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	s := AlertSummary{Rules: len(w.rules), Fired: w.fired, Transitions: w.transitions}
	for _, rs := range w.rules {
		switch rs.state {
		case AlertFiring:
			s.Firing++
		case AlertPending:
			s.Pending++
		}
	}
	return s
}
