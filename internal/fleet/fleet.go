// Package fleet is the multi-array control plane of the storage
// manager: N named arrays, each a complete simulated storage unit with
// its own ESM policy instance, sharing one metric registry in which
// every instrument carries an array="<name>" label. Traces arrive live
// over streaming ingest instead of batch replay; the /fleet roll-up
// folds the per-array energy ledgers into fleet-wide joules, cost and
// carbon.
package fleet

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"esm/internal/config"
	"esm/internal/faults"
	"esm/internal/obs"
	"esm/internal/trace"
)

// Options configures a Fleet.
type Options struct {
	// Specs declares the arrays. At least one is required; names must
	// be unique.
	Specs []ArraySpec
	// Cost is the roll-up's cost/carbon model. A zero model means
	// DefaultCostModel.
	Cost CostModel
	// Registry, when non-nil, is the shared metric registry the arrays
	// populate; a fresh one is created otherwise.
	Registry *obs.Registry
	// Alerts declares fleet-wide budget rules over the /fleet roll-up
	// totals. Every rule's signal must be a fleet_* total; per-array
	// rules live in the specs. Evaluated each time the roll-up is
	// computed (a scrape of /fleet or /alerts).
	Alerts []obs.Rule
}

// Fleet is a fixed set of named live arrays over one shared registry.
// The array set is immutable after New; each array's policy can be
// hot-swapped individually.
type Fleet struct {
	reg    *obs.Registry
	cost   CostModel
	arrays map[string]*Array
	names  []string

	// wd is the fleet-wide budget watchdog; wdMu/wdLast keep concurrent
	// roll-up scrapes from feeding it observations out of time order.
	wd     *obs.Watchdog
	wdMu   sync.Mutex
	wdLast time.Duration
}

// New builds the fleet, creating every array.
func New(opts Options) (*Fleet, error) {
	if len(opts.Specs) == 0 {
		return nil, fmt.Errorf("fleet: no arrays declared")
	}
	cost := opts.Cost
	if cost == (CostModel{}) {
		cost = DefaultCostModel()
	}
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	for _, r := range opts.Alerts {
		if !r.FleetSignal() {
			return nil, fmt.Errorf("fleet: alert %q: signal %q is per-array; declare it on an array spec", r.Name, r.Signal)
		}
	}
	f := &Fleet{reg: reg, cost: cost, arrays: make(map[string]*Array, len(opts.Specs))}
	f.wd = obs.NewWatchdog(obs.WatchdogOptions{Rules: opts.Alerts, Registry: reg, Instance: "fleet"})
	for _, spec := range opts.Specs {
		if _, dup := f.arrays[spec.Name]; dup {
			f.Close()
			return nil, fmt.Errorf("fleet: array %q declared twice", spec.Name)
		}
		a, err := newArray(spec, reg)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.arrays[spec.Name] = a
		f.names = append(f.names, spec.Name)
	}
	sort.Strings(f.names)
	return f, nil
}

// FromConfig loads every array named by the fleet file — catalogs,
// placements and per-array configs come from disk relative to the
// process working directory — and builds the fleet.
func FromConfig(file *config.FleetFile) (*Fleet, error) {
	specs := make([]ArraySpec, 0, len(file.Arrays))
	for _, ac := range file.Arrays {
		spec, err := LoadArraySpec(ac)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	rules, err := obs.ParseRules(file.Alerts)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	return New(Options{
		Specs:  specs,
		Cost:   DefaultCostModel().ApplyConfig(file.Cost),
		Alerts: rules,
	})
}

// LoadArraySpec resolves one fleet-file array declaration into a spec
// with its catalog, placement, config and fault scenario loaded.
func LoadArraySpec(ac config.FleetArrayConfig) (ArraySpec, error) {
	spec := ArraySpec{Name: ac.Name, Enclosures: ac.Enclosures, Shards: ac.Shards, Provenance: ac.Provenance}
	fail := func(err error) (ArraySpec, error) {
		return ArraySpec{}, fmt.Errorf("fleet: array %q: %w", ac.Name, err)
	}
	cat, placement, err := loadDataset(ac.Catalog, ac.Placement)
	if err != nil {
		return fail(err)
	}
	spec.Catalog, spec.Placement = cat, placement
	if ac.Config != "" {
		cfg, err := config.Load(ac.Config)
		if err != nil {
			return fail(err)
		}
		spec.Config = cfg
	}
	if ac.Faults != "" {
		fc, err := faults.ParseSpec(ac.Faults)
		if err != nil {
			return fail(err)
		}
		spec.Faults = fc
	}
	if ac.SeriesInterval != nil {
		spec.SeriesInterval = time.Duration(*ac.SeriesInterval)
	}
	if len(ac.Alerts) > 0 {
		rules, err := obs.ParseRules(ac.Alerts)
		if err != nil {
			return fail(err)
		}
		spec.Alerts = rules
	}
	return spec, nil
}

// loadDataset reads a catalog and placement pair from disk.
func loadDataset(catalogPath, placementPath string) (*trace.Catalog, []int, error) {
	cf, err := os.Open(catalogPath)
	if err != nil {
		return nil, nil, err
	}
	defer cf.Close()
	cat, err := trace.ReadCatalog(cf)
	if err != nil {
		return nil, nil, err
	}
	pf, err := os.Open(placementPath)
	if err != nil {
		return nil, nil, err
	}
	defer pf.Close()
	placement, err := trace.ReadPlacement(pf)
	if err != nil {
		return nil, nil, err
	}
	if len(placement) != cat.Len() {
		return nil, nil, fmt.Errorf("placement covers %d of %d items", len(placement), cat.Len())
	}
	return cat, placement, nil
}

// Registry returns the shared metric registry.
func (f *Fleet) Registry() *obs.Registry { return f.reg }

// Cost returns the roll-up model in force.
func (f *Fleet) Cost() CostModel { return f.cost }

// Names returns the array names, sorted.
func (f *Fleet) Names() []string { return append([]string(nil), f.names...) }

// Array returns the named array, or nil.
func (f *Fleet) Array(name string) *Array { return f.arrays[name] }

// Status assembles every array's liveness snapshot, sorted by name.
func (f *Fleet) Status() []Status {
	out := make([]Status, 0, len(f.names))
	for _, name := range f.names {
		out = append(out, f.arrays[name].Status())
	}
	return out
}

// Rollup settles every array's power meter and folds the energy
// ledgers through the cost model. The fleet totals are plain sums of
// the array lines, so summed metered joules are conserved exactly.
func (f *Fleet) Rollup() Rollup {
	r := Rollup{Cost: f.cost}
	for _, name := range f.names {
		line := f.arrays[name].rollup(f.cost)
		r.Arrays = append(r.Arrays, line)
		r.Fleet.add(line)
	}
	f.observeRollup(r.Fleet)
	return r
}

// observeRollup feeds the fleet totals to the budget watchdog at the
// roll-up's span time. Scrapes race; only forward-in-time observations
// are applied, so rate() rules never see a negative interval.
func (f *Fleet) observeRollup(t Totals) {
	if f.wd == nil {
		return
	}
	f.wdMu.Lock()
	defer f.wdMu.Unlock()
	at := time.Duration(t.SpanNS)
	if at < f.wdLast {
		return
	}
	f.wdLast = at
	f.wd.ObserveValues(at, map[string]float64{
		"fleet_metered_j":         t.MeteredJ,
		"fleet_facility_j":        t.FacilityJ,
		"fleet_facility_kwh":      t.FacilityKWh,
		"fleet_cost_usd":          t.CostUSD,
		"fleet_operational_kgco2": t.OperationalKgCO2,
		"fleet_embodied_kgco2":    t.EmbodiedKgCO2,
		"fleet_total_kgco2":       t.TotalKgCO2,
		"fleet_stored_tb":         t.StoredTB,
		"fleet_records":           float64(t.Records),
		"fleet_spin_ups":          float64(t.SpinUps),
	})
}

// AlertsReport is the /alerts payload: fleet-wide budget rules, every
// array's rules, and the aggregate summary across all watchdogs.
type AlertsReport struct {
	Summary obs.AlertSummary             `json:"summary"`
	Fleet   []obs.AlertStatus            `json:"fleet,omitempty"`
	Arrays  map[string][]obs.AlertStatus `json:"arrays,omitempty"`
}

// Alerts recomputes the roll-up (so fleet budget rules reflect the
// live totals) and assembles the full alert state.
func (f *Fleet) Alerts() AlertsReport {
	f.Rollup()
	rep := AlertsReport{Fleet: f.wd.States()}
	addSummary(&rep.Summary, f.wd.Summary())
	for _, name := range f.names {
		a := f.arrays[name]
		if sts := a.Alerts(); len(sts) > 0 {
			if rep.Arrays == nil {
				rep.Arrays = make(map[string][]obs.AlertStatus)
			}
			rep.Arrays[name] = sts
		}
		addSummary(&rep.Summary, a.AlertSummary())
	}
	return rep
}

// addSummary folds one watchdog's aggregate into dst.
func addSummary(dst *obs.AlertSummary, s obs.AlertSummary) {
	dst.Rules += s.Rules
	dst.Firing += s.Firing
	dst.Pending += s.Pending
	dst.Fired += s.Fired
	dst.Transitions += s.Transitions
}

// FinishAll finalizes every array's stream (idempotent).
func (f *Fleet) FinishAll() error {
	var first error
	for _, name := range f.names {
		if err := f.arrays[name].Finish(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close closes every array's sinks.
func (f *Fleet) Close() error {
	var first error
	for _, name := range f.names {
		if err := f.arrays[name].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// rollup computes one array's roll-up line: settle the meter to the
// array's current simulated time and read the conserved totals.
func (a *Array) rollup(m CostModel) ArrayRollup {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.clk.Now()
	if a.now > now {
		now = a.now
	}
	a.arr.Finish()
	var used int64
	for e := 0; e < a.arr.Enclosures(); e++ {
		used += a.arr.Used(e)
	}
	return m.roll(a.name, now, a.arr.Meter().TotalEnergyJ(now), used, a.records, a.arr.Meter().SpinUps())
}
