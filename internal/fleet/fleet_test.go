package fleet

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"esm/internal/config"
	"esm/internal/trace"
)

// fixture builds one deterministic two-item workload: a steadily busy
// item and a periodically bursty one, enough traffic over span for
// determinations and cache activity (the replay test fixture's twin).
func fixture(t *testing.T, span time.Duration) (*trace.Catalog, []int, []trace.LogicalRecord) {
	t.Helper()
	cat := trace.NewCatalog()
	busy := cat.Add("busy", 1<<30)
	burst := cat.Add("burst", 32<<20)
	var recs []trace.LogicalRecord
	for tm := time.Duration(0); tm < span; tm += 2 * time.Second {
		recs = append(recs, trace.LogicalRecord{Time: tm, Item: busy, Offset: int64(tm), Size: 8 << 10, Op: trace.OpRead})
	}
	for start := time.Duration(0); start < span; start += 5 * time.Minute {
		for j := 0; j < 5; j++ {
			recs = append(recs, trace.LogicalRecord{Time: start + time.Duration(j)*300*time.Millisecond, Item: burst, Size: 8 << 10, Op: trace.OpWrite})
		}
	}
	trace.SortLogical(recs)
	return cat, []int{0, 1}, recs
}

func newTestFleet(t *testing.T, names ...string) (*Fleet, []trace.LogicalRecord) {
	t.Helper()
	var specs []ArraySpec
	var recs []trace.LogicalRecord
	for _, name := range names {
		cat, placement, r := fixture(t, 30*time.Minute)
		recs = r
		specs = append(specs, ArraySpec{
			Name:           name,
			Catalog:        cat,
			Placement:      placement,
			SeriesInterval: time.Minute,
		})
	}
	f, err := New(Options{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, recs
}

func feedAll(t *testing.T, a *Array, recs []trace.LogicalRecord) {
	t.Helper()
	for _, rec := range recs {
		if err := a.Feed(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFleetRejectsBadSpecs(t *testing.T) {
	cat, placement, _ := fixture(t, time.Minute)
	good := ArraySpec{Name: "a", Catalog: cat, Placement: placement}
	cases := []struct {
		name string
		opts Options
		frag string
	}{
		{"no arrays", Options{}, "no arrays"},
		{"dup name", Options{Specs: []ArraySpec{good, good}}, "declared twice"},
		{"bad name", Options{Specs: []ArraySpec{{Name: "a/b", Catalog: cat, Placement: placement}}}, "invalid character"},
		{"no catalog", Options{Specs: []ArraySpec{{Name: "a"}}}, "catalog is required"},
		{"short placement", Options{Specs: []ArraySpec{{Name: "a", Catalog: cat, Placement: []int{0}}}}, "placement covers"},
		{"wrong policy", Options{Specs: []ArraySpec{{Name: "a", Catalog: cat, Placement: placement,
			Config: &config.File{Policy: &config.PolicyConfig{Name: "pdc"}}}}}, "not supported"},
		{"bad cost", Options{Specs: []ArraySpec{good}, Cost: CostModel{PUE: 0.5, ElectricityUSDPerKWh: 1,
			GridKgCO2PerKWh: 1, ReplicationFactor: 1, EmbodiedKgCO2PerTB: 1, LifespanYears: 1}}, "PUE"},
	}
	for _, c := range cases {
		_, err := New(c.opts)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %v, want fragment %q", c.name, err, c.frag)
		}
	}
}

func TestFeedRejectsOutOfOrderAndAfterFinish(t *testing.T) {
	f, _ := newTestFleet(t, "a")
	a := f.Array("a")
	if err := a.Feed(trace.LogicalRecord{Time: time.Second, Item: 0, Size: 1 << 10, Op: trace.OpRead}); err != nil {
		t.Fatal(err)
	}
	if err := a.Feed(trace.LogicalRecord{Time: 0, Item: 0, Size: 1 << 10, Op: trace.OpRead}); err == nil {
		t.Fatal("out-of-order record accepted")
	}
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := a.Finish(); err != nil {
		t.Fatalf("Finish not idempotent: %v", err)
	}
	if err := a.Feed(trace.LogicalRecord{Time: 2 * time.Second, Item: 0, Size: 1 << 10, Op: trace.OpRead}); err == nil {
		t.Fatal("feed after finish accepted")
	}
	if !a.Finished() {
		t.Fatal("array not marked finished")
	}
}

// TestRollupConservation is the control plane's accounting gate: the
// fleet-total metered joules must equal the sum of the per-array
// metered joules to 1e-9 relative, and the per-array metered joules
// must equal each array's own settled status energy exactly.
func TestRollupConservation(t *testing.T) {
	f, recs := newTestFleet(t, "tokyo", "osaka")
	feedAll(t, f.Array("tokyo"), recs)
	// osaka sees a fraction of the traffic so the magnitudes differ.
	feedAll(t, f.Array("osaka"), recs[:len(recs)/7])
	if err := f.FinishAll(); err != nil {
		t.Fatal(err)
	}
	r := f.Rollup()
	if len(r.Arrays) != 2 || r.Arrays[0].Array != "osaka" || r.Arrays[1].Array != "tokyo" {
		t.Fatalf("rollup lines %+v", r.Arrays)
	}
	var sum float64
	for _, line := range r.Arrays {
		if line.MeteredJ <= 0 {
			t.Fatalf("%s metered %v J", line.Array, line.MeteredJ)
		}
		sum += line.MeteredJ
		st := f.Array(line.Array).Status()
		if st.EnergyJ != line.MeteredJ {
			t.Fatalf("%s: status energy %v, rollup %v", line.Array, st.EnergyJ, line.MeteredJ)
		}
	}
	if diff := math.Abs(r.Fleet.MeteredJ - sum); diff > 1e-9*sum {
		t.Fatalf("fleet metered %v J, arrays sum to %v J (diff %v)", r.Fleet.MeteredJ, sum, diff)
	}
	// The derived quantities follow the model arithmetic.
	m := r.Cost
	line := r.Arrays[1]
	if want := line.MeteredJ * m.PUE * m.ReplicationFactor; line.FacilityJ != want {
		t.Fatalf("facility %v J, want %v", line.FacilityJ, want)
	}
	if want := line.FacilityJ / 3.6e6 * m.ElectricityUSDPerKWh; line.CostUSD != want {
		t.Fatalf("cost %v, want %v", line.CostUSD, want)
	}
	if want := line.FacilityKWh * m.GridKgCO2PerKWh; line.OperationalKgCO2 != want {
		t.Fatalf("operational carbon %v, want %v", line.OperationalKgCO2, want)
	}
	if line.StoredTB <= 0 || line.EmbodiedKgCO2 <= 0 {
		t.Fatalf("embodied line %+v", line)
	}
	if line.TotalKgCO2 != line.OperationalKgCO2+line.EmbodiedKgCO2 {
		t.Fatalf("total carbon %v", line.TotalKgCO2)
	}
	if r.Fleet.Records != r.Arrays[0].Records+r.Arrays[1].Records {
		t.Fatalf("fleet records %d", r.Fleet.Records)
	}
}

func TestCostModelApplyConfigAndValidate(t *testing.T) {
	pue, price := 1.1, 0.08
	m := DefaultCostModel().ApplyConfig(&config.CostConfig{PUE: &pue, ElectricityUSDPerKWh: &price})
	if m.PUE != 1.1 || m.ElectricityUSDPerKWh != 0.08 || m.ReplicationFactor != 3 {
		t.Fatalf("applied model %+v", m)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := m
	bad.LifespanYears = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero lifespan accepted")
	}
}

// TestPolicyHotSwap: replacing the ESM instance mid-stream keeps the
// array alive — accumulated energy and counters survive, the new
// instance starts a fresh monitoring period, and feeding continues.
func TestPolicyHotSwap(t *testing.T) {
	f, recs := newTestFleet(t, "a")
	a := f.Array("a")
	half := len(recs) / 2
	feedAll(t, a, recs[:half])
	a.RefreshStatus()
	before := a.Status()
	if before.Records != int64(half) {
		t.Fatalf("fed %d records, status says %d", half, before.Records)
	}

	alpha := 1.5
	period := config.Duration(2 * time.Minute)
	cfg := &config.File{Policy: &config.PolicyConfig{
		Name: "esm", Alpha: &alpha, InitialPeriod: &period,
	}}
	if err := a.SwapPolicy(cfg); err != nil {
		t.Fatal(err)
	}
	st := a.Status()
	if st.PolicySwaps != 1 {
		t.Fatalf("swaps %d", st.PolicySwaps)
	}
	if st.PeriodNS != int64(2*time.Minute) {
		t.Fatalf("period after swap %v", time.Duration(st.PeriodNS))
	}
	if st.Determinations != 0 {
		t.Fatalf("new instance starts with %d determinations", st.Determinations)
	}

	feedAll(t, a, recs[half:])
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	final := a.Status()
	if final.Records != int64(len(recs)) {
		t.Fatalf("records %d, want %d", final.Records, len(recs))
	}
	if final.EnergyJ <= before.EnergyJ {
		t.Fatalf("energy did not keep accumulating across the swap: %v then %v", before.EnergyJ, final.EnergyJ)
	}
	if final.Determinations == 0 {
		t.Fatal("swapped-in policy never ran the management function")
	}

	// Swapping a finalized array or to a foreign policy fails.
	if err := a.SwapPolicy(cfg); err == nil {
		t.Fatal("swap after finish accepted")
	}
	b := f.Array("a")
	if err := b.SwapPolicy(&config.File{Policy: &config.PolicyConfig{Name: "none"}}); err == nil {
		t.Fatal("non-esm swap accepted")
	}
}

// TestSharedRegistryNamespacing: a fleet's arrays share one registry,
// every instrument carries the array label, and the exposition stays
// deterministic across scrapes.
func TestSharedRegistryNamespacing(t *testing.T) {
	f, recs := newTestFleet(t, "tokyo", "osaka")
	feedAll(t, f.Array("tokyo"), recs[:200])
	feedAll(t, f.Array("osaka"), recs[:100])
	var buf bytes.Buffer
	if err := f.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`esm_physical_reads_total{array="osaka"}`,
		`esm_physical_reads_total{array="tokyo"}`,
		`esm_monitoring_period_seconds{array="osaka"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %s", want)
		}
	}
	// Sample lines (not HELP/TYPE headers) must all carry the label.
	if strings.Contains(text, "\nesm_physical_reads_total ") {
		t.Error("exposition has an un-namespaced series")
	}
	var buf2 bytes.Buffer
	if err := f.Registry().WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("consecutive scrapes differ")
	}
}

// TestStatusLiveness: the snapshot exposes the ingest counters and the
// flight recorder's progress (the "is it actually moving" satellite).
func TestStatusLiveness(t *testing.T) {
	f, recs := newTestFleet(t, "a")
	a := f.Array("a")
	var buf bytes.Buffer
	w := trace.NewNDJSONWriter(&buf)
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	n, err := a.IngestNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(recs)) {
		t.Fatalf("ingested %d of %d", n, len(recs))
	}
	st := a.Status()
	if st.IngestRequests != 1 || st.IngestRecords != int64(len(recs)) {
		t.Fatalf("ingest counters %d/%d", st.IngestRequests, st.IngestRecords)
	}
	if st.SeriesSamples < 2 {
		t.Fatalf("series samples %d", st.SeriesSamples)
	}
	if st.SeriesLastTNS <= 0 {
		t.Fatalf("series last t %d", st.SeriesLastTNS)
	}
	if st.TimeNS <= 0 || st.Records != int64(len(recs)) {
		t.Fatalf("snapshot %+v", st)
	}
}

func TestIngestFormatsAgree(t *testing.T) {
	f, recs := newTestFleet(t, "nd", "csv", "bin")
	recs = recs[:500]

	var nd bytes.Buffer
	w := trace.NewNDJSONWriter(&nd)
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	if _, err := f.Array("nd").IngestNDJSON(&nd); err != nil {
		t.Fatal(err)
	}

	var csv bytes.Buffer
	if err := trace.WriteCSV(&csv, recs); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Array("csv").IngestCSV(&csv); err != nil {
		t.Fatal(err)
	}

	var bin bytes.Buffer
	sw := trace.NewStreamWriter(&bin)
	for _, rec := range recs {
		if err := sw.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Array("bin").IngestStream(&bin); err != nil {
		t.Fatal(err)
	}

	if err := f.FinishAll(); err != nil {
		t.Fatal(err)
	}
	ndSt, csvSt, binSt := f.Array("nd").Status(), f.Array("csv").Status(), f.Array("bin").Status()
	if ndSt.Records != csvSt.Records || ndSt.Records != binSt.Records {
		t.Fatalf("record counts diverge: %d/%d/%d", ndSt.Records, csvSt.Records, binSt.Records)
	}
	if ndSt.EnergyJ != csvSt.EnergyJ || ndSt.EnergyJ != binSt.EnergyJ {
		t.Fatalf("energy diverges across wire formats: %v/%v/%v", ndSt.EnergyJ, csvSt.EnergyJ, binSt.EnergyJ)
	}
}
