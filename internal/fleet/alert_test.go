package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"esm/internal/obs"
)

// mustRules parses a rule list or fails the test.
func mustRules(t *testing.T, specs ...string) []obs.Rule {
	t.Helper()
	rules, err := obs.ParseRules(specs)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

// alertFleet builds a one-array fleet with a per-array energy rule and
// a fleet-wide metered-joules budget rule, both tight enough to fire on
// any non-trivial trace.
func alertFleet(t *testing.T) (*Fleet, []ArraySpec) {
	t.Helper()
	cat, placement, _ := fixture(t, 30*time.Minute)
	specs := []ArraySpec{{
		Name:           "a",
		Catalog:        cat,
		Placement:      placement,
		SeriesInterval: time.Minute,
		Alerts:         mustRules(t, "energy:total_energy_j>1:for=2m"),
	}}
	f, err := New(Options{
		Specs:  specs,
		Alerts: mustRules(t, "budget:fleet_metered_j>1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, specs
}

// TestAlertsAndHealthEndpoints drives the /alerts and /healthz surfaces
// end to end: readiness flips once ingest lands, the per-array and
// fleet-wide rules fire against a live trace, and the per-array verb
// returns the same states as the fleet-wide report.
func TestAlertsAndHealthEndpoints(t *testing.T) {
	f, _ := alertFleet(t)
	_, _, recs := fixture(t, 30*time.Minute)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	var h Health
	if err := json.Unmarshal(get(t, srv.URL+"/healthz"), &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || len(h.Arrays) != 1 || h.Arrays[0].Live {
		t.Fatalf("pre-ingest health %+v", h)
	}

	postNDJSON(t, srv.URL, "a", recs, len(recs))

	if err := json.Unmarshal(get(t, srv.URL+"/healthz"), &h); err != nil {
		t.Fatal(err)
	}
	a := h.Arrays[0]
	if !h.OK || !a.Live || !a.Finished || a.IngestRecords != int64(len(recs)) || a.SeriesSamples == 0 {
		t.Fatalf("post-ingest health %+v", h)
	}

	var rep AlertsReport
	if err := json.Unmarshal(get(t, srv.URL+"/alerts"), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Rules != 2 {
		t.Fatalf("want 2 rules in the aggregate, got %+v", rep.Summary)
	}
	if rep.Summary.Firing != 2 || rep.Summary.Fired != 2 {
		t.Fatalf("both tight rules should be firing: %+v", rep.Summary)
	}
	if len(rep.Fleet) != 1 || rep.Fleet[0].Rule != "budget" || rep.Fleet[0].State != obs.AlertFiring {
		t.Fatalf("fleet budget rule: %+v", rep.Fleet)
	}
	if len(rep.Arrays["a"]) != 1 || rep.Arrays["a"][0].Rule != "energy" || rep.Arrays["a"][0].State != obs.AlertFiring {
		t.Fatalf("array rule: %+v", rep.Arrays)
	}

	var one struct {
		Array   string            `json:"array"`
		Summary obs.AlertSummary  `json:"summary"`
		Rules   []obs.AlertStatus `json:"rules"`
	}
	if err := json.Unmarshal(get(t, srv.URL+"/arrays/a/alerts"), &one); err != nil {
		t.Fatal(err)
	}
	if one.Array != "a" || one.Summary.Firing != 1 || len(one.Rules) != 1 || one.Rules[0].Rule != "energy" {
		t.Fatalf("per-array alerts payload: %+v", one)
	}

	// The rule-state gauges land in the shared registry with the
	// array="<name>" / array="fleet" instance labels.
	metrics := string(get(t, srv.URL+"/metrics"))
	for _, want := range []string{
		`esm_alerts{array="a",rule="energy",state="firing"} 1`,
		`esm_alerts{array="fleet",rule="budget",state="firing"} 1`,
		`esm_alert_transitions_total{array="a",rule="energy"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestConcurrentAlertScrapes hammers /alerts (which recomputes the
// roll-up and feeds the fleet watchdog) and /healthz from several
// clients while the array ingests — the -race gate for the watchdog's
// locking against the tick and scrape paths.
func TestConcurrentAlertScrapes(t *testing.T) {
	f, _ := alertFleet(t)
	_, _, recs := fixture(t, 30*time.Minute)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, path := range []string{"/alerts", "/alerts", "/healthz", "/arrays/a/alerts", "/metrics"} {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(srv.URL + path)
	}

	a := f.Array("a")
	for _, rec := range recs {
		if err := a.Feed(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	rep := f.Alerts()
	if rep.Summary.Rules != 2 || rep.Summary.Firing != 2 {
		t.Fatalf("post-race alert state: %+v", rep.Summary)
	}
}
