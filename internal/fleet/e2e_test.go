package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"esm/internal/core"
	"esm/internal/obs"
	"esm/internal/replay"
	"esm/internal/storage"
	"esm/internal/trace"
)

// postNDJSON streams recs to the array's ingest endpoint in chunks of
// chunk records per request, finalizing with the last one.
func postNDJSON(t *testing.T, base, array string, recs []trace.LogicalRecord, chunk int) {
	t.Helper()
	for start := 0; start < len(recs); start += chunk {
		end := start + chunk
		if end > len(recs) {
			end = len(recs)
		}
		var buf bytes.Buffer
		w := trace.NewNDJSONWriter(&buf)
		for _, rec := range recs[start:end] {
			if err := w.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		url := base + "/arrays/" + array + "/ingest"
		if end == len(recs) {
			url += "?final=1"
		}
		resp, err := http.Post(url, "application/x-ndjson", &buf)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest [%d:%d]: %s: %s", start, end, resp.Status, body)
		}
	}
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body
}

// TestLiveIngestMatchesOfflineReplay is the acceptance gate of the
// control plane: two arrays fed the same trace over live chunked
// NDJSON ingest must produce flight series and energy totals
// byte-identical to an offline replay.Execute of the same trace on the
// same sampling grid — the wire adds nothing and loses nothing.
func TestLiveIngestMatchesOfflineReplay(t *testing.T) {
	span := 30 * time.Minute
	interval := time.Minute
	_, _, recs := fixture(t, span)
	last := recs[len(recs)-1].Time

	// Offline reference: replay the same records with the same flight
	// grid. Fresh catalog so no state leaks between the sides.
	cat, placement, _ := fixture(t, span)
	esm, err := core.NewESM(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	flight := obs.NewFlightRecorder(obs.FlightOptions{Interval: interval})
	res, err := replay.Execute(replay.Run{
		Catalog:   cat,
		Source:    trace.NewSliceSource(recs),
		Placement: placement,
		Storage:   storage.DefaultConfig(2),
		Policy:    esm,
		Duration:  last,
		Series:    flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	var offlineCSV bytes.Buffer
	if err := res.Series.WriteCSV(&offlineCSV); err != nil {
		t.Fatal(err)
	}

	// Live side: two identically configured arrays behind the HTTP
	// control plane, fed the same records in different chunkings.
	var specs []ArraySpec
	for _, name := range []string{"alpha", "beta"} {
		c, p, _ := fixture(t, span)
		specs = append(specs, ArraySpec{Name: name, Catalog: c, Placement: p, SeriesInterval: interval})
	}
	f, err := New(Options{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	postNDJSON(t, srv.URL, "alpha", recs, 97)
	postNDJSON(t, srv.URL, "beta", recs, len(recs))

	for _, name := range []string{"alpha", "beta"} {
		liveCSV := get(t, srv.URL+"/arrays/"+name+"/series?format=csv")
		if !bytes.Equal(liveCSV, offlineCSV.Bytes()) {
			t.Errorf("%s: live series differs from offline replay (%d vs %d bytes)",
				name, len(liveCSV), offlineCSV.Len())
		}
		var st Status
		if err := json.Unmarshal(get(t, srv.URL+"/arrays/"+name+"/status"), &st); err != nil {
			t.Fatal(err)
		}
		if st.EnergyJ != res.EnergyJ {
			t.Errorf("%s: live energy %v J, offline %v J", name, st.EnergyJ, res.EnergyJ)
		}
		if st.SpinUps != res.SpinUps || st.MigratedBytes != res.Storage.MigratedBytes ||
			st.CacheHits != res.Storage.CacheHits || st.Determinations != res.Determinations {
			t.Errorf("%s: counters diverge: %+v vs %+v", name, st, res)
		}
		if st.Records != int64(len(recs)) || !st.Finished {
			t.Errorf("%s: records %d finished %v", name, st.Records, st.Finished)
		}
	}

	// The /fleet roll-up over the finalized arrays conserves the summed
	// per-array joules to 1e-9 relative.
	var roll Rollup
	if err := json.Unmarshal(get(t, srv.URL+"/fleet"), &roll); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, line := range roll.Arrays {
		sum += line.MeteredJ
	}
	if diff := roll.Fleet.MeteredJ - sum; diff > 1e-9*sum || diff < -1e-9*sum {
		t.Fatalf("fleet %v J vs sum %v J", roll.Fleet.MeteredJ, sum)
	}
	if want := 2 * res.EnergyJ; roll.Fleet.MeteredJ != want {
		t.Fatalf("fleet metered %v J, twice the offline run is %v J", roll.Fleet.MeteredJ, want)
	}
}

// TestConcurrentScrapes drives two arrays while HTTP clients hammer
// every read endpoint — the -race gate for the shared registry,
// status snapshots and roll-up locking.
func TestConcurrentScrapes(t *testing.T) {
	f, recs := newTestFleet(t, "a", "b")
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, path := range []string{"/metrics", "/status", "/fleet", "/arrays/", "/arrays/a/status", "/arrays/a/series", "/arrays/b/series?format=csv"} {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(srv.URL + path)
	}

	var feeders sync.WaitGroup
	for _, name := range []string{"a", "b"} {
		feeders.Add(1)
		go func(a *Array) {
			defer feeders.Done()
			for _, rec := range recs {
				if err := a.Feed(rec); err != nil {
					t.Error(err)
					return
				}
			}
			if err := a.Finish(); err != nil {
				t.Error(err)
			}
		}(f.Array(name))
	}
	feeders.Wait()
	close(stop)
	wg.Wait()

	// Post-race sanity: both arrays processed everything and the
	// roll-up still conserves.
	r := f.Rollup()
	if r.Fleet.Records != int64(2*len(recs)) {
		t.Fatalf("fleet records %d, want %d", r.Fleet.Records, 2*len(recs))
	}
	sum := r.Arrays[0].MeteredJ + r.Arrays[1].MeteredJ
	if diff := r.Fleet.MeteredJ - sum; diff > 1e-9*sum || diff < -1e-9*sum {
		t.Fatalf("fleet %v J vs sum %v J", r.Fleet.MeteredJ, sum)
	}
}

// TestHTTPEndpoints covers the control-plane routing: listing,
// unknown arrays and verbs, content-type negotiation, final
// semantics and policy hot-swap over the wire.
func TestHTTPEndpoints(t *testing.T) {
	f, recs := newTestFleet(t, "a")
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	var list struct {
		Arrays []string `json:"arrays"`
	}
	if err := json.Unmarshal(get(t, srv.URL+"/arrays/"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Arrays) != 1 || list.Arrays[0] != "a" {
		t.Fatalf("array list %v", list.Arrays)
	}

	status := func(method, url, ctype string, body io.Reader) int {
		req, err := http.NewRequest(method, url, body)
		if err != nil {
			t.Fatal(err)
		}
		if ctype != "" {
			req.Header.Set("Content-Type", ctype)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status(http.MethodGet, srv.URL+"/arrays/nope/status", "", nil); got != http.StatusNotFound {
		t.Errorf("unknown array: %d", got)
	}
	if got := status(http.MethodGet, srv.URL+"/arrays/a/bogus", "", nil); got != http.StatusNotFound {
		t.Errorf("unknown verb: %d", got)
	}
	if got := status(http.MethodGet, srv.URL+"/arrays/a/ingest", "", nil); got != http.StatusMethodNotAllowed {
		t.Errorf("GET ingest: %d", got)
	}
	if got := status(http.MethodPost, srv.URL+"/arrays/a/ingest", "application/x-tar", strings.NewReader("x")); got != http.StatusUnsupportedMediaType {
		t.Errorf("bad content type: %d", got)
	}
	if got := status(http.MethodPost, srv.URL+"/arrays/a/ingest", "application/x-ndjson", strings.NewReader("not json\n")); got != http.StatusBadRequest {
		t.Errorf("garbage body: %d", got)
	}

	// CSV ingest over the wire, with a charset parameter to exercise
	// media-type parsing.
	var csv bytes.Buffer
	if err := trace.WriteCSV(&csv, recs[:100]); err != nil {
		t.Fatal(err)
	}
	if got := status(http.MethodPost, srv.URL+"/arrays/a/ingest", "text/csv; charset=utf-8", &csv); got != http.StatusOK {
		t.Errorf("csv ingest: %d", got)
	}

	// Hot-swap over the wire.
	swap := `{"policy": {"name": "esm", "alpha": 1.5}}`
	if got := status(http.MethodPost, srv.URL+"/arrays/a/config", "application/json", strings.NewReader(swap)); got != http.StatusOK {
		t.Errorf("config swap: %d", got)
	}
	if got := status(http.MethodPost, srv.URL+"/arrays/a/config", "application/json", strings.NewReader(`{"policy":{"name":"maid"}}`)); got != http.StatusConflict {
		t.Errorf("foreign policy swap: %d", got)
	}

	// Finalize with an empty final POST, then further ingest conflicts.
	if got := status(http.MethodPost, srv.URL+"/arrays/a/ingest?final=1", "application/x-ndjson", strings.NewReader("")); got != http.StatusOK {
		t.Errorf("final: %d", got)
	}
	var st Status
	if err := json.Unmarshal(get(t, srv.URL+"/arrays/a/status"), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Finished || st.Records != 100 || st.IngestRequests != 3 {
		t.Fatalf("final status %+v", st)
	}
	var bad bytes.Buffer
	fmt.Fprintln(&bad, `{"t_ns":99999999999999,"item":0,"off":0,"size":1,"op":"R"}`)
	if got := status(http.MethodPost, srv.URL+"/arrays/a/ingest", "application/x-ndjson", &bad); got != http.StatusBadRequest {
		t.Errorf("ingest after final: %d", got)
	}
}
