// One managed array of the fleet: a complete simulated storage unit —
// its own virtual clock, event queue, array, ESM policy instance and
// telemetry surfaces — driven record by record from a live ingest
// stream instead of a batch replay. The feed path reproduces
// replay.Execute's open-loop body and end-of-stream sequence exactly,
// on the same flight-sampling grid, so an array fed a trace over the
// wire settles to bit-identical energy and series values as an offline
// replay of the same trace.

package fleet

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"esm/internal/config"
	"esm/internal/core"
	"esm/internal/faults"
	"esm/internal/metrics"
	"esm/internal/obs"
	"esm/internal/policy"
	"esm/internal/replay"
	"esm/internal/simclock"
	"esm/internal/storage"
	"esm/internal/trace"
)

// planningHorizon is the policy End handed to ESM instances: a live
// stream's length is unknown up front, so the horizon is simply
// generous (matching single-array esmd).
const planningHorizon = 1000 * time.Hour

// ArraySpec declares one array of the fleet with its data set loaded.
type ArraySpec struct {
	// Name identifies the array in URLs and in the array="<name>" label
	// of every metric it registers. Required; validated by
	// config.ValidateArrayName.
	Name string
	// Catalog and Placement are the item catalog and the initial
	// enclosure of every item, indexed by ItemID. Required.
	Catalog   *trace.Catalog
	Placement []int
	// Config optionally overrides storage and ESM parameters (nil =
	// paper defaults). The policy must be the proposed method.
	Config *config.File
	// Enclosures overrides the enclosure count (0 = infer from the
	// placement).
	Enclosures int
	// Faults, when non-nil, is the fault scenario injected into the
	// array's simulation.
	Faults *faults.Config
	// Shards is the shard count for the sharded deterministic engine:
	// 0 or 1 feeds the stream serially, N > 1 runs enclosure groups on
	// N worker lanes (clamped to the enclosure count) with byte-identical
	// results. Ignored when Faults is set — fault draws consume one
	// shared RNG stream in global order, so fault runs stay serial.
	Shards int
	// SeriesInterval is the flight-recorder sampling interval on the
	// simulated clock (0 = 30s, like esmd -series-interval).
	SeriesInterval time.Duration
	// SeriesMaxSamples bounds the flight recorder's stored samples
	// (0 = obs.DefaultFlightMaxSamples).
	SeriesMaxSamples int
	// EventSink, when non-nil, receives the array's telemetry event
	// stream (closed by Array.Close).
	EventSink obs.Sink
	// SpanSink, when non-nil, attaches a per-I/O span tracer feeding it
	// (closed by Array.Close). Note that a tracer settles the power
	// meter at snapshot times, which perturbs float rounding relative
	// to an untraced offline replay.
	SpanSink obs.SpanSink
	// StatusOut, when non-nil, gets a human-readable line per placement
	// determination (single-array esmd's non-quiet mode).
	StatusOut io.Writer
	// Alerts is the array's watchdog rule set, evaluated on the flight
	// sampling grid (and the policy's degrade bridge) against this
	// array's samples. Fleet-wide fleet_* rules belong in
	// Options.Alerts, not here.
	Alerts []obs.Rule
	// Provenance enables the decision-provenance ledger: determination
	// inputs/outputs plus power/migration/preload/destage context,
	// served live at /arrays/<name>/provenance.
	Provenance bool
	// ProvenanceMaxRecords bounds the ledger's stored rows
	// (0 = the obs default).
	ProvenanceMaxRecords int
}

// Status is the JSON liveness snapshot of one array — the fleet form
// of single-array esmd's /status payload, extended with the ingest and
// flight-recorder counters that show the stream is actually moving.
type Status struct {
	Array          string                 `json:"array"`
	TimeNS         int64                  `json:"t_ns"`
	Records        int64                  `json:"records"`
	Determinations int64                  `json:"determinations"`
	Period         string                 `json:"period"`
	PeriodNS       int64                  `json:"period_ns"`
	HotMask        []bool                 `json:"hot_mask,omitempty"`
	PatternMix     map[string]int         `json:"pattern_mix,omitempty"`
	SpinUps        int                    `json:"spin_ups"`
	MigratedBytes  int64                  `json:"migrated_bytes"`
	CacheHits      int64                  `json:"cache_hits"`
	AvgEnclosureW  float64                `json:"avg_enclosure_w"`
	EnergyJ        float64                `json:"energy_j"`
	Cache          storage.CacheOccupancy `json:"cache"`
	Faults         int64                  `json:"faults,omitempty"`
	FailedIOs      int64                  `json:"failed_ios,omitempty"`
	Degraded       bool                   `json:"degraded,omitempty"`
	Degradations   int64                  `json:"degradations,omitempty"`
	Latency        *obs.LatencySummary    `json:"latency,omitempty"`
	Attribution    *obs.Attribution       `json:"attribution,omitempty"`
	Alerts         *obs.AlertSummary      `json:"alerts,omitempty"`
	Provenance     *obs.ProvenanceSummary `json:"provenance,omitempty"`

	// Liveness: how much has arrived over the ingest surfaces, and how
	// far the flight recorder has sampled.
	IngestRequests int64 `json:"ingest_requests"`
	IngestRecords  int64 `json:"ingest_records"`
	SeriesSamples  int   `json:"series_samples"`
	SeriesLastTNS  int64 `json:"series_last_t_ns"`
	PolicySwaps    int64 `json:"policy_swaps,omitempty"`
	Finished       bool  `json:"finished,omitempty"`
	// Shards is the sharded engine's worker-lane count (0 = serial feed).
	Shards int `json:"shards,omitempty"`
}

// Array is one live simulated storage unit. All simulation state is
// guarded by mu; Status and Series are safe from HTTP goroutines.
type Array struct {
	name       string
	enclosures int
	statusOut  io.Writer

	// mu guards the entire simulation below. Feed, Finish, SwapPolicy
	// and rollup all hold it; the simulated clock of one array never
	// advances concurrently with itself.
	mu      sync.Mutex
	clk     *simclock.Clock
	evq     *simclock.EventQueue
	arr     *storage.Array
	esm     *core.ESM
	inj     *faults.Injector
	cat     *trace.Catalog
	now     time.Duration
	records int64
	lastDet int64
	resp    metrics.ResponseStats
	swaps   int64
	done    bool

	rec    *obs.Recorder
	trc    *obs.Tracer
	flight *obs.FlightRecorder
	wd     *obs.Watchdog
	prov   *obs.Provenance

	// feeder, when non-nil, routes fault-free feeds through the sharded
	// deterministic engine; shards is its effective lane count (for
	// status). The feeder is serialized under mu like everything else.
	feeder *replay.ShardedFeeder
	shards int

	ingestRequests atomic.Int64
	ingestRecords  atomic.Int64

	snapMu sync.Mutex
	snap   Status
}

// newArray builds one array onto the shared fleet registry (nil for an
// unregistered array).
func newArray(spec ArraySpec, reg *obs.Registry) (*Array, error) {
	if err := config.ValidateArrayName(spec.Name); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	if spec.Catalog == nil {
		return nil, fmt.Errorf("fleet: array %q: catalog is required", spec.Name)
	}
	if len(spec.Placement) != spec.Catalog.Len() {
		return nil, fmt.Errorf("fleet: array %q: placement covers %d of %d items",
			spec.Name, len(spec.Placement), spec.Catalog.Len())
	}
	enclosures := spec.Enclosures
	if enclosures == 0 {
		for _, e := range spec.Placement {
			if e+1 > enclosures {
				enclosures = e + 1
			}
		}
	}
	cfgFile := spec.Config
	if cfgFile == nil {
		cfgFile = &config.File{}
	}
	if cfgFile.Policy != nil && cfgFile.Policy.Name != "" && cfgFile.Policy.Name != "esm" {
		return nil, fmt.Errorf("fleet: array %q: the control plane always runs the proposed method; policy %q is not supported",
			spec.Name, cfgFile.Policy.Name)
	}
	storageCfg, err := cfgFile.BuildStorage(enclosures)
	if err != nil {
		return nil, fmt.Errorf("fleet: array %q: %w", spec.Name, err)
	}

	rec := obs.New(obs.Options{
		Registry: reg,
		Sink:     spec.EventSink,
		Label:    spec.Name,
		Instance: spec.Name,
	})
	var trc *obs.Tracer
	if spec.SpanSink != nil {
		trc = obs.NewTracer(obs.TracerOptions{
			Sink:       spec.SpanSink,
			Registry:   reg,
			Instance:   spec.Name,
			Enclosures: enclosures,
		})
	}

	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := storage.New(storageCfg, clk, evq, spec.Catalog)
	if err != nil {
		return nil, fmt.Errorf("fleet: array %q: %w", spec.Name, err)
	}
	// The tracer attaches before placement so the energy ledger's
	// residency accounting sees every item land on its home enclosure.
	if trc != nil {
		arr.SetTracer(trc)
	}
	for item, enc := range spec.Placement {
		if err := arr.Place(trace.ItemID(item), enc); err != nil {
			return nil, fmt.Errorf("fleet: array %q: %w", spec.Name, err)
		}
	}
	esm, err := buildESM(cfgFile)
	if err != nil {
		return nil, fmt.Errorf("fleet: array %q: %w", spec.Name, err)
	}
	arr.SetRecorder(rec)
	esm.SetRecorder(rec)
	if trc != nil {
		esm.SetTracer(trc)
	}
	every := spec.SeriesInterval
	if every <= 0 {
		every = 30 * time.Second
	}
	flight := obs.NewFlightRecorder(obs.FlightOptions{
		Interval:   every,
		MaxSamples: spec.SeriesMaxSamples,
	})
	esm.SetFlightRecorder(flight)
	// The watchdog shares the array's recorder (sequence-consistent
	// alert events) and the fleet registry (array-labelled instruments).
	wd := obs.NewWatchdog(obs.WatchdogOptions{
		Rules:    spec.Alerts,
		Recorder: rec,
		Registry: reg,
		Instance: spec.Name,
	})
	esm.SetWatchdog(wd)
	var prov *obs.Provenance
	if spec.Provenance {
		prov = obs.NewProvenance(obs.ProvenanceOptions{
			MaxRecords: spec.ProvenanceMaxRecords,
			IdleW:      arr.Config().Power.IdleW,
			SpinUpTime: arr.Config().Power.SpinUpTime,
		})
		arr.SetProvenance(prov)
		esm.SetProvenance(prov)
	}
	var inj *faults.Injector
	if spec.Faults != nil {
		inj, err = faults.NewInjector(*spec.Faults)
		if err != nil {
			return nil, fmt.Errorf("fleet: array %q: %w", spec.Name, err)
		}
		arr.SetFaultInjector(inj)
	}

	a := &Array{
		name:       spec.Name,
		enclosures: enclosures,
		statusOut:  spec.StatusOut,
		clk:        clk,
		evq:        evq,
		arr:        arr,
		esm:        esm,
		inj:        inj,
		cat:        spec.Catalog,
		rec:        rec,
		trc:        trc,
		flight:     flight,
		wd:         wd,
		prov:       prov,
	}
	// The array's observers dispatch through the Array so a hot-swapped
	// policy starts seeing events without rewiring; they only fire
	// during Submit/RunUntil, i.e. with a.mu held.
	arr.SetPhysicalObserver(func(rec trace.PhysicalRecord) { a.esm.OnPhysical(rec) })
	arr.SetPowerObserver(func(e int, at time.Duration, on bool) { a.esm.OnPower(e, at, on) })
	if inj != nil {
		arr.SetFaultObserver(func(ev faults.Event) { a.esm.OnFault(ev) })
	}
	esm.Init(&policy.Context{Array: arr, Catalog: spec.Catalog, Clock: clk, Queue: evq, End: planningHorizon})

	// With shards > 1 and no fault injector, the live feed runs on the
	// sharded deterministic engine: the feeder owns the event pump and
	// installs itself as the array's sync hook, so status snapshots and
	// policy actions barrier transparently. The OnLogical indirection
	// keeps a hot-swapped policy wired, like the observers above.
	if smap := storage.NewShardMap(enclosures, spec.Shards); smap.Shards() > 1 && inj == nil {
		a.feeder = replay.NewShardedFeeder(replay.FeederOptions{
			Array: arr, Clock: clk, Queue: evq, Shards: smap,
			OnLogical: func(rec trace.LogicalRecord) { a.esm.OnLogical(rec) },
			Resp:      &a.resp,
			Tracer:    trc,
			Physical:  func(rec trace.PhysicalRecord) { a.esm.OnPhysical(rec) },
		})
		a.shards = smap.Shards()
	}

	// Self-rescheduling flight sampler on the simulated clock, the same
	// grid replay.Execute uses: a t=0 baseline row, then one sample per
	// interval as the feed's RunUntil sweeps past it.
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		s := a.sampleLocked(now)
		a.flight.Record(s)
		a.wd.Observe(s)
		a.evq.Schedule(now+every, tick)
	}
	s0 := a.sampleLocked(0)
	flight.Record(s0)
	wd.Observe(s0)
	evq.Schedule(every, tick)
	a.updateSnapshotLocked(0)
	return a, nil
}

// buildESM constructs the proposed method from cfg, rejecting other
// policies.
func buildESM(cfg *config.File) (*core.ESM, error) {
	if cfg.Policy != nil && cfg.Policy.Name != "" && cfg.Policy.Name != "esm" {
		return nil, fmt.Errorf("policy %q is not supported here (esm only)", cfg.Policy.Name)
	}
	pol, err := cfg.BuildPolicy()
	if err != nil {
		return nil, err
	}
	esm, ok := pol.(*core.ESM)
	if !ok {
		return nil, fmt.Errorf("policy %q is not the proposed method", pol.Name())
	}
	return esm, nil
}

// Name returns the array's fleet-unique name.
func (a *Array) Name() string { return a.name }

// Enclosures returns the enclosure count.
func (a *Array) Enclosures() int { return a.enclosures }

// Feed drives one logical record through the simulation: advance the
// virtual clock to the record's time (firing any management and
// sampling events on the way), show the record to the policy, submit
// it to the array. Records must arrive in time order; injected faults
// kill the individual I/O, not the stream.
func (a *Array) Feed(rec trace.LogicalRecord) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.feedLocked(rec)
}

func (a *Array) feedLocked(rec trace.LogicalRecord) error {
	if a.done {
		return fmt.Errorf("fleet: array %q: stream already finalized", a.name)
	}
	if rec.Time < a.now {
		return fmt.Errorf("fleet: array %q: record out of order (%v after %v)", a.name, rec.Time, a.now)
	}
	a.now = rec.Time
	if a.feeder != nil {
		// Sharded path: the feeder pumps the event queue with barriers,
		// delivers OnLogical and accumulates into a.resp itself.
		if err := a.feeder.Feed(rec); err != nil {
			return fmt.Errorf("fleet: array %q: %w", a.name, err)
		}
	} else {
		a.evq.RunUntil(a.clk, rec.Time)
		a.esm.OnLogical(rec)
		if out, err := a.arr.Submit(rec); err != nil {
			var fe *storage.FaultError
			if !errors.As(err, &fe) {
				return fmt.Errorf("fleet: array %q: %w", a.name, err)
			}
		} else {
			a.resp.Add(rec.Op, out.Response)
		}
	}
	a.records++
	a.afterRecordLocked()
	return nil
}

// afterRecordLocked refreshes the status snapshot on determination
// boundaries (and every 1024 records), printing the determination line
// when a StatusOut is attached.
func (a *Array) afterRecordLocked() {
	det := a.esm.Determinations()
	newDet := det != a.lastDet
	a.lastDet = det
	if newDet || a.records%1024 == 0 {
		a.updateSnapshotLocked(a.now)
	}
	if !newDet || a.statusOut == nil {
		return
	}
	hot := 0
	for _, h := range a.esm.Hot() {
		if h {
			hot++
		}
	}
	var mix core.PatternMix
	if plan := a.esm.LastPlan(); plan != nil {
		for _, p := range plan.Patterns {
			mix.Counts[p]++
			mix.Total++
		}
	}
	st := a.arr.Stats()
	fmt.Fprintf(a.statusOut, "[%s %v] determination #%d: %d/%d hot enclosures, period %v, %s, avg %.1f W, %d spin-ups, %.2f GB migrated\n",
		a.name, a.now.Round(time.Second), det, hot, a.enclosures,
		a.esm.Period().Round(time.Second), mix.String(),
		a.arr.Meter().AverageEnclosureW(a.now),
		a.arr.Meter().SpinUps(), float64(st.MigratedBytes)/(1<<30))
}

// Finish finalizes the stream: run the queue out to the last record's
// time, let the policy finish, flush delayed writes, settle the power
// meter and force the closing flight sample — the exact end sequence
// of replay.Execute. Idempotent; further Feeds fail.
func (a *Array) Finish() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.finishLocked()
}

func (a *Array) finishLocked() error {
	if a.done {
		return nil
	}
	a.done = true
	end := a.now
	if a.clk.Now() > end {
		end = a.clk.Now()
	}
	if a.feeder != nil {
		a.feeder.RunUntil(end)
	} else {
		a.evq.RunUntil(a.clk, end)
	}
	a.esm.Finish(end)
	a.arr.FlushAll()
	a.arr.Finish()
	if a.feeder != nil {
		err := a.feeder.Close()
		a.feeder = nil
		if err != nil {
			return fmt.Errorf("fleet: array %q: %w", a.name, err)
		}
	}
	s := a.sampleLocked(end)
	a.flight.Final(s)
	a.wd.Final(s)
	a.updateSnapshotLocked(end)
	return nil
}

// Finished reports whether the stream has been finalized.
func (a *Array) Finished() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.done
}

// SwapPolicy replaces the running ESM instance with one built from
// cfg's policy section — live reconfiguration without restarting the
// array or losing any accumulated energy, placement or cache state.
// The outgoing instance's pending wake-up is cancelled; the incoming
// one starts a fresh monitoring period at the current simulated time
// and relearns access patterns from scratch. cfg's storage section is
// ignored: the physical array is fixed at creation.
func (a *Array) SwapPolicy(cfg *config.File) error {
	if cfg == nil {
		cfg = &config.File{}
	}
	esm, err := buildESM(cfg)
	if err != nil {
		return fmt.Errorf("fleet: array %q: %w", a.name, err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.done {
		return fmt.Errorf("fleet: array %q: stream already finalized", a.name)
	}
	a.esm.Stop()
	esm.SetRecorder(a.rec)
	if a.trc != nil {
		esm.SetTracer(a.trc)
	}
	esm.SetFlightRecorder(a.flight)
	esm.SetWatchdog(a.wd)
	esm.SetProvenance(a.prov)
	a.esm = esm
	a.lastDet = 0
	esm.Init(&policy.Context{Array: a.arr, Catalog: a.cat, Clock: a.clk, Queue: a.evq, End: planningHorizon})
	a.swaps++
	a.updateSnapshotLocked(a.now)
	return nil
}

// IngestNDJSON feeds newline-delimited JSON records (the native wire
// format of POST /arrays/<name>/ingest) and returns how many were
// applied. Decoding happens outside the array lock, so a slow network
// stream never blocks scrapes.
func (a *Array) IngestNDJSON(r io.Reader) (int64, error) {
	dec := trace.NewNDJSONReader(r)
	return a.ingest(func() (trace.LogicalRecord, error) { return dec.Next() })
}

// IngestStream feeds the binary stream-codec framing (tracegen
// -format stream).
func (a *Array) IngestStream(r io.Reader) (int64, error) {
	dec := trace.NewStreamReader(r)
	return a.ingest(func() (trace.LogicalRecord, error) { return dec.Next() })
}

// IngestCSV feeds "time_ns,item,offset,size,op" lines (tracegen
// -format csv). Blank lines and header lines are skipped wherever they
// appear, so concatenated CSV streams work; every error — parse or
// feed — carries the line number.
func (a *Array) IngestCSV(r io.Reader) (int64, error) {
	a.ingestRequests.Add(1)
	defer a.RefreshStatus()
	dec := trace.NewCSVReader(r)
	var n int64
	for {
		rec, err := dec.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := a.Feed(rec); err != nil {
			return n, fmt.Errorf("line %d: %w", dec.Line(), err)
		}
		n++
		a.ingestRecords.Add(1)
	}
}

// ingest drains next into Feed, counting the request and its records.
// Partially applied streams stay applied: records before the first
// error have already driven the simulation.
func (a *Array) ingest(next func() (trace.LogicalRecord, error)) (int64, error) {
	a.ingestRequests.Add(1)
	var n int64
	for {
		rec, err := next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			a.RefreshStatus()
			return n, err
		}
		if err := a.Feed(rec); err != nil {
			a.RefreshStatus()
			return n, err
		}
		n++
		a.ingestRecords.Add(1)
	}
	a.RefreshStatus()
	return n, nil
}

// Records returns how many records have been fed.
func (a *Array) Records() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.records
}

// Now returns the array's simulated time.
func (a *Array) Now() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.clk.Now()
	if a.now > n {
		n = a.now
	}
	return n
}

// Series returns the flight recorder's live time series.
func (a *Array) Series() *obs.Series {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flight.Series()
}

// ProvenanceSeries returns the decision-provenance ledger's rows as a
// columnar series (nil when the array runs without provenance). The
// recorder has its own lock, so scrapes never contend with the
// simulation.
func (a *Array) ProvenanceSeries() *obs.Series { return a.prov.Series() }

// ProvenanceSummary returns the ledger roll-up (nil when off).
func (a *Array) ProvenanceSummary() *obs.ProvenanceSummary { return a.prov.Summary() }

// Alerts returns the watchdog's per-rule states (nil without rules).
// The watchdog has its own lock, so scrapes never contend with the
// simulation.
func (a *Array) Alerts() []obs.AlertStatus { return a.wd.States() }

// AlertSummary returns the watchdog's aggregate state.
func (a *Array) AlertSummary() obs.AlertSummary { return a.wd.Summary() }

// Status returns the most recent liveness snapshot. Safe from HTTP
// goroutines; never blocks on the simulation lock.
func (a *Array) Status() Status {
	a.snapMu.Lock()
	defer a.snapMu.Unlock()
	return a.snap
}

// RefreshStatus recomputes the snapshot from live simulation state.
func (a *Array) RefreshStatus() {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.clk.Now()
	if a.now > now {
		now = a.now
	}
	a.updateSnapshotLocked(now)
}

// updateSnapshotLocked rebuilds the status payload; the caller holds
// a.mu.
func (a *Array) updateSnapshotLocked(now time.Duration) {
	snap := Status{
		Array:          a.name,
		TimeNS:         int64(now),
		Records:        a.records,
		Determinations: a.esm.Determinations(),
		Period:         a.esm.Period().String(),
		PeriodNS:       int64(a.esm.Period()),
		HotMask:        append([]bool(nil), a.esm.Hot()...),
		SpinUps:        a.arr.Meter().SpinUps(),
		AvgEnclosureW:  a.arr.Meter().AverageEnclosureW(now),
		EnergyJ:        a.arr.Meter().TotalEnergyJ(now),
		Cache:          a.arr.CacheOccupancy(),
		IngestRequests: a.ingestRequests.Load(),
		IngestRecords:  a.ingestRecords.Load(),
		PolicySwaps:    a.swaps,
		Finished:       a.done,
		Shards:         a.shards,
	}
	samples, last := a.flight.Stats()
	snap.SeriesSamples = samples
	snap.SeriesLastTNS = int64(last)
	st := a.arr.Stats()
	snap.MigratedBytes = st.MigratedBytes
	snap.CacheHits = st.CacheHits
	if a.inj != nil {
		c := a.inj.Counters()
		snap.Faults = c.Total()
		snap.FailedIOs = c.FailedAppIOs
		snap.Degraded = a.esm.Degraded()
		snap.Degradations = a.esm.Degradations()
	}
	if plan := a.esm.LastPlan(); plan != nil {
		snap.PatternMix = map[string]int{}
		for _, p := range plan.Patterns {
			snap.PatternMix[p.String()]++
		}
	}
	if a.wd != nil {
		sum := a.wd.Summary()
		snap.Alerts = &sum
	}
	snap.Provenance = a.prov.Summary()
	if a.trc != nil {
		// Settle the power-state accumulators so the attribution
		// reflects energy actually drawn.
		a.arr.Finish()
		snap.Latency = a.trc.LatencySummary()
		snap.Attribution = a.trc.Attribute(now, a.arr.EnclosureEnergy)
	}
	a.snapMu.Lock()
	a.snap = snap
	a.snapMu.Unlock()
}

// sampleLocked assembles one whole-system flight sample at simulated
// time now (the fleet twin of replay.Execute's snapshot closure); the
// caller holds a.mu. It settles the power meter, like every sampler.
func (a *Array) sampleLocked(now time.Duration) obs.FlightSample {
	a.arr.Finish()
	m := a.arr.Meter()
	occ := a.arr.CacheOccupancy()
	st := a.arr.Stats()
	s := obs.FlightSample{
		T:                 now,
		EnclosureEnergyJ:  m.EnclosureEnergyJ(),
		TotalEnergyJ:      m.TotalEnergyJ(now),
		SpinUps:           m.SpinUps(),
		CacheGeneralPages: occ.GeneralPages,
		CachePreloadBytes: occ.PreloadUsedBytes,
		CacheDirtyBytes:   occ.WriteDelayDirtyBytes,
		Determinations:    a.esm.Determinations(),
		Migrations:        st.Migrations,
		MigratedBytes:     st.MigratedBytes,
		PhysicalReads:     st.PhysicalReads,
		PhysicalWrites:    st.PhysicalWrites,
		CacheHits:         st.CacheHits,
		RespCount:         a.resp.Count(),
		RespMean:          a.resp.Mean(),
		RespP95:           a.resp.Percentile(0.95),
		RespP99:           a.resp.Percentile(0.99),
		Faults:            a.inj.Counters().Total(),
		Degraded:          a.esm.Degraded(),
	}
	for e := 0; e < a.arr.Enclosures(); e++ {
		es := obs.EnclosureSample{UsedBytes: a.arr.Used(e)}
		switch since, idle := a.arr.IdleSince(e, now); {
		case !a.arr.EnclosureOn(e, now):
			es.State = obs.EnclosureOff
		case idle:
			es.State = obs.EnclosureIdle
			es.IdleFor = now - since
		default:
			es.State = obs.EnclosureActive
		}
		s.Enclosures = append(s.Enclosures, es)
	}
	return s
}

// Report writes the end-of-stream summary (single-array esmd's final
// report, prefixed with the array name).
func (a *Array) Report(w io.Writer) {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.clk.Now()
	fmt.Fprintf(w, "\n[%s] processed %d records over %v\n", a.name, a.records, now.Round(time.Second))
	fmt.Fprintf(w, "determinations     %d\n", a.esm.Determinations())
	fmt.Fprintf(w, "avg enclosure      %.1f W\n", a.arr.Meter().AverageEnclosureW(now))
	fmt.Fprintf(w, "avg total          %.1f W\n", a.arr.Meter().AverageTotalW(now))
	fmt.Fprintf(w, "spin-ups           %d\n", a.arr.Meter().SpinUps())
	st := a.arr.Stats()
	fmt.Fprintf(w, "migrated           %.2f GB\n", float64(st.MigratedBytes)/(1<<30))
	fmt.Fprintf(w, "cache hits         %d\n", st.CacheHits)
	fmt.Fprintf(w, "delayed writes     %d\n", st.DelayedWrites)
	if a.inj != nil {
		c := a.inj.Counters()
		fmt.Fprintf(w, "injected faults    %d (%d failed app I/Os, %d failed migrations)\n",
			c.Total(), c.FailedAppIOs, c.FailedMigrations)
		fmt.Fprintf(w, "degradations       %d\n", a.esm.Degradations())
	}
}

// Close stops the sharded feeder (if the stream was never finalized)
// and flushes and closes the array's event and span sinks.
func (a *Array) Close() error {
	a.mu.Lock()
	if a.feeder != nil {
		a.feeder.Close()
		a.feeder = nil
	}
	a.mu.Unlock()
	err := a.rec.Close()
	if terr := a.trc.Close(); err == nil {
		err = terr
	}
	return err
}
