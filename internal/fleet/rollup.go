// The fleet roll-up: per-array metered energy folded into facility
// energy, electricity cost and carbon footprint. The model follows the
// Boavizta/e-footprint shape for storage services: metered device
// joules are scaled by the data-center PUE and the replication factor
// to facility energy; operational carbon is facility kWh times the
// grid intensity; embodied carbon amortizes the fabrication footprint
// of the stored terabytes over the hardware lifespan, prorated to the
// simulated span. All knobs are overridable from the fleet config's
// "cost" section.

package fleet

import (
	"fmt"
	"time"

	"esm/internal/config"
)

// CostModel holds the cost/carbon constants of the roll-up.
type CostModel struct {
	// PUE is the facility power usage effectiveness: total facility
	// power over IT power.
	PUE float64 `json:"pue"`
	// ElectricityUSDPerKWh prices facility energy.
	ElectricityUSDPerKWh float64 `json:"electricity_usd_per_kwh"`
	// GridKgCO2PerKWh is the grid carbon intensity.
	GridKgCO2PerKWh float64 `json:"grid_kgco2_per_kwh"`
	// ReplicationFactor scales one simulated array to the replicas a
	// storage service actually keeps.
	ReplicationFactor float64 `json:"replication_factor"`
	// EmbodiedKgCO2PerTB is the fabrication footprint per stored TB.
	EmbodiedKgCO2PerTB float64 `json:"embodied_kgco2_per_tb"`
	// LifespanYears amortizes the embodied footprint.
	LifespanYears float64 `json:"lifespan_years"`
}

// DefaultCostModel returns the defaults: PUE 1.4 (typical enterprise
// data center), $0.12/kWh, 0.475 kgCO2/kWh (global average grid
// intensity), replication factor 3, 160 kgCO2 per fabricated TB
// amortized over 6 years (Boavizta e-footprint HDD storage defaults).
func DefaultCostModel() CostModel {
	return CostModel{
		PUE:                  1.4,
		ElectricityUSDPerKWh: 0.12,
		GridKgCO2PerKWh:      0.475,
		ReplicationFactor:    3,
		EmbodiedKgCO2PerTB:   160,
		LifespanYears:        6,
	}
}

// ApplyConfig overlays the non-nil fields of c.
func (m CostModel) ApplyConfig(c *config.CostConfig) CostModel {
	if c == nil {
		return m
	}
	if c.PUE != nil {
		m.PUE = *c.PUE
	}
	if c.ElectricityUSDPerKWh != nil {
		m.ElectricityUSDPerKWh = *c.ElectricityUSDPerKWh
	}
	if c.GridKgCO2PerKWh != nil {
		m.GridKgCO2PerKWh = *c.GridKgCO2PerKWh
	}
	if c.ReplicationFactor != nil {
		m.ReplicationFactor = *c.ReplicationFactor
	}
	if c.EmbodiedKgCO2PerTB != nil {
		m.EmbodiedKgCO2PerTB = *c.EmbodiedKgCO2PerTB
	}
	if c.LifespanYears != nil {
		m.LifespanYears = *c.LifespanYears
	}
	return m
}

// Validate rejects physically meaningless constants.
func (m CostModel) Validate() error {
	switch {
	case m.PUE < 1:
		return fmt.Errorf("fleet: cost model: PUE %.3f < 1", m.PUE)
	case m.ElectricityUSDPerKWh < 0:
		return fmt.Errorf("fleet: cost model: negative electricity price")
	case m.GridKgCO2PerKWh < 0:
		return fmt.Errorf("fleet: cost model: negative grid intensity")
	case m.ReplicationFactor < 1:
		return fmt.Errorf("fleet: cost model: replication factor %.3f < 1", m.ReplicationFactor)
	case m.EmbodiedKgCO2PerTB < 0:
		return fmt.Errorf("fleet: cost model: negative embodied carbon")
	case m.LifespanYears <= 0:
		return fmt.Errorf("fleet: cost model: non-positive lifespan")
	}
	return nil
}

// ArrayRollup is one array's line of the roll-up.
type ArrayRollup struct {
	Array string `json:"array"`
	// SpanNS is the simulated span the figures cover.
	SpanNS int64 `json:"span_ns"`
	// MeteredJ is the simulator's metered device energy (enclosures +
	// controller) — the conserved quantity: the fleet total is exactly
	// the sum of these.
	MeteredJ float64 `json:"metered_j"`
	// AvgW is MeteredJ over the span.
	AvgW float64 `json:"avg_w"`
	// FacilityJ and FacilityKWh scale the metered energy by PUE and
	// replication.
	FacilityJ   float64 `json:"facility_j"`
	FacilityKWh float64 `json:"facility_kwh"`
	// CostUSD prices the facility energy.
	CostUSD float64 `json:"cost_usd"`
	// OperationalKgCO2 is facility kWh times grid intensity.
	OperationalKgCO2 float64 `json:"operational_kgco2"`
	// StoredTB is the replicated stored capacity.
	StoredTB float64 `json:"stored_tb"`
	// EmbodiedKgCO2 is the fabrication footprint of the stored TB,
	// amortized over the lifespan and prorated to the span.
	EmbodiedKgCO2 float64 `json:"embodied_kgco2"`
	// TotalKgCO2 is operational plus embodied.
	TotalKgCO2 float64 `json:"total_kgco2"`
	// Records and SpinUps give the line operational context.
	Records int64 `json:"records"`
	SpinUps int   `json:"spin_ups"`
}

// roll computes one array's line.
func (m CostModel) roll(name string, span time.Duration, meteredJ float64, usedBytes, records int64, spinUps int) ArrayRollup {
	r := ArrayRollup{
		Array:    name,
		SpanNS:   int64(span),
		MeteredJ: meteredJ,
		Records:  records,
		SpinUps:  spinUps,
	}
	if sec := span.Seconds(); sec > 0 {
		r.AvgW = meteredJ / sec
	}
	r.FacilityJ = meteredJ * m.PUE * m.ReplicationFactor
	r.FacilityKWh = r.FacilityJ / 3.6e6
	r.CostUSD = r.FacilityKWh * m.ElectricityUSDPerKWh
	r.OperationalKgCO2 = r.FacilityKWh * m.GridKgCO2PerKWh
	r.StoredTB = float64(usedBytes) * m.ReplicationFactor / 1e12
	lifespan := m.LifespanYears * 365.25 * 24 * float64(time.Hour)
	if lifespan > 0 {
		r.EmbodiedKgCO2 = r.StoredTB * m.EmbodiedKgCO2PerTB * (float64(span) / lifespan)
	}
	r.TotalKgCO2 = r.OperationalKgCO2 + r.EmbodiedKgCO2
	return r
}

// Totals is the fleet-wide aggregate of the per-array lines. Every
// energy, cost and carbon field is the plain sum of the array lines
// (the conservation property the control plane's tests pin down);
// SpanNS is the longest array span.
type Totals struct {
	Arrays           int     `json:"arrays"`
	SpanNS           int64   `json:"span_ns"`
	MeteredJ         float64 `json:"metered_j"`
	FacilityJ        float64 `json:"facility_j"`
	FacilityKWh      float64 `json:"facility_kwh"`
	CostUSD          float64 `json:"cost_usd"`
	OperationalKgCO2 float64 `json:"operational_kgco2"`
	StoredTB         float64 `json:"stored_tb"`
	EmbodiedKgCO2    float64 `json:"embodied_kgco2"`
	TotalKgCO2       float64 `json:"total_kgco2"`
	Records          int64   `json:"records"`
	SpinUps          int     `json:"spin_ups"`
}

func (t *Totals) add(r ArrayRollup) {
	t.Arrays++
	if r.SpanNS > t.SpanNS {
		t.SpanNS = r.SpanNS
	}
	t.MeteredJ += r.MeteredJ
	t.FacilityJ += r.FacilityJ
	t.FacilityKWh += r.FacilityKWh
	t.CostUSD += r.CostUSD
	t.OperationalKgCO2 += r.OperationalKgCO2
	t.StoredTB += r.StoredTB
	t.EmbodiedKgCO2 += r.EmbodiedKgCO2
	t.TotalKgCO2 += r.TotalKgCO2
	t.Records += r.Records
	t.SpinUps += r.SpinUps
}

// Rollup is the /fleet payload: the model in force, one line per
// array (sorted by name), and the fleet totals.
type Rollup struct {
	Cost   CostModel     `json:"cost_model"`
	Arrays []ArrayRollup `json:"arrays"`
	Fleet  Totals        `json:"fleet"`
}
