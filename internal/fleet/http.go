// The control plane's HTTP surface:
//
//	GET  /metrics                      shared registry, Prometheus text
//	GET  /status                       every array's liveness snapshot
//	GET  /fleet                        energy/cost/carbon roll-up
//	GET  /alerts                       fleet-wide + per-array alert state
//	GET  /healthz                      readiness: per-array ingest liveness
//	GET  /arrays/                      array names
//	GET  /arrays/<name>/status         one array's snapshot
//	GET  /arrays/<name>/alerts         one array's alert-rule states
//	GET  /arrays/<name>/series         flight series (JSON, ?format=csv,
//	                                   ?since=/?until= windowing)
//	POST /arrays/<name>/ingest         live trace ingest (NDJSON default,
//	                                   text/csv, binary stream codec);
//	                                   ?final=1 finalizes the stream
//	POST /arrays/<name>/config         hot-swap the array's policy from a
//	                                   config.File document
//	     /debug/pprof/                 standard profiles

package fleet

import (
	"encoding/json"
	"fmt"
	"mime"
	"net/http"
	"strings"

	"esm/internal/config"
	"esm/internal/obs"
)

// Handler returns the control-plane mux.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = f.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, struct {
			Arrays []Status `json:"arrays"`
		}{f.Status()})
	})
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, f.Rollup())
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, f.Alerts())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, f.health())
	})
	mux.HandleFunc("/arrays/", f.serveArray)
	obs.RegisterPprof(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// serveArray routes /arrays/ and /arrays/<name>/<verb>.
func (f *Fleet) serveArray(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/arrays/")
	if rest == "" {
		writeJSON(w, struct {
			Arrays []string `json:"arrays"`
		}{f.Names()})
		return
	}
	name, verb, _ := strings.Cut(rest, "/")
	a := f.Array(name)
	if a == nil {
		http.Error(w, fmt.Sprintf("unknown array %q", name), http.StatusNotFound)
		return
	}
	switch verb {
	case "", "status":
		writeJSON(w, a.Status())
	case "alerts":
		writeJSON(w, struct {
			Array   string            `json:"array"`
			Summary obs.AlertSummary  `json:"summary"`
			Rules   []obs.AlertStatus `json:"rules,omitempty"`
		}{a.Name(), a.AlertSummary(), a.Alerts()})
	case "series":
		obs.ServeSeries(w, r, a.Series())
	case "provenance":
		if s := a.ProvenanceSeries(); s != nil {
			obs.ServeSeries(w, r, s)
		} else {
			http.Error(w, "no provenance ledger attached (run with -provenance)", http.StatusNotFound)
		}
	case "ingest":
		f.serveIngest(w, r, a)
	case "config":
		f.serveConfig(w, r, a)
	default:
		http.Error(w, fmt.Sprintf("unknown endpoint %q", verb), http.StatusNotFound)
	}
}

// ArrayHealth is one array's line of the /healthz payload: the ingest
// and flight-recorder liveness counters, plus the derived Live flag —
// true once the array has either received records or been finalized.
type ArrayHealth struct {
	Array          string `json:"array"`
	Live           bool   `json:"live"`
	Finished       bool   `json:"finished"`
	IngestRequests int64  `json:"ingest_requests"`
	IngestRecords  int64  `json:"ingest_records"`
	SeriesSamples  int    `json:"series_samples"`
	SeriesLastTNS  int64  `json:"series_last_t_ns"`
}

// Health is the /healthz payload. OK is true once every array is
// constructed and serving — the readiness contract: a 200 with
// "ok": true means ingest can start.
type Health struct {
	OK     bool          `json:"ok"`
	Arrays []ArrayHealth `json:"arrays"`
}

// health assembles the readiness payload from the status snapshots.
func (f *Fleet) health() Health {
	h := Health{OK: true}
	for _, st := range f.Status() {
		h.Arrays = append(h.Arrays, ArrayHealth{
			Array:          st.Array,
			Live:           st.Finished || st.IngestRecords > 0,
			Finished:       st.Finished,
			IngestRequests: st.IngestRequests,
			IngestRecords:  st.IngestRecords,
			SeriesSamples:  st.SeriesSamples,
			SeriesLastTNS:  st.SeriesLastTNS,
		})
	}
	return h
}

// ingestResponse is the POST ingest reply.
type ingestResponse struct {
	Array        string `json:"array"`
	Records      int64  `json:"records"`
	TotalRecords int64  `json:"total_records"`
	TimeNS       int64  `json:"t_ns"`
	Finished     bool   `json:"finished,omitempty"`
}

// serveIngest streams the request body into the array. The feed is
// incremental: records decoded before an error have already driven the
// simulation, and the error reply says how many were applied.
func (f *Fleet) serveIngest(w http.ResponseWriter, r *http.Request, a *Array) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a trace body to ingest", http.StatusMethodNotAllowed)
		return
	}
	ctype := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ctype); err == nil {
		ctype = mt
	}
	var n int64
	var err error
	switch ctype {
	case "", "application/x-ndjson", "application/json":
		n, err = a.IngestNDJSON(r.Body)
	case "text/csv":
		n, err = a.IngestCSV(r.Body)
	case "application/x-esm-stream", "application/octet-stream":
		n, err = a.IngestStream(r.Body)
	default:
		http.Error(w, fmt.Sprintf("unsupported Content-Type %q (want application/x-ndjson, text/csv or application/x-esm-stream)", ctype),
			http.StatusUnsupportedMediaType)
		return
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("ingest failed after %d records: %v", n, err), http.StatusBadRequest)
		return
	}
	if r.URL.Query().Get("final") == "1" {
		if err := a.Finish(); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
	}
	st := a.Status()
	writeJSON(w, ingestResponse{
		Array:        a.Name(),
		Records:      n,
		TotalRecords: st.Records,
		TimeNS:       st.TimeNS,
		Finished:     st.Finished,
	})
}

// serveConfig hot-swaps the array's policy from a posted config.File
// document (the same schema as esmd -config; the storage section is
// ignored, the physical array being fixed at creation).
func (f *Fleet) serveConfig(w http.ResponseWriter, r *http.Request, a *Array) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a config document to swap the policy", http.StatusMethodNotAllowed)
		return
	}
	cfg, err := config.Parse(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := a.SwapPolicy(cfg); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	st := a.Status()
	writeJSON(w, struct {
		Array       string `json:"array"`
		PolicySwaps int64  `json:"policy_swaps"`
		Period      string `json:"period"`
	}{a.Name(), st.PolicySwaps, st.Period})
}
