// The fleet's sharded-feed acceptance gate: an array fed a live record
// stream on the sharded deterministic engine must settle to the same
// energy, counters, flight series and telemetry event stream — to the
// byte — as an identically configured array fed serially. This is the
// live-ingest twin of replay's TestShardedMatchesSerial.

package fleet

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"esm/internal/config"
	"esm/internal/obs"
	"esm/internal/trace"
)

// shardFixture spreads a skewed workload over 4 enclosures, one item
// pair per enclosure, with the hot pair rotating across enclosure
// groups every 5 minutes — every determination sees a different skew,
// so the proposed method keeps migrating items between shards (the same
// shape as replay's adversarial migration gate).
func shardFixture(t *testing.T, span time.Duration) (*trace.Catalog, []int, []trace.LogicalRecord) {
	t.Helper()
	cat := trace.NewCatalog()
	placement := []int{0, 0, 1, 1, 2, 2, 3, 3}
	var items []trace.ItemID
	for i := range placement {
		items = append(items, cat.Add(fmt.Sprintf("it%d", i), 192<<20))
	}
	rng := rand.New(rand.NewSource(4321))
	var recs []trace.LogicalRecord
	for tm := time.Duration(0); tm < span; tm += time.Duration(300+rng.Intn(700)) * time.Millisecond {
		phase := int(tm/(5*time.Minute)) % len(items)
		k := (phase + rng.Intn(2)) % len(items)
		if rng.Intn(5) == 0 {
			k = rng.Intn(len(items))
		}
		op := trace.OpRead
		if rng.Intn(3) == 0 {
			op = trace.OpWrite
		}
		recs = append(recs, trace.LogicalRecord{
			Time: tm, Item: items[k],
			Offset: int64(rng.Intn(128)) * 4096, Size: int32(4096 * (1 + rng.Intn(4))),
			Op: op,
		})
	}
	trace.SortLogical(recs)
	return cat, placement, recs
}

// feedRun builds one array with the given shard count, streams the
// whole fixture through Feed, finalizes, and returns the final status
// plus the byte-exact flight-series CSV and telemetry event stream.
func feedRun(t *testing.T, span time.Duration, shards int) (Status, string, string) {
	t.Helper()
	cat, placement, recs := shardFixture(t, span)
	// A short monitoring period makes the ESM replan (and migrate)
	// several times within the 30-minute fixture.
	period := config.Duration(3 * time.Minute)
	var events bytes.Buffer
	a, err := newArray(ArraySpec{
		Name:           "x",
		Catalog:        cat,
		Placement:      placement,
		Config:         &config.File{Policy: &config.PolicyConfig{InitialPeriod: &period}},
		SeriesInterval: time.Minute,
		EventSink:      obs.NewJSONLSink(&events),
		Shards:         shards,
	}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, a, recs)
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	a.RefreshStatus()
	st := a.Status()
	var series bytes.Buffer
	if err := a.Series().WriteCSV(&series); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	return st, series.String(), events.String()
}

func TestShardedFeedMatchesSerialFeed(t *testing.T) {
	span := 30 * time.Minute
	serial, serialSeries, serialEvents := feedRun(t, span, 0)
	if serial.MigratedBytes == 0 {
		t.Fatal("fixture produced no migrations; the gate is not exercising cross-shard traffic")
	}
	for _, shards := range []int{2, 4} {
		st, series, events := feedRun(t, span, shards)
		if st.Shards != shards {
			t.Errorf("shards=%d: status reports %d lanes", shards, st.Shards)
		}
		if st.EnergyJ != serial.EnergyJ {
			t.Errorf("shards=%d: energy %v J, serial %v J", shards, st.EnergyJ, serial.EnergyJ)
		}
		if st.AvgEnclosureW != serial.AvgEnclosureW {
			t.Errorf("shards=%d: avg %v W, serial %v W", shards, st.AvgEnclosureW, serial.AvgEnclosureW)
		}
		if st.Records != serial.Records || st.SpinUps != serial.SpinUps ||
			st.MigratedBytes != serial.MigratedBytes || st.CacheHits != serial.CacheHits ||
			st.Determinations != serial.Determinations {
			t.Errorf("shards=%d: counters diverge: %+v vs %+v", shards, st, serial)
		}
		if series != serialSeries {
			t.Errorf("shards=%d: flight series CSV diverges from serial", shards)
		}
		if events != serialEvents {
			t.Errorf("shards=%d: telemetry event stream diverges from serial", shards)
		}
	}
}
