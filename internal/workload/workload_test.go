package workload

import (
	"testing"
	"time"

	"esm/internal/core"
	"esm/internal/monitor"
)

const breakEven = 52 * time.Second

// classify runs the full-trace pattern classification used by Fig. 6,
// consuming the workload as a stream so no test materializes a
// paper-scale trace just to count patterns.
func classify(t *testing.T, w *Workload) core.PatternMix {
	t.Helper()
	mon := monitor.NewAppMonitor(w.Catalog.Len(), breakEven)
	src := w.Source()
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		mon.Record(rec)
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	return core.MixOf(mon.EndPeriod(w.Duration))
}

// checkBasics validates structural invariants shared by every workload.
func checkBasics(t *testing.T, w *Workload) {
	t.Helper()
	if len(w.Placement) != w.Catalog.Len() {
		t.Fatalf("placement covers %d of %d items", len(w.Placement), w.Catalog.Len())
	}
	for i, e := range w.Placement {
		if e < 0 || e >= w.Enclosures {
			t.Fatalf("item %d placed on enclosure %d of %d", i, e, w.Enclosures)
		}
	}
	var prev time.Duration
	for i, rec := range w.EnsureRecords() {
		if rec.Time < prev {
			t.Fatalf("record %d out of order", i)
		}
		prev = rec.Time
		if rec.Time > w.Duration {
			t.Fatalf("record %d beyond duration", i)
		}
		if rec.Item < 0 || int(rec.Item) >= w.Catalog.Len() {
			t.Fatalf("record %d references unknown item %d", i, rec.Item)
		}
		if rec.Size <= 0 {
			t.Fatalf("record %d has size %d", i, rec.Size)
		}
		if rec.Offset < 0 || rec.Offset+int64(rec.Size) > w.Catalog.Size(rec.Item) {
			t.Fatalf("record %d overruns item: off=%d size=%d itemSize=%d",
				i, rec.Offset, rec.Size, w.Catalog.Size(rec.Item))
		}
	}
}

func TestFileServerShape(t *testing.T) {
	w, err := GenerateFileServer(DefaultFileServerConfig().Scaled(0.25))
	if err != nil {
		t.Fatal(err)
	}
	checkBasics(t, w)
	if w.Enclosures != 12 {
		t.Fatalf("enclosures %d, Table I says 12", w.Enclosures)
	}
	if !w.ClosedLoop {
		t.Fatal("file-server sessions should replay closed-loop")
	}
	if w.Catalog.Len() != 36*50 {
		t.Fatalf("items %d, want 1800", w.Catalog.Len())
	}
}

func TestFileServerPatternMixMatchesFig6(t *testing.T) {
	w, err := GenerateFileServer(DefaultFileServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := classify(t, w)
	// Fig. 6: ≈89.6% P1, ≈9.9% P3, almost no P2, no P0.
	if f := m.Frac(core.P1); f < 0.80 || f > 0.95 {
		t.Fatalf("P1 fraction %.3f outside the Fig. 6 band", f)
	}
	if f := m.Frac(core.P3); f < 0.05 || f > 0.15 {
		t.Fatalf("P3 fraction %.3f outside the Fig. 6 band", f)
	}
	if f := m.Frac(core.P0); f > 0.05 {
		t.Fatalf("P0 fraction %.3f too high", f)
	}
	if f := m.Frac(core.P2); f > 0.03 {
		t.Fatalf("P2 fraction %.3f too high", f)
	}
}

func TestFileServerDeterministic(t *testing.T) {
	cfg := DefaultFileServerConfig().Scaled(0.1)
	a, err := GenerateFileServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFileServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.EnsureRecords()
	b.EnsureRecords()
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	cfg.Seed++
	c, err := GenerateFileServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.EnsureRecords()
	same := len(c.Records) == len(a.Records)
	if same {
		for i := range a.Records {
			if a.Records[i] != c.Records[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestFileServerValidation(t *testing.T) {
	cfg := DefaultFileServerConfig()
	cfg.Duration = time.Minute
	if _, err := GenerateFileServer(cfg); err == nil {
		t.Fatal("too-short duration accepted")
	}
	cfg = DefaultFileServerConfig()
	cfg.Volumes = 0
	if _, err := GenerateFileServer(cfg); err == nil {
		t.Fatal("zero volumes accepted")
	}
}

func TestOLTPShape(t *testing.T) {
	w, err := GenerateOLTP(DefaultOLTPConfig().Scaled(0.1))
	if err != nil {
		t.Fatal(err)
	}
	checkBasics(t, w)
	if w.Enclosures != 10 {
		t.Fatalf("enclosures %d, Table I says 9 DB + 1 log", w.Enclosures)
	}
	if w.ClosedLoop {
		t.Fatal("OLTP should replay open-loop (many concurrent threads)")
	}
	if w.Catalog.Len() != 82 {
		t.Fatalf("items %d, want 82 (9 tables × 9 partitions + log)", w.Catalog.Len())
	}
	if w.BaseThroughput <= 0 {
		t.Fatal("missing baseline tpmC")
	}
	// The log lives alone on enclosure 0.
	logID, ok := w.Catalog.Lookup("tpcc/log")
	if !ok || w.Placement[logID] != 0 {
		t.Fatal("log not placed on enclosure 0")
	}
}

func TestOLTPPatternMixMatchesFig6(t *testing.T) {
	w, err := GenerateOLTP(DefaultOLTPConfig().Scaled(0.2))
	if err != nil {
		t.Fatal(err)
	}
	m := classify(t, w)
	// Fig. 6: ≈76.2% P3, ≈23.3% P1, no P0/P2.
	if f := m.Frac(core.P3); f < 0.70 || f > 0.85 {
		t.Fatalf("P3 fraction %.3f outside the Fig. 6 band", f)
	}
	if f := m.Frac(core.P1); f < 0.15 || f > 0.30 {
		t.Fatalf("P1 fraction %.3f outside the Fig. 6 band", f)
	}
	if f := m.Frac(core.P0) + m.Frac(core.P2); f > 0.05 {
		t.Fatalf("P0+P2 fraction %.3f too high", f)
	}
}

func TestOLTPLoadLevel(t *testing.T) {
	w, err := GenerateOLTP(DefaultOLTPConfig().Scaled(0.1))
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate IOPS must exceed DDR's LowTH on every DB enclosure — the
	// paper's reason DDR cannot find cold enclosures on OLTP.
	perEnc := make([]float64, w.Enclosures)
	for _, rec := range w.EnsureRecords() {
		perEnc[w.Placement[rec.Item]]++
	}
	secs := w.Duration.Seconds()
	for e, n := range perEnc {
		if iops := n / secs; iops < 225 {
			t.Fatalf("enclosure %d at %.0f IOPS, below DDR LowTH", e, iops)
		}
	}
}

func TestDSSShape(t *testing.T) {
	w, err := GenerateDSS(DefaultDSSConfig().Scaled(0.2))
	if err != nil {
		t.Fatal(err)
	}
	checkBasics(t, w)
	if w.Enclosures != 9 {
		t.Fatalf("enclosures %d, Table I says 8 DB + 1 log/work", w.Enclosures)
	}
	if !w.ClosedLoop {
		t.Fatal("DSS scans should replay closed-loop")
	}
	if len(w.Windows) != 22 {
		t.Fatalf("%d query windows, want 22", len(w.Windows))
	}
	prev := time.Duration(0)
	for q, win := range w.Windows {
		if win.Start != prev {
			t.Fatalf("Q%d starts at %v, want %v (queries run sequentially)", q+1, win.Start, prev)
		}
		if win.End <= win.Start {
			t.Fatalf("Q%d has empty window", q+1)
		}
		prev = win.End
	}
}

func TestDSSPatternMixMatchesFig6(t *testing.T) {
	w, err := GenerateDSS(DefaultDSSConfig().Scaled(0.35))
	if err != nil {
		t.Fatal(err)
	}
	m := classify(t, w)
	// Fig. 6: ≈61.5% P1, ≈38.5% P2, no P3, no P0.
	if f := m.Frac(core.P1); f < 0.50 || f > 0.75 {
		t.Fatalf("P1 fraction %.3f outside the Fig. 6 band", f)
	}
	if f := m.Frac(core.P2); f < 0.25 || f > 0.50 {
		t.Fatalf("P2 fraction %.3f outside the Fig. 6 band", f)
	}
	if m.Counts[core.P3] != 0 {
		t.Fatalf("%d P3 items; the paper found none for TPC-H", m.Counts[core.P3])
	}
}

func TestDSSScansAreSequential(t *testing.T) {
	w, err := GenerateDSS(DefaultDSSConfig().Scaled(0.1))
	if err != nil {
		t.Fatal(err)
	}
	// Within one lineitem partition, read offsets during a scan must be
	// non-decreasing until the scan wraps (work items may wrap).
	id, ok := w.Catalog.Lookup("tpch/lineitem.p0")
	if !ok {
		t.Fatal("lineitem.p0 missing")
	}
	var lastOff int64 = -1
	drops := 0
	for _, rec := range w.EnsureRecords() {
		if rec.Item != id {
			continue
		}
		if rec.Offset < lastOff {
			drops++
		}
		lastOff = rec.Offset
	}
	// One wrap per scan is allowed; Q1..Q22 scan lineitem ~13 times.
	if drops > 25 {
		t.Fatalf("%d offset drops in a sequential scan stream", drops)
	}
}

func TestSyntheticMix(t *testing.T) {
	w, err := GenerateSynthetic(DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkBasics(t, w)
	m := classify(t, w)
	cfg := DefaultSyntheticConfig()
	if m.Counts[core.P3] != cfg.SteadyItems {
		t.Fatalf("P3 count %d, want %d", m.Counts[core.P3], cfg.SteadyItems)
	}
	if m.Counts[core.P0] != cfg.IdleItems {
		t.Fatalf("P0 count %d, want %d", m.Counts[core.P0], cfg.IdleItems)
	}
	if got := m.Counts[core.P1] + m.Counts[core.P2]; got != cfg.BurstItems {
		t.Fatalf("P1+P2 count %d, want %d", got, cfg.BurstItems)
	}
}

func TestSyntheticValidation(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.Enclosures = 0
	if _, err := GenerateSynthetic(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestScaledConfigs(t *testing.T) {
	fs := DefaultFileServerConfig().Scaled(0.5)
	if fs.Duration != 3*time.Hour {
		t.Fatalf("scaled FS duration %v", fs.Duration)
	}
	ol := DefaultOLTPConfig().Scaled(0.5)
	if ol.Duration != 54*time.Minute {
		t.Fatalf("scaled OLTP duration %v", ol.Duration)
	}
	ds := DefaultDSSConfig().Scaled(0.5)
	if ds.Duration != 3*time.Hour || ds.ScaleFactor != 50 {
		t.Fatalf("scaled DSS %v SF=%v", ds.Duration, ds.ScaleFactor)
	}
}

func TestSensorArchiveShape(t *testing.T) {
	w, err := GenerateSensorArchive(DefaultSensorConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkBasics(t, w)
	if !w.ClosedLoop {
		t.Fatal("archive streams should replay closed-loop")
	}
	m := classify(t, w)
	cfg := DefaultSensorConfig()
	// The active segments are the only P3 items.
	if m.Counts[core.P3] != cfg.Streams {
		t.Fatalf("P3 count %d, want %d active segments", m.Counts[core.P3], cfg.Streams)
	}
	// Deep archive dominates P0.
	if f := m.Frac(core.P0); f < 0.5 {
		t.Fatalf("P0 fraction %.2f, archive should be mostly untouched", f)
	}
	// Analytics inputs classify P1, compaction targets P2.
	if m.Counts[core.P1] == 0 || m.Counts[core.P2] == 0 {
		t.Fatalf("mix %s lacks P1 or P2", m)
	}
}

func TestSensorArchiveValidation(t *testing.T) {
	cfg := DefaultSensorConfig()
	cfg.ArchiveFrac = 1.0
	if _, err := GenerateSensorArchive(cfg); err == nil {
		t.Fatal("ArchiveFrac 1.0 accepted")
	}
	cfg = DefaultSensorConfig()
	cfg.Duration = time.Minute
	if _, err := GenerateSensorArchive(cfg); err == nil {
		t.Fatal("too-short duration accepted")
	}
}

func TestOLTPRateScale(t *testing.T) {
	cfg := DefaultOLTPConfig().Scaled(0.1)
	cfg.RateScale = 0.5
	half, err := GenerateOLTP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RateScale = 1.0
	full, err := GenerateOLTP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(half.EnsureRecords())) / float64(len(full.EnsureRecords()))
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("RateScale 0.5 produced %.2f of the records", ratio)
	}
	cfg.RateScale = 0
	if _, err := GenerateOLTP(cfg); err == nil {
		t.Fatal("zero RateScale accepted")
	}
}
