// File-server workload: a synthetic stand-in for the MSR Cambridge
// production trace the paper replays (Table I).
//
// Structure: Volumes volumes are assigned to Enclosures disk enclosures
// in alphabetical (index) order, as in the paper's setup. Every volume
// holds FilesPerVolume data items with distinct behaviours:
//
//   - one metadata item per volume, touched by low-rate background
//     "noise" (indexers, health checks) every ~20 s. At the item level
//     these are P3 (no gap exceeds the break-even time); at the block
//     level they keep the whole enclosure's I/O intervals short, which is
//     exactly why physical-only power management fails on file servers
//     (Fig. 2) and why moving these small items away matters.
//   - hot items on a subset of "busy" volumes: steadily accessed, P3.
//   - hot-read items: small (≈2.5 MB) read-mostly items touched in every
//     volume-activity window. They classify as P1 and have the highest
//     reads/size density, so the proposed method preloads them.
//   - read-burst items: large cold data (multi-GB) read in occasional
//     "deep" activity windows. P1, too big to preload.
//   - write-burst items: P2, written during deep windows.
//
// Volume activity is correlated: a volume has activity windows (user
// sessions); its items burst only inside windows. This gives the
// enclosure-level idle structure a real file server has.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"esm/internal/trace"
)

// FileServerConfig parameterises the file-server generator.
type FileServerConfig struct {
	// Volumes is the number of file-server volumes (Table I: 36).
	Volumes int
	// FilesPerVolume is the number of data items per volume.
	FilesPerVolume int
	// Enclosures is the number of disk enclosures (Table I: 12).
	Enclosures int
	// Duration is the trace length (Table I: 6 h).
	Duration time.Duration
	// Seed makes the trace deterministic.
	Seed int64

	// WindowEvery is the mean spacing of volume activity windows.
	WindowEvery time.Duration
	// DeepEvery is the mean spacing of deep windows (the ones that touch
	// the large cold read-burst and write-burst items).
	DeepEvery time.Duration
}

// DefaultFileServerConfig returns the paper-scale configuration.
func DefaultFileServerConfig() FileServerConfig {
	return FileServerConfig{
		Volumes:        36,
		FilesPerVolume: 50,
		Enclosures:     12,
		Seed:           42,
		Duration:       6 * time.Hour,
		WindowEvery:    10 * time.Minute,
		DeepEvery:      25 * time.Minute,
	}
}

// Scaled returns the configuration with the duration multiplied by f,
// for fast test and benchmark runs. Inter-arrival behaviour (and so the
// pattern classification) is unchanged; only the observation span
// shrinks.
func (c FileServerConfig) Scaled(f float64) FileServerConfig {
	c.Duration = time.Duration(float64(c.Duration) * f)
	return c
}

// Validate reports whether the configuration is usable.
func (c FileServerConfig) Validate() error {
	if c.Volumes <= 0 || c.FilesPerVolume < 8 || c.Enclosures <= 0 {
		return fmt.Errorf("workload: fileserver config must have volumes, >=8 files/volume and enclosures")
	}
	if c.Duration < 10*time.Minute {
		return fmt.Errorf("workload: fileserver duration %v too short to classify patterns", c.Duration)
	}
	return nil
}

// GenerateFileServer builds the file-server workload.
func GenerateFileServer(cfg FileServerConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := trace.NewCatalog()
	w := &Workload{
		Name:       "fileserver",
		Catalog:    cat,
		ClosedLoop: true,
		Enclosures: cfg.Enclosures,
		Duration:   cfg.Duration,
	}
	var ss streams
	var placement []int

	for v := 0; v < cfg.Volumes; v++ {
		enc := v * cfg.Enclosures / cfg.Volumes
		hotVolume := v%5 == 0
		vol := fmt.Sprintf("vol%02d", v)

		// Volume activity windows, shared read-only by the volume's
		// streams; drawn eagerly from the master RNG at planning time.
		light, deep := volumeWindows(rng, cfg)

		// Metadata noise item: small, steadily touched.
		meta := cat.Add(vol+"/meta", 50<<20)
		placement = append(placement, enc)
		ss.lazy(meta, rng.Int63(), func(rng *rand.Rand, emit emitFunc) {
			genNoise(rng, emit, 50<<20, cfg.Duration)
		})

		// Five small hot-read items per volume: preload candidates.
		for f := 0; f < 5; f++ {
			size := 1500<<10 + rng.Int63n(2<<20)
			id := cat.Add(fmt.Sprintf("%s/hotread%02d", vol, f), size)
			placement = append(placement, enc)
			ss.lazy(id, rng.Int63(), func(rng *rand.Rand, emit emitFunc) {
				genWindowBursts(rng, emit, size, light, burstProfile{
					prob: 0.9, minN: 150, maxN: 350, spacing: 400 * time.Millisecond, readFrac: 0.98, ioSize: 8 << 10,
				})
			})
		}

		rest := cfg.FilesPerVolume - 6
		hotFiles := 0
		if hotVolume {
			hotFiles = 15
		}
		for f := 0; f < rest; f++ {
			switch {
			case f < hotFiles:
				// Steadily accessed hot item: P3.
				size := lognormBytes(rng, 256<<20, 0.8, 32<<20, 1<<30)
				id := cat.Add(fmt.Sprintf("%s/hot%02d", vol, f), size)
				placement = append(placement, enc)
				p := steadyProfile{
					meanGap:  800*time.Millisecond + time.Duration(rng.Int63n(int64(2*time.Second))),
					maxGap:   45 * time.Second,
					readFrac: 0.75, ioSize: 8 << 10,
				}
				ss.lazy(id, rng.Int63(), func(rng *rand.Rand, emit emitFunc) {
					genSteady(rng, emit, size, cfg.Duration, p)
				})
			case f == rest-1 && v%4 == 1:
				// Write-burst item: P2.
				size := lognormBytes(rng, 1<<30, 1.0, 128<<20, 8<<30)
				id := cat.Add(fmt.Sprintf("%s/wburst", vol), size)
				placement = append(placement, enc)
				ss.lazy(id, rng.Int63(), func(rng *rand.Rand, emit emitFunc) {
					genWindowBursts(rng, emit, size, deep, burstProfile{
						prob: 0.8, minN: 30, maxN: 100, spacing: 2 * time.Second, readFrac: 0.10, ioSize: 1 << 20,
					})
				})
			default:
				// Large cold read-burst item: P1, too big to preload.
				size := lognormBytes(rng, 4<<30, 1.2, 256<<20, 30<<30)
				id := cat.Add(fmt.Sprintf("%s/file%03d", vol, f), size)
				placement = append(placement, enc)
				ss.lazy(id, rng.Int63(), func(rng *rand.Rand, emit emitFunc) {
					genWindowBursts(rng, emit, size, deep, burstProfile{
						prob: 0.6, minN: 10, maxN: 30, spacing: 5 * time.Second, readFrac: 0.90, ioSize: 1 << 20,
					})
				})
			}
		}
	}
	w.Placement = placement
	w.Streams = ss.list
	return w, nil
}

// window is one activity span of a volume.
type window struct {
	start time.Duration
	end   time.Duration
}

// volumeWindows draws the light windows (all windows) and the deep
// windows (a sparse subset drawn independently with a longer spacing).
func volumeWindows(rng *rand.Rand, cfg FileServerConfig) (light, deep []window) {
	for t := expDur(rng, cfg.WindowEvery); t < cfg.Duration; t += expDur(rng, cfg.WindowEvery) {
		end := t + 60*time.Second + expDur(rng, 60*time.Second)
		light = append(light, window{start: t, end: end})
		t = end
	}
	// The first deep window is guaranteed within the trace so no volume's
	// cold items stay entirely untouched (the paper's measurement period
	// runs to application completion, so every item is accessed).
	first := time.Duration(rng.Int63n(int64(cfg.Duration*3/5) + 1))
	for t := first; t < cfg.Duration; t += expDur(rng, cfg.DeepEvery) {
		end := t + 3*time.Minute + expDur(rng, 2*time.Minute)
		deep = append(deep, window{start: t, end: end})
		t = end
	}
	return light, deep
}

// genNoise emits the background metadata accesses: a read (sometimes a
// small write) every ~15–30 s for the whole trace, so no gap ever
// exceeds the break-even time.
func genNoise(rng *rand.Rand, emit emitFunc, size int64, dur time.Duration) {
	t := time.Duration(rng.Int63n(int64(10 * time.Second)))
	for t < dur {
		op := trace.OpRead
		if rng.Float64() < 0.2 {
			op = trace.OpWrite
		}
		if !emit(t, randOffset(rng, size, 4<<10), 4<<10, op) {
			return
		}
		t += 15*time.Second + time.Duration(rng.Int63n(int64(15*time.Second)))
	}
}

type steadyProfile struct {
	meanGap  time.Duration
	maxGap   time.Duration
	readFrac float64
	ioSize   int32
}

// genSteady emits a continuously accessed item: exponential gaps clamped
// below the break-even time so the item classifies P3.
func genSteady(rng *rand.Rand, emit emitFunc, size int64, dur time.Duration, p steadyProfile) {
	t := time.Duration(rng.Int63n(int64(5 * time.Second)))
	for t < dur {
		op := trace.OpRead
		if rng.Float64() >= p.readFrac {
			op = trace.OpWrite
		}
		if !emit(t, randOffset(rng, size, p.ioSize), p.ioSize, op) {
			return
		}
		t += clampDur(expDur(rng, p.meanGap), time.Millisecond, p.maxGap)
	}
}

type burstProfile struct {
	prob     float64 // chance the item bursts in a given window
	minN     int
	maxN     int
	spacing  time.Duration // mean gap between the burst's I/Os
	readFrac float64
	ioSize   int32
}

// genWindowBursts emits bursts aligned to the volume's activity windows.
func genWindowBursts(rng *rand.Rand, emit emitFunc, size int64, wins []window, p burstProfile) {
	for _, w := range wins {
		if rng.Float64() >= p.prob {
			continue
		}
		n := p.minN + rng.Intn(p.maxN-p.minN+1)
		span := w.end - w.start
		t := w.start + time.Duration(rng.Int63n(int64(span)))
		for i := 0; i < n && t < w.end; i++ {
			op := trace.OpRead
			if rng.Float64() >= p.readFrac {
				op = trace.OpWrite
			}
			if !emit(t, randOffset(rng, size, p.ioSize), p.ioSize, op) {
				return
			}
			t += expDur(rng, p.spacing)
		}
	}
}
