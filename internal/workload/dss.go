// DSS workload: a TPC-H-like trace matching Table I's configuration
// (SF 100, Q1–Q22 run sequentially, DB hash-distributed over 8
// enclosures, log and work files on 1) and Fig. 6's item pattern mix
// (≈62% P1, ≈38% P2, no P3).
//
// Each query sequentially scans its input tables (all partitions of a
// table in parallel across the enclosures), spills intermediate results
// to its work file (write-heavy, classifying P2), reads part of the
// spill back, and then computes without I/O until the next query. The
// long I/O-free stretches between scans are what gives DSS its large
// power-saving potential — for every method, as in Fig. 14.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"esm/internal/trace"
)

// dssTable describes one TPC-H table.
type dssTable struct {
	name string
	size int64 // total bytes at SF 100
	wide bool  // partitioned across all DB enclosures
}

var dssTables = []dssTable{
	{name: "lineitem", size: 75 << 30, wide: true},
	{name: "orders", size: 17 << 30, wide: true},
	{name: "partsupp", size: 12 << 30, wide: true},
	{name: "part", size: 2560 << 20, wide: true},
	{name: "customer", size: 2360 << 20, wide: true},
	{name: "supplier", size: 144 << 20, wide: true},
	{name: "nation", size: 1 << 20},
	{name: "region", size: 1 << 20},
}

// dssQueryTables maps each of Q1..Q22 to the tables it scans
// (abbreviations: L lineitem, O orders, PS partsupp, P part, C customer,
// S supplier, N nation, R region), following the TPC-H query set.
var dssQueryTables = [22][]string{
	{"lineitem"}, // Q1
	{"part", "supplier", "partsupp", "nation", "region"},               // Q2
	{"customer", "orders", "lineitem"},                                 // Q3
	{"orders", "lineitem"},                                             // Q4
	{"customer", "orders", "lineitem", "supplier", "nation", "region"}, // Q5
	{"lineitem"}, // Q6
	{"supplier", "lineitem", "orders", "customer", "nation"},                   // Q7
	{"part", "supplier", "lineitem", "orders", "customer", "nation", "region"}, // Q8
	{"part", "supplier", "lineitem", "partsupp", "orders", "nation"},           // Q9
	{"customer", "orders", "lineitem", "nation"},                               // Q10
	{"partsupp", "supplier", "nation"},                                         // Q11
	{"orders", "lineitem"},                                                     // Q12
	{"customer", "orders"},                                                     // Q13
	{"lineitem", "part"},                                                       // Q14
	{"lineitem", "supplier"},                                                   // Q15
	{"partsupp", "part", "supplier"},                                           // Q16
	{"lineitem", "part"},                                                       // Q17
	{"customer", "orders", "lineitem"},                                         // Q18
	{"lineitem", "part"},                                                       // Q19
	{"supplier", "nation", "partsupp", "lineitem", "part"},                     // Q20
	{"supplier", "lineitem", "orders", "nation"},                               // Q21
	{"customer", "orders"},                                                     // Q22
}

// DSSConfig parameterises the DSS generator.
type DSSConfig struct {
	// ScaleFactor is the nominal TPC-H scale (Table I: 100); it scales
	// the table sizes linearly.
	ScaleFactor float64
	// DBEnclosures is the number of enclosures holding the database
	// (Table I: 8); log and work files get one more.
	DBEnclosures int
	// Duration is the trace length (Table I: 6 h).
	Duration time.Duration
	// Seed makes the trace deterministic.
	Seed int64
	// ScanBps is the per-partition sequential scan rate.
	ScanBps float64
	// SpillFrac is the fraction of scanned bytes spilled to work files.
	SpillFrac float64
}

// DefaultDSSConfig returns the paper-scale configuration.
func DefaultDSSConfig() DSSConfig {
	return DSSConfig{
		ScaleFactor:  100,
		DBEnclosures: 8,
		Duration:     6 * time.Hour,
		Seed:         44,
		ScanBps:      40 << 20,
		SpillFrac:    0.18,
	}
}

// Scaled returns the configuration with duration and data volume both
// multiplied by f, so scan phases keep the same proportion of each query
// window in fast runs.
func (c DSSConfig) Scaled(f float64) DSSConfig {
	c.Duration = time.Duration(float64(c.Duration) * f)
	c.ScaleFactor *= f
	return c
}

// Validate reports whether the configuration is usable.
func (c DSSConfig) Validate() error {
	if c.DBEnclosures <= 0 || c.ScaleFactor <= 0 || c.ScanBps <= 0 {
		return fmt.Errorf("workload: dss config must be positive")
	}
	if c.Duration < 10*time.Minute {
		return fmt.Errorf("workload: dss duration %v too short to classify patterns", c.Duration)
	}
	if c.SpillFrac < 0 || c.SpillFrac > 1 {
		return fmt.Errorf("workload: dss SpillFrac out of range")
	}
	return nil
}

// GenerateDSS builds the DSS workload.
func GenerateDSS(cfg DSSConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := trace.NewCatalog()
	w := &Workload{
		Name:       "dss",
		Catalog:    cat,
		ClosedLoop: true,
		Enclosures: cfg.DBEnclosures + 1,
		Duration:   cfg.Duration,
	}
	var ss streams
	var placement []int
	sizeScale := cfg.ScaleFactor / 100

	// Table partitions: wide tables striped over enclosures 1..N; the
	// tiny dimension tables live whole on enclosure 1.
	type part struct {
		id   trace.ItemID
		size int64
		enc  int
	}
	parts := make(map[string][]part)
	for _, tbl := range dssTables {
		size := int64(float64(tbl.size) * sizeScale)
		if !tbl.wide {
			id := cat.Add("tpch/"+tbl.name, size)
			placement = append(placement, 1)
			parts[tbl.name] = []part{{id: id, size: size, enc: 1}}
			continue
		}
		per := size / int64(cfg.DBEnclosures)
		for p := 0; p < cfg.DBEnclosures; p++ {
			id := cat.Add(fmt.Sprintf("tpch/%s.p%d", tbl.name, p), per)
			placement = append(placement, 1+p)
			parts[tbl.name] = append(parts[tbl.name], part{id: id, size: per, enc: 1 + p})
		}
	}

	// Work files (one per query plus shared temp segments) and the log,
	// all on enclosure 0.
	workSize := int64(float64(4<<30) * sizeScale)
	workItems := make([]trace.ItemID, 22)
	for q := range workItems {
		workItems[q] = cat.Add(fmt.Sprintf("tpch/work.q%d", q+1), workSize)
		placement = append(placement, 0)
	}
	tempItems := make([]trace.ItemID, 6)
	for i := range tempItems {
		tempItems[i] = cat.Add(fmt.Sprintf("tpch/temp%d", i), workSize/2)
		placement = append(placement, 0)
	}
	logItem := cat.Add("tpch/log", 2<<30)
	placement = append(placement, 0)

	// Query windows: share of the duration proportional to scanned bytes
	// plus a fixed compute floor.
	weights := make([]float64, 22)
	var wsum float64
	for q, tables := range dssQueryTables {
		var bytes float64
		for _, t := range tables {
			for _, p := range parts[t] {
				bytes += float64(p.size)
			}
		}
		weights[q] = 1 + bytes/(float64(int64(25)<<30)*sizeScale)
		wsum += weights[q]
	}

	const ioSize = 256 << 10
	start := time.Duration(0)
	var logRecs []trace.LogicalRecord
	for q, tables := range dssQueryTables {
		end := start + time.Duration(weights[q]/wsum*float64(cfg.Duration))
		w.Windows = append(w.Windows, Window{Name: fmt.Sprintf("Q%d", q+1), Start: start, End: end})

		t := start
		var scanned int64
		for _, tbl := range tables {
			// All partitions scan in parallel; the phase lasts as long as
			// the largest partition takes.
			var phase time.Duration
			for _, p := range parts[tbl] {
				d := scanStream(&ss, p.id, p.size, t, cfg.ScanBps, ioSize)
				if d > phase {
					phase = d
				}
				scanned += p.size
			}
			t += phase + 5*time.Second
		}

		// Spill phase: write a fraction of the scanned bytes to this
		// query's work file (and a temp segment), then read 60% back.
		spill := int64(float64(scanned) * cfg.SpillFrac)
		if spill > workSize {
			spill = workSize
		}
		t = bulkStream(&ss, rng, workItems[q], workSize, t, spill, cfg.ScanBps, ioSize, trace.OpWrite)
		tmp := tempItems[q%len(tempItems)]
		t = bulkStream(&ss, rng, tmp, workSize/2, t, spill/3, cfg.ScanBps, ioSize, trace.OpWrite)
		bulkStream(&ss, rng, workItems[q], workSize, t, int64(float64(spill)*0.6), cfg.ScanBps, ioSize, trace.OpRead)

		// One query-completion log write.
		logRecs = append(logRecs, trace.LogicalRecord{
			Time: end - time.Second, Item: logItem, Offset: 0, Size: 64 << 10, Op: trace.OpWrite,
		})
		start = end
	}
	ss.fixed(logItem, logRecs)
	w.Placement = placement
	w.Streams = ss.list
	return w, nil
}

// scanStream registers a lazy full sequential scan of the item starting
// at t and returns how long the scan takes at the given rate. The
// records follow entirely from the plan, so nothing is drawn or stored.
func scanStream(ss *streams, id trace.ItemID, size int64, t time.Duration, bps float64, ioSize int32) time.Duration {
	gap := time.Duration(float64(ioSize) / bps * float64(time.Second))
	ss.pure(id, func(emit emitFunc) {
		var off int64
		d := time.Duration(0)
		for off < size {
			n := ioSize
			if size-off < int64(n) {
				n = int32(size - off)
			}
			if !emit(t+d, off, n, trace.OpRead) {
				return
			}
			off += int64(n)
			d += gap
		}
	})
	ios := (size + int64(ioSize) - 1) / int64(ioSize)
	return time.Duration(ios) * gap
}

// bulkStream registers total bytes of lazy sequential I/O to the item
// starting at t, beginning at a random aligned offset drawn at planning
// time, and returns the finish time.
func bulkStream(ss *streams, rng *rand.Rand, id trace.ItemID, size int64, t time.Duration, total int64, bps float64, ioSize int32, op trace.Op) time.Duration {
	if total <= 0 {
		return t
	}
	gap := time.Duration(float64(ioSize) / bps * float64(time.Second))
	start := randOffset(rng, size-total, ioSize)
	ss.pure(id, func(emit emitFunc) {
		off := start
		tt := t
		var done int64
		for done < total {
			n := ioSize
			if total-done < int64(n) {
				n = int32(total - done)
			}
			if !emit(tt, off, n, op) {
				return
			}
			off = (off + int64(n)) % size
			done += int64(n)
			tt += gap
		}
	})
	ios := (total + int64(ioSize) - 1) / int64(ioSize)
	return t + time.Duration(ios)*gap
}
