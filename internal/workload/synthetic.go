// Generic synthetic workload: a configurable mix of steady and bursty
// items for tests, examples and ablation studies.

package workload

import (
	"fmt"
	"math/rand"
	"time"

	"esm/internal/trace"
)

// SyntheticConfig parameterises the generic generator.
type SyntheticConfig struct {
	// Enclosures is the enclosure count.
	Enclosures int
	// SteadyItems are continuously accessed items (classify P3).
	SteadyItems int
	// SteadyIOPS is the rate per steady item.
	SteadyIOPS float64
	// BurstItems are items accessed in occasional bursts (classify P1 or
	// P2 depending on BurstReadFrac).
	BurstItems int
	// BurstEvery is the mean gap between an item's bursts; it must exceed
	// the break-even time for the items to classify P1/P2.
	BurstEvery time.Duration
	// BurstLen is the number of I/Os per burst.
	BurstLen int
	// BurstReadFrac is the read fraction of burst I/Os.
	BurstReadFrac float64
	// IdleItems are items never accessed (classify P0).
	IdleItems int
	// ItemBytes is the size of every item.
	ItemBytes int64
	// Duration is the trace length.
	Duration time.Duration
	// Seed makes the trace deterministic.
	Seed int64
}

// DefaultSyntheticConfig returns a small mixed workload.
func DefaultSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{
		Enclosures:    4,
		SteadyItems:   4,
		SteadyIOPS:    50,
		BurstItems:    12,
		BurstEvery:    5 * time.Minute,
		BurstLen:      30,
		BurstReadFrac: 0.9,
		IdleItems:     4,
		ItemBytes:     1 << 30,
		Duration:      time.Hour,
		Seed:          1,
	}
}

// Validate reports whether the configuration is usable.
func (c SyntheticConfig) Validate() error {
	if c.Enclosures <= 0 || c.ItemBytes <= 0 || c.Duration <= 0 {
		return fmt.Errorf("workload: synthetic config must be positive")
	}
	if c.SteadyItems < 0 || c.BurstItems < 0 || c.IdleItems < 0 {
		return fmt.Errorf("workload: synthetic item counts must be non-negative")
	}
	return nil
}

// GenerateSynthetic builds the synthetic workload. Items are spread
// round-robin over the enclosures.
func GenerateSynthetic(cfg SyntheticConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := trace.NewCatalog()
	w := &Workload{
		Name:       "synthetic",
		Catalog:    cat,
		ClosedLoop: true,
		Enclosures: cfg.Enclosures,
		Duration:   cfg.Duration,
	}
	var ss streams
	var placement []int
	next := 0
	place := func() int {
		e := next % cfg.Enclosures
		next++
		return e
	}

	for i := 0; i < cfg.SteadyItems; i++ {
		id := cat.Add(fmt.Sprintf("steady%03d", i), cfg.ItemBytes)
		placement = append(placement, place())
		ss.lazy(id, rng.Int63(), func(rng *rand.Rand, emit emitFunc) {
			genContinuous(rng, emit, cfg.ItemBytes, cfg.Duration, cfg.SteadyIOPS, 0.6, 8<<10)
		})
	}
	for i := 0; i < cfg.BurstItems; i++ {
		id := cat.Add(fmt.Sprintf("burst%03d", i), cfg.ItemBytes)
		placement = append(placement, place())
		ss.lazy(id, rng.Int63(), func(rng *rand.Rand, emit emitFunc) {
			t := expDur(rng, cfg.BurstEvery)
			for t < cfg.Duration {
				for j := 0; j < cfg.BurstLen && t < cfg.Duration; j++ {
					op := trace.OpRead
					if rng.Float64() >= cfg.BurstReadFrac {
						op = trace.OpWrite
					}
					if !emit(t, randOffset(rng, cfg.ItemBytes, 8<<10), 8<<10, op) {
						return
					}
					t += expDur(rng, 300*time.Millisecond)
				}
				t += 70*time.Second + expDur(rng, cfg.BurstEvery)
			}
		})
	}
	for i := 0; i < cfg.IdleItems; i++ {
		cat.Add(fmt.Sprintf("idle%03d", i), cfg.ItemBytes)
		placement = append(placement, place())
	}
	w.Placement = placement
	w.Streams = ss.list
	return w, nil
}
