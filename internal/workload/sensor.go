// Sensor-archive workload: the paper's introduction motivates the
// system with "data intensive applications such as sensor data
// archives"; this generator models one. It is not part of the paper's
// evaluation — it exists to show the method generalises beyond the
// three evaluated applications, and it is the fourth runnable example.
//
// Structure: Streams sensors append continuously to their active
// segment (small writes, no gap beyond the break-even time → P3).
// Sealed segments are read back occasionally by analytics jobs (long
// gaps between scans → P1), a compaction job periodically rewrites the
// oldest sealed segments (write-majority bursts → P2), and the deep
// archive is never touched inside a monitoring period (→ P0). An
// archive is therefore the extreme P0/P1-heavy case: almost everything
// qualifies for power-off once the active segments are consolidated.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"esm/internal/trace"
)

// SensorConfig parameterises the sensor-archive generator.
type SensorConfig struct {
	// Streams is the number of sensors appending concurrently.
	Streams int
	// SealedPerStream is the number of sealed (historical) segments per
	// stream.
	SealedPerStream int
	// ArchiveFrac is the fraction of sealed segments in the deep archive
	// (never read during the trace).
	ArchiveFrac float64
	// Enclosures is the enclosure count.
	Enclosures int
	// Duration is the trace length.
	Duration time.Duration
	// Seed makes the trace deterministic.
	Seed int64
	// AppendEvery is the mean gap between one stream's appends.
	AppendEvery time.Duration
	// ScanEvery is the mean gap between analytic scans of one sealed
	// segment.
	ScanEvery time.Duration
	// CompactEvery is the mean gap between compaction jobs.
	CompactEvery time.Duration
}

// DefaultSensorConfig returns a laptop-scale archive: 48 streams, 40
// sealed segments each, two hours.
func DefaultSensorConfig() SensorConfig {
	return SensorConfig{
		Streams:         48,
		SealedPerStream: 40,
		ArchiveFrac:     0.8,
		Enclosures:      8,
		Duration:        2 * time.Hour,
		Seed:            45,
		AppendEvery:     800 * time.Millisecond,
		ScanEvery:       3 * time.Hour,
		CompactEvery:    20 * time.Minute,
	}
}

// Scaled returns the configuration with the duration multiplied by f.
func (c SensorConfig) Scaled(f float64) SensorConfig {
	c.Duration = time.Duration(float64(c.Duration) * f)
	return c
}

// Validate reports whether the configuration is usable.
func (c SensorConfig) Validate() error {
	if c.Streams <= 0 || c.SealedPerStream <= 0 || c.Enclosures <= 0 {
		return fmt.Errorf("workload: sensor config must be positive")
	}
	if c.ArchiveFrac < 0 || c.ArchiveFrac >= 1 {
		return fmt.Errorf("workload: sensor ArchiveFrac out of [0,1)")
	}
	if c.Duration < 10*time.Minute {
		return fmt.Errorf("workload: sensor duration %v too short to classify patterns", c.Duration)
	}
	return nil
}

// GenerateSensorArchive builds the sensor-archive workload.
func GenerateSensorArchive(cfg SensorConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := trace.NewCatalog()
	w := &Workload{
		Name:       "sensor",
		Catalog:    cat,
		ClosedLoop: true,
		Enclosures: cfg.Enclosures,
		Duration:   cfg.Duration,
	}
	var ss streams
	var placement []int
	next := 0
	place := func() int {
		e := next % cfg.Enclosures
		next++
		return e
	}

	var compactable []struct {
		id   trace.ItemID
		size int64
	}
	for st := 0; st < cfg.Streams; st++ {
		// Active segment: continuous small appends.
		active := cat.Add(fmt.Sprintf("sensor%03d/active", st), 512<<20)
		placement = append(placement, place())
		ss.lazy(active, rng.Int63(), func(rng *rand.Rand, emit emitFunc) {
			genAppends(rng, emit, 512<<20, cfg.Duration, cfg.AppendEvery)
		})

		for seg := 0; seg < cfg.SealedPerStream; seg++ {
			size := lognormBytes(rng, 1<<30, 0.7, 128<<20, 6<<30)
			id := cat.Add(fmt.Sprintf("sensor%03d/seg%04d", st, seg), size)
			placement = append(placement, place())
			if float64(seg) < cfg.ArchiveFrac*float64(cfg.SealedPerStream) {
				// Deep archive: untouched (P0). A few become compaction
				// inputs instead.
				if seg%7 == 3 {
					compactable = append(compactable, struct {
						id   trace.ItemID
						size int64
					}{id, size})
				}
				continue
			}
			// Analytics: whole-segment scans at long intervals (P1).
			ss.lazy(id, rng.Int63(), func(rng *rand.Rand, emit emitFunc) {
				genAnalyticsScans(rng, emit, size, cfg)
			})
		}
	}

	// Compaction: periodic jobs pick the next compactable segment, read
	// it fully and rewrite it (write-majority → P2).
	ci := 0
	for t := expDur(rng, cfg.CompactEvery); t < cfg.Duration && len(compactable) > 0; t += 70*time.Second + expDur(rng, cfg.CompactEvery) {
		seg := compactable[ci%len(compactable)]
		ci++
		t = compactionStream(&ss, rng, seg.id, seg.size, t, cfg.Duration)
	}

	w.Placement = placement
	w.Streams = ss.list
	return w, nil
}

// genAppends emits a continuous append stream; gaps never reach the
// break-even time, so the item classifies P3.
func genAppends(rng *rand.Rand, emit emitFunc, size int64, dur time.Duration, every time.Duration) {
	var off int64
	t := expDur(rng, every)
	for t < dur {
		n := int32(4<<10 + rng.Intn(28<<10))
		if off+int64(n) > size {
			off = 0
		}
		if !emit(t, off, n, trace.OpWrite) {
			return
		}
		off += int64(n)
		t += clampDur(expDur(rng, every), time.Millisecond, 45*time.Second)
	}
}

// genAnalyticsScans emits occasional partial scans of a sealed segment.
func genAnalyticsScans(rng *rand.Rand, emit emitFunc, size int64, cfg SensorConfig) {
	for t := expDur(rng, cfg.ScanEvery); t < cfg.Duration; t += 70*time.Second + expDur(rng, cfg.ScanEvery) {
		// Scan a random slice of the segment sequentially.
		span := size / int64(4+rng.Intn(8))
		off := randOffset(rng, size-span, 1<<20)
		end := off + span
		for o := off; o < end && t < cfg.Duration; o += 1 << 20 {
			n := int32(1 << 20)
			if end-o < int64(n) {
				n = int32(end - o)
			}
			if !emit(t, o, n, trace.OpRead) {
				return
			}
			t += 25 * time.Millisecond
		}
	}
}

// compactionStream registers a lazy compaction pass — read a slice of
// the segment, rewrite it in place, write-heavy overall — and returns
// the job's finish time. The slice offset is drawn at planning time so
// the schedule stays on the master RNG.
func compactionStream(ss *streams, rng *rand.Rand, id trace.ItemID, size int64, t, dur time.Duration) time.Duration {
	span := size / 8
	off := randOffset(rng, size-span, 1<<20)
	end := off + span
	ss.pure(id, func(emit emitFunc) {
		tt := t
		for o := off; o < end && tt < dur; o += 4 << 20 {
			if !emit(tt, o, 1<<20, trace.OpRead) {
				return
			}
			tt += 30 * time.Millisecond
		}
		for o := off; o < end && tt < dur; o += 1 << 20 {
			n := int32(1 << 20)
			if end-o < int64(n) {
				n = int32(end - o)
			}
			if !emit(tt, o, n, trace.OpWrite) {
				return
			}
			tt += 25 * time.Millisecond
		}
	})
	// Analytic finish time: it matches the emitted records exactly while
	// the job fits inside dur; past dur both the stream and the schedule
	// loop stop, so any difference is unobservable.
	reads := (span + (4 << 20) - 1) / (4 << 20)
	writes := (span + (1 << 20) - 1) / (1 << 20)
	return t + time.Duration(reads)*30*time.Millisecond + time.Duration(writes)*25*time.Millisecond
}
