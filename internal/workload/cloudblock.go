// Cloud block-storage workload: a multi-tenant volume population shaped
// like the Alibaba production study (Li et al.): thousands of virtual
// disks owned by tenants whose sizes follow a Zipf law, traffic that is
// write-dominant (~72% writes) and concentrated on a small hot set,
// diurnal load swings with short bursts on top, and volume churn as
// tenants arrive and depart mid-trace.
//
// Structure: Volumes virtual disks are distributed over Tenants tenants
// with Zipf(s) weights, so a handful of tenants own most of the fleet
// and, with it, most of the traffic. Each volume is one data item with
// one lazy stream; a 10k-volume, 100M-record trace costs O(volumes)
// memory to stream, never O(records). Every stream is deterministic
// from the master seed: the diurnal modulation is computed on the
// simulated clock (thinning against the volume's own RNG), not wall
// time.
//
// Volume classes:
//
//   - hot (~2%): latency-critical disks (databases, queues) issuing
//     steadily at tens of IOPS with frequent short bursts. P3, and
//     nearly all of the record volume.
//   - warm (~8%): ordinary application disks, active every few
//     seconds. P3 at the enclosure level; their traffic keeps any
//     enclosure they sit on from idling.
//   - cold (~90%): the long tail — backup, archived and forgotten
//     disks touched a handful of times a day. P0/P1/P2 candidates
//     that make consolidation pay: with ~800 volumes per enclosure,
//     only a dormant tail leaves enclosure-level gaps beyond the
//     spin-down break-even.
//
// Within a volume, writes are skewed to a hot region at the front
// (journals, metadata, appends) while reads spread across the whole
// disk — the access-locality half of the study's write skew.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"esm/internal/trace"
)

// CloudBlockConfig parameterises the cloud-block generator.
type CloudBlockConfig struct {
	// Tenants is the number of tenants owning volumes.
	Tenants int
	// Volumes is the total virtual-disk population across all tenants.
	Volumes int
	// Enclosures is the number of disk enclosures.
	Enclosures int
	// Duration is the trace span.
	Duration time.Duration
	// Seed makes the trace deterministic.
	Seed int64

	// ZipfS is the tenant-size skew exponent: tenant k's share of the
	// volume population is proportional to 1/(k+1)^ZipfS.
	ZipfS float64
	// DayPeriod is the diurnal cycle length. Production days are
	// compressed so a 6 h trace sees several peaks and troughs.
	DayPeriod time.Duration
	// ChurnFrac is the fraction of volumes that churn: half of them
	// arrive mid-trace, half depart mid-trace.
	ChurnFrac float64
	// WriteFrac is the write fraction of volume traffic (the study
	// measures ~72% writes).
	WriteFrac float64
}

// DefaultCloudBlockConfig returns the production-scale configuration:
// 10k volumes over 400 tenants on 12 enclosures, calibrated to emit on
// the order of 100M records over the 6 h span.
func DefaultCloudBlockConfig() CloudBlockConfig {
	return CloudBlockConfig{
		Tenants:    400,
		Volumes:    10000,
		Enclosures: 12,
		Duration:   6 * time.Hour,
		Seed:       42,
		ZipfS:      1.1,
		DayPeriod:  2 * time.Hour,
		ChurnFrac:  0.30,
		WriteFrac:  0.72,
	}
}

// Scaled returns the configuration with the duration multiplied by f.
// Arrival behaviour per unit time is unchanged, so record volume scales
// ~linearly with f.
func (c CloudBlockConfig) Scaled(f float64) CloudBlockConfig {
	c.Duration = time.Duration(float64(c.Duration) * f)
	return c
}

// Validate reports whether the configuration is usable.
func (c CloudBlockConfig) Validate() error {
	if c.Tenants <= 0 || c.Volumes < c.Tenants || c.Enclosures <= 0 {
		return fmt.Errorf("workload: cloudblock config must have tenants, volumes >= tenants and enclosures")
	}
	if c.Duration < 4*time.Minute {
		return fmt.Errorf("workload: cloudblock duration %v too short to observe arrival structure", c.Duration)
	}
	if c.ZipfS <= 0 || c.DayPeriod <= 0 {
		return fmt.Errorf("workload: cloudblock zipf exponent and day period must be positive")
	}
	if c.ChurnFrac < 0 || c.ChurnFrac > 1 || c.WriteFrac < 0 || c.WriteFrac > 1 {
		return fmt.Errorf("workload: cloudblock churn and write fractions must be in [0,1]")
	}
	return nil
}

// volClass is a cloud volume's traffic class.
type volClass int

const (
	volHot volClass = iota
	volWarm
	volCold
)

// classOf assigns volume v its class deterministically (independent of
// any RNG stream, so changing a rate constant never reshuffles the
// population): ~2% hot, ~8% warm, rest cold, spread across tenants by
// the multiplicative hash. The steep skew is the production shape: a
// small P3 core carries nearly all traffic, and keeping its byte mass
// small is what lets the reorganisation finish moving it onto the hot
// enclosures within the trace.
func classOf(v int) volClass {
	h := uint32(v) * 2654435761 % 100
	switch {
	case h < 2:
		return volHot
	case h < 10:
		return volWarm
	default:
		return volCold
	}
}

// cloudProfile is one volume's arrival shape.
type cloudProfile struct {
	// peakGap is the mean inter-arrival at diurnal peak.
	peakGap time.Duration
	// burstProb is the per-arrival chance of a burst train; burstMaxN
	// its maximum length.
	burstProb float64
	burstMaxN int
	// phase shifts the tenant's diurnal cycle; depth is the peak-to-
	// trough swing in [0,1).
	phase float64
	depth float64
	// start/end bound the volume's life (churn).
	start, end time.Duration
	writeFrac  float64
	dayPeriod  time.Duration
}

// GenerateCloudBlock builds the cloud-block workload. The trace is
// open-loop: cloud volumes are driven by independent guest VMs, not one
// blocking application thread, which also makes the replay shardable.
func GenerateCloudBlock(cfg CloudBlockConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := trace.NewCatalog()
	w := &Workload{
		Name:       "cloudblock",
		Catalog:    cat,
		ClosedLoop: false,
		Enclosures: cfg.Enclosures,
		Duration:   cfg.Duration,
	}

	counts := zipfCounts(cfg.Tenants, cfg.Volumes, cfg.ZipfS)
	used := make([]int64, cfg.Enclosures)
	var ss streams
	var placement []int

	v := 0
	for ten, n := range counts {
		// One diurnal phase per tenant: a tenant's guests share a time
		// zone, so its volumes peak together.
		phase := rng.Float64() * 2 * math.Pi
		for i := 0; i < n; i++ {
			class := classOf(v)
			var size int64
			p := cloudProfile{
				phase:     phase,
				depth:     0.45 + 0.25*rng.Float64(),
				start:     0,
				end:       cfg.Duration,
				writeFrac: cfg.WriteFrac,
				dayPeriod: cfg.DayPeriod,
			}
			switch class {
			case volHot:
				size = lognormBytes(rng, 2<<30, 0.7, 256<<20, 8<<30)
				p.peakGap = 30*time.Millisecond + time.Duration(rng.Int63n(int64(20*time.Millisecond)))
				p.burstProb, p.burstMaxN = 0.010, 48
			case volWarm:
				size = lognormBytes(rng, 1<<30, 0.7, 128<<20, 4<<30)
				p.peakGap = 2*time.Second + time.Duration(rng.Int63n(int64(2*time.Second)))
				p.burstProb, p.burstMaxN = 0.015, 32
			default:
				// Dormant archives: hour-scale gaps, because consolidation
				// only pays when a whole enclosure's worth of cold volumes
				// stays collectively quiet past the spin-down break-even.
				// ~830 volumes/enclosure divide the per-volume gap, so
				// minute-scale "cold" would still mean sub-second
				// enclosure-level traffic.
				size = lognormBytes(rng, 512<<20, 0.8, 64<<20, 2<<30)
				p.peakGap = 16*time.Hour + time.Duration(rng.Int63n(int64(16*time.Hour)))
				p.burstProb, p.burstMaxN = 0.02, 16
			}
			// Churn: half the churned volumes arrive mid-trace, half
			// depart mid-trace. Draws come from the master RNG at planning
			// time so the streams stay independently re-iterable.
			if churn := rng.Float64(); churn < cfg.ChurnFrac {
				frac := 0.2 + 0.6*rng.Float64()
				if churn < cfg.ChurnFrac/2 {
					p.start = time.Duration(frac * float64(cfg.Duration))
				} else {
					p.end = time.Duration(frac * float64(cfg.Duration))
				}
			}

			id := cat.Add(fmt.Sprintf("t%03d/vol%05d", ten, v), size)
			placement = append(placement, placeLeastLoaded(used, size))
			vsize := size
			prof := p
			ss.lazy(id, rng.Int63(), func(rng *rand.Rand, emit emitFunc) {
				genCloudVolume(rng, emit, vsize, prof)
			})
			v++
		}
	}
	w.Placement = placement
	w.Streams = ss.list
	return w, nil
}

// zipfCounts splits total volumes over tenants proportionally to
// 1/(k+1)^s, giving leftovers to the heaviest tenants. Every tenant
// owns at least one volume (total >= tenants is validated).
func zipfCounts(tenants, total int, s float64) []int {
	weights := make([]float64, tenants)
	var sum float64
	for k := range weights {
		weights[k] = 1 / math.Pow(float64(k+1), s)
		sum += weights[k]
	}
	counts := make([]int, tenants)
	assigned := 0
	for k := range counts {
		counts[k] = 1 + int(weights[k]/sum*float64(total-tenants))
		assigned += counts[k]
	}
	for k := 0; assigned < total; k = (k + 1) % tenants {
		counts[k]++
		assigned++
	}
	for k := 0; assigned > total; k = (k + 1) % tenants {
		if counts[k] > 1 {
			counts[k]--
			assigned--
		}
	}
	return counts
}

// placeLeastLoaded assigns a volume to the enclosure with the fewest
// provisioned bytes — the arrival-order greedy a real provisioner uses,
// which mixes hot and cold volumes on every enclosure (the layout the
// paper's logical reorganisation then improves on).
func placeLeastLoaded(used []int64, size int64) int {
	best := 0
	for e := 1; e < len(used); e++ {
		if used[e] < used[best] {
			best = e
		}
	}
	used[best] += size
	return best
}

// diurnal returns the thinning probability at simulated time t: 1 at
// the tenant's daily peak, 1-depth at the trough.
func (p *cloudProfile) diurnal(t time.Duration) float64 {
	day := 2 * math.Pi * float64(t) / float64(p.dayPeriod)
	return 1 - p.depth*(0.5+0.5*math.Cos(day+p.phase))
}

// genCloudVolume emits one volume's arrivals: exponential gaps at the
// class's peak rate, thinned by the tenant's diurnal curve, with
// occasional short burst trains, between the volume's churn bounds.
// Writes are skewed to the volume's front hot region; reads spread over
// the whole disk.
func genCloudVolume(rng *rand.Rand, emit emitFunc, size int64, p cloudProfile) {
	if p.end <= p.start {
		return
	}
	t := p.start + expDur(rng, p.peakGap)
	for t < p.end {
		// Thinning: every candidate arrival costs one uniform draw, so
		// the accepted process is an inhomogeneous Poisson process on the
		// simulated clock, deterministic for the volume's seed.
		if rng.Float64() <= p.diurnal(t) {
			if !emitCloudIO(rng, emit, t, size, p.writeFrac) {
				return
			}
			if rng.Float64() < p.burstProb {
				n := 4 + rng.Intn(p.burstMaxN-3)
				bt := t
				for i := 0; i < n; i++ {
					bt += time.Millisecond + expDur(rng, 4*time.Millisecond)
					if bt >= p.end {
						break
					}
					if !emitCloudIO(rng, emit, bt, size, p.writeFrac) {
						return
					}
				}
				if bt > t {
					t = bt
				}
			}
		}
		t += expDur(rng, p.peakGap)
	}
}

// emitCloudIO draws one I/O's op, size and offset and emits it.
func emitCloudIO(rng *rand.Rand, emit emitFunc, t time.Duration, size int64, writeFrac float64) bool {
	if rng.Float64() < writeFrac {
		// Small writes dominate; ~70% land in the front hot region
		// (journals, metadata, appends).
		var n int32 = 4 << 10
		if rng.Float64() < 0.3 {
			n = 16 << 10
		}
		region := size
		if rng.Float64() < 0.7 {
			region = size / 8
			if region < int64(n) {
				region = size
			}
		}
		return emit(t, randOffset(rng, region, n), n, trace.OpWrite)
	}
	var n int32
	switch r := rng.Float64(); {
	case r < 0.5:
		n = 16 << 10
	case r < 0.9:
		n = 64 << 10
	default:
		n = 256 << 10
	}
	return emit(t, randOffset(rng, size, n), n, trace.OpRead)
}
