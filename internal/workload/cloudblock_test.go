package workload

import (
	"bytes"
	"testing"
	"time"

	"esm/internal/storage"
	"esm/internal/trace"
)

// testCloudBlockConfig is a small, fast configuration that still has
// every structural feature: multiple tenants, all three classes, churn.
func testCloudBlockConfig() CloudBlockConfig {
	cfg := DefaultCloudBlockConfig()
	cfg.Tenants = 20
	cfg.Volumes = 240
	cfg.Duration = 6 * time.Minute
	return cfg
}

// TestCloudBlockDeterministic requires byte-identical traces from the
// same seed — the property the tracegen determinism gate rests on. The
// stream codec is the byte-level witness.
func TestCloudBlockDeterministic(t *testing.T) {
	encode := func() []byte {
		w, err := GenerateCloudBlock(testCloudBlockConfig())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		sw := trace.NewStreamWriter(&buf)
		src := w.Source()
		for {
			rec, ok := src.Next()
			if !ok {
				break
			}
			if err := sw.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := src.Err(); err != nil {
			t.Fatal(err)
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different traces (%d vs %d bytes)", len(a), len(b))
	}
	cfg := testCloudBlockConfig()
	cfg.Seed++
	w, err := GenerateCloudBlock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw := trace.NewStreamWriter(&buf)
	src := w.Source()
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if err := sw.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if bytes.Equal(a, buf.Bytes()) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestCloudBlockFitsEnclosures verifies the volume population bin-packs
// under the test bed's enclosure capacity — at default scale too, where
// 10k volumes must fit 12 x 1.7 TB.
func TestCloudBlockFitsEnclosures(t *testing.T) {
	for _, cfg := range []CloudBlockConfig{testCloudBlockConfig(), DefaultCloudBlockConfig()} {
		w, err := GenerateCloudBlock(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cap := storage.DefaultConfig(cfg.Enclosures).EnclosureCapacity
		used := make([]int64, cfg.Enclosures)
		for id, enc := range w.Placement {
			used[enc] += w.Catalog.Item(trace.ItemID(id)).Size
		}
		for e, u := range used {
			if u > cap {
				t.Fatalf("%d volumes: enclosure %d provisioned %d bytes over capacity %d", cfg.Volumes, e, u, cap)
			}
		}
	}
}

// TestCloudBlockShape checks the workload's statistical promises on a
// small trace: write dominance near the configured fraction, Zipf
// tenant skew (the top tenant decile owns a disproportionate share of
// volumes), churn (some volumes start late, some end early), and that
// the trace is open-loop.
func TestCloudBlockShape(t *testing.T) {
	cfg := testCloudBlockConfig()
	w, err := GenerateCloudBlock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.ClosedLoop {
		t.Fatal("cloudblock must replay open-loop (shardable)")
	}
	if w.Catalog.Len() != cfg.Volumes {
		t.Fatalf("catalog has %d items, want %d volumes", w.Catalog.Len(), cfg.Volumes)
	}

	counts := zipfCounts(cfg.Tenants, cfg.Volumes, cfg.ZipfS)
	top := 0
	for k := 0; k < cfg.Tenants/10; k++ {
		top += counts[k]
	}
	if frac := float64(top) / float64(cfg.Volumes); frac < 0.25 {
		t.Fatalf("top tenant decile owns %.0f%% of volumes; want Zipf-skewed (>25%%)", frac*100)
	}

	var n, writes int64
	first := make(map[trace.ItemID]time.Duration)
	last := make(map[trace.ItemID]time.Duration)
	src := w.Source()
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		n++
		if rec.Op == trace.OpWrite {
			writes++
		}
		if _, ok := first[rec.Item]; !ok {
			first[rec.Item] = rec.Time
		}
		last[rec.Item] = rec.Time
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty trace")
	}
	wf := float64(writes) / float64(n)
	if wf < cfg.WriteFrac-0.05 || wf > cfg.WriteFrac+0.05 {
		t.Fatalf("write fraction %.3f, want ~%.2f", wf, cfg.WriteFrac)
	}
	lateArrivals, earlyDepartures := 0, 0
	for id, ft := range first {
		if ft > cfg.Duration/5 {
			lateArrivals++
		}
		if last[id] < cfg.Duration*4/5 {
			earlyDepartures++
		}
	}
	if lateArrivals == 0 || earlyDepartures == 0 {
		t.Fatalf("no churn observed (%d late arrivals, %d early departures)", lateArrivals, earlyDepartures)
	}
}

// TestCloudBlockValidate covers the configuration guard rails.
func TestCloudBlockValidate(t *testing.T) {
	bad := []func(*CloudBlockConfig){
		func(c *CloudBlockConfig) { c.Tenants = 0 },
		func(c *CloudBlockConfig) { c.Volumes = c.Tenants - 1 },
		func(c *CloudBlockConfig) { c.Enclosures = 0 },
		func(c *CloudBlockConfig) { c.Duration = time.Minute },
		func(c *CloudBlockConfig) { c.ZipfS = 0 },
		func(c *CloudBlockConfig) { c.DayPeriod = 0 },
		func(c *CloudBlockConfig) { c.ChurnFrac = 1.5 },
		func(c *CloudBlockConfig) { c.WriteFrac = -0.1 },
	}
	for i, mutate := range bad {
		cfg := DefaultCloudBlockConfig()
		mutate(&cfg)
		if _, err := GenerateCloudBlock(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

// TestZipfCountsExact pins the splitter's contract: totals match and
// every tenant owns at least one volume.
func TestZipfCountsExact(t *testing.T) {
	for _, tc := range []struct{ tenants, total int }{{1, 1}, {5, 5}, {20, 300}, {400, 10000}} {
		counts := zipfCounts(tc.tenants, tc.total, 1.1)
		sum := 0
		for k, c := range counts {
			if c < 1 {
				t.Fatalf("tenants=%d total=%d: tenant %d owns %d volumes", tc.tenants, tc.total, k, c)
			}
			sum += c
		}
		if sum != tc.total {
			t.Fatalf("tenants=%d: counts sum to %d, want %d", tc.tenants, sum, tc.total)
		}
		if tc.tenants > 1 && tc.total > tc.tenants && counts[0] <= counts[tc.tenants-1] {
			t.Fatalf("tenant 0 (%d volumes) not heavier than tenant %d (%d)", counts[0], tc.tenants-1, counts[tc.tenants-1])
		}
	}
}
