// Lazy per-item event streams. Generators no longer build one giant
// record slice: each data item registers a re-iterable sequence that
// synthesises its records on demand from its own seeded RNG, and
// Workload.Source merges the per-item cursors on the fly. Peak memory
// for a streaming replay is O(items), however long the trace runs.

package workload

import (
	"iter"
	"math/rand"
	"time"

	"esm/internal/trace"
)

// ItemStream is one data item's lazily generated, time-ordered event
// sequence. The Seq is re-iterable: each iteration re-derives the same
// records from the stream's fixed seed.
type ItemStream struct {
	Item trace.ItemID
	Seq  iter.Seq[trace.LogicalRecord]
}

// emitFunc receives one generated event; it returns false when the
// consumer has stopped and the generator must return.
type emitFunc func(t time.Duration, off int64, size int32, op trace.Op) bool

// streams collects the per-item sequences while a generator plans a
// workload.
type streams struct {
	list []ItemStream
}

// lazy registers a generator-backed stream for item id. gen runs once
// per iteration with a fresh RNG seeded by seed, so the stream is both
// lazy and deterministic; it must emit records in time order and stop
// when emit returns false.
func (ss *streams) lazy(id trace.ItemID, seed int64, gen func(rng *rand.Rand, emit emitFunc)) {
	ss.list = append(ss.list, ItemStream{
		Item: id,
		Seq: func(yield func(trace.LogicalRecord) bool) {
			rng := rand.New(rand.NewSource(seed))
			gen(rng, func(t time.Duration, off int64, size int32, op trace.Op) bool {
				return yield(trace.LogicalRecord{Time: t, Item: id, Offset: off, Size: size, Op: op})
			})
		},
	})
}

// pure registers a deterministic stream that needs no RNG (sequential
// scans whose offsets follow from the plan). gen must emit records in
// time order and stop when emit returns false.
func (ss *streams) pure(id trace.ItemID, gen func(emit emitFunc)) {
	ss.list = append(ss.list, ItemStream{
		Item: id,
		Seq: func(yield func(trace.LogicalRecord) bool) {
			gen(func(t time.Duration, off int64, size int32, op trace.Op) bool {
				return yield(trace.LogicalRecord{Time: t, Item: id, Offset: off, Size: size, Op: op})
			})
		},
	})
}

// fixed registers a small pre-materialized stream (planning-time records
// such as the DSS query log). recs must be sorted by time.
func (ss *streams) fixed(id trace.ItemID, recs []trace.LogicalRecord) {
	ss.list = append(ss.list, ItemStream{
		Item: id,
		Seq: func(yield func(trace.LogicalRecord) bool) {
			for _, r := range recs {
				if !yield(r) {
					return
				}
			}
		},
	})
}
