package workload

import (
	"testing"

	"esm/internal/trace"
)

// TestWorkloadsAreLazy pins the streaming contract: generators plan
// streams without materializing records, Source re-yields the identical
// trace on every call, and EnsureRecords matches the streamed order.
func TestWorkloadsAreLazy(t *testing.T) {
	w, err := GenerateSynthetic(DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	if w.Records != nil {
		t.Fatal("generator materialized Records eagerly")
	}
	if len(w.Streams) == 0 {
		t.Fatal("generator registered no streams")
	}

	first, err := trace.CollectSource(w.Source())
	if err != nil {
		t.Fatal(err)
	}
	second, err := trace.CollectSource(w.Source())
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("re-iterated stream sizes differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("record %d differs between iterations", i)
		}
	}

	recs := w.EnsureRecords()
	if len(recs) != len(first) {
		t.Fatalf("EnsureRecords has %d records, stream had %d", len(recs), len(first))
	}
	for i := range recs {
		if recs[i] != first[i] {
			t.Fatalf("record %d differs between EnsureRecords and stream", i)
		}
	}

	// After materialization, Source must serve the cached slice.
	again, err := trace.CollectSource(w.Source())
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(recs) {
		t.Fatalf("post-materialization source has %d records, want %d", len(again), len(recs))
	}
}

// TestSourceStopsAtDuration checks the merged stream honors the
// workload's nominal span exactly, like the old post-sort truncation.
func TestSourceStopsAtDuration(t *testing.T) {
	w, err := GenerateFileServer(DefaultFileServerConfig().Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	src := w.Source()
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if rec.Time > w.Duration {
			t.Fatalf("record at %v beyond duration %v", rec.Time, w.Duration)
		}
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
}
