// OLTP workload: a TPC-C-like trace matching Table I's configuration
// (hash-distributed DB over 9 enclosures, log on 1) and Fig. 6's item
// pattern mix (≈76% P3, ≈23% P1).
//
// The transactional tables (stock, customer, order_line, orders,
// new_order, history, district) receive continuous NURand-skewed random
// I/O — every partition classifies P3 — while the master-data tables
// (item, warehouse) are served from the DBMS buffer pool and only see
// occasional burst misses with long gaps, which classifies them P1. The
// log device sees a continuous synchronous write stream (P3).
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"esm/internal/trace"
)

// oltpTable describes one TPC-C table's per-partition behaviour.
type oltpTable struct {
	name     string
	size     int64   // bytes per partition
	iops     float64 // continuous random I/O per partition (P3 tables)
	readFrac float64
	p1       bool // master data: burst-on-miss instead of continuous
}

// oltpTables is the TPC-C schema as laid out in Table I. The continuous
// rates sum to ≈590 IOPS per DB enclosure, which keeps every enclosure
// above DDR's LowTH (225) — the reason the paper's DDR cannot find cold
// enclosures on OLTP — and puts Σ I_it of the P3 items near 5300 IOPS,
// which makes the proposed method provision 8 of the 10 enclosures hot,
// as the paper's modest 15.7% OLTP saving implies.
var oltpTables = []oltpTable{
	{name: "stock", size: 28 << 30, iops: 200, readFrac: 0.55},
	{name: "customer", size: 11 << 30, iops: 120, readFrac: 0.70},
	{name: "order_line", size: 16 << 30, iops: 120, readFrac: 0.25},
	{name: "orders", size: 5 << 30, iops: 60, readFrac: 0.50},
	{name: "new_order", size: 512 << 20, iops: 30, readFrac: 0.35},
	{name: "history", size: 2 << 30, iops: 20, readFrac: 0.0},
	{name: "district", size: 128 << 20, iops: 40, readFrac: 0.45},
	{name: "item", size: 1200 << 20, p1: true, readFrac: 0.97},
	{name: "warehouse", size: 600 << 20, p1: true, readFrac: 0.95},
}

// OLTPConfig parameterises the OLTP generator.
type OLTPConfig struct {
	// Warehouses is the nominal TPC-C scale (Table I: 5000); reported
	// only, the I/O rates are set directly.
	Warehouses int
	// DBEnclosures is the number of enclosures holding the database
	// (Table I: 9); the log gets one more.
	DBEnclosures int
	// Duration is the trace length (Table I: 1.8 h).
	Duration time.Duration
	// Seed makes the trace deterministic.
	Seed int64
	// BaseTpmC is the transaction throughput without power saving; the
	// paper's 8.5% decrease from 1859 tpmC implies this baseline.
	BaseTpmC float64
	// LogIOPS is the continuous log write rate.
	LogIOPS float64
	// RateScale scales every continuous I/O rate, for fast test runs
	// that keep the full duration. 1.0 reproduces the paper-scale rates.
	RateScale float64
}

// DefaultOLTPConfig returns the paper-scale configuration.
func DefaultOLTPConfig() OLTPConfig {
	return OLTPConfig{
		Warehouses:   5000,
		DBEnclosures: 9,
		Duration:     108 * time.Minute,
		Seed:         43,
		BaseTpmC:     1859.5,
		LogIOPS:      250,
		RateScale:    1.0,
	}
}

// Scaled returns the configuration with the duration multiplied by f.
func (c OLTPConfig) Scaled(f float64) OLTPConfig {
	c.Duration = time.Duration(float64(c.Duration) * f)
	return c
}

// Validate reports whether the configuration is usable.
func (c OLTPConfig) Validate() error {
	if c.DBEnclosures <= 0 {
		return fmt.Errorf("workload: oltp needs DB enclosures")
	}
	if c.Duration < 10*time.Minute {
		return fmt.Errorf("workload: oltp duration %v too short to classify patterns", c.Duration)
	}
	if c.RateScale <= 0 {
		return fmt.Errorf("workload: oltp RateScale must be positive")
	}
	return nil
}

// GenerateOLTP builds the OLTP workload.
func GenerateOLTP(cfg OLTPConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := trace.NewCatalog()
	w := &Workload{
		Name:           "oltp",
		Catalog:        cat,
		Enclosures:     cfg.DBEnclosures + 1,
		Duration:       cfg.Duration,
		BaseThroughput: cfg.BaseTpmC,
	}
	var ss streams
	var placement []int

	// Log device on enclosure 0: continuous synchronous writes.
	logItem := cat.Add("tpcc/log", 10<<30)
	placement = append(placement, 0)
	ss.lazy(logItem, rng.Int63(), func(rng *rand.Rand, emit emitFunc) {
		genContinuous(rng, emit, 10<<30, cfg.Duration, cfg.LogIOPS*cfg.RateScale, 0.0, 16<<10)
	})

	// Hash-distributed table partitions on enclosures 1..DBEnclosures.
	for _, tbl := range oltpTables {
		for p := 0; p < cfg.DBEnclosures; p++ {
			enc := 1 + p
			id := cat.Add(fmt.Sprintf("tpcc/%s.p%d", tbl.name, p), tbl.size)
			placement = append(placement, enc)
			if tbl.p1 {
				ss.lazy(id, rng.Int63(), func(rng *rand.Rand, emit emitFunc) {
					genMasterBursts(rng, emit, tbl.size, cfg.Duration, tbl.readFrac)
				})
			} else {
				ss.lazy(id, rng.Int63(), func(rng *rand.Rand, emit emitFunc) {
					genContinuous(rng, emit, tbl.size, cfg.Duration, tbl.iops*cfg.RateScale, tbl.readFrac, 8<<10)
				})
			}
		}
	}
	w.Placement = placement
	w.Streams = ss.list
	return w, nil
}

// genContinuous emits exponential-gap random I/O at the given rate for
// the whole duration. Gaps are clamped below the break-even time so the
// item always classifies P3, matching continuously hit OLTP tables.
func genContinuous(rng *rand.Rand, emit emitFunc, size int64, dur time.Duration, iops, readFrac float64, ioSize int32) {
	if iops <= 0 {
		return
	}
	mean := time.Duration(float64(time.Second) / iops)
	t := expDur(rng, mean)
	for t < dur {
		op := trace.OpRead
		if rng.Float64() >= readFrac {
			op = trace.OpWrite
		}
		if !emit(t, randOffset(rng, size, ioSize), ioSize, op) {
			return
		}
		t += clampDur(expDur(rng, mean), 0, 45*time.Second)
	}
}

// genMasterBursts emits the buffer-pool-miss bursts of the master-data
// tables: every few minutes (always beyond the break-even time) a run of
// a couple dozen reads, which classifies the item P1.
func genMasterBursts(rng *rand.Rand, emit emitFunc, size int64, dur time.Duration, readFrac float64) {
	t := expDur(rng, 4*time.Minute)
	for t < dur {
		n := 10 + rng.Intn(21)
		for i := 0; i < n && t < dur; i++ {
			op := trace.OpRead
			if rng.Float64() >= readFrac {
				op = trace.OpWrite
			}
			if !emit(t, randOffset(rng, size, 8<<10), 8<<10, op) {
				return
			}
			t += expDur(rng, 200*time.Millisecond)
		}
		t += 70*time.Second + expDur(rng, 4*time.Minute)
	}
}
