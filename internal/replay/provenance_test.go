package replay

import (
	"bytes"
	"testing"
	"time"

	"esm/internal/core"
	"esm/internal/obs"
	"esm/internal/storage"
)

// provenanceESM builds the ESM policy instance the provenance tests
// drive: short periods so the fixture produces many determinations.
func provenanceESM(t *testing.T) *core.ESM {
	t.Helper()
	p := core.DefaultParams()
	p.InitialPeriod = 4 * time.Minute
	esm, err := core.NewESM(p)
	if err != nil {
		t.Fatal(err)
	}
	return esm
}

// provenanceRun replays the sharded fixture with a provenance recorder
// attached and returns the ledger CSV plus the run result.
func provenanceRun(t *testing.T, shards int, traced bool) ([]byte, *obs.ProvenanceSummary, *Result) {
	t.Helper()
	dur := 25 * time.Minute
	cat, recs, placement := shardedTrace(dur, 99)
	prov := obs.NewProvenance(obs.ProvenanceOptions{})
	run := Run{
		Catalog:    cat,
		Records:    recs,
		Placement:  placement,
		Storage:    storage.DefaultConfig(4),
		Policy:     provenanceESM(t),
		Duration:   dur,
		Shards:     shards,
		Provenance: prov,
	}
	if traced {
		run.Tracer = obs.NewTracer(obs.TracerOptions{Enclosures: 4})
	}
	res, err := Execute(run)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.ProvSeries.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res.Provenance, res
}

// TestProvenanceStreamMatchesSerial is the ledger's determinism gate:
// the provenance CSV must be byte-identical across reruns and between
// the serial and sharded engines.
func TestProvenanceStreamMatchesSerial(t *testing.T) {
	serial, serialSum, _ := provenanceRun(t, 1, false)
	if serialSum.Determinations == 0 || serialSum.Decisions == 0 || serialSum.Transitions == 0 {
		t.Fatalf("fixture exercises nothing: %+v", serialSum)
	}
	rerun, _, _ := provenanceRun(t, 1, false)
	if !bytes.Equal(serial, rerun) {
		t.Fatal("two serial runs produced different provenance ledgers")
	}
	for _, shards := range []int{2, 4} {
		got, gotSum, _ := provenanceRun(t, shards, false)
		if !bytes.Equal(serial, got) {
			i := 0
			for i < len(serial) && i < len(got) && serial[i] == got[i] {
				i++
			}
			t.Errorf("shards=%d: ledger diverged at byte %d of %d/%d", shards, i, len(serial), len(got))
		}
		if *gotSum != *serialSum {
			t.Errorf("shards=%d: summary diverged: serial %+v, sharded %+v", shards, serialSum, gotSum)
		}
	}
}

// TestProvenanceCapturesDecisions decodes a live run's ledger and
// checks the rows carry what explain needs: determination rows with
// monotone numbering and causes, decision rows with features and
// classes, and runtime power rows with valid states.
func TestProvenanceCapturesDecisions(t *testing.T) {
	csv, sum, res := provenanceRun(t, 1, false)
	s, err := obs.ReadSeriesCSV(bytes.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	recs, ok := obs.DecodeProvenance(s)
	if !ok {
		t.Fatal("ledger CSV failed to decode")
	}
	if sum.Determinations != res.Determinations {
		t.Fatalf("ledger saw %d determinations, result says %d", sum.Determinations, res.Determinations)
	}
	var lastDet int64
	var moves, powers int
	for _, r := range recs {
		switch r.Kind {
		case obs.ProvDetermination:
			if r.Det <= lastDet {
				t.Fatalf("determination numbering not monotone: %d after %d", r.Det, lastDet)
			}
			lastDet = r.Det
			if r.Cause == "" || r.Cause == "?" {
				t.Fatalf("determination %d has no cause", r.Det)
			}
		case obs.ProvMove:
			moves++
			if r.Det <= 0 || r.Item < 0 || r.Class < 0 || r.Class > 3 || r.Dst < 0 {
				t.Fatalf("malformed move row: %+v", r)
			}
			if r.IntervalS < 0 || r.ReadRatio < 0 || r.ReadRatio > 1 {
				t.Fatalf("move features out of range: %+v", r)
			}
			// An item with no long idle intervals legitimately predicts
			// a 0 J delta; when both deltas are set they trade off.
			if r.PredDJ*r.PredDUS > 0 {
				t.Fatalf("predicted deltas do not trade off: %+v", r)
			}
		case obs.ProvPower:
			powers++
			if r.Det != -1 {
				t.Fatalf("runtime power row carries det %d: %+v", r.Det, r)
			}
			if r.Dst != 0 && r.Dst != 1 && r.Dst != 2 {
				t.Fatalf("power row with bad state code: %+v", r)
			}
		}
	}
	if moves == 0 || powers == 0 {
		t.Fatalf("fixture recorded %d moves, %d power rows; want both > 0", moves, powers)
	}
}

// TestProvenanceAttributionJoin checks that a traced run appends the
// end-of-run energy-attribution rows and that their joules stay within
// the ledger total.
func TestProvenanceAttributionJoin(t *testing.T) {
	csv, _, res := provenanceRun(t, 1, true)
	if res.Attribution == nil {
		t.Fatal("traced run produced no attribution")
	}
	s, err := obs.ReadSeriesCSV(bytes.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	recs, ok := obs.DecodeProvenance(s)
	if !ok {
		t.Fatal("ledger CSV failed to decode")
	}
	var joined float64
	var n int
	for _, r := range recs {
		if r.Kind != obs.ProvAttrib {
			continue
		}
		n++
		if r.Joules <= 0 {
			t.Fatalf("attrib row without joules: %+v", r)
		}
		joined += r.Joules
	}
	if n == 0 {
		t.Fatal("no attribution rows joined into the ledger")
	}
	if joined > res.Attribution.TotalJ {
		t.Fatalf("joined joules %g exceed attribution total %g", joined, res.Attribution.TotalJ)
	}
}
