package replay

import (
	"bytes"
	"strconv"
	"testing"
	"time"

	"esm/internal/core"
	"esm/internal/obs"
	"esm/internal/storage"
	"esm/internal/trace"
)

// esmTrace builds a two-enclosure workload that provokes several
// determinations, migrations and power transitions.
func esmTrace() (*trace.Catalog, []trace.LogicalRecord, time.Duration) {
	cat := trace.NewCatalog()
	busy := cat.Add("busy", 1<<30)
	burst := cat.Add("burst", 32<<20)
	var recs []trace.LogicalRecord
	dur := 40 * time.Minute
	for tm := time.Duration(0); tm < dur; tm += 2 * time.Second {
		recs = append(recs, trace.LogicalRecord{Time: tm, Item: busy, Offset: int64(tm), Size: 8 << 10, Op: trace.OpRead})
	}
	for start := time.Duration(0); start < dur; start += 5 * time.Minute {
		for j := 0; j < 5; j++ {
			recs = append(recs, trace.LogicalRecord{Time: start + time.Duration(j)*300*time.Millisecond, Item: burst, Size: 8 << 10, Op: trace.OpRead})
		}
	}
	trace.SortLogical(recs)
	return cat, recs, dur
}

// TestEventStreamMatchesDeterminations is the end-to-end telemetry
// check: a replay with a JSONL recorder must write exactly one
// determination event per Determinations() count, numbered 1..n, each
// preceded by its determination_start, with pattern counts that sum to
// the catalog size and a hot mask sized to the array.
func TestEventStreamMatchesDeterminations(t *testing.T) {
	cat, recs, dur := esmTrace()
	esm, err := core.NewESM(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := obs.New(obs.Options{Sink: obs.NewJSONLSink(&buf), Registry: obs.NewRegistry(), Label: "e2e"})
	res, err := Execute(Run{
		Catalog:   cat,
		Records:   recs,
		Placement: []int{0, 1},
		Storage:   storage.DefaultConfig(2),
		Policy:    esm,
		Duration:  dur,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Determinations < 2 {
		t.Fatalf("workload produced only %d determinations", res.Determinations)
	}

	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var starts, dets []*obs.DeterminationEvent
	for _, ev := range events {
		if ev.Run != "e2e" {
			t.Fatalf("event run label %q", ev.Run)
		}
		switch ev.Type {
		case obs.EvDeterminationStart:
			starts = append(starts, ev.Determination)
		case obs.EvDetermination:
			dets = append(dets, ev.Determination)
		}
	}
	if int64(len(dets)) != res.Determinations {
		t.Fatalf("%d determination events, policy reports %d", len(dets), res.Determinations)
	}
	if len(starts) != len(dets) {
		t.Fatalf("%d starts vs %d completions", len(starts), len(dets))
	}
	for i, d := range dets {
		if d.N != int64(i+1) {
			t.Errorf("determination %d numbered %d", i, d.N)
		}
		if starts[i].N != d.N || starts[i].Cause != d.Cause {
			t.Errorf("start/end mismatch at #%d: %+v vs %+v", d.N, starts[i], d)
		}
		total := 0
		for _, c := range d.PatternCounts {
			total += c
		}
		if total != cat.Len() {
			t.Errorf("determination #%d classified %d items, catalog has %d", d.N, total, cat.Len())
		}
		if len(d.Hot) != 2 {
			t.Errorf("determination #%d hot mask %v", d.N, d.Hot)
		}
		if d.NextPeriodNS <= 0 {
			t.Errorf("determination #%d has no next period", d.N)
		}
	}

	// The registry's determination counter agrees too.
	var out bytes.Buffer
	if err := rec.Registry().WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("esm_determinations_total "+strconv.FormatInt(res.Determinations, 10))) {
		t.Fatalf("registry determination counter disagrees:\n%s", out.String())
	}
}

// TestRecorderTimelineMatchesMeter: spin-up counts in the recorder's
// power timelines must equal the power meter's.
func TestRecorderTimelineMatchesMeter(t *testing.T) {
	cat, recs, dur := esmTrace()
	esm, err := core.NewESM(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New(obs.Options{})
	res, err := Execute(Run{
		Catalog:   cat,
		Records:   recs,
		Placement: []int{0, 1},
		Storage:   storage.DefaultConfig(2),
		Policy:    esm,
		Duration:  dur,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	spinups := 0
	for _, segs := range rec.Timelines() {
		for _, s := range segs {
			if s.State == "spinup" {
				spinups++
			}
		}
	}
	if spinups != res.SpinUps {
		t.Fatalf("timeline spin-ups %d, meter %d", spinups, res.SpinUps)
	}
}
