package replay

import (
	"math"
	"testing"
	"time"

	"esm/internal/core"
	"esm/internal/obs"
	"esm/internal/storage"
	"esm/internal/trace"
)

// esmRun builds the TestExecuteWithESM workload: one busy item, one
// bursty item, 30 simulated minutes — enough traffic for
// determinations, spin-downs and cache activity.
func esmRun(t *testing.T) Run {
	t.Helper()
	cat := trace.NewCatalog()
	busy := cat.Add("busy", 1<<30)
	burst := cat.Add("burst", 32<<20)
	var recs []trace.LogicalRecord
	dur := 30 * time.Minute
	for tm := time.Duration(0); tm < dur; tm += 2 * time.Second {
		recs = append(recs, trace.LogicalRecord{Time: tm, Item: busy, Offset: int64(tm), Size: 8 << 10, Op: trace.OpRead})
	}
	for start := time.Duration(0); start < dur; start += 5 * time.Minute {
		for j := 0; j < 5; j++ {
			recs = append(recs, trace.LogicalRecord{Time: start + time.Duration(j)*300*time.Millisecond, Item: burst, Size: 8 << 10, Op: trace.OpWrite})
		}
	}
	trace.SortLogical(recs)
	esm, err := core.NewESM(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return Run{
		Catalog:   cat,
		Records:   recs,
		Placement: []int{0, 1},
		Storage:   storage.DefaultConfig(2),
		Policy:    esm,
		Duration:  dur,
	}
}

// TestFlightFinalSampleMatchesResult is the series/total consistency
// gate: the forced closing sample of the flight recorder must agree
// with the Result exactly — same settled meter, same counters.
func TestFlightFinalSampleMatchesResult(t *testing.T) {
	run := esmRun(t)
	run.Series = obs.NewFlightRecorder(obs.FlightOptions{})
	res, err := Execute(run)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series
	if s.Len() < 2 {
		t.Fatalf("series has %d samples", s.Len())
	}
	last := s.Len() - 1
	if got := time.Duration(s.TimesNS[last]); got != res.Span {
		t.Fatalf("final sample at %v, span %v", got, res.Span)
	}
	exact := func(col string, want float64) {
		t.Helper()
		vals := s.Column(col)
		if vals == nil {
			t.Fatalf("column %s missing", col)
		}
		if vals[last] != want {
			t.Fatalf("final %s = %v, Result says %v", col, vals[last], want)
		}
	}
	exact("total_energy_j", res.EnergyJ)
	exact("spin_ups", float64(res.SpinUps))
	exact("determinations", float64(res.Determinations))
	exact("migrations", float64(res.Storage.Migrations))
	exact("migrated_b", float64(res.Storage.MigratedBytes))
	exact("physical_reads", float64(res.Storage.PhysicalReads))
	exact("physical_writes", float64(res.Storage.PhysicalWrites))
	exact("cache_hits", float64(res.Storage.CacheHits))
	exact("resp_count", float64(res.Resp.Count()))
	exact("resp_mean_us", float64(res.Resp.Mean())/float64(time.Microsecond))
	exact("faults", 0)
	if res.Determinations > 0 {
		var sum float64
		for _, c := range []string{"class_p0", "class_p1", "class_p2", "class_p3"} {
			sum += s.Column(c)[last]
		}
		if sum != float64(run.Catalog.Len()) {
			t.Fatalf("final class counts sum to %v, catalog has %d items", sum, run.Catalog.Len())
		}
	}
	// Cumulative columns are monotone over the whole series.
	for _, col := range []string{"enclosure_energy_j", "total_energy_j", "spin_ups", "migrated_b", "cache_hits", "resp_count"} {
		vals := s.Column(col)
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1] {
				t.Fatalf("column %s not monotone at sample %d", col, i)
			}
		}
	}
	// The per-enclosure layout is present and states are in range.
	for _, col := range []string{"enc0_state", "enc1_state"} {
		for i, v := range s.Column(col) {
			if v != obs.EnclosureOff && v != obs.EnclosureIdle && v != obs.EnclosureActive {
				t.Fatalf("%s[%d] = %v", col, i, v)
			}
		}
	}
}

// TestPowerSeriesMatchesOldBucketing pins the satellite-2 refactor: the
// PowerSeries derived from the unified flight-sampling grid must equal
// the old ad-hoc implementation, which was exactly
//
//	series[i] = (E(t_{i+1}) - E(t_i)) / bucketSeconds
//
// over the grid t_i = i*bucket with E the meter's cumulative enclosure
// energy. The flight series records E at every grid point (plus t=0),
// so recomputing the old formula from its cumulative column must
// reproduce Result.PowerSeries bit for bit.
func TestPowerSeriesMatchesOldBucketing(t *testing.T) {
	run := esmRun(t)
	// A span that is not a multiple of span/120: the last grid sample
	// then lands strictly before the end, so the forced closing sample
	// (which settles the end-of-run flush into the meter) does not
	// overwrite any grid row and every bucket can be pinned.
	run.Duration += 7 * time.Second
	run.Series = obs.NewFlightRecorder(obs.FlightOptions{})
	res, err := Execute(run)
	if err != nil {
		t.Fatal(err)
	}
	if want := res.Span / 120; res.PowerBucket != want {
		t.Fatalf("bucket %v, want span/120 = %v", res.PowerBucket, want)
	}
	if res.Span%res.PowerBucket == 0 {
		t.Fatal("fixture span divides the bucket; the pin would skip the last bucket")
	}
	energy := res.Series.Column("enclosure_energy_j")
	if len(energy) < len(res.PowerSeries)+1 {
		t.Fatalf("series has %d samples for %d power buckets", len(energy), len(res.PowerSeries))
	}
	if energy[0] != 0 {
		t.Fatalf("t=0 sample has energy %v", energy[0])
	}
	for i, got := range res.PowerSeries {
		want := (energy[i+1] - energy[i]) / res.PowerBucket.Seconds()
		if got != want {
			t.Fatalf("PowerSeries[%d] = %v, old bucketing says %v", i, got, want)
		}
	}
}

// TestPowerSeriesUnperturbedByFlightRecorder: attaching the sampler
// must not change the measurement (replays are deterministic).
func TestPowerSeriesUnperturbedByFlightRecorder(t *testing.T) {
	plain, err := Execute(esmRun(t))
	if err != nil {
		t.Fatal(err)
	}
	run := esmRun(t)
	run.Series = obs.NewFlightRecorder(obs.FlightOptions{})
	sampled, err := Execute(run)
	if err != nil {
		t.Fatal(err)
	}
	if plain.EnergyJ != sampled.EnergyJ || plain.SpinUps != sampled.SpinUps {
		t.Fatalf("flight recorder perturbed the run: E %v vs %v, spin-ups %d vs %d",
			plain.EnergyJ, sampled.EnergyJ, plain.SpinUps, sampled.SpinUps)
	}
	if len(plain.PowerSeries) != len(sampled.PowerSeries) {
		t.Fatalf("series length %d vs %d", len(plain.PowerSeries), len(sampled.PowerSeries))
	}
	for i := range plain.PowerSeries {
		if plain.PowerSeries[i] != sampled.PowerSeries[i] {
			t.Fatalf("PowerSeries[%d]: %v vs %v", i, plain.PowerSeries[i], sampled.PowerSeries[i])
		}
	}
	if plain.Series != nil || sampled.Series == nil {
		t.Fatal("Result.Series wiring wrong")
	}
}

// TestFlightIntervalOverridesPowerBucket: a recorder with an explicit
// interval sets the sampling grid for both the flight series and the
// derived PowerSeries.
func TestFlightIntervalOverridesPowerBucket(t *testing.T) {
	run := esmRun(t)
	run.Series = obs.NewFlightRecorder(obs.FlightOptions{Interval: time.Minute})
	res, err := Execute(run)
	if err != nil {
		t.Fatal(err)
	}
	if res.PowerBucket != time.Minute {
		t.Fatalf("bucket %v, want the recorder's 1m interval", res.PowerBucket)
	}
	if want := int(res.Span / time.Minute); len(res.PowerSeries) != want {
		t.Fatalf("%d power samples, want %d", len(res.PowerSeries), want)
	}
	// The series average tracks the meter's average enclosure power
	// (not exactly: the end-of-run flush energy lands after the last
	// bucket closes, as it always did).
	var sum float64
	for _, v := range res.PowerSeries {
		sum += v
	}
	avg := sum / float64(len(res.PowerSeries))
	if math.Abs(avg-res.AvgEnclosureW) > 0.05*res.AvgEnclosureW {
		t.Fatalf("series average %.2f W vs meter average %.2f W", avg, res.AvgEnclosureW)
	}
}
