package replay

import (
	"testing"
	"time"

	"esm/internal/simclock"
	"esm/internal/trace"
)

// churnSource generates a high-churn trace lazily: recsPerItem
// consecutive records per item, items retiring forever afterwards, one
// record per microsecond. It never materializes the trace, so the test
// measures the engine's memory profile, not the fixture's.
type churnSource struct {
	n, total    int64
	recsPerItem int64
}

func (s *churnSource) Next() (trace.LogicalRecord, bool) {
	if s.n >= s.total {
		return trace.LogicalRecord{}, false
	}
	rec := trace.LogicalRecord{
		Time: time.Duration(s.n) * time.Microsecond,
		Item: trace.ItemID(s.n / s.recsPerItem),
		Size: 4096,
		Op:   trace.OpRead,
	}
	s.n++
	return rec, true
}

func (s *churnSource) Err() error { return nil }

// TestClosedLoopChurnBoundedCursors is the flat-memory gate for volume
// churn: 1M records over 62.5k items that each recur 16 times and then
// never again. Without eviction the demux keeps one ring-buffer cursor
// per item ever seen (62.5k at the end); with the sweep, the cursor map
// must stay bounded by the churn window, not the item population.
func TestClosedLoopChurnBoundedCursors(t *testing.T) {
	const total = 1_000_000
	const perItem = 16
	src := &churnSource{total: total, recsPerItem: perItem}
	submit := func(rec trace.LogicalRecord, orig time.Duration) (time.Duration, error) {
		return time.Microsecond, nil
	}
	var clk simclock.Clock
	var evq simclock.EventQueue
	cl := newClosedLoop(src, &clk, &evq, submit)
	if err := cl.run(); err != nil {
		t.Fatal(err)
	}
	// Items touched per sweep window: sweepEvery/perItem, plus up to one
	// full window of eviction lag and the live read-ahead. Anything near
	// the 62.5k item population means eviction is broken.
	bound := 3 * sweepEvery / perItem
	if cl.peakCursors > bound {
		t.Fatalf("peak live cursors %d exceeds churn-window bound %d (population %d)",
			cl.peakCursors, bound, total/perItem)
	}
	if cl.peakParked > bound {
		t.Fatalf("peak parked entries %d exceeds churn-window bound %d", cl.peakParked, bound)
	}
}

// TestClosedLoopEvictionPreservesStall pins the semantic half of
// eviction: an item whose last I/O left a far-future completion fence
// must issue its next record at that fence even if its cursor was
// evicted and revived in between.
func TestClosedLoopEvictionPreservesStall(t *testing.T) {
	const fillers = 3 * sweepEvery // enough demuxed records to force sweeps
	stall := 10 * time.Second
	recs := make([]trace.LogicalRecord, 0, fillers+2)
	recs = append(recs, trace.LogicalRecord{Time: 0, Item: 0, Size: 4096, Op: trace.OpRead})
	for i := 0; i < fillers; i++ {
		recs = append(recs, trace.LogicalRecord{
			Time: time.Duration(i+1) * time.Microsecond,
			Item: trace.ItemID(i + 1), Size: 4096, Op: trace.OpRead,
		})
	}
	last := trace.LogicalRecord{
		Time: time.Duration(fillers+10) * time.Microsecond,
		Item: 0, Size: 4096, Op: trace.OpRead,
	}
	recs = append(recs, last)

	var issuedAt time.Duration
	submit := func(rec trace.LogicalRecord, orig time.Duration) (time.Duration, error) {
		if rec.Item == 0 && orig == last.Time {
			issuedAt = rec.Time
		}
		if rec.Item == 0 && orig == 0 {
			return stall, nil
		}
		return 0, nil
	}
	var clk simclock.Clock
	var evq simclock.EventQueue
	cl := newClosedLoop(trace.NewSliceSource(recs), &clk, &evq, submit)
	if err := cl.run(); err != nil {
		t.Fatal(err)
	}
	if cl.peakParked == 0 {
		t.Fatal("item 0 was never parked; the test did not exercise eviction")
	}
	if issuedAt != stall {
		t.Fatalf("item 0's post-eviction record issued at %v, want the completion fence %v", issuedAt, stall)
	}
}
