package replay

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"esm/internal/core"
	"esm/internal/obs"
	"esm/internal/policy"
	"esm/internal/storage"
)

// alertRules is the watchdog rule set of the equality test: a held
// energy budget, an instantaneous rate rule and a spin-up threshold —
// together they exercise pending/firing/resolved transitions on the
// sampling grid.
func alertRules(t *testing.T) []obs.Rule {
	t.Helper()
	rules, err := obs.ParseRules([]string{
		"budget:total_energy_j>1e3:for=2m",
		"burn:rate(total_energy_j)>1",
		"spin:spin_ups>=1",
	})
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

// TestShardedAlertStreamMatchesSerial is the watchdog's determinism
// gate: across policies and shard counts, the alert transition events
// in the recorder's JSONL stream and the end-of-run rule states must be
// byte-for-byte (respectively deeply) identical between the serial and
// sharded engines.
func TestShardedAlertStreamMatchesSerial(t *testing.T) {
	dur := 25 * time.Minute
	policies := []struct {
		name string
		mk   func() policy.Policy
	}{
		{"esm", func() policy.Policy {
			p := core.DefaultParams()
			p.InitialPeriod = 4 * time.Minute
			esm, err := core.NewESM(p)
			if err != nil {
				t.Fatal(err)
			}
			return esm
		}},
		{"none", func() policy.Policy { return policy.NoPowerSaving{} }},
	}
	run := func(mk func() policy.Policy, shards int) ([]byte, obs.AlertSummary, []obs.AlertStatus) {
		cat, recs, placement := shardedTrace(dur, 99)
		var events bytes.Buffer
		rec := obs.New(obs.Options{Sink: obs.NewJSONLSink(&events), Registry: obs.NewRegistry(), Label: "alert-eq"})
		wd := obs.NewWatchdog(obs.WatchdogOptions{Rules: alertRules(t), Recorder: rec, Instance: "alert-eq"})
		res, err := Execute(Run{
			Catalog:   cat,
			Records:   recs,
			Placement: placement,
			Storage:   storage.DefaultConfig(4),
			Policy:    mk(),
			Duration:  dur,
			Shards:    shards,
			Recorder:  rec,
			Alerts:    wd,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		return events.Bytes(), res.Alerts, res.AlertStates
	}
	for _, pc := range policies {
		serialEvents, serialSum, serialStates := run(pc.mk, 1)
		if serialSum.Fired == 0 {
			t.Fatalf("%s: no rule ever fired; the fixture exercises nothing", pc.name)
		}
		if serialSum.Rules != 3 || len(serialStates) != 3 {
			t.Fatalf("%s: want 3 rule states, got summary %+v, %d states", pc.name, serialSum, len(serialStates))
		}
		for _, shards := range []int{2, 4} {
			label := fmt.Sprintf("%s/shards=%d", pc.name, shards)
			gotEvents, gotSum, gotStates := run(pc.mk, shards)
			if !bytes.Equal(serialEvents, gotEvents) {
				i := 0
				for i < len(serialEvents) && i < len(gotEvents) && serialEvents[i] == gotEvents[i] {
					i++
				}
				t.Errorf("%s: event stream (incl. alerts) diverged at byte %d of %d/%d",
					label, i, len(serialEvents), len(gotEvents))
			}
			if serialSum != gotSum {
				t.Errorf("%s: alert summary diverged: serial %+v, sharded %+v", label, serialSum, gotSum)
			}
			if !reflect.DeepEqual(serialStates, gotStates) {
				t.Errorf("%s: alert states diverged:\nserial  %+v\nsharded %+v", label, serialStates, gotStates)
			}
		}
	}
}

// TestAlertsWithoutSeries pins that -alerts alone (no flight recorder)
// still drives the watchdog on the power-sampling grid.
func TestAlertsWithoutSeries(t *testing.T) {
	dur := 20 * time.Minute
	cat, recs, placement := shardedTrace(dur, 3)
	wd := obs.NewWatchdog(obs.WatchdogOptions{Rules: alertRules(t)})
	res, err := Execute(Run{
		Catalog:   cat,
		Records:   recs,
		Placement: placement,
		Storage:   storage.DefaultConfig(4),
		Policy:    policy.NoPowerSaving{},
		Duration:  dur,
		Alerts:    wd,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Series != nil {
		t.Fatalf("no flight recorder attached, but Result.Series = %v", res.Series)
	}
	if res.Alerts.Transitions == 0 {
		t.Fatal("watchdog saw no samples: no transitions despite an always-true budget rule")
	}
	if res.Alerts.Fired == 0 {
		t.Fatalf("budget rule never fired: %+v", res.Alerts)
	}
}
