// Throughput of the sharded replay engine versus the serial engine on a
// physical-I/O-heavy open-loop workload. Run with -cpu 1,2,4 to see how
// the same shard count behaves as GOMAXPROCS changes; on a single-core
// host the sharded engine's conductor/worker handoffs are pure overhead,
// so the speedup claim must be measured on a multi-core box.
//
//	go test ./internal/replay/ -bench ReplayShards -cpu 1,2,4 -benchtime 2x

package replay

import (
	"fmt"
	"testing"
	"time"

	"esm/internal/policy"
	"esm/internal/storage"
	"esm/internal/trace"
)

// shardBenchWorkload builds a materialized open-loop trace spread over 8
// enclosures: advancing offsets defeat the cache, so nearly every record
// is a physical I/O eligible for shard deferral under an always-on
// policy.
func shardBenchWorkload(n int64) (*trace.Catalog, []trace.LogicalRecord, []int, time.Duration) {
	cat := trace.NewCatalog()
	const items = 64
	const itemBytes = 256 << 20
	placement := make([]int, items)
	for i := 0; i < items; i++ {
		cat.Add(fmt.Sprintf("sb%02d", i), itemBytes)
		placement[i] = i % 8
	}
	recs := make([]trace.LogicalRecord, 0, n)
	const gap = 500 * time.Microsecond
	for i := int64(0); i < n; i++ {
		rec := trace.LogicalRecord{
			Time:   time.Duration(i) * gap,
			Item:   trace.ItemID(i % items),
			Offset: (i * 37 * 4096) % (itemBytes - 4096),
			Size:   4096,
			Op:     trace.OpRead,
		}
		if i%5 == 0 {
			rec.Op = trace.OpWrite
		}
		recs = append(recs, rec)
	}
	return cat, recs, placement, time.Duration(n) * gap
}

func BenchmarkReplayShards(b *testing.B) {
	n := int64(200_000)
	if testing.Short() {
		n = 50_000
	}
	cat, recs, placement, dur := shardBenchWorkload(n)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Execute(Run{
					Catalog:   cat,
					Records:   recs,
					Placement: placement,
					Storage:   storage.DefaultConfig(8),
					Policy:    policy.NoPowerSaving{},
					Duration:  dur,
					Shards:    shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Resp.Count() != n {
					b.Fatalf("replayed %d of %d records", res.Resp.Count(), n)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrec/s")
		})
	}
}
