package replay

import (
	"fmt"
	"testing"
	"time"

	"esm/internal/metrics"
	"esm/internal/policy"
	"esm/internal/simclock"
	"esm/internal/storage"
	"esm/internal/trace"
)

// TestUntracedRecordPathZeroAllocs is the allocation regression gate for
// the untraced per-record hot path: event dispatch, the policy callback,
// the cache-served submit and the response aggregation must not allocate
// in steady state. Event pooling in simclock and the cache lookup path
// keep this at exactly zero; a regression here silently costs every
// record of every replay.
func TestUntracedRecordPathZeroAllocs(t *testing.T) {
	cat := trace.NewCatalog()
	var ids []trace.ItemID
	for i := 0; i < 4; i++ {
		ids = append(ids, cat.Add(fmt.Sprintf("hot%d", i), 64<<20))
	}
	var clk simclock.Clock
	var evq simclock.EventQueue
	arr, err := storage.New(storage.DefaultConfig(2), &clk, &evq, cat)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if err := arr.Place(id, i%2); err != nil {
			t.Fatal(err)
		}
	}
	recs := make([]trace.LogicalRecord, 0, 64)
	for i := 0; i < 64; i++ {
		recs = append(recs, trace.LogicalRecord{
			Item: ids[i%len(ids)], Offset: int64(i%8) * 4096, Size: 4096, Op: trace.OpRead,
		})
	}
	// Warm the general LRU so the measured loop is all cache hits — the
	// steady state of a hot working set.
	for _, rec := range recs {
		if _, err := arr.Submit(rec); err != nil {
			t.Fatal(err)
		}
	}

	pol := policy.NoPowerSaving{}
	var resp metrics.ResponseStats
	limit := clk.Now()
	allocs := testing.AllocsPerRun(200, func() {
		for _, rec := range recs {
			evq.RunUntil(&clk, limit)
			pol.OnLogical(rec)
			out, err := arr.Submit(rec)
			if err != nil {
				t.Fatal(err)
			}
			if !out.CacheHit {
				t.Fatal("steady-state read missed the cache; the gate measures the wrong path")
			}
			resp.Add(rec.Op, out.Response)
		}
	})
	if allocs != 0 {
		t.Fatalf("untraced record path allocates %.3f/op (%.4f per record), want 0",
			allocs, allocs/float64(len(recs)))
	}
}

// TestClosedLoopSteadyStateAllocs pins the closed-loop engine's marginal
// allocation cost per record at zero: the cursor ring buffers and the
// demux heap must reach a steady footprint, after which doubling the
// record count adds no allocations. (Fixed setup costs — the cursor
// map, the source adapter, initial ring growth — cancel in the margin.)
func TestClosedLoopSteadyStateAllocs(t *testing.T) {
	const n = 2000
	items := []trace.ItemID{0, 1, 2, 3}
	recs := make([]trace.LogicalRecord, 0, 2*n)
	for i := 0; i < 2*n; i++ {
		recs = append(recs, trace.LogicalRecord{
			Time: time.Duration(i) * time.Millisecond,
			Item: items[i%len(items)], Size: 4096, Op: trace.OpRead,
		})
	}
	stub := func(rec trace.LogicalRecord, orig time.Duration) (time.Duration, error) {
		return 3 * time.Millisecond, nil
	}
	run := func(recs []trace.LogicalRecord) float64 {
		return testing.AllocsPerRun(10, func() {
			var clk simclock.Clock
			var evq simclock.EventQueue
			if err := runClosedLoop(trace.NewSliceSource(recs), &clk, &evq, stub); err != nil {
				t.Fatal(err)
			}
		})
	}
	half := run(recs[:n])
	full := run(recs)
	marginal := (full - half) / n
	if marginal > 0.01 {
		t.Fatalf("closed-loop marginal allocations %.4f/record (half=%.1f full=%.1f), want ~0",
			marginal, half, full)
	}
}
