// Sharded open-loop replay: byte-identical parallel execution.
//
// The engine keeps ONE conductor goroutine in charge of everything that
// defines global order — trace consumption, the event queue, the cache
// phase of every I/O, policy callbacks, migrations, telemetry — and
// farms out only the enclosure physics of provably independent I/Os to
// per-shard workers. An I/O may defer exactly when its arrival cannot
// observe or produce any cross-shard effect (storage.CanDefer: no fault
// injector, enclosure on, spin-down disabled); everything else runs on
// the conductor in the serial engine's order.
//
// The conservative barrier protocol has one synchronization primitive:
// syncAll, which flushes the per-shard op batches, waits for every lane
// to drain, merges shard-local response/window aggregates in fixed
// shard order, and replays buffered telemetry spans from the mailbox in
// deterministic (time, seq, shard) order. syncAll runs before any
// cross-shard interaction: it is installed as the array's sync hook (so
// every policy action that touches enclosure state barriers first,
// transparently), and the conductor invokes it before firing any global
// event while deferred work is pending. DESIGN.md §14 documents the
// protocol and its equivalence argument.

package replay

import (
	"fmt"
	"sync"
	"time"

	"esm/internal/metrics"
	"esm/internal/obs"
	"esm/internal/simclock"
	"esm/internal/storage"
	"esm/internal/trace"
)

// shardBatch is how many deferred ops accumulate per shard before the
// conductor ships them as one work item; it bounds per-dispatch
// overhead without holding results back from the next barrier.
const shardBatch = 256

// shardOp is one deferred application I/O plus the bookkeeping a worker
// needs to accumulate response metrics and spans shard-locally.
type shardOp struct {
	op storage.DeferredOp
	// origTime is the record's original trace time, for window
	// attribution (identical to op.At under the open loop).
	origTime time.Duration
	// seq is the op's global sequence number, carried into mailbox
	// messages so buffered spans replay in serial emission order.
	seq uint64
}

// laneState is one shard's private metric accumulators. Workers write
// them between barriers; the conductor merges and clears them at every
// syncAll, in ascending shard order. All fields are counts, sums or
// maxima, so the merge reproduces the serial accumulation exactly.
type laneState struct {
	resp metrics.ResponseStats
	win  []WindowResult
	err  error
}

// FeederOptions wires the sharded engine onto live simulation state.
// The batch engine and NewShardedFeeder (the fleet's live-ingest entry
// point) both construct the same conductor from it.
type FeederOptions struct {
	// Array, Clock and Queue are the simulation the conductor drives.
	Array *storage.Array
	Clock *simclock.Clock
	Queue *simclock.EventQueue
	// Shards maps enclosures to worker lanes (storage.NewShardMap).
	Shards storage.ShardMap
	// OnLogical is the policy's record callback, delivered before the
	// cache phase exactly like the serial loop. Indirect through a
	// closure when the policy can be hot-swapped.
	OnLogical func(rec trace.LogicalRecord)
	// Resp accumulates application response times. Worker lanes keep
	// shard-local aggregates and merge into it at every barrier.
	Resp *metrics.ResponseStats
	// Windows/WindowOut optionally collect per-window read aggregates
	// (the batch engine's TPC-H query spans); both nil for live feeds.
	Windows   []Window
	WindowOut []WindowResult
	// Tracer, when non-nil, receives per-I/O spans; deferred ops buffer
	// theirs through the mailbox to preserve emission order.
	Tracer *obs.Tracer
	// Physical delivers the physical observation (storage monitor +
	// policy) in record order.
	Physical func(rec trace.PhysicalRecord)
}

type shardEngine struct {
	arr       *storage.Array
	clk       *simclock.Clock
	evq       *simclock.EventQueue
	onLogical func(rec trace.LogicalRecord)
	resp      *metrics.ResponseStats
	windows   []Window
	winOut    []WindowResult
	trc       *obs.Tracer
	sq        *simclock.ShardedQueue
	mb        *simclock.Mailbox
	smap      storage.ShardMap

	// inline, set on fault runs, routes every record through the serial
	// submit path: fault draws consume one shared RNG stream in global
	// order, so nothing may defer. The barrier machinery stays armed but
	// idle.
	inline bool
	submit func(rec trace.LogicalRecord, origTime time.Duration) (time.Duration, error)
	physCb func(rec trace.PhysicalRecord)

	batch [][]shardOp
	lanes []laneState
	// pool recycles batch slices between the conductor and the workers.
	pool sync.Pool
	// dirty is true while any op has been batched or dispatched since
	// the last syncAll. While dirty, workers may be running: the
	// conductor must not read the mailbox (pending() short-circuits on
	// dirty for exactly that reason).
	dirty bool
	seq   uint64
	err   error
}

func newShardEngine(
	o FeederOptions, inline bool,
	submit func(rec trace.LogicalRecord, origTime time.Duration) (time.Duration, error),
) *shardEngine {
	n := o.Shards.Shards()
	en := &shardEngine{
		arr: o.Array, clk: o.Clock, evq: o.Queue,
		onLogical: o.OnLogical, resp: o.Resp,
		windows: o.Windows, winOut: o.WindowOut, trc: o.Tracer,
		sq: simclock.NewShardedQueue(n), mb: simclock.NewMailbox(n), smap: o.Shards,
		inline: inline, submit: submit, physCb: o.Physical,
		batch: make([][]shardOp, n),
		lanes: make([]laneState, n),
	}
	en.pool.New = func() any {
		s := make([]shardOp, 0, shardBatch)
		return &s
	}
	for s := range en.batch {
		en.batch[s] = make([]shardOp, 0, shardBatch)
	}
	for s := range en.lanes {
		en.lanes[s].win = make([]WindowResult, len(o.Windows))
	}
	return en
}

// pending reports whether any deferred work or buffered telemetry is
// outstanding. The dirty check must come first: while dirty, workers
// may still be appending to their mailbox slots, so Pending() is only
// safe to evaluate when dirty is false.
func (en *shardEngine) pending() bool { return en.dirty || en.mb.Pending() }

// run consumes the trace on the conductor. It mirrors the serial
// open-loop engine record for record; only the execution of deferrable
// enclosure physics moves to the shard lanes.
func (en *shardEngine) run(src trace.Source) error {
	en.arr.SetSyncHook(en.syncAll)
	defer func() {
		en.syncAll()
		en.sq.Close()
		en.arr.SetSyncHook(nil)
	}()
	var prev time.Duration
	var i int64
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if rec.Time < prev {
			return fmt.Errorf("replay: record %d out of order", i)
		}
		prev = rec.Time
		i++
		en.runGlobalUntil(rec.Time)
		if en.inline {
			if _, err := en.submit(rec, rec.Time); err != nil {
				return err
			}
		} else if err := en.step(rec); err != nil {
			return err
		}
		if en.err != nil {
			return fmt.Errorf("replay: %w", en.err)
		}
	}
	if err := src.Err(); err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	en.syncAll()
	if en.err != nil {
		return fmt.Errorf("replay: %w", en.err)
	}
	return nil
}

// runGlobalUntil dispatches every pending global event up to limit and
// advances the conductor clock, like EventQueue.RunUntil — but with a
// barrier before each event while deferred work is outstanding: events
// (power samples, migration chunks, policy wakes, battery windows)
// touch enclosure and aggregate state, so they must observe fully
// settled shards.
func (en *shardEngine) runGlobalUntil(limit time.Duration) {
	for {
		at, ok := en.evq.PeekTime()
		if !ok || at > limit {
			break
		}
		if en.pending() {
			en.syncAll()
		}
		e := en.evq.Pop()
		en.clk.Advance(e.At)
		e.Fire(e.At)
		en.evq.Release(e)
	}
	en.clk.Advance(limit)
}

// step replays one fault-free record: plan the cache phase on the
// conductor, defer or execute the enclosure physics, then deliver the
// physical observation and cache admission at the serial engine's
// points.
func (en *shardEngine) step(rec trace.LogicalRecord) error {
	en.onLogical(rec)
	now := en.clk.Now()
	plan, err := en.arr.PlanSubmit(rec)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	en.seq++

	if plan.Served {
		en.resp.Add(rec.Op, plan.Response)
		if rec.Op == trace.OpRead {
			en.addWindows(rec.Time, plan.Response)
		}
		if en.trc != nil {
			en.emitCacheHit(now, plan, rec.Op == trace.OpRead)
		}
		if plan.NeedFlush {
			// The serial Submit destages inline at this point; FlushAll
			// barriers first via the sync hook, then destages.
			en.arr.FlushAll()
		}
		return nil
	}

	dop := storage.DeferredOp{
		At: now, Enc: plan.Enc, Block: plan.Block,
		Size: rec.Size, Read: plan.Read, Item: plan.Item,
	}
	s := en.smap.ShardOf(plan.Enc)
	deferred := en.arr.CanDefer(plan.Enc)
	var resp time.Duration
	var info *storage.ExecInfo
	if deferred {
		en.batch[s] = append(en.batch[s], shardOp{op: dop, origTime: rec.Time, seq: en.seq})
		en.dirty = true
		if len(en.batch[s]) >= shardBatch {
			en.flushShard(s)
		}
	} else {
		// A possible power transition must run on the conductor in
		// global order, with every shard settled first.
		if en.pending() {
			en.syncAll()
		}
		if en.trc != nil {
			info = &storage.ExecInfo{}
		}
		resp, err = en.arr.ExecPlanned(dop, info)
		if err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		if en.trc != nil {
			en.trc.Service(dop.Enc, int64(dop.Item), obs.FnServing, info.Service)
			if info.SpinUpAttempts > 0 {
				en.trc.SpinUps(dop.Enc, int64(dop.Item), obs.FnServing, info.SpinUpAttempts)
			}
		}
	}

	// The physical observation (storage monitor + policy) is delivered
	// in record order, before admission, exactly as the serial Submit
	// does. If the policy reacts by touching enclosure state, the sync
	// hook barriers first, so a just-batched op completes before the
	// reaction — the serial order.
	en.physCb(trace.PhysicalRecord{
		Time: now, Enclosure: int32(plan.Enc), Block: plan.Block,
		Size: rec.Size, Op: rec.Op,
	})
	if !deferred && en.trc != nil {
		en.emitIO(now, dop, resp, info)
	}
	en.arr.AdmitPlanned(plan)
	if !deferred {
		en.resp.Add(rec.Op, resp)
		if rec.Op == trace.OpRead {
			en.addWindows(rec.Time, resp)
		}
	}
	return nil
}

func (en *shardEngine) addWindows(origTime time.Duration, resp time.Duration) {
	for wi, w := range en.windows {
		if origTime >= w.Start && origTime < w.End {
			en.winOut[wi].Reads++
			en.winOut[wi].ReadSum += resp
		}
	}
}

// emitCacheHit records a cache-resolved I/O's span. While deferred work
// or buffered spans are outstanding, the span is posted to the mailbox
// (conductor slot, this op's seq) so the sink still sees spans in
// serial emission order.
func (en *shardEngine) emitCacheHit(now time.Duration, plan storage.Plan, read bool) {
	sp := obs.IOSpan{
		Start: now, Response: plan.Response,
		Item: int64(plan.Item), Enclosure: -1, Read: read,
		Cause: obs.IOCacheHit,
	}
	if en.pending() {
		en.mb.Post(-1, simclock.Message{At: now, Seq: en.seq, Fire: func() { en.trc.IO(sp) }})
	} else {
		en.trc.IO(sp)
	}
}

// emitIO records the span of a conductor-executed physical I/O, after
// the physical observer has run (the serial emission point).
func (en *shardEngine) emitIO(now time.Duration, dop storage.DeferredOp, resp time.Duration, info *storage.ExecInfo) {
	cause := obs.IODiskOn
	if info.SpinUpWait > 0 {
		cause = obs.IOSpinUpBlocked
	}
	en.trc.IO(obs.IOSpan{
		Start: now, Response: resp,
		Item: int64(dop.Item), Enclosure: dop.Enc, Read: dop.Read,
		PowerState: info.PowerState, Cause: cause,
		SpinUpWait: info.SpinUpWait, QueueWait: info.QueueWait, Service: info.Service,
	})
}

// flushShard ships shard s's batched ops to its lane. The worker runs
// each op's enclosure physics at the op's own timestamp, accumulates
// response and window aggregates into the shard's laneState, and (when
// tracing) posts the op's spans to the mailbox keyed by its global seq.
func (en *shardEngine) flushShard(s int) {
	ops := en.batch[s]
	if len(ops) == 0 {
		return
	}
	next := en.pool.Get().(*[]shardOp)
	en.batch[s] = (*next)[:0]
	lane := &en.lanes[s]
	en.sq.Dispatch(s, func(clk *simclock.Clock) {
		for i := range ops {
			o := &ops[i]
			if clk.Now() < o.op.At {
				clk.Advance(o.op.At)
			}
			var info *storage.ExecInfo
			if en.trc != nil {
				info = &storage.ExecInfo{}
			}
			resp, err := en.arr.ExecPlanned(o.op, info)
			if err != nil {
				// Impossible for a deferrable op (no injector, enclosure
				// on); surfaced at the next barrier just in case.
				if lane.err == nil {
					lane.err = err
				}
				return
			}
			op := trace.OpWrite
			if o.op.Read {
				op = trace.OpRead
			}
			lane.resp.Add(op, resp)
			if o.op.Read {
				for wi, w := range en.windows {
					if o.origTime >= w.Start && o.origTime < w.End {
						lane.win[wi].Reads++
						lane.win[wi].ReadSum += resp
					}
				}
			}
			if en.trc != nil {
				enc, item, svc := o.op.Enc, int64(o.op.Item), info.Service
				en.mb.Post(s, simclock.Message{At: o.op.At, Seq: o.seq, Fire: func() {
					en.trc.Service(enc, item, obs.FnServing, svc)
				}})
				sp := obs.IOSpan{
					Start: o.op.At, Response: resp,
					Item: item, Enclosure: enc, Read: o.op.Read,
					PowerState: info.PowerState, Cause: obs.IODiskOn,
					QueueWait: info.QueueWait, Service: info.Service,
				}
				en.mb.Post(s, simclock.Message{At: o.op.At, Seq: o.seq, Fire: func() {
					en.trc.IO(sp)
				}})
			}
		}
		ops = ops[:0]
		en.pool.Put(&ops)
	})
}

// syncAll is the conservative barrier: flush every batch, wait for all
// lanes, advance lane clocks to global time, merge shard aggregates in
// fixed shard order, and replay buffered spans in (time, seq, shard)
// order. It is idempotent and cheap when nothing is outstanding, and it
// is the array's sync hook — every policy action that touches enclosure
// state funnels through here before proceeding.
func (en *shardEngine) syncAll() {
	for s := range en.batch {
		en.flushShard(s)
	}
	en.sq.Barrier()
	en.sq.AdvanceAll(en.clk.Now())
	for s := range en.lanes {
		l := &en.lanes[s]
		if l.err != nil && en.err == nil {
			en.err = l.err
		}
		en.resp.Merge(&l.resp)
		l.resp = metrics.ResponseStats{}
		for wi := range l.win {
			en.winOut[wi].Reads += l.win[wi].Reads
			en.winOut[wi].ReadSum += l.win[wi].ReadSum
			l.win[wi] = WindowResult{}
		}
	}
	en.mb.Drain()
	en.dirty = false
}

// ShardedFeeder is the live-ingest form of the sharded engine: the
// fleet's record-at-a-time twin of the batch run loop. Feed replays one
// record (pumping global events up to its time with barriers, then
// planning, deferring or executing it exactly as the batch engine's
// step), RunUntil drives the event queue for the end-of-stream
// sequence, and Close settles everything and stops the worker lanes.
// The feeder installs itself as the array's sync hook on construction,
// so any policy or management action that touches enclosure state
// barriers transparently. It is not safe for concurrent use; the fleet
// serializes it under the array mutex. Fault injection requires the
// serial path (one shared RNG stream in global draw order), so callers
// must not attach a feeder to an array with a fault injector.
type ShardedFeeder struct {
	en *shardEngine
}

// NewShardedFeeder builds a feeder over o and arms the barrier hook.
func NewShardedFeeder(o FeederOptions) *ShardedFeeder {
	en := newShardEngine(o, false, nil)
	en.arr.SetSyncHook(en.syncAll)
	return &ShardedFeeder{en: en}
}

// Feed replays one record. Records must arrive in time order (the
// caller checks; the feeder assumes it).
func (f *ShardedFeeder) Feed(rec trace.LogicalRecord) error {
	f.en.runGlobalUntil(rec.Time)
	if err := f.en.step(rec); err != nil {
		return err
	}
	if f.en.err != nil {
		return f.en.err
	}
	return nil
}

// RunUntil dispatches global events up to limit with barriers and
// advances the conductor clock — EventQueue.RunUntil for a sharded
// simulation.
func (f *ShardedFeeder) RunUntil(limit time.Duration) {
	f.en.runGlobalUntil(limit)
}

// Sync forces a barrier: every deferred op executes, every shard-local
// aggregate merges and every buffered span lands.
func (f *ShardedFeeder) Sync() { f.en.syncAll() }

// Close syncs, stops the worker lanes and unhooks the array. The
// feeder must not be used afterwards.
func (f *ShardedFeeder) Close() error {
	f.en.syncAll()
	f.en.sq.Close()
	f.en.arr.SetSyncHook(nil)
	return f.en.err
}
