package replay

import (
	"math"
	"testing"
	"time"

	"esm/internal/core"
	"esm/internal/obs"
	"esm/internal/storage"
)

// TestTracerEndToEnd replays the telemetry workload with a span tracer
// and checks the whole-run contracts: one I/O span per submitted
// record, latency breakdown counts that tile the span set, management
// spans for the determinations the policy reports, and an energy
// attribution that sums back to the power meter's enclosure joules.
func TestTracerEndToEnd(t *testing.T) {
	cat, recs, dur := esmTrace()
	esm, err := core.NewESM(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sink := &obs.CollectSpanSink{}
	trc := obs.NewTracer(obs.TracerOptions{Sink: sink, Enclosures: 2})
	res, err := Execute(Run{
		Catalog:   cat,
		Records:   recs,
		Placement: []int{0, 1},
		Storage:   storage.DefaultConfig(2),
		Policy:    esm,
		Duration:  dur,
		Tracer:    trc,
	})
	if err != nil {
		t.Fatal(err)
	}

	// One span per submitted record (the workload injects no faults, so
	// none are dropped), agreeing with the replay's own aggregate.
	if int64(len(sink.IOs)) != res.Resp.Count() {
		t.Fatalf("%d I/O spans, replay counted %d I/Os", len(sink.IOs), res.Resp.Count())
	}
	if res.Latency == nil || res.Latency.Total.Count != int64(len(sink.IOs)) {
		t.Fatalf("latency summary %+v over %d spans", res.Latency, len(sink.IOs))
	}
	// The tracer's percentiles agree with the replay's ResponseStats on
	// the same I/Os (identical bucket schemes).
	for _, p := range []float64{0.5, 0.95, 0.99} {
		if got, want := trcPercentile(res.Latency, p), res.Resp.Percentile(p); got != want {
			t.Errorf("p%.2f: tracer %v, replay %v", p, got, want)
		}
	}
	if res.Latency.Total.Max != res.Resp.Max() {
		t.Errorf("max: tracer %v, replay %v", res.Latency.Total.Max, res.Resp.Max())
	}

	// Causes tile the span set; phase decomposition adds up per span.
	var cacheHits int64
	for _, sp := range sink.IOs {
		switch sp.Cause {
		case obs.IOCacheHit:
			cacheHits++
			if sp.SpinUpWait != 0 || sp.QueueWait != 0 || sp.Service != 0 {
				t.Fatalf("cache hit with physical phases: %+v", sp)
			}
		default:
			if got := sp.SpinUpWait + sp.QueueWait + sp.Service; got != sp.Response {
				t.Fatalf("phases %v don't sum to response %v: %+v", got, sp.Response, sp)
			}
			if (sp.Cause == obs.IOSpinUpBlocked) != (sp.SpinUpWait > 0) {
				t.Fatalf("cause/spin-up wait mismatch: %+v", sp)
			}
			if sp.PowerState == "" {
				t.Fatalf("physical span without power state: %+v", sp)
			}
		}
	}
	if cacheHits != res.Storage.CacheHits {
		t.Errorf("%d cache-hit spans, array counted %d", cacheHits, res.Storage.CacheHits)
	}

	// Management spans: one determination span per policy determination.
	dets := 0
	for _, sp := range sink.Management {
		if sp.Kind == "determination" {
			dets++
		}
	}
	if int64(dets) != res.Determinations {
		t.Errorf("%d determination spans, policy reports %d", dets, res.Determinations)
	}

	// The attribution conserves the power meter's enclosure joules.
	if res.Attribution == nil {
		t.Fatal("no attribution")
	}
	var meterJ float64
	for e := 0; e < 2; e++ {
		enc := res.Attribution.Enclosures[e]
		var items float64
		for _, it := range enc.ByItem {
			items += it.Joules
		}
		if !closeTo(items, enc.TotalJ) {
			t.Errorf("enclosure %d items sum %v, total %v", e, items, enc.TotalJ)
		}
		meterJ += enc.TotalJ
	}
	if !closeTo(res.Attribution.TotalJ, meterJ) {
		t.Errorf("attribution total %v, enclosure sum %v", res.Attribution.TotalJ, meterJ)
	}
	var classJ float64
	for _, j := range res.Attribution.ByClass {
		classJ += j
	}
	if !closeTo(classJ, res.Attribution.TotalJ) {
		t.Errorf("class sum %v, total %v", classJ, res.Attribution.TotalJ)
	}
	// The ESM policy classified the catalog, so real classes carry
	// energy (this workload's items are all touched).
	if res.Attribution.ByClass[4] >= res.Attribution.TotalJ/2 {
		t.Errorf("unknown class dominates: %v of %v", res.Attribution.ByClass[4], res.Attribution.TotalJ)
	}
}

// trcPercentile picks the named percentile out of a summary's total row.
func trcPercentile(l *obs.LatencySummary, p float64) time.Duration {
	switch p {
	case 0.5:
		return l.Total.P50
	case 0.95:
		return l.Total.P95
	default:
		return l.Total.P99
	}
}

func closeTo(a, b float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= 1e-9*scale
}

// TestTracerNilRunUnchanged: a run without a tracer must behave exactly
// as before — nil Latency/Attribution, identical aggregates to a traced
// run (tracing must not perturb the simulation).
func TestTracerNilRunUnchanged(t *testing.T) {
	cat, recs, dur := esmTrace()
	runOnce := func(trc *obs.Tracer) *Result {
		esm, err := core.NewESM(core.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(Run{
			Catalog:   cat,
			Records:   recs,
			Placement: []int{0, 1},
			Storage:   storage.DefaultConfig(2),
			Policy:    esm,
			Duration:  dur,
			Tracer:    trc,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := runOnce(nil)
	if plain.Latency != nil || plain.Attribution != nil {
		t.Fatal("untraced run carries tracer results")
	}
	traced := runOnce(obs.NewTracer(obs.TracerOptions{Enclosures: 2}))
	if plain.EnergyJ != traced.EnergyJ || plain.SpinUps != traced.SpinUps ||
		plain.Resp.Count() != traced.Resp.Count() || plain.Resp.Mean() != traced.Resp.Mean() ||
		plain.Storage.MigratedBytes != traced.Storage.MigratedBytes {
		t.Fatalf("tracing perturbed the run: %+v vs %+v", plain, traced)
	}
}
