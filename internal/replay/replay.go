// Package replay is the simulator's equivalent of the paper's trace
// replay tool with a power-saving method (§VII-A.2, Fig. 7): it feeds a
// logical I/O trace through a pluggable policy into the simulated storage
// unit, on one virtual timeline, and measures power consumption, I/O
// response time and throughput, migrated data size, and the enclosure
// I/O interval distribution.
package replay

import (
	"errors"
	"fmt"
	"time"

	"esm/internal/faults"
	"esm/internal/metrics"
	"esm/internal/monitor"
	"esm/internal/obs"
	"esm/internal/policy"
	"esm/internal/powermodel"
	"esm/internal/simclock"
	"esm/internal/storage"
	"esm/internal/trace"
)

// Run describes one replay experiment.
type Run struct {
	// Catalog names the data items of the trace.
	Catalog *trace.Catalog
	// Source streams the logical trace in time order. This is the
	// preferred input: the engines consume it incrementally, so a trace
	// far larger than memory replays in O(items) space. A Source is
	// single-use; give every Execute call its own. Requires an explicit
	// Duration (a stream's end is unknown up front, and policies need
	// the measurement span).
	Source trace.Source
	// Records is the materialized logical trace, sorted by time.
	//
	// Deprecated: kept as a convenience adapter for small traces and
	// older callers; it is wrapped in a SliceSource internally. Ignored
	// when Source is set.
	Records []trace.LogicalRecord
	// Placement is the initial enclosure of every item, indexed by ItemID.
	Placement []int
	// Storage configures the simulated array.
	Storage storage.Config
	// Policy is the power-saving method under test.
	Policy policy.Policy
	// Duration is the measurement span. When zero, the time of the last
	// record is used.
	Duration time.Duration
	// Shards, when greater than 1, replays the open loop on the sharded
	// engine: enclosures are partitioned into Shards contiguous groups,
	// each with its own worker lane and clock, synchronized by
	// conservative barriers at every cross-shard interaction. Results
	// are byte-identical to the serial engine (DESIGN.md §14). The value
	// is clamped to the enclosure count; closed-loop runs and
	// single-enclosure arrays fall back to the serial engine.
	Shards int
	// ClosedLoop, when set, replays each data item's I/O stream with a
	// queue depth of one: an I/O cannot be issued before the item's
	// previous I/O completed, and the stall shifts the item's remaining
	// records. This models applications that block on I/O (sequential
	// scans, file-server sessions); a spin-up then delays a burst once
	// instead of being charged to every I/O issued during the wait. OLTP
	// traces, issued by many concurrent threads, replay open-loop.
	ClosedLoop bool
	// Windows optionally marks named sub-spans (TPC-H queries) whose read
	// responses are aggregated separately for the Fig. 15 analysis.
	Windows []Window
	// Recorder, when non-nil, receives the telemetry event stream from
	// the array and (if the policy supports it) the policy itself.
	Recorder *obs.Recorder
	// Tracer, when non-nil, receives per-I/O and management-function
	// spans from the array and (if the policy supports it) the policy.
	// Execute finalizes the latency summary and energy attribution into
	// the Result but does not close the tracer: its sink belongs to the
	// caller (who may share it across runs or embed a summary on Close).
	Tracer *obs.Tracer
	// Faults, when non-nil, is the fault scenario injected into the run.
	// The same scenario (same seed) reproduces the same fault sequence.
	Faults *faults.Config
	// Series, when non-nil, is the flight recorder fed whole-system
	// snapshots on the power-sampling grid (the recorder's Interval, or
	// the default span/120 bucket when zero). Result.Series carries the
	// recorded time series; the final sample always matches the Result
	// totals exactly.
	Series *obs.FlightRecorder
	// Alerts, when non-nil, is the watchdog evaluated on the same
	// simulated sampling grid as the flight recorder (plus the policy's
	// instantaneous degrade bridge), so alert streams inherit the
	// serial-vs-sharded byte identity of every other output.
	Alerts *obs.Watchdog
	// Provenance, when non-nil, records the decision-provenance ledger:
	// the policy's determination inputs/outputs and the array's
	// triggering context for power transitions, migrations, preloads
	// and destages. Fed only from deterministic simulated-clock call
	// sites, so the stream is byte-identical serial vs -shards N. When
	// a tracer runs too, the energy ledger's top attributed items are
	// joined into the stream at end of run.
	Provenance *obs.Provenance
}

// Window is a named measurement sub-span.
type Window struct {
	Name  string
	Start time.Duration
	End   time.Duration
}

// WindowResult is the per-window read-response aggregate.
type WindowResult struct {
	Name    string
	Reads   int64
	ReadSum time.Duration
}

// Result is the outcome of one replay.
type Result struct {
	// PolicyName identifies the policy.
	PolicyName string
	// Span is the measurement duration.
	Span time.Duration
	// AvgEnclosureW and AvgTotalW are the average power draws; EnergyJ is
	// total energy including the controller.
	AvgEnclosureW float64
	AvgTotalW     float64
	EnergyJ       float64
	// Resp aggregates application I/O response times.
	Resp metrics.ResponseStats
	// Windows carries the per-window read aggregates, aligned with
	// Run.Windows.
	Windows []WindowResult
	// Storage is the final array counter snapshot.
	Storage storage.Stats
	// Determinations is the policy's data-placement determination count.
	Determinations int64
	// SpinUps is the total number of enclosure power-ons.
	SpinUps int
	// PowerSeries samples the average summed enclosure power over
	// consecutive buckets of PowerBucket each — the simulator's version
	// of the §III-B "power consumption of the storage device" records.
	// It is derived from the same sampling grid that feeds the flight
	// recorder, so power is measured in exactly one place.
	PowerSeries []float64
	PowerBucket time.Duration
	// Series is the flight recorder's whole-system time series; nil
	// without Run.Series.
	Series *obs.Series
	// Monitor is the storage monitor used for metrics; it holds the
	// per-enclosure interval distributions behind Figs 17–19.
	Monitor *monitor.StorageMonitor
	// StateMix is each enclosure's power-state residency over the run.
	StateMix []StateResidency
	// Faults counts the injected faults and failed operations of the run
	// (all zero without a fault scenario).
	Faults faults.Counters
	// Degradations counts the policy's transitions into degraded mode
	// (zero for policies without one).
	Degradations int64
	// Latency is the tracer's end-of-run latency breakdown (per cause
	// and per phase); nil without a tracer.
	Latency *obs.LatencySummary
	// Attribution is the tracer's energy attribution (per enclosure,
	// item, pattern class and management function); nil without a
	// tracer.
	Attribution *obs.Attribution
	// Alerts is the watchdog's end-of-run aggregate and AlertStates the
	// final per-rule states (zero/nil without Run.Alerts).
	Alerts      obs.AlertSummary
	AlertStates []obs.AlertStatus
	// Provenance is the decision-provenance roll-up and ProvSeries the
	// recorded ledger rows (nil without Run.Provenance).
	Provenance *obs.ProvenanceSummary
	ProvSeries *obs.Series
}

// StateResidency is the fraction of the run one enclosure spent in each
// power state.
type StateResidency struct {
	Active, Idle, Off, SpinUp float64
}

// Execute runs the experiment.
func Execute(r Run) (*Result, error) {
	if r.Catalog == nil || r.Policy == nil {
		return nil, fmt.Errorf("replay: catalog and policy are required")
	}
	if len(r.Placement) != r.Catalog.Len() {
		return nil, fmt.Errorf("replay: placement covers %d of %d items", len(r.Placement), r.Catalog.Len())
	}
	src := r.Source
	end := r.Duration
	if src == nil {
		// Slice adapter: the span can still be derived from the data.
		if n := len(r.Records); n > 0 && r.Records[n-1].Time > end {
			end = r.Records[n-1].Time
		}
		src = trace.NewSliceSource(r.Records)
	} else if end == 0 {
		return nil, fmt.Errorf("replay: a streaming Source needs an explicit Duration")
	}

	var clk simclock.Clock
	var evq simclock.EventQueue
	arr, err := storage.New(r.Storage, &clk, &evq, r.Catalog)
	if err != nil {
		return nil, err
	}
	// The tracer attaches before placement so the energy ledger's
	// residency accounting sees every item land on its home enclosure.
	if r.Tracer != nil {
		arr.SetTracer(r.Tracer)
	}
	for item, enc := range r.Placement {
		if err := arr.Place(trace.ItemID(item), enc); err != nil {
			return nil, err
		}
	}

	stMon := monitor.NewStorageMonitor(r.Storage.Enclosures)
	pol := r.Policy
	if r.Recorder != nil {
		arr.SetRecorder(r.Recorder)
		if p, ok := pol.(interface{ SetRecorder(*obs.Recorder) }); ok {
			p.SetRecorder(r.Recorder)
		}
	}
	if r.Tracer != nil {
		if p, ok := pol.(interface{ SetTracer(*obs.Tracer) }); ok {
			p.SetTracer(r.Tracer)
		}
	}
	if r.Series != nil {
		if p, ok := pol.(interface {
			SetFlightRecorder(*obs.FlightRecorder)
		}); ok {
			p.SetFlightRecorder(r.Series)
		}
	}
	if r.Alerts != nil {
		if p, ok := pol.(interface{ SetWatchdog(*obs.Watchdog) }); ok {
			p.SetWatchdog(r.Alerts)
		}
	}
	if r.Provenance != nil {
		// Predicted deltas use the run's actual electrical constants.
		r.Provenance.ConfigurePower(r.Storage.Power.IdleW, r.Storage.Power.SpinUpTime)
		arr.SetProvenance(r.Provenance)
		if p, ok := pol.(interface{ SetProvenance(*obs.Provenance) }); ok {
			p.SetProvenance(r.Provenance)
		}
	}
	var inj *faults.Injector
	if r.Faults != nil {
		inj, err = faults.NewInjector(*r.Faults)
		if err != nil {
			return nil, err
		}
		arr.SetFaultInjector(inj)
		// A policy that reacts to fault load (ESM's degraded mode)
		// observes every injected fault.
		if p, ok := pol.(interface{ OnFault(faults.Event) }); ok {
			arr.SetFaultObserver(p.OnFault)
		}
	}
	physObs := func(rec trace.PhysicalRecord) {
		stMon.RecordPhysical(rec)
		pol.OnPhysical(rec)
	}
	arr.SetPhysicalObserver(physObs)
	arr.SetPowerObserver(func(enc int, at time.Duration, on bool) {
		stMon.RecordPower(enc, at, on)
		pol.OnPower(enc, at, on)
	})

	ctx := &policy.Context{
		Array:   arr,
		Catalog: r.Catalog,
		Clock:   &clk,
		Queue:   &evq,
		End:     end,
	}
	pol.Init(ctx)

	res := &Result{PolicyName: pol.Name(), Span: end}

	// The policy's degraded flag, when it has one, goes into every
	// flight sample.
	var degraded func() bool
	if p, ok := pol.(interface{ Degraded() bool }); ok {
		degraded = p.Degraded
	}
	// snapshot settles the power accumulators and assembles one
	// whole-system flight sample at simulated time now.
	snapshot := func(now time.Duration) obs.FlightSample {
		arr.Finish()
		m := arr.Meter()
		occ := arr.CacheOccupancy()
		st := arr.Stats()
		s := obs.FlightSample{
			T:                 now,
			EnclosureEnergyJ:  m.EnclosureEnergyJ(),
			TotalEnergyJ:      m.TotalEnergyJ(now),
			SpinUps:           m.SpinUps(),
			CacheGeneralPages: occ.GeneralPages,
			CachePreloadBytes: occ.PreloadUsedBytes,
			CacheDirtyBytes:   occ.WriteDelayDirtyBytes,
			Determinations:    pol.Determinations(),
			Migrations:        st.Migrations,
			MigratedBytes:     st.MigratedBytes,
			PhysicalReads:     st.PhysicalReads,
			PhysicalWrites:    st.PhysicalWrites,
			CacheHits:         st.CacheHits,
			RespCount:         res.Resp.Count(),
			RespMean:          res.Resp.Mean(),
			RespP95:           res.Resp.Percentile(0.95),
			RespP99:           res.Resp.Percentile(0.99),
			Faults:            inj.Counters().Total(),
			Degraded:          degraded != nil && degraded(),
		}
		for e := 0; e < arr.Enclosures(); e++ {
			es := obs.EnclosureSample{UsedBytes: arr.Used(e)}
			switch since, idle := arr.IdleSince(e, now); {
			case !arr.EnclosureOn(e, now):
				es.State = obs.EnclosureOff
			case idle:
				es.State = obs.EnclosureIdle
				es.IdleFor = now - since
			default:
				es.State = obs.EnclosureActive
			}
			s.Enclosures = append(s.Enclosures, es)
		}
		return s
	}

	// Sample enclosure power and the flight recorder on one fixed grid
	// (the recorder's interval, or ~120 buckets per run).
	if end > 0 {
		res.PowerBucket = r.Series.Interval()
		if res.PowerBucket <= 0 {
			res.PowerBucket = end / 120
		}
		if res.PowerBucket < time.Second {
			res.PowerBucket = time.Second
		}
		var lastJ float64
		var sample func(now time.Duration)
		sample = func(now time.Duration) {
			arr.Finish()
			j := arr.Meter().EnclosureEnergyJ()
			res.PowerSeries = append(res.PowerSeries, (j-lastJ)/res.PowerBucket.Seconds())
			lastJ = j
			if r.Series != nil || r.Alerts != nil {
				s := snapshot(now)
				r.Series.Record(s)
				r.Alerts.Observe(s)
			}
			if next := now + res.PowerBucket; next <= end {
				evq.Schedule(next, sample)
			}
		}
		if r.Series != nil || r.Alerts != nil {
			// The t=0 baseline row: zero energy, initial placement.
			s := snapshot(0)
			r.Series.Record(s)
			r.Alerts.Observe(s)
		}
		evq.Schedule(res.PowerBucket, sample)
	}
	res.Windows = make([]WindowResult, len(r.Windows))
	for i, w := range r.Windows {
		res.Windows[i].Name = w.Name
	}

	submit := func(rec trace.LogicalRecord, origTime time.Duration) (time.Duration, error) {
		pol.OnLogical(rec)
		out, err := arr.Submit(rec)
		if err != nil {
			var fe *storage.FaultError
			if errors.As(err, &fe) {
				// The I/O failed on an injected fault: it consumed no
				// service and has no response time, so it is excluded from
				// the latency aggregates. The injector counted it.
				return 0, nil
			}
			return 0, fmt.Errorf("replay: %w", err)
		}
		res.Resp.Add(rec.Op, out.Response)
		if rec.Op == trace.OpRead {
			for wi, w := range r.Windows {
				if origTime >= w.Start && origTime < w.End {
					res.Windows[wi].Reads++
					res.Windows[wi].ReadSum += out.Response
				}
			}
		}
		return out.Response, nil
	}

	if r.ClosedLoop {
		if err := runClosedLoop(src, &clk, &evq, submit); err != nil {
			return nil, err
		}
	} else if smap := storage.NewShardMap(r.Storage.Enclosures, r.Shards); smap.Shards() > 1 {
		en := newShardEngine(FeederOptions{
			Array: arr, Clock: &clk, Queue: &evq, Shards: smap,
			OnLogical: pol.OnLogical, Resp: &res.Resp,
			Windows: r.Windows, WindowOut: res.Windows,
			Tracer: r.Tracer, Physical: physObs,
		}, inj != nil, submit)
		if err := en.run(src); err != nil {
			return nil, err
		}
	} else {
		var prev time.Duration
		var i int64
		for {
			rec, ok := src.Next()
			if !ok {
				break
			}
			if rec.Time < prev {
				return nil, fmt.Errorf("replay: record %d out of order", i)
			}
			prev = rec.Time
			i++
			evq.RunUntil(&clk, rec.Time)
			if _, err := submit(rec, rec.Time); err != nil {
				return nil, err
			}
		}
		if err := src.Err(); err != nil {
			return nil, fmt.Errorf("replay: %w", err)
		}
	}
	if clk.Now() > end {
		end = clk.Now()
		res.Span = end
	}
	evq.RunUntil(&clk, end)
	pol.Finish(end)
	arr.FlushAll()
	arr.Finish()
	stMon.Finish(end)

	res.Storage = arr.Stats()
	res.Determinations = pol.Determinations()
	res.Faults = inj.Counters()
	if p, ok := pol.(interface{ Degradations() int64 }); ok {
		res.Degradations = p.Degradations()
	}
	res.SpinUps = arr.Meter().SpinUps()
	res.AvgEnclosureW = arr.Meter().AverageEnclosureW(end)
	res.AvgTotalW = arr.Meter().AverageTotalW(end)
	res.EnergyJ = arr.Meter().TotalEnergyJ(end)
	res.Monitor = stMon
	if r.Series != nil || r.Alerts != nil {
		// The forced closing sample: its totals equal the Result fields
		// computed just above, from the same settled meter and counters.
		s := snapshot(end)
		r.Series.Final(s)
		r.Alerts.Final(s)
		res.Series = r.Series.Series()
	}
	if r.Alerts != nil {
		res.Alerts = r.Alerts.Summary()
		res.AlertStates = r.Alerts.States()
	}
	if r.Tracer != nil {
		res.Latency = r.Tracer.LatencySummary()
		res.Attribution = r.Tracer.Attribute(end, arr.EnclosureEnergy)
	}
	if r.Provenance != nil {
		// Join the energy ledger's top attributed items into the ledger
		// stream so `esmstat explain` can rank root causes by joules.
		if res.Attribution != nil {
			r.Provenance.RecordAttribution(end, res.Attribution, 0)
		}
		res.Provenance = r.Provenance.Summary()
		res.ProvSeries = r.Provenance.Series()
	}
	for e := 0; e < r.Storage.Enclosures; e++ {
		acc := arr.Meter().Enclosure(e)
		total := acc.Duration().Seconds()
		if total <= 0 {
			res.StateMix = append(res.StateMix, StateResidency{})
			continue
		}
		res.StateMix = append(res.StateMix, StateResidency{
			Active: acc.InState(powermodel.Active).Seconds() / total,
			Idle:   acc.InState(powermodel.Idle).Seconds() / total,
			Off:    acc.InState(powermodel.Off).Seconds() / total,
			SpinUp: acc.InState(powermodel.SpinUp).Seconds() / total,
		})
	}
	return res, nil
}
