package replay

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"esm/internal/core"
	"esm/internal/faults"
	"esm/internal/obs"
	"esm/internal/policy"
	"esm/internal/storage"
	"esm/internal/trace"
)

// shardedTrace builds a four-enclosure workload with a hot/cold skew,
// mixed reads and writes, and periodic bursts at the cold enclosures —
// enough activity to provoke ESM determinations, migrations, spin-downs
// and spin-ups, i.e. plenty of cross-shard interactions.
func shardedTrace(dur time.Duration, seed int64) (*trace.Catalog, []trace.LogicalRecord, []int) {
	cat := trace.NewCatalog()
	const encls = 4
	var ids []trace.ItemID
	placement := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for i := range placement {
		ids = append(ids, cat.Add(fmt.Sprintf("item%02d", i), 256<<20))
	}
	rng := rand.New(rand.NewSource(seed))
	var recs []trace.LogicalRecord
	for tm := time.Duration(0); tm < dur; tm += time.Duration(500+rng.Intn(1500)) * time.Millisecond {
		// Zipf-ish: the first items take most of the traffic.
		k := rng.Intn(len(ids))
		if rng.Intn(4) != 0 {
			k = rng.Intn(3)
		}
		op := trace.OpRead
		if rng.Intn(4) == 0 {
			op = trace.OpWrite
		}
		recs = append(recs, trace.LogicalRecord{
			Time: tm, Item: ids[k],
			Offset: int64(rng.Intn(64)) * 4096, Size: int32(4096 * (1 + rng.Intn(8))),
			Op: op,
		})
	}
	// Periodic bursts to the coldest enclosure: spin-up pressure.
	for start := 3 * time.Minute; start < dur; start += 7 * time.Minute {
		for j := 0; j < 4; j++ {
			recs = append(recs, trace.LogicalRecord{
				Time: start + time.Duration(j)*250*time.Millisecond,
				Item: ids[6+j%2], Size: 16 << 10, Op: trace.OpRead,
			})
		}
	}
	trace.SortLogical(recs)
	return cat, recs, placement
}

// shardedRunOutput is everything a replay emits that the sharded engine
// must reproduce byte for byte: the Result aggregates, the telemetry
// recorder's JSONL stream, and the flight recorder's CSV.
type shardedRunOutput struct {
	res    *Result
	events []byte
	flight []byte
}

func runForEquality(t *testing.T, mk func() policy.Policy, fc *faults.Config, shards int, dur time.Duration) shardedRunOutput {
	t.Helper()
	cat, recs, placement := shardedTrace(dur, 99)
	var events bytes.Buffer
	rec := obs.New(obs.Options{Sink: obs.NewJSONLSink(&events), Registry: obs.NewRegistry(), Label: "eq"})
	fr := obs.NewFlightRecorder(obs.FlightOptions{Interval: time.Minute})
	res, err := Execute(Run{
		Catalog:   cat,
		Records:   recs,
		Placement: placement,
		Storage:   storage.DefaultConfig(4),
		Policy:    mk(),
		Duration:  dur,
		Shards:    shards,
		Faults:    fc,
		Recorder:  rec,
		Series:    fr,
		Windows: []Window{
			{Name: "w1", Start: 2 * time.Minute, End: 10 * time.Minute},
			{Name: "w2", Start: 12 * time.Minute, End: 20 * time.Minute},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	var flight bytes.Buffer
	if err := res.Series.WriteCSV(&flight); err != nil {
		t.Fatal(err)
	}
	return shardedRunOutput{res: res, events: events.Bytes(), flight: flight.Bytes()}
}

func compareShardedOutputs(t *testing.T, want, got shardedRunOutput, label string) {
	t.Helper()
	w, g := want.res, got.res
	if w.EnergyJ != g.EnergyJ || w.AvgEnclosureW != g.AvgEnclosureW || w.AvgTotalW != g.AvgTotalW {
		t.Errorf("%s: energy diverged: serial J=%v W=%v/%v, sharded J=%v W=%v/%v",
			label, w.EnergyJ, w.AvgEnclosureW, w.AvgTotalW, g.EnergyJ, g.AvgEnclosureW, g.AvgTotalW)
	}
	if !reflect.DeepEqual(w.Resp, g.Resp) {
		t.Errorf("%s: response stats diverged: serial %d/%v/%v, sharded %d/%v/%v",
			label, w.Resp.Count(), w.Resp.Mean(), w.Resp.Max(), g.Resp.Count(), g.Resp.Mean(), g.Resp.Max())
	}
	if !reflect.DeepEqual(w.Windows, g.Windows) {
		t.Errorf("%s: windows diverged:\nserial  %+v\nsharded %+v", label, w.Windows, g.Windows)
	}
	if w.Storage != g.Storage {
		t.Errorf("%s: storage stats diverged:\nserial  %+v\nsharded %+v", label, w.Storage, g.Storage)
	}
	if w.SpinUps != g.SpinUps || w.Determinations != g.Determinations || w.Degradations != g.Degradations {
		t.Errorf("%s: spinups/determinations/degradations diverged: %d/%d/%d vs %d/%d/%d",
			label, w.SpinUps, w.Determinations, w.Degradations, g.SpinUps, g.Determinations, g.Degradations)
	}
	if w.Faults != g.Faults {
		t.Errorf("%s: fault counters diverged:\nserial  %+v\nsharded %+v", label, w.Faults, g.Faults)
	}
	if !reflect.DeepEqual(w.PowerSeries, g.PowerSeries) {
		t.Errorf("%s: power series diverged (%d vs %d buckets)", label, len(w.PowerSeries), len(g.PowerSeries))
	}
	if !reflect.DeepEqual(w.StateMix, g.StateMix) {
		t.Errorf("%s: state mix diverged:\nserial  %+v\nsharded %+v", label, w.StateMix, g.StateMix)
	}
	if !bytes.Equal(want.events, got.events) {
		i := 0
		for i < len(want.events) && i < len(got.events) && want.events[i] == got.events[i] {
			i++
		}
		lo, hi := i-80, i+80
		if lo < 0 {
			lo = 0
		}
		ctx := func(b []byte) string {
			h := hi
			if h > len(b) {
				h = len(b)
			}
			if lo >= h {
				return "<EOF>"
			}
			return string(b[lo:h])
		}
		t.Errorf("%s: recorder JSONL diverged at byte %d:\nserial  …%s…\nsharded …%s…",
			label, i, ctx(want.events), ctx(got.events))
	}
	if !bytes.Equal(want.flight, got.flight) {
		t.Errorf("%s: flight CSV diverged (%d vs %d bytes)", label, len(want.flight), len(got.flight))
	}
}

// TestShardedMatchesSerial is the tentpole's acceptance gate: across
// policies × fault specs × shard counts, the sharded engine must
// reproduce the serial engine's results byte for byte — same joules (to
// the bit), same response aggregates, same recorder event stream, same
// flight-recorder CSV.
func TestShardedMatchesSerial(t *testing.T) {
	dur := 25 * time.Minute
	policies := []struct {
		name string
		mk   func() policy.Policy
	}{
		{"esm", func() policy.Policy {
			p := core.DefaultParams()
			p.InitialPeriod = 4 * time.Minute
			esm, err := core.NewESM(p)
			if err != nil {
				t.Fatal(err)
			}
			return esm
		}},
		{"timeout", func() policy.Policy { return policy.FixedTimeout{} }},
		{"none", func() policy.Policy { return policy.NoPowerSaving{} }},
	}
	faultSpecs := []struct {
		name string
		fc   *faults.Config
	}{
		{"nofaults", nil},
		{"spinupfail", &faults.Config{Seed: 11, SpinUpFailProb: 0.3, SpinUpBackoff: time.Second}},
		{"battery", &faults.Config{Seed: 5, TransientIOProb: 0.05, BatteryFailAt: 8 * time.Minute, BatteryRecoverAt: 14 * time.Minute}},
	}
	for _, pc := range policies {
		for _, fs := range faultSpecs {
			serial := runForEquality(t, pc.mk, fs.fc, 1, dur)
			for _, shards := range []int{2, 4} {
				label := fmt.Sprintf("%s/%s/shards=%d", pc.name, fs.name, shards)
				sharded := runForEquality(t, pc.mk, fs.fc, shards, dur)
				compareShardedOutputs(t, serial, sharded, label)
			}
		}
	}
}

// TestShardedAdversarialMigrations hammers the barrier edges: ESM with a
// short monitoring period over a workload whose hot set shifts every few
// minutes, forcing migrations (cross-shard cache and placement mutations)
// to land between batched I/O of both the source and destination shards.
// Run under -race this doubles as the engine's data-race gate.
func TestShardedAdversarialMigrations(t *testing.T) {
	dur := 40 * time.Minute
	cat := trace.NewCatalog()
	placement := []int{0, 0, 1, 1, 2, 2, 3, 3}
	var ids []trace.ItemID
	for i := range placement {
		ids = append(ids, cat.Add(fmt.Sprintf("adv%02d", i), 192<<20))
	}
	rng := rand.New(rand.NewSource(1234))
	var recs []trace.LogicalRecord
	for tm := time.Duration(0); tm < dur; tm += time.Duration(300+rng.Intn(700)) * time.Millisecond {
		// The hot pair rotates across enclosure groups every 5 minutes,
		// so every determination sees a different skew and keeps moving
		// data between shards.
		phase := int(tm/(5*time.Minute)) % len(ids)
		k := (phase + rng.Intn(2)) % len(ids)
		if rng.Intn(5) == 0 {
			k = rng.Intn(len(ids))
		}
		op := trace.OpRead
		if rng.Intn(3) == 0 {
			op = trace.OpWrite
		}
		recs = append(recs, trace.LogicalRecord{
			Time: tm, Item: ids[k],
			Offset: int64(rng.Intn(128)) * 4096, Size: int32(4096 * (1 + rng.Intn(4))),
			Op: op,
		})
	}
	trace.SortLogical(recs)

	run := func(shards int) ([]byte, *Result) {
		p := core.DefaultParams()
		p.InitialPeriod = 3 * time.Minute
		p.MinPeriod = 2 * time.Minute
		esm, err := core.NewESM(p)
		if err != nil {
			t.Fatal(err)
		}
		var events bytes.Buffer
		rec := obs.New(obs.Options{Sink: obs.NewJSONLSink(&events), Registry: obs.NewRegistry(), Label: "adv"})
		res, err := Execute(Run{
			Catalog:   cat,
			Records:   recs,
			Placement: placement,
			Storage:   storage.DefaultConfig(4),
			Policy:    esm,
			Duration:  dur,
			Shards:    shards,
			Recorder:  rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		return events.Bytes(), res
	}

	serialEvents, serialRes := run(1)
	if serialRes.Storage.Migrations == 0 {
		t.Fatal("adversarial workload provoked no migrations; the test exercises nothing")
	}
	for _, shards := range []int{2, 4} {
		gotEvents, gotRes := run(shards)
		if !bytes.Equal(serialEvents, gotEvents) {
			i := 0
			for i < len(serialEvents) && i < len(gotEvents) && serialEvents[i] == gotEvents[i] {
				i++
			}
			t.Errorf("shards=%d: event stream diverged at byte %d of %d/%d",
				shards, i, len(serialEvents), len(gotEvents))
		}
		if serialRes.EnergyJ != gotRes.EnergyJ || serialRes.Storage != gotRes.Storage ||
			!reflect.DeepEqual(serialRes.Resp, gotRes.Resp) {
			t.Errorf("shards=%d: results diverged: J %v vs %v, stats %+v vs %+v",
				shards, serialRes.EnergyJ, gotRes.EnergyJ, serialRes.Storage, gotRes.Storage)
		}
	}
}

// TestShardedTracerSemanticEquality runs the engines with a live tracer
// and requires the same latency summary and energy attribution. (Raw
// sink span order may differ in one documented corner — a replan fired
// from a deferred op's physical observation — so the comparison is on
// the derived summaries, which aggregate per item and cause.)
func TestShardedTracerSemanticEquality(t *testing.T) {
	dur := 20 * time.Minute
	run := func(shards int) *Result {
		cat, recs, placement := shardedTrace(dur, 7)
		p := core.DefaultParams()
		p.InitialPeriod = 4 * time.Minute
		esm, err := core.NewESM(p)
		if err != nil {
			t.Fatal(err)
		}
		trc := obs.NewTracer(obs.TracerOptions{})
		res, err := Execute(Run{
			Catalog:   cat,
			Records:   recs,
			Placement: placement,
			Storage:   storage.DefaultConfig(4),
			Policy:    esm,
			Duration:  dur,
			Shards:    shards,
			Tracer:    trc,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, shards := range []int{2, 4} {
		got := run(shards)
		if !reflect.DeepEqual(serial.Latency, got.Latency) {
			t.Errorf("shards=%d: latency summary diverged:\nserial  %+v\nsharded %+v",
				shards, serial.Latency, got.Latency)
		}
		if !reflect.DeepEqual(serial.Attribution, got.Attribution) {
			t.Errorf("shards=%d: energy attribution diverged", shards)
		}
	}
}

// TestShardedFallbacks pins the serial fallbacks: shards ≤ 1, more
// shards than enclosures (clamped), and closed-loop runs all go through
// (or match) the serial engine.
func TestShardedFallbacks(t *testing.T) {
	cat, recs, placement := steadyTrace(2, 10*time.Second, 5*time.Minute)
	base := Run{
		Catalog:   cat,
		Records:   recs,
		Placement: placement,
		Storage:   storage.DefaultConfig(2),
		Policy:    policy.NoPowerSaving{},
		Duration:  5 * time.Minute,
	}
	serial, err := Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 1, 2, 16} {
		r := base
		r.Shards = shards
		got, err := Execute(r)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got.EnergyJ != serial.EnergyJ || !reflect.DeepEqual(got.Resp, serial.Resp) {
			t.Errorf("shards=%d diverged from serial", shards)
		}
	}
	// Closed loop with shards requested: falls back to the serial
	// closed-loop engine and still succeeds.
	r := base
	r.Shards = 4
	r.ClosedLoop = true
	if _, err := Execute(r); err != nil {
		t.Fatalf("closed-loop with shards: %v", err)
	}
}
