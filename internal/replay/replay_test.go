package replay

import (
	"testing"
	"time"

	"esm/internal/core"
	"esm/internal/policy"
	"esm/internal/storage"
	"esm/internal/trace"
)

// steadyTrace builds a trace with one item per enclosure, each receiving
// one read every `gap` for `dur`.
func steadyTrace(n int, gap, dur time.Duration) (*trace.Catalog, []trace.LogicalRecord, []int) {
	cat := trace.NewCatalog()
	var recs []trace.LogicalRecord
	placement := make([]int, n)
	for e := 0; e < n; e++ {
		id := cat.Add("item"+string(rune('A'+e)), 1<<30)
		placement[e] = e
		for tm := time.Duration(e) * time.Second; tm < dur; tm += gap {
			recs = append(recs, trace.LogicalRecord{Time: tm, Item: id, Offset: int64(tm), Size: 8 << 10, Op: trace.OpRead})
		}
	}
	trace.SortLogical(recs)
	return cat, recs, placement
}

func TestExecuteNoPowerSaving(t *testing.T) {
	cat, recs, placement := steadyTrace(2, 10*time.Second, 10*time.Minute)
	res, err := Execute(Run{
		Catalog:   cat,
		Records:   recs,
		Placement: placement,
		Storage:   storage.DefaultConfig(2),
		Policy:    policy.NoPowerSaving{},
		Duration:  10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != "none" {
		t.Fatalf("policy name %q", res.PolicyName)
	}
	if res.Span != 10*time.Minute {
		t.Fatalf("span %v", res.Span)
	}
	if res.Resp.Count() != int64(len(recs)) {
		t.Fatalf("responses %d, records %d", res.Resp.Count(), len(recs))
	}
	cfg := storage.DefaultConfig(2)
	// Everything idle-or-active: average enclosure power near 2×IdleW.
	if res.AvgEnclosureW < 2*cfg.Power.IdleW*0.98 {
		t.Fatalf("avg enclosure power %v too low for always-on", res.AvgEnclosureW)
	}
	if res.SpinUps != 0 || res.Determinations != 0 {
		t.Fatalf("unexpected spinups/determinations %d/%d", res.SpinUps, res.Determinations)
	}
	if res.Monitor == nil || res.Monitor.Enclosures() != 2 {
		t.Fatal("storage monitor missing")
	}
}

func TestExecuteTimeoutSavesOnIdleWorkload(t *testing.T) {
	// One busy enclosure, one idle: FixedTimeout should cut the idle one.
	cat := trace.NewCatalog()
	busy := cat.Add("busy", 1<<30)
	cat.Add("idle", 1<<30)
	var recs []trace.LogicalRecord
	for tm := time.Duration(0); tm < 20*time.Minute; tm += 5 * time.Second {
		recs = append(recs, trace.LogicalRecord{Time: tm, Item: busy, Size: 8 << 10, Op: trace.OpRead})
	}
	run := Run{
		Catalog:   cat,
		Records:   recs,
		Placement: []int{0, 1},
		Storage:   storage.DefaultConfig(2),
		Duration:  20 * time.Minute,
	}
	run.Policy = policy.NoPowerSaving{}
	base, err := Execute(run)
	if err != nil {
		t.Fatal(err)
	}
	run.Policy = policy.FixedTimeout{}
	saved, err := Execute(run)
	if err != nil {
		t.Fatal(err)
	}
	if saved.AvgEnclosureW >= base.AvgEnclosureW {
		t.Fatalf("timeout policy saved nothing: %v vs %v", saved.AvgEnclosureW, base.AvgEnclosureW)
	}
	if saved.SpinUps != 0 {
		t.Fatalf("idle enclosure should never spin back up, got %d", saved.SpinUps)
	}
}

func TestExecuteWindows(t *testing.T) {
	cat, recs, placement := steadyTrace(1, time.Second, 4*time.Minute)
	res, err := Execute(Run{
		Catalog:   cat,
		Records:   recs,
		Placement: placement,
		Storage:   storage.DefaultConfig(1),
		Policy:    policy.NoPowerSaving{},
		Duration:  4 * time.Minute,
		Windows: []Window{
			{Name: "W1", Start: 0, End: time.Minute},
			{Name: "W2", Start: time.Minute, End: 2 * time.Minute},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 2 {
		t.Fatalf("windows %d", len(res.Windows))
	}
	if res.Windows[0].Reads != 60 || res.Windows[1].Reads != 60 {
		t.Fatalf("window read counts %d/%d", res.Windows[0].Reads, res.Windows[1].Reads)
	}
	if res.Windows[0].ReadSum <= 0 {
		t.Fatal("window read sum empty")
	}
}

func TestExecuteRejectsBadInput(t *testing.T) {
	cat := trace.NewCatalog()
	cat.Add("x", 1)
	if _, err := Execute(Run{}); err == nil {
		t.Fatal("empty run accepted")
	}
	if _, err := Execute(Run{Catalog: cat, Policy: policy.NoPowerSaving{}, Placement: nil, Storage: storage.DefaultConfig(1)}); err == nil {
		t.Fatal("missing placement accepted")
	}
	recs := []trace.LogicalRecord{{Time: 2}, {Time: 1}}
	if _, err := Execute(Run{
		Catalog: cat, Policy: policy.NoPowerSaving{}, Placement: []int{0},
		Storage: storage.DefaultConfig(1), Records: recs,
	}); err == nil {
		t.Fatal("unsorted records accepted")
	}
}

func TestExecuteWithESM(t *testing.T) {
	// End-to-end smoke: the proposed policy runs inside the replay engine
	// and produces sane metrics.
	cat := trace.NewCatalog()
	busy := cat.Add("busy", 1<<30)
	burst := cat.Add("burst", 32<<20)
	var recs []trace.LogicalRecord
	dur := 30 * time.Minute
	for tm := time.Duration(0); tm < dur; tm += 2 * time.Second {
		recs = append(recs, trace.LogicalRecord{Time: tm, Item: busy, Offset: int64(tm), Size: 8 << 10, Op: trace.OpRead})
	}
	for start := time.Duration(0); start < dur; start += 5 * time.Minute {
		for j := 0; j < 5; j++ {
			recs = append(recs, trace.LogicalRecord{Time: start + time.Duration(j)*300*time.Millisecond, Item: burst, Size: 8 << 10, Op: trace.OpRead})
		}
	}
	trace.SortLogical(recs)
	esm, err := core.NewESM(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(Run{
		Catalog:   cat,
		Records:   recs,
		Placement: []int{0, 1},
		Storage:   storage.DefaultConfig(2),
		Policy:    esm,
		Duration:  dur,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Determinations < 1 {
		t.Fatal("ESM never planned")
	}
	if res.AvgEnclosureW <= 0 || res.EnergyJ <= 0 {
		t.Fatal("power metrics empty")
	}
}

func TestClosedLoopShiftsInsteadOfPiling(t *testing.T) {
	// One item issues a burst of 50 I/Os spaced 10ms onto an enclosure
	// that is spun down; open-loop charges the spin-up wait to every I/O,
	// closed-loop only to the first.
	cat := trace.NewCatalog()
	id := cat.Add("x", 1<<30)
	warm := cat.Add("w", 1<<30)
	var recs []trace.LogicalRecord
	// Touch once at t=0 so the enclosure spins down before the burst.
	recs = append(recs, trace.LogicalRecord{Time: 0, Item: id, Size: 8 << 10, Op: trace.OpRead})
	recs = append(recs, trace.LogicalRecord{Time: 0, Item: warm, Size: 8 << 10, Op: trace.OpRead})
	for j := 0; j < 50; j++ {
		recs = append(recs, trace.LogicalRecord{
			Time: 5*time.Minute + time.Duration(j)*10*time.Millisecond,
			Item: id, Offset: int64(j) << 13, Size: 8 << 10, Op: trace.OpRead,
		})
	}
	trace.SortLogical(recs)
	run := Run{
		Catalog:   cat,
		Records:   recs,
		Placement: []int{0, 1},
		Storage:   storage.DefaultConfig(2),
		Duration:  10 * time.Minute,
	}
	run.Policy = policy.FixedTimeout{}
	open, err := Execute(run)
	if err != nil {
		t.Fatal(err)
	}
	run.Policy = policy.FixedTimeout{}
	run.ClosedLoop = true
	closed, err := Execute(run)
	if err != nil {
		t.Fatal(err)
	}
	if closed.Resp.Mean() >= open.Resp.Mean()/4 {
		t.Fatalf("closed-loop mean %v not far below open-loop %v", closed.Resp.Mean(), open.Resp.Mean())
	}
	if closed.Resp.Count() != open.Resp.Count() {
		t.Fatal("record counts differ between modes")
	}
	// Both see exactly one spin-up for the burst.
	if closed.SpinUps != open.SpinUps {
		t.Fatalf("spinups differ: %d vs %d", closed.SpinUps, open.SpinUps)
	}
}

func TestClosedLoopPreservesPerItemOrder(t *testing.T) {
	cat := trace.NewCatalog()
	a := cat.Add("a", 1<<30)
	b := cat.Add("b", 1<<30)
	var recs []trace.LogicalRecord
	for j := 0; j < 100; j++ {
		recs = append(recs, trace.LogicalRecord{Time: time.Duration(j) * 7 * time.Millisecond, Item: a, Offset: int64(j), Size: 4096, Op: trace.OpRead})
		recs = append(recs, trace.LogicalRecord{Time: time.Duration(j) * 11 * time.Millisecond, Item: b, Offset: int64(j), Size: 4096, Op: trace.OpWrite})
	}
	trace.SortLogical(recs)
	res, err := Execute(Run{
		Catalog:    cat,
		Records:    recs,
		Placement:  []int{0, 0},
		Storage:    storage.DefaultConfig(1),
		Policy:     policy.NoPowerSaving{},
		Duration:   time.Minute,
		ClosedLoop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resp.Count() != 200 {
		t.Fatalf("submitted %d records, want 200", res.Resp.Count())
	}
}
