package replay

import (
	"testing"
	"time"

	"esm/internal/core"
	"esm/internal/faults"
	"esm/internal/obs"
	"esm/internal/storage"
	"esm/internal/trace"
)

// faultTrace builds a two-enclosure workload whose second enclosure goes
// cold and is periodically woken by bursts, so spin-up faults get a
// chance to fire.
func faultTrace(dur time.Duration) (*trace.Catalog, []trace.LogicalRecord) {
	cat := trace.NewCatalog()
	busy := cat.Add("busy", 1<<30)
	burst := cat.Add("burst", 32<<20)
	var recs []trace.LogicalRecord
	for tm := time.Duration(0); tm < dur; tm += 2 * time.Second {
		recs = append(recs, trace.LogicalRecord{Time: tm, Item: busy, Offset: int64(tm), Size: 8 << 10, Op: trace.OpRead})
	}
	for start := time.Duration(0); start < dur; start += 5 * time.Minute {
		for j := 0; j < 5; j++ {
			recs = append(recs, trace.LogicalRecord{Time: start + time.Duration(j)*300*time.Millisecond, Item: burst, Size: 8 << 10, Op: trace.OpRead})
		}
	}
	trace.SortLogical(recs)
	return cat, recs
}

func TestFaultedRunIsReproducible(t *testing.T) {
	dur := 30 * time.Minute
	fc := &faults.Config{
		Seed:             7,
		SpinUpFailProb:   0.4,
		SpinUpBackoff:    time.Second,
		TransientIOProb:  0.05,
		BatteryFailAt:    10 * time.Minute,
		BatteryRecoverAt: 15 * time.Minute,
	}
	run := func() *Result {
		cat, recs := faultTrace(dur)
		esm, err := core.NewESM(core.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(Run{
			Catalog:   cat,
			Records:   recs,
			Placement: []int{0, 1},
			Storage:   storage.DefaultConfig(2),
			Policy:    esm,
			Duration:  dur,
			Faults:    fc,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Faults.Total() == 0 {
		t.Fatal("scenario injected no faults; the test exercises nothing")
	}
	if a.Faults != b.Faults {
		t.Fatalf("fault counters diverged:\n%+v\n%+v", a.Faults, b.Faults)
	}
	if a.EnergyJ != b.EnergyJ {
		t.Fatalf("energy diverged: %v vs %v", a.EnergyJ, b.EnergyJ)
	}
	if a.Resp.Count() != b.Resp.Count() || a.Resp.Mean() != b.Resp.Mean() {
		t.Fatalf("response stats diverged: %d/%v vs %d/%v",
			a.Resp.Count(), a.Resp.Mean(), b.Resp.Count(), b.Resp.Mean())
	}
	if a.Storage != b.Storage {
		t.Fatalf("storage stats diverged:\n%+v\n%+v", a.Storage, b.Storage)
	}
	if a.Degradations != b.Degradations || a.SpinUps != b.SpinUps {
		t.Fatalf("degradations/spinups diverged: %d/%d vs %d/%d",
			a.Degradations, a.SpinUps, b.Degradations, b.SpinUps)
	}
}

func TestDegradedModeFollowsFaultSchedule(t *testing.T) {
	dur := 30 * time.Minute
	cat, recs := faultTrace(dur)
	params := core.DefaultParams()
	params.FaultDegradeThreshold = 1
	esm, err := core.NewESM(params)
	if err != nil {
		t.Fatal(err)
	}
	var sink obs.CollectSink
	rec := obs.New(obs.Options{Sink: &sink})
	failAt, recoverAt := 5*time.Minute, 6*time.Minute
	res, err := Execute(Run{
		Catalog:   cat,
		Records:   recs,
		Placement: []int{0, 1},
		Storage:   storage.DefaultConfig(2),
		Policy:    esm,
		Duration:  dur,
		Recorder:  rec,
		Faults:    &faults.Config{BatteryFailAt: failAt, BatteryRecoverAt: recoverAt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degradations != 1 {
		t.Fatalf("degradations %d, want 1", res.Degradations)
	}
	if res.Faults.BatteryFailures != 1 || res.Faults.BatteryRecoveries != 1 {
		t.Fatalf("battery counters %+v", res.Faults)
	}

	var faultsSeen []obs.Event
	var degrades []obs.Event
	for _, ev := range sink.Events() {
		switch ev.Type {
		case obs.EvFault:
			faultsSeen = append(faultsSeen, ev)
		case obs.EvDegrade:
			degrades = append(degrades, ev)
		}
	}
	if len(faultsSeen) != 2 {
		t.Fatalf("saw %d fault events, want 2", len(faultsSeen))
	}
	if faultsSeen[0].T != int64(failAt) || faultsSeen[0].Fault.Kind != string(faults.KindBatteryFail) {
		t.Fatalf("first fault event %+v at %v", faultsSeen[0].Fault, time.Duration(faultsSeen[0].T))
	}
	if faultsSeen[1].T != int64(recoverAt) || faultsSeen[1].Fault.Kind != string(faults.KindBatteryRecover) {
		t.Fatalf("second fault event %+v at %v", faultsSeen[1].Fault, time.Duration(faultsSeen[1].T))
	}

	// With threshold 1 the battery loss puts ESM into degraded mode at the
	// fault itself; it recovers at the first management run after a full
	// fault-free window (the recovery event restarts the window).
	if len(degrades) != 2 {
		t.Fatalf("saw %d degrade events, want enter+exit", len(degrades))
	}
	enter, exit := degrades[0], degrades[1]
	if !enter.Degrade.Entered || enter.T != int64(failAt) {
		t.Fatalf("enter event %+v at %v", enter.Degrade, time.Duration(enter.T))
	}
	if exit.Degrade.Entered {
		t.Fatal("second degrade event is not an exit")
	}
	if earliest := int64(recoverAt + params.FaultWindow); exit.T < earliest {
		t.Fatalf("exit at %v, before fault-free window elapsed (%v)",
			time.Duration(exit.T), time.Duration(earliest))
	}
}
