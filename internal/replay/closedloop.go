// Closed-loop replay: per-data-item streams with queue depth one,
// demultiplexed incrementally from a streaming source.

package replay

import (
	"container/heap"
	"fmt"
	"time"

	"esm/internal/simclock"
	"esm/internal/trace"
)

// itemCursor walks one data item's records through the shifted timeline.
type itemCursor struct {
	item trace.ItemID
	// queue holds the item's demuxed, not-yet-issued records in time
	// order. Only records the demuxer has had to read ahead of the
	// current issue point are buffered, so live memory stays O(items)
	// plus the read-ahead horizon, not O(records).
	queue []trace.LogicalRecord
	// delay is how far the item's timeline has been pushed back by
	// stalls; notBefore is the completion time of the item's last I/O.
	delay     time.Duration
	notBefore time.Duration
	// eff is the effective issue time of the next record.
	eff   time.Duration
	index int // heap index; -1 while the cursor has no queued records
}

type cursorHeap []*itemCursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	// The item tie-break makes simultaneous activations issue in a fixed
	// order, so replays are reproducible run to run.
	if h[i].eff != h[j].eff {
		return h[i].eff < h[j].eff
	}
	return h[i].item < h[j].item
}
func (h cursorHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *cursorHeap) Push(x any)   { c := x.(*itemCursor); c.index = len(*h); *h = append(*h, c) }
func (h *cursorHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	c.index = -1
	*h = old[:n-1]
	return c
}

// runClosedLoop replays the stream item by item: each item issues its
// next I/O at its original spacing, but never before its previous I/O
// completed. Stalls (queueing, spin-up waits) push the item's remaining
// records back in time, as a blocked application thread would be.
//
// The source is demultiplexed lazily: records are pulled only until the
// next arrival provably cannot issue before the earliest queued cursor
// (delays are non-negative, so a record arriving at T activates at or
// after T).
func runClosedLoop(src trace.Source, clk *simclock.Clock, evq *simclock.EventQueue, submit func(rec trace.LogicalRecord, origTime time.Duration) (time.Duration, error)) error {
	cursors := make(map[trace.ItemID]*itemCursor)
	var h cursorHeap
	var (
		pending     trace.LogicalRecord
		havePending bool
		eof         bool
		prev        time.Duration
		n           int64
	)

	// demux pulls records into per-item queues until the heap's root is
	// provably the globally next effective issue.
	demux := func() error {
		for {
			if !havePending {
				if eof {
					return nil
				}
				rec, ok := src.Next()
				if !ok {
					eof = true
					if err := src.Err(); err != nil {
						return fmt.Errorf("replay: %w", err)
					}
					return nil
				}
				if rec.Time < prev {
					return fmt.Errorf("replay: record %d out of order", n)
				}
				prev = rec.Time
				n++
				pending = rec
				havePending = true
			}
			if len(h) > 0 && pending.Time > h[0].eff {
				return nil
			}
			c := cursors[pending.Item]
			if c == nil {
				c = &itemCursor{item: pending.Item, index: -1}
				cursors[pending.Item] = c
			}
			c.queue = append(c.queue, pending)
			havePending = false
			if c.index < 0 {
				eff := pending.Time + c.delay
				if eff < c.notBefore {
					eff = c.notBefore
				}
				c.eff = eff
				heap.Push(&h, c)
			}
		}
	}

	for {
		if err := demux(); err != nil {
			return err
		}
		if len(h) == 0 {
			// Source drained and every queued record issued.
			return nil
		}
		c := h[0]
		rec := c.queue[0]
		issueAt := c.eff
		if issueAt < clk.Now() {
			// Another item's stall moved the global clock past this
			// record's effective time; issue immediately.
			issueAt = clk.Now()
		}
		evq.RunUntil(clk, issueAt)
		shifted := rec
		shifted.Time = issueAt
		resp, err := submit(shifted, rec.Time)
		if err != nil {
			return err
		}
		c.notBefore = issueAt + resp
		c.delay = issueAt - rec.Time
		c.queue = c.queue[1:]
		if len(c.queue) == 0 {
			heap.Pop(&h)
			c.queue = nil
		} else {
			next := c.queue[0]
			eff := next.Time + c.delay
			if eff < c.notBefore {
				eff = c.notBefore
			}
			c.eff = eff
			heap.Fix(&h, 0)
		}
	}
}
