// Closed-loop replay: per-data-item streams with queue depth one,
// demultiplexed incrementally from a streaming source.
//
// The demux state is bounded: cursors for items that stop recurring
// (volume churn) are evicted by a periodic sweep instead of pinning
// their ring buffers for the rest of the replay. An evicted item's
// timeline state survives as a two-field parked entry only while it can
// still affect a future record; once the stream's time high-water
// passes it, the entry is dropped entirely. Live memory is therefore
// O(active items + recently touched items), not O(items ever seen).

package replay

import (
	"container/heap"
	"fmt"
	"time"

	"esm/internal/simclock"
	"esm/internal/trace"
)

// itemCursor walks one data item's records through the shifted timeline.
type itemCursor struct {
	item trace.ItemID
	// buf is a power-of-two ring buffer holding the item's demuxed,
	// not-yet-issued records in time order. Only records the demuxer has
	// had to read ahead of the current issue point are buffered, so live
	// memory stays O(items) plus the read-ahead horizon, not O(records).
	// The ring is kept across activations: once it has grown to the
	// item's read-ahead peak, the steady-state demux-issue cycle
	// allocates nothing.
	buf  []trace.LogicalRecord
	head int
	n    int
	// delay is how far the item's timeline has been pushed back by
	// stalls; notBefore is the completion time of the item's last I/O.
	delay     time.Duration
	notBefore time.Duration
	// eff is the effective issue time of the next record.
	eff   time.Duration
	index int // heap index; -1 while the cursor has no queued records
	// touch is the demux record counter at the cursor's last activity;
	// the sweep only evicts cursors that sat drained through a whole
	// sweep window, so steady-state items are never churned through the
	// pool.
	touch int64
}

// push appends rec to the cursor's ring, growing it in powers of two.
func (c *itemCursor) push(rec trace.LogicalRecord) {
	if c.n == len(c.buf) {
		size := len(c.buf) * 2
		if size == 0 {
			size = 8
		}
		grown := make([]trace.LogicalRecord, size)
		for i := 0; i < c.n; i++ {
			grown[i] = c.buf[(c.head+i)&(len(c.buf)-1)]
		}
		c.buf, c.head = grown, 0
	}
	c.buf[(c.head+c.n)&(len(c.buf)-1)] = rec
	c.n++
}

// front returns the oldest queued record; the cursor must be non-empty.
func (c *itemCursor) front() trace.LogicalRecord { return c.buf[c.head] }

// pop discards the oldest queued record.
func (c *itemCursor) pop() {
	c.buf[c.head] = trace.LogicalRecord{}
	c.head = (c.head + 1) & (len(c.buf) - 1)
	c.n--
}

type cursorHeap []*itemCursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	// The item tie-break makes simultaneous activations issue in a fixed
	// order, so replays are reproducible run to run.
	if h[i].eff != h[j].eff {
		return h[i].eff < h[j].eff
	}
	return h[i].item < h[j].item
}
func (h cursorHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *cursorHeap) Push(x any)   { c := x.(*itemCursor); c.index = len(*h); *h = append(*h, c) }
func (h *cursorHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	c.index = -1
	*h = old[:n-1]
	return c
}

// parkedState is the part of an evicted cursor that can still change a
// future record's issue time: the accumulated timeline shift and the
// completion fence of the item's last I/O.
type parkedState struct {
	delay     time.Duration
	notBefore time.Duration
}

// sweepEvery is how many demuxed records pass between eviction sweeps.
// A sweep walks the whole cursor map, so the window amortizes its cost
// to O(live/sweepEvery) per record while bounding how long a churned
// item's ring buffer can linger.
const sweepEvery = 8192

// cursorPoolMax bounds the free list of evicted cursor structs; beyond
// it, evicted cursors are left to the collector.
const cursorPoolMax = 256

// closedLoop is the demux state of one closed-loop replay. It exists as
// a struct (rather than closure locals) so tests can watch the memory
// profile: peakCursors/peakParked record the high-water of the two maps
// as observed at sweep boundaries.
type closedLoop struct {
	src    trace.Source
	clk    *simclock.Clock
	evq    *simclock.EventQueue
	submit func(rec trace.LogicalRecord, origTime time.Duration) (time.Duration, error)

	cursors map[trace.ItemID]*itemCursor
	parked  map[trace.ItemID]parkedState
	pool    []*itemCursor
	h       cursorHeap

	pending     trace.LogicalRecord
	havePending bool
	eof         bool
	prev        time.Duration
	n           int64
	lastSweep   int64

	peakCursors int
	peakParked  int
}

func newClosedLoop(src trace.Source, clk *simclock.Clock, evq *simclock.EventQueue, submit func(rec trace.LogicalRecord, origTime time.Duration) (time.Duration, error)) *closedLoop {
	return &closedLoop{
		src: src, clk: clk, evq: evq, submit: submit,
		cursors: make(map[trace.ItemID]*itemCursor),
		parked:  make(map[trace.ItemID]parkedState),
	}
}

// activate returns the item's cursor, reviving parked state or a pooled
// struct as needed. The returned cursor is in the map but may not be in
// the heap (index -1).
func (cl *closedLoop) activate(item trace.ItemID) *itemCursor {
	if c := cl.cursors[item]; c != nil {
		return c
	}
	var c *itemCursor
	if k := len(cl.pool); k > 0 {
		c = cl.pool[k-1]
		cl.pool[k-1] = nil
		cl.pool = cl.pool[:k-1]
	} else {
		c = &itemCursor{}
	}
	*c = itemCursor{buf: c.buf, item: item, index: -1}
	if p, ok := cl.parked[item]; ok {
		c.delay, c.notBefore = p.delay, p.notBefore
		delete(cl.parked, item)
	}
	cl.cursors[item] = c
	return c
}

// sweep evicts cursors that sat drained through the whole previous
// window and drops parked state the stream has provably passed. Map
// iteration order only affects which evicted structs land in the
// bounded pool — pooled structs are fully reset on reuse, so results
// are unchanged.
func (cl *closedLoop) sweep() {
	if len(cl.cursors) > cl.peakCursors {
		cl.peakCursors = len(cl.cursors)
	}
	for item, c := range cl.cursors {
		if c.n != 0 || c.index >= 0 || c.touch >= cl.lastSweep {
			continue
		}
		delete(cl.cursors, item)
		// A future record r has r.Time >= prev, so a zero delay and a
		// fence the stream has passed can never move its issue time:
		// only then is the state forgettable.
		if c.delay != 0 || c.notBefore > cl.prev {
			cl.parked[item] = parkedState{delay: c.delay, notBefore: c.notBefore}
		}
		if len(cl.pool) < cursorPoolMax {
			cl.pool = append(cl.pool, c)
		}
	}
	for item, p := range cl.parked {
		if p.delay == 0 && p.notBefore <= cl.prev {
			delete(cl.parked, item)
		}
	}
	if len(cl.parked) > cl.peakParked {
		cl.peakParked = len(cl.parked)
	}
	cl.lastSweep = cl.n
}

// demux pulls records into per-item queues until the heap's root is
// provably the globally next effective issue (delays are non-negative,
// so a record arriving at T activates at or after T).
func (cl *closedLoop) demux() error {
	for {
		if !cl.havePending {
			if cl.eof {
				return nil
			}
			rec, ok := cl.src.Next()
			if !ok {
				cl.eof = true
				if err := cl.src.Err(); err != nil {
					return fmt.Errorf("replay: %w", err)
				}
				return nil
			}
			if rec.Time < cl.prev {
				return fmt.Errorf("replay: record %d out of order", cl.n)
			}
			cl.prev = rec.Time
			cl.n++
			if cl.n-cl.lastSweep > sweepEvery {
				cl.sweep()
			}
			cl.pending = rec
			cl.havePending = true
		}
		if len(cl.h) > 0 && cl.pending.Time > cl.h[0].eff {
			return nil
		}
		c := cl.activate(cl.pending.Item)
		c.push(cl.pending)
		c.touch = cl.n
		cl.havePending = false
		if c.index < 0 {
			eff := cl.pending.Time + c.delay
			if eff < c.notBefore {
				eff = c.notBefore
			}
			c.eff = eff
			heap.Push(&cl.h, c)
		}
	}
}

func (cl *closedLoop) run() error {
	for {
		if err := cl.demux(); err != nil {
			return err
		}
		if len(cl.h) == 0 {
			// Source drained and every queued record issued.
			return nil
		}
		c := cl.h[0]
		rec := c.front()
		issueAt := c.eff
		if issueAt < cl.clk.Now() {
			// Another item's stall moved the global clock past this
			// record's effective time; issue immediately.
			issueAt = cl.clk.Now()
		}
		cl.evq.RunUntil(cl.clk, issueAt)
		shifted := rec
		shifted.Time = issueAt
		resp, err := cl.submit(shifted, rec.Time)
		if err != nil {
			return err
		}
		c.notBefore = issueAt + resp
		c.delay = issueAt - rec.Time
		c.pop()
		c.touch = cl.n
		if c.n == 0 {
			heap.Pop(&cl.h)
		} else {
			next := c.front()
			eff := next.Time + c.delay
			if eff < c.notBefore {
				eff = c.notBefore
			}
			c.eff = eff
			heap.Fix(&cl.h, 0)
		}
	}
}

// runClosedLoop replays the stream item by item: each item issues its
// next I/O at its original spacing, but never before its previous I/O
// completed. Stalls (queueing, spin-up waits) push the item's remaining
// records back in time, as a blocked application thread would be.
func runClosedLoop(src trace.Source, clk *simclock.Clock, evq *simclock.EventQueue, submit func(rec trace.LogicalRecord, origTime time.Duration) (time.Duration, error)) error {
	return newClosedLoop(src, clk, evq, submit).run()
}
