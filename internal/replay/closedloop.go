// Closed-loop replay: per-data-item streams with queue depth one.

package replay

import (
	"container/heap"
	"fmt"
	"time"

	"esm/internal/simclock"
	"esm/internal/trace"
)

// itemCursor walks one data item's records through the shifted timeline.
type itemCursor struct {
	item trace.ItemID
	// recs are indices into the global record slice, in time order.
	recs []int32
	pos  int
	// delay is how far the item's timeline has been pushed back by
	// stalls; notBefore is the completion time of the item's last I/O.
	delay     time.Duration
	notBefore time.Duration
	// eff is the effective issue time of the next record.
	eff   time.Duration
	index int // heap index
}

type cursorHeap []*itemCursor

func (h cursorHeap) Len() int           { return len(h) }
func (h cursorHeap) Less(i, j int) bool { return h[i].eff < h[j].eff }
func (h cursorHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *cursorHeap) Push(x any)        { c := x.(*itemCursor); c.index = len(*h); *h = append(*h, c) }
func (h *cursorHeap) Pop() any          { old := *h; n := len(old); c := old[n-1]; *h = old[:n-1]; return c }

// runClosedLoop replays the records item by item: each item issues its
// next I/O at its original spacing, but never before its previous I/O
// completed. Stalls (queueing, spin-up waits) push the item's remaining
// records back in time, as a blocked application thread would be.
func runClosedLoop(r Run, clk *simclock.Clock, evq *simclock.EventQueue, submit func(rec trace.LogicalRecord, origTime time.Duration) time.Duration) error {
	perItem := make(map[trace.ItemID][]int32)
	var prev time.Duration
	for i := range r.Records {
		rec := &r.Records[i]
		if rec.Time < prev {
			return fmt.Errorf("replay: record %d out of order", i)
		}
		prev = rec.Time
		perItem[rec.Item] = append(perItem[rec.Item], int32(i))
	}
	h := make(cursorHeap, 0, len(perItem))
	for item, recs := range perItem {
		c := &itemCursor{item: item, recs: recs}
		c.eff = r.Records[recs[0]].Time
		h = append(h, c)
	}
	heap.Init(&h)

	for h.Len() > 0 {
		c := h[0]
		rec := r.Records[c.recs[c.pos]]
		issueAt := c.eff
		if issueAt < clk.Now() {
			// Another item's stall moved the global clock past this
			// record's effective time; issue immediately.
			issueAt = clk.Now()
		}
		evq.RunUntil(clk, issueAt)
		shifted := rec
		shifted.Time = issueAt
		resp := submit(shifted, rec.Time)
		c.notBefore = issueAt + resp
		c.delay = issueAt - rec.Time
		c.pos++
		if c.pos >= len(c.recs) {
			heap.Pop(&h)
			continue
		}
		next := r.Records[c.recs[c.pos]]
		eff := next.Time + c.delay
		if eff < c.notBefore {
			eff = c.notBefore
		}
		c.eff = eff
		heap.Fix(&h, 0)
	}
	return nil
}
