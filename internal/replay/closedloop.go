// Closed-loop replay: per-data-item streams with queue depth one,
// demultiplexed incrementally from a streaming source.

package replay

import (
	"container/heap"
	"fmt"
	"time"

	"esm/internal/simclock"
	"esm/internal/trace"
)

// itemCursor walks one data item's records through the shifted timeline.
type itemCursor struct {
	item trace.ItemID
	// buf is a power-of-two ring buffer holding the item's demuxed,
	// not-yet-issued records in time order. Only records the demuxer has
	// had to read ahead of the current issue point are buffered, so live
	// memory stays O(items) plus the read-ahead horizon, not O(records).
	// The ring is kept across activations: once it has grown to the
	// item's read-ahead peak, the steady-state demux-issue cycle
	// allocates nothing.
	buf  []trace.LogicalRecord
	head int
	n    int
	// delay is how far the item's timeline has been pushed back by
	// stalls; notBefore is the completion time of the item's last I/O.
	delay     time.Duration
	notBefore time.Duration
	// eff is the effective issue time of the next record.
	eff   time.Duration
	index int // heap index; -1 while the cursor has no queued records
}

// push appends rec to the cursor's ring, growing it in powers of two.
func (c *itemCursor) push(rec trace.LogicalRecord) {
	if c.n == len(c.buf) {
		size := len(c.buf) * 2
		if size == 0 {
			size = 8
		}
		grown := make([]trace.LogicalRecord, size)
		for i := 0; i < c.n; i++ {
			grown[i] = c.buf[(c.head+i)&(len(c.buf)-1)]
		}
		c.buf, c.head = grown, 0
	}
	c.buf[(c.head+c.n)&(len(c.buf)-1)] = rec
	c.n++
}

// front returns the oldest queued record; the cursor must be non-empty.
func (c *itemCursor) front() trace.LogicalRecord { return c.buf[c.head] }

// pop discards the oldest queued record.
func (c *itemCursor) pop() {
	c.buf[c.head] = trace.LogicalRecord{}
	c.head = (c.head + 1) & (len(c.buf) - 1)
	c.n--
}

type cursorHeap []*itemCursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	// The item tie-break makes simultaneous activations issue in a fixed
	// order, so replays are reproducible run to run.
	if h[i].eff != h[j].eff {
		return h[i].eff < h[j].eff
	}
	return h[i].item < h[j].item
}
func (h cursorHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *cursorHeap) Push(x any)   { c := x.(*itemCursor); c.index = len(*h); *h = append(*h, c) }
func (h *cursorHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	c.index = -1
	*h = old[:n-1]
	return c
}

// runClosedLoop replays the stream item by item: each item issues its
// next I/O at its original spacing, but never before its previous I/O
// completed. Stalls (queueing, spin-up waits) push the item's remaining
// records back in time, as a blocked application thread would be.
//
// The source is demultiplexed lazily: records are pulled only until the
// next arrival provably cannot issue before the earliest queued cursor
// (delays are non-negative, so a record arriving at T activates at or
// after T).
func runClosedLoop(src trace.Source, clk *simclock.Clock, evq *simclock.EventQueue, submit func(rec trace.LogicalRecord, origTime time.Duration) (time.Duration, error)) error {
	cursors := make(map[trace.ItemID]*itemCursor)
	var h cursorHeap
	var (
		pending     trace.LogicalRecord
		havePending bool
		eof         bool
		prev        time.Duration
		n           int64
	)

	// demux pulls records into per-item queues until the heap's root is
	// provably the globally next effective issue.
	demux := func() error {
		for {
			if !havePending {
				if eof {
					return nil
				}
				rec, ok := src.Next()
				if !ok {
					eof = true
					if err := src.Err(); err != nil {
						return fmt.Errorf("replay: %w", err)
					}
					return nil
				}
				if rec.Time < prev {
					return fmt.Errorf("replay: record %d out of order", n)
				}
				prev = rec.Time
				n++
				pending = rec
				havePending = true
			}
			if len(h) > 0 && pending.Time > h[0].eff {
				return nil
			}
			c := cursors[pending.Item]
			if c == nil {
				c = &itemCursor{item: pending.Item, index: -1}
				cursors[pending.Item] = c
			}
			c.push(pending)
			havePending = false
			if c.index < 0 {
				eff := pending.Time + c.delay
				if eff < c.notBefore {
					eff = c.notBefore
				}
				c.eff = eff
				heap.Push(&h, c)
			}
		}
	}

	for {
		if err := demux(); err != nil {
			return err
		}
		if len(h) == 0 {
			// Source drained and every queued record issued.
			return nil
		}
		c := h[0]
		rec := c.front()
		issueAt := c.eff
		if issueAt < clk.Now() {
			// Another item's stall moved the global clock past this
			// record's effective time; issue immediately.
			issueAt = clk.Now()
		}
		evq.RunUntil(clk, issueAt)
		shifted := rec
		shifted.Time = issueAt
		resp, err := submit(shifted, rec.Time)
		if err != nil {
			return err
		}
		c.notBefore = issueAt + resp
		c.delay = issueAt - rec.Time
		c.pop()
		if c.n == 0 {
			heap.Pop(&h)
		} else {
			next := c.front()
			eff := next.Time + c.delay
			if eff < c.notBefore {
				eff = c.notBefore
			}
			c.eff = eff
			heap.Fix(&h, 0)
		}
	}
}
