// Demonstrates the tentpole memory claim: replaying a trace through a
// FileSource holds the live heap at O(data items), not O(records). The
// streaming benchmark and its materialized twin replay the same
// on-disk trace; compare their live-MB metrics — streaming stays flat
// while materialized carries the whole decoded slice.

package replay

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"esm/internal/policy"
	"esm/internal/storage"
	"esm/internal/trace"
)

const benchItems = 64

// writeBenchTrace streams n synthetic records (round-robin over
// benchItems items, 1 ms apart, 4 KB I/Os) into a stream-format trace
// file without ever materializing them.
func writeBenchTrace(tb testing.TB, n int64) (path string, cat *trace.Catalog, placement []int, dur time.Duration) {
	tb.Helper()
	cat = trace.NewCatalog()
	const itemBytes = 256 << 20
	for i := 0; i < benchItems; i++ {
		cat.Add(fmt.Sprintf("item%02d", i), itemBytes)
		placement = append(placement, i%4)
	}
	path = filepath.Join(tb.TempDir(), "bench.trace")
	f, err := os.Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	sw := trace.NewStreamWriter(f)
	const gap = time.Millisecond
	for i := int64(0); i < n; i++ {
		item := trace.ItemID(i % benchItems)
		rec := trace.LogicalRecord{
			Time:   time.Duration(i) * gap,
			Item:   item,
			Offset: (i * 4096) % (itemBytes - 4096),
			Size:   4096,
			Op:     trace.OpRead,
		}
		if i%5 == 0 {
			rec.Op = trace.OpWrite
		}
		if err := sw.Append(rec); err != nil {
			tb.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		tb.Fatal(err)
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
	return path, cat, placement, time.Duration(n) * gap
}

func benchRecordCount(tb testing.TB) int64 {
	if testing.Short() {
		return 1_000_000
	}
	return 10_000_000
}

// liveHeapMB returns the post-GC live heap in MB.
func liveHeapMB() float64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.HeapAlloc) / (1 << 20)
}

func benchRun(cat *trace.Catalog, placement []int, dur time.Duration) Run {
	return Run{
		Catalog:   cat,
		Placement: placement,
		Storage:   storage.DefaultConfig(4),
		Policy:    policy.NoPowerSaving{},
		Duration:  dur,
	}
}

// BenchmarkReplayFileSourceStreaming replays the trace straight off
// disk. Live heap during the run is the per-item cursor state plus
// decoder buffers — independent of the record count.
func BenchmarkReplayFileSourceStreaming(b *testing.B) {
	n := benchRecordCount(b)
	path, cat, placement, dur := writeBenchTrace(b, n)
	base := liveHeapMB()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := trace.OpenFile(path)
		if err != nil {
			b.Fatal(err)
		}
		run := benchRun(cat, placement, dur)
		run.Source = src
		res, err := Execute(run)
		if err != nil {
			b.Fatal(err)
		}
		if res.Resp.Count() != n {
			b.Fatalf("replayed %d of %d records", res.Resp.Count(), n)
		}
		// The source is still reachable here, so the measured live heap
		// includes everything the replay held onto.
		b.ReportMetric(liveHeapMB()-base, "live-MB")
		src.Close()
	}
}

// BenchmarkReplayMaterialized is the twin: identical trace, but decoded
// into one slice first, the pre-refactor shape. Its live-MB metric
// scales with the record count.
func BenchmarkReplayMaterialized(b *testing.B) {
	n := benchRecordCount(b)
	path, cat, placement, dur := writeBenchTrace(b, n)
	base := liveHeapMB()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := trace.OpenFile(path)
		if err != nil {
			b.Fatal(err)
		}
		recs, err := trace.CollectSource(src)
		if err != nil {
			b.Fatal(err)
		}
		src.Close()
		run := benchRun(cat, placement, dur)
		run.Records = recs
		res, err := Execute(run)
		if err != nil {
			b.Fatal(err)
		}
		if res.Resp.Count() != n {
			b.Fatalf("replayed %d of %d records", res.Resp.Count(), n)
		}
		b.ReportMetric(liveHeapMB()-base, "live-MB")
		runtime.KeepAlive(recs)
	}
}
