// Package metrics aggregates the measurements the paper's evaluation
// reports: application-observed I/O response times, derived application
// performance (TPC-C transaction throughput and TPC-H query response
// times, §VII-A.5), and the cumulative I/O interval curves of Figs 17–19.
package metrics

import (
	"fmt"
	"math"
	"time"

	"esm/internal/monitor"
	"esm/internal/trace"
)

// respBuckets is the number of logarithmic response-time histogram
// buckets: bucket 0 covers [0, respBucketBase) and bucket i ≥ 1 covers
// [respBucketBase·2^(i-1), respBucketBase·2^i).
const respBuckets = 32

// respBucketBase is the upper bound of the first histogram bucket.
const respBucketBase = 200 * time.Microsecond

// ResponseStats accumulates response times of application I/Os.
type ResponseStats struct {
	count   int64
	sum     time.Duration
	max     time.Duration
	reads   int64
	readSum time.Duration
	hist    [respBuckets]int64
}

// Add records one I/O of the given type.
func (r *ResponseStats) Add(op trace.Op, d time.Duration) {
	r.count++
	r.sum += d
	if d > r.max {
		r.max = d
	}
	if op == trace.OpRead {
		r.reads++
		r.readSum += d
	}
	b := 0
	for limit := respBucketBase; d >= limit && b < respBuckets-1; limit *= 2 {
		b++
	}
	r.hist[b]++
}

// Merge folds o into r. Every field is a count, a sum or a max, so
// merging shard-local aggregates in any fixed order reproduces the
// serial accumulation exactly — the property the sharded replay engine
// relies on for byte-identical results.
func (r *ResponseStats) Merge(o *ResponseStats) {
	r.count += o.count
	r.sum += o.sum
	if o.max > r.max {
		r.max = o.max
	}
	r.reads += o.reads
	r.readSum += o.readSum
	for i := range r.hist {
		r.hist[i] += o.hist[i]
	}
}

// Count returns the number of recorded I/Os.
func (r *ResponseStats) Count() int64 { return r.count }

// Reads returns the number of recorded read I/Os.
func (r *ResponseStats) Reads() int64 { return r.reads }

// Mean returns the mean response time over all I/Os.
func (r *ResponseStats) Mean() time.Duration {
	if r.count == 0 {
		return 0
	}
	return r.sum / time.Duration(r.count)
}

// ReadMean returns the mean response time over reads only; this is the
// "r" of the paper's derived-performance formulas.
func (r *ResponseStats) ReadMean() time.Duration {
	if r.reads == 0 {
		return 0
	}
	return r.readSum / time.Duration(r.reads)
}

// ReadSum returns the summed read response time (Σr).
func (r *ResponseStats) ReadSum() time.Duration { return r.readSum }

// Max returns the largest observed response time.
func (r *ResponseStats) Max() time.Duration { return r.max }

// Percentile returns an upper bound of the p-quantile (0 < p ≤ 1) from
// the logarithmic histogram.
func (r *ResponseStats) Percentile(p float64) time.Duration {
	if r.count == 0 {
		return 0
	}
	target := int64(math.Ceil(p * float64(r.count)))
	var seen int64
	limit := respBucketBase
	for b := 0; b < respBuckets; b++ {
		seen += r.hist[b]
		if seen >= target {
			if limit > r.max {
				return r.max
			}
			return limit
		}
		limit *= 2
	}
	return r.max
}

// String summarises the distribution.
func (r *ResponseStats) String() string {
	return fmt.Sprintf("n=%d mean=%v readMean=%v p99=%v max=%v",
		r.count, r.Mean(), r.ReadMean(), r.Percentile(0.99), r.max)
}

// DerivedThroughput computes the paper's derived transaction throughput
// t = t_orig × (r_orig / r): the measured transaction rate of the
// unmanaged run scaled by the read-response-time ratio. (§VII-A.5 prints
// the ratio inverted; throughput must fall as response time grows, so the
// dimensionally consistent form is used — see DESIGN.md.)
func DerivedThroughput(tOrig float64, rOrig, r time.Duration) float64 {
	if r <= 0 || rOrig <= 0 {
		return tOrig
	}
	return tOrig * float64(rOrig) / float64(r)
}

// DerivedQueryResponse computes the paper's derived query response time
// q = q_orig × (Σr / Σr_orig) over the read responses inside the query's
// execution window.
func DerivedQueryResponse(qOrig time.Duration, sumR, sumROrig time.Duration) time.Duration {
	if sumROrig <= 0 {
		return qOrig
	}
	return time.Duration(float64(qOrig) * float64(sumR) / float64(sumROrig))
}

// CurvePoint is one point of the cumulative I/O interval curve of
// Figs 17–19: the total length of enclosure-level I/O intervals at least
// MinLen long, summed over every enclosure.
type CurvePoint struct {
	MinLen     time.Duration
	Cumulative time.Duration
	Count      int64
}

// IntervalCurve computes the cumulative interval curve from the storage
// monitor's per-enclosure gap distributions.
func IntervalCurve(mon *monitor.StorageMonitor) []CurvePoint {
	pts := make([]CurvePoint, monitor.IntervalBuckets)
	min := time.Duration(0)
	next := 2 * time.Second
	for b := 0; b < monitor.IntervalBuckets; b++ {
		pts[b].MinLen = min
		min = next
		next *= 2
	}
	for e := 0; e < mon.Enclosures(); e++ {
		iv := mon.Intervals(e)
		for b := 0; b < monitor.IntervalBuckets; b++ {
			pts[b].Count += iv.Counts[b]
			pts[b].Cumulative += iv.Sums[b]
		}
	}
	// A gap in bucket b contributes to every point at or below b, so the
	// cumulative column is the suffix sum of the per-bucket totals.
	for b := monitor.IntervalBuckets - 2; b >= 0; b-- {
		pts[b].Cumulative += pts[b+1].Cumulative
	}
	return pts
}

// CumulativeAbove returns the summed length of enclosure I/O intervals of
// at least min, across all enclosures.
func CumulativeAbove(mon *monitor.StorageMonitor, min time.Duration) time.Duration {
	var total time.Duration
	for e := 0; e < mon.Enclosures(); e++ {
		total += mon.Intervals(e).CumulativeLongerThan(min)
	}
	return total
}
