package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"esm/internal/monitor"
	"esm/internal/trace"
)

func TestResponseStatsBasics(t *testing.T) {
	var r ResponseStats
	r.Add(trace.OpRead, 10*time.Millisecond)
	r.Add(trace.OpRead, 20*time.Millisecond)
	r.Add(trace.OpWrite, 30*time.Millisecond)
	if r.Count() != 3 || r.Reads() != 2 {
		t.Fatalf("counts %d/%d", r.Count(), r.Reads())
	}
	if r.Mean() != 20*time.Millisecond {
		t.Fatalf("mean %v", r.Mean())
	}
	if r.ReadMean() != 15*time.Millisecond {
		t.Fatalf("read mean %v", r.ReadMean())
	}
	if r.ReadSum() != 30*time.Millisecond {
		t.Fatalf("read sum %v", r.ReadSum())
	}
	if r.Max() != 30*time.Millisecond {
		t.Fatalf("max %v", r.Max())
	}
	if !strings.Contains(r.String(), "n=3") {
		t.Fatalf("string %q", r.String())
	}
}

func TestResponseStatsEmpty(t *testing.T) {
	var r ResponseStats
	if r.Mean() != 0 || r.ReadMean() != 0 || r.Percentile(0.99) != 0 {
		t.Fatal("empty stats not zero")
	}
}

// TestPercentileBounds: the histogram quantile is an upper bound of the
// true quantile and never exceeds the max.
func TestPercentileBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var r ResponseStats
		var samples []time.Duration
		n := 100 + rng.Intn(400)
		for i := 0; i < n; i++ {
			d := time.Duration(rng.Int63n(int64(5 * time.Second)))
			samples = append(samples, d)
			r.Add(trace.OpRead, d)
		}
		p99 := r.Percentile(0.99)
		if p99 > r.Max() {
			return false
		}
		// At least 99% of samples are at or below the reported bound.
		var below int
		for _, s := range samples {
			if s <= p99 {
				below++
			}
		}
		return float64(below) >= 0.99*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPercentileBucketBoundaries pins the histogram's bucket layout:
// bucket 0 is [0, 200µs), bucket i ≥ 1 is [200µs·2^(i-1), 200µs·2^i),
// and Percentile reports each bucket's upper bound (capped at the max).
func TestPercentileBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want time.Duration // upper bound of d's bucket
	}{
		{0, 200 * time.Microsecond},
		{199 * time.Microsecond, 200 * time.Microsecond},
		{200 * time.Microsecond, 400 * time.Microsecond}, // boundary lands in the next bucket
		{399 * time.Microsecond, 400 * time.Microsecond},
		{400 * time.Microsecond, 800 * time.Microsecond},
		{time.Millisecond, 1600 * time.Microsecond},
		{25 * time.Millisecond, 25600 * time.Microsecond},
	}
	for _, c := range cases {
		var r ResponseStats
		r.Add(trace.OpRead, c.d)
		// A second sample far above keeps the max from capping the bound.
		r.Add(trace.OpRead, time.Hour)
		if got := r.Percentile(0.5); got != c.want {
			t.Errorf("Percentile(0.5) after Add(%v) = %v, want %v", c.d, got, c.want)
		}
	}
	// With one sample the bound is capped at the observed max.
	var r ResponseStats
	r.Add(trace.OpRead, 150*time.Microsecond)
	if got := r.Percentile(0.99); got != 150*time.Microsecond {
		t.Errorf("capped percentile = %v, want 150µs", got)
	}
}

func TestDerivedThroughput(t *testing.T) {
	// Doubling the read response halves the derived throughput.
	got := DerivedThroughput(1859.5, 10*time.Millisecond, 20*time.Millisecond)
	if got < 929 || got > 930 {
		t.Fatalf("derived tpmC %v", got)
	}
	// Faster responses increase it.
	got = DerivedThroughput(1000, 20*time.Millisecond, 10*time.Millisecond)
	if got != 2000 {
		t.Fatalf("derived tpmC %v", got)
	}
	// Degenerate inputs return the baseline.
	if DerivedThroughput(5, 0, time.Millisecond) != 5 || DerivedThroughput(5, time.Millisecond, 0) != 5 {
		t.Fatal("degenerate handling")
	}
}

func TestDerivedQueryResponse(t *testing.T) {
	q := DerivedQueryResponse(10*time.Minute, 30*time.Second, 10*time.Second)
	if q != 30*time.Minute {
		t.Fatalf("derived q %v", q)
	}
	if DerivedQueryResponse(time.Minute, time.Second, 0) != time.Minute {
		t.Fatal("degenerate handling")
	}
}

func TestIntervalCurve(t *testing.T) {
	m := monitor.NewStorageMonitor(2)
	m.RecordPhysical(trace.PhysicalRecord{Time: 0, Enclosure: 0})
	m.RecordPhysical(trace.PhysicalRecord{Time: 10 * time.Minute, Enclosure: 0})
	m.RecordPhysical(trace.PhysicalRecord{Time: 0, Enclosure: 1})
	m.Finish(10 * time.Minute)
	pts := IntervalCurve(m)
	if len(pts) != monitor.IntervalBuckets {
		t.Fatalf("curve has %d points", len(pts))
	}
	// Cumulative must be non-increasing in the threshold.
	for i := 1; i < len(pts); i++ {
		if pts[i].Cumulative > pts[i-1].Cumulative {
			t.Fatalf("curve not monotone at %d", i)
		}
		if pts[i].MinLen <= pts[i-1].MinLen {
			t.Fatalf("thresholds not increasing at %d", i)
		}
	}
	// Total gap length: enclosure 0 has one 10-minute gap, enclosure 1 a
	// 10-minute tail gap.
	if got := CumulativeAbove(m, 52*time.Second); got != 20*time.Minute {
		t.Fatalf("cumulative above break-even %v", got)
	}
	if got := CumulativeAbove(m, time.Hour); got != 0 {
		t.Fatalf("cumulative above 1h = %v", got)
	}
}

// naiveIntervalCurve is the reference quadratic accumulation the
// suffix-sum implementation must match bucket for bucket.
func naiveIntervalCurve(mon *monitor.StorageMonitor) []CurvePoint {
	pts := make([]CurvePoint, monitor.IntervalBuckets)
	min := time.Duration(0)
	next := 2 * time.Second
	for b := 0; b < monitor.IntervalBuckets; b++ {
		pts[b].MinLen = min
		min = next
		next *= 2
	}
	for e := 0; e < mon.Enclosures(); e++ {
		iv := mon.Intervals(e)
		for b := 0; b < monitor.IntervalBuckets; b++ {
			pts[b].Count += iv.Counts[b]
			for j := 0; j <= b; j++ {
				pts[j].Cumulative += iv.Sums[b]
			}
		}
	}
	return pts
}

func TestIntervalCurveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := monitor.NewStorageMonitor(4)
	var now [4]time.Duration
	for i := 0; i < 2000; i++ {
		e := rng.Intn(4)
		// Gaps from sub-second to hours, exercising every bucket.
		now[e] += time.Duration(rng.Int63n(int64(4 * time.Hour)))
		m.RecordPhysical(trace.PhysicalRecord{Time: now[e], Enclosure: int32(e)})
	}
	var end time.Duration
	for _, n := range now {
		if n > end {
			end = n
		}
	}
	m.Finish(end)

	got := IntervalCurve(m)
	want := naiveIntervalCurve(m)
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for b := range got {
		if got[b] != want[b] {
			t.Fatalf("bucket %d: %+v, want %+v", b, got[b], want[b])
		}
	}
}
