// Package ddr implements the Dynamic Data Reorganization baseline
// (Otoo, Rotem & Tsao, "Dynamic Data Reorganization for Energy Savings",
// SSDBM 2010), the physical-I/O-behaviour comparison target of the
// paper's evaluation (§VII-A.1).
//
// DDR watches per-enclosure physical IOPS continuously. An enclosure
// whose recent IOPS falls below LowTH (half of TargetTH) is cold: it may
// spin down, and when a physical block on it is accessed anyway, DDR
// promotes that block's extent to a hot enclosure — one whose IOPS sits
// between LowTH and TargetTH — so the cold enclosure can return to sleep.
// DDR never sees application-level behaviour: it cannot tell a one-off
// scan from a hot working set, which is why the paper finds it either
// does nothing (TPC-C, where every enclosure exceeds LowTH) or pays heavy
// spin-up penalties (TPC-H).
package ddr

import (
	"time"

	"esm/internal/policy"
	"esm/internal/simclock"
	"esm/internal/storage"
	"esm/internal/trace"
)

// Config parameterises DDR.
type Config struct {
	// TargetTH is the IOPS an enclosure may serve while still meeting the
	// application's throughput requirement (Table II: 450).
	TargetTH float64
	// LowTH is the IOPS below which an enclosure is considered cold.
	// Table II uses half of TargetTH.
	LowTH float64
	// Window is the sliding window over which per-enclosure IOPS is
	// measured.
	Window time.Duration
	// Tick is the (re)classification interval.
	Tick time.Duration
}

// DefaultConfig returns the Table II parameterisation.
func DefaultConfig() Config {
	return Config{
		TargetTH: 450,
		LowTH:    225,
		Window:   5 * time.Second,
		Tick:     200 * time.Millisecond,
	}
}

// DDR is the Dynamic Data Reorganization policy.
type DDR struct {
	cfg Config
	ctx *policy.Context

	// Per-enclosure I/O counts in one-second ring buckets, for the
	// sliding-window IOPS estimate.
	buckets  [][]int64
	curSec   []int64
	cold     []bool
	promoted map[storage.ExtentRef]bool

	inPromotion    bool
	determinations int64
	wake           *simclock.Event
}

// New returns a DDR instance.
func New(cfg Config) *DDR {
	def := DefaultConfig()
	if cfg.TargetTH <= 0 {
		cfg.TargetTH = def.TargetTH
	}
	if cfg.LowTH <= 0 {
		cfg.LowTH = cfg.TargetTH / 2
	}
	if cfg.Window <= 0 {
		cfg.Window = def.Window
	}
	if cfg.Tick <= 0 {
		cfg.Tick = def.Tick
	}
	return &DDR{cfg: cfg}
}

// Name implements policy.Policy.
func (d *DDR) Name() string { return "ddr" }

// Init implements policy.Policy.
func (d *DDR) Init(ctx *policy.Context) {
	d.ctx = ctx
	n := ctx.Array.Enclosures()
	win := int(d.cfg.Window/time.Second) + 1
	d.buckets = make([][]int64, n)
	for i := range d.buckets {
		d.buckets[i] = make([]int64, win)
	}
	d.curSec = make([]int64, n)
	d.cold = make([]bool, n)
	d.promoted = make(map[storage.ExtentRef]bool)
	// Until the first classification everything counts as hot.
	for e := 0; e < n; e++ {
		ctx.Array.SetSpinDownEnabled(e, false)
	}
	d.schedule()
}

func (d *DDR) schedule() {
	at := d.ctx.Clock.Now() + d.cfg.Tick
	if at > d.ctx.End {
		return
	}
	d.wake = d.ctx.Queue.Schedule(at, d.tick)
}

// advance rolls enclosure e's ring forward to sec, zeroing the buckets of
// the seconds that passed without I/O.
func (d *DDR) advance(e int, sec int64) {
	win := int64(len(d.buckets[e]))
	if sec <= d.curSec[e] {
		return
	}
	gap := sec - d.curSec[e]
	if gap > win {
		gap = win
	}
	for i := int64(1); i <= gap; i++ {
		d.buckets[e][(d.curSec[e]+i)%win] = 0
	}
	d.curSec[e] = sec
}

// iops returns the sliding-window IOPS estimate of enclosure e at sec.
func (d *DDR) iops(e int, sec int64) float64 {
	d.advance(e, sec)
	var sum int64
	for _, n := range d.buckets[e] {
		sum += n
	}
	return float64(sum) / d.cfg.Window.Seconds()
}

// record counts one physical I/O on enclosure e at time t.
func (d *DDR) record(e int, t time.Duration) {
	sec := int64(t / time.Second)
	d.advance(e, sec)
	d.buckets[e][sec%int64(len(d.buckets[e]))]++
}

// OnLogical implements policy.Policy: DDR is application-blind.
func (d *DDR) OnLogical(trace.LogicalRecord) {}

// OnPhysical implements policy.Policy: every physical I/O feeds the IOPS
// window, and an access landing on a cold enclosure triggers extent
// promotion.
func (d *DDR) OnPhysical(rec trace.PhysicalRecord) {
	e := int(rec.Enclosure)
	d.record(e, rec.Time)
	if d.inPromotion || !d.cold[e] {
		return
	}
	d.promote(rec)
}

// promote migrates the accessed extent from its cold enclosure to a hot
// one with IOPS head-room, so the cold enclosure can go back to sleep.
func (d *DDR) promote(rec trace.PhysicalRecord) {
	arr := d.ctx.Array
	ref, ok := arr.ResolveExtent(int(rec.Enclosure), rec.Block)
	if !ok || d.promoted[ref] {
		return
	}
	sec := int64(rec.Time / time.Second)
	// Target: the busiest non-cold enclosure still below TargetTH.
	dst, best := -1, -1.0
	for e := 0; e < arr.Enclosures(); e++ {
		if e == int(rec.Enclosure) || d.cold[e] {
			continue
		}
		r := d.iops(e, sec)
		if r >= d.cfg.TargetTH {
			continue
		}
		if r > best {
			best, dst = r, e
		}
	}
	if dst < 0 {
		return
	}
	d.inPromotion = true
	err := arr.MigrateExtent(ref, dst)
	d.inPromotion = false
	d.determinations++
	if err == nil {
		d.promoted[ref] = true
	}
}

// OnPower implements policy.Policy.
func (d *DDR) OnPower(int, time.Duration, bool) {}

// tick is the periodic hot/cold classification: one data placement
// determination per enclosure that saw I/O in the window, which is the
// determination-count behaviour §VII-D reports (tens of thousands of
// determinations for DDR against single digits for the proposed method).
func (d *DDR) tick(now time.Duration) {
	if now < d.cfg.Window {
		// The sliding window has not observed a full span yet; classifying
		// on a partial window would mark busy enclosures cold at startup.
		d.schedule()
		return
	}
	arr := d.ctx.Array
	sec := int64(now / time.Second)
	active := false
	for e := 0; e < arr.Enclosures(); e++ {
		r := d.iops(e, sec)
		if r > 0 {
			active = true
		}
		cold := r < d.cfg.LowTH
		if cold != d.cold[e] {
			d.cold[e] = cold
			arr.SetSpinDownEnabled(e, cold)
		}
	}
	if active {
		d.determinations++
	}
	d.schedule()
}

// Finish implements policy.Policy.
func (d *DDR) Finish(time.Duration) {}

// Determinations implements policy.Policy.
func (d *DDR) Determinations() int64 { return d.determinations }
