package ddr

import (
	"testing"
	"time"

	"esm/internal/policy"
	"esm/internal/simclock"
	"esm/internal/storage"
	"esm/internal/trace"
)

func buildRun(t *testing.T, cfg Config, n int, sizes []int64, locs []int) (*DDR, *storage.Array, *policy.Context, []trace.ItemID) {
	t.Helper()
	cat := trace.NewCatalog()
	ids := make([]trace.ItemID, len(sizes))
	for i, s := range sizes {
		ids[i] = cat.Add("it"+string(rune('A'+i)), s)
	}
	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := storage.New(storage.DefaultConfig(n), clk, evq, cat)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if err := arr.Place(id, locs[i]); err != nil {
			t.Fatal(err)
		}
	}
	d := New(cfg)
	ctx := &policy.Context{Array: arr, Catalog: cat, Clock: clk, Queue: evq, End: 2 * time.Hour}
	arr.SetPhysicalObserver(func(rec trace.PhysicalRecord) { d.OnPhysical(rec) })
	d.Init(ctx)
	return d, arr, ctx, ids
}

func TestDDRDefaults(t *testing.T) {
	d := New(Config{})
	if d.cfg.TargetTH != 450 || d.cfg.LowTH != 225 {
		t.Fatalf("Table II defaults not applied: %+v", d.cfg)
	}
	if d.Name() != "ddr" {
		t.Fatalf("name %q", d.Name())
	}
	d2 := New(Config{TargetTH: 100})
	if d2.cfg.LowTH != 50 {
		t.Fatalf("LowTH should default to TargetTH/2, got %v", d2.cfg.LowTH)
	}
}

// feedIOPS submits physical traffic at the given rate via the array.
func feedIOPS(arr *storage.Array, ctx *policy.Context, item trace.ItemID, rate float64, from, to time.Duration) {
	gap := time.Duration(float64(time.Second) / rate)
	for tm := from; tm < to; tm += gap {
		ctx.Queue.RunUntil(ctx.Clock, tm)
		arr.Submit(trace.LogicalRecord{Time: tm, Item: item, Offset: int64(tm) % (1 << 25), Size: 8 << 10, Op: trace.OpWrite})
	}
}

func TestDDRBusyEnclosureStaysHot(t *testing.T) {
	d, arr, ctx, ids := buildRun(t, DefaultConfig(), 2, []int64{1 << 30}, []int{0})
	feedIOPS(arr, ctx, ids[0], 400, 0, 30*time.Second)
	if arr.SpinDownEnabled(0) {
		t.Fatal("enclosure at 400 IOPS (> LowTH) marked cold")
	}
	if d.Determinations() == 0 {
		t.Fatal("no classification ticks ran")
	}
}

func TestDDRIdleEnclosureGoesColdAfterWindow(t *testing.T) {
	_, arr, ctx, ids := buildRun(t, DefaultConfig(), 2, []int64{1 << 30}, []int{0})
	feedIOPS(arr, ctx, ids[0], 400, 0, 10*time.Second)
	// Silence; after the sliding window drains the enclosure is cold.
	ctx.Queue.RunUntil(ctx.Clock, time.Minute)
	if !arr.SpinDownEnabled(0) {
		t.Fatal("idle enclosure not marked cold")
	}
	if !arr.SpinDownEnabled(1) {
		t.Fatal("never-touched enclosure not marked cold")
	}
}

func TestDDRNoClassificationDuringWarmup(t *testing.T) {
	_, arr, ctx, _ := buildRun(t, DefaultConfig(), 2, []int64{1 << 30}, []int{0})
	ctx.Queue.RunUntil(ctx.Clock, 2*time.Second) // < Window
	if arr.SpinDownEnabled(0) || arr.SpinDownEnabled(1) {
		t.Fatal("enclosures classified cold during window warm-up")
	}
}

func TestDDRPromotesAccessedColdExtent(t *testing.T) {
	cfg := DefaultConfig()
	d, arr, ctx, ids := buildRun(t, cfg, 2,
		[]int64{1 << 30, 256 << 20},
		[]int{0, 1})
	// Enclosure 0 busy (hot), enclosure 1 idle (cold).
	feedIOPS(arr, ctx, ids[0], 400, 0, 20*time.Second)
	ctx.Queue.RunUntil(ctx.Clock, 21*time.Second)
	// An access to the cold enclosure's item triggers promotion.
	before := arr.Stats().MigratedBytes
	arr.Submit(trace.LogicalRecord{Time: 21 * time.Second, Item: ids[1], Offset: 0, Size: 8 << 10, Op: trace.OpRead})
	if arr.Stats().MigratedBytes <= before {
		t.Fatal("no extent promoted on cold access")
	}
	// The extent now serves from the hot enclosure.
	r, _ := arr.Submit(trace.LogicalRecord{Time: 22 * time.Second, Item: ids[1], Offset: 4 << 10, Size: 8 << 10, Op: trace.OpWrite})
	if r.Enclosure != 0 {
		t.Fatalf("promoted extent served by enclosure %d", r.Enclosure)
	}
	_ = d
}

func TestDDRNoPromotionWithoutHotTarget(t *testing.T) {
	_, arr, ctx, ids := buildRun(t, DefaultConfig(), 2,
		[]int64{1 << 30, 256 << 20}, []int{0, 1})
	// Everything idle: all cold, nowhere to promote to.
	ctx.Queue.RunUntil(ctx.Clock, time.Minute)
	arr.Submit(trace.LogicalRecord{Time: time.Minute, Item: ids[1], Size: 8 << 10, Op: trace.OpRead})
	if arr.Stats().MigratedBytes != 0 {
		t.Fatal("promotion happened with every enclosure cold")
	}
}

func TestDDRPromotesExtentOnlyOnce(t *testing.T) {
	cfg := DefaultConfig()
	d, arr, ctx, ids := buildRun(t, cfg, 2,
		[]int64{1 << 30, 256 << 20}, []int{0, 1})
	feedIOPS(arr, ctx, ids[0], 400, 0, 20*time.Second)
	ctx.Queue.RunUntil(ctx.Clock, 21*time.Second)
	arr.Submit(trace.LogicalRecord{Time: 21 * time.Second, Item: ids[1], Offset: 0, Size: 8 << 10, Op: trace.OpRead})
	after := arr.Stats().MigratedBytes
	// Keep the source cold-classified but access the same extent again:
	// it is already remapped, so no further copy.
	arr.Submit(trace.LogicalRecord{Time: 22 * time.Second, Item: ids[1], Offset: 8 << 10, Size: 8 << 10, Op: trace.OpRead})
	if arr.Stats().MigratedBytes != after {
		t.Fatal("extent promoted twice")
	}
	_ = d
}
