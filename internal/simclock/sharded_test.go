package simclock

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestShardedQueueLanesAreFIFO(t *testing.T) {
	const shards = 4
	sq := NewShardedQueue(shards)
	defer sq.Close()

	var got [shards][]int
	for round := 0; round < 100; round++ {
		for s := 0; s < shards; s++ {
			s, round := s, round
			sq.Dispatch(s, func(clk *Clock) {
				clk.Advance(time.Duration(round) * time.Millisecond)
				got[s] = append(got[s], round)
			})
		}
	}
	sq.Barrier()
	for s := 0; s < shards; s++ {
		if len(got[s]) != 100 {
			t.Fatalf("shard %d ran %d of 100 items", s, len(got[s]))
		}
		for i, v := range got[s] {
			if v != i {
				t.Fatalf("shard %d executed out of order: item %d at position %d", s, v, i)
			}
		}
		if now := sq.Clock(s).Now(); now != 99*time.Millisecond {
			t.Fatalf("shard %d clock = %v, want 99ms", s, now)
		}
	}
}

func TestShardedQueueBarrierWaitsForAllLanes(t *testing.T) {
	sq := NewShardedQueue(3)
	defer sq.Close()

	var done atomic.Int32
	for i := 0; i < 3; i++ {
		sq.Dispatch(i, func(clk *Clock) {
			time.Sleep(5 * time.Millisecond)
			done.Add(1)
		})
	}
	sq.Barrier()
	if n := done.Load(); n != 3 {
		t.Fatalf("barrier returned with %d of 3 items done", n)
	}
}

func TestShardedQueueAdvanceAll(t *testing.T) {
	sq := NewShardedQueue(2)
	defer sq.Close()

	sq.Dispatch(0, func(clk *Clock) { clk.Advance(3 * time.Second) })
	sq.Barrier()
	sq.AdvanceAll(10 * time.Second)
	for s := 0; s < 2; s++ {
		if now := sq.Clock(s).Now(); now != 10*time.Second {
			t.Fatalf("shard %d clock = %v after AdvanceAll(10s)", s, now)
		}
	}
}

// TestMailboxDrainOrder pins the deterministic drain order: (At, Seq,
// Shard), with posting order preserved inside a tie.
func TestMailboxDrainOrder(t *testing.T) {
	mb := NewMailbox(3)
	var got []string
	post := func(shard int, at time.Duration, seq uint64, label string) {
		mb.Post(shard, Message{At: at, Seq: seq, Fire: func() { got = append(got, label) }})
	}
	// Posted deliberately out of global order, across shards.
	post(2, 2*time.Second, 7, "t2-s7-sh2")
	post(2, time.Second, 3, "t1-s3-sh2/a")
	post(2, time.Second, 3, "t1-s3-sh2/b") // same key: posting order holds
	post(0, time.Second, 3, "t1-s3-sh0")   // same (At,Seq): lower shard first
	post(1, time.Second, 2, "t1-s2-sh1")
	post(-1, time.Second, 2, "t1-s2-conductor") // conductor slot sorts before shard 0… no: shard -1
	post(0, 500*time.Millisecond, 9, "t0.5-s9-sh0")

	mb.Drain()
	want := []string{
		"t0.5-s9-sh0",
		"t1-s2-conductor", // shard -1 ties before shard 1 at (1s, seq 2)
		"t1-s2-sh1",
		"t1-s3-sh0",
		"t1-s3-sh2/a",
		"t1-s3-sh2/b",
		"t2-s7-sh2",
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d messages, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
	if mb.Pending() {
		t.Fatal("mailbox still pending after drain")
	}
	// A second drain is a no-op.
	mb.Drain()
	if len(got) != len(want) {
		t.Fatal("second drain re-fired messages")
	}
}

// TestEventQueueRecyclesEvents verifies the free-pool actually bounds
// allocation: scheduling and dispatching in steady state must reuse
// Event structs instead of allocating one per Schedule.
func TestEventQueueRecyclesEvents(t *testing.T) {
	var q EventQueue
	var clk Clock
	// Prime: one event in flight, dispatched, released.
	fired := 0
	q.Schedule(time.Second, func(now time.Duration) { fired++ })
	q.RunUntil(&clk, time.Second)

	fire := func(now time.Duration) { fired++ } // hoisted: one closure for all runs
	allocs := testing.AllocsPerRun(1000, func() {
		at := clk.Now() + time.Millisecond
		q.Schedule(at, fire)
		q.RunUntil(&clk, at)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Schedule+RunUntil allocates %.1f/op, want 0", allocs)
	}
	if fired < 1000 {
		t.Fatalf("fired %d events", fired)
	}
}

// TestEventQueueCancelAfterPooling: cancelling a pending event still
// works with the free pool in place, and the cancelled Event is not
// recycled (it was never dispatched).
func TestEventQueueCancelAfterPooling(t *testing.T) {
	var q EventQueue
	var clk Clock
	ran := false
	e := q.Schedule(time.Second, func(time.Duration) { ran = true })
	q.Cancel(e)
	q.RunUntil(&clk, 2*time.Second)
	if ran {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
}
