package simclock

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(5 * time.Second)
	if c.Now() != 5*time.Second {
		t.Fatalf("clock at %v, want 5s", c.Now())
	}
	c.Advance(5 * time.Second) // same time is allowed
	if c.Now() != 5*time.Second {
		t.Fatalf("clock at %v after no-op advance", c.Now())
	}
}

func TestClockPanicsOnBackwards(t *testing.T) {
	var c Clock
	c.Advance(10 * time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backwards advance")
		}
	}()
	c.Advance(9 * time.Second)
}

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	var got []int
	q.Schedule(3*time.Second, func(time.Duration) { got = append(got, 3) })
	q.Schedule(1*time.Second, func(time.Duration) { got = append(got, 1) })
	q.Schedule(2*time.Second, func(time.Duration) { got = append(got, 2) })
	var c Clock
	q.RunUntil(&c, 10*time.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired in order %v", got)
	}
	if c.Now() != 10*time.Second {
		t.Fatalf("clock at %v, want 10s", c.Now())
	}
}

func TestEventQueueFIFOAtEqualTimes(t *testing.T) {
	var q EventQueue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(time.Second, func(time.Duration) { got = append(got, i) })
	}
	var c Clock
	q.RunUntil(&c, time.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events out of insertion order: %v", got)
		}
	}
}

func TestEventQueueCancel(t *testing.T) {
	var q EventQueue
	fired := false
	e := q.Schedule(time.Second, func(time.Duration) { fired = true })
	q.Cancel(e)
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	var c Clock
	q.RunUntil(&c, 2*time.Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
	q.Cancel(e) // double cancel is a no-op
	q.Cancel(nil)
}

func TestEventQueueRunUntilLimit(t *testing.T) {
	var q EventQueue
	fired := 0
	q.Schedule(1*time.Second, func(time.Duration) { fired++ })
	q.Schedule(5*time.Second, func(time.Duration) { fired++ })
	var c Clock
	q.RunUntil(&c, 3*time.Second)
	if fired != 1 {
		t.Fatalf("fired %d events before limit, want 1", fired)
	}
	if q.Len() != 1 {
		t.Fatalf("queue holds %d events, want 1", q.Len())
	}
	at, ok := q.PeekTime()
	if !ok || at != 5*time.Second {
		t.Fatalf("peek = %v,%v", at, ok)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	var q EventQueue
	var got []time.Duration
	q.Schedule(time.Second, func(now time.Duration) {
		got = append(got, now)
		q.Schedule(now+time.Second, func(now time.Duration) {
			got = append(got, now)
		})
	})
	var c Clock
	q.RunUntil(&c, 5*time.Second)
	if len(got) != 2 || got[0] != time.Second || got[1] != 2*time.Second {
		t.Fatalf("chained events fired at %v", got)
	}
}

func TestEventQueuePopEmpty(t *testing.T) {
	var q EventQueue
	if q.Pop() != nil {
		t.Fatal("pop on empty queue should return nil")
	}
	if _, ok := q.PeekTime(); ok {
		t.Fatal("peek on empty queue should report !ok")
	}
}

// TestEventQueueRandomizedOrdering checks, with random schedules and
// cancellations, that dispatch order is always non-decreasing in time.
func TestEventQueueRandomizedOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q EventQueue
		var c Clock
		var fireTimes []time.Duration
		var events []*Event
		n := 50 + rng.Intn(100)
		for i := 0; i < n; i++ {
			at := time.Duration(rng.Int63n(int64(time.Minute)))
			events = append(events, q.Schedule(at, func(now time.Duration) {
				fireTimes = append(fireTimes, now)
			}))
		}
		for _, e := range events {
			if rng.Float64() < 0.3 {
				q.Cancel(e)
			}
		}
		q.RunUntil(&c, time.Minute)
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
