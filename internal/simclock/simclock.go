// Package simclock provides the virtual-time core used by the storage
// simulator and the trace replay engine.
//
// All simulated components share a single Clock. Time is expressed as a
// time.Duration offset from the start of the simulation; nothing in the
// simulator ever sleeps on the wall clock, so a six-hour workload replays
// as fast as events can be processed.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a monotonically advancing virtual clock.
//
// The zero value is ready to use and starts at time zero.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward to t. Advance panics if t is earlier than
// the current time: simulated time never flows backwards, and a violation
// indicates a scheduling bug rather than a recoverable condition.
func (c *Clock) Advance(t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("simclock: time moved backwards: %v -> %v", c.now, t))
	}
	c.now = t
}

// Event is a scheduled callback in an EventQueue.
type Event struct {
	// At is the virtual time the event fires.
	At time.Duration
	// Fire is invoked when the event is dispatched. It must not be nil.
	Fire func(now time.Duration)

	seq   uint64 // tie-break: FIFO among equal timestamps
	index int    // heap index; -1 once popped or cancelled
}

// Cancelled reports whether the event has been removed from its queue
// (either dispatched or cancelled).
func (e *Event) Cancelled() bool { return e.index < 0 }

// EventQueue is a time-ordered queue of events. Events with equal
// timestamps are dispatched in insertion order, which keeps the simulation
// deterministic.
//
// The zero value is ready to use.
type EventQueue struct {
	h      eventHeap
	nextSq uint64
	// free holds dispatched Event structs for reuse, so steady-state
	// scheduling (power samples, migration chunks, policy wakes) does not
	// allocate. Its length is bounded by the peak number of pending
	// events, not by the number of events ever scheduled.
	free []*Event
}

// Schedule enqueues fire to run at time at and returns the event handle,
// which may be passed to Cancel. The handle is valid until the event
// fires: once Fire has been invoked the queue may reuse the Event for a
// later Schedule, so holders must drop (or nil out) their handle from
// inside Fire — as every repo policy does — rather than Cancel it later.
func (q *EventQueue) Schedule(at time.Duration, fire func(now time.Duration)) *Event {
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		e.At, e.Fire = at, fire
		e.seq = q.nextSq
	} else {
		e = &Event{At: at, Fire: fire, seq: q.nextSq}
	}
	q.nextSq++
	heap.Push(&q.h, e)
	return e
}

// Release returns a dispatched event's storage to the queue's free pool.
// Only events already popped and fired may be released; releasing a
// pending event corrupts the heap. RunUntil releases the events it
// dispatches itself.
func (q *EventQueue) Release(e *Event) {
	e.Fire = nil
	q.free = append(q.free, e)
}

// Cancel removes e from the queue if it is still pending. Cancelling an
// already-dispatched or already-cancelled event is a no-op.
func (q *EventQueue) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&q.h, e.index)
	e.index = -1
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// PeekTime returns the timestamp of the earliest pending event. The second
// return value is false when the queue is empty.
func (q *EventQueue) PeekTime() (time.Duration, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// Pop removes and returns the earliest pending event, or nil when empty.
// The caller is responsible for advancing the clock and invoking Fire.
func (q *EventQueue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	e := heap.Pop(&q.h).(*Event)
	e.index = -1
	return e
}

// RunUntil dispatches every event with At <= limit, advancing clk as it
// goes, and finally advances clk to limit. Events scheduled by fired events
// are dispatched too as long as they fall within the limit.
func (q *EventQueue) RunUntil(clk *Clock, limit time.Duration) {
	for {
		at, ok := q.PeekTime()
		if !ok || at > limit {
			break
		}
		e := q.Pop()
		// Events may have been scheduled "in the past" relative to other
		// pending events but never before the clock; Advance enforces that.
		clk.Advance(e.At)
		e.Fire(e.At)
		q.Release(e)
	}
	clk.Advance(limit)
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
