// Sharded virtual time: per-shard clocks and work lanes under a
// conservative barrier protocol.
//
// A ShardedQueue runs N shards, each with its own Clock and a FIFO work
// lane served by one worker goroutine. A single conductor goroutine owns
// the global timeline: it dispatches causally independent work (batches
// of I/O bound for one shard's enclosures) onto the lanes and calls
// Barrier before anything that could couple shards — cache state shared
// across enclosure groups, migrations between shards, policy
// determinations, sampling. Between barriers a lane's work items execute
// in dispatch order on the lane's own clock, so each shard replays its
// slice of the timeline exactly as the serial engine would, and the
// barrier re-establishes one global time.
//
// Determinism falls out of three rules: (1) the conductor dispatches in
// global record order, (2) each lane is FIFO, and (3) everything a worker
// wants to say to the world goes into the Mailbox, which the conductor
// drains at the barrier in a deterministic (time, seq, shard) order. No
// worker ever touches another shard's state or any global state.
package simclock

import (
	"sort"
	"sync"
	"time"
)

// ShardedQueue fans work out to per-shard worker lanes. The conductor
// (the goroutine that built the queue) is the only legal caller of
// Dispatch, Barrier and Close; workers only execute the dispatched
// functions.
type ShardedQueue struct {
	lanes []*lane
}

// lane is one shard's worker: a FIFO channel, a private clock and a
// pending-work counter the conductor waits on at barriers.
type lane struct {
	clk Clock
	ch  chan func(clk *Clock)
	// wg counts dispatched-but-unfinished work items. Only the conductor
	// Adds and Waits, only the worker Dones, so Add can never race Wait.
	wg   sync.WaitGroup
	done chan struct{}
}

// laneBuffer is the lane channel depth: deep enough that the conductor
// rarely blocks behind a slow shard, small enough to bound the work
// in flight.
const laneBuffer = 256

// NewShardedQueue starts n worker lanes. n must be at least 1.
func NewShardedQueue(n int) *ShardedQueue {
	s := &ShardedQueue{lanes: make([]*lane, n)}
	for i := range s.lanes {
		l := &lane{
			ch:   make(chan func(clk *Clock), laneBuffer),
			done: make(chan struct{}),
		}
		s.lanes[i] = l
		go func() {
			defer close(l.done)
			for fn := range l.ch {
				fn(&l.clk)
				l.wg.Done()
			}
		}()
	}
	return s
}

// Shards returns the number of lanes.
func (s *ShardedQueue) Shards() int { return len(s.lanes) }

// Dispatch enqueues fn on shard i's lane. fn runs on the lane's worker
// with the lane clock; it must confine itself to shard-local state and
// the Mailbox. Dispatch blocks when the lane buffer is full
// (backpressure from a skewed shard).
func (s *ShardedQueue) Dispatch(i int, fn func(clk *Clock)) {
	l := s.lanes[i]
	l.wg.Add(1)
	l.ch <- fn
}

// BarrierShard blocks until shard i's lane has executed everything
// dispatched to it.
func (s *ShardedQueue) BarrierShard(i int) { s.lanes[i].wg.Wait() }

// Barrier blocks until every lane has drained: the conservative
// synchronization point before any cross-shard interaction.
func (s *ShardedQueue) Barrier() {
	for _, l := range s.lanes {
		l.wg.Wait()
	}
}

// AdvanceAll moves every lane clock forward to the global time t. Call
// it only at a barrier; it panics (via Clock.Advance) if any lane ran
// past t, which would mean work was dispatched beyond the barrier time.
func (s *ShardedQueue) AdvanceAll(t time.Duration) {
	for _, l := range s.lanes {
		if l.clk.Now() < t {
			l.clk.Advance(t)
		}
	}
}

// Clock returns shard i's clock. Outside a Dispatch callback it may only
// be read at a barrier.
func (s *ShardedQueue) Clock(i int) *Clock { return &s.lanes[i].clk }

// Close drains and stops every worker. The queue is unusable afterwards.
func (s *ShardedQueue) Close() {
	for _, l := range s.lanes {
		l.wg.Wait()
		close(l.ch)
	}
	for _, l := range s.lanes {
		<-l.done
	}
}

// Message is one cross-shard mailbox entry: a deferred effect (typically
// a telemetry emission) produced on a shard between barriers, to be
// replayed on the conductor in global order.
type Message struct {
	// At is the simulated time the effect belongs to.
	At time.Duration
	// Seq is the global sequence number of the originating operation,
	// assigned by the conductor at dispatch. Messages about the same
	// operation share its Seq and stay in posting order.
	Seq uint64
	// Shard is the posting shard, the final tie-break for messages that
	// carry no operation Seq.
	Shard int
	// Fire applies the effect; it runs on the conductor at the drain.
	Fire func()
}

// Mailbox buffers cross-shard messages between barriers. Each shard
// posts only to its own slot, so posting is lock- and coordination-free;
// the conductor drains at the barrier, merging all slots into the
// deterministic (At, Seq, Shard, posting order) sequence. The conductor
// may also post (conventionally as shard -1, stored in slot 0's
// neighbour list) so its own effects interleave correctly with shard
// messages carrying neighbouring Seqs.
type Mailbox struct {
	slots [][]Message
}

// NewMailbox builds a mailbox with one slot per shard plus one conductor
// slot.
func NewMailbox(shards int) *Mailbox {
	return &Mailbox{slots: make([][]Message, shards+1)}
}

// Post appends msg to shard's slot. shard -1 is the conductor's slot.
// Workers must pass their own shard index; the conductor may pass -1.
func (m *Mailbox) Post(shard int, msg Message) {
	msg.Shard = shard
	m.slots[shard+1] = append(m.slots[shard+1], msg)
}

// Pending reports whether any message is buffered.
func (m *Mailbox) Pending() bool {
	for _, s := range m.slots {
		if len(s) > 0 {
			return true
		}
	}
	return false
}

// Drain merges every slot into (At, Seq, Shard, posting-order) order,
// runs each message's Fire on the calling goroutine, and clears the
// mailbox. Call it only at a barrier.
func (m *Mailbox) Drain() {
	var n int
	for _, s := range m.slots {
		n += len(s)
	}
	if n == 0 {
		return
	}
	all := make([]Message, 0, n)
	for _, s := range m.slots {
		all = append(all, s...)
	}
	// SliceStable keeps posting order within (At, Seq, Shard): a worker
	// posts a single operation's messages in their serial emission order.
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		if all[i].Seq != all[j].Seq {
			return all[i].Seq < all[j].Seq
		}
		return all[i].Shard < all[j].Shard
	})
	for i := range m.slots {
		m.slots[i] = m.slots[i][:0]
	}
	for i := range all {
		all[i].Fire()
	}
}
