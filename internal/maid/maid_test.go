package maid

import (
	"testing"
	"time"

	"esm/internal/policy"
	"esm/internal/simclock"
	"esm/internal/storage"
	"esm/internal/trace"
)

func buildRun(t *testing.T, cfg Config, n int, sizes []int64, locs []int) (*MAID, *storage.Array, *policy.Context, []trace.ItemID) {
	t.Helper()
	cat := trace.NewCatalog()
	ids := make([]trace.ItemID, len(sizes))
	for i, s := range sizes {
		ids[i] = cat.Add("it"+string(rune('A'+i)), s)
	}
	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := storage.New(storage.DefaultConfig(n), clk, evq, cat)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if err := arr.Place(id, locs[i]); err != nil {
			t.Fatal(err)
		}
	}
	m := New(cfg)
	ctx := &policy.Context{Array: arr, Catalog: cat, Clock: clk, Queue: evq, End: time.Hour}
	arr.SetPhysicalObserver(func(rec trace.PhysicalRecord) { m.OnPhysical(rec) })
	m.Init(ctx)
	return m, arr, ctx, ids
}

func TestMAIDDefaults(t *testing.T) {
	m := New(Config{})
	if m.cfg.CacheEnclosures != 1 || m.cfg.CacheFillFraction != 0.9 {
		t.Fatalf("defaults %+v", m.cfg)
	}
	if m.Name() != "maid" {
		t.Fatalf("name %q", m.Name())
	}
}

func TestMAIDCacheTierStaysOnPassiveSleeps(t *testing.T) {
	_, arr, ctx, _ := buildRun(t, DefaultConfig(), 3, []int64{1 << 20}, []int{1})
	if arr.SpinDownEnabled(0) {
		t.Fatal("cache enclosure may spin down")
	}
	if !arr.SpinDownEnabled(1) || !arr.SpinDownEnabled(2) {
		t.Fatal("passive enclosures cannot spin down")
	}
	ctx.Queue.RunUntil(ctx.Clock, 10*time.Minute)
	arr.Finish()
	if !arr.EnclosureOn(0, ctx.Clock.Now()) {
		t.Fatal("cache enclosure powered off")
	}
	if arr.EnclosureOn(1, ctx.Clock.Now()) {
		t.Fatal("idle passive enclosure still on")
	}
}

func TestMAIDPromotesAccessedExtent(t *testing.T) {
	_, arr, ctx, ids := buildRun(t, DefaultConfig(), 2,
		[]int64{256 << 20}, []int{1})
	ctx.Queue.RunUntil(ctx.Clock, time.Minute)
	arr.Submit(trace.LogicalRecord{Time: time.Minute, Item: ids[0], Size: 8 << 10, Op: trace.OpRead})
	if arr.Stats().MigratedBytes == 0 {
		t.Fatal("no promotion to the cache tier")
	}
	r, _ := arr.Submit(trace.LogicalRecord{Time: time.Minute + time.Second, Item: ids[0], Offset: 4 << 10, Size: 8 << 10, Op: trace.OpWrite})
	if r.Enclosure != 0 {
		t.Fatalf("promoted extent served by enclosure %d, want cache tier", r.Enclosure)
	}
}

func TestMAIDPromotesOnce(t *testing.T) {
	m, arr, ctx, ids := buildRun(t, DefaultConfig(), 2, []int64{256 << 20}, []int{1})
	ctx.Queue.RunUntil(ctx.Clock, time.Minute)
	arr.Submit(trace.LogicalRecord{Time: time.Minute, Item: ids[0], Size: 8 << 10, Op: trace.OpRead})
	after := arr.Stats().MigratedBytes
	arr.Submit(trace.LogicalRecord{Time: time.Minute + time.Second, Item: ids[0], Offset: 8 << 10, Size: 8 << 10, Op: trace.OpRead})
	if arr.Stats().MigratedBytes != after {
		t.Fatal("extent promoted twice")
	}
	if m.Determinations() == 0 {
		t.Fatal("no promotion decisions counted")
	}
}

func TestMAIDRespectsCacheCapacity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheFillFraction = 0.0001 // limit ≈ 170 MB, below the resident item
	_, arr, ctx, ids := buildRun(t, cfg, 2, []int64{256 << 20, 300 << 20}, []int{1, 0})
	ctx.Queue.RunUntil(ctx.Clock, time.Minute)
	arr.Submit(trace.LogicalRecord{Time: time.Minute, Item: ids[0], Size: 8 << 10, Op: trace.OpRead})
	if arr.Stats().MigratedBytes != 0 {
		t.Fatal("promotion into a full cache tier")
	}
}
