// Package maid implements a MAID-style baseline (Colarelli & Grunwald,
// "Massive Arrays of Idle Disks for Storage Archives", SC 2002), the
// archetype of the data-placement-control family the paper's related
// work surveys (§VIII-B).
//
// A fixed set of cache enclosures stays powered; the remaining passive
// enclosures may spin down. When an access lands on a passive enclosure
// anyway, the touched extent is copied to a cache enclosure so the
// passive disk can return to sleep. MAID is entirely physical-level: it
// cannot know that the extent it just promoted belongs to a one-off
// scan, nor that a quiet item is about to turn hot — the gap the
// paper's application-collaborative method closes.
package maid

import (
	"time"

	"esm/internal/policy"
	"esm/internal/storage"
	"esm/internal/trace"
)

// Config parameterises MAID.
type Config struct {
	// CacheEnclosures is how many enclosures stay always-on as the cache
	// tier.
	CacheEnclosures int
	// CacheFillFraction caps how full a cache enclosure may get with
	// promoted extents.
	CacheFillFraction float64
}

// DefaultConfig uses one cache enclosure, as the original paper's
// smallest configuration.
func DefaultConfig() Config {
	return Config{CacheEnclosures: 1, CacheFillFraction: 0.9}
}

// MAID is the cache-disk policy.
type MAID struct {
	cfg Config
	ctx *policy.Context

	promoted    map[storage.ExtentRef]bool
	inPromotion bool
	// determinations counts promotion decisions, MAID's only run-time
	// choice.
	determinations int64
}

// New returns a MAID instance.
func New(cfg Config) *MAID {
	def := DefaultConfig()
	if cfg.CacheEnclosures <= 0 {
		cfg.CacheEnclosures = def.CacheEnclosures
	}
	if cfg.CacheFillFraction <= 0 || cfg.CacheFillFraction > 1 {
		cfg.CacheFillFraction = def.CacheFillFraction
	}
	return &MAID{cfg: cfg}
}

// Name implements policy.Policy.
func (m *MAID) Name() string { return "maid" }

// Init implements policy.Policy: the cache tier stays on, everything
// else may spin down immediately.
func (m *MAID) Init(ctx *policy.Context) {
	m.ctx = ctx
	m.promoted = make(map[storage.ExtentRef]bool)
	n := ctx.Array.Enclosures()
	cache := m.cfg.CacheEnclosures
	if cache > n {
		cache = n
	}
	for e := 0; e < n; e++ {
		ctx.Array.SetSpinDownEnabled(e, e >= cache)
	}
}

// OnLogical implements policy.Policy.
func (m *MAID) OnLogical(trace.LogicalRecord) {}

// OnPhysical implements policy.Policy: accesses to passive enclosures
// promote the touched extent into the cache tier.
func (m *MAID) OnPhysical(rec trace.PhysicalRecord) {
	e := int(rec.Enclosure)
	if m.inPromotion || e < m.cfg.CacheEnclosures {
		return
	}
	arr := m.ctx.Array
	ref, ok := arr.ResolveExtent(e, rec.Block)
	if !ok || m.promoted[ref] {
		return
	}
	m.determinations++
	limit := int64(m.cfg.CacheFillFraction * float64(arr.Capacity()))
	dst := -1
	for c := 0; c < m.cfg.CacheEnclosures && c < arr.Enclosures(); c++ {
		if arr.Used(c) < limit {
			dst = c
			break
		}
	}
	if dst < 0 {
		return // cache tier full; the access stays on the passive disk
	}
	m.inPromotion = true
	err := arr.MigrateExtent(ref, dst)
	m.inPromotion = false
	if err == nil {
		m.promoted[ref] = true
	}
}

// OnPower implements policy.Policy.
func (m *MAID) OnPower(int, time.Duration, bool) {}

// Finish implements policy.Policy.
func (m *MAID) Finish(time.Duration) {}

// Determinations implements policy.Policy.
func (m *MAID) Determinations() int64 { return m.determinations }
