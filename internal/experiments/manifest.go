// Run manifests and manifest diffing: every `esmbench -series` replay
// writes one BENCH_<workload>-<policy>.json manifest describing the run
// (workload, policy, seed, config hash, go version, final Result
// totals, series file), and `esmstat diff A B` compares two manifests
// signal-by-signal with relative thresholds — the regression gate CI
// runs against a committed baseline.

package experiments

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"esm/internal/faults"
	"esm/internal/replay"
	"esm/internal/workload"
)

// ManifestTotals are the final Result totals of one replay, flattened
// for diffing.
type ManifestTotals struct {
	EnergyJ        float64 `json:"energy_j"`
	AvgEnclosureW  float64 `json:"avg_enclosure_w"`
	AvgTotalW      float64 `json:"avg_total_w"`
	RespMeanUs     float64 `json:"resp_mean_us"`
	RespP95Us      float64 `json:"resp_p95_us"`
	SpinUps        int     `json:"spin_ups"`
	Migrations     int64   `json:"migrations"`
	MigratedBytes  int64   `json:"migrated_bytes"`
	Determinations int64   `json:"determinations"`
	CacheHits      int64   `json:"cache_hits"`
	Records        int64   `json:"records"`
	SpanNS         int64   `json:"span_ns"`
	// Alert watchdog aggregates (all zero when the run had no -alerts
	// rules; absent from pre-watchdog manifests, which decode as zero).
	AlertRules       int   `json:"alert_rules,omitempty"`
	AlertsFiring     int   `json:"alerts_firing,omitempty"`
	AlertsFired      int64 `json:"alerts_fired,omitempty"`
	AlertTransitions int64 `json:"alert_transitions,omitempty"`
	// Decision-provenance roll-up (all zero when the run had no
	// -provenance; absent from older manifests, which decode as zero).
	// Informational, not diff-gated.
	ProvRecords        int   `json:"provenance_records,omitempty"`
	ProvOffered        int64 `json:"provenance_offered,omitempty"`
	ProvDecisions      int64 `json:"provenance_decisions,omitempty"`
	ProvTransitions    int64 `json:"provenance_transitions,omitempty"`
	ProvMigrations     int64 `json:"provenance_migrations,omitempty"`
	ProvFaults         int64 `json:"provenance_faults,omitempty"`
	ProvDeterminations int64 `json:"provenance_determinations,omitempty"`
}

// Manifest describes one replay run well enough to compare it against
// another run of the same experiment.
type Manifest struct {
	Workload string  `json:"workload"`
	Policy   string  `json:"policy"`
	Scale    float64 `json:"scale"`
	// Seed is the fault scenario's seed (0 without faults; the replay
	// itself is deterministic and unseeded).
	Seed int64 `json:"seed"`
	// ConfigHash fingerprints the storage configuration plus workload
	// name and scale; a mismatch between two manifests means the diff
	// compares different experiments (warned, not gated).
	ConfigHash string `json:"config_hash"`
	GoVersion  string `json:"go_version"`
	Date       string `json:"date,omitempty"`
	// SeriesFile is the path of the flight-recorder series written
	// alongside this manifest (empty when none was).
	SeriesFile string `json:"series_file,omitempty"`
	// ProvFile is the path of the decision-provenance CSV written
	// alongside this manifest (empty when none was).
	ProvFile string         `json:"provenance_file,omitempty"`
	Totals   ManifestTotals `json:"totals"`
}

// NewManifest builds the manifest of one replay result.
func NewManifest(w *workload.Workload, policyName string, scale float64, fc *faults.Config, res *replay.Result) Manifest {
	m := Manifest{
		Workload:   w.Name,
		Policy:     policyName,
		Scale:      scale,
		ConfigHash: configHash(w, scale),
		GoVersion:  runtime.Version(),
		Totals: ManifestTotals{
			EnergyJ:          res.EnergyJ,
			AvgEnclosureW:    res.AvgEnclosureW,
			AvgTotalW:        res.AvgTotalW,
			RespMeanUs:       float64(res.Resp.Mean()) / float64(time.Microsecond),
			RespP95Us:        float64(res.Resp.Percentile(0.95)) / float64(time.Microsecond),
			SpinUps:          res.SpinUps,
			Migrations:       res.Storage.Migrations,
			MigratedBytes:    res.Storage.MigratedBytes,
			Determinations:   res.Determinations,
			CacheHits:        res.Storage.CacheHits,
			Records:          res.Resp.Count(),
			SpanNS:           int64(res.Span),
			AlertRules:       res.Alerts.Rules,
			AlertsFiring:     res.Alerts.Firing,
			AlertsFired:      res.Alerts.Fired,
			AlertTransitions: res.Alerts.Transitions,
		},
	}
	if fc != nil {
		m.Seed = fc.Seed
	}
	if p := res.Provenance; p != nil {
		m.Totals.ProvRecords = p.Records
		m.Totals.ProvOffered = p.Offered
		m.Totals.ProvDecisions = p.Decisions
		m.Totals.ProvTransitions = p.Transitions
		m.Totals.ProvMigrations = p.Migrations
		m.Totals.ProvFaults = p.Faults
		m.Totals.ProvDeterminations = p.Determinations
	}
	return m
}

// configHash fingerprints the experiment configuration: the storage
// config JSON plus the workload name and scale.
func configHash(w *workload.Workload, scale float64) string {
	cfg, err := json.Marshal(StorageFor(w))
	if err != nil {
		cfg = []byte(err.Error())
	}
	h := sha256.New()
	h.Write(cfg)
	fmt.Fprintf(h, "|%s|%g", w.Name, scale)
	return fmt.Sprintf("%x", h.Sum(nil))[:12]
}

// WriteFile writes the manifest as indented JSON.
func (m Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadManifest loads a manifest written by WriteFile.
func ReadManifest(path string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("%s: %w", path, err)
	}
	if m.Workload == "" || m.Policy == "" {
		return m, fmt.Errorf("%s: not a run manifest (missing workload/policy)", path)
	}
	return m, nil
}

// DiffThresholds are the relative regression thresholds per signal
// group: a signal regresses when new > old * (1 + threshold).
type DiffThresholds struct {
	// Energy gates energy_j and avg_enclosure_w.
	Energy float64
	// Resp gates resp_mean_us and resp_p95_us.
	Resp float64
	// SpinUps gates spin_ups.
	SpinUps float64
	// Migrations gates migrations and migrated_bytes.
	Migrations float64
	// Alerts gates alerts_firing and alerts_fired ABSOLUTELY: the run
	// regresses when the new count exceeds the old by more than Alerts
	// (so 0 means any newly firing alert fails, even against a zero
	// baseline — unlike the relative signals, which never gate a zero
	// baseline).
	Alerts float64
}

// DefaultDiffThresholds returns the diff's defaults: 5% on energy, 10%
// on response, spin-ups and migrations, zero extra firing alerts.
func DefaultDiffThresholds() DiffThresholds {
	return DiffThresholds{Energy: 0.05, Resp: 0.10, SpinUps: 0.10, Migrations: 0.10, Alerts: 0}
}

// DiffRow is one signal's comparison.
type DiffRow struct {
	Signal    string
	Old, New  float64
	DeltaPct  float64
	Threshold float64
	Regressed bool
}

// Diff is the outcome of comparing two manifests.
type Diff struct {
	Rows []DiffRow
	// Warnings flag comparisons that are advisory rather than gated:
	// mismatched workload/policy/config-hash/go-version.
	Warnings []string
}

// Regressed reports whether any signal crossed its threshold.
func (d *Diff) Regressed() bool {
	for _, r := range d.Rows {
		if r.Regressed {
			return true
		}
	}
	return false
}

// DiffManifests compares run b against baseline a, signal by signal.
// Every gated signal is lower-is-better; a signal with a zero baseline
// is reported but never gated (its relative delta is undefined).
func DiffManifests(a, b Manifest, th DiffThresholds) *Diff {
	d := &Diff{}
	if a.Workload != b.Workload || a.Policy != b.Policy {
		d.Warnings = append(d.Warnings, fmt.Sprintf(
			"comparing different experiments: %s/%s vs %s/%s", a.Workload, a.Policy, b.Workload, b.Policy))
	}
	if a.ConfigHash != b.ConfigHash {
		d.Warnings = append(d.Warnings, fmt.Sprintf(
			"config hash mismatch (%s vs %s): the runs used different configurations", a.ConfigHash, b.ConfigHash))
	}
	if a.GoVersion != b.GoVersion {
		d.Warnings = append(d.Warnings, fmt.Sprintf(
			"go version mismatch (%s vs %s)", a.GoVersion, b.GoVersion))
	}
	if a.Seed != b.Seed {
		d.Warnings = append(d.Warnings, fmt.Sprintf("fault seed mismatch (%d vs %d)", a.Seed, b.Seed))
	}
	add := func(signal string, old, new, threshold float64) {
		row := DiffRow{Signal: signal, Old: old, New: new, Threshold: threshold}
		if old > 0 {
			row.DeltaPct = (new/old - 1) * 100
			row.Regressed = new > old*(1+threshold)
		}
		d.Rows = append(d.Rows, row)
	}
	ta, tb := a.Totals, b.Totals
	add("energy_j", ta.EnergyJ, tb.EnergyJ, th.Energy)
	add("avg_enclosure_w", ta.AvgEnclosureW, tb.AvgEnclosureW, th.Energy)
	add("resp_mean_us", ta.RespMeanUs, tb.RespMeanUs, th.Resp)
	add("resp_p95_us", ta.RespP95Us, tb.RespP95Us, th.Resp)
	add("spin_ups", float64(ta.SpinUps), float64(tb.SpinUps), th.SpinUps)
	add("migrations", float64(ta.Migrations), float64(tb.Migrations), th.Migrations)
	add("migrated_bytes", float64(ta.MigratedBytes), float64(tb.MigratedBytes), th.Migrations)
	// Alert counts gate absolutely: firing 0 -> N must fail, which the
	// relative rule above (zero baselines never gate) cannot express.
	abs := func(signal string, old, new, allowed float64) {
		row := DiffRow{Signal: signal, Old: old, New: new, Threshold: allowed}
		if old > 0 {
			row.DeltaPct = (new/old - 1) * 100
		}
		row.Regressed = new > old+allowed
		d.Rows = append(d.Rows, row)
	}
	abs("alerts_firing", float64(ta.AlertsFiring), float64(tb.AlertsFiring), th.Alerts)
	abs("alerts_fired", float64(ta.AlertsFired), float64(tb.AlertsFired), th.Alerts)
	return d
}
