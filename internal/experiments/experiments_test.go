package experiments

import (
	"strings"
	"testing"
	"time"

	"esm/internal/core"
	"esm/internal/monitor"
	"esm/internal/policy"
	"esm/internal/replay"
	"esm/internal/trace"
	"esm/internal/workload"
)

func TestBuildAllKinds(t *testing.T) {
	for _, k := range Kinds() {
		w, err := Build(k, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if len(w.EnsureRecords()) == 0 {
			t.Fatalf("%s: empty trace", k)
		}
		cfg := StorageFor(w)
		if cfg.Enclosures != w.Enclosures {
			t.Fatalf("%s: storage sized for %d enclosures, workload wants %d", k, cfg.Enclosures, w.Enclosures)
		}
	}
	if _, err := Build(Kind("bogus"), 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestDefaultPoliciesComplete(t *testing.T) {
	names := map[string]bool{}
	for _, f := range DefaultPolicies() {
		names[f.Name] = true
		p, err := f.New()
		if err != nil {
			t.Fatalf("factory %q: %v", f.Name, err)
		}
		if p.Name() != f.Name {
			t.Fatalf("factory %q builds policy %q", f.Name, p.Name())
		}
	}
	for _, want := range []string{"none", "esm", "pdc", "ddr"} {
		if !names[want] {
			t.Fatalf("policy %q missing from the comparison set", want)
		}
	}
}

func TestPoliciesForScalesPDCPeriod(t *testing.T) {
	// At full scale the factory set is unchanged; at reduced scale only
	// PDC's period shrinks.
	if got := PoliciesFor(1.0); len(got) != 4 {
		t.Fatalf("%d policies", len(got))
	}
	scaled := PoliciesFor(0.1)
	for _, f := range scaled {
		p, err := f.New()
		if err != nil {
			t.Fatalf("factory %q: %v", f.Name, err)
		}
		if p.Name() != f.Name {
			t.Fatalf("factory %q builds %q", f.Name, p.Name())
		}
	}
}

func TestEvaluateFileServerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("replay smoke test")
	}
	w, err := Build(FileServer, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(w, PoliciesFor(0.1))
	if err != nil {
		t.Fatal(err)
	}
	base := ev.Result("none")
	esm := ev.Result("esm")
	if base == nil || esm == nil {
		t.Fatal("missing results")
	}
	if esm.AvgEnclosureW >= base.AvgEnclosureW {
		t.Fatalf("ESM %v W did not beat baseline %v W", esm.AvgEnclosureW, base.AvgEnclosureW)
	}
	if ev.Result("nope") != nil {
		t.Fatal("lookup of unknown policy succeeded")
	}

	// Exercise every table formatter.
	var sb strings.Builder
	PowerTable("power", ev).Fprint(&sb)
	ResponseTable("resp", ev).Fprint(&sb)
	MigrationTable("mig", ev).Fprint(&sb)
	IntervalTable("iv", ev, DefaultIntervalThresholds()).Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"power", "resp", "mig", "iv", "esm", "pdc", "ddr", "none"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tables missing %q:\n%s", want, out)
		}
	}
}

func TestPatternMixAndFig6Table(t *testing.T) {
	w, err := Build(OLTP, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	m := PatternMix(w, 52*time.Second)
	if m.Total != w.Catalog.Len() {
		t.Fatalf("classified %d of %d items", m.Total, w.Catalog.Len())
	}
	tbl := Fig6Table(map[Kind]core.PatternMix{OLTP: m})
	var sb strings.Builder
	tbl.Fprint(&sb)
	if !strings.Contains(sb.String(), "oltp") {
		t.Fatalf("fig6 table:\n%s", sb.String())
	}
}

func TestDefaultScales(t *testing.T) {
	for _, k := range Kinds() {
		if s := DefaultScale(k); s <= 0 || s > 1 {
			t.Fatalf("%s scale %v", k, s)
		}
	}
}

func TestExtendedPoliciesComplete(t *testing.T) {
	names := map[string]bool{}
	for _, f := range ExtendedPolicies(0.5) {
		names[f.Name] = true
		p, err := f.New()
		if err != nil {
			t.Fatalf("factory %q: %v", f.Name, err)
		}
		if p.Name() != f.Name {
			t.Fatalf("factory %q builds %q", f.Name, p.Name())
		}
	}
	for _, want := range []string{"none", "esm", "pdc", "ddr", "timeout", "maid", "offload"} {
		if !names[want] {
			t.Fatalf("extended set missing %q", want)
		}
	}
}

func TestAblationPoliciesComplete(t *testing.T) {
	names := map[string]bool{}
	for _, f := range AblationPolicies() {
		names[f.Name] = true
		p, err := f.New()
		if err != nil || p == nil {
			t.Fatalf("factory %q built %v (err %v)", f.Name, p, err)
		}
	}
	for _, want := range []string{"none", "timeout", "esm", "esm-nomigrate", "esm-nopreload", "esm-nowdelay"} {
		if !names[want] {
			t.Fatalf("ablation set missing %q", want)
		}
	}
}

func TestSweepsOnSynthetic(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep smoke test")
	}
	cfg := workload.DefaultSyntheticConfig()
	cfg.Duration = 30 * time.Minute
	w, err := workload.GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := SweepCacheSizes(w, []int64{64 << 20, 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(cache.Rows) != 2 {
		t.Fatalf("cache sweep rows %d", len(cache.Rows))
	}
	to, err := SweepSpinDownTimeout(w, []time.Duration{26 * time.Second, 104 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(to.Rows) != 2 {
		t.Fatalf("timeout sweep rows %d", len(to.Rows))
	}
	mig, err := SweepMigrationBps(w, []float64{50 << 20, 200 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(mig.Rows) != 2 {
		t.Fatalf("migration sweep rows %d", len(mig.Rows))
	}
	al, err := SweepAlpha(w, []float64{1.1, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Rows) != 2 {
		t.Fatalf("alpha sweep rows %d", len(al.Rows))
	}
	var sb strings.Builder
	for _, tbl := range []*Table{cache, to, mig, al} {
		tbl.Fprint(&sb)
	}
	if !strings.Contains(sb.String(), "Sweep") {
		t.Fatal("sweep tables empty")
	}
}

func TestPowerSeriesChart(t *testing.T) {
	if testing.Short() {
		t.Skip("replay smoke test")
	}
	cfg := workload.DefaultSyntheticConfig()
	cfg.Duration = 20 * time.Minute
	w, err := workload.GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(w, []PolicyFactory{
		{Name: "none", New: Simple(func() policy.Policy { return policy.NoPowerSaving{} })},
		{Name: "timeout", New: Simple(func() policy.Policy { return policy.FixedTimeout{} })},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Results[0].PowerSeries) == 0 {
		t.Fatal("no power samples recorded")
	}
	var sb strings.Builder
	PowerSeriesChart("chart", ev).Fprint(&sb)
	if !strings.Contains(sb.String(), "none") || !strings.Contains(sb.String(), "timeout") {
		t.Fatalf("chart output:\n%s", sb.String())
	}
}

func TestStateMixTable(t *testing.T) {
	if testing.Short() {
		t.Skip("replay smoke test")
	}
	cfg := workload.DefaultSyntheticConfig()
	cfg.Duration = 20 * time.Minute
	w, err := workload.GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(w, []PolicyFactory{
		{Name: "none", New: Simple(func() policy.Policy { return policy.NoPowerSaving{} })},
		{Name: "timeout", New: Simple(func() policy.Policy { return policy.FixedTimeout{} })},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	StateMixTable("mix", ev).Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "timeout") {
		t.Fatalf("state mix table:\n%s", out)
	}
	// The residencies of each run must sum to ~100%.
	for _, r := range ev.Results {
		for e, m := range r.StateMix {
			sum := m.Active + m.Idle + m.Off + m.SpinUp
			if sum < 0.99 || sum > 1.01 {
				t.Fatalf("%s enclosure %d residency sums to %v", r.PolicyName, e, sum)
			}
		}
	}
}

// fakeEval builds an Eval from hand-rolled results so the table
// formatters can be exercised without replays.
func fakeEval(t *testing.T) *Eval {
	t.Helper()
	w, err := workload.GenerateSynthetic(workload.SyntheticConfig{
		Enclosures: 2, SteadyItems: 1, SteadyIOPS: 5,
		ItemBytes: 1 << 20, Duration: 15 * time.Minute, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.BaseThroughput = 1000
	w.Windows = []workload.Window{{Name: "Q1", Start: 0, End: 5 * time.Minute}}
	mkRes := func(name string, readMean time.Duration) *replay.Result {
		res := &replay.Result{PolicyName: name, Span: w.Duration}
		res.Resp.Add(trace.OpRead, readMean)
		res.Windows = []replay.WindowResult{{Name: "Q1", Reads: 10, ReadSum: 10 * readMean}}
		res.Monitor = monitor.NewStorageMonitor(2)
		res.Monitor.Finish(w.Duration)
		res.StateMix = []replay.StateResidency{{Idle: 1}, {Idle: 1}}
		res.AvgEnclosureW = 100 + readMean.Seconds()
		return res
	}
	return &Eval{
		Workload: w,
		Policies: []PolicyFactory{{Name: "none"}, {Name: "esm"}},
		Results:  []*replay.Result{mkRes("none", 10*time.Millisecond), mkRes("esm", 5*time.Millisecond)},
	}
}

func TestThroughputAndQueryTables(t *testing.T) {
	ev := fakeEval(t)
	var sb strings.Builder
	ThroughputTable(ev).Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "2000.0") { // esm halves read response → doubles derived tpmC
		t.Fatalf("throughput table:\n%s", out)
	}
	sb.Reset()
	QueryResponseTable(ev, []string{"Q1"}).Fprint(&sb)
	if !strings.Contains(sb.String(), "2m30s") { // half the ReadSum → half of the 5m window
		t.Fatalf("query table:\n%s", sb.String())
	}
	sb.Reset()
	MigrationTable("m", ev).Fprint(&sb)
	IntervalTable("iv", ev, DefaultIntervalThresholds()).Fprint(&sb)
	StateMixTable("sm", ev).Fprint(&sb)
	PowerTable("p", ev).Fprint(&sb)
	ResponseTable("r", ev).Fprint(&sb)
	PowerSeriesChart("c", ev).Fprint(&sb)
	for _, want := range []string{"m", "iv", "sm", "esm", "none"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("tables missing %q", want)
		}
	}
	// Tables degrade gracefully without a baseline run.
	noBase := &Eval{Workload: ev.Workload, Policies: ev.Policies[1:], Results: ev.Results[1:]}
	sb.Reset()
	ThroughputTable(noBase).Fprint(&sb)
	QueryResponseTable(noBase, []string{"Q1"}).Fprint(&sb)
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2 << 20: "2.00 MB",
		3 << 30: "3.00 GB",
		5 << 40: "5.00 TB",
	}
	for n, want := range cases {
		if got := fmtBytes(n); got != want {
			t.Fatalf("fmtBytes(%d) = %q, want %q", n, got, want)
		}
	}
}
