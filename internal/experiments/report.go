// Machine-readable benchmark reports. `esmbench -json` (and the
// `make bench-json` target) serialize every figure's per-policy results
// here so CI can diff runs instead of scraping the printed tables.

package experiments

import (
	"encoding/json"
	"io"

	"esm/internal/metrics"
)

// FigureResult is one (workload, policy) replay outcome, flattened for
// JSON diffing.
type FigureResult struct {
	Workload       string  `json:"workload"`
	Policy         string  `json:"policy"`
	Scale          float64 `json:"scale"`
	Records        int64   `json:"records"`
	AvgEnclosureW  float64 `json:"avg_enclosure_w"`
	AvgTotalW      float64 `json:"avg_total_w"`
	EnergyJ        float64 `json:"energy_j"`
	SavingPct      float64 `json:"saving_pct"`
	RespMeanUs     int64   `json:"resp_mean_us"`
	RespReadMeanUs int64   `json:"resp_read_mean_us"`
	RespP99Us      int64   `json:"resp_p99_us"`
	MigratedBytes  int64   `json:"migrated_bytes"`
	Migrations     int64   `json:"migrations"`
	Determinations int64   `json:"determinations"`
	SpinUps        int     `json:"spin_ups"`
	ThroughputTpmC float64 `json:"throughput_tpmc,omitempty"`
	WallSeconds    float64 `json:"wall_seconds"`
}

// Report is the top-level bench-json document.
type Report struct {
	// Date is the run date (YYYY-MM-DD).
	Date string `json:"date"`
	// Parallel is the configured replay concurrency bound for the run
	// (-parallel, or GOMAXPROCS when unset).
	Parallel int `json:"parallel"`
	// ParallelEffective is the widest worker pool the scheduler actually
	// spawned: Parallel clamped to the largest job batch. When this is
	// below Parallel, the bound was wider than the evaluation.
	ParallelEffective int `json:"parallel_effective"`
	// GOMAXPROCS is the Go runtime's CPU parallelism cap at run time —
	// the hard ceiling on how many replays (or shard workers) make
	// progress simultaneously regardless of the flags.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Shards is the per-replay shard count (-shards; 0 or 1 means the
	// serial engine).
	Shards int `json:"shards"`
	// Figures holds one entry per (workload, policy) replay, in
	// evaluation order.
	Figures []FigureResult `json:"figures"`
}

// AddEval appends every result of ev to the report. scale is the trace
// scale the workload was built at, wall the wall-clock seconds the whole
// evaluation took (the scheduler runs policies concurrently, so the
// wall time belongs to the evaluation, not a single policy; it is
// repeated on each row).
func (rp *Report) AddEval(ev *Eval, scale, wall float64) {
	base := ev.Result("none")
	for _, res := range ev.Results {
		fr := FigureResult{
			Workload:       ev.Workload.Name,
			Policy:         res.PolicyName,
			Scale:          scale,
			Records:        res.Resp.Count(),
			AvgEnclosureW:  res.AvgEnclosureW,
			AvgTotalW:      res.AvgTotalW,
			EnergyJ:        res.EnergyJ,
			RespMeanUs:     res.Resp.Mean().Microseconds(),
			RespReadMeanUs: res.Resp.ReadMean().Microseconds(),
			RespP99Us:      res.Resp.Percentile(0.99).Microseconds(),
			MigratedBytes:  res.Storage.MigratedBytes,
			Migrations:     res.Storage.Migrations,
			Determinations: res.Determinations,
			SpinUps:        res.SpinUps,
			WallSeconds:    wall,
		}
		if base != nil && base.AvgEnclosureW > 0 {
			fr.SavingPct = (1 - res.AvgEnclosureW/base.AvgEnclosureW) * 100
		}
		if ev.Workload.BaseThroughput > 0 && base != nil {
			fr.ThroughputTpmC = metrics.DerivedThroughput(
				ev.Workload.BaseThroughput, base.Resp.ReadMean(), res.Resp.ReadMean())
		}
		rp.Figures = append(rp.Figures, fr)
	}
}

// Write serializes the report as indented JSON.
func (rp *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rp)
}
