package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"esm/internal/metrics"
	"esm/internal/replay"
	"esm/internal/trace"
	"esm/internal/workload"
)

func manifestFixture(t *testing.T) Manifest {
	t.Helper()
	cfg := workload.DefaultSyntheticConfig()
	cfg.Duration = 10 * time.Minute
	w, err := workload.GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := &replay.Result{
		PolicyName:     "esm",
		Span:           w.Duration,
		EnergyJ:        5000,
		AvgEnclosureW:  120,
		AvgTotalW:      150,
		SpinUps:        12,
		Determinations: 3,
	}
	var resp metrics.ResponseStats
	for i := 0; i < 100; i++ {
		resp.Add(trace.OpRead, time.Duration(i+1)*time.Millisecond)
	}
	res.Resp = resp
	res.Storage.Migrations = 7
	res.Storage.MigratedBytes = 7 << 30
	res.Storage.CacheHits = 40
	return NewManifest(w, "esm", 0.5, nil, res)
}

func TestManifestRoundTrip(t *testing.T) {
	m := manifestFixture(t)
	m.SeriesFile = "synthetic-esm.series.csv"
	path := filepath.Join(t.TempDir(), "BENCH_synthetic-esm.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip changed the manifest:\n got %+v\nwant %+v", got, m)
	}
	if got.ConfigHash == "" || got.GoVersion == "" {
		t.Fatalf("manifest lacks provenance: %+v", got)
	}
	if got.Totals.EnergyJ != 5000 || got.Totals.SpinUps != 12 || got.Totals.Migrations != 7 {
		t.Fatalf("totals wrong: %+v", got.Totals)
	}
}

func TestReadManifestRejectsJunk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.json")
	if err := os.WriteFile(path, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil {
		t.Fatal("empty object accepted as a manifest")
	}
	if _, err := ReadManifest(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDiffNoRegressionOnIdenticalRun(t *testing.T) {
	m := manifestFixture(t)
	d := DiffManifests(m, m, DefaultDiffThresholds())
	if d.Regressed() {
		t.Fatalf("identical manifests regressed: %+v", d.Rows)
	}
	if len(d.Warnings) != 0 {
		t.Fatalf("identical manifests warned: %v", d.Warnings)
	}
	if len(d.Rows) < 7 {
		t.Fatalf("only %d signals compared", len(d.Rows))
	}
}

func TestDiffDetectsEnergyRegression(t *testing.T) {
	a := manifestFixture(t)
	b := a
	// An injected 10% energy regression must trip the 5% default gate.
	b.Totals.EnergyJ = a.Totals.EnergyJ * 1.10
	d := DiffManifests(a, b, DefaultDiffThresholds())
	if !d.Regressed() {
		t.Fatalf("10%% energy regression not detected: %+v", d.Rows)
	}
	var hit bool
	for _, r := range d.Rows {
		if r.Signal == "energy_j" {
			hit = r.Regressed
			if r.DeltaPct < 9.9 || r.DeltaPct > 10.1 {
				t.Fatalf("energy delta %.2f%%, want ~10%%", r.DeltaPct)
			}
		} else if r.Regressed {
			t.Fatalf("signal %s spuriously regressed", r.Signal)
		}
	}
	if !hit {
		t.Fatal("energy_j row not marked regressed")
	}
	// Loose CI thresholds (±25%) let the same delta pass.
	loose := DiffThresholds{Energy: 0.25, Resp: 0.25, SpinUps: 0.25, Migrations: 0.25}
	if DiffManifests(a, b, loose).Regressed() {
		t.Fatal("10% delta tripped the 25% threshold")
	}
}

func TestDiffImprovementsAndZeroBaselinesPass(t *testing.T) {
	a := manifestFixture(t)
	b := a
	b.Totals.EnergyJ = a.Totals.EnergyJ * 0.5 // improvement
	b.Totals.RespMeanUs = 0
	a.Totals.SpinUps = 0 // zero baseline: never gated
	b.Totals.SpinUps = 100
	if d := DiffManifests(a, b, DefaultDiffThresholds()); d.Regressed() {
		t.Fatalf("improvement/zero-baseline flagged as regression: %+v", d.Rows)
	}
}

func TestDiffWarnsOnMismatchedProvenance(t *testing.T) {
	a := manifestFixture(t)
	b := a
	b.ConfigHash = "deadbeef0000"
	b.GoVersion = "go0.0"
	b.Policy = "pdc"
	d := DiffManifests(a, b, DefaultDiffThresholds())
	if len(d.Warnings) < 3 {
		t.Fatalf("want config/go/experiment warnings, got %v", d.Warnings)
	}
	for _, w := range d.Warnings {
		if strings.Contains(w, "REGRESSION") {
			t.Fatalf("warning reads like a gate: %q", w)
		}
	}
}
