// Sensitivity sweeps: how the proposed method's saving and performance
// respond to the main tunables. The paper fixes these at the Table II
// values and defers configuration studies to future work (§IX); these
// harnesses provide them. Every sweep batches its baseline and all its
// points through the worker-pool scheduler, so a sweep costs about as
// much wall-clock as its slowest single replay.

package experiments

import (
	"fmt"
	"time"

	"esm/internal/core"
	"esm/internal/policy"
	"esm/internal/powermodel"
	"esm/internal/replay"
	"esm/internal/storage"
	"esm/internal/workload"
)

// SweepPoint is one sweep row.
type SweepPoint struct {
	Label         string
	AvgEnclosureW float64
	SavingPct     float64
	RespMean      time.Duration
	MigratedBytes int64
	SpinUps       int
}

// runFor assembles the standard replay run of w under pol: fresh trace
// source, the workload's own span and loop mode.
func runFor(w *workload.Workload, cfg storage.Config, pol policy.Policy) replay.Run {
	return replay.Run{
		Catalog:    w.Catalog,
		Source:     w.Source(),
		Placement:  w.Placement,
		Storage:    cfg,
		Policy:     pol,
		Duration:   w.Duration,
		ClosedLoop: w.ClosedLoop,
		Shards:     Shards(),
	}
}

// sweepVariant is one ESM configuration point of a sweep.
type sweepVariant struct {
	label  string
	cfg    storage.Config
	params core.Params
}

// runSweepESM schedules the no-power-saving baseline plus one ESM replay
// per variant and renders the sweep rows in variant order.
func runSweepESM(title string, w *workload.Workload, variants []sweepVariant) (*Table, error) {
	jobs := make([]runJob, 0, len(variants)+1)
	jobs = append(jobs, runJob{
		label: w.Name + "/sweep-baseline",
		run:   runFor(w, StorageFor(w), policy.NoPowerSaving{}),
	})
	for _, v := range variants {
		esm, err := core.NewESM(v.params)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, runJob{
			label: w.Name + "/sweep " + v.label,
			run:   runFor(w, v.cfg, esm),
		})
	}
	results, err := executeJobs(jobs)
	if err != nil {
		return nil, err
	}
	base := results[0].AvgEnclosureW
	pts := make([]SweepPoint, 0, len(variants))
	for i, v := range variants {
		res := results[i+1]
		p := SweepPoint{
			Label:         v.label,
			AvgEnclosureW: res.AvgEnclosureW,
			RespMean:      res.Resp.Mean(),
			MigratedBytes: res.Storage.MigratedBytes,
			SpinUps:       res.SpinUps,
		}
		if base > 0 {
			p.SavingPct = (1 - res.AvgEnclosureW/base) * 100
		}
		pts = append(pts, p)
	}
	return sweepTable(title, pts), nil
}

// sweepTable renders sweep points.
func sweepTable(title string, pts []SweepPoint) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"value", "encl W", "saving", "response", "migrated", "spinups"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			p.Label,
			fmt.Sprintf("%.1f", p.AvgEnclosureW),
			fmt.Sprintf("%.1f%%", p.SavingPct),
			p.RespMean.Round(10 * time.Microsecond).String(),
			fmtBytes(p.MigratedBytes),
			fmt.Sprintf("%d", p.SpinUps),
		})
	}
	return t
}

// SweepCacheSizes varies the preload and write-delay partitions together
// (Table II fixes both at 500 MB within the 2 GB cache).
func SweepCacheSizes(w *workload.Workload, sizes []int64) (*Table, error) {
	variants := make([]sweepVariant, 0, len(sizes))
	for _, size := range sizes {
		cfg := StorageFor(w)
		cfg.PreloadCacheBytes = size
		cfg.WriteDelayCacheBytes = size
		if cfg.CacheBytes < 2*size {
			cfg.CacheBytes = 2 * size
		}
		params := core.DefaultParams()
		params.PreloadCacheBytes = size
		params.WriteDelayCacheBytes = size
		variants = append(variants, sweepVariant{label: fmtBytes(size), cfg: cfg, params: params})
	}
	return runSweepESM("Sweep — preload/write-delay cache size ("+w.Name+")", w, variants)
}

// SweepSpinDownTimeout varies the spin-down timeout relative to the
// break-even time. Below break-even the enclosure pays more energy to
// wake than it saved sleeping; far above it the idle interval is mostly
// wasted awake.
func SweepSpinDownTimeout(w *workload.Workload, timeouts []time.Duration) (*Table, error) {
	variants := make([]sweepVariant, 0, len(timeouts))
	for _, to := range timeouts {
		cfg := StorageFor(w)
		cfg.SpinDownTimeout = to
		variants = append(variants, sweepVariant{label: to.String(), cfg: cfg, params: core.DefaultParams()})
	}
	return runSweepESM("Sweep — spin-down timeout ("+w.Name+")", w, variants)
}

// SweepMigrationBps varies the data-migration throttle (§V-A).
func SweepMigrationBps(w *workload.Workload, rates []float64) (*Table, error) {
	variants := make([]sweepVariant, 0, len(rates))
	for _, bps := range rates {
		cfg := StorageFor(w)
		cfg.MigrationBps = bps
		label := fmt.Sprintf("%.0f MB/s", bps/(1<<20))
		variants = append(variants, sweepVariant{label: label, cfg: cfg, params: core.DefaultParams()})
	}
	return runSweepESM("Sweep — migration throttle ("+w.Name+")", w, variants)
}

// SweepAlpha varies the monitoring-period coefficient α (§IV-H).
func SweepAlpha(w *workload.Workload, alphas []float64) (*Table, error) {
	variants := make([]sweepVariant, 0, len(alphas))
	for _, a := range alphas {
		params := core.DefaultParams()
		params.Alpha = a
		variants = append(variants, sweepVariant{label: fmt.Sprintf("%.2f", a), cfg: StorageFor(w), params: params})
	}
	return runSweepESM("Sweep — monitoring coefficient alpha ("+w.Name+")", w, variants)
}

// DefaultSweeps runs every sweep on w with canonical value grids.
func DefaultSweeps(w *workload.Workload) ([]*Table, error) {
	var tables []*Table
	t, err := SweepCacheSizes(w, []int64{125 << 20, 250 << 20, 500 << 20, 1 << 30})
	if err != nil {
		return nil, err
	}
	tables = append(tables, t)
	t, err = SweepSpinDownTimeout(w, []time.Duration{13 * time.Second, 26 * time.Second, 52 * time.Second, 104 * time.Second, 208 * time.Second})
	if err != nil {
		return nil, err
	}
	tables = append(tables, t)
	t, err = SweepMigrationBps(w, []float64{50 << 20, 100 << 20, 200 << 20, 400 << 20})
	if err != nil {
		return nil, err
	}
	tables = append(tables, t)
	t, err = SweepAlpha(w, []float64{1.05, 1.2, 1.5, 2.0})
	if err != nil {
		return nil, err
	}
	tables = append(tables, t)
	t, err = CompareMedia(w)
	if err != nil {
		return nil, err
	}
	tables = append(tables, t)
	return tables, nil
}

// CompareMedia replays w under every policy on the HDD test bed and on
// an all-flash variant (powermodel.SSDParams, with the spin-down timeout
// and the policies' break-even set to the flash-derived value). It
// quantifies §VIII-D's claim that the method carries over to SSDs. All
// six replays are scheduled as one batch.
func CompareMedia(w *workload.Workload) (*Table, error) {
	t := &Table{
		Title:  "Media comparison — HDD vs SSD enclosures (" + w.Name + ")",
		Header: []string{"policy", "HDD W", "HDD saving", "SSD W", "SSD saving"},
	}
	type media struct {
		name   string
		cfg    storage.Config
		params core.Params
	}
	hdd := media{name: "hdd", cfg: StorageFor(w), params: core.DefaultParams()}
	ssdCfg := StorageFor(w)
	ssdCfg.Power = powermodel.SSDParams()
	ssdBE := ssdCfg.Power.BreakEven()
	ssdCfg.SpinDownTimeout = ssdBE
	ssdParams := core.DefaultParams()
	ssdParams.BreakEven = ssdBE
	ssdParams.MinPeriod = 520 * time.Second
	ssdParams.ReplanCooldown = 5 * ssdBE
	ssd := media{name: "ssd", cfg: ssdCfg, params: ssdParams}

	order := []string{"none", "timeout", "esm"}
	var jobs []runJob
	for _, m := range []media{hdd, ssd} {
		for _, name := range order {
			var pol policy.Policy
			switch name {
			case "none":
				pol = policy.NoPowerSaving{}
			case "timeout":
				pol = policy.FixedTimeout{}
			case "esm":
				esm, err := core.NewESM(m.params)
				if err != nil {
					return nil, err
				}
				pol = esm
			}
			jobs = append(jobs, runJob{
				label: fmt.Sprintf("%s/media %s/%s", w.Name, m.name, name),
				run:   runFor(w, m.cfg, pol),
			})
		}
	}
	results, err := executeJobs(jobs)
	if err != nil {
		return nil, err
	}

	type row struct{ w, saving [2]float64 }
	rows := map[string]*row{}
	for mi := range 2 {
		var baseW float64
		for ni, name := range order {
			res := results[mi*len(order)+ni]
			if rows[name] == nil {
				rows[name] = &row{}
			}
			rows[name].w[mi] = res.AvgEnclosureW
			if name == "none" {
				baseW = res.AvgEnclosureW
			}
			if baseW > 0 {
				rows[name].saving[mi] = (1 - res.AvgEnclosureW/baseW) * 100
			}
		}
	}
	for _, name := range order {
		r := rows[name]
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1f", r.w[0]),
			fmt.Sprintf("%.1f%%", r.saving[0]),
			fmt.Sprintf("%.1f", r.w[1]),
			fmt.Sprintf("%.1f%%", r.saving[1]),
		})
	}
	return t, nil
}
