// Sensitivity sweeps: how the proposed method's saving and performance
// respond to the main tunables. The paper fixes these at the Table II
// values and defers configuration studies to future work (§IX); these
// harnesses provide them.

package experiments

import (
	"fmt"
	"time"

	"esm/internal/core"
	"esm/internal/policy"
	"esm/internal/powermodel"
	"esm/internal/replay"
	"esm/internal/storage"
	"esm/internal/workload"
)

// SweepPoint is one sweep row.
type SweepPoint struct {
	Label         string
	AvgEnclosureW float64
	SavingPct     float64
	RespMean      time.Duration
	MigratedBytes int64
	SpinUps       int
}

// sweepRun replays w once under ESM with the given storage config and
// parameters, returning the headline numbers relative to baseW.
func sweepRun(w *workload.Workload, cfg storage.Config, params core.Params, baseW float64, label string) (SweepPoint, error) {
	esm, err := core.NewESM(params)
	if err != nil {
		return SweepPoint{}, err
	}
	res, err := replay.Execute(replay.Run{
		Catalog:    w.Catalog,
		Records:    w.Records,
		Placement:  w.Placement,
		Storage:    cfg,
		Policy:     esm,
		Duration:   w.Duration,
		ClosedLoop: w.ClosedLoop,
	})
	if err != nil {
		return SweepPoint{}, err
	}
	p := SweepPoint{
		Label:         label,
		AvgEnclosureW: res.AvgEnclosureW,
		RespMean:      res.Resp.Mean(),
		MigratedBytes: res.Storage.MigratedBytes,
		SpinUps:       res.SpinUps,
	}
	if baseW > 0 {
		p.SavingPct = (1 - res.AvgEnclosureW/baseW) * 100
	}
	return p, nil
}

// baseline replays w with no power saving and returns its average
// enclosure power.
func baseline(w *workload.Workload, cfg storage.Config) (float64, error) {
	res, err := replay.Execute(replay.Run{
		Catalog:    w.Catalog,
		Records:    w.Records,
		Placement:  w.Placement,
		Storage:    cfg,
		Policy:     policy.NoPowerSaving{},
		Duration:   w.Duration,
		ClosedLoop: w.ClosedLoop,
	})
	if err != nil {
		return 0, err
	}
	return res.AvgEnclosureW, nil
}

// sweepTable renders sweep points.
func sweepTable(title string, pts []SweepPoint) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"value", "encl W", "saving", "response", "migrated", "spinups"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			p.Label,
			fmt.Sprintf("%.1f", p.AvgEnclosureW),
			fmt.Sprintf("%.1f%%", p.SavingPct),
			p.RespMean.Round(10 * time.Microsecond).String(),
			fmtBytes(p.MigratedBytes),
			fmt.Sprintf("%d", p.SpinUps),
		})
	}
	return t
}

// SweepCacheSizes varies the preload and write-delay partitions together
// (Table II fixes both at 500 MB within the 2 GB cache).
func SweepCacheSizes(w *workload.Workload, sizes []int64) (*Table, error) {
	base, err := baseline(w, StorageFor(w))
	if err != nil {
		return nil, err
	}
	var pts []SweepPoint
	for _, size := range sizes {
		cfg := StorageFor(w)
		cfg.PreloadCacheBytes = size
		cfg.WriteDelayCacheBytes = size
		if cfg.CacheBytes < 2*size {
			cfg.CacheBytes = 2 * size
		}
		params := core.DefaultParams()
		params.PreloadCacheBytes = size
		params.WriteDelayCacheBytes = size
		p, err := sweepRun(w, cfg, params, base, fmtBytes(size))
		if err != nil {
			return nil, err
		}
		pts = append(pts, p)
	}
	return sweepTable("Sweep — preload/write-delay cache size ("+w.Name+")", pts), nil
}

// SweepSpinDownTimeout varies the spin-down timeout relative to the
// break-even time. Below break-even the enclosure pays more energy to
// wake than it saved sleeping; far above it the idle interval is mostly
// wasted awake.
func SweepSpinDownTimeout(w *workload.Workload, timeouts []time.Duration) (*Table, error) {
	base, err := baseline(w, StorageFor(w))
	if err != nil {
		return nil, err
	}
	var pts []SweepPoint
	for _, to := range timeouts {
		cfg := StorageFor(w)
		cfg.SpinDownTimeout = to
		p, err := sweepRun(w, cfg, core.DefaultParams(), base, to.String())
		if err != nil {
			return nil, err
		}
		pts = append(pts, p)
	}
	return sweepTable("Sweep — spin-down timeout ("+w.Name+")", pts), nil
}

// SweepMigrationBps varies the data-migration throttle (§V-A).
func SweepMigrationBps(w *workload.Workload, rates []float64) (*Table, error) {
	base, err := baseline(w, StorageFor(w))
	if err != nil {
		return nil, err
	}
	var pts []SweepPoint
	for _, bps := range rates {
		cfg := StorageFor(w)
		cfg.MigrationBps = bps
		label := fmt.Sprintf("%.0f MB/s", bps/(1<<20))
		p, err := sweepRun(w, cfg, core.DefaultParams(), base, label)
		if err != nil {
			return nil, err
		}
		pts = append(pts, p)
	}
	return sweepTable("Sweep — migration throttle ("+w.Name+")", pts), nil
}

// SweepAlpha varies the monitoring-period coefficient α (§IV-H).
func SweepAlpha(w *workload.Workload, alphas []float64) (*Table, error) {
	base, err := baseline(w, StorageFor(w))
	if err != nil {
		return nil, err
	}
	var pts []SweepPoint
	for _, a := range alphas {
		params := core.DefaultParams()
		params.Alpha = a
		p, err := sweepRun(w, StorageFor(w), params, base, fmt.Sprintf("%.2f", a))
		if err != nil {
			return nil, err
		}
		pts = append(pts, p)
	}
	return sweepTable("Sweep — monitoring coefficient alpha ("+w.Name+")", pts), nil
}

// DefaultSweeps runs every sweep on w with canonical value grids.
func DefaultSweeps(w *workload.Workload) ([]*Table, error) {
	var tables []*Table
	t, err := SweepCacheSizes(w, []int64{125 << 20, 250 << 20, 500 << 20, 1 << 30})
	if err != nil {
		return nil, err
	}
	tables = append(tables, t)
	t, err = SweepSpinDownTimeout(w, []time.Duration{13 * time.Second, 26 * time.Second, 52 * time.Second, 104 * time.Second, 208 * time.Second})
	if err != nil {
		return nil, err
	}
	tables = append(tables, t)
	t, err = SweepMigrationBps(w, []float64{50 << 20, 100 << 20, 200 << 20, 400 << 20})
	if err != nil {
		return nil, err
	}
	tables = append(tables, t)
	t, err = SweepAlpha(w, []float64{1.05, 1.2, 1.5, 2.0})
	if err != nil {
		return nil, err
	}
	tables = append(tables, t)
	t, err = CompareMedia(w)
	if err != nil {
		return nil, err
	}
	tables = append(tables, t)
	return tables, nil
}

// CompareMedia replays w under every policy on the HDD test bed and on
// an all-flash variant (powermodel.SSDParams, with the spin-down timeout
// and the policies' break-even set to the flash-derived value). It
// quantifies §VIII-D's claim that the method carries over to SSDs.
func CompareMedia(w *workload.Workload) (*Table, error) {
	t := &Table{
		Title:  "Media comparison — HDD vs SSD enclosures (" + w.Name + ")",
		Header: []string{"policy", "HDD W", "HDD saving", "SSD W", "SSD saving"},
	}
	type media struct {
		cfg    storage.Config
		params core.Params
	}
	hdd := media{cfg: StorageFor(w), params: core.DefaultParams()}
	ssdCfg := StorageFor(w)
	ssdCfg.Power = powermodel.SSDParams()
	ssdBE := ssdCfg.Power.BreakEven()
	ssdCfg.SpinDownTimeout = ssdBE
	ssdParams := core.DefaultParams()
	ssdParams.BreakEven = ssdBE
	ssdParams.MinPeriod = 520 * time.Second
	ssdParams.ReplanCooldown = 5 * ssdBE
	ssd := media{cfg: ssdCfg, params: ssdParams}

	type row struct{ w, saving [2]float64 }
	rows := map[string]*row{}
	order := []string{"none", "timeout", "esm"}
	for mi, m := range []media{hdd, ssd} {
		var baseW float64
		for _, name := range order {
			var pol policy.Policy
			switch name {
			case "none":
				pol = policy.NoPowerSaving{}
			case "timeout":
				pol = policy.FixedTimeout{}
			case "esm":
				esm, err := core.NewESM(m.params)
				if err != nil {
					return nil, err
				}
				pol = esm
			}
			res, err := replay.Execute(replay.Run{
				Catalog:    w.Catalog,
				Records:    w.Records,
				Placement:  w.Placement,
				Storage:    m.cfg,
				Policy:     pol,
				Duration:   w.Duration,
				ClosedLoop: w.ClosedLoop,
			})
			if err != nil {
				return nil, err
			}
			if rows[name] == nil {
				rows[name] = &row{}
			}
			rows[name].w[mi] = res.AvgEnclosureW
			if name == "none" {
				baseW = res.AvgEnclosureW
			}
			if baseW > 0 {
				rows[name].saving[mi] = (1 - res.AvgEnclosureW/baseW) * 100
			}
		}
	}
	for _, name := range order {
		r := rows[name]
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1f", r.w[0]),
			fmt.Sprintf("%.1f%%", r.saving[0]),
			fmt.Sprintf("%.1f", r.w[1]),
			fmt.Sprintf("%.1f%%", r.saving[1]),
		})
	}
	return t, nil
}
