// Package experiments contains the harnesses that regenerate every table
// and figure of the paper's evaluation (§VI Fig. 6, §VII Figs 8–19, plus
// the §VII-D placement-determination counts). Each harness returns a
// formatted table; cmd/esmbench prints them and bench_test.go reports
// the headline numbers as benchmark metrics.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"esm/internal/core"
	"esm/internal/ddr"
	"esm/internal/faults"
	"esm/internal/maid"
	"esm/internal/metrics"
	"esm/internal/monitor"
	"esm/internal/obs"
	"esm/internal/offload"
	"esm/internal/pdc"
	"esm/internal/policy"
	"esm/internal/replay"
	"esm/internal/storage"
	"esm/internal/workload"
)

// PolicyFactory builds fresh policy instances (policies are stateful, so
// every replay needs its own). A failing constructor surfaces as an
// error from the evaluation harness, wrapped with the workload/policy
// label — never a panic inside a sweep worker.
type PolicyFactory struct {
	Name string
	New  func() (policy.Policy, error)
}

// Simple constructor adapts an infallible policy constructor to the
// factory signature.
func Simple(fn func() policy.Policy) func() (policy.Policy, error) {
	return func() (policy.Policy, error) { return fn(), nil }
}

// newESM adapts core.NewESM to the factory signature (an explicit nil
// interface on error, not a typed-nil *core.ESM).
func newESM(params core.Params) (policy.Policy, error) {
	p, err := core.NewESM(params)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// DefaultPolicies returns the paper's comparison set: no power saving,
// the proposed method, PDC and DDR, parameterised per Table II.
func DefaultPolicies() []PolicyFactory {
	return []PolicyFactory{
		{Name: "none", New: Simple(func() policy.Policy { return policy.NoPowerSaving{} })},
		{Name: "esm", New: func() (policy.Policy, error) { return newESM(core.DefaultParams()) }},
		{Name: "pdc", New: Simple(func() policy.Policy { return pdc.New(pdc.DefaultConfig()) })},
		{Name: "ddr", New: Simple(func() policy.Policy { return ddr.New(ddr.DefaultConfig()) })},
	}
}

// PoliciesFor returns the comparison set adjusted for a time-scaled run:
// PDC's 30-minute reorganisation period shrinks with the scale (it would
// otherwise never fire inside a shortened trace), while the proposed
// method and DDR keep their paper parameters — their cadences (520 s
// initial period, 200 ms ticks) already fit scaled runs.
func PoliciesFor(scale float64) []PolicyFactory {
	out := DefaultPolicies()
	if scale >= 1 {
		return out
	}
	for i := range out {
		if out[i].Name != "pdc" {
			continue
		}
		cfg := pdc.DefaultConfig()
		cfg.Period = time.Duration(float64(cfg.Period) * scale)
		if min := 4 * time.Minute; cfg.Period < min {
			cfg.Period = min
		}
		out[i].New = Simple(func() policy.Policy { return pdc.New(cfg) })
	}
	return out
}

// DefaultScale returns the benchmark-default time scale for kind: the
// smallest scale at which every policy's dynamics (warm-up, monitoring
// periods, migrations) still fit inside the run.
func DefaultScale(kind Kind) float64 {
	switch kind {
	case OLTP:
		return 0.35
	case DSS:
		return 0.35
	case CloudBlock:
		// The full 6 h trace runs ~100M records; 10% (36 min, ~10M
		// records) still spans several ESM planning periods while keeping
		// the default four-policy comparison to a couple of minutes.
		return 0.1
	default:
		return 0.5
	}
}

// Kind selects an evaluated application workload.
type Kind string

// The three evaluated applications (Table I), plus the cloud-block
// multi-tenant workload that scales the evaluation past the paper.
const (
	FileServer Kind = "fileserver"
	OLTP       Kind = "oltp"
	DSS        Kind = "dss"
	CloudBlock Kind = "cloudblock"
)

// Kinds lists the paper's three applications in paper order (the
// cloud-block workload is run explicitly, not as part of the paper
// reproduction sweep).
func Kinds() []Kind { return []Kind{FileServer, OLTP, DSS} }

// Build generates the workload for kind at the given time-scale factor
// (1.0 = the paper's full duration).
func Build(kind Kind, scale float64) (*workload.Workload, error) {
	switch kind {
	case FileServer:
		return workload.GenerateFileServer(workload.DefaultFileServerConfig().Scaled(scale))
	case OLTP:
		return workload.GenerateOLTP(workload.DefaultOLTPConfig().Scaled(scale))
	case DSS:
		return workload.GenerateDSS(workload.DefaultDSSConfig().Scaled(scale))
	case CloudBlock:
		return workload.GenerateCloudBlock(workload.DefaultCloudBlockConfig().Scaled(scale))
	default:
		return nil, fmt.Errorf("experiments: unknown workload kind %q", kind)
	}
}

// StorageFor returns the test-bed storage configuration sized for w.
func StorageFor(w *workload.Workload) storage.Config {
	return storage.DefaultConfig(w.Enclosures)
}

// Eval holds the replay results of one workload under every policy; the
// per-figure formatters read from it so the expensive runs happen once.
type Eval struct {
	Workload *workload.Workload
	Results  []*replay.Result // aligned with Policies
	Policies []PolicyFactory
}

// Evaluate replays w under every policy.
func Evaluate(w *workload.Workload, factories []PolicyFactory) (*Eval, error) {
	return EvaluateWithRecorder(w, factories, nil)
}

// EvaluateWithRecorder replays w under every policy, attaching the
// telemetry recorder returned by rec for each policy name. rec may be
// nil (no telemetry) and may return nil for individual policies.
//
// The replays run concurrently on the scheduler's worker pool (bounded
// by SetParallelism); each run gets its own policy instance, clock and
// trace source, so the results are identical to a serial run and come
// back in factory order. Jobs are constructed — including the rec
// callbacks — serially, before any worker starts.
func EvaluateWithRecorder(w *workload.Workload, factories []PolicyFactory, rec func(policy string) *obs.Recorder) (*Eval, error) {
	return EvaluateWithFaults(w, factories, rec, nil)
}

// EvaluateWithFaults replays w under every policy with the fault
// scenario fc injected into each run. Every replay builds its own
// injector from fc, so each policy sees the same seeded fault sequence
// and the comparison isolates the policies' degraded-mode behaviour.
// fc may be nil (fault-free).
func EvaluateWithFaults(w *workload.Workload, factories []PolicyFactory, rec func(policy string) *obs.Recorder, fc *faults.Config) (*Eval, error) {
	return EvaluateWithObservers(w, factories, rec, nil, fc)
}

// EvaluateWithObservers replays w under every policy with both
// observers attached: the telemetry recorder and the span tracer
// returned by rec and trc for each policy name. Either callback may be
// nil, and may return nil for individual policies. Each policy must
// get its own tracer (its latency breakdown, attribution ledger and
// sink describe exactly one run); esmbench hands out one Perfetto file
// per policy. Tracers are not closed here — the caller owns the sinks.
func EvaluateWithObservers(w *workload.Workload, factories []PolicyFactory, rec func(policy string) *obs.Recorder, trc func(policy string) *obs.Tracer, fc *faults.Config) (*Eval, error) {
	return EvaluateOpts(w, factories, Observers{Recorder: rec, Tracer: trc, Faults: fc})
}

// Observers bundles the optional per-run observation surfaces of an
// evaluation. Every callback may be nil, and may return nil for
// individual policies; each run needs its own tracer and flight
// recorder (both describe exactly one replay).
type Observers struct {
	// Recorder supplies the telemetry event recorder per policy.
	Recorder func(policy string) *obs.Recorder
	// Tracer supplies the per-I/O span tracer per policy.
	Tracer func(policy string) *obs.Tracer
	// Flight supplies the whole-system flight recorder per policy.
	Flight func(policy string) *obs.FlightRecorder
	// Alerts supplies the watchdog per policy (evaluated on the flight
	// sampling grid; the summary lands in Result.Alerts and the run
	// manifest). rec is the run's recorder — the one Recorder returned
	// for the same policy, or nil — so alert transitions can share the
	// run's event stream.
	Alerts func(policy string, rec *obs.Recorder) *obs.Watchdog
	// Provenance supplies the decision-provenance recorder per policy;
	// the roll-up lands in Result.Provenance and the run manifest, the
	// rows in Result.ProvSeries.
	Provenance func(policy string) *obs.Provenance
	// Faults is the fault scenario injected into every run.
	Faults *faults.Config
}

// EvaluateOpts replays w under every policy with the given observers.
// The replays run concurrently on the scheduler's worker pool; jobs —
// including every observer callback and policy construction — are built
// serially before any worker starts, so a failing PolicyFactory returns
// a labelled error instead of panicking inside a worker.
func EvaluateOpts(w *workload.Workload, factories []PolicyFactory, o Observers) (*Eval, error) {
	ev := &Eval{Workload: w, Policies: factories}
	jobs := make([]runJob, 0, len(factories))
	for _, f := range factories {
		pol, err := f.New()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", w.Name+"/"+f.Name, err)
		}
		run := replay.Run{
			Catalog:    w.Catalog,
			Source:     w.Source(),
			Placement:  w.Placement,
			Storage:    StorageFor(w),
			Policy:     pol,
			Duration:   w.Duration,
			ClosedLoop: w.ClosedLoop,
			Shards:     Shards(),
			Faults:     o.Faults,
		}
		if o.Recorder != nil {
			run.Recorder = o.Recorder(f.Name)
		}
		if o.Tracer != nil {
			run.Tracer = o.Tracer(f.Name)
		}
		if o.Flight != nil {
			run.Series = o.Flight(f.Name)
		}
		if o.Alerts != nil {
			run.Alerts = o.Alerts(f.Name, run.Recorder)
		}
		if o.Provenance != nil {
			run.Provenance = o.Provenance(f.Name)
		}
		for _, win := range w.Windows {
			run.Windows = append(run.Windows, replay.Window{Name: win.Name, Start: win.Start, End: win.End})
		}
		jobs = append(jobs, runJob{label: w.Name + "/" + f.Name, run: run})
	}
	results, err := executeJobs(jobs)
	if err != nil {
		return nil, err
	}
	ev.Results = results
	return ev, nil
}

// Result returns the replay result for the named policy, or nil.
func (ev *Eval) Result(name string) *replay.Result {
	for i, f := range ev.Policies {
		if f.Name == name {
			return ev.Results[i]
		}
	}
	return nil
}

// Table is a formatted experiment report.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(out io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(out, "== %s ==\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(out, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
}

// PatternMix classifies every data item of w over the whole trace with
// the paper's break-even time and returns the Fig. 6 distribution. The
// trace is consumed as a stream, so paper-scale workloads classify
// without ever being materialized.
func PatternMix(w *workload.Workload, breakEven time.Duration) core.PatternMix {
	mon := monitor.NewAppMonitor(w.Catalog.Len(), breakEven)
	src := w.Source()
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		mon.Record(rec)
	}
	stats := mon.EndPeriod(w.Duration)
	return core.MixOf(stats)
}

// Fig6Table renders the logical I/O pattern mix of every application.
func Fig6Table(mixes map[Kind]core.PatternMix) *Table {
	t := &Table{
		Title:  "Fig. 6 — Logical I/O patterns of data items",
		Header: []string{"application", "P0", "P1", "P2", "P3", "items"},
	}
	for _, k := range Kinds() {
		m, ok := mixes[k]
		if !ok {
			continue
		}
		t.Rows = append(t.Rows, []string{
			string(k),
			fmt.Sprintf("%.1f%%", m.Frac(core.P0)*100),
			fmt.Sprintf("%.1f%%", m.Frac(core.P1)*100),
			fmt.Sprintf("%.1f%%", m.Frac(core.P2)*100),
			fmt.Sprintf("%.1f%%", m.Frac(core.P3)*100),
			fmt.Sprintf("%d", m.Total),
		})
	}
	return t
}

// PowerTable renders a Fig. 8/11/14-style power comparison: average
// enclosure power per policy plus the reduction against "none".
func PowerTable(title string, ev *Eval) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"policy", "encl W", "total W", "saving", "determinations", "spinups"},
	}
	base := ev.Result("none")
	for i, f := range ev.Policies {
		r := ev.Results[i]
		saving := "-"
		if base != nil && f.Name != "none" && base.AvgEnclosureW > 0 {
			saving = fmt.Sprintf("%.1f%%", (1-r.AvgEnclosureW/base.AvgEnclosureW)*100)
		}
		t.Rows = append(t.Rows, []string{
			f.Name,
			fmt.Sprintf("%.1f", r.AvgEnclosureW),
			fmt.Sprintf("%.1f", r.AvgTotalW),
			saving,
			fmt.Sprintf("%d", r.Determinations),
			fmt.Sprintf("%d", r.SpinUps),
		})
	}
	return t
}

// LatencyTable renders each policy's traced latency breakdown: one row
// per serve cause and per I/O phase, with the histogram percentiles.
// Policies whose run carried no tracer are skipped.
func LatencyTable(title string, ev *Eval) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"policy", "segment", "count", "mean", "p50", "p95", "p99", "max"},
	}
	row := func(policy, kind string, r obs.LatencyRow) []string {
		return []string{
			policy, kind + ":" + r.Name,
			fmt.Sprintf("%d", r.Count),
			r.Mean.String(), r.P50.String(), r.P95.String(), r.P99.String(), r.Max.String(),
		}
	}
	for i, f := range ev.Policies {
		sum := ev.Results[i].Latency
		if sum == nil {
			continue
		}
		t.Rows = append(t.Rows, row(f.Name, "all", sum.Total))
		for _, r := range sum.ByCause {
			t.Rows = append(t.Rows, row(f.Name, "cause", r))
		}
		for _, r := range sum.ByPhase {
			t.Rows = append(t.Rows, row(f.Name, "phase", r))
		}
	}
	return t
}

// AttributionTable renders each policy's traced energy attribution per
// pattern class and per management function. Policies whose run
// carried no tracer are skipped.
func AttributionTable(title string, ev *Eval) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"policy", "bucket", "joules", "share"},
	}
	for i, f := range ev.Policies {
		a := ev.Results[i].Attribution
		if a == nil || a.TotalJ <= 0 {
			continue
		}
		add := func(bucket string, j float64) {
			t.Rows = append(t.Rows, []string{
				f.Name, bucket,
				fmt.Sprintf("%.1f", j),
				fmt.Sprintf("%.1f%%", j/a.TotalJ*100),
			})
		}
		for c := 0; c < 5; c++ {
			add("class:"+obs.ClassName(c), a.ByClass[c])
		}
		for fn := obs.EnergyFunc(0); fn < obs.EnergyFuncCount; fn++ {
			add("func:"+fn.String(), a.ByFunc[fn])
		}
	}
	return t
}

// FaultTable summarises each policy's behaviour under an injected fault
// scenario: the injected fault load, the operations it killed, and how
// often the policy fell back to degraded mode.
func FaultTable(title string, ev *Eval) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"policy", "spinup fails", "exhausted", "io errors", "failed app I/O", "failed migr", "degradations"},
	}
	for i, f := range ev.Policies {
		r := ev.Results[i]
		c := r.Faults
		t.Rows = append(t.Rows, []string{
			f.Name,
			fmt.Sprintf("%d", c.SpinUpFailures),
			fmt.Sprintf("%d", c.SpinUpExhausted),
			fmt.Sprintf("%d", c.TransientIOErrors),
			fmt.Sprintf("%d", c.FailedAppIOs),
			fmt.Sprintf("%d", c.FailedMigrations),
			fmt.Sprintf("%d", r.Degradations),
		})
	}
	return t
}

// ResponseTable renders a Fig. 9-style response-time comparison.
func ResponseTable(title string, ev *Eval) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"policy", "mean", "read mean", "p99", "max", "cache hits"},
	}
	for i, f := range ev.Policies {
		r := ev.Results[i]
		t.Rows = append(t.Rows, []string{
			f.Name,
			r.Resp.Mean().String(),
			r.Resp.ReadMean().String(),
			r.Resp.Percentile(0.99).String(),
			r.Resp.Max().String(),
			fmt.Sprintf("%d", r.Storage.CacheHits),
		})
	}
	return t
}

// MigrationTable renders a Fig. 10/13/16-style migrated-data comparison.
func MigrationTable(title string, ev *Eval) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"policy", "migrated", "migrations", "skipped"},
	}
	for i, f := range ev.Policies {
		r := ev.Results[i]
		t.Rows = append(t.Rows, []string{
			f.Name,
			fmtBytes(r.Storage.MigratedBytes),
			fmt.Sprintf("%d", r.Storage.Migrations),
			fmt.Sprintf("%d", r.Storage.MigrationsSkipped),
		})
	}
	return t
}

// ThroughputTable renders the Fig. 12 derived TPC-C throughput.
func ThroughputTable(ev *Eval) *Table {
	t := &Table{
		Title:  "Fig. 12 — TPC-C transaction throughput (derived, tpmC)",
		Header: []string{"policy", "tpmC", "vs none"},
	}
	base := ev.Result("none")
	if base == nil {
		return t
	}
	for i, f := range ev.Policies {
		r := ev.Results[i]
		tpmc := metrics.DerivedThroughput(ev.Workload.BaseThroughput, base.Resp.ReadMean(), r.Resp.ReadMean())
		t.Rows = append(t.Rows, []string{
			f.Name,
			fmt.Sprintf("%.1f", tpmc),
			fmt.Sprintf("%+.1f%%", (tpmc/ev.Workload.BaseThroughput-1)*100),
		})
	}
	return t
}

// QueryResponseTable renders the Fig. 15 derived TPC-H query responses
// for the named queries (the paper reports Q2, Q7 and Q21).
func QueryResponseTable(ev *Eval, queries []string) *Table {
	t := &Table{
		Title:  "Fig. 15 — TPC-H query response time (derived)",
		Header: append([]string{"policy"}, queries...),
	}
	base := ev.Result("none")
	if base == nil {
		return t
	}
	baseWin := map[string]replay.WindowResult{}
	qOrig := map[string]time.Duration{}
	for _, wr := range base.Windows {
		baseWin[wr.Name] = wr
	}
	for _, w := range ev.Workload.Windows {
		qOrig[w.Name] = w.End - w.Start
	}
	for i, f := range ev.Policies {
		row := []string{f.Name}
		winOf := map[string]replay.WindowResult{}
		for _, wr := range ev.Results[i].Windows {
			winOf[wr.Name] = wr
		}
		for _, q := range queries {
			d := metrics.DerivedQueryResponse(qOrig[q], winOf[q].ReadSum, baseWin[q].ReadSum)
			row = append(row, d.Round(time.Second).String())
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// IntervalTable renders the Figs 17–19 cumulative interval analysis: the
// total length of enclosure-level I/O intervals at least as long as each
// threshold, per policy.
func IntervalTable(title string, ev *Eval, thresholds []time.Duration) *Table {
	header := []string{"policy"}
	for _, th := range thresholds {
		header = append(header, ">="+th.String())
	}
	t := &Table{Title: title, Header: header}
	for i, f := range ev.Policies {
		row := []string{f.Name}
		for _, th := range thresholds {
			row = append(row, metrics.CumulativeAbove(ev.Results[i].Monitor, th).Round(time.Second).String())
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// DefaultIntervalThresholds are the x-axis points used for Figs 17–19.
func DefaultIntervalThresholds() []time.Duration {
	return []time.Duration{52 * time.Second, 2 * time.Minute, 8 * time.Minute, 32 * time.Minute}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<40:
		return fmt.Sprintf("%.2f TB", float64(n)/(1<<40))
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// AblationPolicies returns the proposed method plus variants with one
// lever removed each (data placement, preload, write delay), framed by
// the no-power-saving and plain-timeout baselines. It drives the
// design-choice study: how much of the saving does each §II-E mechanism
// contribute?
func AblationPolicies() []PolicyFactory {
	esmVariant := func(name string, mutate func(*core.Params)) PolicyFactory {
		return PolicyFactory{Name: name, New: func() (policy.Policy, error) {
			params := core.DefaultParams()
			mutate(&params)
			return newESM(params)
		}}
	}
	return []PolicyFactory{
		{Name: "none", New: Simple(func() policy.Policy { return policy.NoPowerSaving{} })},
		{Name: "timeout", New: Simple(func() policy.Policy { return policy.FixedTimeout{} })},
		esmVariant("esm", func(*core.Params) {}),
		esmVariant("esm-nomigrate", func(p *core.Params) { p.DisableMigration = true }),
		esmVariant("esm-nopreload", func(p *core.Params) { p.DisablePreload = true }),
		esmVariant("esm-nowdelay", func(p *core.Params) { p.DisableWriteDelay = true }),
	}
}

// sparkRunes are the eight-level block characters used for the power
// sparklines.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values scaled to [min, max] across the rune levels.
func sparkline(values []float64, min, max float64) string {
	if len(values) == 0 {
		return ""
	}
	if max <= min {
		max = min + 1
	}
	out := make([]rune, len(values))
	for i, v := range values {
		f := (v - min) / (max - min)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		out[i] = sparkRunes[int(f*float64(len(sparkRunes)-1)+0.5)]
	}
	return string(out)
}

// PowerSeriesChart renders per-policy power-over-time sparklines (the
// §III-B power-consumption records), all on a shared scale so the
// policies' duty cycles can be compared at a glance.
func PowerSeriesChart(title string, ev *Eval) *Table {
	t := &Table{Title: title, Header: []string{"policy", "enclosure power over time (shared scale)"}}
	var min, max float64
	first := true
	for _, r := range ev.Results {
		for _, v := range r.PowerSeries {
			if first || v < min {
				min = v
			}
			if first || v > max {
				max = v
			}
			first = false
		}
	}
	for i, f := range ev.Policies {
		series := ev.Results[i].PowerSeries
		// Downsample to at most 64 columns.
		step := (len(series) + 63) / 64
		if step < 1 {
			step = 1
		}
		var ds []float64
		for j := 0; j < len(series); j += step {
			var sum float64
			n := 0
			for k := j; k < j+step && k < len(series); k++ {
				sum += series[k]
				n++
			}
			ds = append(ds, sum/float64(n))
		}
		t.Rows = append(t.Rows, []string{f.Name, sparkline(ds, min, max)})
	}
	return t
}

// ExtendedPolicies returns the paper's comparison set plus the wider
// related-work baselines implemented in this repository: the plain
// spin-down timeout, MAID (cache disks, §VIII-B's archetype) and write
// off-loading (the FAST'08 system behind the MSR traces).
func ExtendedPolicies(scale float64) []PolicyFactory {
	out := PoliciesFor(scale)
	out = append(out,
		PolicyFactory{Name: "timeout", New: Simple(func() policy.Policy { return policy.FixedTimeout{} })},
		PolicyFactory{Name: "maid", New: Simple(func() policy.Policy { return maid.New(maid.DefaultConfig()) })},
		PolicyFactory{Name: "offload", New: Simple(func() policy.Policy { return offload.New(offload.DefaultConfig()) })},
	)
	return out
}

// StateMixTable renders each policy's aggregate enclosure state
// residency: what fraction of all enclosure-hours went to Active, Idle,
// Off and SpinUp. It decomposes the power savings of the comparison
// figures into their mechanism — time converted from Idle to Off.
func StateMixTable(title string, ev *Eval) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"policy", "active", "idle", "off", "spinup"},
	}
	for i, f := range ev.Policies {
		var mix replay.StateResidency
		n := float64(len(ev.Results[i].StateMix))
		if n == 0 {
			continue
		}
		for _, m := range ev.Results[i].StateMix {
			mix.Active += m.Active / n
			mix.Idle += m.Idle / n
			mix.Off += m.Off / n
			mix.SpinUp += m.SpinUp / n
		}
		t.Rows = append(t.Rows, []string{
			f.Name,
			fmt.Sprintf("%.1f%%", mix.Active*100),
			fmt.Sprintf("%.1f%%", mix.Idle*100),
			fmt.Sprintf("%.1f%%", mix.Off*100),
			fmt.Sprintf("%.1f%%", mix.SpinUp*100),
		})
	}
	return t
}
