// Worker-pool scheduler for the experiment matrix. Every (workload,
// policy, sweep-point) replay is independent — it has its own clock,
// event queue, array, policy instance and trace source — so the matrix
// can run concurrently. Results always come back in job order, making
// parallel runs byte-identical to serial ones.

package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"esm/internal/replay"
)

var (
	parMu       sync.Mutex
	parallelism int
	shards      int
	peakWorkers int
)

// SetParallelism bounds how many replays the schedulers run at once.
// n <= 0 restores the default (GOMAXPROCS).
func SetParallelism(n int) {
	parMu.Lock()
	defer parMu.Unlock()
	if n < 0 {
		n = 0
	}
	parallelism = n
}

// Parallelism returns the current replay concurrency bound.
func Parallelism() int {
	parMu.Lock()
	defer parMu.Unlock()
	if parallelism > 0 {
		return parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// SetShards sets the per-replay shard count: every open-loop replay the
// schedulers build runs on the sharded engine with n worker lanes.
// n <= 1 restores the serial engine. Results are byte-identical either
// way; sharding trades intra-replay parallelism against the scheduler's
// inter-replay parallelism, so it pays off when the matrix has fewer
// independent replays than cores.
func SetShards(n int) {
	parMu.Lock()
	defer parMu.Unlock()
	if n < 0 {
		n = 0
	}
	shards = n
}

// Shards returns the per-replay shard count (0 or 1 means serial).
func Shards() int {
	parMu.Lock()
	defer parMu.Unlock()
	return shards
}

// EffectiveParallelism returns the widest worker pool executeJobs has
// actually spawned so far in this process: the -parallel bound clamped
// to the largest job batch. It is what the bound really bought — asking
// for 64 workers on a 3-policy evaluation still runs 3-wide — and is
// what esmbench reports alongside GOMAXPROCS so over-asked bounds are
// visible instead of silently echoed back.
func EffectiveParallelism() int {
	parMu.Lock()
	defer parMu.Unlock()
	return peakWorkers
}

// noteWorkers records the worker count a batch actually ran with.
func noteWorkers(n int) {
	parMu.Lock()
	defer parMu.Unlock()
	if n > peakWorkers {
		peakWorkers = n
	}
}

// runJob is one schedulable replay. The label names the run
// (workload/policy, plus the sweep point where applicable) so failures
// from concurrent runs stay attributable.
type runJob struct {
	label string
	run   replay.Run
}

// executeJobs runs the jobs on a bounded worker pool and returns their
// results in job order. The jobs must be fully isolated: shared state is
// limited to read-only inputs (catalogs, placements, materialized
// records) and mutex-protected recorders/sinks. On failure the first
// error in job order is returned, wrapped with that job's label.
func executeJobs(jobs []runJob) ([]*replay.Result, error) {
	results := make([]*replay.Result, len(jobs))
	errs := make([]error, len(jobs))

	workers := Parallelism()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	noteWorkers(workers)
	if workers <= 1 {
		for i := range jobs {
			results[i], errs[i] = replay.Execute(jobs[i].run)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i], errs[i] = replay.Execute(jobs[i].run)
				}
			}()
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", jobs[i].label, err)
		}
	}
	return results, nil
}
