package experiments

import (
	"io"
	"strings"
	"testing"
	"time"

	"esm/internal/obs"
	"esm/internal/policy"
	"esm/internal/workload"
)

func schedulerWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	cfg := workload.DefaultSyntheticConfig()
	cfg.Duration = 20 * time.Minute
	w, err := workload.GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// renderTables flattens the three headline tables so parallel and serial
// evaluations can be compared byte for byte.
func renderTables(ev *Eval) string {
	var sb strings.Builder
	PowerTable("power", ev).Fprint(&sb)
	ResponseTable("resp", ev).Fprint(&sb)
	MigrationTable("mig", ev).Fprint(&sb)
	return sb.String()
}

// TestParallelEvaluateDeterministic checks the tentpole invariant: a
// parallel evaluation must be byte-identical to a serial one. Every
// replay has its own clock, RNG-free policy state and trace source, so
// concurrency must not leak into the results.
func TestParallelEvaluateDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("replay smoke test")
	}
	w := schedulerWorkload(t)
	pols := PoliciesFor(0.1)

	SetParallelism(1)
	defer SetParallelism(0)
	serial, err := Evaluate(w, pols)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	par, err := Evaluate(w, pols)
	if err != nil {
		t.Fatal(err)
	}

	got, want := renderTables(par), renderTables(serial)
	if got != want {
		t.Fatalf("parallel tables differ from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	for i := range serial.Results {
		s, p := serial.Results[i], par.Results[i]
		if s.AvgEnclosureW != p.AvgEnclosureW || s.EnergyJ != p.EnergyJ ||
			s.Resp.Count() != p.Resp.Count() || s.Storage.MigratedBytes != p.Storage.MigratedBytes {
			t.Fatalf("%s: serial/parallel results diverge", s.PolicyName)
		}
	}
}

// TestSchedulerSharedSink drives concurrent replays that all publish
// telemetry into one shared sink and registry. Run under -race (the CI
// race step does) this verifies the scheduler's isolation contract:
// cross-run sharing is confined to mutex-protected observers.
func TestSchedulerSharedSink(t *testing.T) {
	if testing.Short() {
		t.Skip("replay smoke test")
	}
	w := schedulerWorkload(t)
	sink := obs.NewJSONLSink(io.Discard)
	reg := obs.NewRegistry()

	SetParallelism(4)
	defer SetParallelism(0)
	ev, err := EvaluateWithRecorder(w, PoliciesFor(0.1), func(string) *obs.Recorder {
		return obs.New(obs.Options{Sink: sink, Registry: reg})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Results) != 4 {
		t.Fatalf("%d results", len(ev.Results))
	}
}

// TestSchedulerErrorLabel checks that a replay failing inside the worker
// pool reports which (workload, policy) run raised it.
func TestSchedulerErrorLabel(t *testing.T) {
	w := schedulerWorkload(t)
	recs := w.EnsureRecords()
	if len(recs) < 2 {
		t.Fatal("workload too small")
	}
	// Corrupt the materialized trace: swap the first two records so the
	// replay's order check trips.
	recs[0], recs[1] = recs[1], recs[0]
	defer func() { recs[0], recs[1] = recs[1], recs[0] }()
	if recs[0].Time == recs[1].Time {
		t.Skip("first two records coincide; swap is not out of order")
	}

	SetParallelism(4)
	defer SetParallelism(0)
	_, err := Evaluate(w, []PolicyFactory{
		{Name: "none", New: Simple(func() policy.Policy { return policy.NoPowerSaving{} })},
	})
	if err == nil {
		t.Fatal("unsorted trace accepted")
	}
	want := w.Name + "/none"
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not carry run label %q", err, want)
	}
	if !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("error %q lost the cause", err)
	}
}

// TestSweepBatchesThroughScheduler runs one sweep at parallelism 4 and 1
// and requires identical rows, covering the sweeps.go routing.
func TestSweepBatchesThroughScheduler(t *testing.T) {
	if testing.Short() {
		t.Skip("replay smoke test")
	}
	w := schedulerWorkload(t)

	SetParallelism(1)
	defer SetParallelism(0)
	serial, err := SweepSpinDownTimeout(w, []time.Duration{26 * time.Second, 104 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	par, err := SweepSpinDownTimeout(w, []time.Duration{26 * time.Second, 104 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	serial.Fprint(&a)
	par.Fprint(&b)
	if a.String() != b.String() {
		t.Fatalf("sweep differs:\n--- serial ---\n%s\n--- parallel ---\n%s", a.String(), b.String())
	}
}

// TestReportAddEval exercises the bench-json serialization.
func TestReportAddEval(t *testing.T) {
	ev := fakeEval(t)
	rp := &Report{Date: "2026-01-01", Parallel: 4}
	rp.AddEval(ev, 0.5, 1.25)
	if len(rp.Figures) != 2 {
		t.Fatalf("%d figures", len(rp.Figures))
	}
	if rp.Figures[0].Policy != "none" || rp.Figures[1].Policy != "esm" {
		t.Fatalf("figure order %q, %q", rp.Figures[0].Policy, rp.Figures[1].Policy)
	}
	if rp.Figures[0].SavingPct != 0 {
		t.Fatalf("baseline saving %v", rp.Figures[0].SavingPct)
	}
	if rp.Figures[1].SavingPct <= 0 {
		t.Fatalf("esm saving %v", rp.Figures[1].SavingPct)
	}
	if rp.Figures[1].ThroughputTpmC <= rp.Figures[0].ThroughputTpmC {
		t.Fatalf("throughput not derived: %v vs %v", rp.Figures[1].ThroughputTpmC, rp.Figures[0].ThroughputTpmC)
	}
	var sb strings.Builder
	if err := rp.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"date": "2026-01-01"`, `"parallel": 4`, `"avg_enclosure_w"`, `"policy": "esm"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("report JSON missing %s:\n%s", want, out)
		}
	}
}
