package policy

import (
	"testing"
	"time"

	"esm/internal/simclock"
	"esm/internal/storage"
	"esm/internal/trace"
)

func testContext(t *testing.T, n int) (*Context, *storage.Array) {
	t.Helper()
	cat := trace.NewCatalog()
	id := cat.Add("x", 1<<20)
	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := storage.New(storage.DefaultConfig(n), clk, evq, cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.Place(id, 0); err != nil {
		t.Fatal(err)
	}
	return &Context{Array: arr, Catalog: cat, Clock: clk, Queue: evq, End: time.Hour}, arr
}

func TestNoPowerSavingKeepsEverythingOn(t *testing.T) {
	ctx, arr := testContext(t, 3)
	var p NoPowerSaving
	p.Init(ctx)
	for e := 0; e < 3; e++ {
		if arr.SpinDownEnabled(e) {
			t.Fatalf("enclosure %d spin-down enabled under no-power-saving", e)
		}
	}
	ctx.Queue.RunUntil(ctx.Clock, 30*time.Minute)
	arr.Finish()
	for e := 0; e < 3; e++ {
		if !arr.EnclosureOn(e, ctx.Clock.Now()) {
			t.Fatalf("enclosure %d powered off", e)
		}
	}
	if p.Name() != "none" || p.Determinations() != 0 {
		t.Fatal("identity accessors wrong")
	}
	p.OnLogical(trace.LogicalRecord{})
	p.OnPhysical(trace.PhysicalRecord{})
	p.OnPower(0, 0, true)
	p.Finish(time.Hour)
}

func TestFixedTimeoutSpinsEverythingDown(t *testing.T) {
	ctx, arr := testContext(t, 3)
	var p FixedTimeout
	p.Init(ctx)
	ctx.Queue.RunUntil(ctx.Clock, 30*time.Minute)
	arr.Finish()
	for e := 0; e < 3; e++ {
		if arr.EnclosureOn(e, ctx.Clock.Now()) {
			t.Fatalf("idle enclosure %d still on under fixed timeout", e)
		}
	}
	if p.Name() != "timeout" || p.Determinations() != 0 {
		t.Fatal("identity accessors wrong")
	}
	p.OnLogical(trace.LogicalRecord{})
	p.OnPhysical(trace.PhysicalRecord{})
	p.OnPower(0, 0, false)
	p.Finish(time.Hour)
}
