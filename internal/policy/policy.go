// Package policy defines the power-saving policy abstraction the trace
// replay engine drives, plus two reference baselines: NoPowerSaving (the
// paper's "without power saving" runs) and FixedTimeout (plain per-device
// spin-down, the behaviour of storage-level heuristics with no
// application knowledge at all).
//
// A policy observes the logical I/O stream (application level), the
// physical I/O stream (enclosure level) and power transitions, and acts
// on the array: enabling power-off per enclosure, migrating data, and
// configuring the preload and write-delay cache functions. Policies
// schedule their own periodic work on the shared event queue.
package policy

import (
	"time"

	"esm/internal/simclock"
	"esm/internal/storage"
	"esm/internal/trace"
)

// Context is the runtime a policy operates in.
type Context struct {
	// Array is the storage unit under management.
	Array *storage.Array
	// Catalog names the data items.
	Catalog *trace.Catalog
	// Clock is the shared virtual clock.
	Clock *simclock.Clock
	// Queue is the shared event queue; policies schedule periodic work
	// (monitoring-period ends, re-scans) on it.
	Queue *simclock.EventQueue
	// End is the replay horizon: events scheduled past it never fire.
	End time.Duration
}

// Policy is a storage power-saving method under evaluation.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Init is called once before replay starts.
	Init(ctx *Context)
	// OnLogical observes one application I/O just before it is submitted.
	OnLogical(rec trace.LogicalRecord)
	// OnPhysical observes one physical I/O issued to an enclosure.
	OnPhysical(rec trace.PhysicalRecord)
	// OnPower observes an enclosure power transition.
	OnPower(enc int, at time.Duration, on bool)
	// Finish is called once after the last event, before metrics are read.
	Finish(now time.Duration)
	// Determinations returns how many times the policy ran its data
	// placement determination, the paper's CPU-cost proxy (§VII-D).
	Determinations() int64
}

// NoPowerSaving leaves every enclosure spun up forever: the measurement
// baseline of the paper's figures.
type NoPowerSaving struct{}

// Name implements Policy.
func (NoPowerSaving) Name() string { return "none" }

// Init implements Policy; every enclosure keeps power-off disabled.
func (NoPowerSaving) Init(ctx *Context) {
	for e := 0; e < ctx.Array.Enclosures(); e++ {
		ctx.Array.SetSpinDownEnabled(e, false)
	}
}

// OnLogical implements Policy.
func (NoPowerSaving) OnLogical(trace.LogicalRecord) {}

// OnPhysical implements Policy.
func (NoPowerSaving) OnPhysical(trace.PhysicalRecord) {}

// OnPower implements Policy.
func (NoPowerSaving) OnPower(int, time.Duration, bool) {}

// Finish implements Policy.
func (NoPowerSaving) Finish(time.Duration) {}

// Determinations implements Policy.
func (NoPowerSaving) Determinations() int64 { return 0 }

// FixedTimeout spins every enclosure down after its idle timeout with no
// data movement and no cache assistance — the classic device-level
// heuristic (hd-idle style). It exists as an ablation point between "no
// power saving" and the managed policies.
type FixedTimeout struct{}

// Name implements Policy.
func (FixedTimeout) Name() string { return "timeout" }

// Init implements Policy; every enclosure gets power-off enabled.
func (FixedTimeout) Init(ctx *Context) {
	for e := 0; e < ctx.Array.Enclosures(); e++ {
		ctx.Array.SetSpinDownEnabled(e, true)
	}
}

// OnLogical implements Policy.
func (FixedTimeout) OnLogical(trace.LogicalRecord) {}

// OnPhysical implements Policy.
func (FixedTimeout) OnPhysical(trace.PhysicalRecord) {}

// OnPower implements Policy.
func (FixedTimeout) OnPower(int, time.Duration, bool) {}

// Finish implements Policy.
func (FixedTimeout) Finish(time.Duration) {}

// Determinations implements Policy.
func (FixedTimeout) Determinations() int64 { return 0 }
