// Package faults is the deterministic fault-injection layer of the
// storage simulator. A seed-driven Injector decides, in simulation
// order, whether each enclosure spin-up attempt fails (the array retries
// with exponential backoff on the simulated clock), whether a physical
// I/O suffers a transient error (the enclosure retries it internally),
// and when the battery backing the storage cache is lost and recovered
// (the array destages immediately and disables the preload and
// write-delay functions until recovery).
//
// Two runs with the same Config — seed included — draw the same fault
// sequence, so faulted experiments are exactly reproducible and
// regressions diff cleanly.
//
// A nil *Injector is a valid, fully disabled injector: every method
// nil-checks its receiver, so fault-free simulations pay one pointer
// comparison per probe.
package faults

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Kind names a fault class.
type Kind string

// The fault vocabulary.
const (
	// KindSpinUpFail: one spin-up attempt failed; the enclosure backs
	// off and retries.
	KindSpinUpFail Kind = "spinup-fail"
	// KindSpinUpExhausted: every spin-up retry failed; the I/O that
	// needed the enclosure is abandoned.
	KindSpinUpExhausted Kind = "spinup-exhausted"
	// KindTransientIO: a physical I/O hit a transient enclosure error
	// and was retried internally after a short delay.
	KindTransientIO Kind = "io-transient"
	// KindBatteryFail: the cache battery was lost; dirty data is
	// destaged immediately and the cache functions are disabled.
	KindBatteryFail Kind = "battery-fail"
	// KindBatteryRecover: the cache battery is back; the cache
	// functions re-enable at the next policy determination.
	KindBatteryRecover Kind = "battery-recover"
)

// Event describes one injected fault on the simulated timeline.
type Event struct {
	// T is the virtual time of the fault.
	T time.Duration
	// Kind is the fault class.
	Kind Kind
	// Enclosure is the affected enclosure, or -1 for battery faults.
	Enclosure int
	// Attempt is the 1-based spin-up attempt number for spin-up faults.
	Attempt int
}

// Config describes a fault scenario. The zero value injects nothing;
// NewInjector fills the retry/backoff knobs with defaults when left
// zero, so a spec only states the fault load.
type Config struct {
	// Seed drives the injector's random draws. Runs with equal seeds
	// (and equal workloads) produce identical fault sequences.
	Seed int64
	// SpinUpFailProb is the probability that one spin-up attempt fails.
	SpinUpFailProb float64
	// SpinUpMaxRetries bounds the retries after a failed first attempt;
	// when they are exhausted the I/O fails with a storage fault error.
	// Zero means DefaultSpinUpMaxRetries.
	SpinUpMaxRetries int
	// SpinUpBackoff is the backoff before the first retry; it doubles
	// per attempt. Zero means DefaultSpinUpBackoff.
	SpinUpBackoff time.Duration
	// TransientIOProb is the probability that a physical I/O suffers a
	// transient error. The enclosure retries it internally: the I/O
	// occupies its server twice plus TransientIODelay.
	TransientIOProb float64
	// TransientIODelay is the internal retry delay of a transient I/O
	// error. Zero means DefaultTransientIODelay.
	TransientIODelay time.Duration
	// BatteryFailAt, when positive, is the virtual time the cache
	// battery is lost. BatteryRecoverAt, when greater, is when it comes
	// back; zero means it never recovers.
	BatteryFailAt    time.Duration
	BatteryRecoverAt time.Duration
}

// Retry/backoff defaults, used when the Config leaves them zero.
const (
	DefaultSpinUpMaxRetries = 6
	DefaultSpinUpBackoff    = 2 * time.Second
	DefaultTransientIODelay = 50 * time.Millisecond
)

// withDefaults returns c with zero retry knobs replaced by defaults.
func (c Config) withDefaults() Config {
	if c.SpinUpMaxRetries == 0 {
		c.SpinUpMaxRetries = DefaultSpinUpMaxRetries
	}
	if c.SpinUpBackoff == 0 {
		c.SpinUpBackoff = DefaultSpinUpBackoff
	}
	if c.TransientIODelay == 0 {
		c.TransientIODelay = DefaultTransientIODelay
	}
	return c
}

// Validate reports whether the scenario is usable.
func (c Config) Validate() error {
	switch {
	case c.SpinUpFailProb < 0 || c.SpinUpFailProb > 1:
		return fmt.Errorf("faults: SpinUpFailProb %v out of [0,1]", c.SpinUpFailProb)
	case c.TransientIOProb < 0 || c.TransientIOProb > 1:
		return fmt.Errorf("faults: TransientIOProb %v out of [0,1]", c.TransientIOProb)
	case c.SpinUpMaxRetries < 0:
		return fmt.Errorf("faults: SpinUpMaxRetries %d < 0", c.SpinUpMaxRetries)
	case c.SpinUpBackoff < 0 || c.TransientIODelay < 0:
		return fmt.Errorf("faults: delays must be non-negative")
	case c.BatteryFailAt < 0 || c.BatteryRecoverAt < 0:
		return fmt.Errorf("faults: battery times must be non-negative")
	case c.BatteryRecoverAt > 0 && c.BatteryRecoverAt <= c.BatteryFailAt:
		return fmt.Errorf("faults: battery recovery %v not after failure %v", c.BatteryRecoverAt, c.BatteryFailAt)
	}
	return nil
}

// String renders the scenario in ParseSpec syntax.
func (c Config) String() string {
	parts := []string{fmt.Sprintf("seed=%d", c.Seed)}
	if c.SpinUpFailProb > 0 {
		parts = append(parts, fmt.Sprintf("spinup=%g", c.SpinUpFailProb))
	}
	if c.TransientIOProb > 0 {
		parts = append(parts, fmt.Sprintf("io=%g", c.TransientIOProb))
	}
	if c.BatteryFailAt > 0 {
		b := "battery=" + c.BatteryFailAt.String()
		if c.BatteryRecoverAt > 0 {
			b += ":" + c.BatteryRecoverAt.String()
		}
		parts = append(parts, b)
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a command-line fault scenario of comma-separated
// key=value pairs:
//
//	seed=42            RNG seed (default 0)
//	spinup=0.2         spin-up attempt failure probability
//	spinup-retries=4   retries before the I/O is abandoned
//	spinup-backoff=1s  first retry backoff (doubles per attempt)
//	io=0.01            transient physical-I/O error probability
//	io-delay=100ms     internal retry delay of a transient error
//	battery=10m:25m    cache-battery loss window (fail[:recover])
func ParseSpec(spec string) (*Config, error) {
	var c Config
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("faults: empty scenario spec")
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("faults: %q is not key=value", kv)
		}
		var err error
		switch key {
		case "seed":
			c.Seed, err = strconv.ParseInt(val, 10, 64)
		case "spinup":
			c.SpinUpFailProb, err = strconv.ParseFloat(val, 64)
		case "spinup-retries":
			c.SpinUpMaxRetries, err = strconv.Atoi(val)
		case "spinup-backoff":
			c.SpinUpBackoff, err = time.ParseDuration(val)
		case "io":
			c.TransientIOProb, err = strconv.ParseFloat(val, 64)
		case "io-delay":
			c.TransientIODelay, err = time.ParseDuration(val)
		case "battery":
			fail, recover, hasRec := strings.Cut(val, ":")
			c.BatteryFailAt, err = time.ParseDuration(fail)
			if err == nil && hasRec {
				c.BatteryRecoverAt, err = time.ParseDuration(recover)
			}
		default:
			return nil, fmt.Errorf("faults: unknown key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: bad value for %q: %v", key, err)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Counters aggregates the fault outcomes of one run. The storage layer
// fills the injection counters; failed-operation counters are filled at
// the site that abandons the operation.
type Counters struct {
	// SpinUpFailures counts failed spin-up attempts (each backed off
	// and retried); SpinUpExhausted counts I/Os abandoned after every
	// retry failed.
	SpinUpFailures  int64
	SpinUpExhausted int64
	// TransientIOErrors counts physical I/Os that hit a transient error
	// and were retried internally.
	TransientIOErrors int64
	// BatteryFailures and BatteryRecoveries count cache-battery
	// transitions (0 or 1 each under the single scheduled window).
	BatteryFailures   int64
	BatteryRecoveries int64
	// FailedAppIOs counts application I/Os that returned an error;
	// FailedMigrations, FailedFlushes and FailedPreloads count
	// background operations abandoned on enclosure unavailability.
	FailedAppIOs     int64
	FailedMigrations int64
	FailedFlushes    int64
	FailedPreloads   int64
}

// Total returns the number of injected faults (not failed operations).
func (c Counters) Total() int64 {
	return c.SpinUpFailures + c.SpinUpExhausted + c.TransientIOErrors +
		c.BatteryFailures + c.BatteryRecoveries
}

// Injector draws the fault sequence for one simulation run. It is not
// safe for concurrent use: the simulator is single-goroutine per run,
// and sharing an injector across runs would break reproducibility.
type Injector struct {
	cfg Config
	rng *rand.Rand
	ctr Counters
	obs func(Event)
}

// NewInjector builds an injector for the scenario.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Enabled reports whether the injector is live.
func (in *Injector) Enabled() bool { return in != nil }

// Config returns the scenario (zero for a nil injector).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// Counters returns a snapshot of the fault counters.
func (in *Injector) Counters() Counters {
	if in == nil {
		return Counters{}
	}
	return in.ctr
}

// SetObserver installs a callback invoked for every injected fault, in
// simulation order. The storage array forwards it to the telemetry
// recorder and the policy.
func (in *Injector) SetObserver(fn func(Event)) {
	if in != nil {
		in.obs = fn
	}
}

// report counts and publishes one fault event.
func (in *Injector) report(ev Event) {
	if in.obs != nil {
		in.obs(ev)
	}
}

// SpinUpAttemptFails draws whether the 1-based spin-up attempt of
// enclosure enc at time t fails.
func (in *Injector) SpinUpAttemptFails(t time.Duration, enc, attempt int) bool {
	if in == nil || in.cfg.SpinUpFailProb <= 0 {
		return false
	}
	if in.rng.Float64() >= in.cfg.SpinUpFailProb {
		return false
	}
	in.ctr.SpinUpFailures++
	in.report(Event{T: t, Kind: KindSpinUpFail, Enclosure: enc, Attempt: attempt})
	return true
}

// MaxSpinUpAttempts returns how many attempts (first try + retries) a
// spin-up gets before the I/O is abandoned.
func (in *Injector) MaxSpinUpAttempts() int {
	if in == nil {
		return 1
	}
	return 1 + in.cfg.SpinUpMaxRetries
}

// SpinUpBackoff returns the backoff before the retry following the
// 1-based failed attempt: base << (attempt-1), exponential growth.
func (in *Injector) SpinUpBackoff(attempt int) time.Duration {
	if in == nil {
		return 0
	}
	d := in.cfg.SpinUpBackoff
	for i := 1; i < attempt && d < time.Hour; i++ {
		d *= 2
	}
	return d
}

// SpinUpExhausted records an I/O abandoned after every spin-up retry
// failed.
func (in *Injector) SpinUpExhausted(t time.Duration, enc int) {
	if in == nil {
		return
	}
	in.ctr.SpinUpExhausted++
	in.report(Event{T: t, Kind: KindSpinUpExhausted, Enclosure: enc})
}

// TransientIO draws whether a physical I/O on enclosure enc at time t
// hits a transient error.
func (in *Injector) TransientIO(t time.Duration, enc int) bool {
	if in == nil || in.cfg.TransientIOProb <= 0 {
		return false
	}
	if in.rng.Float64() >= in.cfg.TransientIOProb {
		return false
	}
	in.ctr.TransientIOErrors++
	in.report(Event{T: t, Kind: KindTransientIO, Enclosure: enc})
	return true
}

// TransientIODelay returns the internal retry delay of a transient I/O
// error.
func (in *Injector) TransientIODelay() time.Duration {
	if in == nil {
		return 0
	}
	return in.cfg.TransientIODelay
}

// BatteryWindow returns the scheduled cache-battery loss window. ok is
// false when the scenario has none; recover is zero when the battery
// never comes back.
func (in *Injector) BatteryWindow() (fail, recover time.Duration, ok bool) {
	if in == nil || in.cfg.BatteryFailAt <= 0 {
		return 0, 0, false
	}
	return in.cfg.BatteryFailAt, in.cfg.BatteryRecoverAt, true
}

// BatteryFailed records the battery loss taking effect.
func (in *Injector) BatteryFailed(t time.Duration) {
	if in == nil {
		return
	}
	in.ctr.BatteryFailures++
	in.report(Event{T: t, Kind: KindBatteryFail, Enclosure: -1})
}

// BatteryRecovered records the battery coming back.
func (in *Injector) BatteryRecovered(t time.Duration) {
	if in == nil {
		return
	}
	in.ctr.BatteryRecoveries++
	in.report(Event{T: t, Kind: KindBatteryRecover, Enclosure: -1})
}

// CountFailedAppIO counts one application I/O that returned an error.
func (in *Injector) CountFailedAppIO() {
	if in != nil {
		in.ctr.FailedAppIOs++
	}
}

// CountFailedMigration counts one migration abandoned on a fault.
func (in *Injector) CountFailedMigration() {
	if in != nil {
		in.ctr.FailedMigrations++
	}
}

// CountFailedFlush counts one write-delay destage kept in cache because
// its enclosure was unavailable.
func (in *Injector) CountFailedFlush() {
	if in != nil {
		in.ctr.FailedFlushes++
	}
}

// CountFailedPreload counts one preload bulk read abandoned on a fault.
func (in *Injector) CountFailedPreload() {
	if in != nil {
		in.ctr.FailedPreloads++
	}
}
