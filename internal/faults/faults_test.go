package faults

import (
	"testing"
	"time"
)

func TestParseSpecFull(t *testing.T) {
	c, err := ParseSpec("seed=42,spinup=0.2,spinup-retries=4,spinup-backoff=1s,io=0.01,io-delay=100ms,battery=10m:25m")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed:             42,
		SpinUpFailProb:   0.2,
		SpinUpMaxRetries: 4,
		SpinUpBackoff:    time.Second,
		TransientIOProb:  0.01,
		TransientIODelay: 100 * time.Millisecond,
		BatteryFailAt:    10 * time.Minute,
		BatteryRecoverAt: 25 * time.Minute,
	}
	if *c != want {
		t.Fatalf("parsed %+v, want %+v", *c, want)
	}
}

func TestParseSpecBatteryWithoutRecovery(t *testing.T) {
	c, err := ParseSpec("battery=5m")
	if err != nil {
		t.Fatal(err)
	}
	if c.BatteryFailAt != 5*time.Minute || c.BatteryRecoverAt != 0 {
		t.Fatalf("battery window %v:%v", c.BatteryFailAt, c.BatteryRecoverAt)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"   ",
		"spinup",            // not key=value
		"bogus=1",           // unknown key
		"spinup=nan2",       // bad float
		"spinup=1.5",        // probability out of range
		"io=-0.1",           // probability out of range
		"spinup-retries=-1", // negative retries
		"spinup-backoff=-1s",
		"battery=10m:5m", // recovery before failure
		"battery=xyz",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
}

func TestStringRoundTrips(t *testing.T) {
	c, err := ParseSpec("seed=7,spinup=0.25,io=0.5,battery=1m:2m")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(c.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", c.String(), err)
	}
	if *back != *c {
		t.Fatalf("round-trip %+v != %+v", *back, *c)
	}
}

func TestSeededDeterminism(t *testing.T) {
	cfg := Config{Seed: 99, SpinUpFailProb: 0.3, TransientIOProb: 0.2}
	draw := func() ([]bool, Counters) {
		in, err := NewInjector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var seq []bool
		for i := 0; i < 200; i++ {
			seq = append(seq, in.SpinUpAttemptFails(time.Duration(i), i%4, 1))
			seq = append(seq, in.TransientIO(time.Duration(i), i%4))
		}
		return seq, in.Counters()
	}
	s1, c1 := draw()
	s2, c2 := draw()
	if c1 != c2 {
		t.Fatalf("counters diverged: %+v vs %+v", c1, c2)
	}
	if c1.SpinUpFailures == 0 || c1.TransientIOErrors == 0 {
		t.Fatalf("no faults drawn at all: %+v", c1)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("draw %d diverged", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	seq := func(seed int64) []bool {
		in, _ := NewInjector(Config{Seed: seed, SpinUpFailProb: 0.5})
		var s []bool
		for i := 0; i < 64; i++ {
			s = append(s, in.SpinUpAttemptFails(0, 0, 1))
		}
		return s
	}
	a, b := seq(1), seq(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 drew identical 64-draw sequences")
	}
}

func TestBackoffGrowsExponentially(t *testing.T) {
	in, err := NewInjector(Config{SpinUpBackoff: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.SpinUpBackoff(1); got != time.Second {
		t.Fatalf("attempt 1 backoff %v", got)
	}
	if got := in.SpinUpBackoff(2); got != 2*time.Second {
		t.Fatalf("attempt 2 backoff %v", got)
	}
	if got := in.SpinUpBackoff(3); got != 4*time.Second {
		t.Fatalf("attempt 3 backoff %v", got)
	}
	// Growth is capped: gigantic attempt numbers must not overflow.
	if got := in.SpinUpBackoff(200); got <= 0 || got > 2*time.Hour {
		t.Fatalf("attempt 200 backoff %v", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	in, err := NewInjector(Config{SpinUpFailProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if in.MaxSpinUpAttempts() != 1+DefaultSpinUpMaxRetries {
		t.Fatalf("max attempts %d", in.MaxSpinUpAttempts())
	}
	if in.SpinUpBackoff(1) != DefaultSpinUpBackoff {
		t.Fatalf("backoff %v", in.SpinUpBackoff(1))
	}
	if in.TransientIODelay() != DefaultTransientIODelay {
		t.Fatalf("io delay %v", in.TransientIODelay())
	}
}

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector enabled")
	}
	if in.SpinUpAttemptFails(0, 0, 1) || in.TransientIO(0, 0) {
		t.Fatal("nil injector injected a fault")
	}
	if in.MaxSpinUpAttempts() != 1 {
		t.Fatalf("nil max attempts %d", in.MaxSpinUpAttempts())
	}
	if in.SpinUpBackoff(3) != 0 || in.TransientIODelay() != 0 {
		t.Fatal("nil injector returned non-zero delays")
	}
	if _, _, ok := in.BatteryWindow(); ok {
		t.Fatal("nil injector has a battery window")
	}
	// Mutators must be no-ops, not panics.
	in.SetObserver(func(Event) {})
	in.SpinUpExhausted(0, 0)
	in.BatteryFailed(0)
	in.BatteryRecovered(0)
	in.CountFailedAppIO()
	in.CountFailedMigration()
	in.CountFailedFlush()
	in.CountFailedPreload()
	if c := in.Counters(); c != (Counters{}) {
		t.Fatalf("nil counters %+v", c)
	}
	if in.Config() != (Config{}) {
		t.Fatal("nil config not zero")
	}
}

func TestObserverSeesEveryFault(t *testing.T) {
	in, err := NewInjector(Config{Seed: 3, SpinUpFailProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	in.SetObserver(func(ev Event) { events = append(events, ev) })
	if !in.SpinUpAttemptFails(time.Minute, 2, 1) {
		t.Fatal("probability 1 attempt did not fail")
	}
	in.SpinUpExhausted(2*time.Minute, 2)
	in.BatteryFailed(3 * time.Minute)
	in.BatteryRecovered(4 * time.Minute)
	want := []Event{
		{T: time.Minute, Kind: KindSpinUpFail, Enclosure: 2, Attempt: 1},
		{T: 2 * time.Minute, Kind: KindSpinUpExhausted, Enclosure: 2},
		{T: 3 * time.Minute, Kind: KindBatteryFail, Enclosure: -1},
		{T: 4 * time.Minute, Kind: KindBatteryRecover, Enclosure: -1},
	}
	if len(events) != len(want) {
		t.Fatalf("saw %d events, want %d", len(events), len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
	c := in.Counters()
	if c.Total() != 4 || c.SpinUpFailures != 1 || c.SpinUpExhausted != 1 ||
		c.BatteryFailures != 1 || c.BatteryRecoveries != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{SpinUpFailProb: -0.5},
		{SpinUpFailProb: 2},
		{TransientIOProb: 1.1},
		{SpinUpMaxRetries: -2},
		{SpinUpBackoff: -time.Second},
		{TransientIODelay: -time.Millisecond},
		{BatteryFailAt: -time.Minute},
		{BatteryFailAt: 2 * time.Minute, BatteryRecoverAt: time.Minute},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d (%+v) accepted", i, c)
		}
		if _, err := NewInjector(c); err == nil {
			t.Errorf("NewInjector accepted config %d", i)
		}
	}
}
