package offload

import (
	"testing"
	"time"

	"esm/internal/policy"
	"esm/internal/simclock"
	"esm/internal/storage"
	"esm/internal/trace"
)

func buildRun(t *testing.T) (*Offload, *storage.Array, *policy.Context, []trace.ItemID) {
	t.Helper()
	cat := trace.NewCatalog()
	ids := []trace.ItemID{
		cat.Add("busy", 1<<30),
		cat.Add("cold", 1<<30),
	}
	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := storage.New(storage.DefaultConfig(2), clk, evq, cat)
	if err != nil {
		t.Fatal(err)
	}
	arr.Place(ids[0], 0)
	arr.Place(ids[1], 1)
	o := New(Config{})
	ctx := &policy.Context{Array: arr, Catalog: cat, Clock: clk, Queue: evq, End: time.Hour}
	arr.SetPowerObserver(func(e int, at time.Duration, on bool) { o.OnPower(e, at, on) })
	o.Init(ctx)
	return o, arr, ctx, ids
}

func TestOffloadDefaults(t *testing.T) {
	o := New(Config{})
	if o.cfg.ReconcileEvery != time.Second {
		t.Fatalf("defaults %+v", o.cfg)
	}
	if o.Name() != "offload" {
		t.Fatalf("name %q", o.Name())
	}
}

// feed keeps enclosure 0 busy so only enclosure 1 sleeps.
func feed(arr *storage.Array, ctx *policy.Context, item trace.ItemID, until time.Duration) {
	for tm := ctx.Clock.Now(); tm < until; tm += 5 * time.Second {
		ctx.Queue.RunUntil(ctx.Clock, tm)
		arr.Submit(trace.LogicalRecord{Time: tm, Item: item, Offset: int64(tm), Size: 8 << 10, Op: trace.OpRead})
	}
	ctx.Queue.RunUntil(ctx.Clock, until)
}

func TestOffloadDefersWritesToSleepingEnclosure(t *testing.T) {
	o, arr, ctx, ids := buildRun(t)
	feed(arr, ctx, ids[0], 5*time.Minute)
	arr.Finish()
	if arr.EnclosureOn(1, ctx.Clock.Now()) {
		t.Fatal("idle enclosure did not sleep")
	}
	if !arr.WriteDelayed(ids[1]) {
		t.Fatal("item on sleeping enclosure not selected for off-loading")
	}
	// A write to the sleeping enclosure's item is absorbed; the
	// enclosure stays asleep.
	r, _ := arr.Submit(trace.LogicalRecord{Time: ctx.Clock.Now(), Item: ids[1], Size: 8 << 10, Op: trace.OpWrite})
	if !r.CacheHit {
		t.Fatal("off-loaded write went to the sleeping disk")
	}
	arr.Finish()
	if arr.EnclosureOn(1, ctx.Clock.Now()) {
		t.Fatal("off-loaded write woke the enclosure")
	}
	if o.Determinations() == 0 {
		t.Fatal("no reconcile decisions counted")
	}
}

func TestOffloadReclaimsOnWake(t *testing.T) {
	_, arr, ctx, ids := buildRun(t)
	feed(arr, ctx, ids[0], 5*time.Minute)
	// Off-load a write, then wake the enclosure with a read.
	arr.Submit(trace.LogicalRecord{Time: ctx.Clock.Now(), Item: ids[1], Size: 8 << 10, Op: trace.OpWrite})
	arr.Submit(trace.LogicalRecord{Time: ctx.Clock.Now(), Item: ids[1], Offset: 64 << 20, Size: 8 << 10, Op: trace.OpRead})
	// The reconcile tick after the power-on must deselect the item,
	// destaging the deferred write back home.
	feed(arr, ctx, ids[0], ctx.Clock.Now()+5*time.Second)
	if arr.WriteDelayed(ids[1]) {
		t.Fatal("item still off-loaded after its enclosure woke")
	}
	if arr.Stats().FlushedBytes == 0 {
		t.Fatal("deferred write never reclaimed")
	}
}

func TestOffloadReadsOfDeferredDataHitCache(t *testing.T) {
	_, arr, ctx, ids := buildRun(t)
	feed(arr, ctx, ids[0], 5*time.Minute)
	arr.Submit(trace.LogicalRecord{Time: ctx.Clock.Now(), Item: ids[1], Offset: 0, Size: 8 << 10, Op: trace.OpWrite})
	r, _ := arr.Submit(trace.LogicalRecord{Time: ctx.Clock.Now(), Item: ids[1], Offset: 0, Size: 8 << 10, Op: trace.OpRead})
	if !r.CacheHit {
		t.Fatal("read of off-loaded data missed the cache")
	}
}
