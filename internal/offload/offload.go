// Package offload implements a write off-loading baseline (Narayanan,
// Donnelly & Rowstron, "Write Off-Loading: Practical Power Management
// for Enterprise Storage", FAST 2008 — the paper whose MSR traces the
// evaluation's File Server workload reproduces).
//
// Write off-loading lets every enclosure spin down on idleness and, for
// as long as an enclosure sleeps, absorbs the writes directed at its
// data into the controller's non-volatile cache (the role the original
// system gives to logs on other, active spindles). When the enclosure
// spins back up, the deferred writes are reclaimed — destaged back to
// their home. Reads of off-loaded data are served from the cached copy.
//
// The adaptation to this simulator routes the deferral through the
// array's write-delay machinery: selecting an item for write delay is
// exactly "append its writes to the NV log instead of its home disk".
// Unlike the proposed method, off-loading is purely reactive — it never
// moves data, never preloads, and cannot stop *reads* from waking a
// sleeping enclosure, which is why read-heavy items cap its savings.
package offload

import (
	"time"

	"esm/internal/policy"
	"esm/internal/trace"
)

// Config parameterises write off-loading.
type Config struct {
	// ReconcileEvery is how often the selection of off-loaded items is
	// refreshed against the current power states.
	ReconcileEvery time.Duration
}

// DefaultConfig reconciles once a second — effectively immediately at
// enclosure power-transition granularity.
func DefaultConfig() Config {
	return Config{ReconcileEvery: time.Second}
}

// Offload is the write off-loading policy.
type Offload struct {
	cfg Config
	ctx *policy.Context

	// off tracks which enclosures are currently powered off.
	off []bool
	// dirtySelection marks that the write-delay selection must be
	// rebuilt at the next reconcile.
	dirtySelection bool
	determinations int64
}

// New returns a write off-loading instance.
func New(cfg Config) *Offload {
	if cfg.ReconcileEvery <= 0 {
		cfg.ReconcileEvery = DefaultConfig().ReconcileEvery
	}
	return &Offload{cfg: cfg}
}

// Name implements policy.Policy.
func (o *Offload) Name() string { return "offload" }

// Init implements policy.Policy: every enclosure may spin down.
func (o *Offload) Init(ctx *policy.Context) {
	o.ctx = ctx
	o.off = make([]bool, ctx.Array.Enclosures())
	for e := 0; e < ctx.Array.Enclosures(); e++ {
		ctx.Array.SetSpinDownEnabled(e, true)
	}
	o.schedule()
}

func (o *Offload) schedule() {
	at := o.ctx.Clock.Now() + o.cfg.ReconcileEvery
	if at > o.ctx.End {
		return
	}
	o.ctx.Queue.Schedule(at, o.tick)
}

// OnLogical implements policy.Policy.
func (o *Offload) OnLogical(trace.LogicalRecord) {}

// OnPhysical implements policy.Policy.
func (o *Offload) OnPhysical(trace.PhysicalRecord) {}

// OnPower implements policy.Policy: a power transition marks the
// selection stale immediately (the periodic poll would also catch it —
// the array evaluates spin-downs lazily, so transitions without a
// witnessing I/O only surface when the state is queried).
func (o *Offload) OnPower(enc int, at time.Duration, on bool) {
	o.off[enc] = !on
	o.dirtySelection = true
}

// tick polls the enclosure power states and rebuilds the write-delay
// selection when they changed: every item homed on a sleeping enclosure
// gets its writes deferred; items whose enclosure woke up are
// deselected, which destages their off-loaded writes back home (the
// original system's reclaim).
func (o *Offload) tick(now time.Duration) {
	arr := o.ctx.Array
	for e := range o.off {
		if off := !arr.EnclosureOn(e, now); off != o.off[e] {
			o.off[e] = off
			o.dirtySelection = true
		}
	}
	if o.dirtySelection {
		o.dirtySelection = false
		o.determinations++
		var sel []trace.ItemID
		for _, id := range o.ctx.Catalog.IDs() {
			if o.off[arr.ItemEnclosure(id)] {
				sel = append(sel, id)
			}
		}
		arr.SetWriteDelay(sel)
	}
	o.schedule()
}

// Finish implements policy.Policy.
func (o *Offload) Finish(time.Duration) {
	o.ctx.Array.FlushAll()
}

// Determinations implements policy.Policy.
func (o *Offload) Determinations() int64 { return o.determinations }
