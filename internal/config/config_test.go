package config

import (
	"strings"
	"testing"
	"time"

	"esm/internal/core"
)

func TestEmptyConfigYieldsDefaults(t *testing.T) {
	f, err := Load("")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.BuildStorage(10)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Enclosures != 10 || cfg.SpinDownTimeout != 52*time.Second {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	pol, err := f.BuildPolicy()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "esm" {
		t.Fatalf("default policy %q", pol.Name())
	}
}

func TestParseOverrides(t *testing.T) {
	doc := `{
	  "storage": {
	    "enclosures": 4,
	    "cache_bytes": 4294967296,
	    "preload_cache_bytes": 1073741824,
	    "spin_down_timeout": "26s",
	    "migration_bps": 52428800
	  },
	  "policy": {
	    "name": "esm",
	    "alpha": 1.5,
	    "initial_period": "4m",
	    "disable_preload": true
	  }
	}`
	f, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.BuildStorage(10)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Enclosures != 4 {
		t.Fatalf("enclosures %d", cfg.Enclosures)
	}
	if cfg.CacheBytes != 4<<30 || cfg.PreloadCacheBytes != 1<<30 {
		t.Fatalf("cache %d/%d", cfg.CacheBytes, cfg.PreloadCacheBytes)
	}
	if cfg.SpinDownTimeout != 26*time.Second {
		t.Fatalf("timeout %v", cfg.SpinDownTimeout)
	}
	pol, err := f.BuildPolicy()
	if err != nil {
		t.Fatal(err)
	}
	esm, ok := pol.(*core.ESM)
	if !ok {
		t.Fatalf("policy %T", pol)
	}
	if esm.Params().Alpha != 1.5 || !esm.Params().DisablePreload {
		t.Fatalf("params %+v", esm.Params())
	}
	if esm.Params().InitialPeriod != 4*time.Minute {
		t.Fatalf("initial period %v", esm.Params().InitialPeriod)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"storge": {}}`)); err == nil {
		t.Fatal("typo'd field accepted")
	}
}

func TestParseRejectsBadDuration(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"storage": {"spin_down_timeout": "52 parsecs"}}`)); err == nil {
		t.Fatal("bad duration accepted")
	}
}

func TestSSDMedia(t *testing.T) {
	f, err := Parse(strings.NewReader(`{"storage": {"media": "ssd"}}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.BuildStorage(8)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Power.IdleW > 50 {
		t.Fatalf("SSD media kept HDD power profile: %+v", cfg.Power)
	}
	if cfg.SpinDownTimeout > 2*time.Second {
		t.Fatalf("SSD timeout %v not rederived", cfg.SpinDownTimeout)
	}
	if _, err := Parse(strings.NewReader(`{"storage": {"media": "tape"}}`)); err == nil {
		t.Log("parse alone accepts unknown media; BuildStorage must reject")
	}
	bad, _ := Parse(strings.NewReader(`{"storage": {"media": "tape"}}`))
	if _, err := bad.BuildStorage(8); err == nil {
		t.Fatal("unknown media accepted")
	}
}

func TestEveryPolicyBuildable(t *testing.T) {
	for _, name := range []string{"none", "timeout", "esm", "pdc", "ddr", "maid", "offload"} {
		f := &File{Policy: &PolicyConfig{Name: name}}
		pol, err := f.BuildPolicy()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pol.Name() != name {
			t.Fatalf("built %q for %q", pol.Name(), name)
		}
	}
	f := &File{Policy: &PolicyConfig{Name: "quantum"}}
	if _, err := f.BuildPolicy(); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPolicyParameterOverrides(t *testing.T) {
	period := Duration(10 * time.Minute)
	iops := 300.0
	f := &File{Policy: &PolicyConfig{Name: "pdc", Period: &period, MaxIOPS: &iops}}
	if _, err := f.BuildPolicy(); err != nil {
		t.Fatal(err)
	}
	target := 600.0
	f = &File{Policy: &PolicyConfig{Name: "ddr", TargetTH: &target}}
	if _, err := f.BuildPolicy(); err != nil {
		t.Fatal(err)
	}
	cacheN := 2
	f = &File{Policy: &PolicyConfig{Name: "maid", CacheEnclosures: &cacheN}}
	if _, err := f.BuildPolicy(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/config.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDurationRoundTrip(t *testing.T) {
	d := Duration(90 * time.Second)
	b, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var got Duration
	if err := got.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("round trip %v != %v", got, d)
	}
	if err := got.UnmarshalJSON([]byte(`42`)); err == nil {
		t.Fatal("non-string duration accepted")
	}
}
