package config

import (
	"strings"
	"testing"
	"time"
)

func TestParseFleetValid(t *testing.T) {
	doc := `{
		"listen": ":9090",
		"cost": {"pue": 1.2, "electricity_usd_per_kwh": 0.10, "replication_factor": 2},
		"arrays": [
			{"name": "tokyo-a", "catalog": "a.items", "placement": "a.layout",
			 "series_interval": "10s", "faults": "seed=1,spinup=0.1"},
			{"name": "osaka_b.1", "catalog": "b.items", "placement": "b.layout",
			 "config": "b.json", "enclosures": 8}
		]
	}`
	f, err := ParseFleet(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if f.Listen != ":9090" || len(f.Arrays) != 2 {
		t.Fatalf("parsed %+v", f)
	}
	if f.Cost == nil || *f.Cost.PUE != 1.2 || *f.Cost.ReplicationFactor != 2 {
		t.Fatalf("cost %+v", f.Cost)
	}
	if got := time.Duration(*f.Arrays[0].SeriesInterval); got != 10*time.Second {
		t.Fatalf("series_interval %v", got)
	}
	if f.Arrays[1].Enclosures != 8 || f.Arrays[1].Config != "b.json" {
		t.Fatalf("array[1] %+v", f.Arrays[1])
	}
}

func TestParseFleetRejects(t *testing.T) {
	cases := []struct {
		name, doc, frag string
	}{
		{"no arrays", `{"arrays": []}`, "no arrays"},
		{"unknown field", `{"arays": []}`, "unknown field"},
		{"empty name", `{"arrays":[{"name":"","catalog":"c","placement":"p"}]}`, "empty"},
		{"bad name", `{"arrays":[{"name":"a/b","catalog":"c","placement":"p"}]}`, "invalid character"},
		{"dup name", `{"arrays":[{"name":"a","catalog":"c","placement":"p"},
			{"name":"a","catalog":"c","placement":"p"}]}`, "declared twice"},
		{"missing catalog", `{"arrays":[{"name":"a","placement":"p"}]}`, "catalog and placement"},
	}
	for _, c := range cases {
		_, err := ParseFleet(strings.NewReader(c.doc))
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %v, want fragment %q", c.name, err, c.frag)
		}
	}
}

func TestValidateArrayName(t *testing.T) {
	for _, ok := range []string{"a", "tokyo-a", "A.b_c-9"} {
		if err := ValidateArrayName(ok); err != nil {
			t.Errorf("%q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"", "a b", "a/b", "a{b", `a"b`} {
		if err := ValidateArrayName(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
