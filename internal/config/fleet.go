// Fleet configuration: the document esmd -fleet boots from. It names
// the arrays of the control plane (each with its own catalog,
// placement and per-array config overrides) and the cost/carbon model
// applied by the /fleet roll-up. Like the per-run config, every field
// is optional except the array identity triple, so a fleet file only
// states deviations.

package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"esm/internal/obs"
)

// FleetFile is the top-level fleet configuration document.
type FleetFile struct {
	// Listen is the default control-plane address; the -listen flag
	// overrides it.
	Listen string `json:"listen,omitempty"`
	// Cost overrides the fleet roll-up's cost/carbon model constants.
	Cost *CostConfig `json:"cost,omitempty"`
	// Alerts declares fleet-wide budget rules over the /fleet roll-up
	// totals, in the "name:condition[:for=DUR]" grammar of
	// obs.ParseRule. Signals must be fleet_* roll-up totals
	// (fleet_cost_usd, fleet_total_kgco2, fleet_metered_j, …).
	Alerts []string `json:"alerts,omitempty"`
	// Arrays declares the managed arrays. At least one is required.
	Arrays []FleetArrayConfig `json:"arrays"`
}

// FleetArrayConfig declares one array of the fleet.
type FleetArrayConfig struct {
	// Name identifies the array in URLs (/arrays/<name>/…) and in the
	// array="<name>" label of every namespaced metric. Required;
	// letters, digits, '-', '_' and '.' only.
	Name string `json:"name"`
	// Catalog and Placement are the item catalog and initial-placement
	// paths, as for single-array esmd. Required.
	Catalog   string `json:"catalog"`
	Placement string `json:"placement"`
	// Config optionally points at a per-array JSON config (storage and
	// policy overrides, the File document of this package).
	Config string `json:"config,omitempty"`
	// Enclosures overrides the enclosure count (0 = infer from the
	// placement).
	Enclosures int `json:"enclosures,omitempty"`
	// Faults is an optional fault-injection spec
	// ("seed=42,spinup=0.1,…"), as for esmd -faults.
	Faults string `json:"faults,omitempty"`
	// Shards is the array's shard count for the sharded deterministic
	// engine: 0 or 1 feeds the stream serially, N > 1 runs enclosure
	// groups on N worker lanes with byte-identical results. Ignored
	// (serial) when Faults is set — fault draws consume one shared RNG
	// stream in global order.
	Shards int `json:"shards,omitempty"`
	// SeriesInterval is the flight-recorder sampling interval on the
	// simulated clock (default 30s).
	SeriesInterval *Duration `json:"series_interval,omitempty"`
	// Alerts declares this array's watchdog rules, evaluated on its
	// flight-sampling grid. Signals are flight-recorder columns
	// (total_energy_j, resp_p99_us, spin_ups, degraded, …); fleet_*
	// signals belong in the top-level alerts list.
	Alerts []string `json:"alerts,omitempty"`
	// Provenance enables the decision-provenance ledger, served live at
	// /arrays/<name>/provenance (as for esmd -provenance).
	Provenance bool `json:"provenance,omitempty"`
}

// CostConfig overrides the fleet cost/carbon model. All fields are
// optional; omitted values keep the defaults documented in
// fleet.DefaultCostModel.
type CostConfig struct {
	// PUE is the data-center power usage effectiveness multiplier.
	PUE *float64 `json:"pue,omitempty"`
	// ElectricityUSDPerKWh prices metered facility energy.
	ElectricityUSDPerKWh *float64 `json:"electricity_usd_per_kwh,omitempty"`
	// GridKgCO2PerKWh is the grid carbon intensity.
	GridKgCO2PerKWh *float64 `json:"grid_kgco2_per_kwh,omitempty"`
	// ReplicationFactor scales one array's footprint to its replicas.
	ReplicationFactor *float64 `json:"replication_factor,omitempty"`
	// EmbodiedKgCO2PerTB is the fabrication carbon per stored TB.
	EmbodiedKgCO2PerTB *float64 `json:"embodied_kgco2_per_tb,omitempty"`
	// LifespanYears amortizes the embodied carbon.
	LifespanYears *float64 `json:"lifespan_years,omitempty"`
}

// LoadFleet reads a fleet configuration from path.
func LoadFleet(path string) (*FleetFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseFleet(f)
}

// ParseFleet decodes a fleet document, rejecting unknown fields so
// typos fail loudly, and validates it.
func ParseFleet(r io.Reader) (*FleetFile, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var file FleetFile
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("config: fleet: %w", err)
	}
	if err := file.Validate(); err != nil {
		return nil, err
	}
	return &file, nil
}

// Validate checks the array declarations.
func (f *FleetFile) Validate() error {
	if len(f.Arrays) == 0 {
		return fmt.Errorf("config: fleet declares no arrays")
	}
	fleetRules, err := obs.ParseRules(f.Alerts)
	if err != nil {
		return fmt.Errorf("config: fleet alerts: %w", err)
	}
	for _, r := range fleetRules {
		if !r.FleetSignal() {
			return fmt.Errorf("config: fleet alert %q: signal %q is per-array; move the rule into that array's alerts list", r.Name, r.Signal)
		}
	}
	seen := make(map[string]bool, len(f.Arrays))
	for i, a := range f.Arrays {
		if err := ValidateArrayName(a.Name); err != nil {
			return fmt.Errorf("config: fleet array %d: %w", i, err)
		}
		if seen[a.Name] {
			return fmt.Errorf("config: fleet array %q declared twice", a.Name)
		}
		seen[a.Name] = true
		if a.Catalog == "" || a.Placement == "" {
			return fmt.Errorf("config: fleet array %q: catalog and placement are required", a.Name)
		}
		if a.Shards < 0 {
			return fmt.Errorf("config: fleet array %q: shards must be >= 0, got %d", a.Name, a.Shards)
		}
		rules, err := obs.ParseRules(a.Alerts)
		if err != nil {
			return fmt.Errorf("config: fleet array %q: alerts: %w", a.Name, err)
		}
		for _, r := range rules {
			if r.FleetSignal() {
				return fmt.Errorf("config: fleet array %q: alert %q: fleet_* signals belong in the top-level alerts list", a.Name, r.Name)
			}
		}
	}
	return nil
}

// ValidateArrayName checks that name is usable as a URL path segment
// and a metric label value: non-empty, letters, digits, '-', '_', '.'.
func ValidateArrayName(name string) error {
	if name == "" {
		return fmt.Errorf("array name is empty")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("array name %q: invalid character %q", name, r)
		}
	}
	return nil
}
