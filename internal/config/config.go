// Package config loads and validates the JSON configuration shared by
// the esmreplay and esmd tools: the simulated storage unit, the power
// model, and the power-saving policy with its parameters. Every field is
// optional; omitted values keep the paper's Table II defaults, so a
// config file only states deviations.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"esm/internal/core"
	"esm/internal/ddr"
	"esm/internal/maid"
	"esm/internal/offload"
	"esm/internal/pdc"
	"esm/internal/policy"
	"esm/internal/powermodel"
	"esm/internal/storage"
)

// Duration wraps time.Duration with JSON encoding as a Go duration
// string ("52s", "30m").
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("config: bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// File is the top-level configuration document.
type File struct {
	Storage *StorageConfig `json:"storage,omitempty"`
	Policy  *PolicyConfig  `json:"policy,omitempty"`
}

// StorageConfig overrides the simulated array's parameters.
type StorageConfig struct {
	Enclosures           *int      `json:"enclosures,omitempty"`
	EnclosureCapacity    *int64    `json:"enclosure_capacity_bytes,omitempty"`
	RandomIOPS           *float64  `json:"random_iops,omitempty"`
	SeqIOPS              *float64  `json:"seq_iops,omitempty"`
	CacheBytes           *int64    `json:"cache_bytes,omitempty"`
	PreloadCacheBytes    *int64    `json:"preload_cache_bytes,omitempty"`
	WriteDelayCacheBytes *int64    `json:"write_delay_cache_bytes,omitempty"`
	DirtyBlockRate       *float64  `json:"dirty_block_rate,omitempty"`
	SpinDownTimeout      *Duration `json:"spin_down_timeout,omitempty"`
	MigrationBps         *float64  `json:"migration_bps,omitempty"`
	Media                string    `json:"media,omitempty"` // "hdd" (default) or "ssd"
}

// PolicyConfig selects and parameterises the power-saving policy.
type PolicyConfig struct {
	// Name is one of none, timeout, esm, pdc, ddr, maid, offload.
	Name string `json:"name"`

	// ESM parameters.
	BreakEven         *Duration `json:"break_even,omitempty"`
	Alpha             *float64  `json:"alpha,omitempty"`
	InitialPeriod     *Duration `json:"initial_period,omitempty"`
	DisablePreload    bool      `json:"disable_preload,omitempty"`
	DisableWriteDelay bool      `json:"disable_write_delay,omitempty"`
	DisableMigration  bool      `json:"disable_migration,omitempty"`

	// PDC parameters.
	Period  *Duration `json:"period,omitempty"`
	MaxIOPS *float64  `json:"max_iops,omitempty"`

	// DDR parameters.
	TargetTH *float64 `json:"target_th,omitempty"`
	LowTH    *float64 `json:"low_th,omitempty"`

	// MAID parameters.
	CacheEnclosures *int `json:"cache_enclosures,omitempty"`
}

// Load reads a configuration file from path. A missing path ("")
// returns an empty document (all defaults).
func Load(path string) (*File, error) {
	if path == "" {
		return &File{}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Parse decodes a configuration document, rejecting unknown fields so
// typos fail loudly.
func Parse(r io.Reader) (*File, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var file File
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return &file, nil
}

// BuildStorage returns the storage configuration with overrides applied
// on top of the paper's defaults for n enclosures.
func (f *File) BuildStorage(n int) (storage.Config, error) {
	s := f.Storage
	if s != nil && s.Enclosures != nil {
		n = *s.Enclosures
	}
	cfg := storage.DefaultConfig(n)
	if s == nil {
		return cfg, cfg.Validate()
	}
	if s.Media == "ssd" {
		cfg.Power = powermodel.SSDParams()
		cfg.SpinDownTimeout = cfg.Power.BreakEven()
	} else if s.Media != "" && s.Media != "hdd" {
		return cfg, fmt.Errorf("config: unknown media %q", s.Media)
	}
	if s.EnclosureCapacity != nil {
		cfg.EnclosureCapacity = *s.EnclosureCapacity
	}
	if s.RandomIOPS != nil {
		cfg.RandomIOPS = *s.RandomIOPS
	}
	if s.SeqIOPS != nil {
		cfg.SeqIOPS = *s.SeqIOPS
	}
	if s.CacheBytes != nil {
		cfg.CacheBytes = *s.CacheBytes
	}
	if s.PreloadCacheBytes != nil {
		cfg.PreloadCacheBytes = *s.PreloadCacheBytes
	}
	if s.WriteDelayCacheBytes != nil {
		cfg.WriteDelayCacheBytes = *s.WriteDelayCacheBytes
	}
	if s.DirtyBlockRate != nil {
		cfg.DirtyBlockRate = *s.DirtyBlockRate
	}
	if s.SpinDownTimeout != nil {
		cfg.SpinDownTimeout = time.Duration(*s.SpinDownTimeout)
	}
	if s.MigrationBps != nil {
		cfg.MigrationBps = *s.MigrationBps
	}
	return cfg, cfg.Validate()
}

// BuildPolicy constructs the configured policy. The default is the
// proposed method with Table II parameters.
func (f *File) BuildPolicy() (policy.Policy, error) {
	p := f.Policy
	name := "esm"
	if p != nil && p.Name != "" {
		name = p.Name
	}
	switch name {
	case "none":
		return policy.NoPowerSaving{}, nil
	case "timeout":
		return policy.FixedTimeout{}, nil
	case "esm":
		params := core.DefaultParams()
		if p != nil {
			if p.BreakEven != nil {
				params.BreakEven = time.Duration(*p.BreakEven)
			}
			if p.Alpha != nil {
				params.Alpha = *p.Alpha
			}
			if p.InitialPeriod != nil {
				params.InitialPeriod = time.Duration(*p.InitialPeriod)
				if params.MinPeriod > params.InitialPeriod {
					params.MinPeriod = params.InitialPeriod
				}
			}
			params.DisablePreload = p.DisablePreload
			params.DisableWriteDelay = p.DisableWriteDelay
			params.DisableMigration = p.DisableMigration
		}
		return core.NewESM(params)
	case "pdc":
		cfg := pdc.DefaultConfig()
		if p != nil {
			if p.Period != nil {
				cfg.Period = time.Duration(*p.Period)
			}
			if p.MaxIOPS != nil {
				cfg.MaxIOPS = *p.MaxIOPS
			}
		}
		return pdc.New(cfg), nil
	case "ddr":
		cfg := ddr.DefaultConfig()
		if p != nil {
			if p.TargetTH != nil {
				cfg.TargetTH = *p.TargetTH
			}
			if p.LowTH != nil {
				cfg.LowTH = *p.LowTH
			}
		}
		return ddr.New(cfg), nil
	case "maid":
		cfg := maid.DefaultConfig()
		if p != nil && p.CacheEnclosures != nil {
			cfg.CacheEnclosures = *p.CacheEnclosures
		}
		return maid.New(cfg), nil
	case "offload":
		return offload.New(offload.DefaultConfig()), nil
	default:
		return nil, fmt.Errorf("config: unknown policy %q", name)
	}
}
