// Package pdc implements the Popular Data Concentration baseline
// (Pinheiro & Bianchini, "Energy conservation techniques for disk array
// based servers", ICS 2004), the logical-I/O-behaviour comparison target
// of the paper's evaluation (§VII-A.1).
//
// PDC periodically ranks every file (data item) by access popularity and
// lays the ranking out across the disk enclosures in order: the most
// popular data concentrates on the first enclosures, the long unpopular
// tail settles on the last ones, which then idle long enough to spin
// down. PDC uses file popularity only — it knows nothing about Long
// Intervals, read/write mixes, or the cache — so a re-ranking reshuffles
// data wholesale, which is exactly the large migration volume the paper
// measures against it (Figs 10, 13, 16).
package pdc

import (
	"sort"
	"time"

	"esm/internal/policy"
	"esm/internal/simclock"
	"esm/internal/trace"
)

// Config parameterises PDC.
type Config struct {
	// Period is the reorganisation interval (Table II: 30 min).
	Period time.Duration
	// FillFraction is how full PDC packs an enclosure before moving to
	// the next one in the popularity layout.
	FillFraction float64
	// MaxIOPS caps the expected load PDC packs onto one enclosure, as in
	// the original paper's load-aware concentration; without it PDC would
	// funnel an entire OLTP database onto one overloaded disk.
	MaxIOPS float64
}

// DefaultConfig returns the Table II parameterisation. The load cap
// leaves the destination enclosure head-room to serve its original load
// plus the arriving one during a reorganisation without saturating the
// 900-IOPS random ceiling.
func DefaultConfig() Config {
	return Config{Period: 30 * time.Minute, FillFraction: 0.95, MaxIOPS: 250}
}

// PDC is the Popular Data Concentration policy.
type PDC struct {
	cfg Config
	ctx *policy.Context

	counts         []int64 // accesses per item, this period
	curSec         []int64 // second of the item's current 1-s bucket
	secCount       []int64 // accesses within the current second
	peak           []int64 // highest 1-s access count this period
	prevRank       []int   // rank per item from the previous period
	periodStart    time.Duration
	determinations int64
	wake           *simclock.Event
}

// New returns a PDC instance.
func New(cfg Config) *PDC {
	def := DefaultConfig()
	if cfg.Period <= 0 {
		cfg.Period = def.Period
	}
	if cfg.FillFraction <= 0 || cfg.FillFraction > 1 {
		cfg.FillFraction = def.FillFraction
	}
	if cfg.MaxIOPS <= 0 {
		cfg.MaxIOPS = def.MaxIOPS
	}
	return &PDC{cfg: cfg}
}

// Name implements policy.Policy.
func (p *PDC) Name() string { return "pdc" }

// Init implements policy.Policy. PDC enables spin-down everywhere and
// waits for the first reorganisation period.
func (p *PDC) Init(ctx *policy.Context) {
	p.ctx = ctx
	p.counts = make([]int64, ctx.Catalog.Len())
	p.curSec = make([]int64, ctx.Catalog.Len())
	p.secCount = make([]int64, ctx.Catalog.Len())
	p.peak = make([]int64, ctx.Catalog.Len())
	p.prevRank = make([]int, ctx.Catalog.Len())
	for i := range p.prevRank {
		p.prevRank[i] = i
	}
	for e := 0; e < ctx.Array.Enclosures(); e++ {
		ctx.Array.SetSpinDownEnabled(e, true)
	}
	p.schedule()
}

func (p *PDC) schedule() {
	at := p.ctx.Clock.Now() + p.cfg.Period
	if at > p.ctx.End {
		return
	}
	p.wake = p.ctx.Queue.Schedule(at, p.reorganize)
}

// OnLogical implements policy.Policy: PDC counts per-file accesses and
// tracks per-file one-second peak rates for its load-aware packing.
func (p *PDC) OnLogical(rec trace.LogicalRecord) {
	i := rec.Item
	p.counts[i]++
	sec := int64(rec.Time / time.Second)
	if sec != p.curSec[i] {
		p.curSec[i] = sec
		p.secCount[i] = 0
	}
	p.secCount[i]++
	if p.secCount[i] > p.peak[i] {
		p.peak[i] = p.secCount[i]
	}
}

// OnPhysical implements policy.Policy.
func (p *PDC) OnPhysical(trace.PhysicalRecord) {}

// OnPower implements policy.Policy.
func (p *PDC) OnPower(int, time.Duration, bool) {}

// reorganize is PDC's periodic data placement determination.
func (p *PDC) reorganize(now time.Duration) {
	p.determinations++
	arr := p.ctx.Array
	// A new layout supersedes any copies still queued from the last one.
	arr.DropQueuedMigrations()

	// Rank items by popularity; untouched items keep their relative order
	// from the previous ranking so the tail does not churn on noise.
	order := make([]int, len(p.counts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := p.counts[order[a]], p.counts[order[b]]
		if ca != cb {
			return ca > cb
		}
		return p.prevRank[order[a]] < p.prevRank[order[b]]
	})
	for rank, i := range order {
		p.prevRank[i] = rank
	}

	// Lay the ranking out: fill enclosure 0 with the most popular items,
	// then enclosure 1, and so on. An enclosure is "full" when either its
	// capacity or its expected load budget is reached.
	limit := int64(p.cfg.FillFraction * float64(arr.Capacity()))
	enc := 0
	var filled int64
	var load float64
	for _, i := range order {
		item := trace.ItemID(i)
		size := arr.ItemSize(item)
		iops := float64(p.peak[i])
		if size > limit || iops > p.cfg.MaxIOPS {
			// The item alone exceeds an enclosure budget; concentrating it
			// is impossible, so it stays where it is.
			continue
		}
		for enc < arr.Enclosures()-1 && (filled+size > limit || load+iops > p.cfg.MaxIOPS) {
			enc++
			filled, load = 0, 0
		}
		if filled+size > limit || load+iops > p.cfg.MaxIOPS {
			// Every enclosure's budget is exhausted: the remaining tail
			// stays where it is rather than overloading the last disk.
			break
		}
		filled += size
		load += iops
		if arr.ItemEnclosure(item) != enc {
			// A rejected move leaves the item where it is; the next
			// reorganisation retries with fresh popularity data.
			_ = arr.MigrateItem(item, enc, nil)
		}
	}
	p.periodStart = now

	// Popularity and load estimates decay rather than reset: PDC ranks by
	// long-term popularity, and a zeroed estimate would let a quiet
	// period re-concentrate busy items with a stale view of their load.
	for i := range p.counts {
		p.counts[i] /= 2
		p.peak[i] /= 2
		p.secCount[i] = 0
	}
	p.schedule()
}

// Finish implements policy.Policy.
func (p *PDC) Finish(time.Duration) {}

// Determinations implements policy.Policy.
func (p *PDC) Determinations() int64 { return p.determinations }
