package pdc

import (
	"testing"
	"time"

	"esm/internal/policy"
	"esm/internal/simclock"
	"esm/internal/storage"
	"esm/internal/trace"
)

// buildRun wires a PDC instance to a small array, returning a feed
// function for logical I/O.
func buildRun(t *testing.T, cfg Config, n int, sizes []int64, locs []int) (*PDC, *storage.Array, *policy.Context, []trace.ItemID) {
	t.Helper()
	cat := trace.NewCatalog()
	ids := make([]trace.ItemID, len(sizes))
	for i, s := range sizes {
		ids[i] = cat.Add("it"+string(rune('A'+i)), s)
	}
	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := storage.New(storage.DefaultConfig(n), clk, evq, cat)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if err := arr.Place(id, locs[i]); err != nil {
			t.Fatal(err)
		}
	}
	p := New(cfg)
	ctx := &policy.Context{Array: arr, Catalog: cat, Clock: clk, Queue: evq, End: 4 * time.Hour}
	p.Init(ctx)
	return p, arr, ctx, ids
}

func TestPDCDefaultsFillIn(t *testing.T) {
	p := New(Config{})
	if p.cfg.Period != 30*time.Minute || p.cfg.MaxIOPS <= 0 || p.cfg.FillFraction <= 0 {
		t.Fatalf("defaults not applied: %+v", p.cfg)
	}
	if p.Name() != "pdc" {
		t.Fatalf("name %q", p.Name())
	}
}

func TestPDCConcentratesPopularData(t *testing.T) {
	// Item B on enclosure 1 is popular; item A on enclosure 0 is not.
	// After one period, PDC should put B on enclosure 0 (most popular
	// first) and leave the cold tail behind.
	cfg := DefaultConfig()
	cfg.Period = 5 * time.Minute
	// A load cap of 2 means the two items cannot share one enclosure, so
	// the ranking decides who gets the first one.
	cfg.MaxIOPS = 2
	p, arr, ctx, ids := buildRun(t, cfg, 2,
		[]int64{1 << 30, 1 << 30},
		[]int{0, 1})
	for i := 0; i < 1000; i++ {
		p.OnLogical(trace.LogicalRecord{
			Time: time.Duration(i) * 500 * time.Millisecond,
			Item: ids[1], Size: 8 << 10, Op: trace.OpRead,
		})
	}
	p.OnLogical(trace.LogicalRecord{Time: time.Minute, Item: ids[0], Size: 8 << 10, Op: trace.OpRead})
	ctx.Queue.RunUntil(ctx.Clock, 7*time.Minute)
	if p.Determinations() < 1 {
		t.Fatal("no reorganisation ran")
	}
	if arr.ItemEnclosure(ids[1]) != 0 {
		t.Fatalf("popular item on enclosure %d, want 0", arr.ItemEnclosure(ids[1]))
	}
	if arr.ItemEnclosure(ids[0]) != 1 {
		t.Fatalf("unpopular item on enclosure %d, want 1", arr.ItemEnclosure(ids[0]))
	}
}

func TestPDCEnablesSpinDownEverywhere(t *testing.T) {
	_, arr, _, _ := buildRun(t, DefaultConfig(), 3, []int64{1 << 20}, []int{0})
	for e := 0; e < 3; e++ {
		if !arr.SpinDownEnabled(e) {
			t.Fatalf("enclosure %d spin-down not enabled", e)
		}
	}
}

func TestPDCRespectsLoadCap(t *testing.T) {
	// Two items whose 1-second peaks each exceed half the cap cannot
	// share an enclosure; the second goes to the next one.
	cfg := DefaultConfig()
	cfg.Period = 5 * time.Minute
	cfg.MaxIOPS = 100
	p, arr, ctx, ids := buildRun(t, cfg, 3,
		[]int64{1 << 30, 1 << 30},
		[]int{2, 2})
	// Bursts of 80 I/Os within one second each: peak 80 for both items.
	for i := 0; i < 80; i++ {
		p.OnLogical(trace.LogicalRecord{Time: time.Minute, Item: ids[0], Size: 8 << 10, Op: trace.OpRead})
		p.OnLogical(trace.LogicalRecord{Time: 2 * time.Minute, Item: ids[1], Size: 8 << 10, Op: trace.OpRead})
	}
	// Check right after the first reorganisation: with fresh peaks the
	// cap must split the items. (Once the items fall idle, later periods
	// may legitimately re-pack them.)
	ctx.Queue.RunUntil(ctx.Clock, 6*time.Minute)
	a, b := arr.ItemEnclosure(ids[0]), arr.ItemEnclosure(ids[1])
	if a == b {
		t.Fatalf("items with peak 80 packed onto one enclosure (cap 100): %d/%d", a, b)
	}
}

func TestPDCLeavesUnplaceableItemsInPlace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 5 * time.Minute
	cfg.MaxIOPS = 10
	p, arr, ctx, ids := buildRun(t, cfg, 2, []int64{1 << 30}, []int{1})
	for i := 0; i < 50; i++ {
		p.OnLogical(trace.LogicalRecord{Time: time.Minute, Item: ids[0], Size: 8 << 10, Op: trace.OpRead})
	}
	ctx.Queue.RunUntil(ctx.Clock, 6*time.Minute)
	if arr.ItemEnclosure(ids[0]) != 1 {
		t.Fatal("item with peak above the cap was migrated")
	}
}

func TestPDCDeterminationsMatchPeriods(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 10 * time.Minute
	p, _, ctx, _ := buildRun(t, cfg, 2, []int64{1 << 20}, []int{0})
	ctx.Queue.RunUntil(ctx.Clock, time.Hour)
	if got := p.Determinations(); got != 6 {
		t.Fatalf("determinations %d in 1h with a 10m period, want 6", got)
	}
}
