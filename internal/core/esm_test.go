package core

import (
	"testing"
	"time"

	"esm/internal/policy"
	"esm/internal/simclock"
	"esm/internal/storage"
	"esm/internal/trace"
)

// policyIface mirrors policy.Policy for the in-package harness.
type policyIface interface {
	policy.Policy
}

type synthResult struct {
	determinations int64
	esmSavedVsIdle float64
	hotCount       int
	p3Moved        int64
	spinUps        int
	period         time.Duration
}

// runPolicyOnSynthetic replays a tiny synthetic mix — one steady P3 item
// on enclosure 0, one P3 item on enclosure 1, burst P1 items on
// enclosures 1..3 — for 40 simulated minutes.
func runPolicyOnSynthetic(t *testing.T, mk func() policyIface) synthResult {
	t.Helper()
	cat := trace.NewCatalog()
	steadyA := cat.Add("steadyA", 1<<30)
	steadyB := cat.Add("steadyB", 1<<30)
	var bursts []trace.ItemID
	for i := 0; i < 6; i++ {
		bursts = append(bursts, cat.Add("burst"+string(rune('0'+i)), 64<<20))
	}

	var recs []trace.LogicalRecord
	dur := 40 * time.Minute
	for tm := time.Duration(0); tm < dur; tm += 2 * time.Second {
		recs = append(recs, trace.LogicalRecord{Time: tm, Item: steadyA, Offset: int64(tm), Size: 8 << 10, Op: trace.OpRead})
		recs = append(recs, trace.LogicalRecord{Time: tm + time.Second, Item: steadyB, Offset: int64(tm), Size: 8 << 10, Op: trace.OpWrite})
	}
	// Each burst item wakes every ~7 minutes for a short read run.
	for i, id := range bursts {
		for start := time.Duration(i) * time.Minute; start < dur; start += 7 * time.Minute {
			for j := 0; j < 10; j++ {
				recs = append(recs, trace.LogicalRecord{
					Time: start + time.Duration(j)*200*time.Millisecond,
					Item: id, Offset: int64(j) << 13, Size: 8 << 10, Op: trace.OpRead,
				})
			}
		}
	}
	trace.SortLogical(recs)

	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	cfg := storage.DefaultConfig(4)
	arr, err := storage.New(cfg, clk, evq, cat)
	if err != nil {
		t.Fatal(err)
	}
	arr.Place(steadyA, 0)
	arr.Place(steadyB, 1)
	for i, id := range bursts {
		arr.Place(id, 1+i%3)
	}

	pol := mk()
	arr.SetPhysicalObserver(func(rec trace.PhysicalRecord) { pol.OnPhysical(rec) })
	arr.SetPowerObserver(func(e int, at time.Duration, on bool) { pol.OnPower(e, at, on) })
	pol.Init(&policy.Context{Array: arr, Catalog: cat, Clock: clk, Queue: evq, End: dur})

	for _, rec := range recs {
		evq.RunUntil(clk, rec.Time)
		pol.OnLogical(rec)
		arr.Submit(rec)
	}
	evq.RunUntil(clk, dur)
	pol.Finish(dur)
	arr.Finish()

	res := synthResult{determinations: pol.Determinations()}
	idleBaseline := cfg.Power.IdleW * dur.Seconds() * float64(cfg.Enclosures)
	res.esmSavedVsIdle = idleBaseline - arr.Meter().EnclosureEnergyJ()
	if d, ok := pol.(*ESM); ok {
		for _, h := range d.Hot() {
			if h {
				res.hotCount++
			}
		}
		res.period = d.Period()
	}
	res.p3Moved = arr.Stats().MigratedBytes
	res.spinUps = arr.Meter().SpinUps()
	return res
}

func TestESMConsolidatesAndSleeps(t *testing.T) {
	cat := trace.NewCatalog()
	hotItem := cat.Add("hot", 512<<20)
	idleItem := cat.Add("idle", 512<<20)

	var recs []trace.LogicalRecord
	dur := 30 * time.Minute
	for tm := time.Duration(0); tm < dur; tm += time.Second {
		recs = append(recs, trace.LogicalRecord{Time: tm, Item: hotItem, Offset: int64(tm % (512 << 20)), Size: 8 << 10, Op: trace.OpRead})
	}
	recs = append(recs, trace.LogicalRecord{Time: time.Minute, Item: idleItem, Size: 8 << 10, Op: trace.OpRead})
	trace.SortLogical(recs)

	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := storage.New(storage.DefaultConfig(2), clk, evq, cat)
	if err != nil {
		t.Fatal(err)
	}
	arr.Place(hotItem, 0)
	arr.Place(idleItem, 1)

	d, err := NewESM(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	arr.SetPhysicalObserver(func(rec trace.PhysicalRecord) { d.OnPhysical(rec) })
	arr.SetPowerObserver(func(e int, at time.Duration, on bool) { d.OnPower(e, at, on) })
	d.Init(&policy.Context{Array: arr, Catalog: cat, Clock: clk, Queue: evq, End: dur})
	for _, rec := range recs {
		evq.RunUntil(clk, rec.Time)
		d.OnLogical(rec)
		arr.Submit(rec)
	}
	evq.RunUntil(clk, dur)
	d.Finish(dur)
	arr.Finish()

	if got := d.Hot(); got == nil || !got[0] || got[1] {
		t.Fatalf("hot flags %v: enclosure 0 should be hot, 1 cold", got)
	}
	if arr.EnclosureOn(1, clk.Now()) {
		t.Fatal("cold enclosure still spun up at end of run")
	}
	if !arr.EnclosureOn(0, clk.Now()) {
		t.Fatal("hot enclosure was spun down")
	}
	if plan := d.LastPlan(); plan == nil || plan.Patterns[hotItem] != P3 {
		t.Fatalf("hot item pattern %v", d.LastPlan())
	}
}

func TestESMAdaptsPeriod(t *testing.T) {
	res := runPolicyOnSynthetic(t, func() policyIface {
		d, err := NewESM(DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		return d
	})
	if res.period < DefaultParams().MinPeriod {
		t.Fatalf("period %v fell below the floor", res.period)
	}
}

func TestESMValidatesParams(t *testing.T) {
	p := DefaultParams()
	p.Alpha = 0.5
	if _, err := NewESM(p); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestESMNameAndAccessors(t *testing.T) {
	d, err := NewESM(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "esm" {
		t.Fatalf("name %q", d.Name())
	}
	if d.Params().Alpha != 1.2 {
		t.Fatal("params accessor broken")
	}
	if d.Hot() != nil || d.LastPlan() != nil {
		t.Fatal("pre-init accessors should be nil")
	}
}

// TestESMTriggerOnColdSpinUps drives a workload whose pattern changes
// mid-run: an item that was idle through the first period suddenly turns
// busy, repeatedly waking its (cold, spun-down) enclosure. Trigger ii of
// §V-D must force a replan well before the scheduled period end.
func TestESMTriggerOnColdSpinUps(t *testing.T) {
	cat := trace.NewCatalog()
	hotItem := cat.Add("hot", 512<<20)
	flips := []trace.ItemID{
		cat.Add("flip0", 512<<20),
		cat.Add("flip1", 512<<20),
		cat.Add("flip2", 512<<20),
	}

	var recs []trace.LogicalRecord
	dur := 60 * time.Minute
	for tm := time.Duration(0); tm < dur; tm += time.Second {
		recs = append(recs, trace.LogicalRecord{Time: tm, Item: hotItem, Offset: int64(tm) % (256 << 20), Size: 8 << 10, Op: trace.OpRead})
	}
	// The flip items sleep for 20 minutes, then issue spaced-out reads
	// that wake their (cold, spun-down) enclosures over and over — gaps
	// just past the spin-down timeout. m = 2·(t_c−t_e)/l_b allows about
	// 2.3 cold power-ons per minute; three enclosures cycling every ~70 s
	// exceed it.
	for i, id := range flips {
		for tm := 20*time.Minute + time.Duration(i)*20*time.Second; tm < dur; tm += 70 * time.Second {
			recs = append(recs, trace.LogicalRecord{Time: tm, Item: id, Offset: int64(tm) % (256 << 20), Size: 8 << 10, Op: trace.OpRead})
		}
	}
	trace.SortLogical(recs)

	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := storage.New(storage.DefaultConfig(4), clk, evq, cat)
	if err != nil {
		t.Fatal(err)
	}
	arr.Place(hotItem, 0)
	for i, id := range flips {
		arr.Place(id, 1+i)
	}

	params := DefaultParams()
	// A long period so that any extra determinations must come from the
	// run-time triggers, not period ends.
	params.InitialPeriod = 15 * time.Minute
	params.MinPeriod = 15 * time.Minute
	params.MaxPeriod = 15 * time.Minute
	d, err := NewESM(params)
	if err != nil {
		t.Fatal(err)
	}
	arr.SetPhysicalObserver(func(rec trace.PhysicalRecord) { d.OnPhysical(rec) })
	arr.SetPowerObserver(func(e int, at time.Duration, on bool) { d.OnPower(e, at, on) })
	d.Init(&policy.Context{Array: arr, Catalog: cat, Clock: clk, Queue: evq, End: dur})
	for _, rec := range recs {
		evq.RunUntil(clk, rec.Time)
		d.OnLogical(rec)
		arr.Submit(rec)
	}
	evq.RunUntil(clk, dur)
	d.Finish(dur)
	arr.Finish()

	// Four scheduled period ends fit in the hour; trigger ii must add
	// more.
	if got := d.Determinations(); got <= 4 {
		t.Fatalf("determinations %d: trigger ii never fired", got)
	}
}

// TestESMAblationSwitches checks each disable flag suppresses its lever.
func TestESMAblationSwitches(t *testing.T) {
	base := runAblation(t, DefaultParams())
	noMig := DefaultParams()
	noMig.DisableMigration = true
	offMig := runAblation(t, noMig)
	if offMig.migrated != 0 {
		t.Fatalf("migration disabled but %d bytes moved", offMig.migrated)
	}
	if base.migrated == 0 {
		t.Fatal("baseline ablation run migrated nothing")
	}
	noPre := DefaultParams()
	noPre.DisablePreload = true
	offPre := runAblation(t, noPre)
	if offPre.preloaded != 0 {
		t.Fatalf("preload disabled but %d bytes loaded", offPre.preloaded)
	}
	noWD := DefaultParams()
	noWD.DisableWriteDelay = true
	offWD := runAblation(t, noWD)
	if offWD.delayedWrites != 0 {
		t.Fatalf("write delay disabled but %d writes absorbed", offWD.delayedWrites)
	}
}

type ablationResult struct {
	migrated      int64
	preloaded     int64
	delayedWrites int64
}

func runAblation(t *testing.T, params Params) ablationResult {
	t.Helper()
	cat := trace.NewCatalog()
	hotItem := cat.Add("hot", 256<<20)
	burstR := cat.Add("burstR", 16<<20)
	burstW := cat.Add("burstW", 64<<20)
	p3cold := cat.Add("p3cold", 64<<20)

	var recs []trace.LogicalRecord
	dur := 30 * time.Minute
	for tm := time.Duration(0); tm < dur; tm += time.Second {
		recs = append(recs, trace.LogicalRecord{Time: tm, Item: hotItem, Offset: int64(tm) % (128 << 20), Size: 8 << 10, Op: trace.OpRead})
		recs = append(recs, trace.LogicalRecord{Time: tm + 500*time.Millisecond, Item: p3cold, Offset: int64(tm) % (32 << 20), Size: 8 << 10, Op: trace.OpWrite})
	}
	for start := time.Duration(0); start < dur; start += 4 * time.Minute {
		for j := 0; j < 20; j++ {
			tm := start + time.Duration(j)*250*time.Millisecond
			recs = append(recs, trace.LogicalRecord{Time: tm, Item: burstR, Offset: int64(j) << 13, Size: 8 << 10, Op: trace.OpRead})
			recs = append(recs, trace.LogicalRecord{Time: tm + 100*time.Millisecond, Item: burstW, Offset: int64(j) << 13, Size: 8 << 10, Op: trace.OpWrite})
		}
	}
	trace.SortLogical(recs)

	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := storage.New(storage.DefaultConfig(3), clk, evq, cat)
	if err != nil {
		t.Fatal(err)
	}
	arr.Place(hotItem, 0)
	arr.Place(burstR, 1)
	arr.Place(burstW, 1)
	arr.Place(p3cold, 2)

	d, err := NewESM(params)
	if err != nil {
		t.Fatal(err)
	}
	arr.SetPhysicalObserver(func(rec trace.PhysicalRecord) { d.OnPhysical(rec) })
	arr.SetPowerObserver(func(e int, at time.Duration, on bool) { d.OnPower(e, at, on) })
	d.Init(&policy.Context{Array: arr, Catalog: cat, Clock: clk, Queue: evq, End: dur})
	for _, rec := range recs {
		evq.RunUntil(clk, rec.Time)
		d.OnLogical(rec)
		arr.Submit(rec)
	}
	evq.RunUntil(clk, dur)
	d.Finish(dur)
	arr.Finish()
	st := arr.Stats()
	return ablationResult{
		migrated:      st.MigratedBytes,
		preloaded:     st.PreloadedBytes,
		delayedWrites: st.DelayedWrites,
	}
}

// TestESMTriggerOnHotEnclosureGap exercises §V-D trigger i): when a hot
// enclosure is observed idle beyond the break-even time, the
// classification is stale and the management function re-runs before the
// scheduled period end.
func TestESMTriggerOnHotEnclosureGap(t *testing.T) {
	cat := trace.NewCatalog()
	fade := cat.Add("fade", 512<<20) // busy early, silent later
	cat.Add("idle", 512<<20)         // untouched data on the second enclosure

	var recs []trace.LogicalRecord
	dur := 80 * time.Minute
	// fade is intensely busy for the first 25 minutes, then issues only
	// occasional I/Os separated by long gaps (observable by trigger i).
	// Offsets are unique so every read is a physical I/O, not an LRU hit.
	var seq int64
	nextOff := func() int64 {
		seq++
		return (seq * 64 << 10) % (448 << 20)
	}
	for tm := time.Duration(0); tm < 25*time.Minute; tm += time.Second {
		recs = append(recs, trace.LogicalRecord{Time: tm, Item: fade, Offset: nextOff(), Size: 8 << 10, Op: trace.OpRead})
	}
	for tm := 25 * time.Minute; tm < dur; tm += 3 * time.Minute {
		recs = append(recs, trace.LogicalRecord{Time: tm, Item: fade, Offset: nextOff(), Size: 8 << 10, Op: trace.OpRead})
	}
	trace.SortLogical(recs)

	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := storage.New(storage.DefaultConfig(2), clk, evq, cat)
	if err != nil {
		t.Fatal(err)
	}
	arr.Place(fade, 0)
	idleID, _ := cat.Lookup("idle")
	arr.Place(idleID, 1)

	params := DefaultParams()
	params.InitialPeriod = 20 * time.Minute
	params.MinPeriod = 20 * time.Minute
	params.MaxPeriod = 20 * time.Minute
	d, err := NewESM(params)
	if err != nil {
		t.Fatal(err)
	}
	arr.SetPhysicalObserver(func(rec trace.PhysicalRecord) { d.OnPhysical(rec) })
	arr.SetPowerObserver(func(e int, at time.Duration, on bool) { d.OnPower(e, at, on) })
	d.Init(&policy.Context{Array: arr, Catalog: cat, Clock: clk, Queue: evq, End: dur})
	var detBy39 int64
	for _, rec := range recs {
		evq.RunUntil(clk, rec.Time)
		d.OnLogical(rec)
		arr.Submit(rec)
		if clk.Now() < 39*time.Minute {
			detBy39 = d.Determinations()
		}
	}
	evq.RunUntil(clk, dur)
	d.Finish(dur)
	arr.Finish()

	// The first scheduled run lands at 20 minutes and the next would land
	// at 40; a second determination before the 39-minute mark can only
	// come from trigger i observing the fade item's long physical gaps.
	if detBy39 < 2 {
		t.Fatalf("determinations by 39m = %d: trigger i never fired", detBy39)
	}
	// The replan reclassifies the faded item P1 and its enclosure cold.
	if hot := d.Hot(); hot[0] {
		t.Fatalf("hot flags %v: the faded enclosure should have been reclassified cold", hot)
	}
}
