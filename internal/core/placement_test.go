package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"esm/internal/monitor"
	"esm/internal/trace"
)

// fakeView is an in-memory View for planner tests.
type fakeView struct {
	encls int
	cap   int64
	sizes []int64
	locs  []int
}

func (v *fakeView) Enclosures() int { return v.encls }
func (v *fakeView) Capacity() int64 { return v.cap }
func (v *fakeView) Used(e int) int64 {
	var u int64
	for i, l := range v.locs {
		if l == e {
			u += v.sizes[i]
		}
	}
	return u
}
func (v *fakeView) ItemEnclosure(it trace.ItemID) int { return v.locs[it] }
func (v *fakeView) ItemSize(it trace.ItemID) int64    { return v.sizes[it] }

// buildStats creates stats where items flagged p3 look continuously
// accessed at the given IOPS and others look like P1 burst items.
func buildStats(n int, p3 map[int]float64) []monitor.ItemPeriodStats {
	stats := make([]monitor.ItemPeriodStats, n)
	for i := range stats {
		stats[i].Item = trace.ItemID(i)
		if iops, ok := p3[i]; ok {
			stats[i].Count = int64(iops * 600)
			stats[i].Reads = stats[i].Count / 2
			stats[i].AvgIOPS = iops
			stats[i].PeakIOPS = iops * 1.5
			stats[i].Sequences = 1
		} else {
			stats[i].Count = 100
			stats[i].Reads = 90
			stats[i].LongIntervals = 2
			stats[i].LongIntervalSum = 10 * time.Minute
			stats[i].Sequences = 3
			stats[i].AvgIOPS = 0.2
		}
	}
	return stats
}

func TestHotCountZeroWithoutP3(t *testing.T) {
	v := &fakeView{encls: 4, cap: 1 << 40, sizes: []int64{1 << 30, 1 << 30}, locs: []int{0, 1}}
	stats := buildStats(2, nil)
	plan := ComputePlacement(DefaultParams(), v, stats)
	if plan.NHot != 0 {
		t.Fatalf("NHot %d without P3 items", plan.NHot)
	}
	for e, h := range plan.Hot {
		if h {
			t.Fatalf("enclosure %d hot without P3 items", e)
		}
	}
	if len(plan.Moves) != 0 {
		t.Fatal("moves planned without P3 items")
	}
}

func TestHotCountByIOPS(t *testing.T) {
	// Σ avg IOPS of P3 = 2000, headroom 1.25 → 2500; O = 900 → N_hot = 3.
	v := &fakeView{encls: 10, cap: 1 << 42, sizes: make([]int64, 10), locs: make([]int, 10)}
	p3 := map[int]float64{}
	for i := 0; i < 10; i++ {
		v.sizes[i] = 1 << 30
		v.locs[i] = i
		p3[i] = 200
	}
	stats := buildStats(10, p3)
	patterns := make([]Pattern, len(stats))
	for i, s := range stats {
		patterns[i] = Classify(s)
	}
	if got := hotCount(DefaultParams(), v, stats, patterns); got != 3 {
		t.Fatalf("hotCount = %d, want 3", got)
	}
}

func TestHotCountBySize(t *testing.T) {
	// P3 bytes require more enclosures than IOPS does.
	v := &fakeView{encls: 8, cap: 1 << 30, sizes: []int64{3 << 30}, locs: []int{0}}
	stats := buildStats(1, map[int]float64{0: 1})
	patterns := []Pattern{P3}
	if got := hotCount(DefaultParams(), v, stats, patterns); got != 3 {
		t.Fatalf("hotCount = %d, want 3 (size-bound)", got)
	}
}

func TestChooseHotPrefersP3HeavyEnclosures(t *testing.T) {
	v := &fakeView{
		encls: 3, cap: 1 << 40,
		sizes: []int64{10 << 30, 1 << 30, 5 << 30},
		locs:  []int{2, 0, 1},
	}
	stats := buildStats(3, map[int]float64{0: 10, 1: 10, 2: 10})
	patterns := []Pattern{P3, P3, P3}
	hot := chooseHot(v, stats, patterns, 1)
	if !hot[2] || hot[0] || hot[1] {
		t.Fatalf("hot flags %v, want enclosure 2 (largest P3 bytes)", hot)
	}
}

func TestPlacementConsolidatesP3(t *testing.T) {
	// Two enclosures with a P3 item each plus P1 items; one hot enclosure
	// should absorb the cold P3 item.
	v := &fakeView{
		encls: 2, cap: 1 << 40,
		sizes: []int64{1 << 30, 1 << 30, 1 << 30, 1 << 30},
		locs:  []int{0, 1, 0, 1},
	}
	stats := buildStats(4, map[int]float64{0: 100, 1: 50})
	plan := ComputePlacement(DefaultParams(), v, stats)
	if plan.NHot != 1 {
		t.Fatalf("NHot %d", plan.NHot)
	}
	if !plan.Hot[0] {
		t.Fatalf("hot flags %v: enclosure 0 holds the bigger P3 load", plan.Hot)
	}
	// Item 1 (P3 on cold enclosure 1) must move to enclosure 0.
	found := false
	for _, mv := range plan.Moves {
		if mv.Item == 1 && mv.Dst == 0 {
			found = true
		}
		if mv.Item == 0 {
			t.Fatal("P3 item already on a hot enclosure was moved")
		}
	}
	if !found {
		t.Fatalf("cold P3 item not consolidated; moves %v", plan.Moves)
	}
	if plan.Loc[1] != 0 {
		t.Fatalf("planned loc of item 1 = %d", plan.Loc[1])
	}
}

func TestPlacementGrowsNHotWhenIOPSBound(t *testing.T) {
	// One hot enclosure cannot serve two 500-IOPS P3 items; the planner
	// must grow N_hot rather than overload it.
	v := &fakeView{
		encls: 3, cap: 1 << 40,
		sizes: []int64{1 << 30, 1 << 30, 1 << 30},
		locs:  []int{0, 1, 2},
	}
	stats := buildStats(3, map[int]float64{0: 500, 1: 500, 2: 500})
	plan := ComputePlacement(DefaultParams(), v, stats)
	if plan.NHot < 3 {
		t.Fatalf("NHot %d: three 500-IOPS items cannot share fewer than 3 enclosures at O=900", plan.NHot)
	}
}

func TestPlacementSpillsForSpace(t *testing.T) {
	// The hot enclosure is nearly full of P1 data; placing the cold P3
	// item requires an Algorithm 3 spill.
	cap := int64(10 << 30)
	v := &fakeView{
		encls: 2, cap: cap,
		sizes: []int64{6 << 30 /* P3 on hot */, 3 << 30 /* P1 on hot */, 2 << 30 /* P3 on cold */},
		locs:  []int{0, 0, 1},
	}
	stats := buildStats(3, map[int]float64{0: 100, 2: 50})
	plan := ComputePlacement(DefaultParams(), v, stats)
	if plan.NHot != 1 || !plan.Hot[0] {
		t.Fatalf("hot %v nhot %d", plan.Hot, plan.NHot)
	}
	// Expect: spill item 1 hot→cold first, then move item 2 cold→hot.
	if len(plan.Moves) != 2 {
		t.Fatalf("moves %v", plan.Moves)
	}
	if plan.Moves[0].Item != 1 || plan.Moves[0].Dst != 1 {
		t.Fatalf("first move %v, want spill of item 1", plan.Moves[0])
	}
	if plan.Moves[1].Item != 2 || plan.Moves[1].Dst != 0 {
		t.Fatalf("second move %v, want consolidation of item 2", plan.Moves[1])
	}
}

func TestPlacementAllHotKeepsDataInPlace(t *testing.T) {
	// So much P3 load that every enclosure must stay hot.
	v := &fakeView{
		encls: 2, cap: 1 << 40,
		sizes: []int64{1 << 30, 1 << 30, 1 << 30},
		locs:  []int{0, 1, 1},
	}
	stats := buildStats(3, map[int]float64{0: 800, 1: 800, 2: 800})
	plan := ComputePlacement(DefaultParams(), v, stats)
	if plan.NHot != 2 {
		t.Fatalf("NHot %d", plan.NHot)
	}
	if len(plan.Moves) != 0 {
		t.Fatalf("moves %v despite saturation", plan.Moves)
	}
	for i := range plan.Loc {
		if plan.Loc[i] != v.locs[i] {
			t.Fatal("items moved in all-hot fallback")
		}
	}
}

// TestPlacementInvariants: for random inputs the plan never overfills an
// enclosure, never plans P3 items onto cold enclosures when any hot
// enclosure exists, and Loc is consistent with Moves.
func TestPlacementInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		encls := 2 + rng.Intn(6)
		n := 5 + rng.Intn(30)
		// Large enough that any random initial placement is feasible (the
		// planner maintains feasibility, it does not repair invalid input).
		cap := int64(1 << 40)
		v := &fakeView{encls: encls, cap: cap, sizes: make([]int64, n), locs: make([]int, n)}
		p3 := map[int]float64{}
		for i := 0; i < n; i++ {
			v.sizes[i] = int64(rng.Intn(8)+1) << 30
			v.locs[i] = rng.Intn(encls)
			if rng.Float64() < 0.4 {
				p3[i] = float64(rng.Intn(300) + 1)
			}
		}
		stats := buildStats(n, p3)
		plan := ComputePlacement(DefaultParams(), v, stats)

		// Loc must equal initial placement with moves applied in order.
		loc := make([]int, n)
		for i := range loc {
			loc[i] = v.locs[i]
		}
		for _, mv := range plan.Moves {
			loc[mv.Item] = mv.Dst
		}
		used := make([]int64, encls)
		for i := range loc {
			if loc[i] < 0 || loc[i] >= encls {
				return false
			}
			used[loc[i]] += v.sizes[i]
		}
		for e := range used {
			if used[e] > cap {
				return false
			}
		}
		for i := range loc {
			if plan.Loc[i] != loc[i] {
				return false
			}
		}
		// When the plan is not saturated (NHot < enclosures), every P3
		// item must end on a hot enclosure.
		if plan.NHot < encls && plan.NHot > 0 {
			for i := range stats {
				if plan.Patterns[i] == P3 && !plan.Hot[loc[i]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
