package core

import (
	"testing"
	"time"

	"esm/internal/faults"
	"esm/internal/policy"
	"esm/internal/simclock"
	"esm/internal/storage"
	"esm/internal/trace"
)

func TestESMDegradedModeSlidingWindow(t *testing.T) {
	cat := trace.NewCatalog()
	item := cat.Add("a", 64<<20)
	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := storage.New(storage.DefaultConfig(2), clk, evq, cat)
	if err != nil {
		t.Fatal(err)
	}
	arr.Place(item, 0)

	p := DefaultParams()
	p.FaultDegradeThreshold = 3
	p.FaultWindow = time.Minute
	d, err := NewESM(p)
	if err != nil {
		t.Fatal(err)
	}
	d.Init(&policy.Context{Array: arr, Catalog: cat, Clock: clk, Queue: evq, End: 2 * time.Hour})
	arr.SetSpinDownEnabled(1, true)

	fault := func(at time.Duration) {
		evq.RunUntil(clk, at)
		d.OnFault(faults.Event{T: at, Kind: faults.KindSpinUpFail, Enclosure: 1, Attempt: 1})
	}

	// Faults spread wider than the window never accumulate.
	fault(0)
	fault(2 * time.Minute)
	fault(4 * time.Minute)
	if d.Degraded() {
		t.Fatal("degraded on faults spread wider than the window")
	}

	// Three faults inside one window trip the threshold — but not two.
	fault(10 * time.Minute)
	fault(10*time.Minute + time.Second)
	if d.Degraded() {
		t.Fatal("degraded below the threshold")
	}
	fault(10*time.Minute + 2*time.Second)
	if !d.Degraded() {
		t.Fatal("threshold reached inside the window but not degraded")
	}
	if d.Degradations() != 1 {
		t.Fatalf("degradations %d, want 1", d.Degradations())
	}
	// Degraded mode keeps every enclosure spinning.
	if arr.SpinDownEnabled(0) || arr.SpinDownEnabled(1) {
		t.Fatal("spin-down still enabled in degraded mode")
	}
	// Further faults while degraded do not re-enter.
	fault(11 * time.Minute)
	if d.Degradations() != 1 {
		t.Fatalf("re-entered degraded mode: %d transitions", d.Degradations())
	}
}

func TestESMFaultHandlingDisabledByThreshold(t *testing.T) {
	cat := trace.NewCatalog()
	item := cat.Add("a", 64<<20)
	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := storage.New(storage.DefaultConfig(1), clk, evq, cat)
	if err != nil {
		t.Fatal(err)
	}
	arr.Place(item, 0)
	p := DefaultParams()
	p.FaultDegradeThreshold = 0
	d, err := NewESM(p)
	if err != nil {
		t.Fatal(err)
	}
	d.Init(&policy.Context{Array: arr, Catalog: cat, Clock: clk, Queue: evq, End: time.Hour})
	for i := 0; i < 100; i++ {
		d.OnFault(faults.Event{T: time.Duration(i), Kind: faults.KindSpinUpFail, Enclosure: 0})
	}
	if d.Degraded() || d.Degradations() != 0 {
		t.Fatal("threshold 0 should disable degraded mode entirely")
	}
}
