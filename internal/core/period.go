// Monitoring-period adaptation (§IV-H).

package core

import (
	"time"

	"esm/internal/monitor"
)

// NextPeriod computes the length of the next monitoring period:
// I_new = average(I_cur) × α, where I_cur are all the Long Intervals
// measured in the period just ended. The α > 1 coefficient grows the
// period when actual I/O intervals exceed it, so the power management
// function stops burning CPU cycles on periods that observe nothing new.
// When the period measured no Long Interval at all, the current period
// length is kept. The result is clamped to [MinPeriod, MaxPeriod].
func NextPeriod(p Params, stats []monitor.ItemPeriodStats, current time.Duration) time.Duration {
	var sum time.Duration
	var n int
	for _, s := range stats {
		sum += s.LongIntervalSum
		n += s.LongIntervals
	}
	next := current
	if n > 0 {
		avg := time.Duration(int64(sum) / int64(n))
		next = time.Duration(float64(avg) * p.Alpha)
	}
	if next < p.MinPeriod {
		next = p.MinPeriod
	}
	if next > p.MaxPeriod {
		next = p.MaxPeriod
	}
	return next
}
