// Package core implements the paper's primary contribution: the
// application-collaborative, energy-efficient storage power management
// function. It classifies data items into the four logical I/O patterns
// (P0–P3), separates disk enclosures into hot and cold ones, computes
// data placement (Algorithms 2 and 3), selects write-delay and preload
// candidates, configures power control for cold enclosures, adapts the
// monitoring-period length, and reacts to run-time I/O pattern changes.
package core

import (
	"fmt"
	"time"
)

// Params holds the tunables of the power management function. Defaults
// reproduce Table II of the paper.
type Params struct {
	// BreakEven is the break-even time l_b (Table II: 52 s). Intervals
	// longer than this are Long Intervals.
	BreakEven time.Duration
	// MaxRandomIOPS is O, the IOPS a disk enclosure can serve for random
	// I/O (Table II: 900); used by hot/cold determination and placement.
	MaxRandomIOPS float64
	// Alpha is the monitoring-period coefficient α > 1 (Table II: 1.2).
	Alpha float64
	// InitialPeriod is the first monitoring period (Table II: 520 s, ten
	// times the break-even time).
	InitialPeriod time.Duration
	// MinPeriod and MaxPeriod clamp the adaptive monitoring period.
	MinPeriod time.Duration
	MaxPeriod time.Duration
	// PreloadCacheBytes is the cache space assigned to the preload
	// function (Table II: 500 MB).
	PreloadCacheBytes int64
	// WriteDelayCacheBytes is the cache space assigned to the write-delay
	// function (Table II: 500 MB).
	WriteDelayCacheBytes int64
	// DirtyBlockRate is the enlarged dirty-block rate (Table II: 50%).
	DirtyBlockRate float64
	// ReplanCooldown is the minimum spacing between consecutive runs of
	// the power management function when the §V-D pattern-change triggers
	// fire. The paper leaves this implicit; one break-even time prevents
	// replanning storms without delaying a genuine pattern change.
	ReplanCooldown time.Duration

	// FaultDegradeThreshold is how many injected storage faults within
	// FaultWindow push the policy into degraded mode: every enclosure is
	// treated as hot (no spin-down) and migrations stop until the array
	// has been fault-free for a full window. Zero or negative disables
	// degradation.
	FaultDegradeThreshold int
	// FaultWindow is the sliding window the fault count is taken over,
	// and the fault-free span required before recovery.
	FaultWindow time.Duration

	// Ablation switches: each disables one of the method's three levers
	// (§II-E), for the design-choice studies in bench_test.go. All false
	// reproduces the full proposed method.
	DisablePreload    bool
	DisableWriteDelay bool
	DisableMigration  bool
}

// DefaultParams returns the Table II parameter values.
func DefaultParams() Params {
	be := 52 * time.Second
	return Params{
		BreakEven:     be,
		MaxRandomIOPS: 900,
		Alpha:         1.2,
		InitialPeriod: 520 * time.Second,
		// Periods shorter than the initial one misclassify burst items
		// whose burst spans the whole window as P3 (they then look like a
		// single I/O Sequence), so the adaptive period never shrinks below
		// the initial period.
		MinPeriod:            520 * time.Second,
		MaxPeriod:            2 * time.Hour,
		PreloadCacheBytes:    500 << 20,
		WriteDelayCacheBytes: 500 << 20,
		DirtyBlockRate:       0.5,
		ReplanCooldown:       5 * be,
		// A handful of faults inside ten break-even times means spin-ups
		// are failing faster than the power-saving gains can amortise;
		// serve everything hot until the array calms down.
		FaultDegradeThreshold: 5,
		FaultWindow:           10 * be,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.BreakEven <= 0:
		return fmt.Errorf("core: BreakEven %v <= 0", p.BreakEven)
	case p.MaxRandomIOPS <= 0:
		return fmt.Errorf("core: MaxRandomIOPS %v <= 0", p.MaxRandomIOPS)
	case p.Alpha <= 1:
		return fmt.Errorf("core: Alpha %v must exceed 1", p.Alpha)
	case p.InitialPeriod <= 0:
		return fmt.Errorf("core: InitialPeriod %v <= 0", p.InitialPeriod)
	case p.MinPeriod <= 0 || p.MaxPeriod < p.MinPeriod:
		return fmt.Errorf("core: period clamp [%v,%v] invalid", p.MinPeriod, p.MaxPeriod)
	case p.PreloadCacheBytes < 0 || p.WriteDelayCacheBytes < 0:
		return fmt.Errorf("core: cache partitions must be non-negative")
	case p.DirtyBlockRate <= 0 || p.DirtyBlockRate > 1:
		return fmt.Errorf("core: DirtyBlockRate %v out of (0,1]", p.DirtyBlockRate)
	case p.ReplanCooldown < 0:
		return fmt.Errorf("core: ReplanCooldown %v < 0", p.ReplanCooldown)
	case p.FaultDegradeThreshold > 0 && p.FaultWindow <= 0:
		return fmt.Errorf("core: FaultWindow %v <= 0 with degradation enabled", p.FaultWindow)
	}
	return nil
}
