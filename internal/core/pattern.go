// Logical I/O pattern determination (§II-C, §IV-B).

package core

import (
	"fmt"

	"esm/internal/monitor"
)

// Pattern is a logical I/O pattern: a classified, patterned application
// I/O behaviour used to choose a power-saving function.
type Pattern uint8

const (
	// P0: no I/Os were issued to the data item during the monitoring
	// period. The item has a single Long Interval and no I/O Sequence;
	// its enclosure can be powered off trivially.
	P0 Pattern = iota
	// P1: at least one Long Interval and at least one I/O Sequence, with
	// reads making up more than 50% of the I/Os. P1 items are candidates
	// for preloading into the storage cache.
	P1
	// P2: at least one Long Interval and at least one I/O Sequence, with
	// reads making up no more than 50% of the I/Os. P2 items are
	// candidates for enlarging write intervals via write delay.
	P2
	// P3: a single I/O Sequence and no Long Interval — every gap is
	// shorter than the break-even time. P3 items cannot benefit from the
	// power-off function and anchor the hot enclosures.
	P3
)

// String returns "P0".."P3".
func (p Pattern) String() string {
	if p > P3 {
		return fmt.Sprintf("Pattern(%d)", uint8(p))
	}
	return [...]string{"P0", "P1", "P2", "P3"}[p]
}

// Classify determines the logical I/O pattern of one data item from its
// monitoring-period statistics, following §IV-B step 3:
//
//   - no I/O at all → P0,
//   - no Long Interval → P3,
//   - otherwise P1 when more than half the I/Os are reads, else P2.
func Classify(s monitor.ItemPeriodStats) Pattern {
	switch {
	case s.Count == 0:
		return P0
	case s.LongIntervals == 0:
		return P3
	case 2*s.Reads > s.Count:
		return P1
	default:
		return P2
	}
}

// PatternMix is the distribution of patterns over data items, as reported
// in Fig. 6 of the paper.
type PatternMix struct {
	Counts [4]int
	Total  int
}

// MixOf classifies every item and tallies the distribution.
func MixOf(stats []monitor.ItemPeriodStats) PatternMix {
	var m PatternMix
	for _, s := range stats {
		m.Counts[Classify(s)]++
		m.Total++
	}
	return m
}

// Frac returns the fraction of items with pattern p, or 0 when empty.
func (m PatternMix) Frac(p Pattern) float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Counts[p]) / float64(m.Total)
}

// String formats the mix as percentages.
func (m PatternMix) String() string {
	return fmt.Sprintf("P0 %.1f%% / P1 %.1f%% / P2 %.1f%% / P3 %.1f%% (n=%d)",
		m.Frac(P0)*100, m.Frac(P1)*100, m.Frac(P2)*100, m.Frac(P3)*100, m.Total)
}
