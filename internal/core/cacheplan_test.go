package core

import (
	"testing"

	"esm/internal/monitor"
	"esm/internal/trace"
)

// selectionFixture builds stats/patterns for cache-selection tests.
// Items: 0 = P2 cold, 1 = P2 hot, 2 = P1 cold with writes, 3 = P1 cold
// read-only, 4 = P1 cold huge, 5 = P3 cold.
func selectionFixture() (p Params, stats []monitor.ItemPeriodStats, patterns []Pattern, loc func(trace.ItemID) int, hot []bool, size func(trace.ItemID) int64) {
	p = DefaultParams()
	stats = []monitor.ItemPeriodStats{
		{Item: 0, Count: 100, Reads: 10, Writes: 90, Bytes: 9 << 20, ReadBytes: 1 << 20, LongIntervals: 1, Sequences: 2},
		{Item: 1, Count: 100, Reads: 10, Writes: 90, Bytes: 9 << 20, ReadBytes: 1 << 20, LongIntervals: 1, Sequences: 2},
		{Item: 2, Count: 100, Reads: 70, Writes: 30, Bytes: 10 << 20, ReadBytes: 7 << 20, LongIntervals: 1, Sequences: 2},
		{Item: 3, Count: 1000, Reads: 1000, Bytes: 8 << 20, ReadBytes: 8 << 20, LongIntervals: 1, Sequences: 2},
		{Item: 4, Count: 10, Reads: 10, Bytes: 1 << 20, ReadBytes: 1 << 20, LongIntervals: 1, Sequences: 2},
		{Item: 5, Count: 5000, Reads: 2500, Writes: 2500, Sequences: 1},
	}
	patterns = make([]Pattern, len(stats))
	for i, s := range stats {
		patterns[i] = Classify(s)
	}
	sizes := []int64{64 << 20, 64 << 20, 32 << 20, 16 << 20, 100 << 30, 64 << 20}
	locs := []int{1, 0, 1, 1, 1, 0}
	hot = []bool{true, false}
	loc = func(it trace.ItemID) int { return locs[it] }
	size = func(it trace.ItemID) int64 { return sizes[it] }
	return
}

func TestSelectWriteDelayPicksColdP2First(t *testing.T) {
	p, stats, patterns, loc, hot, size := selectionFixture()
	got := SelectWriteDelay(p, stats, patterns, loc, hot, size)
	if len(got) == 0 || got[0] != 0 {
		t.Fatalf("selection %v: cold P2 item 0 must come first", got)
	}
	for _, it := range got {
		if it == 1 {
			t.Fatal("hot-enclosure P2 item selected for write delay")
		}
		if it == 5 {
			t.Fatal("P3 item selected for write delay")
		}
	}
	// The cold P1 item with writes qualifies after P2.
	found := false
	for _, it := range got {
		if it == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("selection %v: write-heavy cold P1 item not selected", got)
	}
}

func TestSelectWriteDelayBudget(t *testing.T) {
	p, stats, patterns, loc, hot, size := selectionFixture()
	p.WriteDelayCacheBytes = 9 << 20 // only the P2 item's occupancy fits
	got := SelectWriteDelay(p, stats, patterns, loc, hot, size)
	for _, it := range got {
		if it == 2 {
			t.Fatalf("selection %v: P1 item selected beyond budget", got)
		}
	}
}

func TestSelectPreloadDensityOrderAndBudget(t *testing.T) {
	p, stats, patterns, loc, hot, size := selectionFixture()
	got := SelectPreload(p, stats, patterns, loc, hot, size)
	// Expect item 3 (highest reads/size) then item 2; the 100 GB item 4
	// exceeds the 500 MB partition and, per the paper's "until the size
	// reaches the cache space", terminates selection.
	if len(got) < 2 || got[0] != 3 || got[1] != 2 {
		t.Fatalf("selection %v", got)
	}
	for _, it := range got {
		if it == 4 {
			t.Fatal("oversized item selected for preload")
		}
		if it == 5 || it == 0 {
			t.Fatalf("non-P1 item %d selected for preload", it)
		}
	}
}

func TestSelectPreloadStopsAtBudgetBoundary(t *testing.T) {
	p, stats, patterns, loc, hot, size := selectionFixture()
	p.PreloadCacheBytes = 16 << 20 // fits item 3 only
	got := SelectPreload(p, stats, patterns, loc, hot, size)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("selection %v, want just item 3", got)
	}
}

func TestSelectPreloadSkipsHotEnclosures(t *testing.T) {
	p, stats, patterns, _, _, size := selectionFixture()
	allHot := []bool{true, true}
	locAll := func(trace.ItemID) int { return 0 }
	if got := SelectPreload(p, stats, patterns, locAll, allHot, size); len(got) != 0 {
		t.Fatalf("selection %v with every enclosure hot", got)
	}
	if got := SelectWriteDelay(p, stats, patterns, locAll, allHot, size); len(got) != 0 {
		t.Fatalf("wd selection %v with every enclosure hot", got)
	}
}

// TestESMEndToEnd drives the full policy against a small simulated array
// and checks the headline behaviours: cold enclosures are spun down, the
// hot enclosure is not, P3 items consolidate, and energy drops versus an
// always-on run.
func TestESMEndToEnd(t *testing.T) {
	res := runPolicyOnSynthetic(t, func() policyIface {
		d, err := NewESM(DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		return d
	})
	if res.determinations < 1 {
		t.Fatal("ESM never ran its management function")
	}
	if res.esmSavedVsIdle <= 0 {
		t.Fatalf("ESM saved nothing: %v", res.esmSavedVsIdle)
	}
	if res.hotCount != 1 {
		t.Fatalf("hot enclosures %d, want 1", res.hotCount)
	}
	if res.p3Moved == 0 {
		t.Fatal("no P3 consolidation happened")
	}
}
