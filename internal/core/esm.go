// The energy-efficient storage management policy: the paper's Algorithm 1
// main loop plus the §V run-time power-saving method.

package core

import (
	"time"

	"esm/internal/faults"
	"esm/internal/monitor"
	"esm/internal/obs"
	"esm/internal/policy"
	"esm/internal/simclock"
	"esm/internal/trace"
)

// ESM is the proposed application-collaborative power-saving policy.
//
// Its life cycle follows Algorithm 1: both monitors run continuously;
// at the end of each monitoring period the power management function
// classifies every data item into a logical I/O pattern, splits the
// enclosures into hot and cold, computes the data placement, selects
// write-delay and preload candidates, configures power-off for the cold
// enclosures, and derives the next monitoring period. Between period
// ends, the §V-D pattern-change triggers can force an immediate re-run.
type ESM struct {
	params Params
	ctx    *policy.Context
	appMon *monitor.AppMonitor

	period         time.Duration
	periodStart    time.Duration
	lastRun        time.Duration
	ranOnce        bool
	inManagement   bool
	determinations int64

	hot         []bool
	lastPlan    *Plan
	lastPhys    []time.Duration
	hasPhys     []bool
	coldSpinUps int

	// Graceful degradation: when injected storage faults inside the
	// sliding FaultWindow reach FaultDegradeThreshold, the policy treats
	// every enclosure as hot (no spin-down, no migration) until the
	// array has been fault-free for a full window.
	degraded     bool
	degradations int64
	faultTimes   []time.Duration
	lastFault    time.Duration
	planErrors   int64

	rec    *obs.Recorder
	trc    *obs.Tracer
	flight *obs.FlightRecorder
	wd     *obs.Watchdog
	prov   *obs.Provenance
	wake   *simclock.Event

	// prevPatterns is the classification of the previous determination,
	// kept only while a provenance recorder is attached so
	// reclassification rows (P3 -> P1, …) can be emitted.
	prevPatterns []Pattern
}

// NewESM returns the proposed policy with the given parameters.
func NewESM(params Params) (*ESM, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &ESM{params: params}, nil
}

// Name implements policy.Policy.
func (d *ESM) Name() string { return "esm" }

// SetRecorder attaches a telemetry recorder. A nil recorder (the
// default) keeps the policy observation-free.
func (d *ESM) SetRecorder(rec *obs.Recorder) { d.rec = rec }

// SetTracer attaches a span tracer. Each determination then emits a
// management span and refreshes the tracer's item → pattern-class
// table, so I/O spans and energy attribution carry P0–P3 labels.
func (d *ESM) SetTracer(trc *obs.Tracer) { d.trc = trc }

// SetFlightRecorder attaches a flight recorder. Each determination then
// refreshes the recorder's P0–P3 item counts, so every flight sample
// carries the current pattern distribution.
func (d *ESM) SetFlightRecorder(fr *obs.FlightRecorder) { d.flight = fr }

// SetProvenance attaches a decision-provenance recorder. Each
// determination then records its inputs (per-item interval estimates,
// read ratios, classes, candidate placement costs) and outputs
// (moves, reclassifications, preload and write-delay picks) with
// predicted joule/latency deltas. Nil (the default) costs one pointer
// check per determination.
func (d *ESM) SetProvenance(p *obs.Provenance) { d.prov = p }

// SetWatchdog attaches an alert watchdog. Degraded-mode transitions
// then evaluate "degraded" rules at the instant they happen, instead of
// waiting for the next flight sample.
func (d *ESM) SetWatchdog(wd *obs.Watchdog) { d.wd = wd }

// Params returns the policy parameters.
func (d *ESM) Params() Params { return d.params }

// Init implements policy.Policy: it starts the application monitor and
// schedules the first monitoring-period end.
func (d *ESM) Init(ctx *policy.Context) {
	d.ctx = ctx
	d.appMon = monitor.NewAppMonitor(ctx.Catalog.Len(), d.params.BreakEven)
	d.period = d.params.InitialPeriod
	d.lastPhys = make([]time.Duration, ctx.Array.Enclosures())
	d.hasPhys = make([]bool, ctx.Array.Enclosures())
	// No power saving is configured until the first period has been
	// observed; the array keeps everything spun up, exactly like the
	// paper's system warming up its repositories.
	for e := 0; e < ctx.Array.Enclosures(); e++ {
		ctx.Array.SetSpinDownEnabled(e, false)
	}
	d.scheduleWake(d.period)
}

func (d *ESM) scheduleWake(after time.Duration) {
	if d.wake != nil {
		d.ctx.Queue.Cancel(d.wake)
		d.wake = nil
	}
	at := d.ctx.Clock.Now() + after
	if at > d.ctx.End {
		return
	}
	d.wake = d.ctx.Queue.Schedule(at, func(now time.Duration) {
		d.wake = nil
		d.runManagement(now, obs.CausePeriodEnd)
	})
}

// OnLogical implements policy.Policy: every application I/O feeds the
// application monitor.
func (d *ESM) OnLogical(rec trace.LogicalRecord) {
	d.appMon.Record(rec)
}

// OnPhysical implements policy.Policy. It also implements pattern-change
// trigger i): when a *hot* enclosure is observed to have had an I/O
// interval longer than the break-even time, the current classification is
// stale and the power management function runs immediately.
func (d *ESM) OnPhysical(rec trace.PhysicalRecord) {
	e := int(rec.Enclosure)
	if d.hasPhys[e] && d.hot != nil && d.hot[e] {
		if iv := rec.Time - d.lastPhys[e]; iv > d.params.BreakEven {
			d.maybeReplan(rec.Time, obs.CauseTriggerInterval, obs.ReplanEvent{
				Trigger:    obs.CauseTriggerInterval,
				Enclosure:  e,
				IntervalNS: int64(iv),
				Threshold:  float64(d.params.BreakEven.Nanoseconds()),
			})
		}
	}
	d.lastPhys[e] = rec.Time
	d.hasPhys[e] = true
}

// OnPower implements policy.Policy. It implements pattern-change trigger
// ii): when the cold enclosures have been powered on more than
// m = 2·(t_c − t_e)/l_b times since the end of the previous monitoring
// period, spin-downs are misfiring and the function runs immediately.
func (d *ESM) OnPower(enc int, at time.Duration, on bool) {
	if !on || d.hot == nil || d.hot[enc] {
		return
	}
	d.coldSpinUps++
	m := 2 * float64(at-d.periodStart) / float64(d.params.BreakEven)
	if float64(d.coldSpinUps) > m {
		d.maybeReplan(at, obs.CauseTriggerSpinUps, obs.ReplanEvent{
			Trigger:   obs.CauseTriggerSpinUps,
			Enclosure: enc,
			SpinUps:   d.coldSpinUps,
			Threshold: m,
		})
	}
}

// OnFault observes one injected storage fault. When the count inside
// the sliding FaultWindow reaches FaultDegradeThreshold, the policy
// enters degraded mode immediately: every enclosure is kept spinning,
// queued migrations are dropped, and the hot/cold split is suspended
// until runManagement observes a full fault-free window.
func (d *ESM) OnFault(ev faults.Event) {
	if d.params.FaultDegradeThreshold <= 0 || d.ctx == nil {
		return
	}
	d.lastFault = ev.T
	if d.degraded {
		return
	}
	cutoff := ev.T - d.params.FaultWindow
	times := d.faultTimes[:0]
	for _, t := range d.faultTimes {
		if t > cutoff {
			times = append(times, t)
		}
	}
	d.faultTimes = append(times, ev.T)
	if len(d.faultTimes) >= d.params.FaultDegradeThreshold {
		d.enterDegraded(ev.T)
	}
}

func (d *ESM) enterDegraded(now time.Duration) {
	d.degraded = true
	d.degradations++
	arr := d.ctx.Array
	for e := 0; e < arr.Enclosures(); e++ {
		arr.SetSpinDownEnabled(e, false)
	}
	arr.DropQueuedMigrations()
	d.rec.Degradation(now, obs.DegradeEvent{
		Entered:  true,
		Faults:   len(d.faultTimes),
		WindowNS: int64(d.params.FaultWindow),
	})
	d.wd.ObserveSignal(now, "degraded", 1)
}

// Degraded reports whether the policy is currently in degraded mode.
func (d *ESM) Degraded() bool { return d.degraded }

// Degradations returns how many times the policy entered degraded mode.
func (d *ESM) Degradations() int64 { return d.degradations }

// PlanErrors returns how many planned migrations the array rejected.
func (d *ESM) PlanErrors() int64 { return d.planErrors }

// maybeReplan runs the management function now unless one ran within the
// cooldown window (the paper leaves the anti-thrash guard implicit).
// The trigger event is emitted only when the replan actually fires, so a
// cooldown-suppressed storm does not flood the event stream.
func (d *ESM) maybeReplan(now time.Duration, cause obs.Cause, ev obs.ReplanEvent) {
	if d.inManagement {
		return
	}
	if d.ranOnce && now-d.lastRun < d.params.ReplanCooldown {
		return
	}
	d.rec.ReplanTrigger(now, ev)
	d.runManagement(now, cause)
}

// runManagement is the body of Algorithm 1's loop.
func (d *ESM) runManagement(now time.Duration, cause obs.Cause) {
	if d.inManagement {
		return
	}
	d.inManagement = true
	defer func() { d.inManagement = false }()

	d.rec.DeterminationStart(now, d.determinations+1, cause)
	stats := d.appMon.EndPeriod(now)
	arr := d.ctx.Array

	// Degraded-mode recovery: once the array has been fault-free for a
	// full window, resume power saving; the hot/cold split below then
	// re-enables spin-down for the cold enclosures.
	if d.degraded && now-d.lastFault >= d.params.FaultWindow {
		d.degraded = false
		d.faultTimes = d.faultTimes[:0]
		d.rec.Degradation(now, obs.DegradeEvent{
			Entered:  false,
			WindowNS: int64(d.params.FaultWindow),
		})
		d.wd.ObserveSignal(now, "degraded", 0)
	}

	// Determine logical I/O patterns, hot and cold enclosures, and data
	// placement (Algorithms 2 and 3).
	plan := ComputePlacement(d.params, arr, stats)
	if d.params.DisableMigration {
		// Ablation: keep data where it is; the cache and power-control
		// decisions then work against the unconsolidated layout.
		plan.Moves = nil
		for i := range plan.Loc {
			plan.Loc[i] = arr.ItemEnclosure(trace.ItemID(i))
		}
	}

	locOf := func(it trace.ItemID) int { return plan.Loc[it] }

	// Determine write delay, then preload: the write-delay function is
	// applied first because the storage controls write timing itself,
	// whereas read timing depends on the run-time state of the
	// application (§IV-A).
	var wd, pre []trace.ItemID
	if !d.params.DisableWriteDelay {
		wd = SelectWriteDelay(d.params, stats, plan.Patterns, locOf, plan.Hot, arr.ItemSize)
	}
	if !d.params.DisablePreload {
		pre = SelectPreload(d.params, stats, plan.Patterns, locOf, plan.Hot, arr.ItemSize)
	}
	// §V-B/§V-C: the run-time method keeps already-applied cache
	// assignments unless the item genuinely changed character. An item
	// that saw no I/O this period (P0) is not a fresh candidate, but
	// dropping it would only force a spin-up when its next burst arrives;
	// keep it selected while it still lives on a cold enclosure.
	keepP0 := func(list []trace.ItemID, applied func(trace.ItemID) bool) []trace.ItemID {
		in := make(map[trace.ItemID]bool, len(list))
		for _, it := range list {
			in[it] = true
		}
		for it := trace.ItemID(0); int(it) < len(plan.Patterns); it++ {
			if !in[it] && applied(it) && plan.Patterns[it] == P0 && !plan.Hot[plan.Loc[it]] {
				list = append(list, it)
			}
		}
		return list
	}
	wd = keepP0(wd, arr.WriteDelayed)
	pre = keepP0(pre, arr.Preloaded)

	// Provenance: record the determination's inputs and outputs before
	// the plan executes, so the decision rows precede the runtime rows
	// (cache loads, destages, power transitions) they provoke.
	if d.prov.Enabled() {
		d.emitProvenance(now, cause, stats, &plan, wd, pre)
	}

	arr.SetWriteDelay(wd)
	arr.SetPreload(pre)

	// Determine the power control method: power-off only for the cold
	// disk enclosures (§IV-G). In degraded mode everything stays hot.
	for e := 0; e < arr.Enclosures(); e++ {
		arr.SetSpinDownEnabled(e, !d.degraded && !plan.Hot[e])
	}

	// Movement of data items (§V-A): spills first, then P3 consolidation;
	// the array executes them one by one at the throttled rate. Degraded
	// mode suspends migration — the check repeats per move because a
	// fault during one migration can flip the mode mid-loop.
	if !d.params.DisableMigration {
		for _, mv := range plan.Moves {
			if d.degraded {
				break
			}
			if err := arr.MigrateItem(mv.Item, mv.Dst, nil); err != nil {
				// A rejected move means the plan and the array disagree;
				// skip it and keep serving rather than killing the run.
				d.planErrors++
			}
		}
	}

	// Determine the length of the next monitoring period (§IV-H).
	oldPeriod := d.period
	d.period = NextPeriod(d.params, stats, d.period)
	d.lastPlan = &plan
	d.hot = plan.Hot
	d.coldSpinUps = 0
	d.periodStart = now
	d.lastRun = now
	d.ranOnce = true
	d.determinations++
	if d.flight.Enabled() {
		var counts [4]int
		for _, p := range plan.Patterns {
			counts[p]++
		}
		d.flight.SetClassCounts(counts)
	}
	if d.rec.Enabled() {
		var counts [4]int
		for _, p := range plan.Patterns {
			counts[p]++
		}
		nHot := 0
		for _, h := range plan.Hot {
			if h {
				nHot++
			}
		}
		d.rec.Determination(now, obs.DeterminationEvent{
			N:             d.determinations,
			Cause:         cause,
			PatternCounts: counts,
			Hot:           append([]bool(nil), plan.Hot...),
			NHot:          nHot,
			Moves:         len(plan.Moves),
			WriteDelay:    len(wd),
			Preload:       len(pre),
			NextPeriodNS:  int64(d.period),
		})
		d.rec.PeriodAdapt(now, oldPeriod, d.period)
	}
	if d.trc != nil {
		classes := make([]uint8, len(plan.Patterns))
		for i, p := range plan.Patterns {
			classes[i] = uint8(p)
		}
		d.trc.SetClasses(classes)
		d.trc.Management(obs.ManagementSpan{
			Kind: "determination", Start: now, End: now,
			Item: -1, Enclosure: -1, Dst: -1,
			Cause: string(cause), N: d.determinations,
		})
	}
	d.scheduleWake(d.period)
}

// emitProvenance records one determination's decision rows: the
// summary, every reclassified item, every planned move with its
// candidate placement costs and predicted deltas, and the preload and
// write-delay picks — each with the per-item features (interval
// estimate, read ratio) the decision was computed from. Only called
// while a provenance recorder is attached.
func (d *ESM) emitProvenance(now time.Duration, cause obs.Cause, stats []monitor.ItemPeriodStats, plan *Plan, wd, pre []trace.ItemID) {
	arr := d.ctx.Array
	det := d.determinations + 1

	nHot := 0
	for _, h := range plan.Hot {
		if h {
			nHot++
		}
	}
	// Planned per-enclosure IOPS load under the new placement — the
	// candidate cost the planner packs against (§IV-F).
	load := make([]float64, arr.Enclosures())
	for i := range stats {
		if l := plan.Loc[i]; l >= 0 && l < len(load) {
			load[l] += stats[i].AvgIOPS
		}
	}
	feature := func(i int) (intervalS, readRatio float64) {
		s := &stats[i]
		if s.LongIntervals > 0 {
			intervalS = s.LongIntervalSum.Seconds() / float64(s.LongIntervals)
		}
		if s.Count > 0 {
			readRatio = float64(s.Reads) / float64(s.Count)
		}
		return intervalS, readRatio
	}
	prevOf := func(i int) int {
		if len(d.prevPatterns) == len(plan.Patterns) {
			return int(d.prevPatterns[i])
		}
		return -1
	}

	d.prov.Determination(now, det, cause, nHot, len(plan.Moves))
	if len(d.prevPatterns) == len(plan.Patterns) {
		for i, p := range plan.Patterns {
			if d.prevPatterns[i] == p {
				continue
			}
			iv, rr := feature(i)
			d.prov.Decision(now, obs.ProvDecision{
				Kind: obs.ProvReclass, Det: det, Cause: cause,
				Item: int64(i), Class: int(p), PrevClass: int(d.prevPatterns[i]),
				Src: arr.ItemEnclosure(trace.ItemID(i)), Dst: -1,
				IntervalS: iv, ReadRatio: rr,
			})
		}
	}
	for _, mv := range plan.Moves {
		i := int(mv.Item)
		iv, rr := feature(i)
		src := arr.ItemEnclosure(mv.Item)
		d.prov.Decision(now, obs.ProvDecision{
			Kind: obs.ProvMove, Det: det, Cause: cause,
			Item: int64(mv.Item), Class: int(plan.Patterns[i]), PrevClass: prevOf(i),
			Src: src, Dst: mv.Dst,
			IntervalS: iv, ReadRatio: rr,
			CostSrc: load[src], CostDst: load[mv.Dst],
			ToCold: !plan.Hot[mv.Dst],
		})
	}
	pick := func(kind int, items []trace.ItemID) {
		for _, it := range items {
			iv, rr := feature(int(it))
			d.prov.Decision(now, obs.ProvDecision{
				Kind: kind, Det: det, Cause: cause,
				Item: int64(it), Class: int(plan.Patterns[it]), PrevClass: prevOf(int(it)),
				Src: arr.ItemEnclosure(it), Dst: -1,
				IntervalS: iv, ReadRatio: rr,
			})
		}
	}
	pick(obs.ProvDestage, wd)
	pick(obs.ProvPreload, pre)

	d.prevPatterns = append(d.prevPatterns[:0], plan.Patterns...)
}

// Stop cancels the pending period-end wake-up. The fleet control plane
// calls it before hot-swapping in a replacement policy instance on the
// same simulation context, so the retired instance never fires again;
// its array observers are rewired by the caller.
func (d *ESM) Stop() {
	if d.wake != nil {
		d.ctx.Queue.Cancel(d.wake)
		d.wake = nil
	}
}

// Finish implements policy.Policy: a final management run would be
// pointless, but delayed writes must be destaged so the energy accounting
// is honest.
func (d *ESM) Finish(now time.Duration) {
	d.ctx.Array.FlushAll()
}

// Determinations implements policy.Policy.
func (d *ESM) Determinations() int64 { return d.determinations }

// Period returns the current monitoring-period length (exported for
// tests and the esmd daemon's status output).
func (d *ESM) Period() time.Duration { return d.period }

// Hot returns the current hot-enclosure flags (nil before the first run).
func (d *ESM) Hot() []bool { return d.hot }

// LastPlan returns the most recent placement plan (nil before the first
// run). The esmd daemon uses it for status reporting.
func (d *ESM) LastPlan() *Plan { return d.lastPlan }
