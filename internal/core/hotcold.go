// Hot/cold disk enclosure determination (§IV-C).

package core

import (
	"math"
	"sort"

	"esm/internal/monitor"
	"esm/internal/trace"
)

// View is the placement-relevant view of the storage unit. *storage.Array
// satisfies it; tests use lightweight fakes.
type View interface {
	// Enclosures returns the number of disk enclosures.
	Enclosures() int
	// Capacity returns the per-enclosure volume size S in bytes.
	Capacity() int64
	// Used returns the bytes currently allocated on enclosure e.
	Used(e int) int64
	// ItemEnclosure returns the enclosure an item currently lives on.
	ItemEnclosure(item trace.ItemID) int
	// ItemSize returns an item's size in bytes.
	ItemSize(item trace.ItemID) int64
}

// p3PeakHeadroom scales the summed average IOPS of P3 items into the
// I_max estimate. The monitor keeps per-item aggregates rather than a
// full aligned time series, so max_t Σ I_it cannot be computed exactly;
// P3 items are by definition continuously accessed (no gap exceeds the
// break-even time), which keeps their momentary rate close to their
// average, and a 25% head-room absorbs the remaining burstiness. Summing
// per-item one-second peaks instead would overshoot wildly for many
// small items whose peaks never align.
const p3PeakHeadroom = 1.25

// maxP3IOPS approximates I_max = max_t Σ I_it over P3 data items.
func maxP3IOPS(stats []monitor.ItemPeriodStats, patterns []Pattern) float64 {
	var sum float64
	for i, s := range stats {
		if patterns[i] == P3 {
			sum += s.AvgIOPS
		}
	}
	return sum * p3PeakHeadroom
}

// totalP3Size returns Σ s_i over P3 items.
func totalP3Size(view View, stats []monitor.ItemPeriodStats, patterns []Pattern) int64 {
	var sum int64
	for i := range stats {
		if patterns[i] == P3 {
			sum += view.ItemSize(stats[i].Item)
		}
	}
	return sum
}

// hotCount computes N_hot = max(⌈I_max/O⌉, ⌈Σs_i/S⌉), clamped to the
// enclosure count (§IV-C step 2). With no P3 items N_hot is zero and
// every enclosure is cold.
func hotCount(p Params, view View, stats []monitor.ItemPeriodStats, patterns []Pattern) int {
	imax := maxP3IOPS(stats, patterns)
	size := totalP3Size(view, stats, patterns)
	byIOPS := int(math.Ceil(imax / p.MaxRandomIOPS))
	bySize := int(math.Ceil(float64(size) / float64(view.Capacity())))
	n := byIOPS
	if bySize > n {
		n = bySize
	}
	if n > view.Enclosures() {
		n = view.Enclosures()
	}
	return n
}

// chooseHot selects the nHot hot enclosures: the enclosures holding the
// largest total size of P3 data items, so the bytes that must migrate off
// cold enclosures are minimised (§IV-C step 3). It returns a per-enclosure
// hot flag slice.
func chooseHot(view View, stats []monitor.ItemPeriodStats, patterns []Pattern, nHot int) []bool {
	e := view.Enclosures()
	p3Size := make([]int64, e)
	for i := range stats {
		if patterns[i] == P3 {
			p3Size[view.ItemEnclosure(stats[i].Item)] += view.ItemSize(stats[i].Item)
		}
	}
	order := make([]int, e)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return p3Size[order[a]] > p3Size[order[b]] })
	hot := make([]bool, e)
	for i := 0; i < nHot && i < e; i++ {
		hot[order[i]] = true
	}
	return hot
}
