package core

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"esm/internal/monitor"
	"esm/internal/trace"
)

func TestClassifyP0(t *testing.T) {
	s := monitor.ItemPeriodStats{Count: 0, LongIntervals: 1}
	if got := Classify(s); got != P0 {
		t.Fatalf("no-I/O item classified %v", got)
	}
}

func TestClassifyP3(t *testing.T) {
	s := monitor.ItemPeriodStats{Count: 100, Reads: 80, LongIntervals: 0, Sequences: 1}
	if got := Classify(s); got != P3 {
		t.Fatalf("no-long-interval item classified %v", got)
	}
}

func TestClassifyP1VsP2Boundary(t *testing.T) {
	// P1 requires reads to exceed 50% of the I/Os, strictly.
	cases := []struct {
		reads, count int64
		want         Pattern
	}{
		{51, 100, P1},
		{50, 100, P2}, // exactly half is P2 per §II-C
		{49, 100, P2},
		{1, 1, P1},
		{0, 1, P2},
	}
	for _, c := range cases {
		s := monitor.ItemPeriodStats{Count: c.count, Reads: c.reads, LongIntervals: 1, Sequences: 1}
		if got := Classify(s); got != c.want {
			t.Fatalf("reads=%d/%d classified %v, want %v", c.reads, c.count, got, c.want)
		}
	}
}

// TestClassifyTotal: every possible stats value classifies into exactly
// one of the four patterns — the paper's claim that four patterns cover
// all data items.
func TestClassifyTotal(t *testing.T) {
	f := func(count, reads uint16, longIntervals uint8) bool {
		c := int64(count)
		r := int64(reads) % (c + 1)
		s := monitor.ItemPeriodStats{
			Count:         c,
			Reads:         r,
			Writes:        c - r,
			LongIntervals: int(longIntervals % 4),
			Sequences:     1,
		}
		p := Classify(s)
		switch {
		case c == 0:
			return p == P0
		case s.LongIntervals == 0:
			return p == P3
		case 2*r > c:
			return p == P1
		default:
			return p == P2
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{P0: "P0", P1: "P1", P2: "P2", P3: "P3"} {
		if p.String() != want {
			t.Fatalf("%d -> %q", p, p.String())
		}
	}
	if !strings.Contains(Pattern(7).String(), "7") {
		t.Fatal("unknown pattern string")
	}
}

func TestMixOf(t *testing.T) {
	stats := []monitor.ItemPeriodStats{
		{Item: 0},
		{Item: 1, Count: 10, Reads: 9, LongIntervals: 1, Sequences: 1},
		{Item: 2, Count: 10, Reads: 1, LongIntervals: 1, Sequences: 1},
		{Item: 3, Count: 10, Reads: 5, Sequences: 1},
	}
	m := MixOf(stats)
	if m.Total != 4 {
		t.Fatalf("total %d", m.Total)
	}
	for p := P0; p <= P3; p++ {
		if m.Counts[p] != 1 {
			t.Fatalf("pattern %v count %d", p, m.Counts[p])
		}
		if m.Frac(p) != 0.25 {
			t.Fatalf("pattern %v frac %v", p, m.Frac(p))
		}
	}
	if !strings.Contains(m.String(), "25.0%") {
		t.Fatalf("mix string %q", m)
	}
	var empty PatternMix
	if empty.Frac(P0) != 0 {
		t.Fatal("empty mix frac")
	}
}

func TestNextPeriod(t *testing.T) {
	p := DefaultParams()
	stats := []monitor.ItemPeriodStats{
		{LongIntervals: 2, LongIntervalSum: 40 * time.Minute},
		{LongIntervals: 2, LongIntervalSum: 40 * time.Minute},
	}
	// avg long interval = 20 min; next = 24 min.
	got := NextPeriod(p, stats, 10*time.Minute)
	if got != 24*time.Minute {
		t.Fatalf("next period %v, want 24m", got)
	}
}

func TestNextPeriodKeepsCurrentWithoutIntervals(t *testing.T) {
	p := DefaultParams()
	got := NextPeriod(p, nil, 11*time.Minute)
	if got != 11*time.Minute {
		t.Fatalf("next period %v, want unchanged 11m", got)
	}
}

func TestNextPeriodClamps(t *testing.T) {
	p := DefaultParams()
	small := []monitor.ItemPeriodStats{{LongIntervals: 1, LongIntervalSum: time.Second}}
	if got := NextPeriod(p, small, time.Minute); got != p.MinPeriod {
		t.Fatalf("min clamp: %v", got)
	}
	huge := []monitor.ItemPeriodStats{{LongIntervals: 1, LongIntervalSum: 100 * time.Hour}}
	if got := NextPeriod(p, huge, time.Minute); got != p.MaxPeriod {
		t.Fatalf("max clamp: %v", got)
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.BreakEven != 52*time.Second {
		t.Fatalf("break-even %v, Table II says 52s", p.BreakEven)
	}
	if p.MaxRandomIOPS != 900 {
		t.Fatalf("O = %v, Table II says 900", p.MaxRandomIOPS)
	}
	if p.Alpha != 1.2 {
		t.Fatalf("alpha %v, Table II says 1.2", p.Alpha)
	}
	if p.InitialPeriod != 520*time.Second {
		t.Fatalf("initial period %v, Table II says 520s", p.InitialPeriod)
	}
	if p.PreloadCacheBytes != 500<<20 || p.WriteDelayCacheBytes != 500<<20 {
		t.Fatal("cache partitions not 500 MB")
	}
	if p.DirtyBlockRate != 0.5 {
		t.Fatalf("dirty block rate %v, Table II says 50%%", p.DirtyBlockRate)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidateRejects(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.BreakEven = 0 },
		func(p *Params) { p.MaxRandomIOPS = 0 },
		func(p *Params) { p.Alpha = 1.0 },
		func(p *Params) { p.InitialPeriod = 0 },
		func(p *Params) { p.MaxPeriod = p.MinPeriod - 1 },
		func(p *Params) { p.PreloadCacheBytes = -1 },
		func(p *Params) { p.DirtyBlockRate = 0 },
		func(p *Params) { p.ReplanCooldown = -1 },
	}
	for i, mutate := range mutations {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
	_ = trace.ItemID(0)
}
