// Write-delay and preload candidate selection (§IV-E, §IV-F).

package core

import (
	"sort"

	"esm/internal/monitor"
	"esm/internal/trace"
)

// SelectWriteDelay picks the items the write-delay function applies to:
// every P2 data item on a cold enclosure, then — while the write-delay
// cache partition has estimated head-room left — the cold P1 items with
// the most write I/Os (§IV-E). loc gives the planned enclosure per item
// (same indexing as stats), hot the planned hot flags.
func SelectWriteDelay(p Params, stats []monitor.ItemPeriodStats, patterns []Pattern, loc func(trace.ItemID) int, hot []bool, itemSize func(trace.ItemID) int64) []trace.ItemID {
	var out []trace.ItemID
	budget := p.WriteDelayCacheBytes

	// occupancy estimates the cache space an item's delayed writes will
	// occupy over a period: its write volume, capped by its size.
	occupancy := func(s monitor.ItemPeriodStats) int64 {
		wb := s.Bytes - s.ReadBytes
		if size := itemSize(s.Item); wb > size {
			wb = size
		}
		return wb
	}

	var p2s, p1s []int
	for i, s := range stats {
		if hot[loc(s.Item)] {
			continue
		}
		switch patterns[i] {
		case P2:
			p2s = append(p2s, i)
		case P1:
			// Rank P1 items by write count; a zero-write period does not
			// disqualify an item (its occupancy estimate is simply zero),
			// otherwise membership would flap period to period and each
			// flap would cost a spin-up on the item's next write.
			p1s = append(p1s, i)
		}
	}
	// All cold P2 items are selected unconditionally; the dirty-block rate
	// bounds actual cache usage at run time.
	sort.SliceStable(p2s, func(a, b int) bool { return stats[p2s[a]].Writes > stats[p2s[b]].Writes })
	for _, i := range p2s {
		out = append(out, stats[i].Item)
		budget -= occupancy(stats[i])
	}
	// Remaining space goes to the most write-heavy cold P1 items.
	sort.SliceStable(p1s, func(a, b int) bool { return stats[p1s[a]].Writes > stats[p1s[b]].Writes })
	for _, i := range p1s {
		occ := occupancy(stats[i])
		if occ > budget {
			continue
		}
		out = append(out, stats[i].Item)
		budget -= occ
	}
	return out
}

// SelectPreload picks the items the preload function applies to: P1 data
// items on cold enclosures, sorted by read I/Os per byte of data
// descending, taken until the preload cache partition is full (§IV-F).
func SelectPreload(p Params, stats []monitor.ItemPeriodStats, patterns []Pattern, loc func(trace.ItemID) int, hot []bool, itemSize func(trace.ItemID) int64) []trace.ItemID {
	var cand []int
	for i, s := range stats {
		if patterns[i] != P1 || hot[loc(s.Item)] {
			continue
		}
		cand = append(cand, i)
	}
	readDensity := func(i int) float64 {
		size := itemSize(stats[i].Item)
		if size <= 0 {
			return float64(stats[i].Reads)
		}
		return float64(stats[i].Reads) / float64(size)
	}
	sort.SliceStable(cand, func(a, b int) bool { return readDensity(cand[a]) > readDensity(cand[b]) })

	// "...selects P1 data items until the size of selected P1 data items
	// reaches the cache space assigned for the preload function." The cut
	// is a hard stop, not a skip: letting a later, larger item slip into
	// the leftover budget would permanently starve the denser items ahead
	// of it once the keep rule (§V-C) pins it.
	var out []trace.ItemID
	var used int64
	for _, i := range cand {
		size := itemSize(stats[i].Item)
		if used+size > p.PreloadCacheBytes {
			break
		}
		out = append(out, stats[i].Item)
		used += size
	}
	return out
}
