// Data placement determination (§IV-D): Algorithm 2 places P3 data items
// onto hot enclosures; Algorithm 3 spills P0/P1/P2 items off hot
// enclosures to make room.

package core

import (
	"sort"
	"time"

	"esm/internal/monitor"
	"esm/internal/trace"
)

// Move is one planned data-item migration.
type Move struct {
	Item trace.ItemID
	Dst  int
}

// Plan is the complete output of one run of the power management
// function: the hot/cold split, the ordered migration list, the cache
// function assignments, and the next monitoring period.
type Plan struct {
	// Patterns holds the logical I/O pattern of every item, indexed by
	// ItemID.
	Patterns []Pattern
	// Hot flags the hot enclosures.
	Hot []bool
	// NHot is the number of hot enclosures.
	NHot int
	// Moves is the migration list in execution order: P0/P1/P2 spills
	// from hot enclosures first (they create the space P3 items need),
	// then P3 consolidation onto hot enclosures (§V-A).
	Moves []Move
	// Loc is the planned enclosure of every item once Moves complete,
	// indexed by ItemID.
	Loc []int
	// WriteDelay lists the items the write-delay function applies to.
	WriteDelay []trace.ItemID
	// Preload lists the items the preload function applies to.
	Preload []trace.ItemID
	// NextPeriod is the length of the next monitoring period.
	NextPeriod time.Duration
}

// planner carries the intermediate placement state of one planning run.
type planner struct {
	p        Params
	view     View
	stats    []monitor.ItemPeriodStats
	patterns []Pattern

	hot  []bool
	loc  []int     // planned enclosure per item
	used []int64   // planned bytes per enclosure
	iops []float64 // planned average IOPS per enclosure

	spills  []Move
	p3Moves []Move
}

func newPlanner(p Params, view View, stats []monitor.ItemPeriodStats, patterns []Pattern, hot []bool) *planner {
	pl := &planner{
		p:        p,
		view:     view,
		stats:    stats,
		patterns: patterns,
		hot:      hot,
		loc:      make([]int, len(stats)),
		used:     make([]int64, view.Enclosures()),
		iops:     make([]float64, view.Enclosures()),
	}
	for e := 0; e < view.Enclosures(); e++ {
		pl.used[e] = view.Used(e)
	}
	for i := range stats {
		e := view.ItemEnclosure(stats[i].Item)
		pl.loc[i] = e
		pl.iops[e] += stats[i].AvgIOPS
	}
	return pl
}

// move relocates item i to enclosure dst in the planning state and
// records it in the given move list.
func (pl *planner) move(i int, dst int, list *[]Move) {
	src := pl.loc[i]
	size := pl.view.ItemSize(pl.stats[i].Item)
	pl.used[src] -= size
	pl.used[dst] += size
	pl.iops[src] -= pl.stats[i].AvgIOPS
	pl.iops[dst] += pl.stats[i].AvgIOPS
	pl.loc[i] = dst
	*list = append(*list, Move{Item: pl.stats[i].Item, Dst: dst})
}

// placeP3 runs Algorithm 2. It returns false when some P3 item cannot be
// hosted within the IOPS budget of the current hot set, which tells the
// caller to increase N_hot and retry.
func (pl *planner) placeP3() bool {
	// M ← P3 data items in cold disk enclosures, by IOPS/size descending.
	var m []int
	for i := range pl.stats {
		if pl.patterns[i] == P3 && !pl.hot[pl.loc[i]] {
			m = append(m, i)
		}
	}
	sort.SliceStable(m, func(a, b int) bool {
		da, db := pl.density(m[a]), pl.density(m[b])
		return da > db
	})

	var hotEncs []int
	for e, h := range pl.hot {
		if h {
			hotEncs = append(hotEncs, e)
		}
	}
	if len(hotEncs) == 0 {
		return len(m) == 0
	}

	for _, i := range m {
		if !pl.placeOneP3(i, hotEncs) {
			return false
		}
	}
	return true
}

// density returns IOPS per byte for the sort key of Algorithm 2.
func (pl *planner) density(i int) float64 {
	size := pl.view.ItemSize(pl.stats[i].Item)
	if size <= 0 {
		return pl.stats[i].AvgIOPS
	}
	return pl.stats[i].AvgIOPS / float64(size)
}

// placeOneP3 places one cold-resident P3 item onto a hot enclosure,
// trying hot enclosures from least-loaded upward and spilling P0/P1/P2
// items (Algorithm 3) when space is short. It returns false when the IOPS
// budget of every hot enclosure is exhausted.
func (pl *planner) placeOneP3(i int, hotEncs []int) bool {
	size := pl.view.ItemSize(pl.stats[i].Item)
	iops := pl.stats[i].AvgIOPS

	order := append([]int(nil), hotEncs...)
	sort.SliceStable(order, func(a, b int) bool { return pl.iops[order[a]] < pl.iops[order[b]] })

	// Condition i)/ii): the least-loaded hot enclosure must have IOPS
	// head-room; if even it does not, N_hot must grow.
	if pl.iops[order[0]]+iops >= pl.p.MaxRandomIOPS {
		return false
	}
	for _, s := range order {
		if pl.iops[s]+iops >= pl.p.MaxRandomIOPS {
			break // sorted ascending: no later candidate can pass either
		}
		if pl.used[s]+size <= pl.view.Capacity() {
			pl.move(i, s, &pl.p3Moves)
			return true
		}
	}
	// Every IOPS-feasible hot enclosure lacks space: free some with
	// Algorithm 3, then place.
	for _, s := range order {
		if pl.iops[s]+iops >= pl.p.MaxRandomIOPS {
			break
		}
		if pl.spillFromHot(s, pl.used[s]+size-pl.view.Capacity()) &&
			pl.used[s]+size <= pl.view.Capacity() {
			pl.move(i, s, &pl.p3Moves)
			return true
		}
	}
	return false
}

// spillFromHot runs Algorithm 3 for one hot enclosure: migrate P0/P1/P2
// items off it to cold enclosures until at least need bytes are free.
// Cold targets are tried from the highest-IOPS cold enclosure downward,
// subject to space and IOPS-capacity conditions, which concentrates
// spilled items on the already-busiest cold enclosures and keeps the rest
// cold. It reports whether enough space was freed.
func (pl *planner) spillFromHot(hotEnc int, need int64) bool {
	if need <= 0 {
		return true
	}
	var m []int
	for i := range pl.stats {
		if pl.loc[i] == hotEnc && pl.patterns[i] != P3 {
			m = append(m, i)
		}
	}
	// Largest first frees the space in the fewest migrations.
	sort.SliceStable(m, func(a, b int) bool {
		return pl.view.ItemSize(pl.stats[m[a]].Item) > pl.view.ItemSize(pl.stats[m[b]].Item)
	})

	var freed int64
	for _, i := range m {
		if freed >= need {
			break
		}
		size := pl.view.ItemSize(pl.stats[i].Item)
		iops := pl.stats[i].AvgIOPS
		dst := -1
		bestIOPS := -1.0
		for e, h := range pl.hot {
			if h || e == hotEnc {
				continue
			}
			if pl.used[e]+size > pl.view.Capacity() {
				continue
			}
			if pl.iops[e]+iops >= pl.p.MaxRandomIOPS {
				continue
			}
			if pl.iops[e] > bestIOPS {
				bestIOPS = pl.iops[e]
				dst = e
			}
		}
		if dst < 0 {
			continue
		}
		pl.move(i, dst, &pl.spills)
		freed += size
	}
	return freed >= need
}

// ComputePlacement classifies items, determines the hot/cold split and
// computes the migration list, growing N_hot and retrying whenever
// Algorithm 2 finds the hot set IOPS-infeasible (§IV-D).
func ComputePlacement(p Params, view View, stats []monitor.ItemPeriodStats) Plan {
	patterns := make([]Pattern, len(stats))
	for i, s := range stats {
		patterns[i] = Classify(s)
	}
	nHot := hotCount(p, view, stats, patterns)
	for {
		hot := chooseHot(view, stats, patterns, nHot)
		pl := newPlanner(p, view, stats, patterns, hot)
		if pl.placeP3() {
			moves := append(append([]Move(nil), pl.spills...), pl.p3Moves...)
			return Plan{
				Patterns: patterns,
				Hot:      hot,
				NHot:     nHot,
				Moves:    moves,
				Loc:      pl.loc,
			}
		}
		if nHot >= view.Enclosures() {
			// Everything hot: keep data where it is; no power saving via
			// placement is possible this period.
			loc := make([]int, len(stats))
			for i := range stats {
				loc[i] = view.ItemEnclosure(stats[i].Item)
			}
			return Plan{
				Patterns: patterns,
				Hot:      chooseHot(view, stats, patterns, view.Enclosures()),
				NHot:     view.Enclosures(),
				Loc:      loc,
			}
		}
		nHot++
	}
}
