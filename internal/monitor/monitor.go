// Package monitor implements the paper's §III monitoring system: an
// Application Monitor that watches logical (application-level) I/O per
// data item, and a Storage Monitor that watches physical I/O per disk
// enclosure together with enclosure power status.
//
// Both monitors accumulate incrementally — the power management function
// only ever needs per-period aggregates (Long Interval counts, I/O
// Sequence read/write mixes, IOPS) — so a six-hour trace never has to be
// buffered in memory.
package monitor

import (
	"time"

	"esm/internal/trace"
)

// ItemPeriodStats is the per-data-item aggregate over one monitoring
// period, in the paper's vocabulary: Long Intervals are I/O gaps longer
// than the break-even time (including the gaps at the period boundaries),
// and I/O Sequences are the maximal runs of I/Os between them.
type ItemPeriodStats struct {
	Item trace.ItemID
	// Count, Reads, Writes count the I/Os of the period. All of them lie
	// in I/O Sequences by construction.
	Count  int64
	Reads  int64
	Writes int64
	// Bytes is the total I/O volume; ReadBytes the read part.
	Bytes     int64
	ReadBytes int64
	// LongIntervals is the number of Long Intervals observed.
	LongIntervals int
	// LongIntervalSum is their total length (feeds the next-period
	// calculation, §IV-H).
	LongIntervalSum time.Duration
	// Sequences is the number of I/O Sequences.
	Sequences int
	// AvgIOPS is Count divided by the period length.
	AvgIOPS float64
	// PeakIOPS is the highest I/O count observed in any one-second window.
	PeakIOPS float64
}

// itemAccum is the running per-item state within the current period.
type itemAccum struct {
	count, reads, writes int64
	bytes, readBytes     int64
	last                 time.Duration
	longIntervals        int
	longIntervalSum      time.Duration
	sequences            int
	curSecond            int64
	curSecondCount       int64
	peakPerSecond        int64
}

// AppMonitor is the application monitor. Record is called for every
// logical I/O; EndPeriod closes the monitoring period and returns the
// per-item aggregates.
type AppMonitor struct {
	breakEven   time.Duration
	periodStart time.Duration
	items       []itemAccum
	touched     []trace.ItemID
}

// NewAppMonitor returns a monitor over a catalog of n items using the
// given break-even time, with the first period starting at time zero.
func NewAppMonitor(n int, breakEven time.Duration) *AppMonitor {
	return &AppMonitor{
		breakEven: breakEven,
		items:     make([]itemAccum, n),
	}
}

// BreakEven returns the configured break-even time.
func (m *AppMonitor) BreakEven() time.Duration { return m.breakEven }

// PeriodStart returns the start time of the current period.
func (m *AppMonitor) PeriodStart() time.Duration { return m.periodStart }

// Record ingests one logical I/O.
func (m *AppMonitor) Record(rec trace.LogicalRecord) {
	a := &m.items[rec.Item]
	if a.count == 0 {
		m.touched = append(m.touched, rec.Item)
		if gap := rec.Time - m.periodStart; gap > m.breakEven {
			a.longIntervals++
			a.longIntervalSum += gap
		}
		a.sequences = 1
	} else {
		if gap := rec.Time - a.last; gap > m.breakEven {
			a.longIntervals++
			a.longIntervalSum += gap
			a.sequences++
		}
	}
	a.count++
	a.bytes += int64(rec.Size)
	if rec.Op == trace.OpRead {
		a.reads++
		a.readBytes += int64(rec.Size)
	} else {
		a.writes++
	}
	a.last = rec.Time
	sec := int64(rec.Time / time.Second)
	if sec != a.curSecond {
		a.curSecond = sec
		a.curSecondCount = 0
	}
	a.curSecondCount++
	if a.curSecondCount > a.peakPerSecond {
		a.peakPerSecond = a.curSecondCount
	}
}

// EndPeriod closes the period at time now and returns one entry per
// catalog item — including untouched items, whose whole period is a
// single Long Interval (pattern P0 upstream). The monitor then starts a
// fresh period at now.
func (m *AppMonitor) EndPeriod(now time.Duration) []ItemPeriodStats {
	period := now - m.periodStart
	out := make([]ItemPeriodStats, len(m.items))
	for i := range m.items {
		a := &m.items[i]
		s := &out[i]
		s.Item = trace.ItemID(i)
		s.Count = a.count
		s.Reads = a.reads
		s.Writes = a.writes
		s.Bytes = a.bytes
		s.ReadBytes = a.readBytes
		s.LongIntervals = a.longIntervals
		s.LongIntervalSum = a.longIntervalSum
		s.Sequences = a.sequences
		s.PeakIOPS = float64(a.peakPerSecond)
		if a.count == 0 {
			// No I/O at all: one Long Interval spanning the period.
			if period > m.breakEven {
				s.LongIntervals = 1
				s.LongIntervalSum = period
			}
		} else if tail := now - a.last; tail > m.breakEven {
			s.LongIntervals++
			s.LongIntervalSum += tail
		}
		if period > 0 {
			s.AvgIOPS = float64(a.count) / period.Seconds()
		}
		*a = itemAccum{}
	}
	m.touched = m.touched[:0]
	m.periodStart = now
	return out
}

// PowerStatusRecord is one enclosure power transition (§III-B).
type PowerStatusRecord struct {
	Enclosure int
	At        time.Duration
	On        bool
}

// IntervalBuckets is the number of logarithmic gap buckets kept per
// enclosure. Bucket i covers gaps in [2^i, 2^(i+1)) seconds, with bucket 0
// holding everything below 2 seconds.
const IntervalBuckets = 20

// EnclosureIntervals aggregates the physical I/O gap distribution of one
// enclosure; it feeds the Figs 17–19 analysis.
type EnclosureIntervals struct {
	// Counts[i] and Sums[i] are the number and total length of gaps in
	// logarithmic bucket i.
	Counts [IntervalBuckets]int64
	Sums   [IntervalBuckets]time.Duration
	// MaxGap is the longest observed gap.
	MaxGap time.Duration
}

func bucketOf(gap time.Duration) int {
	sec := gap.Seconds()
	b := 0
	for limit := 2.0; sec >= limit && b < IntervalBuckets-1; limit *= 2 {
		b++
	}
	return b
}

func (ei *EnclosureIntervals) add(gap time.Duration) {
	b := bucketOf(gap)
	ei.Counts[b]++
	ei.Sums[b] += gap
	if gap > ei.MaxGap {
		ei.MaxGap = gap
	}
}

// CumulativeLongerThan returns the total length of gaps at least min long.
// Bucket granularity makes this approximate below one bucket width, which
// is sufficient for the cumulative interval curves of Figs 17–19.
func (ei *EnclosureIntervals) CumulativeLongerThan(min time.Duration) time.Duration {
	var total time.Duration
	from := bucketOf(min)
	for b := from; b < IntervalBuckets; b++ {
		total += ei.Sums[b]
	}
	return total
}

// StorageMonitor is the storage monitor: it observes physical I/O per
// enclosure and enclosure power transitions.
type StorageMonitor struct {
	start     time.Duration
	lastIO    []time.Duration
	hasIO     []bool
	intervals []EnclosureIntervals
	reads     []int64
	writes    []int64
	power     []PowerStatusRecord
	spinUps   []int
}

// NewStorageMonitor returns a monitor over n enclosures.
func NewStorageMonitor(n int) *StorageMonitor {
	return &StorageMonitor{
		lastIO:    make([]time.Duration, n),
		hasIO:     make([]bool, n),
		intervals: make([]EnclosureIntervals, n),
		reads:     make([]int64, n),
		writes:    make([]int64, n),
		spinUps:   make([]int, n),
	}
}

// RecordPhysical ingests one physical I/O.
func (m *StorageMonitor) RecordPhysical(rec trace.PhysicalRecord) {
	e := int(rec.Enclosure)
	if m.hasIO[e] {
		if gap := rec.Time - m.lastIO[e]; gap > 0 {
			m.intervals[e].add(gap)
		}
	} else {
		m.hasIO[e] = true
		if gap := rec.Time - m.start; gap > 0 {
			m.intervals[e].add(gap)
		}
	}
	m.lastIO[e] = rec.Time
	if rec.Op == trace.OpRead {
		m.reads[e]++
	} else {
		m.writes[e]++
	}
}

// RecordPower ingests one power transition.
func (m *StorageMonitor) RecordPower(enc int, at time.Duration, on bool) {
	m.power = append(m.power, PowerStatusRecord{Enclosure: enc, At: at, On: on})
	if on {
		m.spinUps[enc]++
	}
}

// Finish accounts the tail gap of every enclosure up to now.
func (m *StorageMonitor) Finish(now time.Duration) {
	for e := range m.lastIO {
		last := m.start
		if m.hasIO[e] {
			last = m.lastIO[e]
		}
		if gap := now - last; gap > 0 {
			m.intervals[e].add(gap)
		}
	}
}

// Intervals returns the gap distribution of enclosure e.
func (m *StorageMonitor) Intervals(e int) *EnclosureIntervals { return &m.intervals[e] }

// Enclosures returns the enclosure count.
func (m *StorageMonitor) Enclosures() int { return len(m.intervals) }

// Reads returns physical reads observed on enclosure e.
func (m *StorageMonitor) Reads(e int) int64 { return m.reads[e] }

// Writes returns physical writes observed on enclosure e.
func (m *StorageMonitor) Writes(e int) int64 { return m.writes[e] }

// SpinUps returns power-on transitions observed on enclosure e.
func (m *StorageMonitor) SpinUps(e int) int { return m.spinUps[e] }

// PowerLog returns the power transition log.
func (m *StorageMonitor) PowerLog() []PowerStatusRecord { return m.power }
