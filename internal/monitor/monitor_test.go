package monitor

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"esm/internal/trace"
)

const be = 52 * time.Second

func rec(t time.Duration, item trace.ItemID, op trace.Op, size int32) trace.LogicalRecord {
	return trace.LogicalRecord{Time: t, Item: item, Op: op, Size: size}
}

func TestAppMonitorUntouchedItemIsOneLongInterval(t *testing.T) {
	m := NewAppMonitor(2, be)
	m.Record(rec(time.Second, 0, trace.OpRead, 100))
	stats := m.EndPeriod(10 * time.Minute)
	s := stats[1]
	if s.Count != 0 || s.LongIntervals != 1 || s.LongIntervalSum != 10*time.Minute {
		t.Fatalf("untouched item stats %+v", s)
	}
	if s.Sequences != 0 {
		t.Fatalf("untouched item has %d sequences", s.Sequences)
	}
}

func TestAppMonitorCountsAndReadWriteSplit(t *testing.T) {
	m := NewAppMonitor(1, be)
	m.Record(rec(1*time.Second, 0, trace.OpRead, 100))
	m.Record(rec(2*time.Second, 0, trace.OpWrite, 200))
	m.Record(rec(3*time.Second, 0, trace.OpRead, 300))
	s := m.EndPeriod(30 * time.Second)[0]
	if s.Count != 3 || s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("counts %+v", s)
	}
	if s.Bytes != 600 || s.ReadBytes != 400 {
		t.Fatalf("bytes %+v", s)
	}
	if s.AvgIOPS != 0.1 {
		t.Fatalf("avg IOPS %v", s.AvgIOPS)
	}
}

func TestAppMonitorLongIntervalsAndSequences(t *testing.T) {
	m := NewAppMonitor(1, be)
	// Sequence 1: two I/Os close together; then a long gap; sequence 2.
	m.Record(rec(1*time.Second, 0, trace.OpRead, 1))
	m.Record(rec(2*time.Second, 0, trace.OpRead, 1))
	m.Record(rec(2*time.Minute, 0, trace.OpRead, 1))
	s := m.EndPeriod(2*time.Minute + time.Second)[0]
	if s.LongIntervals != 1 {
		t.Fatalf("long intervals %d, want 1", s.LongIntervals)
	}
	if s.Sequences != 2 {
		t.Fatalf("sequences %d, want 2", s.Sequences)
	}
	if s.LongIntervalSum != 2*time.Minute-2*time.Second {
		t.Fatalf("long interval sum %v", s.LongIntervalSum)
	}
}

func TestAppMonitorHeadAndTailGaps(t *testing.T) {
	m := NewAppMonitor(1, be)
	// Single I/O in the middle: both the head gap and the tail gap exceed
	// the break-even time, like Fig. 1's boundary intervals.
	m.Record(rec(5*time.Minute, 0, trace.OpRead, 1))
	s := m.EndPeriod(10 * time.Minute)[0]
	if s.LongIntervals != 2 {
		t.Fatalf("boundary long intervals %d, want 2", s.LongIntervals)
	}
	if s.LongIntervalSum != 10*time.Minute {
		t.Fatalf("long interval sum %v", s.LongIntervalSum)
	}
}

func TestAppMonitorPeakIOPS(t *testing.T) {
	m := NewAppMonitor(1, be)
	for i := 0; i < 7; i++ {
		m.Record(rec(10*time.Second+time.Duration(i)*10*time.Millisecond, 0, trace.OpRead, 1))
	}
	m.Record(rec(20*time.Second, 0, trace.OpRead, 1))
	s := m.EndPeriod(time.Minute)[0]
	if s.PeakIOPS != 7 {
		t.Fatalf("peak IOPS %v, want 7", s.PeakIOPS)
	}
}

func TestAppMonitorPeriodsReset(t *testing.T) {
	m := NewAppMonitor(1, be)
	m.Record(rec(time.Second, 0, trace.OpRead, 1))
	m.EndPeriod(time.Minute)
	s := m.EndPeriod(2 * time.Minute)[0]
	if s.Count != 0 {
		t.Fatal("counts leaked across periods")
	}
	if m.PeriodStart() != 2*time.Minute {
		t.Fatalf("period start %v", m.PeriodStart())
	}
}

// TestAppMonitorIntervalInvariant: for any trace, each item's Long
// Interval total never exceeds the period, and sequences are at most
// long intervals + 1.
func TestAppMonitorIntervalInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewAppMonitor(3, be)
		period := 30 * time.Minute
		var tm time.Duration
		for i := 0; i < 200; i++ {
			tm += time.Duration(rng.Int63n(int64(2 * time.Minute)))
			if tm >= period {
				break
			}
			m.Record(rec(tm, trace.ItemID(rng.Intn(3)), trace.Op(rng.Intn(2)), 1))
		}
		for _, s := range m.EndPeriod(period) {
			if s.LongIntervalSum > period {
				return false
			}
			if s.Count > 0 && s.Sequences > s.LongIntervals+1 {
				return false
			}
			if s.Count == 0 && s.LongIntervals != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStorageMonitorIntervals(t *testing.T) {
	m := NewStorageMonitor(2)
	p := func(t time.Duration, e int32, op trace.Op) trace.PhysicalRecord {
		return trace.PhysicalRecord{Time: t, Enclosure: e, Op: op}
	}
	m.RecordPhysical(p(10*time.Second, 0, trace.OpRead))
	m.RecordPhysical(p(5*time.Minute, 0, trace.OpWrite))
	m.Finish(10 * time.Minute)
	iv := m.Intervals(0)
	// Gaps: 10s (head), 4m50s, 5m (tail).
	if got := iv.CumulativeLongerThan(be); got != 4*time.Minute+50*time.Second+5*time.Minute {
		t.Fatalf("cumulative above break-even %v", got)
	}
	if iv.MaxGap != 5*time.Minute {
		t.Fatalf("max gap %v", iv.MaxGap)
	}
	if m.Reads(0) != 1 || m.Writes(0) != 1 {
		t.Fatal("op counts wrong")
	}
	// Enclosure 1 never saw I/O: one 10-minute gap.
	if got := m.Intervals(1).CumulativeLongerThan(be); got != 10*time.Minute {
		t.Fatalf("untouched enclosure cumulative %v", got)
	}
}

func TestStorageMonitorPowerLog(t *testing.T) {
	m := NewStorageMonitor(1)
	m.RecordPower(0, time.Minute, false)
	m.RecordPower(0, 2*time.Minute, true)
	if len(m.PowerLog()) != 2 || m.SpinUps(0) != 1 {
		t.Fatalf("power log %+v spinups %d", m.PowerLog(), m.SpinUps(0))
	}
	if m.Enclosures() != 1 {
		t.Fatal("enclosure count")
	}
}

func TestIntervalBucketsMonotone(t *testing.T) {
	var iv EnclosureIntervals
	iv.add(time.Second)
	iv.add(10 * time.Second)
	iv.add(100 * time.Second)
	iv.add(1000 * time.Second)
	prev := iv.CumulativeLongerThan(0)
	for th := time.Second; th < 2*time.Hour; th *= 2 {
		cur := iv.CumulativeLongerThan(th)
		if cur > prev {
			t.Fatalf("cumulative not monotone at %v", th)
		}
		prev = cur
	}
}
