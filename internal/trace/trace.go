// Package trace defines the I/O trace model shared by the whole system:
// application-level (logical) records keyed by data item, storage-level
// (physical) records keyed by disk enclosure and block address, the item
// catalog that names data items, and codecs for storing traces on disk.
//
// The terminology follows the paper. A data item is a fragment of an
// application's data on one disk enclosure (a file for file servers, a
// table or index partition for a DBMS). A logical I/O trace record carries
// a timestamp, a data-item identifier, the offset within the item, the I/O
// size, and the I/O type. A physical record carries a timestamp, a disk
// enclosure, a block address, a size and an I/O type.
package trace

import (
	"fmt"
	"sort"
	"time"
)

// Op is the I/O type of a trace record.
type Op uint8

const (
	// OpRead is a read I/O.
	OpRead Op = iota
	// OpWrite is a write I/O.
	OpWrite
)

// String returns "R" or "W".
func (o Op) String() string {
	switch o {
	case OpRead:
		return "R"
	case OpWrite:
		return "W"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// ItemID identifies a data item within a Catalog. IDs are dense small
// integers so that per-item state can live in slices.
type ItemID int32

// NoItem is the zero ItemID used when an item reference is absent.
const NoItem ItemID = -1

// LogicalRecord is one application-level I/O.
type LogicalRecord struct {
	// Time is the virtual time the I/O was issued, measured from the start
	// of the trace.
	Time time.Duration
	// Item is the data item the I/O targets.
	Item ItemID
	// Offset is the byte offset within the data item.
	Offset int64
	// Size is the I/O size in bytes.
	Size int32
	// Op is the I/O type.
	Op Op
}

// PhysicalRecord is one storage-level I/O as observed beneath the block
// virtualization layer.
type PhysicalRecord struct {
	// Time is the virtual time the I/O reached the enclosure.
	Time time.Duration
	// Enclosure is the disk enclosure index.
	Enclosure int32
	// Block is the block (byte) address within the enclosure.
	Block int64
	// Size is the I/O size in bytes.
	Size int32
	// Op is the I/O type.
	Op Op
}

// Item is the catalog entry for a data item.
type Item struct {
	// Name is the application-level name, e.g. "tpcc/stock.p3" or
	// "vol07/file0042".
	Name string
	// Size is the item size in bytes.
	Size int64
}

// Catalog names the data items referenced by a logical trace. It is the
// "logical mapping information" half that identifies data; the placement of
// items onto volumes and enclosures is owned by the storage layer.
type Catalog struct {
	items  []Item
	byName map[string]ItemID
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: make(map[string]ItemID)}
}

// Add registers a data item and returns its ID. Adding a name twice panics:
// item names are created by workload generators and must be unique.
func (c *Catalog) Add(name string, size int64) ItemID {
	if _, ok := c.byName[name]; ok {
		panic("trace: duplicate item name " + name)
	}
	id := ItemID(len(c.items))
	c.items = append(c.items, Item{Name: name, Size: size})
	c.byName[name] = id
	return id
}

// Len returns the number of items in the catalog.
func (c *Catalog) Len() int { return len(c.items) }

// Item returns the catalog entry for id.
func (c *Catalog) Item(id ItemID) Item { return c.items[id] }

// Name returns the name of id.
func (c *Catalog) Name(id ItemID) string { return c.items[id].Name }

// Size returns the size in bytes of id.
func (c *Catalog) Size(id ItemID) int64 { return c.items[id].Size }

// Lookup returns the ID for name. The second result is false when the name
// is not in the catalog.
func (c *Catalog) Lookup(name string) (ItemID, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// IDs returns all item IDs in ascending order.
func (c *Catalog) IDs() []ItemID {
	ids := make([]ItemID, len(c.items))
	for i := range ids {
		ids[i] = ItemID(i)
	}
	return ids
}

// SortLogical sorts recs by time, breaking ties by item then offset, so a
// generated trace is in replay order and deterministic. pdqsort is
// unstable but deterministic for a given input, which is all the
// generators need.
func SortLogical(recs []LogicalRecord) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Time != recs[j].Time {
			return recs[i].Time < recs[j].Time
		}
		if recs[i].Item != recs[j].Item {
			return recs[i].Item < recs[j].Item
		}
		return recs[i].Offset < recs[j].Offset
	})
}

// MergeLogical merges already-sorted logical traces into one sorted trace
// using a k-way heap merge: O(n log k) instead of the O(nk) linear scan it
// replaces, with ties between traces still going to the lowest index.
// Unsorted inputs are a caller bug and panic.
func MergeLogical(traces ...[]LogicalRecord) []LogicalRecord {
	total := 0
	srcs := make([]Source, len(traces))
	for k, t := range traces {
		total += len(t)
		srcs[k] = NewSliceSource(t)
	}
	out := make([]LogicalRecord, 0, total)
	m := MergeSources(srcs...)
	for {
		rec, ok := m.Next()
		if !ok {
			break
		}
		out = append(out, rec)
	}
	if err := m.Err(); err != nil {
		panic("trace: MergeLogical: " + err.Error())
	}
	return out
}

// Summary aggregates whole-trace statistics.
type Summary struct {
	Records  int
	Reads    int
	Writes   int
	Bytes    int64
	Start    time.Duration
	End      time.Duration
	Items    int // distinct items touched
	MaxItem  ItemID
	ReadFrac float64
}

// Summarize computes a Summary over recs.
func Summarize(recs []LogicalRecord) Summary {
	var s Summary
	if len(recs) == 0 {
		return s
	}
	seen := make(map[ItemID]struct{})
	s.Start = recs[0].Time
	s.End = recs[0].Time
	for _, r := range recs {
		s.Records++
		if r.Op == OpRead {
			s.Reads++
		} else {
			s.Writes++
		}
		s.Bytes += int64(r.Size)
		if r.Time < s.Start {
			s.Start = r.Time
		}
		if r.Time > s.End {
			s.End = r.Time
		}
		if r.Item > s.MaxItem {
			s.MaxItem = r.Item
		}
		seen[r.Item] = struct{}{}
	}
	s.Items = len(seen)
	if s.Records > 0 {
		s.ReadFrac = float64(s.Reads) / float64(s.Records)
	}
	return s
}

// String formats the summary for human consumption.
func (s Summary) String() string {
	return fmt.Sprintf("%d records (%d R / %d W, %.1f%% read), %d items, %.2f GB, span %v",
		s.Records, s.Reads, s.Writes, s.ReadFrac*100, s.Items,
		float64(s.Bytes)/(1<<30), s.End-s.Start)
}
