package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestNDJSONRoundTrip(t *testing.T) {
	recs := []LogicalRecord{
		{Time: 0, Item: 0, Offset: 0, Size: 512, Op: OpRead},
		{Time: 1500 * time.Millisecond, Item: 3, Offset: 4096, Size: 8192, Op: OpWrite},
		{Time: 1500 * time.Millisecond, Item: 2, Offset: 0, Size: 1 << 20, Op: OpRead},
		{Time: time.Hour, Item: 1<<31 - 1, Offset: 1 << 40, Size: 1<<31 - 1, Op: OpWrite},
	}
	var buf bytes.Buffer
	w := NewNDJSONWriter(&buf)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(recs)) {
		t.Fatalf("writer count %d, want %d", w.Count(), len(recs))
	}

	r := NewNDJSONReader(&buf)
	var got []LogicalRecord
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestNDJSONWriterRejectsOutOfOrder(t *testing.T) {
	w := NewNDJSONWriter(io.Discard)
	if err := w.Append(LogicalRecord{Time: time.Second, Size: 1, Op: OpRead}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(LogicalRecord{Time: 0, Size: 1, Op: OpRead}); err == nil {
		t.Fatal("out-of-order append accepted")
	}
}

func TestNDJSONReaderErrors(t *testing.T) {
	cases := []struct {
		name, in, frag string
	}{
		{"garbage", "not json\n", "line 1"},
		{"negative time", `{"t_ns":-1,"item":0,"off":0,"size":1,"op":"R"}` + "\n", "negative time"},
		{"zero size", `{"t_ns":0,"item":0,"off":0,"size":0,"op":"R"}` + "\n", "size"},
		{"bad op", `{"t_ns":0,"item":0,"off":0,"size":1,"op":"Q"}` + "\n", "invalid op"},
		{"item overflow", `{"t_ns":0,"item":2147483648,"off":0,"size":1,"op":"R"}` + "\n", "out of range"},
		{"out of order", `{"t_ns":5,"item":0,"off":0,"size":1,"op":"R"}` + "\n" +
			`{"t_ns":1,"item":0,"off":0,"size":1,"op":"R"}` + "\n", "out of order"},
	}
	for _, c := range cases {
		r := NewNDJSONReader(strings.NewReader(c.in))
		var err error
		for err == nil {
			_, err = r.Next()
		}
		if errors.Is(err, io.EOF) || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %v, want fragment %q", c.name, err, c.frag)
		}
	}
}

func TestNDJSONReaderSkipsBlankLinesAndIsSticky(t *testing.T) {
	in := "\n" + `{"t_ns":0,"item":0,"off":0,"size":1,"op":"R"}` + "\n  \n" +
		`{"t_ns":1,"item":1,"off":0,"size":1,"op":"W"}` + "\n"
	r := NewNDJSONReader(strings.NewReader(in))
	for i := 0; i < 2; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if r.Count() != 2 {
		t.Fatalf("count %d, want 2", r.Count())
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
	// EOF is sticky.
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("second Next after EOF: %v", err)
	}
}
