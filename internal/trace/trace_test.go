package trace

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestOpString(t *testing.T) {
	if OpRead.String() != "R" || OpWrite.String() != "W" {
		t.Fatalf("op strings: %s %s", OpRead, OpWrite)
	}
	if !strings.Contains(Op(9).String(), "9") {
		t.Fatalf("unknown op string %q", Op(9))
	}
}

func TestCatalogBasics(t *testing.T) {
	c := NewCatalog()
	a := c.Add("tpcc/stock.p0", 1<<30)
	b := c.Add("tpcc/stock.p1", 2<<30)
	if a == b {
		t.Fatal("duplicate IDs")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Name(a) != "tpcc/stock.p0" || c.Size(b) != 2<<30 {
		t.Fatal("catalog entry mismatch")
	}
	if got, ok := c.Lookup("tpcc/stock.p1"); !ok || got != b {
		t.Fatalf("lookup = %v,%v", got, ok)
	}
	if _, ok := c.Lookup("absent"); ok {
		t.Fatal("lookup of absent name succeeded")
	}
	ids := c.IDs()
	if len(ids) != 2 || ids[0] != a || ids[1] != b {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestCatalogDuplicatePanics(t *testing.T) {
	c := NewCatalog()
	c.Add("x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	c.Add("x", 2)
}

func TestSortLogical(t *testing.T) {
	recs := []LogicalRecord{
		{Time: 3 * time.Second, Item: 1},
		{Time: 1 * time.Second, Item: 2},
		{Time: 1 * time.Second, Item: 1, Offset: 5},
		{Time: 1 * time.Second, Item: 1, Offset: 2},
	}
	SortLogical(recs)
	want := []struct {
		t    time.Duration
		item ItemID
		off  int64
	}{
		{time.Second, 1, 2}, {time.Second, 1, 5}, {time.Second, 2, 0}, {3 * time.Second, 1, 0},
	}
	for i, w := range want {
		if recs[i].Time != w.t || recs[i].Item != w.item || recs[i].Offset != w.off {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], w)
		}
	}
}

func TestMergeLogical(t *testing.T) {
	a := []LogicalRecord{{Time: 1}, {Time: 4}}
	b := []LogicalRecord{{Time: 2}, {Time: 3}, {Time: 5}}
	got := MergeLogical(a, b)
	if len(got) != 5 {
		t.Fatalf("merged %d records", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatalf("merge out of order at %d", i)
		}
	}
	if len(MergeLogical()) != 0 {
		t.Fatal("empty merge should be empty")
	}
}

func TestSummarize(t *testing.T) {
	recs := []LogicalRecord{
		{Time: time.Second, Item: 0, Size: 100, Op: OpRead},
		{Time: 2 * time.Second, Item: 1, Size: 200, Op: OpWrite},
		{Time: 3 * time.Second, Item: 0, Size: 300, Op: OpRead},
	}
	s := Summarize(recs)
	if s.Records != 3 || s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("summary counts %+v", s)
	}
	if s.Bytes != 600 || s.Items != 2 || s.Start != time.Second || s.End != 3*time.Second {
		t.Fatalf("summary %+v", s)
	}
	if s.ReadFrac < 0.66 || s.ReadFrac > 0.67 {
		t.Fatalf("read frac %v", s.ReadFrac)
	}
	if !strings.Contains(s.String(), "3 records") {
		t.Fatalf("summary string %q", s)
	}
	if Summarize(nil).Records != 0 {
		t.Fatal("empty summary not zero")
	}
}

func randomRecords(rng *rand.Rand, n int) []LogicalRecord {
	recs := make([]LogicalRecord, n)
	var t time.Duration
	for i := range recs {
		t += time.Duration(rng.Int63n(int64(time.Minute)))
		recs[i] = LogicalRecord{
			Time:   t,
			Item:   ItemID(rng.Intn(50)),
			Offset: rng.Int63n(1 << 40),
			Size:   int32(rng.Intn(1<<20) + 1),
			Op:     Op(rng.Intn(2)),
		}
	}
	return recs
}

// TestSortIdempotent: sorting a sorted trace must not change it.
func TestSortIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randomRecords(rng, 200)
		SortLogical(recs)
		before := append([]LogicalRecord(nil), recs...)
		SortLogical(recs)
		for i := range recs {
			if recs[i] != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
