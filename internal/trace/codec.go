// Binary and text codecs for logical traces and catalogs.
//
// The binary format is a compact delta/varint encoding: six-hour
// enterprise traces run to tens of millions of records, and the CSV form
// exists only for human inspection and interchange.

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// binaryMagic identifies the binary logical-trace format, version 1.
const binaryMagic = "ESMTRC1\n"

// maxRecords bounds the record count a binary header may claim, so a
// corrupt header cannot trigger an enormous allocation.
const maxRecords = 1 << 31

// WriteBinary encodes recs to w in the compact binary format. Records must
// already be sorted by time; WriteBinary returns an error otherwise so a
// corrupt trace is never produced silently.
func WriteBinary(w io.Writer, recs []LogicalRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(recs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	var prev time.Duration
	for i, r := range recs {
		if r.Time < prev {
			return fmt.Errorf("trace: record %d out of order (%v after %v)", i, r.Time, prev)
		}
		n := binary.PutUvarint(buf[:], uint64(r.Time-prev))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prev = r.Time
		n = binary.PutUvarint(buf[:], uint64(r.Item))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		n = binary.PutUvarint(buf[:], uint64(r.Offset))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		n = binary.PutUvarint(buf[:], uint64(r.Size))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(r.Op)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a binary trace written by WriteBinary.
func ReadBinary(r io.Reader) ([]LogicalRecord, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, errors.New("trace: not an ESM binary trace")
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	if n > maxRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", n)
	}
	recs := make([]LogicalRecord, 0, n)
	var prev time.Duration
	off := int64(len(binaryMagic) + len(hdr))
	for i := uint64(0); i < n; i++ {
		rec, err := readBinaryRecord(br, &prev, i, &off)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// binaryFieldNames maps readVarintRecord's field indices to the batch
// format's error vocabulary.
var binaryFieldNames = [...]string{"time", "item", "offset", "size", "op"}

// readBinaryRecord decodes one delta/varint record from br, advancing
// *prev to the record's absolute time and *off past the record's encoded
// bytes. i is only used in error messages. The decode is allocation-free
// on the hot path: the whole record is peeked out of the reader's buffer
// and consumed in one Discard.
func readBinaryRecord(br *bufio.Reader, prev *time.Duration, i uint64, off *int64) (LogicalRecord, error) {
	raw, n, err := readVarintRecord(br, func(field int, err error) error {
		return fmt.Errorf("trace: record %d %s: %w", i, binaryFieldNames[field], err)
	})
	if err != nil {
		return LogicalRecord{}, err
	}
	if raw.op > uint8(OpWrite) {
		return LogicalRecord{}, fmt.Errorf("trace: record %d has invalid op %d", i, raw.op)
	}
	t, ok := addDelta(*prev, raw.dt)
	if !ok {
		return LogicalRecord{}, &OrderError{
			Format: "binary", Record: int64(i), Offset: *off,
			Prev: *prev, Got: time.Duration(*prev + time.Duration(raw.dt)),
		}
	}
	*prev = t
	*off += int64(n)
	return LogicalRecord{
		Time:   t,
		Item:   ItemID(raw.item),
		Offset: int64(raw.off),
		Size:   int32(raw.size),
		Op:     Op(raw.op),
	}, nil
}

// WriteCSV encodes recs as "time_ns,item,offset,size,op" lines with a
// header row.
func WriteCSV(w io.Writer, recs []LogicalRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("time_ns,item,offset,size,op\n"); err != nil {
		return err
	}
	for _, r := range recs {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d,%s\n",
			int64(r.Time), r.Item, r.Offset, r.Size, r.Op); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV decodes a trace written by WriteCSV. Records must be in time
// order; an unsorted line returns a typed *OrderError at decode time.
func ReadCSV(r io.Reader) ([]LogicalRecord, error) {
	cr := NewCSVReader(r)
	var recs []LogicalRecord
	for {
		rec, err := cr.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
}

// parseCSVLine decodes one non-empty "time_ns,item,offset,size,op" data
// line. line is the 1-based line number, used in error messages. The
// streaming readers bypass it and hand their scanner's byte slice
// straight to parseCSVFields, which never allocates on success.
func parseCSVLine(text string, line int) (LogicalRecord, error) {
	return parseCSVFields([]byte(text), line)
}

// parseCSVFields decodes one non-empty data line from its raw bytes
// without allocating: fields are split in place and the integers parsed
// with parseIntBytes. Error paths fall back to allocating formatting.
func parseCSVFields(b []byte, line int) (LogicalRecord, error) {
	var fields [5][]byte
	n := 0
	start := 0
	for i := 0; i <= len(b); i++ {
		if i == len(b) || b[i] == ',' {
			if n == 5 {
				return LogicalRecord{}, fmt.Errorf("trace: line %d: want 5 fields, got %d", line, countFields(b))
			}
			fields[n] = b[start:i]
			n++
			start = i + 1
		}
	}
	if n != 5 {
		return LogicalRecord{}, fmt.Errorf("trace: line %d: want 5 fields, got %d", line, n)
	}
	t, err := parseIntBytes(fields[0], math.MaxInt64)
	if err != nil {
		return LogicalRecord{}, fmt.Errorf("trace: line %d time: %w", line, err)
	}
	item, err := parseIntBytes(fields[1], math.MaxInt32)
	if err != nil {
		return LogicalRecord{}, fmt.Errorf("trace: line %d item: %w", line, err)
	}
	off, err := parseIntBytes(fields[2], math.MaxInt64)
	if err != nil {
		return LogicalRecord{}, fmt.Errorf("trace: line %d offset: %w", line, err)
	}
	size, err := parseIntBytes(fields[3], math.MaxInt32)
	if err != nil {
		return LogicalRecord{}, fmt.Errorf("trace: line %d size: %w", line, err)
	}
	var op Op
	switch {
	case len(fields[4]) == 1 && fields[4][0] == 'R':
		op = OpRead
	case len(fields[4]) == 1 && fields[4][0] == 'W':
		op = OpWrite
	default:
		return LogicalRecord{}, fmt.Errorf("trace: line %d: invalid op %q", line, string(fields[4]))
	}
	return LogicalRecord{
		Time:   time.Duration(t),
		Item:   ItemID(item),
		Offset: off,
		Size:   int32(size),
		Op:     op,
	}, nil
}

// countFields counts comma-separated fields for the too-many-fields
// error message (matching what strings.Split would have reported).
func countFields(b []byte) int {
	n := 1
	for _, c := range b {
		if c == ',' {
			n++
		}
	}
	return n
}

// parseIntBytes parses a signed decimal integer bounded by max without
// allocating on the success path. It accepts what
// strconv.ParseInt(s, 10, bits) accepts for the codec's field widths
// and returns strconv-shaped errors so the messages stay stable.
func parseIntBytes(b []byte, max int64) (int64, error) {
	fail := func(err error) (int64, error) {
		return 0, &strconv.NumError{Func: "ParseInt", Num: string(b), Err: err}
	}
	if len(b) == 0 {
		return fail(strconv.ErrSyntax)
	}
	neg := false
	i := 0
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		i++
		if len(b) == 1 {
			return fail(strconv.ErrSyntax)
		}
	}
	var v uint64
	limit := uint64(max)
	if neg {
		limit++
	}
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return fail(strconv.ErrSyntax)
		}
		if v > limit/10 {
			return fail(strconv.ErrRange)
		}
		v = v*10 + uint64(c-'0')
		if v > limit {
			return fail(strconv.ErrRange)
		}
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// WriteCatalog encodes a catalog as "id,size,name" lines.
func WriteCatalog(w io.Writer, c *Catalog) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("id,size,name\n"); err != nil {
		return err
	}
	for _, id := range c.IDs() {
		it := c.Item(id)
		if strings.ContainsAny(it.Name, ",\n") {
			return fmt.Errorf("trace: item name %q contains a separator", it.Name)
		}
		if _, err := fmt.Fprintf(bw, "%d,%d,%s\n", id, it.Size, it.Name); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCatalog decodes a catalog written by WriteCatalog. IDs must be dense
// and ascending from zero, matching what Catalog.Add produces.
func ReadCatalog(r io.Reader) (*Catalog, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	c := NewCatalog()
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 && strings.HasPrefix(text, "id,") {
			continue
		}
		if text == "" {
			continue
		}
		fields := strings.SplitN(text, ",", 3)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: catalog line %d: want 3 fields", line)
		}
		id, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: catalog line %d id: %w", line, err)
		}
		size, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: catalog line %d size: %w", line, err)
		}
		got := c.Add(fields[2], size)
		if got != ItemID(id) {
			return nil, fmt.Errorf("trace: catalog line %d: non-dense id %d (expected %d)", line, id, got)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// WritePlacement encodes an item→enclosure layout as "item,enclosure"
// lines. The slice is indexed by ItemID.
func WritePlacement(w io.Writer, placement []int) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("item,enclosure\n"); err != nil {
		return err
	}
	for item, enc := range placement {
		if _, err := fmt.Fprintf(bw, "%d,%d\n", item, enc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPlacement decodes a layout written by WritePlacement.
func ReadPlacement(r io.Reader) ([]int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var placement []int
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 && strings.HasPrefix(text, "item,") {
			continue
		}
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 2 {
			return nil, fmt.Errorf("trace: placement line %d: want 2 fields", line)
		}
		item, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: placement line %d item: %w", line, err)
		}
		enc, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: placement line %d enclosure: %w", line, err)
		}
		if int(item) != len(placement) {
			return nil, fmt.Errorf("trace: placement line %d: non-dense item %d", line, item)
		}
		placement = append(placement, int(enc))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return placement, nil
}

// ParseCSVRecord decodes one "time_ns,item,offset,size,op" data line —
// the per-line form of ReadCSV for streaming consumers (stdin daemons,
// live ingest). line is the 1-based line number used in error messages.
// Beyond the field syntax it enforces the stream invariants a batch
// reader can leave to the caller: non-negative time, positive size.
func ParseCSVRecord(text string, line int) (LogicalRecord, error) {
	rec, err := parseCSVLine(text, line)
	if err != nil {
		return LogicalRecord{}, err
	}
	if rec.Time < 0 {
		return LogicalRecord{}, fmt.Errorf("trace: line %d: negative time %d", line, int64(rec.Time))
	}
	if rec.Size <= 0 {
		return LogicalRecord{}, fmt.Errorf("trace: line %d: non-positive size %d", line, rec.Size)
	}
	return rec, nil
}
