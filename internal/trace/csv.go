// Streaming CSV access to logical traces: the incremental, sticky-error
// sibling of StreamReader and NDJSONReader. The batch ReadCSV and the
// FileSource text path are both built on it, so every CSV consumer gets
// the same semantics: header and blank lines skipped wherever they
// appear (concatenated streams work), allocation-free decode of data
// lines, monotonic timestamps enforced at decode time with a typed
// *OrderError, and a sticky error after which Next makes no progress
// and Count stays put.

package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"time"
)

// csvHeader is the header prefix tolerated (and skipped) on any line.
var csvHeader = []byte("time_ns")

// CSVReader decodes logical records from "time_ns,item,offset,size,op"
// lines. Records must be in time order.
type CSVReader struct {
	sc    *bufio.Scanner
	prev  int64 // previous record's time in ns; -1 before the first
	line  int64
	count int64
	err   error
}

// NewCSVReader returns a reader over r. Lines up to 1 MiB are accepted.
func NewCSVReader(r io.Reader) *CSVReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &CSVReader{sc: sc, prev: -1}
}

// Next returns the next record. It returns io.EOF at the clean end of
// the input and a line-numbered error on corruption; after any error
// (including EOF) further calls return the same error and Count stops
// advancing.
func (r *CSVReader) Next() (LogicalRecord, error) {
	if r.err != nil {
		return LogicalRecord{}, r.err
	}
	for r.sc.Scan() {
		r.line++
		b := bytes.TrimSpace(r.sc.Bytes())
		if len(b) == 0 || bytes.HasPrefix(b, csvHeader) {
			continue
		}
		rec, err := parseCSVFields(b, int(r.line))
		if err != nil {
			r.err = err
			return LogicalRecord{}, r.err
		}
		if rec.Time < 0 {
			r.err = fmt.Errorf("trace: line %d: negative time %d", r.line, int64(rec.Time))
			return LogicalRecord{}, r.err
		}
		if rec.Size <= 0 {
			r.err = fmt.Errorf("trace: line %d: non-positive size %d", r.line, rec.Size)
			return LogicalRecord{}, r.err
		}
		if int64(rec.Time) < r.prev {
			r.err = &OrderError{
				Format: "csv", Record: r.count, Line: r.line, Offset: -1,
				Prev: time.Duration(r.prev), Got: rec.Time,
			}
			return LogicalRecord{}, r.err
		}
		r.prev = int64(rec.Time)
		r.count++
		return rec, nil
	}
	if err := r.sc.Err(); err != nil {
		r.err = fmt.Errorf("trace: csv line %d: %w", r.line+1, err)
		return LogicalRecord{}, r.err
	}
	r.err = io.EOF
	return LogicalRecord{}, io.EOF
}

// Count returns how many records have been decoded so far.
func (r *CSVReader) Count() int64 { return r.count }

// Line returns the 1-based number of the last line consumed.
func (r *CSVReader) Line() int64 { return r.line }
