// Streaming access to binary traces: an incremental reader and an
// appending writer, so tools can process traces far larger than memory.

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// streamMagic identifies the streaming binary format, which carries no
// up-front record count (the stream ends at EOF).
const streamMagic = "ESMSTR1\n"

// StreamWriter encodes logical records incrementally. Records must be
// appended in time order. Close flushes the underlying buffer.
type StreamWriter struct {
	bw    *bufio.Writer
	prev  time.Duration
	count int64
	begun bool
}

// NewStreamWriter returns a writer targeting w.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{bw: bufio.NewWriter(w)}
}

// Append encodes one record.
func (w *StreamWriter) Append(r LogicalRecord) error {
	if !w.begun {
		w.begun = true
		if _, err := w.bw.WriteString(streamMagic); err != nil {
			return err
		}
	}
	if r.Time < w.prev {
		return fmt.Errorf("trace: record %d out of order (%v after %v)", w.count, r.Time, w.prev)
	}
	var buf [binary.MaxVarintLen64]byte
	for _, v := range [4]uint64{uint64(r.Time - w.prev), uint64(r.Item), uint64(r.Offset), uint64(r.Size)} {
		n := binary.PutUvarint(buf[:], v)
		if _, err := w.bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	if err := w.bw.WriteByte(byte(r.Op)); err != nil {
		return err
	}
	w.prev = r.Time
	w.count++
	return nil
}

// Count returns how many records have been appended.
func (w *StreamWriter) Count() int64 { return w.count }

// Close flushes buffered output. It does not close the underlying
// writer.
func (w *StreamWriter) Close() error {
	if !w.begun {
		// An empty stream still carries the magic so readers can tell it
		// apart from a missing file.
		w.begun = true
		if _, err := w.bw.WriteString(streamMagic); err != nil {
			return err
		}
	}
	return w.bw.Flush()
}

// StreamReader decodes logical records incrementally. After any error
// (including io.EOF) the reader is sticky: further Next calls return
// the same error and Count stops advancing.
type StreamReader struct {
	br    *bufio.Reader
	prev  time.Duration
	off   int64
	count int64
	err   error
	begun bool
}

// NewStreamReader returns a reader over r.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{br: bufio.NewReader(r)}
}

// Next returns the next record. It returns io.EOF at the clean end of
// the stream and a descriptive error on corruption.
func (r *StreamReader) Next() (LogicalRecord, error) {
	if r.err != nil {
		return LogicalRecord{}, r.err
	}
	if !r.begun {
		r.begun = true
		magic := make([]byte, len(streamMagic))
		if _, err := io.ReadFull(r.br, magic); err != nil {
			r.err = fmt.Errorf("trace: reading stream magic: %w", err)
			return LogicalRecord{}, r.err
		}
		if string(magic) != streamMagic {
			r.err = errors.New("trace: not an ESM stream trace")
			return LogicalRecord{}, r.err
		}
		r.off = int64(len(streamMagic))
	}
	// A clean stream ends exactly between records; probe one byte so EOF
	// there is not a truncation error.
	if _, err := r.br.Peek(1); err == io.EOF {
		r.err = io.EOF
		return LogicalRecord{}, io.EOF
	}
	raw, n, err := readVarintRecord(r.br, func(field int, err error) error {
		if field == 0 && err == io.EOF {
			// Truncation exactly at a record boundary: clean end of stream.
			return io.EOF
		}
		return fmt.Errorf("trace: stream record %d %s: %w", r.count, streamFieldNames[field], err)
	})
	if err != nil {
		r.err = err
		return LogicalRecord{}, r.err
	}
	if raw.op > uint8(OpWrite) {
		r.err = fmt.Errorf("trace: stream record %d has invalid op %d", r.count, raw.op)
		return LogicalRecord{}, r.err
	}
	t, ok := addDelta(r.prev, raw.dt)
	if !ok {
		r.err = &OrderError{
			Format: "stream", Record: r.count, Offset: r.off,
			Prev: r.prev, Got: r.prev + time.Duration(raw.dt),
		}
		return LogicalRecord{}, r.err
	}
	r.prev = t
	r.off += int64(n)
	r.count++
	return LogicalRecord{
		Time:   t,
		Item:   ItemID(raw.item),
		Offset: int64(raw.off),
		Size:   int32(raw.size),
		Op:     Op(raw.op),
	}, nil
}

// streamFieldNames maps readVarintRecord's field indices to the stream
// format's error vocabulary.
var streamFieldNames = [...]string{"time", "field 1", "field 2", "field 3", "op"}

// Count returns how many records have been decoded so far.
func (r *StreamReader) Count() int64 { return r.count }
