package trace

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// allocRecords synthesizes n well-formed records with the shapes the
// decoders see in practice: micro-spaced arrivals with occasional
// equal-timestamp bursts, a few dozen distinct items, mixed ops.
func allocRecords(n int) []LogicalRecord {
	recs := make([]LogicalRecord, n)
	for i := range recs {
		t := time.Duration(i) * time.Microsecond
		if i%7 == 0 && i > 0 {
			t = recs[i-1].Time // burst: same timestamp as the previous record
		}
		op := OpRead
		if i%3 == 0 {
			op = OpWrite
		}
		recs[i] = LogicalRecord{
			Time:   t,
			Item:   ItemID(i % 64),
			Offset: int64(i%64) * 4096,
			Size:   4096,
			Op:     op,
		}
	}
	// Keep times non-decreasing after the burst substitution.
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			recs[i].Time = recs[i-1].Time
		}
	}
	return recs
}

// gateMarginalAllocs measures decode allocations at two input sizes and
// fails if the per-record difference exceeds limit. Fixed setup costs
// (readers, scanners, result slice headers) cancel out; only the
// per-record cost is gated.
func gateMarginalAllocs(t *testing.T, encode func([]LogicalRecord) []byte, decode func([]byte) int, limit float64) {
	t.Helper()
	const n = 2048
	small := encode(allocRecords(n))
	big := encode(allocRecords(2 * n))
	a1 := testing.AllocsPerRun(5, func() {
		if got := decode(small); got != n {
			t.Fatalf("decoded %d records, want %d", got, n)
		}
	})
	a2 := testing.AllocsPerRun(5, func() {
		if got := decode(big); got != 2*n {
			t.Fatalf("decoded %d records, want %d", got, 2*n)
		}
	})
	if per := (a2 - a1) / float64(n); per > limit {
		t.Errorf("%.4f allocs/record (%.0f allocs at n=%d, %.0f at n=%d), want <= %.4f",
			per, a1, n, a2, 2*n, limit)
	}
}

// drain counts the records an incremental reader yields.
func drain(t *testing.T, r incrementalReader) int {
	n := 0
	for {
		if _, err := r.Next(); err != nil {
			if err != io.EOF {
				t.Fatalf("decode failed after %d records: %v", n, err)
			}
			return n
		}
		n++
	}
}

// TestBinaryDecodeAllocs gates the batch binary decoder at zero
// allocations per record — the peek-and-discard fast path must never
// fall back to allocating per-record work on well-formed input.
func TestBinaryDecodeAllocs(t *testing.T) {
	gateMarginalAllocs(t,
		func(recs []LogicalRecord) []byte {
			var buf bytes.Buffer
			if err := WriteBinary(&buf, recs); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		},
		func(data []byte) int {
			recs, err := ReadBinary(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("decode failed: %v", err)
			}
			return len(recs)
		},
		0)
}

// TestStreamDecodeAllocs gates the incremental binary decoder at zero
// allocations per record.
func TestStreamDecodeAllocs(t *testing.T) {
	gateMarginalAllocs(t,
		func(recs []LogicalRecord) []byte {
			var buf bytes.Buffer
			w := NewStreamWriter(&buf)
			for _, r := range recs {
				if err := w.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		},
		func(data []byte) int { return drain(t, NewStreamReader(bytes.NewReader(data))) },
		0)
}

// TestCSVDecodeAllocs gates the CSV decoder at zero allocations per
// record: fields are split in place and parsed without strconv's
// string conversions.
func TestCSVDecodeAllocs(t *testing.T) {
	gateMarginalAllocs(t,
		func(recs []LogicalRecord) []byte {
			var buf bytes.Buffer
			if err := WriteCSV(&buf, recs); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		},
		func(data []byte) int { return drain(t, NewCSVReader(bytes.NewReader(data))) },
		0)
}

// TestNDJSONDecodeAllocs gates the NDJSON decoder at zero allocations
// per record on writer-generated input, where the fast-path parser
// handles every line and encoding/json is never consulted.
func TestNDJSONDecodeAllocs(t *testing.T) {
	gateMarginalAllocs(t,
		func(recs []LogicalRecord) []byte {
			var buf bytes.Buffer
			w := NewNDJSONWriter(&buf)
			for _, r := range recs {
				if err := w.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		},
		func(data []byte) int { return drain(t, NewNDJSONReader(bytes.NewReader(data))) },
		0)
}
