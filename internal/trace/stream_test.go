package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	recs := randomRecords(rng, 500)
	SortLogical(recs)
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 500 {
		t.Fatalf("writer count %d", w.Count())
	}
	r := NewStreamReader(&buf)
	for i := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	// EOF is sticky.
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("EOF not sticky: %v", err)
	}
	if r.Count() != 500 {
		t.Fatalf("reader count %d", r.Count())
	}
}

func TestStreamEmpty(t *testing.T) {
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewStreamReader(&buf)
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF on empty stream, got %v", err)
	}
}

func TestStreamRejectsOutOfOrder(t *testing.T) {
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	if err := w.Append(LogicalRecord{Time: 10}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(LogicalRecord{Time: 5}); err == nil {
		t.Fatal("out-of-order append accepted")
	}
}

func TestStreamRejectsGarbage(t *testing.T) {
	r := NewStreamReader(bytes.NewReader([]byte("garbage here")))
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("want corruption error, got %v", err)
	}
}

func TestStreamRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	recs := randomRecords(rng, 100)
	SortLogical(recs)
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	for _, rec := range recs {
		w.Append(rec)
	}
	w.Close()
	raw := buf.Bytes()
	r := NewStreamReader(bytes.NewReader(raw[:len(raw)-3]))
	var err error
	for {
		if _, err = r.Next(); err != nil {
			break
		}
	}
	if err == io.EOF {
		t.Fatal("truncated stream read to clean EOF")
	}
}

// TestStreamMatchesBatchFormatSemantics: streaming and batch decode of
// the same records agree.
func TestStreamMatchesBatchFormatSemantics(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randomRecords(rng, int(n))
		SortLogical(recs)
		var buf bytes.Buffer
		w := NewStreamWriter(&buf)
		for _, rec := range recs {
			if err := w.Append(rec); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		r := NewStreamReader(&buf)
		for i := 0; ; i++ {
			rec, err := r.Next()
			if err == io.EOF {
				return i == len(recs)
			}
			if err != nil || rec != recs[i] {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
