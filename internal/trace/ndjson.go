// NDJSON access to logical traces: one JSON object per line, the wire
// format of the fleet control plane's live ingest endpoint. It is the
// self-describing sibling of the binary stream codec — trivially
// produced by anything that can print JSON, at the cost of a fatter
// encoding.

package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ndjsonRecord is the wire form of one LogicalRecord.
type ndjsonRecord struct {
	TimeNS int64  `json:"t_ns"`
	Item   int64  `json:"item"`
	Offset int64  `json:"off"`
	Size   int32  `json:"size"`
	Op     string `json:"op"`
}

// NDJSONWriter encodes logical records as newline-delimited JSON.
// Records must be appended in time order. Close flushes the underlying
// buffer; it does not close the writer.
type NDJSONWriter struct {
	bw    *bufio.Writer
	prev  time.Duration
	count int64
}

// NewNDJSONWriter returns a writer targeting w.
func NewNDJSONWriter(w io.Writer) *NDJSONWriter {
	return &NDJSONWriter{bw: bufio.NewWriter(w)}
}

// Append encodes one record.
func (w *NDJSONWriter) Append(r LogicalRecord) error {
	if r.Time < w.prev {
		return fmt.Errorf("trace: ndjson record %d out of order (%v after %v)", w.count, r.Time, w.prev)
	}
	line, err := json.Marshal(ndjsonRecord{
		TimeNS: int64(r.Time), Item: int64(r.Item),
		Offset: r.Offset, Size: r.Size, Op: r.Op.String(),
	})
	if err != nil {
		return err
	}
	if _, err := w.bw.Write(line); err != nil {
		return err
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		return err
	}
	w.prev = r.Time
	w.count++
	return nil
}

// Count returns how many records have been appended.
func (w *NDJSONWriter) Count() int64 { return w.count }

// Close flushes buffered output.
func (w *NDJSONWriter) Close() error { return w.bw.Flush() }

// NDJSONReader decodes logical records from newline-delimited JSON.
// Blank lines are skipped. Records must be in time order.
type NDJSONReader struct {
	sc    *bufio.Scanner
	prev  time.Duration
	line  int64
	count int64
	err   error
}

// NewNDJSONReader returns a reader over r. Lines up to 1 MiB are
// accepted.
func NewNDJSONReader(r io.Reader) *NDJSONReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &NDJSONReader{sc: sc}
}

// Next returns the next record. It returns io.EOF at the clean end of
// the input and a line-numbered error on corruption.
func (r *NDJSONReader) Next() (LogicalRecord, error) {
	if r.err != nil {
		return LogicalRecord{}, r.err
	}
	for r.sc.Scan() {
		r.line++
		line := r.sc.Bytes()
		if len(trimSpace(line)) == 0 {
			continue
		}
		var rec ndjsonRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			r.err = fmt.Errorf("trace: ndjson line %d: %w", r.line, err)
			return LogicalRecord{}, r.err
		}
		out, err := rec.toLogical()
		if err != nil {
			r.err = fmt.Errorf("trace: ndjson line %d: %w", r.line, err)
			return LogicalRecord{}, r.err
		}
		if out.Time < r.prev {
			r.err = fmt.Errorf("trace: ndjson line %d: records out of order (%v after %v)", r.line, out.Time, r.prev)
			return LogicalRecord{}, r.err
		}
		r.prev = out.Time
		r.count++
		return out, nil
	}
	if err := r.sc.Err(); err != nil {
		r.err = err
		return LogicalRecord{}, err
	}
	r.err = io.EOF
	return LogicalRecord{}, io.EOF
}

// Count returns how many records have been decoded so far.
func (r *NDJSONReader) Count() int64 { return r.count }

func (rec ndjsonRecord) toLogical() (LogicalRecord, error) {
	if rec.TimeNS < 0 {
		return LogicalRecord{}, fmt.Errorf("negative time %d", rec.TimeNS)
	}
	if rec.Size <= 0 {
		return LogicalRecord{}, fmt.Errorf("non-positive size %d", rec.Size)
	}
	if rec.Item < 0 || rec.Item > int64(maxItemID) {
		return LogicalRecord{}, fmt.Errorf("item %d out of range", rec.Item)
	}
	var op Op
	switch rec.Op {
	case "R":
		op = OpRead
	case "W":
		op = OpWrite
	default:
		return LogicalRecord{}, fmt.Errorf("invalid op %q", rec.Op)
	}
	return LogicalRecord{
		Time:   time.Duration(rec.TimeNS),
		Item:   ItemID(rec.Item),
		Offset: rec.Offset,
		Size:   rec.Size,
		Op:     op,
	}, nil
}

// maxItemID is the largest ItemID (int32) value.
const maxItemID = int32(1<<31 - 1)

// trimSpace is a tiny allocation-free space trim for line emptiness
// checks.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}
