// NDJSON access to logical traces: one JSON object per line, the wire
// format of the fleet control plane's live ingest endpoint. It is the
// self-describing sibling of the binary stream codec — trivially
// produced by anything that can print JSON, at the cost of a fatter
// encoding.

package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// ndjsonRecord is the wire form of one LogicalRecord.
type ndjsonRecord struct {
	TimeNS int64  `json:"t_ns"`
	Item   int64  `json:"item"`
	Offset int64  `json:"off"`
	Size   int32  `json:"size"`
	Op     string `json:"op"`
}

// NDJSONWriter encodes logical records as newline-delimited JSON.
// Records must be appended in time order. Close flushes the underlying
// buffer; it does not close the writer.
type NDJSONWriter struct {
	bw    *bufio.Writer
	prev  time.Duration
	count int64
}

// NewNDJSONWriter returns a writer targeting w.
func NewNDJSONWriter(w io.Writer) *NDJSONWriter {
	return &NDJSONWriter{bw: bufio.NewWriter(w)}
}

// Append encodes one record.
func (w *NDJSONWriter) Append(r LogicalRecord) error {
	if r.Time < w.prev {
		return fmt.Errorf("trace: ndjson record %d out of order (%v after %v)", w.count, r.Time, w.prev)
	}
	line, err := json.Marshal(ndjsonRecord{
		TimeNS: int64(r.Time), Item: int64(r.Item),
		Offset: r.Offset, Size: r.Size, Op: r.Op.String(),
	})
	if err != nil {
		return err
	}
	if _, err := w.bw.Write(line); err != nil {
		return err
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		return err
	}
	w.prev = r.Time
	w.count++
	return nil
}

// Count returns how many records have been appended.
func (w *NDJSONWriter) Count() int64 { return w.count }

// Close flushes buffered output.
func (w *NDJSONWriter) Close() error { return w.bw.Flush() }

// NDJSONReader decodes logical records from newline-delimited JSON.
// Blank lines are skipped. Records must be in time order. After any
// error (including io.EOF) the reader is sticky: further Next calls
// return the same error and Count stops advancing.
type NDJSONReader struct {
	sc    *bufio.Scanner
	prev  time.Duration
	line  int64
	count int64
	err   error
}

// NewNDJSONReader returns a reader over r. Lines up to 1 MiB are
// accepted.
func NewNDJSONReader(r io.Reader) *NDJSONReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &NDJSONReader{sc: sc}
}

// Next returns the next record. It returns io.EOF at the clean end of
// the input and a line-numbered error on corruption.
func (r *NDJSONReader) Next() (LogicalRecord, error) {
	if r.err != nil {
		return LogicalRecord{}, r.err
	}
	for r.sc.Scan() {
		r.line++
		line := r.sc.Bytes()
		if len(trimSpace(line)) == 0 {
			continue
		}
		rec, ok := parseNDJSONLine(line)
		if !ok {
			// Anything the fast path does not recognize (escapes, floats,
			// unknown keys, reordered whitespace) goes through the full
			// JSON decoder, so the accepted language is unchanged. The
			// decoder works on its own variable so rec's address is never
			// taken and the fast path stays allocation-free.
			var slow ndjsonRecord
			if err := json.Unmarshal(line, &slow); err != nil {
				r.err = fmt.Errorf("trace: ndjson line %d: %w", r.line, err)
				return LogicalRecord{}, r.err
			}
			rec = slow
		}
		out, err := rec.toLogical()
		if err != nil {
			r.err = fmt.Errorf("trace: ndjson line %d: %w", r.line, err)
			return LogicalRecord{}, r.err
		}
		if out.Time < r.prev {
			r.err = &OrderError{
				Format: "ndjson", Record: r.count, Line: r.line, Offset: -1,
				Prev: r.prev, Got: out.Time,
			}
			return LogicalRecord{}, r.err
		}
		r.prev = out.Time
		r.count++
		return out, nil
	}
	if err := r.sc.Err(); err != nil {
		r.err = fmt.Errorf("trace: ndjson line %d: %w", r.line+1, err)
		return LogicalRecord{}, r.err
	}
	r.err = io.EOF
	return LogicalRecord{}, io.EOF
}

// Count returns how many records have been decoded so far.
func (r *NDJSONReader) Count() int64 { return r.count }

func (rec ndjsonRecord) toLogical() (LogicalRecord, error) {
	if rec.TimeNS < 0 {
		return LogicalRecord{}, fmt.Errorf("negative time %d", rec.TimeNS)
	}
	if rec.Size <= 0 {
		return LogicalRecord{}, fmt.Errorf("non-positive size %d", rec.Size)
	}
	if rec.Item < 0 || rec.Item > int64(maxItemID) {
		return LogicalRecord{}, fmt.Errorf("item %d out of range", rec.Item)
	}
	var op Op
	switch rec.Op {
	case "R":
		op = OpRead
	case "W":
		op = OpWrite
	default:
		return LogicalRecord{}, fmt.Errorf("invalid op %q", rec.Op)
	}
	return LogicalRecord{
		Time:   time.Duration(rec.TimeNS),
		Item:   ItemID(rec.Item),
		Offset: rec.Offset,
		Size:   rec.Size,
		Op:     op,
	}, nil
}

// maxItemID is the largest ItemID (int32) value.
const maxItemID = int32(1<<31 - 1)

// parseNDJSONLine decodes the flat integer-and-"R"/"W" object language
// that NDJSONWriter emits, without allocating. It tolerates any key
// order and ASCII space/tab padding but nothing fancier — escapes,
// floats, exponents, nested values, or unknown keys return ok=false and
// the caller falls back to encoding/json. A malformed line also returns
// ok=false so the fallback produces the canonical error message.
func parseNDJSONLine(b []byte) (rec ndjsonRecord, ok bool) {
	i := 0
	skip := func() {
		for i < len(b) && (b[i] == ' ' || b[i] == '\t') {
			i++
		}
	}
	skip()
	if i >= len(b) || b[i] != '{' {
		return rec, false
	}
	i++
	// seen guards against duplicate keys, which encoding/json resolves
	// last-wins; rather than replicate that, bail to the fallback.
	var seen [5]bool
	for field := 0; ; field++ {
		skip()
		if i < len(b) && b[i] == '}' && field == 0 {
			i++
			break
		}
		if field > 0 {
			if i >= len(b) || b[i] != ',' {
				if i < len(b) && b[i] == '}' {
					i++
					break
				}
				return rec, false
			}
			i++
			skip()
		}
		// Key.
		if i >= len(b) || b[i] != '"' {
			return rec, false
		}
		i++
		keyStart := i
		for i < len(b) && b[i] != '"' {
			if b[i] == '\\' {
				return rec, false
			}
			i++
		}
		if i >= len(b) {
			return rec, false
		}
		key := b[keyStart:i]
		i++
		skip()
		if i >= len(b) || b[i] != ':' {
			return rec, false
		}
		i++
		skip()
		var idx int
		switch string(key) {
		case "t_ns":
			idx = 0
		case "item":
			idx = 1
		case "off":
			idx = 2
		case "size":
			idx = 3
		case "op":
			idx = 4
		default:
			return rec, false
		}
		if seen[idx] {
			return rec, false
		}
		seen[idx] = true
		if idx == 4 {
			// String value: exactly "R" or "W".
			if i+2 >= len(b) || b[i] != '"' || b[i+2] != '"' {
				return rec, false
			}
			switch b[i+1] {
			case 'R':
				rec.Op = "R"
			case 'W':
				rec.Op = "W"
			default:
				return rec, false
			}
			i += 3
			continue
		}
		// Integer value.
		numStart := i
		if i < len(b) && b[i] == '-' {
			i++
		}
		digStart := i
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
		if i < len(b) && (b[i] == '.' || b[i] == 'e' || b[i] == 'E') {
			return rec, false
		}
		if i-digStart > 1 && b[digStart] == '0' {
			// JSON forbids leading zeros; let the fallback reject them.
			return rec, false
		}
		max := int64(math.MaxInt64)
		if idx == 3 {
			max = int64(math.MaxInt32)
		}
		v, err := parseIntBytes(b[numStart:i], max)
		if err != nil {
			return rec, false
		}
		switch idx {
		case 0:
			rec.TimeNS = v
		case 1:
			rec.Item = v
		case 2:
			rec.Offset = v
		case 3:
			rec.Size = int32(v)
		}
	}
	skip()
	if i != len(b) {
		return rec, false
	}
	// encoding/json leaves absent fields at their zero value; require the
	// fields toLogical validates so the fallback handles partial objects.
	return rec, seen[0] && seen[3] && seen[4]
}

// trimSpace is a tiny allocation-free space trim for line emptiness
// checks.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}
