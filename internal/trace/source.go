// Streaming record sources: the iterator side of the trace model. A
// Source yields logical records in time order without materializing the
// whole trace; replay, the workload generators and the trace tools
// compose sources (merge, truncate, collect) so peak memory stays
// proportional to the number of live streams and items, not records.

package trace

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"iter"
	"os"
	"time"
)

// Source streams logical records in non-decreasing time order.
//
// Next returns the next record; ok is false when the stream is done.
// After Next returns ok=false, Err distinguishes a clean end (nil) from
// a decoding or ordering failure. Sources are single-use and not safe
// for concurrent use: every replay needs its own.
type Source interface {
	Next() (rec LogicalRecord, ok bool)
	Err() error
}

// closeSource releases a source's resources if it has any.
func closeSource(s Source) {
	if c, ok := s.(io.Closer); ok {
		c.Close()
	}
}

// SliceSource adapts a materialized record slice to a Source. The slice
// is only read, so several SliceSources may share one backing slice
// (concurrent replays of a materialized workload do exactly that).
type SliceSource struct {
	recs []LogicalRecord
	pos  int
}

// NewSliceSource returns a Source over recs.
func NewSliceSource(recs []LogicalRecord) *SliceSource {
	return &SliceSource{recs: recs}
}

// Next returns the next record of the slice.
func (s *SliceSource) Next() (LogicalRecord, bool) {
	if s.pos >= len(s.recs) {
		return LogicalRecord{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Err always returns nil: a slice cannot fail.
func (s *SliceSource) Err() error { return nil }

// SeqSource adapts a push iterator (iter.Seq) to a Source. The workload
// generators describe each data item's records as a Seq; SeqSource is
// the pull-side cursor a merge holds per item.
type SeqSource struct {
	next func() (LogicalRecord, bool)
	stop func()
}

// NewSeqSource returns a Source over seq.
func NewSeqSource(seq iter.Seq[LogicalRecord]) *SeqSource {
	next, stop := iter.Pull(seq)
	return &SeqSource{next: next, stop: stop}
}

// Next returns the iterator's next record.
func (s *SeqSource) Next() (LogicalRecord, bool) { return s.next() }

// Err always returns nil: generator sequences cannot fail.
func (s *SeqSource) Err() error { return nil }

// Close releases the underlying iterator; it is safe to call more than
// once and after exhaustion.
func (s *SeqSource) Close() error {
	s.stop()
	return nil
}

// mergeItem is one source's buffered head record.
type mergeItem struct {
	rec LogicalRecord
	src int
}

// mergeHeap orders heads by (time, source index): among simultaneous
// records the lowest-numbered source wins, which reproduces the order
// the old linear-scan MergeLogical produced.
type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].rec.Time != h[j].rec.Time {
		return h[i].rec.Time < h[j].rec.Time
	}
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Merged is a k-way heap merge of already-sorted sources. Only one head
// record per live source is buffered, so merging k streams costs O(k)
// memory and O(log k) per record. Merged validates that its output is
// non-decreasing and fails (Err) when an input turns out unsorted.
type Merged struct {
	srcs []Source
	h    mergeHeap
	prev time.Duration
	err  error
	init bool
}

// MergeSources merges sorted sources into one time-ordered stream.
// Simultaneous records are ordered by source index.
func MergeSources(srcs ...Source) *Merged {
	return &Merged{srcs: srcs}
}

// pull buffers the head of source k, dropping exhausted sources.
func (m *Merged) pull(k int) {
	rec, ok := m.srcs[k].Next()
	if !ok {
		if err := m.srcs[k].Err(); err != nil {
			m.err = fmt.Errorf("trace: merge source %d: %w", k, err)
		}
		closeSource(m.srcs[k])
		return
	}
	m.h = append(m.h, mergeItem{rec: rec, src: k})
}

// Next returns the merged stream's next record.
func (m *Merged) Next() (LogicalRecord, bool) {
	if m.err != nil {
		return LogicalRecord{}, false
	}
	if !m.init {
		m.init = true
		for k := range m.srcs {
			m.pull(k)
			if m.err != nil {
				return LogicalRecord{}, false
			}
		}
		heap.Init(&m.h)
	}
	if len(m.h) == 0 {
		return LogicalRecord{}, false
	}
	top := m.h[0]
	if top.rec.Time < m.prev {
		m.err = fmt.Errorf("trace: merge source %d out of order (%v after %v)", top.src, top.rec.Time, m.prev)
		return LogicalRecord{}, false
	}
	m.prev = top.rec.Time
	if rec, ok := m.srcs[top.src].Next(); ok {
		m.h[0] = mergeItem{rec: rec, src: top.src}
		heap.Fix(&m.h, 0)
	} else {
		if err := m.srcs[top.src].Err(); err != nil {
			// Surface the failure on the next call; top is still valid.
			m.err = fmt.Errorf("trace: merge source %d: %w", top.src, err)
		}
		heap.Pop(&m.h)
		closeSource(m.srcs[top.src])
	}
	return top.rec, true
}

// Err returns the first input failure, or nil.
func (m *Merged) Err() error { return m.err }

// Close releases every underlying source.
func (m *Merged) Close() error {
	for _, s := range m.srcs {
		closeSource(s)
	}
	return nil
}

// Truncated ends a stream at the first record past a time limit,
// releasing the upstream source early. It mirrors the generators'
// contract that a workload's trace span matches its configured
// duration exactly.
type Truncated struct {
	src   Source
	limit time.Duration
	done  bool
}

// TruncateSource drops every record with Time > limit.
func TruncateSource(src Source, limit time.Duration) *Truncated {
	return &Truncated{src: src, limit: limit}
}

// Next returns the next record at or before the limit.
func (t *Truncated) Next() (LogicalRecord, bool) {
	if t.done {
		return LogicalRecord{}, false
	}
	rec, ok := t.src.Next()
	if !ok {
		t.done = true
		return LogicalRecord{}, false
	}
	if rec.Time > t.limit {
		t.done = true
		closeSource(t.src)
		return LogicalRecord{}, false
	}
	return rec, true
}

// Err returns the upstream failure, or nil.
func (t *Truncated) Err() error { return t.src.Err() }

// Close releases the upstream source.
func (t *Truncated) Close() error {
	closeSource(t.src)
	return nil
}

// CollectSource drains src into a slice.
func CollectSource(src Source) ([]LogicalRecord, error) {
	var recs []LogicalRecord
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// SummarizeSource computes a Summary by streaming src.
func SummarizeSource(src Source) (Summary, error) {
	var s Summary
	seen := make(map[ItemID]struct{})
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if s.Records == 0 {
			s.Start = r.Time
			s.End = r.Time
		}
		s.Records++
		if r.Op == OpRead {
			s.Reads++
		} else {
			s.Writes++
		}
		s.Bytes += int64(r.Size)
		if r.Time < s.Start {
			s.Start = r.Time
		}
		if r.Time > s.End {
			s.End = r.Time
		}
		if r.Item > s.MaxItem {
			s.MaxItem = r.Item
		}
		seen[r.Item] = struct{}{}
	}
	if err := src.Err(); err != nil {
		return Summary{}, err
	}
	s.Items = len(seen)
	if s.Records > 0 {
		s.ReadFrac = float64(s.Reads) / float64(s.Records)
	}
	return s, nil
}

// FileSource incrementally decodes a trace file in any of the three
// on-disk formats — binary (ESMTRC1), streaming binary (ESMSTR1) or CSV
// — detected from the leading bytes. Decoding is incremental: a
// multi-gigabyte trace replays in O(items) memory, never holding more
// than one record and the decoder's fixed buffers.
type FileSource struct {
	f     *os.File
	next  func() (LogicalRecord, error)
	err   error
	done  bool
	count int64
}

// OpenFile opens path as a FileSource. The caller must Close it.
func OpenFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fs, err := NewFileSource(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	fs.f = f
	return fs, nil
}

// NewFileSource returns a FileSource decoding r. Close is a no-op for
// sources built over a plain reader.
func NewFileSource(r io.Reader) (*FileSource, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	fs := &FileSource{}
	head, _ := br.Peek(len(binaryMagic))
	switch {
	case string(head) == binaryMagic:
		if _, err := br.Discard(len(binaryMagic)); err != nil {
			return nil, err
		}
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
		n := binary.LittleEndian.Uint64(hdr[:])
		if n > maxRecords {
			return nil, fmt.Errorf("trace: implausible record count %d", n)
		}
		var prev time.Duration
		var i uint64
		off := int64(len(binaryMagic) + len(hdr))
		fs.next = func() (LogicalRecord, error) {
			if i >= n {
				return LogicalRecord{}, io.EOF
			}
			rec, err := readBinaryRecord(br, &prev, i, &off)
			if err != nil {
				return LogicalRecord{}, err
			}
			i++
			return rec, nil
		}
	case string(head) == streamMagic:
		sr := NewStreamReader(br)
		fs.next = sr.Next
	case len(head) > 0 && head[0] == '{':
		// Self-describing NDJSON: the only text format whose lines start
		// with an object brace.
		nr := NewNDJSONReader(br)
		fs.next = nr.Next
	default:
		cr := NewCSVReader(br)
		fs.next = cr.Next
	}
	return fs, nil
}

// Next returns the next decoded record.
func (s *FileSource) Next() (LogicalRecord, bool) {
	if s.done {
		return LogicalRecord{}, false
	}
	rec, err := s.next()
	if err != nil {
		s.done = true
		// A bare io.EOF is the clean end of the data; wrapped EOFs from
		// a truncated record are real corruption.
		if err != io.EOF {
			s.err = err
		}
		return LogicalRecord{}, false
	}
	s.count++
	return rec, true
}

// Err returns the decoding failure that ended the stream, or nil.
func (s *FileSource) Err() error { return s.err }

// Count returns how many records have been decoded so far.
func (s *FileSource) Count() int64 { return s.count }

// Close closes the underlying file, if any.
func (s *FileSource) Close() error {
	if s.f != nil {
		return s.f.Close()
	}
	return nil
}
