package trace

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// sortedRecs builds n sorted records with random gaps and payloads.
func sortedRecs(rng *rand.Rand, n int, item ItemID) []LogicalRecord {
	recs := make([]LogicalRecord, n)
	var t time.Duration
	for i := range recs {
		t += time.Duration(rng.Int63n(int64(5 * time.Millisecond)))
		op := OpRead
		if rng.Intn(3) == 0 {
			op = OpWrite
		}
		recs[i] = LogicalRecord{
			Time:   t,
			Item:   item,
			Offset: int64(rng.Intn(1<<20) * 4096),
			Size:   int32(4096 * (1 + rng.Intn(16))),
			Op:     op,
		}
	}
	return recs
}

func TestSliceSource(t *testing.T) {
	recs := sortedRecs(rand.New(rand.NewSource(1)), 100, 0)
	got, err := CollectSource(NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
	// Exhausted source stays exhausted.
	s := NewSliceSource(recs[:1])
	s.Next()
	if _, ok := s.Next(); ok {
		t.Fatal("Next returned ok after exhaustion")
	}
}

func TestSeqSource(t *testing.T) {
	want := sortedRecs(rand.New(rand.NewSource(2)), 50, 3)
	src := NewSeqSource(func(yield func(LogicalRecord) bool) {
		for _, r := range want {
			if !yield(r) {
				return
			}
		}
	})
	defer src.Close()
	got, err := CollectSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	// Close mid-stream must be safe and idempotent.
	src2 := NewSeqSource(func(yield func(LogicalRecord) bool) {
		for _, r := range want {
			if !yield(r) {
				return
			}
		}
	})
	src2.Next()
	src2.Close()
	src2.Close()
	if _, ok := src2.Next(); ok {
		t.Fatal("Next returned ok after Close")
	}
}

func TestMergeSourcesMatchesMergeLogical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var traces [][]LogicalRecord
	var srcs []Source
	for k := 0; k < 7; k++ {
		recs := sortedRecs(rng, 200+rng.Intn(200), ItemID(k))
		traces = append(traces, recs)
		srcs = append(srcs, NewSliceSource(recs))
	}
	want := MergeLogical(traces...)
	m := MergeSources(srcs...)
	got, err := CollectSource(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestMergeSourcesTieOrder(t *testing.T) {
	// Simultaneous records must come out in source-index order, matching
	// the old linear-scan MergeLogical.
	a := []LogicalRecord{{Time: 10, Item: 5, Size: 1, Op: OpRead}}
	b := []LogicalRecord{{Time: 10, Item: 1, Size: 1, Op: OpRead}}
	got, err := CollectSource(MergeSources(NewSliceSource(a), NewSliceSource(b)))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Item != 5 || got[1].Item != 1 {
		t.Fatalf("tie broke to items %d,%d; want 5,1 (source order)", got[0].Item, got[1].Item)
	}
}

func TestMergeSourcesEmpty(t *testing.T) {
	if got, err := CollectSource(MergeSources()); err != nil || len(got) != 0 {
		t.Fatalf("empty merge: got %d records, err %v", len(got), err)
	}
	if got, err := CollectSource(MergeSources(NewSliceSource(nil), NewSliceSource(nil))); err != nil || len(got) != 0 {
		t.Fatalf("merge of empties: got %d records, err %v", len(got), err)
	}
}

func TestMergeSourcesUnsortedInput(t *testing.T) {
	bad := []LogicalRecord{
		{Time: 20, Item: 0, Size: 1, Op: OpRead},
		{Time: 10, Item: 0, Size: 1, Op: OpRead},
	}
	m := MergeSources(NewSliceSource(bad))
	_, err := CollectSource(m)
	if err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("want out-of-order error, got %v", err)
	}
}

func TestTruncateSource(t *testing.T) {
	recs := []LogicalRecord{
		{Time: 1 * time.Second, Item: 0, Size: 1, Op: OpRead},
		{Time: 2 * time.Second, Item: 0, Size: 1, Op: OpRead},
		{Time: 3 * time.Second, Item: 0, Size: 1, Op: OpRead},
	}
	got, err := CollectSource(TruncateSource(NewSliceSource(recs), 2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2 (limit is inclusive)", len(got))
	}
}

func TestSummarizeSourceMatchesSummarize(t *testing.T) {
	recs := sortedRecs(rand.New(rand.NewSource(4)), 500, 7)
	want := Summarize(recs)
	got, err := SummarizeSource(NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("streaming summary %+v != slice summary %+v", got, want)
	}
}

func TestFileSourceAllFormats(t *testing.T) {
	recs := sortedRecs(rand.New(rand.NewSource(5)), 1000, 2)
	dir := t.TempDir()

	write := func(name string, enc func(*os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}

	paths := map[string]string{
		"binary": write("t.bin", func(f *os.File) error { return WriteBinary(f, recs) }),
		"csv":    write("t.csv", func(f *os.File) error { return WriteCSV(f, recs) }),
		"stream": write("t.str", func(f *os.File) error {
			w := NewStreamWriter(f)
			for _, r := range recs {
				if err := w.Append(r); err != nil {
					return err
				}
			}
			return w.Close()
		}),
	}

	for format, path := range paths {
		src, err := OpenFile(path)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		got, err := CollectSource(src)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if src.Count() != int64(len(recs)) {
			t.Errorf("%s: Count = %d, want %d", format, src.Count(), len(recs))
		}
		if err := src.Close(); err != nil {
			t.Fatalf("%s: close: %v", format, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("%s: got %d records, want %d", format, len(got), len(recs))
		}
		for i := range got {
			if got[i] != recs[i] {
				t.Fatalf("%s: record %d: got %+v, want %+v", format, i, got[i], recs[i])
			}
		}
	}
}

func TestFileSourceTruncatedBinary(t *testing.T) {
	recs := sortedRecs(rand.New(rand.NewSource(6)), 100, 0)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	src, err := NewFileSource(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := src.Next(); !ok {
			break
		}
	}
	if src.Err() == nil {
		t.Fatal("truncated binary trace decoded without error")
	}
}

func TestFileSourceEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := NewFileSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectSource(src)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: got %d records, err %v", len(got), err)
	}
}
