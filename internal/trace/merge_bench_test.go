package trace

import (
	"math/rand"
	"testing"
	"time"
)

// benchTraces builds k sorted traces of n records each, the shape the
// workload generators hand to MergeLogical.
func benchTraces(k, n int) [][]LogicalRecord {
	traces := make([][]LogicalRecord, k)
	for i := range traces {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		traces[i] = sortedRecs(rng, n, ItemID(i))
	}
	return traces
}

// mergeAppendSort is the pre-refactor strategy MergeLogical replaced:
// concatenate everything and re-sort. Kept here only as the benchmark
// baseline.
func mergeAppendSort(traces ...[]LogicalRecord) []LogicalRecord {
	total := 0
	for _, t := range traces {
		total += len(t)
	}
	out := make([]LogicalRecord, 0, total)
	for _, t := range traces {
		out = append(out, t...)
	}
	SortLogical(out)
	return out
}

func benchRecords(b *testing.B) [][]LogicalRecord {
	n := 250_000
	if testing.Short() {
		n = 25_000
	}
	return benchTraces(4, n)
}

func BenchmarkMergeHeap(b *testing.B) {
	traces := benchRecords(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := MergeLogical(traces...)
		if len(out) != 4*len(traces[0]) {
			b.Fatal("bad merge length")
		}
	}
}

func BenchmarkMergeAppendSort(b *testing.B) {
	traces := benchRecords(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := mergeAppendSort(traces...)
		if len(out) != 4*len(traces[0]) {
			b.Fatal("bad merge length")
		}
	}
}

// TestMergeStrategiesAgree pins the benchmark baseline to the production
// merge: both must produce identically ordered output on tie-free input.
func TestMergeStrategiesAgree(t *testing.T) {
	traces := benchTraces(4, 5_000)
	a := MergeLogical(traces...)
	bb := mergeAppendSort(traces...)
	if len(a) != len(bb) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(bb))
	}
	for i := range a {
		if a[i].Time != bb[i].Time {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i].Time, bb[i].Time)
		}
	}
	var prev time.Duration
	for i, r := range a {
		if r.Time < prev {
			t.Fatalf("record %d out of order", i)
		}
		prev = r.Time
	}
}
