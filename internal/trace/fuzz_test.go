package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

// FuzzReadBinary checks the batch decoder never panics on arbitrary
// input, and that anything it accepts re-encodes to an equivalent trace.
func FuzzReadBinary(f *testing.F) {
	var seedBuf bytes.Buffer
	WriteBinary(&seedBuf, []LogicalRecord{
		{Time: 1, Item: 2, Offset: 3, Size: 4, Op: OpRead},
		{Time: 5, Item: 1, Offset: 0, Size: 8, Op: OpWrite},
	})
	f.Add(seedBuf.Bytes())
	f.Add([]byte(binaryMagic))
	f.Add([]byte("garbage"))
	// Cloud-block shapes: a burst of equal timestamps against a churned
	// (large) volume ID, and a zero-length extent.
	var burstBuf bytes.Buffer
	WriteBinary(&burstBuf, []LogicalRecord{
		{Time: 7, Item: 2147483000, Offset: 0, Size: 4096, Op: OpWrite},
		{Time: 7, Item: 2147483000, Offset: 4096, Size: 4096, Op: OpWrite},
		{Time: 7, Item: 3, Offset: 0, Size: 0, Op: OpRead},
	})
	f.Add(burstBuf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, recs); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		again, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed length %d -> %d", len(recs), len(again))
		}
	})
}

// FuzzReadCSV checks the CSV decoder never panics and accepted input
// survives a round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("time_ns,item,offset,size,op\n1,2,3,4,R\n")
	f.Add("5,0,0,1,W\n")
	f.Add(",,,,\n")
	f.Add("1,2147483647,0,4,R\n")            // churned-volume ID at the item ceiling
	f.Add("5,1,0,0,R\n")                     // zero-length extent: rejected
	f.Add("9,1,0,4,R\n9,2,0,4,W\n9,3,0,8,R\n") // burst: equal timestamps
	f.Fuzz(func(t *testing.T, data string) {
		recs, err := ReadCSV(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteCSV(&out, recs); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		again, err := ReadCSV(&out)
		if err != nil || len(again) != len(recs) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// FuzzStreamReader checks the streaming decoder never panics on
// arbitrary input.
func FuzzStreamReader(f *testing.F) {
	var seedBuf bytes.Buffer
	w := NewStreamWriter(&seedBuf)
	w.Append(LogicalRecord{Time: 1, Item: 1, Size: 1})
	w.Close()
	f.Add(seedBuf.Bytes())
	f.Add([]byte(streamMagic))
	var burstBuf bytes.Buffer
	bw := NewStreamWriter(&burstBuf)
	bw.Append(LogicalRecord{Time: 9, Item: 2147483000, Offset: 0, Size: 4096, Op: OpWrite})
	bw.Append(LogicalRecord{Time: 9, Item: 2147483000, Offset: 4096, Size: 0, Op: OpRead})
	bw.Close()
	f.Add(burstBuf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewStreamReader(bytes.NewReader(data))
		for i := 0; i < 10000; i++ {
			if _, err := r.Next(); err != nil {
				if err != io.EOF {
					return
				}
				return
			}
		}
	})
}

// FuzzNDJSONReader checks two properties: the reader never panics on
// arbitrary input, and the allocation-free line parser is a strict
// subset of encoding/json — every line the fast path accepts must
// decode to exactly what the fallback would have produced.
func FuzzNDJSONReader(f *testing.F) {
	var seedBuf bytes.Buffer
	w := NewNDJSONWriter(&seedBuf)
	w.Append(LogicalRecord{Time: 1, Item: 2147483000, Size: 4096, Op: OpWrite}) // churned-volume ID
	w.Append(LogicalRecord{Time: 1, Item: 7, Size: 512, Op: OpRead})            // burst: same timestamp
	w.Close()
	f.Add(seedBuf.Bytes())
	f.Add([]byte(`{"t_ns":5,"item":1,"off":0,"size":0,"op":"R"}`)) // zero-length extent: rejected
	f.Add([]byte(`{ "op":"W" , "size":8 , "t_ns":9 }`))            // reordered keys, padding
	f.Add([]byte(`{"t_ns":1e3,"item":1,"off":0,"size":4,"op":"R"}`))
	f.Add([]byte(`{"t_ns":-9223372036854775808,"item":0,"off":0,"size":1,"op":"W"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, line := range bytes.Split(data, []byte("\n")) {
			if fast, ok := parseNDJSONLine(line); ok {
				var slow ndjsonRecord
				if err := json.Unmarshal(line, &slow); err != nil {
					t.Fatalf("fast path accepted %q, encoding/json rejects it: %v", line, err)
				}
				if fast != slow {
					t.Fatalf("fast path decoded %q as %+v, encoding/json as %+v", line, fast, slow)
				}
			}
		}
		r := NewNDJSONReader(bytes.NewReader(data))
		for i := 0; i < 10000; i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	})
}
