package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadBinary checks the batch decoder never panics on arbitrary
// input, and that anything it accepts re-encodes to an equivalent trace.
func FuzzReadBinary(f *testing.F) {
	var seedBuf bytes.Buffer
	WriteBinary(&seedBuf, []LogicalRecord{
		{Time: 1, Item: 2, Offset: 3, Size: 4, Op: OpRead},
		{Time: 5, Item: 1, Offset: 0, Size: 8, Op: OpWrite},
	})
	f.Add(seedBuf.Bytes())
	f.Add([]byte(binaryMagic))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, recs); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		again, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed length %d -> %d", len(recs), len(again))
		}
	})
}

// FuzzReadCSV checks the CSV decoder never panics and accepted input
// survives a round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("time_ns,item,offset,size,op\n1,2,3,4,R\n")
	f.Add("5,0,0,1,W\n")
	f.Add(",,,,\n")
	f.Fuzz(func(t *testing.T, data string) {
		recs, err := ReadCSV(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteCSV(&out, recs); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		again, err := ReadCSV(&out)
		if err != nil || len(again) != len(recs) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// FuzzStreamReader checks the streaming decoder never panics on
// arbitrary input.
func FuzzStreamReader(f *testing.F) {
	var seedBuf bytes.Buffer
	w := NewStreamWriter(&seedBuf)
	w.Append(LogicalRecord{Time: 1, Item: 1, Size: 1})
	w.Close()
	f.Add(seedBuf.Bytes())
	f.Add([]byte(streamMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewStreamReader(bytes.NewReader(data))
		for i := 0; i < 10000; i++ {
			if _, err := r.Next(); err != nil {
				if err != io.EOF {
					return
				}
				return
			}
		}
	})
}
