// Typed out-of-order decode errors and the shared varint fast path.
//
// Every on-disk codec promises non-decreasing timestamps; a record that
// breaks the promise used to surface in three different ways (a plain
// fmt.Errorf from the text readers, a silent wrap-around in the varint
// readers, or a reordering inside a downstream k-way merge). OrderError
// is the single typed form: it carries enough position information
// (record index, line, byte offset) to point at the offending record in
// any format, and errors.As lets callers distinguish "your trace is
// unsorted" from "your trace is corrupt".

package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"time"
)

// OrderError reports a decoded record whose timestamp precedes the
// previous record's. The decoders return it at decode time, before the
// record can reach a consumer — a k-way MergeSources fed an unsorted
// input would otherwise silently interleave the stray record into a
// plausible-looking merged stream.
type OrderError struct {
	// Format names the codec that caught the violation: "binary",
	// "stream", "csv" or "ndjson".
	Format string
	// Record is the 0-based index of the offending record within its
	// stream; -1 when unknown.
	Record int64
	// Line is the 1-based input line for the text formats; 0 for the
	// binary formats.
	Line int64
	// Offset is the byte offset of the record for the binary formats;
	// -1 when not tracked.
	Offset int64
	// Prev and Got are the previous (valid) and offending timestamps.
	Prev, Got time.Duration
}

// Error renders the position in the format's natural coordinates.
func (e *OrderError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %s record", e.Format)
	if e.Record >= 0 {
		fmt.Fprintf(&b, " %d", e.Record)
	}
	if e.Line > 0 {
		fmt.Fprintf(&b, " (line %d)", e.Line)
	}
	if e.Offset >= 0 {
		fmt.Fprintf(&b, " (byte %d)", e.Offset)
	}
	fmt.Fprintf(&b, " out of order (%v after %v)", e.Got, e.Prev)
	return b.String()
}

// addDelta applies an unsigned time delta to prev, reporting ok=false
// when the sum does not fit in a time.Duration. An overflowing delta is
// the varint formats' only way of encoding time going backwards (the
// wrapped sum would be negative), so the callers turn !ok into an
// OrderError instead of silently emitting a wrapped timestamp.
func addDelta(prev time.Duration, dt uint64) (time.Duration, bool) {
	if dt > uint64(math.MaxInt64-prev) {
		return 0, false
	}
	return prev + time.Duration(dt), true
}

// maxVarintRecord is the worst-case encoded size of one trace record:
// four maximum-length uvarints plus the op byte.
const maxVarintRecord = 4*binary.MaxVarintLen64 + 1

// varintRecord is one decoded varint-format record before validation.
type varintRecord struct {
	dt, item, off, size uint64
	op                  byte
}

// readVarintRecord decodes one delta/varint record (4 uvarints + 1 op
// byte) from br. The fast path peeks the whole record out of the
// reader's buffer and decodes it with zero per-byte calls; when the
// buffered window is too short (end of buffer, end of input) it falls
// back to the byte-at-a-time decoder, which produces the descriptive
// truncation errors. n is the encoded size consumed.
//
// fieldErr wraps a field's decode failure for the caller's error
// vocabulary; field 0 is the time delta, 1..3 are item/offset/size and
// 4 is the op byte.
func readVarintRecord(br *bufio.Reader, fieldErr func(field int, err error) error) (rec varintRecord, n int, err error) {
	if buf, _ := br.Peek(maxVarintRecord); len(buf) >= maxVarintRecord {
		pos := 0
		for _, dst := range [...]*uint64{&rec.dt, &rec.item, &rec.off, &rec.size} {
			v, w := binary.Uvarint(buf[pos:])
			if w <= 0 {
				// Overflowing varint: let the slow path produce the
				// canonical error.
				return readVarintRecordSlow(br, fieldErr)
			}
			*dst = v
			pos += w
		}
		rec.op = buf[pos]
		pos++
		if _, err := br.Discard(pos); err != nil {
			// Unreachable: the bytes were just peeked.
			return varintRecord{}, 0, err
		}
		return rec, pos, nil
	}
	return readVarintRecordSlow(br, fieldErr)
}

// readVarintRecordSlow is the byte-at-a-time decode used near the end
// of the buffered window; it yields the precise per-field error for
// truncated or overlong input.
func readVarintRecordSlow(br *bufio.Reader, fieldErr func(field int, err error) error) (rec varintRecord, n int, err error) {
	start := br.Buffered()
	for f, dst := range [...]*uint64{&rec.dt, &rec.item, &rec.off, &rec.size} {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return varintRecord{}, 0, fieldErr(f, err)
		}
		*dst = v
	}
	op, err := br.ReadByte()
	if err != nil {
		return varintRecord{}, 0, fieldErr(4, err)
	}
	rec.op = op
	// Consumed size from the buffer drain; refills mid-record make this
	// an approximation, which only the byte-offset diagnostics use.
	if used := start - br.Buffered(); used > 0 {
		n = used
	}
	return rec, n, nil
}
