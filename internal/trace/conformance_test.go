package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// incrementalReader is the contract shared by the streaming decoders,
// pinned here so all three are tested against the same semantics.
type incrementalReader interface {
	Next() (LogicalRecord, error)
	Count() int64
}

// confRecords is the canonical valid prefix used by the conformance
// cases.
var confRecords = []LogicalRecord{
	{Time: 0, Item: 1, Offset: 0, Size: 4096, Op: OpRead},
	{Time: time.Millisecond, Item: 2, Offset: 4096, Size: 512, Op: OpWrite},
	{Time: 2 * time.Millisecond, Item: 1, Offset: 8192, Size: 4096, Op: OpRead},
}

// readerConformanceCases builds, per format, a clean encoding of
// confRecords, a corrupted variant (valid prefix then garbage), and a
// constructor.
func readerConformanceCases(t *testing.T) []struct {
	name    string
	clean   []byte
	corrupt []byte
	open    func(io.Reader) incrementalReader
} {
	t.Helper()

	var streamBuf bytes.Buffer
	sw := NewStreamWriter(&streamBuf)
	for _, r := range confRecords {
		if err := sw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	var ndjsonBuf bytes.Buffer
	nw := NewNDJSONWriter(&ndjsonBuf)
	for _, r := range confRecords {
		if err := nw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.Close(); err != nil {
		t.Fatal(err)
	}

	var csvBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, confRecords); err != nil {
		t.Fatal(err)
	}

	return []struct {
		name    string
		clean   []byte
		corrupt []byte
		open    func(io.Reader) incrementalReader
	}{
		{
			name:  "stream",
			clean: streamBuf.Bytes(),
			// A lone continuation byte: an unterminated varint, so the
			// decoder sees truncation inside a record, not a clean end.
			corrupt: append(append([]byte{}, streamBuf.Bytes()...), 0x80),
			open:    func(r io.Reader) incrementalReader { return NewStreamReader(r) },
		},
		{
			name:    "ndjson",
			clean:   ndjsonBuf.Bytes(),
			corrupt: append(append([]byte{}, ndjsonBuf.Bytes()...), []byte("{\"t_ns\":oops}\n")...),
			open:    func(r io.Reader) incrementalReader { return NewNDJSONReader(r) },
		},
		{
			name:    "csv",
			clean:   csvBuf.Bytes(),
			corrupt: append(append([]byte{}, csvBuf.Bytes()...), []byte("not,a,record\n")...),
			open:    func(r io.Reader) incrementalReader { return NewCSVReader(r) },
		},
	}
}

// TestReaderConformanceSticky drives every incremental reader through
// the same script: decode a valid prefix, hit a mid-stream corruption,
// and verify the reader goes sticky — the same error from every
// subsequent Next, Count frozen at the number of good records, no
// partial record leaked.
func TestReaderConformanceSticky(t *testing.T) {
	for _, tc := range readerConformanceCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			r := tc.open(bytes.NewReader(tc.corrupt))
			for i, want := range confRecords {
				got, err := r.Next()
				if err != nil {
					t.Fatalf("record %d: %v", i, err)
				}
				if got != want {
					t.Fatalf("record %d: got %+v, want %+v", i, got, want)
				}
			}
			if n := r.Count(); n != int64(len(confRecords)) {
				t.Fatalf("Count() = %d before error, want %d", n, len(confRecords))
			}
			_, first := r.Next()
			if first == nil || first == io.EOF {
				t.Fatalf("corrupt tail decoded without error (err=%v)", first)
			}
			for i := 0; i < 3; i++ {
				rec, again := r.Next()
				if again != first {
					t.Fatalf("retry %d: error changed from %v to %v", i, first, again)
				}
				if rec != (LogicalRecord{}) {
					t.Fatalf("retry %d: sticky reader leaked record %+v", i, rec)
				}
				if n := r.Count(); n != int64(len(confRecords)) {
					t.Fatalf("retry %d: Count() moved to %d after error", i, n)
				}
			}
		})
	}
}

// TestReaderConformanceEOF verifies the clean-end behavior is just as
// sticky: io.EOF exactly at the end, io.EOF again on retry, Count
// stable.
func TestReaderConformanceEOF(t *testing.T) {
	for _, tc := range readerConformanceCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			r := tc.open(bytes.NewReader(tc.clean))
			for i := range confRecords {
				if _, err := r.Next(); err != nil {
					t.Fatalf("record %d: %v", i, err)
				}
			}
			for i := 0; i < 3; i++ {
				if _, err := r.Next(); err != io.EOF {
					t.Fatalf("retry %d: got %v, want io.EOF", i, err)
				}
				if n := r.Count(); n != int64(len(confRecords)) {
					t.Fatalf("retry %d: Count() = %d after EOF, want %d", i, n, len(confRecords))
				}
			}
		})
	}
}

// appendVarintRecord hand-encodes one delta/varint record, used to
// craft inputs the writers refuse to produce (backwards time).
func appendVarintRecord(b []byte, dt, item, off, size uint64, op byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range [...]uint64{dt, item, off, size} {
		n := binary.PutUvarint(tmp[:], v)
		b = append(b, tmp[:n]...)
	}
	return append(b, op)
}

// TestOrderErrorBinary crafts a batch trace whose second record's delta
// overflows (the varint encoding of time going backwards) and checks
// the typed error carries the byte offset of the offending record.
func TestOrderErrorBinary(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], 2)
	buf.Write(hdr[:])
	rec1 := appendVarintRecord(nil, 100, 1, 0, 4096, byte(OpRead))
	buf.Write(rec1)
	buf.Write(appendVarintRecord(nil, ^uint64(0), 1, 0, 4096, byte(OpRead)))

	_, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	var oe *OrderError
	if !errors.As(err, &oe) {
		t.Fatalf("got %v (%T), want *OrderError", err, err)
	}
	if oe.Format != "binary" || oe.Record != 1 {
		t.Fatalf("OrderError = %+v, want Format binary, Record 1", oe)
	}
	wantOff := int64(len(binaryMagic) + len(hdr) + len(rec1))
	if oe.Offset != wantOff {
		t.Fatalf("Offset = %d, want %d", oe.Offset, wantOff)
	}
	if !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("message %q lost the out-of-order vocabulary", err)
	}
}

// TestOrderErrorStream is the stream-format twin of
// TestOrderErrorBinary.
func TestOrderErrorStream(t *testing.T) {
	buf := []byte(streamMagic)
	rec1 := appendVarintRecord(nil, 100, 1, 0, 4096, byte(OpRead))
	buf = append(buf, rec1...)
	buf = appendVarintRecord(buf, ^uint64(0), 1, 0, 4096, byte(OpRead))

	r := NewStreamReader(bytes.NewReader(buf))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	var oe *OrderError
	if !errors.As(err, &oe) {
		t.Fatalf("got %v (%T), want *OrderError", err, err)
	}
	if oe.Format != "stream" || oe.Record != 1 {
		t.Fatalf("OrderError = %+v, want Format stream, Record 1", oe)
	}
	wantOff := int64(len(streamMagic) + len(rec1))
	if oe.Offset != wantOff {
		t.Fatalf("Offset = %d, want %d", oe.Offset, wantOff)
	}
	// Sticky like any other decode error.
	if _, again := r.Next(); again != err {
		t.Fatalf("order error not sticky: %v then %v", err, again)
	}
}

// TestOrderErrorCSV checks the text readers report the violating line.
func TestOrderErrorCSV(t *testing.T) {
	in := "time_ns,item,offset,size,op\n100,1,0,4,R\n50,1,0,4,R\n"
	_, err := ReadCSV(strings.NewReader(in))
	var oe *OrderError
	if !errors.As(err, &oe) {
		t.Fatalf("got %v (%T), want *OrderError", err, err)
	}
	if oe.Format != "csv" || oe.Record != 1 || oe.Line != 3 {
		t.Fatalf("OrderError = %+v, want Format csv, Record 1, Line 3", oe)
	}
	if oe.Prev != 100 || oe.Got != 50 {
		t.Fatalf("Prev/Got = %v/%v, want 100ns/50ns", oe.Prev, oe.Got)
	}
	if !strings.Contains(err.Error(), "out of order") || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("message %q lost position or vocabulary", err)
	}
}

// TestOrderErrorNDJSON is the NDJSON twin of TestOrderErrorCSV.
func TestOrderErrorNDJSON(t *testing.T) {
	in := `{"t_ns":100,"item":1,"off":0,"size":4,"op":"R"}` + "\n" +
		`{"t_ns":50,"item":1,"off":0,"size":4,"op":"R"}` + "\n"
	r := NewNDJSONReader(strings.NewReader(in))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	var oe *OrderError
	if !errors.As(err, &oe) {
		t.Fatalf("got %v (%T), want *OrderError", err, err)
	}
	if oe.Format != "ndjson" || oe.Record != 1 || oe.Line != 2 {
		t.Fatalf("OrderError = %+v, want Format ndjson, Record 1, Line 2", oe)
	}
	if oe.Prev != 100 || oe.Got != 50 {
		t.Fatalf("Prev/Got = %v/%v, want 100ns/50ns", oe.Prev, oe.Got)
	}
}
