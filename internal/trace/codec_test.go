package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := randomRecords(rng, 1000)
	SortLogical(recs)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestBinaryRejectsUnsorted(t *testing.T) {
	recs := []LogicalRecord{{Time: 2}, {Time: 1}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, recs); err == nil {
		t.Fatal("expected error writing unsorted trace")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a trace at all")); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestBinaryTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	recs := randomRecords(rng, 50)
	SortLogical(recs)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("expected error for truncated trace")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	recs := randomRecords(rng, 200)
	SortLogical(recs)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"1,2,3\n",
		"x,0,0,0,R\n",
		"0,x,0,0,R\n",
		"0,0,x,0,R\n",
		"0,0,0,x,R\n",
		"0,0,0,0,Q\n",
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
}

func TestCSVSkipsHeaderAndBlanks(t *testing.T) {
	in := "time_ns,item,offset,size,op\n\n5,1,2,3,W\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Op != OpWrite || got[0].Item != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	c := NewCatalog()
	c.Add("vol00/meta", 50<<20)
	c.Add("tpcc/stock.p0", 28<<30)
	c.Add("a b c", 1)
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCatalog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Len() {
		t.Fatalf("round trip %d items, want %d", got.Len(), c.Len())
	}
	for _, id := range c.IDs() {
		if got.Item(id) != c.Item(id) {
			t.Fatalf("item %d mismatch", id)
		}
	}
}

func TestCatalogRejectsSeparatorInName(t *testing.T) {
	c := NewCatalog()
	c.Add("bad,name", 1)
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, c); err == nil {
		t.Fatal("expected error for comma in name")
	}
}

func TestCatalogRejectsNonDense(t *testing.T) {
	in := "id,size,name\n5,1,x\n"
	if _, err := ReadCatalog(strings.NewReader(in)); err == nil {
		t.Fatal("expected error for non-dense ids")
	}
}

// TestBinaryRoundTripProperty uses testing/quick over random traces.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randomRecords(rng, int(n))
		SortLogical(recs)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, recs); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementRoundTrip(t *testing.T) {
	placement := []int{0, 3, 1, 2}
	var buf bytes.Buffer
	if err := WritePlacement(&buf, placement); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlacement(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(placement) {
		t.Fatalf("round trip %d entries", len(got))
	}
	for i := range placement {
		if got[i] != placement[i] {
			t.Fatalf("entry %d = %d", i, got[i])
		}
	}
}

func TestPlacementRejectsMalformed(t *testing.T) {
	for _, in := range []string{"1\n", "x,0\n", "0,x\n", "5,0\n"} {
		if _, err := ReadPlacement(strings.NewReader(in)); err == nil {
			t.Fatalf("expected error for %q", in)
		}
	}
}
