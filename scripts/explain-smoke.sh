#!/bin/sh
# explain-smoke: gate the decision-provenance ledger and the root-cause
# pipeline end to end. A fileserver run with an injected spin-up-fault
# storm under a deliberately tight energy budget must produce an
# `esmstat explain` report that names the injected cause — and both the
# ledger and the rendered report must be byte-identical across a rerun
# and across serial vs the sharded engine (-shards 4).
set -eu

GO=${GO:-go}
DIR=${EXPLAIN_SMOKE_DIR:-/tmp/esm-explain-smoke}
rm -rf "$DIR"
mkdir -p "$DIR"

$GO build -o "$DIR/esmbench" ./cmd/esmbench
$GO build -o "$DIR/esmstat" ./cmd/esmstat

# The injected cause: seeded spin-up failures (half of all spin-up
# attempts fault) while an energy budget just below the run's total
# fires the watchdog late enough that the alert-derived window holds
# real ledger activity.
FAULTS='seed=42,spinup=0.5'
ALERTS='budget:total_energy_j>5e6:for=30s'

bench() { # bench OUTDIR [extra flags...]
    out=$1
    shift
    "$DIR/esmbench" -workload fileserver -scale 0.1 -fig 8 \
        -faults "$FAULTS" -alerts "$ALERTS" \
        -series "$out" -provenance -events "$out/events.jsonl" "$@" \
        > "$out.log" 2>&1 || { cat "$out.log"; exit 1; }
}

echo "== serial run, rerun, and -shards 4"
bench "$DIR/a"
bench "$DIR/b"
bench "$DIR/sharded" -shards 4

echo "== ledger byte-identity (rerun and serial-vs-sharded)"
cmp "$DIR/a/fileserver-esm.prov.csv" "$DIR/b/fileserver-esm.prov.csv"
cmp "$DIR/a/fileserver-esm.prov.csv" "$DIR/sharded/fileserver-esm.prov.csv"

echo "== flight series time-aligned diff (serial vs sharded must be identical)"
"$DIR/esmstat" diff -series \
    "$DIR/a/fileserver-esm.series.csv" "$DIR/sharded/fileserver-esm.series.csv"

echo "== explain over the whole run must name the injected cause"
"$DIR/esmstat" explain -since 0s "$DIR/a/fileserver-esm.prov.csv" \
    > "$DIR/report-a.txt"
"$DIR/esmstat" explain -since 0s "$DIR/b/fileserver-esm.prov.csv" \
    > "$DIR/report-b.txt"
"$DIR/esmstat" explain -since 0s "$DIR/sharded/fileserver-esm.prov.csv" \
    > "$DIR/report-sharded.txt"
cmp "$DIR/report-a.txt" "$DIR/report-b.txt"
cmp "$DIR/report-a.txt" "$DIR/report-sharded.txt"
grep -q 'fault burst: 20 injected faults (causes: spinup-fail x20)' "$DIR/report-a.txt" || {
    cat "$DIR/report-a.txt"
    echo "explain report does not name the injected fault burst"
    exit 1
}
grep -q 'spin-up storm' "$DIR/report-a.txt" || {
    cat "$DIR/report-a.txt"
    echo "explain report does not surface the spin-up storm"
    exit 1
}

echo "== explain from the alert firing must window in the fault burst"
"$DIR/esmstat" explain -alert budget -run fileserver/esm \
    -events "$DIR/a/events.jsonl" -window 24h \
    "$DIR/a/fileserver-esm.prov.csv" > "$DIR/report-alert.txt"
grep -q 'alert budget first fired at' "$DIR/report-alert.txt" || {
    cat "$DIR/report-alert.txt"
    echo "explain did not resolve the alert firing"
    exit 1
}
grep -q 'fault burst: .* injected faults (causes: spinup-fail' "$DIR/report-alert.txt" || {
    cat "$DIR/report-alert.txt"
    echo "alert-derived window misses the injected fault burst"
    exit 1
}

cat "$DIR/report-a.txt"
echo "explain-smoke OK"
