#!/bin/sh
# alert-smoke: gate the SLO watchdog end to end. Boot the single-array
# esmd with a deliberately tight energy budget, stream a tracegen
# workload into it over stdin, and require `esmstat alerts <url>` to
# exit 1 once the rule fires; then rerun with a budget far above the
# workload's total energy and require exit 0 (with the rule visibly
# evaluated, not absent).
set -eu

GO=${GO:-go}
DIR=${ALERT_SMOKE_DIR:-/tmp/esm-alert-smoke}
rm -rf "$DIR"
mkdir -p "$DIR"

cleanup() {
    exec 3>&- 2>/dev/null || true
    if [ -n "${ESMD_PID:-}" ] && kill -0 "$ESMD_PID" 2>/dev/null; then
        kill "$ESMD_PID" 2>/dev/null || true
        wait "$ESMD_PID" 2>/dev/null || true
    fi
}
trap cleanup EXIT INT TERM

echo "== generating workload"
$GO run ./cmd/tracegen -workload fileserver -scale 0.05 -format csv \
    -out "$DIR/fs.csv" -catalog "$DIR/fs.items" -placement "$DIR/fs.layout"
$GO build -o "$DIR/esmd" ./cmd/esmd
$GO build -o "$DIR/esmstat" ./cmd/esmstat

# boot_esmd RULES LOG: start the daemon with the given -alerts rules,
# stdin held open on fd 3 so it keeps serving after the trace is
# consumed, and set BASE to the bound address.
boot_esmd() {
    rm -f "$DIR/stdin"
    mkfifo "$DIR/stdin"
    "$DIR/esmd" -catalog "$DIR/fs.items" -placement "$DIR/fs.layout" \
        -listen 127.0.0.1:0 -quiet -alerts "$1" \
        < "$DIR/stdin" > "$2" 2>&1 &
    ESMD_PID=$!
    exec 3> "$DIR/stdin"
    cat "$DIR/fs.csv" >&3

    ADDR=
    for _ in $(seq 1 50); do
        ADDR=$(sed -n 's/.* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$2" | head -n1)
        [ -n "$ADDR" ] && break
        kill -0 "$ESMD_PID" 2>/dev/null || { cat "$2"; echo "esmd died"; exit 1; }
        sleep 0.2
    done
    [ -n "$ADDR" ] || { cat "$2"; echo "esmd never reported its address"; exit 1; }
    BASE="http://$ADDR"
}

# wait_ingested: poll /healthz until ingest_records is nonzero and
# stable across three samples — the daemon has drained the stdin
# buffer and the simulated clock has advanced over the workload. (The
# counter updates per ingest batch, so an exact line-count match would
# race the final partial batch.)
wait_ingested() {
    prev=-1
    stable=0
    for _ in $(seq 1 150); do
        cur=$(curl -sfS "$BASE/healthz" |
            sed -n 's/.*"ingest_records": *\([0-9]*\).*/\1/p' | head -n1)
        if [ -n "$cur" ] && [ "$cur" -gt 0 ] && [ "$cur" = "$prev" ]; then
            stable=$((stable + 1))
            [ "$stable" -ge 2 ] && return 0
        else
            stable=0
        fi
        prev=$cur
        sleep 0.2
    done
    echo "ingest never settled (last ingest_records=$cur)"
    exit 1
}

stop_esmd() {
    exec 3>&-
    wait "$ESMD_PID"
    ESMD_PID=
}

echo "== tight budget (1 J held 30s) must fire"
boot_esmd 'budget:total_energy_j>1:for=30s' "$DIR/tight.log"
wait_ingested
if "$DIR/esmstat" alerts "$BASE" > "$DIR/tight.alerts" 2>&1; then
    cat "$DIR/tight.alerts"
    echo "tight budget rule never fired (esmstat alerts exited 0)"
    exit 1
fi
cat "$DIR/tight.alerts"
stop_esmd

echo "== loose budget (100 GJ) must not fire"
boot_esmd 'budget:total_energy_j>1e11:for=30s' "$DIR/loose.log"
wait_ingested
"$DIR/esmstat" alerts "$BASE" > "$DIR/loose.alerts" 2>&1 || {
    cat "$DIR/loose.alerts"
    echo "loose budget rule fired (esmstat alerts exited nonzero)"
    exit 1
}
cat "$DIR/loose.alerts"
grep -q 'budget' "$DIR/loose.alerts" || {
    echo "loose run did not evaluate the budget rule at all"
    exit 1
}
stop_esmd

echo "alert-smoke OK"
