#!/bin/sh
# fleet-smoke: boot the esmd fleet control plane with two arrays,
# stream two deterministic tracegen workloads into it over live NDJSON
# ingest, and gate on the roll-up: /fleet joules must equal the summed
# per-array /status joules (esmstat fleet exits 1 on violation).
set -eu

GO=${GO:-go}
DIR=${FLEET_SMOKE_DIR:-/tmp/esm-fleet-smoke}
rm -rf "$DIR"
mkdir -p "$DIR"

cleanup() {
    if [ -n "${ESMD_PID:-}" ] && kill -0 "$ESMD_PID" 2>/dev/null; then
        kill "$ESMD_PID" 2>/dev/null || true
        wait "$ESMD_PID" 2>/dev/null || true
    fi
}
trap cleanup EXIT INT TERM

echo "== generating workloads"
$GO run ./cmd/tracegen -workload fileserver -scale 0.05 -format ndjson \
    -out "$DIR/fs.ndjson" -catalog "$DIR/fs.items" -placement "$DIR/fs.layout"
$GO run ./cmd/tracegen -workload sensor -scale 0.1 -format ndjson \
    -out "$DIR/sensor.ndjson" -catalog "$DIR/sensor.items" -placement "$DIR/sensor.layout"

cat > "$DIR/fleet.json" <<EOF
{
  "listen": "127.0.0.1:0",
  "cost": {"pue": 1.4, "replication_factor": 3},
  "arrays": [
    {"name": "fileserver", "catalog": "$DIR/fs.items", "placement": "$DIR/fs.layout"},
    {"name": "sensor", "catalog": "$DIR/sensor.items", "placement": "$DIR/sensor.layout"}
  ]
}
EOF

echo "== booting the control plane"
$GO build -o "$DIR/esmd" ./cmd/esmd
$GO build -o "$DIR/esmstat" ./cmd/esmstat
"$DIR/esmd" -fleet "$DIR/fleet.json" > "$DIR/esmd.log" 2>&1 &
ESMD_PID=$!

# The daemon prints "fleet control plane: 2 arrays [...] on ADDR" once
# the listener is up; poll for the bound address.
ADDR=
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/.* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$DIR/esmd.log" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$ESMD_PID" 2>/dev/null || { cat "$DIR/esmd.log"; echo "esmd died"; exit 1; }
    sleep 0.2
done
[ -n "$ADDR" ] || { cat "$DIR/esmd.log"; echo "esmd never reported its address"; exit 1; }
BASE="http://$ADDR"
echo "   control plane at $BASE"

echo "== streaming live NDJSON ingest"
for name in fileserver sensor; do
    case $name in
        fileserver) body="$DIR/fs.ndjson" ;;
        sensor)     body="$DIR/sensor.ndjson" ;;
    esac
    curl -sfS -X POST -H 'Content-Type: application/x-ndjson' \
        --data-binary "@$body" "$BASE/arrays/$name/ingest?final=1" > "$DIR/$name.ingest.json"
    echo "   $name: $(tr -d ' \n' < "$DIR/$name.ingest.json")"
done

echo "== fleet roll-up and conservation gate"
curl -sfS "$BASE/fleet" > "$DIR/fleet-rollup.json"
"$DIR/esmstat" fleet "$BASE"

echo "fleet-smoke OK"
