module esm

go 1.22
