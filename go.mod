module esm

go 1.23
