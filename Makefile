GO ?= go

.PHONY: all build vet test race check lint bench bench-json fault-smoke trace-smoke bench-smoke shard-smoke cloudblock-smoke fleet-smoke alert-smoke explain-smoke smoke clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full gate CI runs: build, vet, tests with the race
# detector.
check: build vet race

# lint runs the static analyzers CI installs on its runner. Locally the
# tools are optional: each is skipped with a notice when its binary is
# not on PATH (this repo never installs tools on your machine).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck ./..."; govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# bench runs the figure-regeneration suite once (see bench_test.go).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# bench-json regenerates every figure with the parallel scheduler and
# writes the per-figure numbers to a dated JSON file for diffing runs.
bench-json:
	$(GO) run ./cmd/esmbench -json BENCH_$$(date +%F).json

# fault-smoke mirrors the CI fault-injection step: the seeded-scenario
# reproducibility tests under the race detector, then a real faulted
# figure with the race runtime armed.
fault-smoke:
	$(GO) test -race -count=1 -run 'TestFaultedRunIsReproducible|TestDegradedModeFollowsFaultSchedule' ./internal/replay/
	$(GO) run -race ./cmd/esmbench -workload fileserver -fig 9 \
		-faults 'seed=42,spinup=0.2,io=0.005,battery=4m:8m'

# trace-smoke runs a small traced replay and validates the emitted
# Perfetto files through the in-repo validator (the CI contract:
# parses, holds spans, monotonic timestamps).
trace-smoke:
	rm -rf /tmp/esm-trace-smoke && mkdir -p /tmp/esm-trace-smoke
	$(GO) run ./cmd/esmbench -workload fileserver -scale 0.1 -fig 8 \
		-trace /tmp/esm-trace-smoke/run.json
	for f in /tmp/esm-trace-smoke/run-*.json; do \
		echo "validating $$f"; \
		ESM_TRACE_FILE=$$f $(GO) test -run TestTraceSmoke -count=1 ./internal/obs/ || exit 1; \
	done

# bench-smoke is the CI regression gate: a short flight-recorded run of
# the file-server figure diffed against the committed baseline manifest
# with loose +/-25% thresholds (the replay is deterministic). The same
# figure then reruns on the sharded engine (-shards 4): its manifest is
# diffed against the committed baseline with the same thresholds, and
# against the serial run of this very invocation with zero thresholds
# in both directions — sharding must not move any gated signal at all.
bench-smoke:
	rm -rf /tmp/esm-bench-smoke /tmp/esm-bench-smoke-sharded
	$(GO) run ./cmd/esmbench -workload fileserver -scale 0.1 -fig 8 \
		-series /tmp/esm-bench-smoke
	$(GO) run ./cmd/esmstat diff \
		-energy 0.25 -resp 0.25 -spinups 0.25 -migrations 0.25 \
		ci/baseline/BENCH_fileserver-esm.json \
		/tmp/esm-bench-smoke/BENCH_fileserver-esm.json
	$(GO) run ./cmd/esmbench -workload fileserver -scale 0.1 -fig 8 \
		-shards 4 -series /tmp/esm-bench-smoke-sharded
	$(GO) run ./cmd/esmstat diff \
		-energy 0.25 -resp 0.25 -spinups 0.25 -migrations 0.25 \
		ci/baseline/BENCH_fileserver-esm.json \
		/tmp/esm-bench-smoke-sharded/BENCH_fileserver-esm.json
	$(GO) run ./cmd/esmstat diff -energy 0 -resp 0 -spinups 0 -migrations 0 \
		/tmp/esm-bench-smoke/BENCH_fileserver-esm.json \
		/tmp/esm-bench-smoke-sharded/BENCH_fileserver-esm.json
	$(GO) run ./cmd/esmstat diff -energy 0 -resp 0 -spinups 0 -migrations 0 \
		/tmp/esm-bench-smoke-sharded/BENCH_fileserver-esm.json \
		/tmp/esm-bench-smoke/BENCH_fileserver-esm.json

# shard-smoke drives the sharded engine's byte-identity gates under the
# race detector — the replay equality/adversarial-migration tests and
# the fleet's sharded live-feed gate — then runs a real figure at
# -shards 4 with the race runtime armed.
shard-smoke:
	$(GO) test -race -count=1 -run 'TestSharded' ./internal/replay/ ./internal/fleet/
	$(GO) run -race ./cmd/esmbench -workload fileserver -scale 0.1 -fig 8 -shards 4

# cloudblock-smoke gates the multi-tenant cloud-block path end to end.
# tracegen streams the same seeded trace twice and the files must be
# byte-identical (the stream format is written straight off the lazy
# source — the trace is never materialized); esmreplay then replays it
# on the sharded engine; finally esmbench regenerates Fig. 20 with the
# flight recorder on, serial and at -shards 4, and the ESM manifests
# are diffed against the committed baseline (loose +/-25% thresholds)
# and serial-vs-sharded with zero thresholds in both directions.
cloudblock-smoke:
	rm -rf /tmp/esm-cloudblock-smoke
	mkdir -p /tmp/esm-cloudblock-smoke/serial /tmp/esm-cloudblock-smoke/sharded
	$(GO) run ./cmd/tracegen -workload cloudblock -scale 0.02 -format stream \
		-out /tmp/esm-cloudblock-smoke/cb.trace \
		-catalog /tmp/esm-cloudblock-smoke/cb.items \
		-placement /tmp/esm-cloudblock-smoke/cb.layout
	$(GO) run ./cmd/tracegen -workload cloudblock -scale 0.02 -format stream \
		-out /tmp/esm-cloudblock-smoke/cb-again.trace \
		-catalog /tmp/esm-cloudblock-smoke/cb-again.items \
		-placement /tmp/esm-cloudblock-smoke/cb-again.layout
	cmp /tmp/esm-cloudblock-smoke/cb.trace /tmp/esm-cloudblock-smoke/cb-again.trace
	$(GO) run ./cmd/esmreplay -trace /tmp/esm-cloudblock-smoke/cb.trace \
		-catalog /tmp/esm-cloudblock-smoke/cb.items \
		-placement /tmp/esm-cloudblock-smoke/cb.layout -policy esm -shards 4
	$(GO) run ./cmd/esmbench -workload cloudblock -fig 20 \
		-series /tmp/esm-cloudblock-smoke/serial
	$(GO) run ./cmd/esmstat diff \
		-energy 0.25 -resp 0.25 -spinups 0.25 -migrations 0.25 \
		ci/baseline/BENCH_cloudblock-esm.json \
		/tmp/esm-cloudblock-smoke/serial/BENCH_cloudblock-esm.json
	$(GO) run ./cmd/esmbench -workload cloudblock -fig 20 -shards 4 \
		-series /tmp/esm-cloudblock-smoke/sharded
	$(GO) run ./cmd/esmstat diff -energy 0 -resp 0 -spinups 0 -migrations 0 \
		/tmp/esm-cloudblock-smoke/serial/BENCH_cloudblock-esm.json \
		/tmp/esm-cloudblock-smoke/sharded/BENCH_cloudblock-esm.json
	$(GO) run ./cmd/esmstat diff -energy 0 -resp 0 -spinups 0 -migrations 0 \
		/tmp/esm-cloudblock-smoke/sharded/BENCH_cloudblock-esm.json \
		/tmp/esm-cloudblock-smoke/serial/BENCH_cloudblock-esm.json

# fleet-smoke boots the multi-array control plane, streams two
# tracegen workloads into it over live NDJSON HTTP ingest, and gates
# on the roll-up conserving the summed per-array joules (esmstat fleet
# exits 1 on violation).
fleet-smoke:
	sh scripts/fleet-smoke.sh

# alert-smoke gates the SLO watchdog end to end: esmd with a
# deliberately tight energy budget must leave `esmstat alerts <url>`
# exiting 1 once the rule fires; a budget far above the workload's
# total energy must leave it exiting 0 with the rule still evaluated.
alert-smoke:
	sh scripts/alert-smoke.sh

# explain-smoke gates the decision-provenance ledger and the root-cause
# pipeline: an injected spin-up-fault storm under a tight energy budget
# must yield an `esmstat explain` report naming the injected cause,
# byte-identical across a rerun and serial vs -shards 4.
explain-smoke:
	sh scripts/explain-smoke.sh

# smoke chains every end-to-end smoke gate in one command — the full
# CI surface minus the unit/race suite (use `make check` for that).
smoke: fault-smoke trace-smoke bench-smoke shard-smoke cloudblock-smoke fleet-smoke alert-smoke explain-smoke

clean:
	$(GO) clean ./...
