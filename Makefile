GO ?= go

.PHONY: all build vet test race check bench bench-json clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full gate CI runs: build, vet, tests with the race
# detector.
check: build vet race

# bench runs the figure-regeneration suite once (see bench_test.go).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# bench-json regenerates every figure with the parallel scheduler and
# writes the per-figure numbers to a dated JSON file for diffing runs.
bench-json:
	$(GO) run ./cmd/esmbench -json BENCH_$$(date +%F).json

clean:
	$(GO) clean ./...
