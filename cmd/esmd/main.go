// Command esmd is the energy-efficient storage management daemon: it
// consumes a logical I/O stream (CSV records on stdin, as produced by
// tracegen -format csv), feeds the monitoring system, runs the power
// management function at each monitoring-period end, and drives the
// simulated storage unit — printing a status line for every placement
// determination and a final energy report.
//
// It is the long-running-process form of the same machinery esmbench
// drives in batch: point a trace stream at it and watch the hot/cold
// split, cache assignments and monitoring period evolve.
//
// Usage:
//
//	tracegen -workload fileserver -scale 0.2 -format csv \
//	         -out /dev/stdout -catalog fs.items -placement fs.layout |
//	  esmd -catalog fs.items -placement fs.layout
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"esm/internal/config"
	"esm/internal/core"
	"esm/internal/policy"
	"esm/internal/simclock"
	"esm/internal/storage"
	"esm/internal/trace"
)

func main() {
	catalogPath := flag.String("catalog", "", "catalog path (required)")
	placementPath := flag.String("placement", "", "initial-placement path (required)")
	enclosures := flag.Int("enclosures", 0, "enclosure count (0 = infer from placement)")
	quiet := flag.Bool("quiet", false, "suppress per-determination status lines")
	configPath := flag.String("config", "", "optional JSON config for storage and ESM parameters")
	flag.Parse()

	if *catalogPath == "" || *placementPath == "" {
		fmt.Fprintln(os.Stderr, "esmd: -catalog and -placement are required")
		os.Exit(2)
	}
	if err := run(*catalogPath, *placementPath, *configPath, *enclosures, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "esmd:", err)
		os.Exit(1)
	}
}

func run(catalogPath, placementPath, configPath string, enclosures int, quiet bool) error {
	cf, err := os.Open(catalogPath)
	if err != nil {
		return err
	}
	defer cf.Close()
	cat, err := trace.ReadCatalog(cf)
	if err != nil {
		return err
	}
	pf, err := os.Open(placementPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	placement, err := trace.ReadPlacement(pf)
	if err != nil {
		return err
	}
	if len(placement) != cat.Len() {
		return fmt.Errorf("placement covers %d of %d items", len(placement), cat.Len())
	}
	if enclosures == 0 {
		for _, e := range placement {
			if e+1 > enclosures {
				enclosures = e + 1
			}
		}
	}

	cfgFile, err := config.Load(configPath)
	if err != nil {
		return err
	}
	if cfgFile.Policy != nil && cfgFile.Policy.Name != "" && cfgFile.Policy.Name != "esm" {
		return fmt.Errorf("esmd always runs the proposed method; policy %q is not supported here", cfgFile.Policy.Name)
	}
	storageCfg, err := cfgFile.BuildStorage(enclosures)
	if err != nil {
		return err
	}

	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := storage.New(storageCfg, clk, evq, cat)
	if err != nil {
		return err
	}
	for item, enc := range placement {
		if err := arr.Place(trace.ItemID(item), enc); err != nil {
			return err
		}
	}
	pol, err := cfgFile.BuildPolicy()
	if err != nil {
		return err
	}
	esm, ok := pol.(*core.ESM)
	if !ok {
		return fmt.Errorf("esmd requires the esm policy")
	}
	arr.SetPhysicalObserver(func(rec trace.PhysicalRecord) { esm.OnPhysical(rec) })
	arr.SetPowerObserver(func(e int, at time.Duration, on bool) { esm.OnPower(e, at, on) })
	// The stream length is unknown; give the policy a generous horizon.
	esm.Init(&policy.Context{Array: arr, Catalog: cat, Clock: clk, Queue: evq, End: 1000 * time.Hour})

	var lastDet int64
	status := func(now time.Duration) {
		if quiet {
			return
		}
		if det := esm.Determinations(); det != lastDet {
			lastDet = det
			hot := 0
			for _, h := range esm.Hot() {
				hot++
				if !h {
					hot--
				}
			}
			plan := esm.LastPlan()
			var mix core.PatternMix
			if plan != nil {
				for _, p := range plan.Patterns {
					mix.Counts[p]++
					mix.Total++
				}
			}
			fmt.Printf("[%v] determination #%d: %d/%d hot enclosures, period %v, %s, avg %.1f W\n",
				now.Round(time.Second), det, hot, enclosures,
				esm.Period().Round(time.Second), mix.String(),
				arr.Meter().AverageEnclosureW(now))
		}
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var count int64
	var now time.Duration
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "time_ns") {
			continue
		}
		rec, err := parseRecord(text)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if rec.Time < now {
			return fmt.Errorf("line %d: records out of order", line)
		}
		now = rec.Time
		evq.RunUntil(clk, now)
		esm.OnLogical(rec)
		arr.Submit(rec)
		count++
		status(now)
	}
	if err := sc.Err(); err != nil {
		return err
	}

	esm.Finish(now)
	arr.Finish()
	fmt.Printf("\nprocessed %d records over %v\n", count, now.Round(time.Second))
	fmt.Printf("determinations     %d\n", esm.Determinations())
	fmt.Printf("avg enclosure      %.1f W\n", arr.Meter().AverageEnclosureW(now))
	fmt.Printf("avg total          %.1f W\n", arr.Meter().AverageTotalW(now))
	fmt.Printf("spin-ups           %d\n", arr.Meter().SpinUps())
	st := arr.Stats()
	fmt.Printf("migrated           %.2f GB\n", float64(st.MigratedBytes)/(1<<30))
	fmt.Printf("cache hits         %d\n", st.CacheHits)
	fmt.Printf("delayed writes     %d\n", st.DelayedWrites)
	return nil
}

func parseRecord(text string) (trace.LogicalRecord, error) {
	fields := strings.Split(text, ",")
	if len(fields) != 5 {
		return trace.LogicalRecord{}, fmt.Errorf("want 5 fields, got %d", len(fields))
	}
	t, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return trace.LogicalRecord{}, err
	}
	item, err := strconv.ParseInt(fields[1], 10, 32)
	if err != nil {
		return trace.LogicalRecord{}, err
	}
	off, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return trace.LogicalRecord{}, err
	}
	size, err := strconv.ParseInt(fields[3], 10, 32)
	if err != nil {
		return trace.LogicalRecord{}, err
	}
	var op trace.Op
	switch fields[4] {
	case "R":
		op = trace.OpRead
	case "W":
		op = trace.OpWrite
	default:
		return trace.LogicalRecord{}, fmt.Errorf("invalid op %q", fields[4])
	}
	return trace.LogicalRecord{
		Time: time.Duration(t), Item: trace.ItemID(item),
		Offset: off, Size: int32(size), Op: op,
	}, nil
}
